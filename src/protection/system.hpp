#pragma once
// A concrete realization of the paper's Fig. 1: a plant whose state
// occasionally demands protective shut-down, sensed by two software
// channels in a 1-out-of-2 (parallel, OR) arrangement.  The channels run
// separately developed versions; a version's faults are failure regions in
// the sensed demand space, so the channel fails to demand shut-down exactly
// when the demand lands in one of its regions.
//
// The simulator closes the loop between the geometric substrate (demand/)
// and the abstract model (core/): the empirically measured per-channel and
// system PFDs must match Σ q_i over the versions' (common) faults, which
// integration tests and bench E17 verify.

#include <cstdint>
#include <vector>

#include "demand/binding.hpp"
#include "demand/demand_space.hpp"
#include "demand/region.hpp"
#include "mc/campaign.hpp"
#include "stats/confint.hpp"
#include "stats/random.hpp"

namespace reldiv::protection {

/// Stochastic plant: state variables mean-revert around an operating point
/// (discretized Ornstein-Uhlenbeck) with occasional transient excursions.
/// A *demand* occurs when any variable crosses its trip threshold; the
/// demand presented to the protection system is the state snapshot,
/// normalized to the unit demand-space box.
class plant {
 public:
  struct config {
    std::size_t dims = 2;
    double reversion = 0.05;        ///< OU pull toward the operating point
    double volatility = 0.03;       ///< per-step noise
    double transient_rate = 0.01;   ///< probability per step of a kick
    double transient_size = 0.35;   ///< kick magnitude
    double trip_threshold = 0.8;    ///< |state - setpoint| that demands action
    std::uint64_t max_steps_per_demand = 1'000'000;
  };

  explicit plant(config cfg);

  /// Advance until the next demand and return the demanded state as a point
  /// in [0,1]^dims.
  [[nodiscard]] demand::point next_demand(stats::rng& r);

  [[nodiscard]] const config& parameters() const noexcept { return cfg_; }

 private:
  config cfg_;
  std::vector<double> state_;  ///< deviation from setpoint per dimension
};

/// A software channel: the failure regions of the faults its version contains.
class software_channel {
 public:
  software_channel() = default;
  explicit software_channel(std::vector<demand::region_ptr> failure_regions);

  /// Channel responds correctly (demands shut-down) unless the demand lies
  /// in one of its failure regions.
  [[nodiscard]] bool responds_correctly(const demand::point& x) const;

  [[nodiscard]] std::size_t fault_count() const noexcept { return regions_.size(); }

 private:
  std::vector<demand::region_ptr> regions_;
};

/// Independently develop a channel: each potential fault's region is
/// included with its probability p (the paper's fault-creation process).
[[nodiscard]] software_channel develop_channel(
    const std::vector<demand::region_fault>& potential_faults, stats::rng& r);

/// 1-out-of-2 system with OR adjudication: shut-down happens if either
/// channel demands it, so the system fails only when BOTH channels fail.
class one_out_of_two {
 public:
  one_out_of_two(software_channel a, software_channel b);

  [[nodiscard]] bool responds_correctly(const demand::point& x) const;
  [[nodiscard]] const software_channel& channel_a() const noexcept { return a_; }
  [[nodiscard]] const software_channel& channel_b() const noexcept { return b_; }

 private:
  software_channel a_;
  software_channel b_;
};

/// Outcome of an operational campaign.
struct campaign_result {
  std::uint64_t demands = 0;
  std::uint64_t channel_a_failures = 0;
  std::uint64_t channel_b_failures = 0;
  std::uint64_t system_failures = 0;

  [[nodiscard]] double channel_a_pfd() const;
  [[nodiscard]] double channel_b_pfd() const;
  [[nodiscard]] double system_pfd() const;
  [[nodiscard]] stats::interval system_pfd_ci(double level = 0.99) const;
};

/// Drive `demands` plant demands through the system.
[[nodiscard]] campaign_result run_campaign(plant& pl, const one_out_of_two& system,
                                           std::uint64_t demands, stats::rng& r);

/// Same, but demands come straight from a demand profile (bypassing plant
/// dynamics) — used to cross-check that plant demands and profile demands
/// give consistent PFDs when the profile matches the plant.
[[nodiscard]] campaign_result run_profile_campaign(const demand::demand_profile& profile,
                                                   const one_out_of_two& system,
                                                   std::uint64_t demands, stats::rng& r);

/// Deterministic campaign-layer variant: the demand budget is decomposed
/// over budget-scaled logical rng shards (mc::make_shard_plan), each shard
/// sampling its demands from stream(cfg.seed, shard), per-shard failure
/// counts merged in shard order — multithreaded, and bit-identical across
/// thread counts for a given (seed, demands, shards).
[[nodiscard]] campaign_result run_profile_campaign(const demand::demand_profile& profile,
                                                   const one_out_of_two& system,
                                                   std::uint64_t demands,
                                                   const mc::campaign_config& cfg);

}  // namespace reldiv::protection
