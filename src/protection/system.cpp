#include "protection/system.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/fault_mask.hpp"
#include "mc/sampler.hpp"
#include "mc/shard_runner.hpp"

namespace reldiv::protection {

plant::plant(config cfg) : cfg_(cfg), state_(cfg.dims, 0.0) {
  if (cfg_.dims == 0) throw std::invalid_argument("plant: dims must be > 0");
  if (!(cfg_.reversion >= 0.0) || cfg_.reversion > 1.0) {
    throw std::invalid_argument("plant: reversion must be in [0,1]");
  }
  if (!(cfg_.volatility > 0.0)) throw std::invalid_argument("plant: volatility must be > 0");
  if (!(cfg_.trip_threshold > 0.0)) {
    throw std::invalid_argument("plant: trip_threshold must be > 0");
  }
}

demand::point plant::next_demand(stats::rng& r) {
  for (std::uint64_t step = 0; step < cfg_.max_steps_per_demand; ++step) {
    bool tripped = false;
    for (auto& s : state_) {
      s += -cfg_.reversion * s + cfg_.volatility * stats::normal_deviate(r);
      if (r.bernoulli(cfg_.transient_rate)) {
        s += cfg_.transient_size * (r.bernoulli(0.5) ? 1.0 : -1.0);
      }
      if (std::fabs(s) >= cfg_.trip_threshold) tripped = true;
    }
    if (tripped) {
      // Normalize the excursion snapshot to the unit box: map deviation in
      // [-2*threshold, 2*threshold] to [0,1], clamped.
      demand::point x(state_.size());
      for (std::size_t d = 0; d < state_.size(); ++d) {
        x[d] = std::clamp(0.5 + state_[d] / (4.0 * cfg_.trip_threshold), 0.0, 1.0);
      }
      // Reset toward normal operation after the event.
      std::fill(state_.begin(), state_.end(), 0.0);
      return x;
    }
  }
  throw std::runtime_error("plant: no demand within max_steps_per_demand");
}

software_channel::software_channel(std::vector<demand::region_ptr> failure_regions)
    : regions_(std::move(failure_regions)) {
  for (const auto& reg : regions_) {
    if (!reg) throw std::invalid_argument("software_channel: null region");
  }
}

bool software_channel::responds_correctly(const demand::point& x) const {
  for (const auto& reg : regions_) {
    if (reg->contains(x)) return false;
  }
  return true;
}

software_channel develop_channel(const std::vector<demand::region_fault>& potential_faults,
                                 stats::rng& r) {
  // Channel development IS a version draw: run the Monte-Carlo engine's
  // shared threshold kernel (one rng word + one integer compare per fault,
  // decision-identical to r.bernoulli(f.p) in fault order) and materialize
  // the set bits as the channel's failure regions.
  std::vector<std::uint64_t> thresholds;
  thresholds.reserve(potential_faults.size());
  for (const auto& f : potential_faults) {
    if (!f.footprint) throw std::invalid_argument("develop_channel: null region");
    thresholds.push_back(core::bernoulli_threshold(f.p));
  }
  core::fault_mask drawn;
  mc::sample_mask_from_thresholds(thresholds, r, drawn);
  std::vector<demand::region_ptr> present;
  for (std::size_t i = 0; i < potential_faults.size(); ++i) {
    if (drawn.test(i)) present.push_back(potential_faults[i].footprint);
  }
  return software_channel(std::move(present));
}

one_out_of_two::one_out_of_two(software_channel a, software_channel b)
    : a_(std::move(a)), b_(std::move(b)) {}

bool one_out_of_two::responds_correctly(const demand::point& x) const {
  // OR adjudication: shut-down if either channel demands it.
  return a_.responds_correctly(x) || b_.responds_correctly(x);
}

double campaign_result::channel_a_pfd() const {
  return demands > 0 ? static_cast<double>(channel_a_failures) / static_cast<double>(demands)
                     : 0.0;
}

double campaign_result::channel_b_pfd() const {
  return demands > 0 ? static_cast<double>(channel_b_failures) / static_cast<double>(demands)
                     : 0.0;
}

double campaign_result::system_pfd() const {
  return demands > 0 ? static_cast<double>(system_failures) / static_cast<double>(demands)
                     : 0.0;
}

stats::interval campaign_result::system_pfd_ci(double level) const {
  return stats::wilson(system_failures, demands, level);
}

namespace {

template <typename DemandSource>
campaign_result run_generic(DemandSource&& next, const one_out_of_two& system,
                            std::uint64_t demands) {
  if (demands == 0) throw std::invalid_argument("run_campaign: demands must be > 0");
  campaign_result out;
  out.demands = demands;
  for (std::uint64_t d = 0; d < demands; ++d) {
    const demand::point x = next();
    const bool a_ok = system.channel_a().responds_correctly(x);
    const bool b_ok = system.channel_b().responds_correctly(x);
    if (!a_ok) ++out.channel_a_failures;
    if (!b_ok) ++out.channel_b_failures;
    if (!a_ok && !b_ok) ++out.system_failures;
  }
  return out;
}

}  // namespace

campaign_result run_campaign(plant& pl, const one_out_of_two& system, std::uint64_t demands,
                             stats::rng& r) {
  return run_generic([&] { return pl.next_demand(r); }, system, demands);
}

campaign_result run_profile_campaign(const demand::demand_profile& profile,
                                     const one_out_of_two& system, std::uint64_t demands,
                                     stats::rng& r) {
  return run_generic([&] { return profile.sample(r); }, system, demands);
}

campaign_result run_profile_campaign(const demand::demand_profile& profile,
                                     const one_out_of_two& system, std::uint64_t demands,
                                     const mc::campaign_config& cfg) {
  if (demands == 0) throw std::invalid_argument("run_campaign: demands must be > 0");
  const mc::shard_plan plan = mc::make_shard_plan(demands, cfg.shards);
  campaign_result total;
  total.demands = demands;
  mc::run_shards(
      plan, cfg.seed, cfg.threads,
      [&](unsigned /*shard*/, std::uint64_t count, stats::rng& r) {
        campaign_result local =
            run_generic([&] { return profile.sample(r); }, system, count);
        return local;
      },
      [&total](unsigned /*shard*/, campaign_result&& local) {
        total.channel_a_failures += local.channel_a_failures;
        total.channel_b_failures += local.channel_b_failures;
        total.system_failures += local.system_failures;
      });
  return total;
}

}  // namespace reldiv::protection
