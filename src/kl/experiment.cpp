#include "kl/experiment.hpp"

#include <limits>
#include <stdexcept>

#include "mc/campaign.hpp"
#include "mc/sampler.hpp"
#include "stats/random.hpp"

namespace reldiv::kl {

kl_result run_kl_experiment(const core::fault_universe& u, const kl_config& config) {
  if (config.versions < 2) {
    throw std::invalid_argument("run_kl_experiment: need at least 2 versions");
  }
  stats::rng r(config.seed);

  // Versions live as packed fault masks; the exact-stream sampler keeps the
  // drawn fault sets identical to the historical sparse implementation for a
  // given seed.
  std::vector<core::fault_mask> versions(config.versions);
  for (auto& v : versions) mc::sample_version_mask(u, r, v);

  kl_result out;
  out.version_pfd.reserve(config.versions);
  for (const auto& v : versions) out.version_pfd.push_back(mc::pfd_of(v, u));

  out.pair_pfd.reserve(config.versions * (config.versions - 1) / 2);
  for (std::size_t i = 0; i < versions.size(); ++i) {
    for (std::size_t j = i + 1; j < versions.size(); ++j) {
      out.pair_pfd.push_back(mc::pair_pfd(versions[i], versions[j], u));
    }
  }

  if (config.score_empirically) {
    if (config.demands == 0) {
      throw std::invalid_argument("run_kl_experiment: demands must be > 0");
    }
    // Regions are disjoint, so a campaign's failure count over the demands
    // is one Binomial(demands, pfd) draw — for versions and pairs alike.
    // The demand campaign scores the whole roster (versions first, then the
    // 351 pairs) multithreaded with one rng stream per target; its master
    // seed is split off config.seed so the campaign streams cannot collide
    // with the version-drawing stream rng(config.seed) above.
    std::vector<double> roster;
    roster.reserve(out.version_pfd.size() + out.pair_pfd.size());
    roster.insert(roster.end(), out.version_pfd.begin(), out.version_pfd.end());
    roster.insert(roster.end(), out.pair_pfd.begin(), out.pair_pfd.end());
    mc::campaign_config campaign;
    std::uint64_t split = config.seed;
    campaign.seed = stats::splitmix64_next(split);
    campaign.threads = config.threads;
    const auto rates = mc::run_demand_campaign(roster, config.demands, campaign).rates();
    out.version_pfd_hat.assign(rates.begin(),
                               rates.begin() + static_cast<std::ptrdiff_t>(
                                                   out.version_pfd.size()));
    out.pair_pfd_hat.assign(
        rates.begin() + static_cast<std::ptrdiff_t>(out.version_pfd.size()), rates.end());
  }

  out.version_summary = stats::summarize(out.version_pfd);
  out.pair_summary = stats::summarize(out.pair_pfd);
  // A zero denominator under a positive numerator means the reduction is
  // unbounded, which +inf states honestly — 0.0 would read as "diversity
  // bought nothing" when it actually bought everything.  0/0 (versions
  // never fail either, or both distributions degenerate) is indeterminate:
  // NaN, not a fake verdict in either direction.
  const auto reduction = [](double numerator, double denominator) {
    if (denominator > 0.0) return numerator / denominator;
    return numerator > 0.0 ? std::numeric_limits<double>::infinity()
                           : std::numeric_limits<double>::quiet_NaN();
  };
  out.mean_reduction = reduction(out.version_summary.mean, out.pair_summary.mean);
  out.sd_reduction = reduction(out.version_summary.stddev, out.pair_summary.stddev);
  if (out.version_summary.stddev > 0.0) {
    out.version_normality = stats::anderson_darling_normal(out.version_pfd);
  } else {
    // A degenerate (point-mass) PFD sample cannot be normal: report a
    // rejection instead of tripping the AD statistic's zero-variance guard.
    out.version_normality = {std::numeric_limits<double>::infinity(), 0.0, true};
  }
  return out;
}

}  // namespace reldiv::kl
