#pragma once
// Synthetic replication of the Knight-Leveson experiment [2,16,17] at the
// level the paper uses it (§7): 27 independently developed versions of the
// same specification, scored on ~1M demands.  The paper reports, as a
// qualitative check of its model, that in the KL data diversity reduced not
// only the sample mean of the PFD across the 27 versions but also — greatly
// — its standard deviation, while the PFD sample does NOT fit a normal.
//
// The original data set is not public; per the substitution policy in
// DESIGN.md we generate versions from a calibrated fault universe and apply
// the same estimators (27 versions, all 351 pairs).

#include <cstdint>
#include <vector>

#include "core/fault_universe.hpp"
#include "stats/descriptive.hpp"
#include "stats/gof_tests.hpp"

namespace reldiv::kl {

struct kl_config {
  std::size_t versions = 27;            ///< as in the original experiment
  std::uint64_t demands = 1'000'000;    ///< empirical scoring campaign length
  std::uint64_t seed = 20010704;        ///< DSN 2001 conference date
  bool score_empirically = true;        ///< also run the demand campaign
  unsigned threads = 0;                 ///< campaign workers; 0 = hardware.
                                        ///< Throughput only — the empirical
                                        ///< scores are bit-identical across
                                        ///< thread counts (each of the
                                        ///< versions + pairs targets owns its
                                        ///< own campaign rng stream).
};

struct kl_result {
  std::vector<double> version_pfd;        ///< exact PFD per version
  std::vector<double> pair_pfd;           ///< exact PFD per unordered pair
  std::vector<double> version_pfd_hat;    ///< empirical (if scored)
  std::vector<double> pair_pfd_hat;       ///< empirical (if scored)

  stats::sample_summary version_summary;
  stats::sample_summary pair_summary;

  /// Reduction factors mean(version)/mean(pair), sd(version)/sd(pair).
  /// A zero denominator under a positive numerator yields +infinity — the
  /// reduction is unbounded, not absent (for the mean ratio that means
  /// pairs never fail; for the sd ratio it also covers a degenerate pair
  /// distribution).  0/0 yields NaN (indeterminate).
  double mean_reduction = 0.0;
  double sd_reduction = 0.0;

  /// Anderson-Darling normality verdict on the 27 version PFDs (the paper:
  /// "the data do not fit ... a normal approximation").
  stats::gof_result version_normality;
};

[[nodiscard]] kl_result run_kl_experiment(const core::fault_universe& u,
                                          const kl_config& config);

}  // namespace reldiv::kl
