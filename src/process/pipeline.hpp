#pragma once
// Development-process model.
//
// The paper stresses that its parameters p_i "have intuitive meanings
// relating to developers' experiences" — the probability that a mistake is
// made AND survives every inspection, test and debugging stage ("a mistake
// of the whole development process", §2.2).  This module makes that story
// executable: a potential fault has a class (requirements, logic, boundary,
// …), a process has per-class mistake-introduction probabilities and a
// pipeline of V&V stages with per-class detection probabilities, and the
// delivered p_i is
//
//   p_i = introduction(class_i) · Π_stages (1 − detection(stage, class_i)).
//
// Improvement scenarios (§4.2) then act on concrete levers: strengthening
// one stage for one class (targeted, §4.2.1) or raising every detection
// rate (uniform, §4.2.2), and the core-model machinery quantifies what each
// does to the gain from diversity.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/fault_universe.hpp"

namespace reldiv::process {

/// Fault taxonomy, loosely after the defect-type taxonomies used in
/// industrial defect classification.
enum class fault_class : std::uint8_t {
  requirements,  ///< misunderstood/ambiguous specification clause
  logic,         ///< wrong algorithm/decision structure
  boundary,      ///< off-by-one, range-edge handling
  numerical,     ///< precision, overflow, unit errors
  interface,     ///< wrong assumptions between components
  omission,      ///< missing case/behaviour
};

inline constexpr std::size_t kFaultClassCount = 6;

[[nodiscard]] std::string_view to_string(fault_class c);
[[nodiscard]] std::array<fault_class, kFaultClassCount> all_fault_classes();

/// A potential fault in process terms.
struct potential_fault {
  fault_class cls = fault_class::logic;
  double introduction_probability = 0.0;  ///< P(mistake made during construction)
  double q = 0.0;                         ///< failure-region hit probability
};

/// One V&V stage with per-class detection effectiveness in [0,1].
struct vnv_stage {
  std::string name;
  std::array<double, kFaultClassCount> detection{};  ///< indexed by fault_class

  [[nodiscard]] double detection_for(fault_class c) const;
  void set_detection(fault_class c, double d);
};

/// A development process: construction (introduction rates are carried by
/// the potential faults) followed by a V&V pipeline.
class development_process {
 public:
  development_process() = default;
  explicit development_process(std::vector<vnv_stage> stages);

  [[nodiscard]] const std::vector<vnv_stage>& stages() const noexcept { return stages_; }
  [[nodiscard]] std::size_t stage_count() const noexcept { return stages_.size(); }

  void add_stage(vnv_stage stage);

  /// Delivered probability that a fault of class c survives into the product.
  [[nodiscard]] double survival_probability(fault_class c) const;

  /// Delivered p for one potential fault.
  [[nodiscard]] double delivered_p(const potential_fault& f) const;

  /// Synthesize the abstract model: p_i = delivered_p(fault_i), q_i as given.
  [[nodiscard]] core::fault_universe synthesize(
      const std::vector<potential_fault>& faults) const;

  // --- improvement levers -------------------------------------------------

  /// Multiply the *escape* probability (1 − detection) of one stage for one
  /// class by `factor` in [0,1] — a targeted §4.2.1-style improvement.
  [[nodiscard]] development_process strengthen_stage(std::size_t stage, fault_class c,
                                                     double factor) const;

  /// Multiply every stage's escape probability for every class by `factor`
  /// — a uniform §4.2.2-style improvement (all delivered p_i scale by
  /// factor^stage_count at most; exactly proportional when applied to a
  /// single added stage, see add_screening_stage).
  [[nodiscard]] development_process strengthen_all(double factor) const;

  /// Append a class-blind screening stage with detection d for every class:
  /// multiplies every delivered p_i by exactly (1 − d) — the cleanest
  /// physical realization of the paper's proportional improvement p_i = k·b_i.
  [[nodiscard]] development_process add_screening_stage(std::string name, double d) const;

 private:
  std::vector<vnv_stage> stages_;
};

// --- presets ----------------------------------------------------------------

/// A catalogue of potential faults for a protection-system-style application:
/// `n` faults spread across classes, introduction probabilities and q values
/// drawn reproducibly from `seed`.
[[nodiscard]] std::vector<potential_fault> make_fault_catalogue(std::size_t n,
                                                                std::uint64_t seed);

/// Processes of increasing rigour, loosely mirroring SIL bands: each level
/// adds stages and raises detection rates.
[[nodiscard]] development_process make_process_at_level(int level);

}  // namespace reldiv::process
