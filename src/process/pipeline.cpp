#include "process/pipeline.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/random.hpp"

namespace reldiv::process {

std::string_view to_string(fault_class c) {
  switch (c) {
    case fault_class::requirements: return "requirements";
    case fault_class::logic: return "logic";
    case fault_class::boundary: return "boundary";
    case fault_class::numerical: return "numerical";
    case fault_class::interface: return "interface";
    case fault_class::omission: return "omission";
  }
  return "unknown";
}

std::array<fault_class, kFaultClassCount> all_fault_classes() {
  return {fault_class::requirements, fault_class::logic,     fault_class::boundary,
          fault_class::numerical,    fault_class::interface, fault_class::omission};
}

double vnv_stage::detection_for(fault_class c) const {
  return detection[static_cast<std::size_t>(c)];
}

void vnv_stage::set_detection(fault_class c, double d) {
  if (!(d >= 0.0) || !(d <= 1.0)) {
    throw std::invalid_argument("vnv_stage: detection must be in [0,1]");
  }
  detection[static_cast<std::size_t>(c)] = d;
}

development_process::development_process(std::vector<vnv_stage> stages)
    : stages_(std::move(stages)) {
  for (const auto& s : stages_) {
    for (const double d : s.detection) {
      if (!(d >= 0.0) || !(d <= 1.0)) {
        throw std::invalid_argument("development_process: detection out of [0,1]");
      }
    }
  }
}

void development_process::add_stage(vnv_stage stage) {
  for (const double d : stage.detection) {
    if (!(d >= 0.0) || !(d <= 1.0)) {
      throw std::invalid_argument("add_stage: detection out of [0,1]");
    }
  }
  stages_.push_back(std::move(stage));
}

double development_process::survival_probability(fault_class c) const {
  double survive = 1.0;
  for (const auto& s : stages_) survive *= (1.0 - s.detection_for(c));
  return survive;
}

double development_process::delivered_p(const potential_fault& f) const {
  if (!(f.introduction_probability >= 0.0) || !(f.introduction_probability <= 1.0)) {
    throw std::invalid_argument("delivered_p: introduction probability out of [0,1]");
  }
  return f.introduction_probability * survival_probability(f.cls);
}

core::fault_universe development_process::synthesize(
    const std::vector<potential_fault>& faults) const {
  std::vector<core::fault_atom> atoms;
  atoms.reserve(faults.size());
  for (const auto& f : faults) atoms.push_back({delivered_p(f), f.q});
  return core::fault_universe(std::move(atoms));
}

development_process development_process::strengthen_stage(std::size_t stage, fault_class c,
                                                          double factor) const {
  if (stage >= stages_.size()) throw std::out_of_range("strengthen_stage: stage index");
  if (!(factor >= 0.0) || !(factor <= 1.0)) {
    throw std::invalid_argument("strengthen_stage: factor must be in [0,1]");
  }
  development_process out = *this;
  auto& s = out.stages_[stage];
  const double escape = 1.0 - s.detection_for(c);
  s.set_detection(c, 1.0 - escape * factor);
  return out;
}

development_process development_process::strengthen_all(double factor) const {
  if (!(factor >= 0.0) || !(factor <= 1.0)) {
    throw std::invalid_argument("strengthen_all: factor must be in [0,1]");
  }
  development_process out = *this;
  for (auto& s : out.stages_) {
    for (const fault_class c : all_fault_classes()) {
      const double escape = 1.0 - s.detection_for(c);
      s.set_detection(c, 1.0 - escape * factor);
    }
  }
  return out;
}

development_process development_process::add_screening_stage(std::string name,
                                                             double d) const {
  if (!(d >= 0.0) || !(d <= 1.0)) {
    throw std::invalid_argument("add_screening_stage: detection must be in [0,1]");
  }
  development_process out = *this;
  vnv_stage stage;
  stage.name = std::move(name);
  stage.detection.fill(d);
  out.stages_.push_back(std::move(stage));
  return out;
}

std::vector<potential_fault> make_fault_catalogue(std::size_t n, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("make_fault_catalogue: n must be > 0");
  stats::rng r(seed);
  const auto classes = all_fault_classes();
  std::vector<potential_fault> out;
  out.reserve(n);
  // q weights: log-uniform spanning three decades, normalized to sum 0.5
  // (leaving profile headroom so that Σq <= 1 holds comfortably).
  std::vector<double> q_raw(n);
  double q_sum = 0.0;
  for (auto& q : q_raw) {
    q = std::exp(r.uniform(std::log(1e-3), std::log(1.0)));
    q_sum += q;
  }
  for (std::size_t i = 0; i < n; ++i) {
    potential_fault f;
    f.cls = classes[r.below(classes.size())];
    // Introduction probabilities: most mistakes are uncommon, a few likely.
    f.introduction_probability = 0.02 + 0.48 * r.uniform() * r.uniform();
    f.q = q_raw[i] / q_sum * 0.5;
    out.push_back(f);
  }
  return out;
}

development_process make_process_at_level(int level) {
  if (level < 1 || level > 4) {
    throw std::invalid_argument("make_process_at_level: level must be in 1..4");
  }
  // Detection rates per class for each stage family; higher levels both
  // strengthen stages and add stages.
  auto stage = [](std::string name, double req, double logic, double boundary,
                  double numerical, double interface_d, double omission) {
    vnv_stage s;
    s.name = std::move(name);
    s.set_detection(fault_class::requirements, req);
    s.set_detection(fault_class::logic, logic);
    s.set_detection(fault_class::boundary, boundary);
    s.set_detection(fault_class::numerical, numerical);
    s.set_detection(fault_class::interface, interface_d);
    s.set_detection(fault_class::omission, omission);
    return s;
  };

  const double lift = 0.06 * static_cast<double>(level - 1);
  development_process p;
  p.add_stage(stage("peer review", 0.30 + lift, 0.40 + lift, 0.35 + lift, 0.25 + lift,
                    0.30 + lift, 0.20 + lift));
  p.add_stage(stage("unit test", 0.10 + lift, 0.55 + lift, 0.60 + lift, 0.50 + lift,
                    0.25 + lift, 0.15 + lift));
  if (level >= 2) {
    p.add_stage(stage("integration test", 0.20 + lift, 0.35 + lift, 0.30 + lift,
                      0.30 + lift, 0.60 + lift, 0.25 + lift));
  }
  if (level >= 3) {
    p.add_stage(stage("requirements-based system test", 0.55 + lift, 0.30 + lift,
                      0.25 + lift, 0.25 + lift, 0.35 + lift, 0.45 + lift));
  }
  if (level >= 4) {
    p.add_stage(stage("statistical/operational test", 0.35, 0.40, 0.40, 0.40, 0.35, 0.35));
  }
  return p;
}

}  // namespace reldiv::process
