#pragma once
// Section 4 of the paper: the probability that a version has no fault /
// that a diverse pair has no *common* fault, and how the risk ratio
//
//   eq. (10):  R = P(N2 > 0) / P(N1 > 0)
//              = (1 − Π(1 − p_i²)) / (1 − Π(1 − p_i))  ≤ 1
//
// responds to process improvement (§4.2, Appendices A and B).  Small R
// means a large gain from diversity; R → 1 means diversity buys nothing.
//
// Appendix A closed form (re-derived; the published appendix is garbled —
// see DESIGN.md §2): for n = 2 with p2 fixed, ∂R/∂p1 has exactly one
// positive zero at
//
//   p1z(p2) = p2 (sqrt(2(1+p2)) − (1+p2)) / ((1−p2)(1+p2)),
//
// and R is decreasing in p1 below p1z, increasing above — so *reducing* a
// single small p (below p1z) RAISES the ratio, i.e. reduces the gain from
// diversity: the paper's counterintuitive trend reversal.
//
// Appendix B: with p_i = k·b_i, dR/dk ≥ 0 for all valid parameters — a
// uniform proportional improvement (smaller k) always lowers R, i.e. always
// increases the diversity gain.

#include <cstddef>
#include <vector>

#include "core/fault_universe.hpp"

namespace reldiv::core {

/// P(N1 = 0) = Π(1 − p_i): the probability a random version has no fault.
[[nodiscard]] double prob_no_fault(const fault_universe& u);

/// P(N2 = 0) = Π(1 − p_i²): no fault common to an independently developed pair.
[[nodiscard]] double prob_no_common_fault(const fault_universe& u);

/// P(Nm = 0) = Π(1 − p_i^m) for a 1-out-of-m system (m >= 1).
[[nodiscard]] double prob_no_common_fault_m(const fault_universe& u, unsigned m);

/// P(N1 > 0) and P(N2 > 0), computed stably for tiny p_i.
[[nodiscard]] double prob_some_fault(const fault_universe& u);
[[nodiscard]] double prob_some_common_fault(const fault_universe& u);

/// eq. (10): the risk ratio R ∈ [0, 1].  Throws std::domain_error if
/// P(N1 > 0) == 0 (ratio undefined: no fault is ever produced).
[[nodiscard]] double risk_ratio(const fault_universe& u);

/// Footnote-5 "success ratio": P(N2 = 0)/P(N1 = 0) = Π(1 + p_i) ≥ 1.
[[nodiscard]] double success_ratio(const fault_universe& u);

/// Exact partial derivative ∂R/∂p_i for the eq. (10) ratio (general n).
/// Requires p_i < 1 for the closed form; throws std::domain_error otherwise.
[[nodiscard]] double risk_ratio_derivative(const fault_universe& u, std::size_t i);

/// Central-difference numerical derivative (cross-check for the closed form
/// and for regions where it is awkward).
[[nodiscard]] double risk_ratio_derivative_numeric(const fault_universe& u, std::size_t i,
                                                   double h = 1e-7);

// ---------------------------------------------------------------------------
// Appendix A: single-parameter improvement, n = 2 closed form and general-n
// numeric root.
// ---------------------------------------------------------------------------

/// The re-derived Appendix A root: the unique p1 > 0 at which ∂R/∂p1 = 0
/// for a two-fault universe with the other fault probability fixed at p2.
/// Valid for p2 in (0, 1).
[[nodiscard]] double appendix_a_root(double p2);

/// eq. (10) ratio for the two-fault universe (p1, p2) — convenience used by
/// the Appendix A analysis (q values are irrelevant to N-based measures).
[[nodiscard]] double risk_ratio_two_faults(double p1, double p2);

/// Numerically locate the zero of ∂R/∂p_i as p_i varies with every other
/// parameter held fixed.  Returns a value in (0, 1), or a negative value if
/// the derivative does not change sign on (lo, hi).
[[nodiscard]] double find_derivative_zero(const fault_universe& u, std::size_t i,
                                          double lo = 1e-9, double hi = 1.0 - 1e-9);

// ---------------------------------------------------------------------------
// Appendix B: proportional scaling p_i = k · b_i.
// ---------------------------------------------------------------------------

/// eq. (10) ratio with every p_i scaled by k (clamped requirement: all
/// k·b_i in [0, 1], else std::invalid_argument).
[[nodiscard]] double risk_ratio_scaled(const std::vector<double>& b, double k);

/// Numerical dR/dk at scale k.
[[nodiscard]] double risk_ratio_scale_derivative(const std::vector<double>& b, double k,
                                                 double h = 1e-7);

/// Verify Appendix B's theorem on a k-grid: returns true iff the ratio is
/// non-decreasing in k across `steps` points of [k_lo, k_hi] (within a small
/// numerical tolerance).
[[nodiscard]] bool appendix_b_monotone_on_grid(const std::vector<double>& b, double k_lo,
                                               double k_hi, int steps);

}  // namespace reldiv::core
