#pragma once
// Calibrated fault-universe families for the experiments.
//
// The paper's two regimes (Sections 4 and 5) need different parameter
// shapes: "very high-quality software with a high chance of having no
// faults" (few potential faults, all p_i near 0) versus "very many, but
// low-probability faults".  These generators produce both, plus generic
// randomized universes for property tests.  All generation is seeded.

#include <cstdint>
#include <span>

#include "core/fault_universe.hpp"

namespace reldiv::core {

/// §4 regime: safety-grade software.  `n` potential faults, p_i ~ Uniform
/// (p_lo, p_hi) with p_hi small (E[N1] << 1 typical), q_i ~ heavy-tailed
/// (lognormal), normalized so Σq = q_total.
[[nodiscard]] fault_universe make_safety_grade_universe(std::size_t n, double p_lo,
                                                        double p_hi, double q_total,
                                                        std::uint64_t seed);

/// §5 regime: many small faults.  `n` large, p_i ~ Uniform(p_lo, p_hi),
/// q_i roughly equal with `jitter` relative spread, Σq = q_total.
[[nodiscard]] fault_universe make_many_small_faults_universe(std::size_t n, double p_lo,
                                                             double p_hi, double q_total,
                                                             double jitter,
                                                             std::uint64_t seed);

/// Generic randomized universe for property tests: p_i ~ Uniform(0, p_max),
/// q_i ~ Dirichlet-like (normalized exponentials) scaled to q_total.
[[nodiscard]] fault_universe make_random_universe(std::size_t n, double p_max,
                                                  double q_total, std::uint64_t seed);

/// Universe with a single dominant fault plus a background of small ones —
/// exercises the pmax-driven bounds where they are tight.
[[nodiscard]] fault_universe make_dominant_fault_universe(std::size_t n, double p_dominant,
                                                          double p_background,
                                                          double q_total,
                                                          std::uint64_t seed);

/// Equal-parameter universe: all (p, q) identical (closed forms are simple,
/// used heavily in unit tests).
[[nodiscard]] fault_universe make_homogeneous_universe(std::size_t n, double p, double q);

/// One homogeneous run of a grouped universe: `n` faults sharing (p, q).
struct fault_block {
  std::size_t n = 0;
  double p = 0.0;
  double q = 0.0;  ///< per fault
};

/// Concatenation of homogeneous blocks — the "runs of equal p" shape the
/// grouped word-parallel sampler accelerates (fault_universe::has_grouped_p
/// is true when runs cover whole 64-fault words with sliceable thresholds).
[[nodiscard]] fault_universe make_grouped_universe(std::span<const fault_block> blocks);

/// A universe calibrated to reproduce the scale of the Knight-Leveson
/// experiment (used by the kl module): a handful of faults whose p_i are
/// chosen so ~27 versions show a few failures, q_i spanning orders of
/// magnitude.
[[nodiscard]] fault_universe make_knight_leveson_like_universe(std::uint64_t seed);

}  // namespace reldiv::core
