// AVX2 instantiation of the fast-simd word kernels.  This is the ONLY
// translation unit in the repo allowed to include <immintrin.h> (reldiv_lint
// `simd-isolation` enforces it) and the only one compiled with -mavx2; it is
// reached solely through the runtime dispatch in simd_sampler.cpp, which
// calls in only after __builtin_cpu_supports("avx2") says the host can run
// it.  When the toolchain cannot compile AVX2 (non-x86, or no -mavx2), the
// fallback definitions at the bottom keep the link whole and report
// avx2_compiled() == false so dispatch never selects this path.
//
// Decision-for-decision equivalence with the scalar ops holds because the
// vector kernels evaluate the identical stats::counter_draw arithmetic —
// the splitmix64 finalizer on key + (counter+1)*gamma — four 64-bit lanes
// per instruction, then compare against the same integer thresholds.  The
// 64-bit constant multiplies of the finalizer are synthesized from three
// 32x32 _mm256_mul_epu32 partial products; the threshold compares use
// _mm256_cmpgt_epi64, which is safe in the signed domain because both
// operands are < 2^53 (hence positive as int64).

#include "core/simd_sampler.inl.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace reldiv::core::detail {

namespace {

/// x * c for a 64-bit constant c, per 64-bit lane: lo32(x)*lo32(c) +
/// ((lo32(x)*hi32(c) + hi32(x)*lo32(c)) << 32).  The high cross-product
/// overflows out of the lane exactly as scalar uint64 multiplication does.
inline __m256i mul64_const(__m256i x, std::uint64_t c) noexcept {
  const __m256i c_lo = _mm256_set1_epi64x(static_cast<long long>(c & 0xffffffffULL));
  const __m256i c_hi = _mm256_set1_epi64x(static_cast<long long>(c >> 32));
  const __m256i x_hi = _mm256_srli_epi64(x, 32);
  const __m256i lolo = _mm256_mul_epu32(x, c_lo);
  const __m256i lohi = _mm256_mul_epu32(x, c_hi);
  const __m256i hilo = _mm256_mul_epu32(x_hi, c_lo);
  return _mm256_add_epi64(lolo,
                          _mm256_slli_epi64(_mm256_add_epi64(lohi, hilo), 32));
}

/// stats::counter_draw for counters base..base+3, one per lane (lane 0 =
/// base).  The Weyl start key + (base+1)*gamma is computed scalar (one
/// 64-bit multiply), then the lanes diverge by {0,1,2,3}*gamma and run the
/// splitmix64 finalizer in parallel.
inline __m256i counter_draws4(std::uint64_t key, std::uint64_t base) noexcept {
  constexpr std::uint64_t g = stats::kSplitmix64Gamma;
  const std::uint64_t s0 = key + (base + 1) * g;
  __m256i z = _mm256_add_epi64(
      _mm256_set1_epi64x(static_cast<long long>(s0)),
      _mm256_set_epi64x(static_cast<long long>(3 * g), static_cast<long long>(2 * g),
                        static_cast<long long>(g), 0));
  z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 30));
  z = mul64_const(z, 0xbf58476d1ce4e5b9ULL);
  z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 27));
  z = mul64_const(z, 0x94d049bb133111ebULL);
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

/// Pack the four lane-wise `t > v` results (all-ones / all-zero 64-bit
/// lanes) into bits 0..3 via the double-precision sign-bit movemask.
inline std::uint64_t cmplt4(__m256i v, __m256i t) noexcept {
  return static_cast<std::uint64_t>(static_cast<unsigned>(
      _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(t, v)))));
}

struct avx2_word_ops {
  static void paired32_word(std::uint64_t key, std::uint64_t base,
                            const std::uint64_t* t32, unsigned occ,
                            std::uint64_t& wa, std::uint64_t& wb) noexcept {
    std::uint64_t word_a = 0;
    std::uint64_t word_b = 0;
    const __m256i lo_mask = _mm256_set1_epi64x(0xffffffffLL);
    unsigned k = 0;
    for (; k + 4 <= occ; k += 4) {
      const __m256i x = counter_draws4(key, base + k);
      // reldiv-lint: allow(wire-cast) vector register load of the threshold array, not byte serialization
      const __m256i t = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t32 + k));
      word_a |= cmplt4(_mm256_srli_epi64(x, 32), t) << k;
      word_b |= cmplt4(_mm256_and_si256(x, lo_mask), t) << k;
    }
    for (; k < occ; ++k) {
      const std::uint64_t x = stats::counter_draw(key, base + k);
      word_a |= static_cast<std::uint64_t>((x >> 32) < t32[k]) << k;
      word_b |= static_cast<std::uint64_t>((x & 0xffffffffULL) < t32[k]) << k;
    }
    wa = word_a;
    wb = word_b;
  }

  static std::uint64_t wide53_word(std::uint64_t key, std::uint64_t base,
                                   const std::uint64_t* t53,
                                   unsigned occ) noexcept {
    std::uint64_t w = 0;
    unsigned k = 0;
    for (; k + 4 <= occ; k += 4) {
      const __m256i x = counter_draws4(key, base + k);
      // reldiv-lint: allow(wire-cast) vector register load of the threshold array, not byte serialization
      const __m256i t = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t53 + k));
      w |= cmplt4(_mm256_srli_epi64(x, 11), t) << k;
    }
    for (; k < occ; ++k) {
      w |= static_cast<std::uint64_t>(
               (stats::counter_draw(key, base + k) >> 11) < t53[k])
           << k;
    }
    return w;
  }
};

}  // namespace

bool avx2_compiled() noexcept { return true; }

void sample_pair_counter_batch_avx2(const counter_sample_plan& plan,
                                    std::span<const std::uint64_t> t32,
                                    std::span<const std::uint64_t> t53,
                                    std::uint64_t key, std::uint64_t first_pair,
                                    std::size_t count, std::span<fault_mask> a,
                                    std::span<fault_mask> b) {
  sample_pair_counter_batch_impl<avx2_word_ops>(plan, t32, t53, key, first_pair,
                                                count, a, b);
}

}  // namespace reldiv::core::detail

#else  // !__AVX2__

namespace reldiv::core::detail {

bool avx2_compiled() noexcept { return false; }

void sample_pair_counter_batch_avx2(const counter_sample_plan& plan,
                                    std::span<const std::uint64_t> t32,
                                    std::span<const std::uint64_t> t53,
                                    std::uint64_t key, std::uint64_t first_pair,
                                    std::size_t count, std::span<fault_mask> a,
                                    std::span<fault_mask> b) {
  // Unreachable through dispatch (detected_simd_level() caps at scalar when
  // avx2_compiled() is false), but defined so a direct caller still gets
  // correct bits.
  sample_pair_counter_batch_impl<scalar_word_ops>(plan, t32, t53, key,
                                                  first_pair, count, a, b);
}

}  // namespace reldiv::core::detail

#endif  // __AVX2__
