#include "core/improvement.hpp"

#include <stdexcept>

#include "core/moments.hpp"
#include "core/no_common_fault.hpp"

namespace reldiv::core {

namespace {

void check_factor(double factor) {
  if (!(factor >= 0.0) || !(factor <= 1.0)) {
    throw std::invalid_argument("improvement factor must be in [0,1]");
  }
}

}  // namespace

fault_universe improve_single(const fault_universe& u, std::size_t i, double factor) {
  check_factor(factor);
  if (i >= u.size()) throw std::out_of_range("improve_single: index");
  auto atoms = u.atoms();
  atoms[i].p *= factor;
  return fault_universe(std::move(atoms), true);
}

fault_universe improve_all(const fault_universe& u, double factor) {
  check_factor(factor);
  auto atoms = u.atoms();
  for (auto& a : atoms) a.p *= factor;
  return fault_universe(std::move(atoms), true);
}

fault_universe improve_class(const fault_universe& u,
                             const std::vector<std::size_t>& indices, double factor) {
  check_factor(factor);
  auto atoms = u.atoms();
  for (const std::size_t i : indices) {
    if (i >= atoms.size()) throw std::out_of_range("improve_class: index");
    atoms[i].p *= factor;
  }
  return fault_universe(std::move(atoms), true);
}

fault_universe with_p(const fault_universe& u, std::size_t i, double p) {
  if (i >= u.size()) throw std::out_of_range("with_p: index");
  if (!(p >= 0.0) || !(p <= 1.0)) throw std::invalid_argument("with_p: p out of [0,1]");
  auto atoms = u.atoms();
  atoms[i].p = p;
  return fault_universe(std::move(atoms), true);
}

fault_universe transform_p(
    const fault_universe& u,
    const std::function<double(double p, double q, std::size_t i)>& f) {
  auto atoms = u.atoms();
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const double p = f(atoms[i].p, atoms[i].q, i);
    if (!(p >= 0.0) || !(p <= 1.0)) {
      throw std::invalid_argument("transform_p: transformed p out of [0,1]");
    }
    atoms[i].p = p;
  }
  return fault_universe(std::move(atoms), true);
}

fault_universe improvement_step::apply(const fault_universe& u) const {
  switch (type) {
    case kind::single:
      return improve_single(u, index, factor);
    case kind::proportional:
      return improve_all(u, factor);
    case kind::fault_class:
      return improve_class(u, indices, factor);
  }
  throw std::logic_error("improvement_step::apply: unknown kind");
}

fault_universe apply_scenario(const fault_universe& u,
                              const std::vector<improvement_step>& steps) {
  fault_universe out = u;
  for (const auto& step : steps) out = step.apply(out);
  return out;
}

improvement_effect evaluate_step(const fault_universe& u, const improvement_step& step) {
  const fault_universe after = step.apply(u);
  improvement_effect e;
  e.mu1_before = single_version_moments(u).mean;
  e.mu1_after = single_version_moments(after).mean;
  e.risk_ratio_before = risk_ratio(u);
  e.risk_ratio_after = risk_ratio(after);
  e.reliability_improved = e.mu1_after < e.mu1_before;
  e.diversity_gain_improved = e.risk_ratio_after < e.risk_ratio_before;
  return e;
}

}  // namespace reldiv::core
