#include "core/fault_universe.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace reldiv::core {

namespace {
constexpr double kQSumTolerance = 1e-9;
}

fault_universe::fault_universe(std::vector<fault_atom> atoms, bool allow_q_overflow)
    : atoms_(std::move(atoms)) {
  double q_sum = 0.0;
  for (const auto& [p, q] : atoms_) {
    if (!(p >= 0.0) || !(p <= 1.0)) {
      throw std::invalid_argument("fault_universe: p out of [0,1]");
    }
    if (!(q >= 0.0) || !(q <= 1.0)) {
      throw std::invalid_argument("fault_universe: q out of [0,1]");
    }
    q_sum += q;
  }
  if (!allow_q_overflow && q_sum > 1.0 + kQSumTolerance) {
    throw std::invalid_argument(
        "fault_universe: sum of q exceeds 1 (violates the disjoint-failure-region "
        "assumption; pass allow_q_overflow=true for deliberate pessimistic models)");
  }
  rebuild_soa();
}

void fault_universe::rebuild_soa() {
  const std::size_t n = atoms_.size();
  p_soa_.resize(n);
  q_soa_.resize(n);
  thresh53_.resize(n);
  thresh32_.resize(n);
  // The 32-bit fast samplers realize p_i as thresh32_[i]/2^32 (rounded up,
  // inflation < 2^-32 per fault).  That is harmless while the aggregate
  // inflation stays negligible against the aggregate signal, but a universe
  // of faults all rarer than the grid (e.g. every p = 1e-12) would have its
  // fault counts and PFDs inflated by orders of magnitude — so gate on the
  // relative inflation of E[N1] = Σp and E[Θ1] = Σpq.
  constexpr double kFast32Tolerance = 1e-6;
  double inflation_p = 0.0;   // Σ (realized - p)
  double inflation_pq = 0.0;  // Σ (realized - p) q
  double sum_p = 0.0;
  double sum_pq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double p = atoms_[i].p;
    const double q = atoms_[i].q;
    p_soa_[i] = p;
    q_soa_[i] = q;
    thresh53_[i] = bernoulli_threshold(p);
    thresh32_[i] = bernoulli_threshold32(p);
    const double realized =
        p >= 1.0 ? 1.0 : static_cast<double>(thresh32_[i]) * 0x1.0p-32;
    inflation_p += realized - p;
    inflation_pq += (realized - p) * q;
    sum_p += p;
    sum_pq += p * q;
  }
  fast32_safe_ = inflation_p <= kFast32Tolerance * sum_p &&
                 inflation_pq <= kFast32Tolerance * sum_pq;
  uniform_p_ = n > 0;
  uniform_p_value_ = n > 0 ? atoms_[0].p : 0.0;
  for (std::size_t i = 1; i < n && uniform_p_; ++i) {
    uniform_p_ = atoms_[i].p == uniform_p_value_;
  }
  make_sample_blocks();
}

void fault_universe::make_sample_blocks() {
  const std::size_t n = atoms_.size();
  // Per-word sampling plan for the grouped bit-slice path: a word is
  // sliceable when all its faults share one p AND the shared threshold
  // costs at most as many rng words per 64 presence bits (53 − trailing
  // zero bits) as the paired 32-bit sampler would (32 per version).
  blocks_.assign(mask_words(), {});
  grouped_p_ = false;
  for (std::size_t blk = 0; blk < blocks_.size(); ++blk) {
    const std::size_t lo = blk << 6;
    const std::size_t hi = std::min<std::size_t>(n, lo + 64);
    bool word_uniform = true;
    for (std::size_t i = lo + 1; i < hi && word_uniform; ++i) {
      word_uniform = atoms_[i].p == atoms_[lo].p;
    }
    if (!word_uniform) continue;
    sample_block& b = blocks_[blk];
    b.uniform = true;
    b.threshold = thresh53_[lo];
    // Break-even against the paired kernel, which costs one rng word per
    // fault per PAIR — i.e. occupancy/2 words per version for this word.
    // Degenerate thresholds (never/always) cost nothing; otherwise the
    // bit-slice recurrence costs 53 − trailing-zero-bits words for all 64
    // lanes regardless of how many faults actually occupy the word, so a
    // short tail word must clear a proportionally higher bar.
    if (b.threshold == 0 || b.threshold == (std::uint64_t{1} << kBernoulliBits)) {
      b.sliceable = true;
    } else {
      const int slice_cost = kBernoulliBits - std::countr_zero(b.threshold);
      b.sliceable = 2 * slice_cost <= static_cast<int>(hi - lo);
    }
    if (b.sliceable) grouped_p_ = true;
  }
  if (uniform_p_) grouped_p_ = false;  // fully-uniform universes use the
                                       // dedicated single-threshold path
}

fault_universe fault_universe::from_arrays(std::span<const double> p,
                                           std::span<const double> q,
                                           bool allow_q_overflow) {
  if (p.size() != q.size()) {
    throw std::invalid_argument("fault_universe::from_arrays: size mismatch");
  }
  std::vector<fault_atom> atoms;
  atoms.reserve(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) atoms.push_back({p[i], q[i]});
  return fault_universe(std::move(atoms), allow_q_overflow);
}

double fault_universe::p_max() const noexcept {
  double m = 0.0;
  for (const auto& a : atoms_) m = std::max(m, a.p);
  return m;
}

double fault_universe::q_max() const noexcept {
  double m = 0.0;
  for (const auto& a : atoms_) m = std::max(m, a.q);
  return m;
}

double fault_universe::q_total() const noexcept {
  double s = 0.0;
  for (const auto& a : atoms_) s += a.q;
  return s;
}

double fault_universe::expected_fault_count() const noexcept {
  double s = 0.0;
  for (const auto& a : atoms_) s += a.p;
  return s;
}

std::vector<double> fault_universe::p_values() const {
  std::vector<double> out;
  out.reserve(atoms_.size());
  for (const auto& a : atoms_) out.push_back(a.p);
  return out;
}

std::vector<double> fault_universe::q_values() const {
  std::vector<double> out;
  out.reserve(atoms_.size());
  for (const auto& a : atoms_) out.push_back(a.q);
  return out;
}

bool fault_universe::all_p_below(double threshold) const noexcept {
  return std::all_of(atoms_.begin(), atoms_.end(),
                     [threshold](const fault_atom& a) { return a.p <= threshold; });
}

std::string fault_universe::describe() const {
  std::ostringstream out;
  out << "fault_universe{n=" << size() << ", pmax=" << p_max()
      << ", E[N1]=" << expected_fault_count() << ", sum_q=" << q_total() << "}";
  return out.str();
}

// ---------------------------------------------------------------------------
// Universe relayout
// ---------------------------------------------------------------------------

fault_mask universe_permutation::mask_to_permuted(const fault_mask& m) const {
  if (m.bit_size() != to_permuted.size()) {
    throw std::invalid_argument("universe_permutation: mask size does not match");
  }
  fault_mask out(m.bit_size());
  const std::uint64_t* words = m.words();
  for (std::size_t b = 0; b < m.word_count(); ++b) {
    std::uint64_t w = words[b];
    while (w != 0) {
      const std::size_t i = (b << 6) + static_cast<std::size_t>(std::countr_zero(w));
      out.set(to_permuted[i]);
      w &= w - 1;
    }
  }
  return out;
}

fault_mask universe_permutation::mask_to_original(const fault_mask& m) const {
  if (m.bit_size() != to_original.size()) {
    throw std::invalid_argument("universe_permutation: mask size does not match");
  }
  fault_mask out(m.bit_size());
  const std::uint64_t* words = m.words();
  for (std::size_t b = 0; b < m.word_count(); ++b) {
    std::uint64_t w = words[b];
    while (w != 0) {
      const std::size_t i = (b << 6) + static_cast<std::size_t>(std::countr_zero(w));
      out.set(to_original[i]);
      w &= w - 1;
    }
  }
  return out;
}

std::vector<double> universe_permutation::values_to_permuted(
    std::span<const double> v) const {
  if (v.size() != to_original.size()) {
    throw std::invalid_argument("universe_permutation: vector size does not match");
  }
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = v[to_original[i]];
  return out;
}

std::vector<double> universe_permutation::values_to_original(
    std::span<const double> v) const {
  if (v.size() != to_permuted.size()) {
    throw std::invalid_argument("universe_permutation: vector size does not match");
  }
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = v[to_permuted[i]];
  return out;
}

universe_permutation make_p_sorted_permutation(const fault_universe& u) {
  const std::size_t n = u.size();
  universe_permutation perm;
  perm.to_original.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    perm.to_original[i] = static_cast<std::uint32_t>(i);
  }
  // Stable sort by p: ties keep original order, so the permutation is a
  // pure function of the atom layout (part of any derived result identity).
  std::stable_sort(perm.to_original.begin(), perm.to_original.end(),
                   [&u](std::uint32_t a, std::uint32_t b) { return u[a].p < u[b].p; });
  perm.to_permuted.resize(n);
  perm.identity = true;
  std::vector<fault_atom> atoms;
  atoms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t src = perm.to_original[i];
    perm.to_permuted[src] = static_cast<std::uint32_t>(i);
    perm.identity = perm.identity && src == i;
    atoms.push_back(u[src]);
  }
  // allow_q_overflow: the atoms already passed validation in the original
  // universe, and re-summing q in permuted order could straddle the
  // tolerance boundary purely through float accumulation order.
  perm.universe = fault_universe(std::move(atoms), /*allow_q_overflow=*/true);
  return perm;
}

}  // namespace reldiv::core
