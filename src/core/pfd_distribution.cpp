#include "core/pfd_distribution.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/distributions.hpp"

namespace reldiv::core {

namespace {

/// Per-fault presence probability in the 1-out-of-m system.
std::vector<double> presence_probs(const fault_universe& u, unsigned m) {
  if (m == 0) throw std::invalid_argument("pfd_distribution: m must be >= 1");
  std::vector<double> probs;
  probs.reserve(u.size());
  for (const auto& a : u) probs.push_back(std::pow(a.p, static_cast<double>(m)));
  return probs;
}

}  // namespace

pfd_distribution::pfd_distribution(std::vector<atom> atoms, double lost_mass)
    : atoms_(std::move(atoms)), lost_mass_(lost_mass) {
  if (lost_mass_ < 0.0 || lost_mass_ > 1.0) {
    throw std::invalid_argument("pfd_distribution: lost_mass out of [0,1]");
  }
  std::sort(atoms_.begin(), atoms_.end(),
            [](const atom& a, const atom& b) { return a.value < b.value; });
  // Coalesce exactly equal values.
  std::vector<atom> merged;
  merged.reserve(atoms_.size());
  for (const auto& a : atoms_) {
    if (!(a.prob >= 0.0)) throw std::invalid_argument("pfd_distribution: negative prob");
    if (a.prob == 0.0) continue;
    if (!merged.empty() && merged.back().value == a.value) {
      merged.back().prob += a.prob;
    } else {
      merged.push_back(a);
    }
  }
  atoms_ = std::move(merged);
  double total = lost_mass_;
  for (const auto& a : atoms_) total += a.prob;
  if (std::fabs(total - 1.0) > 1e-6) {
    throw std::invalid_argument("pfd_distribution: probabilities do not sum to 1");
  }
}

double pfd_distribution::cdf(double x) const noexcept {
  double sum = 0.0;
  for (const auto& a : atoms_) {
    if (a.value > x) break;
    sum += a.prob;
  }
  return sum;
}

double pfd_distribution::quantile(double alpha) const {
  if (!(alpha >= 0.0) || !(alpha <= 1.0)) {
    throw std::invalid_argument("pfd_distribution::quantile: alpha must be in [0,1]");
  }
  if (atoms_.empty()) throw std::domain_error("pfd_distribution::quantile: empty");
  double cum = 0.0;
  for (const auto& a : atoms_) {
    cum += a.prob;
    if (cum + 1e-15 >= alpha) return a.value;
  }
  return atoms_.back().value;
}

double pfd_distribution::mean() const noexcept {
  double m = 0.0;
  for (const auto& a : atoms_) m += a.value * a.prob;
  return m;
}

double pfd_distribution::variance() const noexcept {
  const double mu = mean();
  double v = 0.0;
  for (const auto& a : atoms_) v += (a.value - mu) * (a.value - mu) * a.prob;
  return v;
}

double pfd_distribution::stddev() const noexcept { return std::sqrt(variance()); }

double pfd_distribution::prob_zero() const noexcept {
  return (!atoms_.empty() && atoms_.front().value == 0.0) ? atoms_.front().prob : 0.0;
}

double pfd_distribution::exceedance(double x) const noexcept { return 1.0 - cdf(x); }

double pfd_distribution::min_value() const {
  if (atoms_.empty()) throw std::domain_error("pfd_distribution::min_value: empty");
  return atoms_.front().value;
}

double pfd_distribution::max_value() const {
  if (atoms_.empty()) throw std::domain_error("pfd_distribution::max_value: empty");
  return atoms_.back().value;
}

pfd_distribution exact_pfd_distribution(const fault_universe& u, unsigned m) {
  if (u.size() > 24) {
    throw std::invalid_argument(
        "exact_pfd_distribution: n > 24 would enumerate > 16M subsets; use "
        "pruned_pfd_distribution or grid_pfd_distribution");
  }
  const auto probs = presence_probs(u, m);
  std::vector<pfd_distribution::atom> atoms{{0.0, 1.0}};
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double p = probs[i];
    const double q = u[i].q;
    const std::size_t sz = atoms.size();
    atoms.reserve(sz * 2);
    for (std::size_t j = 0; j < sz; ++j) {
      atoms.push_back({atoms[j].value + q, atoms[j].prob * p});
      atoms[j].prob *= (1.0 - p);
    }
  }
  return pfd_distribution(std::move(atoms));
}

pfd_distribution pruned_pfd_distribution(const fault_universe& u, unsigned m,
                                         double prune_eps, double value_tol) {
  if (!(prune_eps >= 0.0) || prune_eps >= 1e-3) {
    throw std::invalid_argument("pruned_pfd_distribution: prune_eps must be in [0, 1e-3)");
  }
  if (value_tol < 0.0) {
    throw std::invalid_argument("pruned_pfd_distribution: value_tol must be >= 0");
  }
  const auto probs = presence_probs(u, m);
  // Defensive cap: a too-small prune_eps on a dense universe would grow the
  // atom set combinatorially; fail fast instead of exhausting memory.
  constexpr std::size_t kMaxAtoms = 4'000'000;
  std::vector<pfd_distribution::atom> atoms{{0.0, 1.0}};
  std::vector<pfd_distribution::atom> next;
  double lost = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    if (atoms.size() > kMaxAtoms) {
      throw std::runtime_error(
          "pruned_pfd_distribution: atom set exceeds 4M; increase prune_eps or "
          "value_tol, or use grid_pfd_distribution");
    }
    const double p = probs[i];
    const double q = u[i].q;
    next.clear();
    next.reserve(atoms.size() * 2);
    for (const auto& a : atoms) {
      next.push_back({a.value, a.prob * (1.0 - p)});
      next.push_back({a.value + q, a.prob * p});
    }
    // Sort, merge near-equal values, prune tiny masses.
    std::sort(next.begin(), next.end(),
              [](const auto& a, const auto& b) { return a.value < b.value; });
    atoms.clear();
    for (const auto& a : next) {
      if (a.prob < prune_eps) {
        lost += a.prob;
        continue;
      }
      if (!atoms.empty() && a.value - atoms.back().value <= value_tol) {
        // Merge into the existing atom, keeping the probability-weighted value.
        auto& b = atoms.back();
        const double w = b.prob + a.prob;
        b.value = (b.value * b.prob + a.value * a.prob) / w;
        b.prob = w;
      } else {
        atoms.push_back(a);
      }
    }
  }
  return pfd_distribution(std::move(atoms), lost);
}

pfd_distribution grid_pfd_distribution(const fault_universe& u, unsigned m,
                                       std::size_t bins) {
  if (bins < 2) throw std::invalid_argument("grid_pfd_distribution: bins >= 2");
  const auto probs = presence_probs(u, m);
  const double span = u.q_total();
  if (span <= 0.0) {
    return pfd_distribution({{0.0, 1.0}});
  }
  const double cell = span / static_cast<double>(bins - 1);
  std::vector<double> mass(bins, 0.0);
  mass[0] = 1.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double p = probs[i];
    if (p == 0.0) continue;
    const auto shift = static_cast<std::size_t>(std::llround(u[i].q / cell));
    if (shift == 0) continue;  // contribution below grid resolution
    // In-place update from the top down (like the Poisson-binomial DP).
    for (std::size_t j = bins; j-- > 0;) {
      const double moving = mass[j] * p;
      if (moving == 0.0) continue;
      mass[j] -= moving;
      const std::size_t dst = std::min(j + shift, bins - 1);
      mass[dst] += moving;
    }
  }
  std::vector<pfd_distribution::atom> atoms;
  atoms.reserve(bins);
  for (std::size_t j = 0; j < bins; ++j) {
    if (mass[j] > 0.0) atoms.push_back({static_cast<double>(j) * cell, mass[j]});
  }
  return pfd_distribution(std::move(atoms));
}

double normal_approximation::cdf(double x) const {
  if (sigma <= 0.0) return x >= mu ? 1.0 : 0.0;
  return stats::normal_cdf(x, mu, sigma);
}

double normal_approximation::quantile(double alpha) const {
  if (sigma <= 0.0) return mu;
  return stats::normal_quantile(alpha, mu, sigma);
}

normal_approximation normal_approx(const fault_universe& u, unsigned m) {
  const pfd_moments mom = one_out_of_m_moments(u, m);
  return {mom.mean, mom.stddev()};
}

double normal_approximation_distance(const pfd_distribution& exact,
                                     const normal_approximation& approx) {
  // The exact CDF is a step function: the sup distance to a continuous CDF
  // is attained just before or at a jump.
  double d = 0.0;
  double cum = 0.0;
  for (const auto& a : exact.atoms()) {
    const double g = approx.cdf(a.value);
    d = std::max(d, std::fabs(g - cum));  // just below the jump
    cum += a.prob;
    d = std::max(d, std::fabs(g - cum));  // at the jump
  }
  return d;
}

}  // namespace reldiv::core
