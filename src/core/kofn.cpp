#include "core/kofn.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/distributions.hpp"
#include "stats/special_functions.hpp"

namespace reldiv::core {

namespace {

void check_architecture(const architecture& arch) {
  if (arch.versions == 0) {
    throw std::invalid_argument("architecture: versions must be >= 1");
  }
  if (arch.votes_to_defeat == 0 || arch.votes_to_defeat > arch.versions) {
    throw std::invalid_argument(
        "architecture: votes_to_defeat must be in [1, versions]");
  }
}

}  // namespace

const char* architecture::describe() const noexcept {
  if (versions == 1) return "simplex";
  if (versions == 2 && votes_to_defeat == 2) return "1oo2 (paper's diverse pair)";
  if (versions == 3 && votes_to_defeat == 2) return "2oo3 (TMR majority)";
  if (versions == 3 && votes_to_defeat == 3) return "1oo3";
  return "m-out-of-n";
}

double defeat_probability(double p, const architecture& arch) {
  check_architecture(arch);
  if (!(p >= 0.0) || !(p <= 1.0)) {
    throw std::invalid_argument("defeat_probability: p must be in [0,1]");
  }
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  // P(Binomial(n, p) >= m), summed from the top when that is shorter, and
  // in log space per term so tiny p does not underflow to a rounded total.
  const auto n = static_cast<std::int64_t>(arch.versions);
  const auto m = static_cast<std::int64_t>(arch.votes_to_defeat);
  double total = 0.0;
  for (std::int64_t k = m; k <= n; ++k) {
    total += std::exp(stats::log_choose(n, k) + static_cast<double>(k) * std::log(p) +
                      static_cast<double>(n - k) * std::log1p(-p));
  }
  return total > 1.0 ? 1.0 : total;
}

fault_universe architecture_universe(const fault_universe& u, const architecture& arch) {
  check_architecture(arch);
  std::vector<fault_atom> atoms;
  atoms.reserve(u.size());
  for (const auto& a : u) {
    atoms.push_back({defeat_probability(a.p, arch), a.q});
  }
  return fault_universe(std::move(atoms), true);
}

pfd_moments architecture_moments(const fault_universe& u, const architecture& arch) {
  return single_version_moments(architecture_universe(u, arch));
}

double prob_architecture_fault_free(const fault_universe& u, const architecture& arch) {
  double log_prod = 0.0;
  for (const auto& a : u) {
    const double d = defeat_probability(a.p, arch);
    if (d >= 1.0) return 0.0;
    if (d > 0.0) log_prod += std::log1p(-d);
  }
  return std::exp(log_prod);
}

double architecture_risk_ratio(const fault_universe& u, const architecture& arch) {
  double log_prod_single = 0.0;
  double log_prod_arch = 0.0;
  bool single_certain = false;
  bool arch_certain = false;
  for (const auto& a : u) {
    if (a.p >= 1.0) {
      single_certain = true;
    } else if (a.p > 0.0) {
      log_prod_single += std::log1p(-a.p);
    }
    const double d = defeat_probability(a.p, arch);
    if (d >= 1.0) {
      arch_certain = true;
    } else if (d > 0.0) {
      log_prod_arch += std::log1p(-d);
    }
  }
  const double p_single = single_certain ? 1.0 : -std::expm1(log_prod_single);
  const double p_arch = arch_certain ? 1.0 : -std::expm1(log_prod_arch);
  if (p_single <= 0.0) {
    throw std::domain_error("architecture_risk_ratio: P(N1 > 0) == 0");
  }
  return p_arch / p_single;
}

pfd_distribution architecture_pfd_distribution(const fault_universe& u,
                                               const architecture& arch) {
  return exact_pfd_distribution(architecture_universe(u, arch), 1);
}

double spurious_action_probability(double p_spurious, const architecture& arch) {
  check_architecture(arch);
  // Acting needs votes_to_act = n - m + 1 votes; a spurious region triggers
  // action when at least that many versions contain it.
  const architecture dual{arch.versions, arch.versions - arch.votes_to_defeat + 1};
  return defeat_probability(p_spurious, dual);
}

double mean_spurious_rate(const fault_universe& spurious_faults, const architecture& arch) {
  double rate = 0.0;
  for (const auto& a : spurious_faults) {
    rate += spurious_action_probability(a.p, arch) * a.q;
  }
  return rate;
}

}  // namespace reldiv::core
