#pragma once
// The paper's assessor-facing bounds (Sections 3.1 and 5.1):
//
//   eq. (4):  µ2 ≤ pmax · µ1
//   eq. (9):  σ2 <  sqrt(pmax (1 + pmax)) · σ1        (requires all p_i small)
//   eq. (11): µ2 + kσ2 ≤ pmax µ1 + k sqrt(pmax(1+pmax)) σ1
//   eq. (12): µ2 + kσ2 ≤ sqrt(pmax(1+pmax)) (µ1 + kσ1)
//
// The bounds need only pmax — the paper's point is that an assessor who can
// defend a ceiling on the probability of the *most likely* fault gets an
// indisputable reliability-gain floor without knowing any other parameter.

#include "core/fault_universe.hpp"
#include "core/moments.hpp"

namespace reldiv::core {

/// The eq. (9)/(11)/(12) σ-ratio factor sqrt(pmax(1+pmax)).
[[nodiscard]] double sigma_ratio_factor(double p_max);

/// eq. (4): upper bound on µ2 given µ1 and pmax.
[[nodiscard]] double mean_bound(double mu1, double p_max);

/// eq. (9): upper bound on σ2 given σ1 and pmax.  Valid whenever every
/// p_i <= kGoldenThreshold; the caller can check with
/// fault_universe::all_p_below(kGoldenThreshold).
[[nodiscard]] double sigma_bound(double sigma1, double p_max);

/// A one-sided confidence bound µ + kσ on a PFD under the §5 normal
/// approximation.
struct confidence_bound {
  double mu = 0.0;
  double sigma = 0.0;
  double k = 0.0;

  [[nodiscard]] double value() const noexcept { return mu + k * sigma; }
};

/// eq. (11): bound on (µ2 + kσ2) from the one-version moments.  Tighter than
/// eq. (12) but requires knowing µ1 and σ1 separately.
[[nodiscard]] double pair_bound_from_moments(double mu1, double sigma1, double k,
                                             double p_max);

/// eq. (12): bound on (µ2 + kσ2) from the one-version *bound* (µ1 + kσ1)
/// alone: sqrt(pmax(1+pmax)) · (µ1 + kσ1).
[[nodiscard]] double pair_bound_from_bound(double one_version_bound, double p_max);

/// Everything an assessor sees for one universe at one confidence level:
/// computed (exact) bounds and both paper bounds, for cross-checking in the
/// benches and the assessor example.
struct assessor_view {
  double k = 0.0;             ///< one-sided normal multiplier
  double confidence = 0.0;    ///< Φ(k)
  confidence_bound one_version;
  confidence_bound two_version;
  double bound_eq11 = 0.0;
  double bound_eq12 = 0.0;
  double p_max = 0.0;

  /// Ratio bound_eq12 / one-version bound = sigma_ratio_factor(pmax); the
  /// paper's guaranteed "β-factor".
  [[nodiscard]] double guaranteed_gain_factor() const noexcept;
};

/// Build the assessor view for a universe at normal-multiplier k.
[[nodiscard]] assessor_view make_assessor_view(const fault_universe& u, double k);

/// Build the assessor view at a one-sided confidence level alpha (k = Φ⁻¹(alpha)).
[[nodiscard]] assessor_view make_assessor_view_at_confidence(const fault_universe& u,
                                                             double alpha);

}  // namespace reldiv::core
