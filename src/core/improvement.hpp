#pragma once
// Process-improvement operators (paper §4.2): a "process improvement" is a
// transformation of the p-vector.  The paper distinguishes
//   (a) decreasing a single p_i  (new V&V methods targeting one fault type);
//   (b) decreasing all p_i proportionally (more effort on everything);
// and notes any "obviously better" process is a composition of such steps.
// Operators return new universes (fault_universe is a value type).

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/fault_universe.hpp"

namespace reldiv::core {

/// Multiply a single p_i by `factor` in [0, 1] — the §4.2.1 targeted improvement.
[[nodiscard]] fault_universe improve_single(const fault_universe& u, std::size_t i,
                                            double factor);

/// Multiply every p_i by `factor` in [0, 1] — the §4.2.2 proportional improvement.
[[nodiscard]] fault_universe improve_all(const fault_universe& u, double factor);

/// Multiply the p of each fault whose index is in `indices` by `factor`
/// (a "fault class" improvement — the realistic middle ground the paper says
/// real improvements occupy).
[[nodiscard]] fault_universe improve_class(const fault_universe& u,
                                           const std::vector<std::size_t>& indices,
                                           double factor);

/// Set a single p_i to an absolute value.
[[nodiscard]] fault_universe with_p(const fault_universe& u, std::size_t i, double p);

/// Apply an arbitrary p-transformation (p, q, index) -> new p.
[[nodiscard]] fault_universe transform_p(
    const fault_universe& u,
    const std::function<double(double p, double q, std::size_t i)>& f);

/// A named improvement step, so example programs and benches can describe
/// improvement *scenarios* (sequences of steps) symbolically.
struct improvement_step {
  enum class kind { single, proportional, fault_class };
  kind type = kind::proportional;
  double factor = 1.0;                ///< multiplier applied to the targeted p's
  std::size_t index = 0;              ///< for kind::single
  std::vector<std::size_t> indices;   ///< for kind::fault_class
  std::string label;

  [[nodiscard]] fault_universe apply(const fault_universe& u) const;
};

/// Apply a scenario (sequence of steps) left to right.
[[nodiscard]] fault_universe apply_scenario(const fault_universe& u,
                                            const std::vector<improvement_step>& steps);

/// Effect record comparing before/after for the measures the paper tracks.
struct improvement_effect {
  double mu1_before = 0.0, mu1_after = 0.0;   ///< single-version mean PFD
  double risk_ratio_before = 0.0, risk_ratio_after = 0.0;  ///< eq. (10)
  bool reliability_improved = false;   ///< µ1 decreased
  bool diversity_gain_improved = false;  ///< eq. (10) ratio decreased
};

/// Evaluate the paper's central question for one step: did reliability
/// improve, and did the *gain from diversity* improve with it?
[[nodiscard]] improvement_effect evaluate_step(const fault_universe& u,
                                               const improvement_step& step);

}  // namespace reldiv::core
