#pragma once
// The `fast-simd` block sampler: counter-based version-pair generation with
// runtime SIMD dispatch.  This TU family (src/core/simd_sampler.*) is the
// ONLY place in the repo allowed to touch <immintrin.h> — enforced by the
// reldiv_lint `simd-isolation` rule — everything else calls the dispatched
// API below.
//
// Contract: for any universe, key and pair index, sample_pair_counter
// produces bits identical to mc::sample_version_pair_counter_reference at
// EVERY dispatch level.  The SIMD level is a pure throughput knob, exactly
// like the thread count: runtime CPUID dispatch (plus the RELDIV_SIMD
// environment override and a programmatic cap for tests/benches) selects
// between a scalar fallback and AVX2 block kernels compiled from the same
// template (simd_sampler.inl.hpp), and the two are decision-for-decision
// identical because every lane's draw is stats::counter_draw(key, counter) —
// a pure function the vector kernels evaluate four lanes per instruction.
//
// The intended pipeline (mc::run_experiment with sampling_engine::fast_simd):
//   1. relayout: core::make_p_sorted_permutation gathers equal-p faults into
//      whole words, so heterogeneous universes become mostly sliceable;
//   2. plan: make_counter_sample_plan freezes per-word kernel kinds and the
//      per-pair draw budget over the permuted layout;
//   3. blocks: sample_pair_counter_batch generates several version-pairs per
//      pass, amortizing threshold loads across the batch.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/fault_mask.hpp"
#include "core/fault_universe.hpp"

namespace reldiv::core {

/// Dispatch levels, ordered: higher levels may only be selected when the
/// host supports them; every level produces identical bits.
enum class simd_level : std::uint8_t {
  scalar = 0,  ///< portable fallback (same template, scalar ops)
  avx2 = 1,    ///< 4 × 64-bit lanes per instruction
};

[[nodiscard]] const char* simd_level_name(simd_level level) noexcept;

/// Highest level this host can execute (CPUID probe, cached; scalar when the
/// AVX2 TU was compiled without AVX2 support or the arch is not x86).
[[nodiscard]] simd_level detected_simd_level() noexcept;

/// The level the fast-simd engine will actually run: detected_simd_level()
/// capped by the RELDIV_SIMD environment variable ("off"/"scalar" force the
/// fallback; "avx2" requests AVX2 but never raises beyond what the host
/// supports, so forcing it on a non-AVX2 host degrades cleanly to scalar)
/// and by any programmatic cap.  Results are bit-identical across levels, so
/// this is a throughput knob, never a results knob.
[[nodiscard]] simd_level active_simd_level() noexcept;

/// Programmatic cap for tests/benches (e.g. benchmarking the scalar fallback
/// on an AVX2 host).  Like the env override it can only lower the level.
void set_simd_level_cap(simd_level cap) noexcept;
void clear_simd_level_cap() noexcept;

/// Per-word kernel kind of the counter sampler, derived from the universe's
/// sample_blocks plan + fast32_grid_safe exactly as the pinned reference
/// derives them (mc/sampler.hpp documents the draw-consumption contract).
enum class counter_word_kind : std::uint8_t {
  zero,      ///< sliceable, threshold 0: all bits clear, no draws
  one,       ///< sliceable, threshold 2^53: all bits set, no draws
  slice,     ///< bit-slice recurrence: slice_cost draws per version
  paired32,  ///< one draw per fault covers both versions (hi/lo 32-bit)
  wide53,    ///< one draw per fault PER version (53-bit exact thresholds)
};

struct counter_word_plan {
  counter_word_kind kind = counter_word_kind::zero;
  std::uint8_t occupancy = 0;    ///< faults in this word (1..64)
  std::uint8_t slice_cost = 0;   ///< draws per version when kind == slice
  std::uint32_t draw_offset = 0; ///< first counter of this word within a pair
  std::uint64_t threshold = 0;   ///< shared 53-bit threshold when kind == slice
};

/// Frozen per-word plan + per-pair draw budget for one universe.  A pure
/// function of the universe layout; build it once per run, not per sample.
struct counter_sample_plan {
  std::vector<counter_word_plan> words;
  std::uint64_t draws_per_pair = 0;
  std::size_t bits = 0;  ///< universe size the plan was built for
};

[[nodiscard]] counter_sample_plan make_counter_sample_plan(const fault_universe& u);

/// Sample version-pairs [first_pair, first_pair + count) of counter stream
/// `key` into a[0..count) / b[0..count).  Masks are resized to plan.bits as
/// needed (steady-state reuse allocates nothing).  `level` must not exceed
/// detected_simd_level(); pass active_simd_level() unless pinning a level in
/// a test.  Throws std::invalid_argument when the plan does not match `u`.
void sample_pair_counter_batch(const counter_sample_plan& plan,
                               const fault_universe& u, std::uint64_t key,
                               std::uint64_t first_pair, std::size_t count,
                               std::span<fault_mask> a, std::span<fault_mask> b,
                               simd_level level);

/// Single-pair convenience wrapper (batch of one).
void sample_pair_counter(const counter_sample_plan& plan, const fault_universe& u,
                         std::uint64_t key, std::uint64_t pair_index, fault_mask& a,
                         fault_mask& b, simd_level level);

}  // namespace reldiv::core
