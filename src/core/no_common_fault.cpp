#include "core/no_common_fault.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/special_functions.hpp"

namespace reldiv::core {

namespace {

/// Π(1 − f(p_i)) computed in log space.
template <typename F>
double product_complement(const fault_universe& u, F transform) {
  double log_prod = 0.0;
  for (const auto& a : u) {
    const double x = transform(a.p);
    if (x >= 1.0) return 0.0;
    if (x > 0.0) log_prod += std::log1p(-x);
  }
  return std::exp(log_prod);
}

/// 1 − Π(1 − f(p_i)) computed stably.
template <typename F>
double one_minus_product_complement(const fault_universe& u, F transform) {
  double log_prod = 0.0;
  for (const auto& a : u) {
    const double x = transform(a.p);
    if (x >= 1.0) return 1.0;
    if (x > 0.0) log_prod += std::log1p(-x);
  }
  return -std::expm1(log_prod);
}

}  // namespace

double prob_no_fault(const fault_universe& u) {
  return product_complement(u, [](double p) { return p; });
}

double prob_no_common_fault(const fault_universe& u) {
  return product_complement(u, [](double p) { return p * p; });
}

double prob_no_common_fault_m(const fault_universe& u, unsigned m) {
  if (m == 0) throw std::invalid_argument("prob_no_common_fault_m: m must be >= 1");
  return product_complement(
      u, [m](double p) { return std::pow(p, static_cast<double>(m)); });
}

double prob_some_fault(const fault_universe& u) {
  return one_minus_product_complement(u, [](double p) { return p; });
}

double prob_some_common_fault(const fault_universe& u) {
  return one_minus_product_complement(u, [](double p) { return p * p; });
}

double risk_ratio(const fault_universe& u) {
  const double denom = prob_some_fault(u);
  if (denom <= 0.0) {
    throw std::domain_error("risk_ratio: P(N1 > 0) == 0, ratio undefined");
  }
  return prob_some_common_fault(u) / denom;
}

double success_ratio(const fault_universe& u) {
  double r = 1.0;
  for (const auto& a : u) r *= (1.0 + a.p);
  return r;
}

double risk_ratio_derivative(const fault_universe& u, std::size_t i) {
  if (i >= u.size()) throw std::out_of_range("risk_ratio_derivative: index");
  const double pi = u[i].p;
  if (pi >= 1.0) {
    throw std::domain_error("risk_ratio_derivative: closed form requires p_i < 1");
  }
  const double a = prob_no_fault(u);         // A  = Π(1 − p_j)
  const double b = prob_no_common_fault(u);  // B  = Π(1 − p_j²)
  const double n = 1.0 - b;                  // numerator  P(N2 > 0)
  const double d = 1.0 - a;                  // denominator P(N1 > 0)
  if (d <= 0.0) throw std::domain_error("risk_ratio_derivative: P(N1 > 0) == 0");
  // dN/dp_i = 2 p_i Π_{j≠i}(1 − p_j²) = 2 p_i B / (1 − p_i²)
  // dD/dp_i =        Π_{j≠i}(1 − p_j)  =       A / (1 − p_i)
  const double dn = 2.0 * pi * b / (1.0 - pi * pi);
  const double dd = a / (1.0 - pi);
  return (dn * d - n * dd) / (d * d);
}

double risk_ratio_derivative_numeric(const fault_universe& u, std::size_t i, double h) {
  if (i >= u.size()) throw std::out_of_range("risk_ratio_derivative_numeric: index");
  auto atoms = u.atoms();
  const double pi = atoms[i].p;
  const double step = std::min({h, pi / 2.0, (1.0 - pi) / 2.0});
  if (!(step > 0.0)) {
    throw std::domain_error("risk_ratio_derivative_numeric: p_i too close to {0,1}");
  }
  atoms[i].p = pi + step;
  const double hi = risk_ratio(fault_universe(atoms, true));
  atoms[i].p = pi - step;
  const double lo = risk_ratio(fault_universe(atoms, true));
  return (hi - lo) / (2.0 * step);
}

double appendix_a_root(double p2) {
  if (!(p2 > 0.0) || !(p2 < 1.0)) {
    throw std::invalid_argument("appendix_a_root: p2 must be in (0,1)");
  }
  // Unique positive root of p1²(1−p2²) + 2 p1 p2 (1+p2) − p2² = 0.
  return p2 * (std::sqrt(2.0 * (1.0 + p2)) - (1.0 + p2)) / ((1.0 - p2) * (1.0 + p2));
}

double risk_ratio_two_faults(double p1, double p2) {
  return risk_ratio(fault_universe({{p1, 0.0}, {p2, 0.0}}));
}

double find_derivative_zero(const fault_universe& u, std::size_t i, double lo, double hi) {
  if (i >= u.size()) throw std::out_of_range("find_derivative_zero: index");
  auto atoms = u.atoms();
  auto deriv_at = [&](double p) {
    atoms[i].p = p;
    return risk_ratio_derivative(fault_universe(atoms, true), i);
  };
  double flo = deriv_at(lo);
  double fhi = deriv_at(hi);
  if (flo * fhi > 0.0) return -1.0;  // no sign change: no interior zero
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = deriv_at(mid);
    if (fmid == 0.0 || hi - lo < 1e-14) return mid;
    if (flo * fmid <= 0.0) {
      hi = mid;
      fhi = fmid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  return 0.5 * (lo + hi);
}

double risk_ratio_scaled(const std::vector<double>& b, double k) {
  if (!(k >= 0.0)) throw std::invalid_argument("risk_ratio_scaled: k must be >= 0");
  std::vector<fault_atom> atoms;
  atoms.reserve(b.size());
  for (const double bi : b) {
    const double p = k * bi;
    if (!(p >= 0.0) || !(p <= 1.0)) {
      throw std::invalid_argument("risk_ratio_scaled: k*b_i must be in [0,1]");
    }
    atoms.push_back({p, 0.0});
  }
  return risk_ratio(fault_universe(std::move(atoms)));
}

double risk_ratio_scale_derivative(const std::vector<double>& b, double k, double h) {
  const double step = std::min(h, k / 2.0);
  if (!(step > 0.0)) {
    throw std::invalid_argument("risk_ratio_scale_derivative: k too close to 0");
  }
  return (risk_ratio_scaled(b, k + step) - risk_ratio_scaled(b, k - step)) / (2.0 * step);
}

bool appendix_b_monotone_on_grid(const std::vector<double>& b, double k_lo, double k_hi,
                                 int steps) {
  if (steps < 2) throw std::invalid_argument("appendix_b_monotone_on_grid: steps >= 2");
  if (!(k_lo > 0.0) || !(k_hi > k_lo)) {
    throw std::invalid_argument("appendix_b_monotone_on_grid: need 0 < k_lo < k_hi");
  }
  constexpr double kTol = 1e-12;
  double prev = risk_ratio_scaled(b, k_lo);
  for (int s = 1; s < steps; ++s) {
    const double k =
        k_lo + (k_hi - k_lo) * static_cast<double>(s) / static_cast<double>(steps - 1);
    const double cur = risk_ratio_scaled(b, k);
    if (cur < prev - kTol) return false;
    prev = cur;
  }
  return true;
}

}  // namespace reldiv::core
