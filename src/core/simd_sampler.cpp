// fast-simd dispatch + plan construction + scalar instantiation.  The AVX2
// instantiation lives in simd_sampler.avx2.cpp (the one TU compiled with
// -mavx2); this TU stays portable and decides at runtime which one runs.

#include "core/simd_sampler.inl.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace reldiv::core {

namespace detail {
// Defined in simd_sampler.avx2.cpp.  When that TU was compiled without AVX2
// support (non-x86 arch or a compiler without -mavx2) it forwards to the
// scalar template and avx2_compiled() reports false, so dispatch never
// claims a level it cannot deliver.
bool avx2_compiled() noexcept;
void sample_pair_counter_batch_avx2(const counter_sample_plan& plan,
                                    std::span<const std::uint64_t> t32,
                                    std::span<const std::uint64_t> t53,
                                    std::uint64_t key, std::uint64_t first_pair,
                                    std::size_t count, std::span<fault_mask> a,
                                    std::span<fault_mask> b);
}  // namespace detail

namespace {

/// Programmatic cap (tests/benches).  Stored +1 so 0 means "no cap".
std::atomic<std::uint8_t> g_level_cap{0};

simd_level env_level_cap() noexcept {
  // Read once: the override is a process-wide throughput knob, like thread
  // count.  Results are bit-identical across levels either way.
  static const simd_level cap = [] {
    const char* env = std::getenv("RELDIV_SIMD");
    if (env != nullptr) {
      const std::string_view v(env);
      if (v == "off" || v == "scalar" || v == "0") return simd_level::scalar;
    }
    return simd_level::avx2;  // no cap (never raises above detected)
  }();
  return cap;
}

}  // namespace

const char* simd_level_name(simd_level level) noexcept {
  switch (level) {
    case simd_level::scalar:
      return "scalar";
    case simd_level::avx2:
      return "avx2";
  }
  return "unknown";
}

simd_level detected_simd_level() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  static const bool avx2 =
      __builtin_cpu_supports("avx2") != 0 && detail::avx2_compiled();
  return avx2 ? simd_level::avx2 : simd_level::scalar;
#else
  return simd_level::scalar;
#endif
}

simd_level active_simd_level() noexcept {
  simd_level level = detected_simd_level();
  const simd_level env_cap = env_level_cap();
  if (env_cap < level) level = env_cap;
  const std::uint8_t cap = g_level_cap.load(std::memory_order_relaxed);
  if (cap != 0 && static_cast<simd_level>(cap - 1) < level) {
    level = static_cast<simd_level>(cap - 1);
  }
  return level;
}

void set_simd_level_cap(simd_level cap) noexcept {
  g_level_cap.store(static_cast<std::uint8_t>(static_cast<std::uint8_t>(cap) + 1),
                    std::memory_order_relaxed);
}

void clear_simd_level_cap() noexcept {
  g_level_cap.store(0, std::memory_order_relaxed);
}

counter_sample_plan make_counter_sample_plan(const fault_universe& u) {
  // Derives word kinds from sample_blocks + fast32_grid_safe by the SAME
  // rules as mc::sample_version_pair_counter_reference (the pinned
  // contract); the equivalence fuzz in tests/mc_simd_sampler_test.cpp keeps
  // the two derivations from drifting apart.
  counter_sample_plan plan;
  plan.bits = u.size();
  const auto blocks = u.sample_blocks();
  const bool grid_safe = u.fast32_grid_safe();
  plan.words.reserve(blocks.size());
  std::uint64_t offset = 0;
  for (std::size_t blk = 0; blk < blocks.size(); ++blk) {
    const std::size_t lo = blk << 6;
    const std::size_t occupancy = std::min<std::size_t>(u.size(), lo + 64) - lo;
    const sample_block& b = blocks[blk];
    counter_word_plan w;
    w.occupancy = static_cast<std::uint8_t>(occupancy);
    w.draw_offset = static_cast<std::uint32_t>(offset);
    if (b.sliceable) {
      if (b.threshold == 0) {
        w.kind = counter_word_kind::zero;
      } else if (b.threshold == (std::uint64_t{1} << kBernoulliBits)) {
        w.kind = counter_word_kind::one;
      } else {
        w.kind = counter_word_kind::slice;
        w.threshold = b.threshold;
        w.slice_cost = static_cast<std::uint8_t>(kBernoulliBits -
                                                 std::countr_zero(b.threshold));
        offset += 2 * static_cast<std::uint64_t>(w.slice_cost);
      }
    } else if (grid_safe) {
      w.kind = counter_word_kind::paired32;
      offset += occupancy;
    } else {
      w.kind = counter_word_kind::wide53;
      offset += 2 * occupancy;
    }
    plan.words.push_back(w);
  }
  plan.draws_per_pair = offset;
  return plan;
}

void sample_pair_counter_batch(const counter_sample_plan& plan,
                               const fault_universe& u, std::uint64_t key,
                               std::uint64_t first_pair, std::size_t count,
                               std::span<fault_mask> a, std::span<fault_mask> b,
                               simd_level level) {
  if (plan.bits != u.size() || plan.words.size() != u.mask_words()) {
    throw std::invalid_argument(
        "sample_pair_counter_batch: plan does not match universe");
  }
  if (a.size() < count || b.size() < count) {
    throw std::invalid_argument(
        "sample_pair_counter_batch: mask spans shorter than batch");
  }
  switch (level) {
    case simd_level::avx2:
      detail::sample_pair_counter_batch_avx2(plan, u.bernoulli_thresholds32(),
                                             u.bernoulli_thresholds(), key,
                                             first_pair, count, a, b);
      return;
    case simd_level::scalar:
      break;
  }
  detail::sample_pair_counter_batch_impl<detail::scalar_word_ops>(
      plan, u.bernoulli_thresholds32(), u.bernoulli_thresholds(), key,
      first_pair, count, a, b);
}

void sample_pair_counter(const counter_sample_plan& plan, const fault_universe& u,
                         std::uint64_t key, std::uint64_t pair_index, fault_mask& a,
                         fault_mask& b, simd_level level) {
  sample_pair_counter_batch(plan, u, key, pair_index, 1, std::span<fault_mask>(&a, 1),
                            std::span<fault_mask>(&b, 1), level);
}

}  // namespace reldiv::core
