#include "core/bounds.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/distributions.hpp"

namespace reldiv::core {

namespace {

void check_pmax(double p_max) {
  if (!(p_max >= 0.0) || !(p_max <= 1.0)) {
    throw std::invalid_argument("p_max must be in [0,1]");
  }
}

}  // namespace

double sigma_ratio_factor(double p_max) {
  check_pmax(p_max);
  return std::sqrt(p_max * (1.0 + p_max));
}

double mean_bound(double mu1, double p_max) {
  check_pmax(p_max);
  if (mu1 < 0.0) throw std::invalid_argument("mean_bound: mu1 must be >= 0");
  return p_max * mu1;
}

double sigma_bound(double sigma1, double p_max) {
  check_pmax(p_max);
  if (sigma1 < 0.0) throw std::invalid_argument("sigma_bound: sigma1 must be >= 0");
  return sigma_ratio_factor(p_max) * sigma1;
}

double pair_bound_from_moments(double mu1, double sigma1, double k, double p_max) {
  return mean_bound(mu1, p_max) + k * sigma_bound(sigma1, p_max);
}

double pair_bound_from_bound(double one_version_bound, double p_max) {
  check_pmax(p_max);
  if (one_version_bound < 0.0) {
    throw std::invalid_argument("pair_bound_from_bound: bound must be >= 0");
  }
  return sigma_ratio_factor(p_max) * one_version_bound;
}

double assessor_view::guaranteed_gain_factor() const noexcept {
  return std::sqrt(p_max * (1.0 + p_max));
}

assessor_view make_assessor_view(const fault_universe& u, double k) {
  if (!(k >= 0.0)) throw std::invalid_argument("make_assessor_view: k must be >= 0");
  const pfd_moments m1 = single_version_moments(u);
  const pfd_moments m2 = pair_moments(u);
  assessor_view v;
  v.k = k;
  v.confidence = stats::confidence_from_k(k);
  v.one_version = {m1.mean, m1.stddev(), k};
  v.two_version = {m2.mean, m2.stddev(), k};
  v.p_max = u.p_max();
  v.bound_eq11 = pair_bound_from_moments(m1.mean, m1.stddev(), k, v.p_max);
  v.bound_eq12 = pair_bound_from_bound(v.one_version.value(), v.p_max);
  return v;
}

assessor_view make_assessor_view_at_confidence(const fault_universe& u, double alpha) {
  if (!(alpha >= 0.5) || !(alpha < 1.0)) {
    throw std::invalid_argument(
        "make_assessor_view_at_confidence: alpha must be in [0.5, 1) for a one-sided "
        "upper bound");
  }
  return make_assessor_view(u, stats::one_sided_k(alpha));
}

}  // namespace reldiv::core
