#include "core/generators.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/random.hpp"

namespace reldiv::core {

namespace {

void check_range(double lo, double hi, const char* what) {
  if (!(lo >= 0.0) || !(hi <= 1.0) || !(lo <= hi)) {
    throw std::invalid_argument(std::string("generator: bad range for ") + what);
  }
}

void check_q_total(double q_total) {
  if (!(q_total >= 0.0) || !(q_total <= 1.0)) {
    throw std::invalid_argument("generator: q_total must be in [0,1]");
  }
}

/// Normalize raw weights to sum to q_total.
std::vector<double> normalize_to(std::vector<double> raw, double q_total) {
  double sum = 0.0;
  for (const double w : raw) sum += w;
  if (sum <= 0.0) throw std::logic_error("generator: degenerate q weights");
  for (double& w : raw) w *= q_total / sum;
  return raw;
}

}  // namespace

fault_universe make_safety_grade_universe(std::size_t n, double p_lo, double p_hi,
                                          double q_total, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("generator: n must be > 0");
  check_range(p_lo, p_hi, "p");
  check_q_total(q_total);
  stats::rng r(seed);
  std::vector<double> q_raw(n);
  // Lognormal weights: a few failure regions dominate, matching the
  // reported heavy-tailed size spectra of real failure regions [9,10,11].
  for (auto& w : q_raw) w = std::exp(1.5 * stats::normal_deviate(r));
  const auto q = normalize_to(std::move(q_raw), q_total);
  std::vector<fault_atom> atoms(n);
  for (std::size_t i = 0; i < n; ++i) {
    atoms[i] = {r.uniform(p_lo, p_hi), q[i]};
  }
  return fault_universe(std::move(atoms));
}

fault_universe make_many_small_faults_universe(std::size_t n, double p_lo, double p_hi,
                                               double q_total, double jitter,
                                               std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("generator: n must be > 0");
  check_range(p_lo, p_hi, "p");
  check_q_total(q_total);
  if (!(jitter >= 0.0) || jitter >= 1.0) {
    throw std::invalid_argument("generator: jitter must be in [0,1)");
  }
  stats::rng r(seed);
  std::vector<double> q_raw(n);
  for (auto& w : q_raw) w = 1.0 + jitter * (2.0 * r.uniform() - 1.0);
  const auto q = normalize_to(std::move(q_raw), q_total);
  std::vector<fault_atom> atoms(n);
  for (std::size_t i = 0; i < n; ++i) {
    atoms[i] = {r.uniform(p_lo, p_hi), q[i]};
  }
  return fault_universe(std::move(atoms));
}

fault_universe make_random_universe(std::size_t n, double p_max, double q_total,
                                    std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("generator: n must be > 0");
  check_range(0.0, p_max, "p");
  check_q_total(q_total);
  stats::rng r(seed);
  std::vector<double> q_raw(n);
  for (auto& w : q_raw) w = -std::log(1.0 - r.uniform());  // Exp(1): Dirichlet(1..1)
  const auto q = normalize_to(std::move(q_raw), q_total);
  std::vector<fault_atom> atoms(n);
  for (std::size_t i = 0; i < n; ++i) {
    atoms[i] = {r.uniform(0.0, p_max), q[i]};
  }
  return fault_universe(std::move(atoms));
}

fault_universe make_dominant_fault_universe(std::size_t n, double p_dominant,
                                            double p_background, double q_total,
                                            std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("generator: n must be > 0");
  check_range(0.0, p_dominant, "p_dominant");
  check_range(0.0, p_background, "p_background");
  check_q_total(q_total);
  stats::rng r(seed);
  std::vector<double> q_raw(n, 1.0);
  q_raw[0] = 3.0;  // the dominant fault also has a larger region
  const auto q = normalize_to(std::move(q_raw), q_total);
  std::vector<fault_atom> atoms(n);
  atoms[0] = {p_dominant, q[0]};
  for (std::size_t i = 1; i < n; ++i) {
    atoms[i] = {r.uniform(0.0, p_background), q[i]};
  }
  return fault_universe(std::move(atoms));
}

fault_universe make_homogeneous_universe(std::size_t n, double p, double q) {
  if (n == 0) throw std::invalid_argument("generator: n must be > 0");
  if (static_cast<double>(n) * q > 1.0 + 1e-12) {
    throw std::invalid_argument("generator: n*q must be <= 1 for disjoint regions");
  }
  return fault_universe(std::vector<fault_atom>(n, fault_atom{p, q}));
}

fault_universe make_grouped_universe(std::span<const fault_block> blocks) {
  if (blocks.empty()) throw std::invalid_argument("generator: need >= 1 block");
  std::vector<fault_atom> atoms;
  for (const auto& b : blocks) {
    if (b.n == 0) throw std::invalid_argument("generator: empty block");
    atoms.insert(atoms.end(), b.n, fault_atom{b.p, b.q});
  }
  return fault_universe(std::move(atoms));
}

fault_universe make_knight_leveson_like_universe(std::uint64_t seed) {
  // The KL experiment found a small number of distinct faults across 27
  // versions, with per-version failure probabilities spanning roughly
  // 1e-4 .. 1e-2 on a uniform demand profile of ~1M demands.  We model 12
  // potential faults: a couple relatively likely to be introduced (the
  // "hard" parts of the specification), the rest rare.
  stats::rng r(seed);
  std::vector<fault_atom> atoms;
  const std::size_t n = 12;
  for (std::size_t i = 0; i < n; ++i) {
    // p spans 0.02 .. 0.30 with two "difficult spec clause" faults on top.
    const double base_p = (i < 2) ? 0.30 : 0.02 + 0.10 * r.uniform();
    // q spans 1e-4 .. 2e-2, log-uniform.
    const double q = std::exp(r.uniform(std::log(1e-4), std::log(2e-2)));
    atoms.push_back({base_p, q});
  }
  return fault_universe(std::move(atoms));
}

}  // namespace reldiv::core
