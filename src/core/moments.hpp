#pragma once
// Exact first and second moments of the probability of failure on demand
// (paper Section 3, equations 1-3):
//
//   E[Θ1]   = Σ p_i q_i                    (mean PFD of one version)
//   E[Θ2]   = Σ p_i² q_i                   (mean PFD of a 1-out-of-2 pair)
//   σ²(Θ1)  = Σ p_i (1−p_i) q_i²
//   σ²(Θ2)  = Σ p_i² (1−p_i²) q_i²
//
// Generalized to 1-out-of-m (a fault is common to all m independently
// developed versions with probability p_i^m), which the paper's 2-version
// formulas are the m=2 case of.

#include "core/fault_universe.hpp"

namespace reldiv::core {

/// Mean and standard deviation of a PFD random variable.
struct pfd_moments {
  double mean = 0.0;
  double variance = 0.0;

  [[nodiscard]] double stddev() const noexcept;
  /// Coefficient of variation σ/µ (0 when µ == 0).
  [[nodiscard]] double cv() const noexcept;
};

/// Moments of Θ1 (single version) — eq. (1) left / eq. (2) left.
[[nodiscard]] pfd_moments single_version_moments(const fault_universe& u);

/// Moments of Θ2 (1-out-of-2 diverse pair) — eq. (1) right / eq. (2) right.
[[nodiscard]] pfd_moments pair_moments(const fault_universe& u);

/// Moments of the 1-out-of-m diverse system (m >= 1).
[[nodiscard]] pfd_moments one_out_of_m_moments(const fault_universe& u, unsigned m);

/// The EL/LM "independence shortfall" exposed by eq. (1): failure
/// independence would predict a pair PFD of (E[Θ1])², but the model gives
///   E[Θ2] − (E[Θ1])² = Σ p_i² q_i − (Σ p_i q_i)²,
/// which is ≥ 0 whenever Σ q_i ≤ 1 (Cauchy–Schwarz).  A positive value is
/// exactly the coincident-failure excess the EL and LM models predict.
[[nodiscard]] double independence_shortfall(const fault_universe& u);

/// Mean reliability gain E[Θ1]/E[Θ2] (infinity if E[Θ2] == 0).
[[nodiscard]] double mean_gain(const fault_universe& u);

}  // namespace reldiv::core
