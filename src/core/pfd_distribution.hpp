#pragma once
// The full probability distribution of the PFD random variables Θ1 / Θ2 /
// Θ(1-out-of-m).
//
// In the model, Θ = Σ_i X_i q_i with X_i ~ Bernoulli(p_i^m) independent, so
// the law of Θ is a discrete mixture over fault subsets.  The paper works
// with (a) the two moments and (b) a normal (CLT) approximation for the
// "many small faults" regime (§5), and with P(Θ = 0) for the "probably
// fault-free" regime (§4).  This module computes the *exact* law three ways
// so that both regimes — and the quality of the paper's normal
// approximation (experiment E9) — can be checked rather than assumed:
//
//   * exact subset enumeration           n <= 24          (2^n atoms)
//   * sparse DP with probability pruning n large, E[N] small
//   * fixed-grid convolution DP          n large, E[N] large
//
// All three return the same `pfd_distribution` value type.

#include <cstddef>
#include <vector>

#include "core/fault_universe.hpp"
#include "core/moments.hpp"

namespace reldiv::core {

/// A discrete probability distribution over PFD values.
class pfd_distribution {
 public:
  struct atom {
    double value = 0.0;
    double prob = 0.0;
  };

  /// Atoms need not be sorted or unique on input; the constructor sorts and
  /// coalesces.  `lost_mass` records probability discarded by pruning: all
  /// probability statements are then exact within ±lost_mass.
  explicit pfd_distribution(std::vector<atom> atoms, double lost_mass = 0.0);

  [[nodiscard]] const std::vector<atom>& atoms() const noexcept { return atoms_; }
  [[nodiscard]] double lost_mass() const noexcept { return lost_mass_; }

  /// P(Θ <= x) (lower bound if mass was pruned).
  [[nodiscard]] double cdf(double x) const noexcept;
  /// Smallest atom value v with P(Θ <= v) >= alpha.
  [[nodiscard]] double quantile(double alpha) const;
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// P(Θ = 0) — the §4 fault-free probability.
  [[nodiscard]] double prob_zero() const noexcept;
  /// P(Θ > x).
  [[nodiscard]] double exceedance(double x) const noexcept;
  [[nodiscard]] double min_value() const;
  [[nodiscard]] double max_value() const;
  [[nodiscard]] std::size_t size() const noexcept { return atoms_.size(); }

 private:
  std::vector<atom> atoms_;  ///< sorted by value, coalesced
  double lost_mass_ = 0.0;
};

/// Exact law of Θ for a 1-out-of-m system by subset enumeration.
/// Throws std::invalid_argument for n > 24 (use the DP variants instead).
[[nodiscard]] pfd_distribution exact_pfd_distribution(const fault_universe& u,
                                                      unsigned m = 1);

/// Sparse dynamic programme: exact except that partial sums with probability
/// below `prune_eps` are dropped (recorded in lost_mass), and values closer
/// than `value_tol` are merged.  Suits large n with few expected faults.
[[nodiscard]] pfd_distribution pruned_pfd_distribution(const fault_universe& u, unsigned m,
                                                       double prune_eps = 1e-14,
                                                       double value_tol = 0.0);

/// Fixed-grid convolution over `bins` equal-width cells of [0, Σq]: each
/// fault's contribution is rounded to the nearest cell.  Suits the §5
/// "very many possible faults" regime.
[[nodiscard]] pfd_distribution grid_pfd_distribution(const fault_universe& u, unsigned m,
                                                     std::size_t bins = 4096);

/// The §5 normal approximation N(µ, σ²) of a PFD law.
struct normal_approximation {
  double mu = 0.0;
  double sigma = 0.0;

  [[nodiscard]] double cdf(double x) const;
  /// Φ⁻¹-based quantile; for sigma == 0 returns mu for any alpha.
  [[nodiscard]] double quantile(double alpha) const;
  /// µ + kσ.
  [[nodiscard]] double bound(double k) const noexcept { return mu + k * sigma; }
};

/// Normal approximation of Θ for the 1-out-of-m system (m = 1: single
/// version; m = 2: the paper's diverse pair).
[[nodiscard]] normal_approximation normal_approx(const fault_universe& u, unsigned m);

/// Kolmogorov distance sup_x |F_exact(x) − Φ((x−µ)/σ)| between an exact PFD
/// law and its moment-matched normal approximation (experiment E9's measure
/// of CLT quality).
[[nodiscard]] double normal_approximation_distance(const pfd_distribution& exact,
                                                   const normal_approximation& approx);

}  // namespace reldiv::core
