#include "core/moments.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace reldiv::core {

double pfd_moments::stddev() const noexcept { return std::sqrt(variance); }

double pfd_moments::cv() const noexcept { return mean > 0.0 ? stddev() / mean : 0.0; }

pfd_moments single_version_moments(const fault_universe& u) {
  return one_out_of_m_moments(u, 1);
}

pfd_moments pair_moments(const fault_universe& u) { return one_out_of_m_moments(u, 2); }

pfd_moments one_out_of_m_moments(const fault_universe& u, unsigned m) {
  if (m == 0) throw std::invalid_argument("one_out_of_m_moments: m must be >= 1");
  pfd_moments out;
  for (const auto& [p, q] : u) {
    // A fault is common to all m versions with probability p^m; its PFD
    // contribution is then a Bernoulli(p^m)-weighted q.
    const double pm = std::pow(p, static_cast<double>(m));
    out.mean += pm * q;
    out.variance += pm * (1.0 - pm) * q * q;
  }
  return out;
}

double independence_shortfall(const fault_universe& u) {
  const double mu1 = single_version_moments(u).mean;
  const double mu2 = pair_moments(u).mean;
  return mu2 - mu1 * mu1;
}

double mean_gain(const fault_universe& u) {
  const double mu1 = single_version_moments(u).mean;
  const double mu2 = pair_moments(u).mean;
  if (mu2 == 0.0) {
    return mu1 == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return mu1 / mu2;
}

}  // namespace reldiv::core
