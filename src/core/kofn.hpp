#pragma once
// Beyond 1-out-of-2: general m-out-of-n diverse architectures.
//
// The paper restricts itself to "the simplest possible diverse-redundant
// configuration: two versions, with perfect adjudication (simple 'OR' ...)"
// and lists richer arrangements as future work.  The fault-creation model
// extends cleanly: with n independently developed versions, the number of
// versions containing fault i is Binomial(n, p_i), so for an architecture
// that fails on a demand when at least m versions fail there (a
// "m-out-of-n:G" voter over binary outputs):
//
//   P(fault i defeats the architecture) = P(Binomial(n, p_i) >= m)
//
// and the PFD is again a sum of independent Bernoulli-weighted q_i — the
// whole §3-§5 machinery (moments, bounds, exact laws, normal approximation)
// applies with transformed presence probabilities.
//
// Nomenclature: `votes_to_defeat` = m above.  A 1-out-of-2 protection pair
// (system fails only if BOTH channels fail) is {n = 2, m = 2} here; the
// industry name "1oo2" counts votes needed to *act*, our m counts versions
// that must be *faulty* — the two conventions are duals (m = n − k + 1).

#include "core/fault_universe.hpp"
#include "core/moments.hpp"
#include "core/pfd_distribution.hpp"

namespace reldiv::core {

/// A diverse architecture over `versions` independently developed channels
/// that fails on a demand iff at least `votes_to_defeat` of them fail there.
struct architecture {
  unsigned versions = 2;
  unsigned votes_to_defeat = 2;

  /// The paper's 1-out-of-2 protection pair.
  static constexpr architecture one_out_of_two() { return {2, 2}; }
  /// Triple modular redundancy with majority voting: fails when >= 2 of 3
  /// versions fail.
  static constexpr architecture two_out_of_three() { return {3, 2}; }
  /// Single version.
  static constexpr architecture simplex() { return {1, 1}; }

  [[nodiscard]] const char* describe() const noexcept;
};

/// P(at least m of n independent versions contain a fault of probability p):
/// the architecture-level presence probability.  Exact summation; stable for
/// tiny p (leading term C(n,m) p^m).
[[nodiscard]] double defeat_probability(double p, const architecture& arch);

/// Transform a universe's p-values to architecture-level presence
/// probabilities: the returned universe, fed to the *single-version*
/// formulas, yields the architecture's PFD statistics.
[[nodiscard]] fault_universe architecture_universe(const fault_universe& u,
                                                   const architecture& arch);

/// Moments of the architecture PFD (eq. 1-2 generalized).
[[nodiscard]] pfd_moments architecture_moments(const fault_universe& u,
                                               const architecture& arch);

/// P(no fault defeats the architecture) — §4 generalized.
[[nodiscard]] double prob_architecture_fault_free(const fault_universe& u,
                                                  const architecture& arch);

/// Risk ratio P(architecture defeated by >= 1 fault) / P(N1 > 0): the
/// eq. (10) generalization.  Throws std::domain_error when P(N1>0) == 0.
[[nodiscard]] double architecture_risk_ratio(const fault_universe& u,
                                             const architecture& arch);

/// Exact architecture PFD law by subset enumeration (n <= 24 faults).
[[nodiscard]] pfd_distribution architecture_pfd_distribution(const fault_universe& u,
                                                             const architecture& arch);

/// Spurious-action analysis: each version also carries "false-trip" faults
/// (regions of NORMAL operation where it demands action).  For a voter that
/// ACTS when at least `votes_to_act` versions demand action, a spurious
/// fault region triggers spurious action iff at least votes_to_act versions
/// contain it, where votes_to_act = versions - votes_to_defeat + 1.
/// This is the availability price of defeating demand failures.
[[nodiscard]] double spurious_action_probability(double p_spurious,
                                                 const architecture& arch);

/// Mean spurious-action rate of an architecture over a universe of
/// false-trip faults (p = introduction probability, q = probability per
/// unit time of visiting the spurious region).
[[nodiscard]] double mean_spurious_rate(const fault_universe& spurious_faults,
                                        const architecture& arch);

}  // namespace reldiv::core
