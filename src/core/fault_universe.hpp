#pragma once
// The paper's central object (Section 2.2): a fixed collection of potential
// faults {F1 .. Fn}.  Fault i is independently left in a newly developed
// version with probability p_i; if present, its (disjoint) failure region is
// hit by an operational demand with probability q_i.
//
// A `fault_universe` is an immutable value type: process-improvement
// operators (improvement.hpp) return transformed copies, matching the
// paper's treatment of "a process" as a parameter vector.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/fault_mask.hpp"

namespace reldiv::core {

/// Per-64-fault-word sampling plan entry: when every fault in the word
/// shares one p, the word-parallel bit-slice sampler can emit all 64
/// presence bits from (53 − trailing-zero-bits) rng words; otherwise the
/// word falls back to a per-fault kernel.  Computed once at construction
/// (the universe is immutable), purely from the p layout — never from
/// hardware — so kernel selection is part of the deterministic result
/// identity.
struct sample_block {
  bool uniform = false;          ///< all faults in this word share one p
  bool sliceable = false;        ///< uniform AND the threshold is cheap enough
                                 ///< that bit-slicing beats the paired sampler
  std::uint64_t threshold = 0;   ///< 53-bit Bernoulli threshold of the shared p
};

/// One potential fault: (p, q) as defined in the paper's Table 1.
struct fault_atom {
  double p = 0.0;  ///< probability the fault is present in a random version
  double q = 0.0;  ///< probability per demand of hitting its failure region

  friend bool operator==(const fault_atom&, const fault_atom&) = default;
};

class fault_universe {
 public:
  fault_universe() = default;

  /// Throws std::invalid_argument unless every p in [0,1], every q in [0,1],
  /// and sum(q) <= 1 + tolerance (the paper's disjoint-region constraint,
  /// discussed in §6.2).  Pass `allow_q_overflow = true` to build
  /// deliberately pessimistic universes for the §6.2 sensitivity study.
  explicit fault_universe(std::vector<fault_atom> atoms, bool allow_q_overflow = false);

  /// Convenience: parallel (p, q) arrays.
  static fault_universe from_arrays(std::span<const double> p, std::span<const double> q,
                                    bool allow_q_overflow = false);

  [[nodiscard]] std::size_t size() const noexcept { return atoms_.size(); }
  [[nodiscard]] bool empty() const noexcept { return atoms_.empty(); }
  /// Unchecked (debug-asserted) access: this sits on the Monte-Carlo hot
  /// path, so no bounds check in release builds.  Use at() for checked access.
  [[nodiscard]] const fault_atom& operator[](std::size_t i) const noexcept {
    assert(i < atoms_.size());
    return atoms_[i];
  }
  /// Checked access; throws std::out_of_range.
  [[nodiscard]] const fault_atom& at(std::size_t i) const { return atoms_.at(i); }
  [[nodiscard]] const std::vector<fault_atom>& atoms() const noexcept { return atoms_; }

  [[nodiscard]] auto begin() const noexcept { return atoms_.begin(); }
  [[nodiscard]] auto end() const noexcept { return atoms_.end(); }

  /// pmax = max{p_1 .. p_n} (paper §3.1.1); 0 for the empty universe.
  [[nodiscard]] double p_max() const noexcept;
  /// max q_i; 0 for the empty universe.
  [[nodiscard]] double q_max() const noexcept;
  /// sum of q_i (<= 1 under the disjointness assumption).
  [[nodiscard]] double q_total() const noexcept;
  /// Expected number of faults in a version = sum p_i.
  [[nodiscard]] double expected_fault_count() const noexcept;

  [[nodiscard]] std::vector<double> p_values() const;
  [[nodiscard]] std::vector<double> q_values() const;

  /// True iff every p_i <= threshold (used for the eq. 9 golden-ratio
  /// precondition).
  [[nodiscard]] bool all_p_below(double threshold) const noexcept;

  /// Human-readable one-line description for bench output.
  [[nodiscard]] std::string describe() const;

  // --- SoA view for the bitset Monte-Carlo engine -------------------------
  // Contiguous parallel arrays cached at construction (the universe is an
  // immutable value type, so they never go stale): per-fault p and q for
  // vectorizable kernels, plus precomputed integer Bernoulli thresholds so
  // sampling is one rng word + one integer compare per fault, with no
  // double-precision path.

  /// Contiguous p array (parallel to atoms()).
  [[nodiscard]] std::span<const double> p_array() const noexcept { return p_soa_; }
  /// Contiguous q array (parallel to atoms()); the masked-dot-product target
  /// of fault_mask PFD kernels.
  [[nodiscard]] std::span<const double> q_array() const noexcept { return q_soa_; }
  /// 53-bit thresholds: (rng() >> 11) < threshold[i] is decision-for-decision
  /// identical to rng.bernoulli(p_i).
  [[nodiscard]] std::span<const std::uint64_t> bernoulli_thresholds() const noexcept {
    return thresh53_;
  }
  /// 32-bit thresholds for halved-draw samplers (p rounded to the 2^-32 grid).
  [[nodiscard]] std::span<const std::uint64_t> bernoulli_thresholds32() const noexcept {
    return thresh32_;
  }
  /// True iff realizing every p on the 2^-32 grid (rounded up) inflates the
  /// aggregate statistics E[N1] = Σp and E[Θ1] = Σpq by less than a 1e-6
  /// relative factor.  False for universes dominated by faults rarer than
  /// the grid resolves — e.g. every p = 1e-12 would be sampled as
  /// 2^-32 ≈ 2.3e-10, a ~233x oversample — in which case engines must fall
  /// back to the 53-bit kernels.
  [[nodiscard]] bool fast32_grid_safe() const noexcept { return fast32_safe_; }
  /// True iff every fault shares one p value (enables the word-parallel
  /// sampling path); vacuously false for the empty universe.
  [[nodiscard]] bool has_uniform_p() const noexcept { return uniform_p_; }
  /// The shared p when has_uniform_p(); unspecified otherwise.
  [[nodiscard]] double uniform_p() const noexcept { return uniform_p_value_; }
  /// Per-word sampling plan (one entry per mask word): which words can run
  /// the word-parallel bit-slice recurrence because all their faults share
  /// one p (runs of equal p, e.g. concatenated make_homogeneous blocks).
  [[nodiscard]] std::span<const sample_block> sample_blocks() const noexcept {
    return blocks_;
  }
  /// True iff at least one word is bit-sliceable but the universe is not
  /// globally uniform-p: the grouped sampler saves rng draws on the
  /// sliceable words and falls back to the paired kernel elsewhere.
  [[nodiscard]] bool has_grouped_p() const noexcept { return grouped_p_; }
  /// Words a fault_mask over this universe occupies.
  [[nodiscard]] std::size_t mask_words() const noexcept {
    return fault_mask::words_needed(atoms_.size());
  }

  /// Universes are equal iff their atom vectors are (the SoA caches are
  /// derived data).
  friend bool operator==(const fault_universe& a, const fault_universe& b) {
    return a.atoms_ == b.atoms_;
  }

 private:
  void rebuild_soa();
  /// Re-derive the per-word sampling plan (uniform/sliceable flags and the
  /// shared thresholds) from the CURRENT atom layout.  Called by rebuild_soa
  /// on construction and after any index remap (the permutation layer builds
  /// remapped universes through the constructor, which funnels here) — the
  /// flags are a function of the layout, never a one-shot annotation, so a
  /// permuted copy of a heterogeneous universe picks up its newly sliceable
  /// words.
  void make_sample_blocks();

  std::vector<fault_atom> atoms_;
  std::vector<double> p_soa_;
  std::vector<double> q_soa_;
  std::vector<std::uint64_t> thresh53_;
  std::vector<std::uint64_t> thresh32_;
  std::vector<sample_block> blocks_;
  bool grouped_p_ = false;
  bool uniform_p_ = false;
  bool fast32_safe_ = true;
  double uniform_p_value_ = 0.0;
};

// ---------------------------------------------------------------------------
// Universe relayout for word-parallel sampling (ROADMAP item 5)
// ---------------------------------------------------------------------------

/// A fault-index permutation paired with the permuted universe it produces.
/// Sorting faults by p gathers equal-p runs into whole 64-fault words, so an
/// arbitrary heterogeneous universe becomes mostly bit-sliceable — the shape
/// both the grouped word-parallel sampler and the SIMD block kernels want.
/// The maps translate between the two layouts: samplers run over
/// `universe` (permuted), and any per-fault output (masks, index lists,
/// weight vectors) is inverse-mapped back to the caller's original indices
/// in result reporting.
///
/// Invariants: `universe.atoms()[i] == original.atoms()[to_original[i]]`,
/// `to_permuted[to_original[i]] == i`, and the permutation is a stable sort
/// by (p, original index) — deterministic, a pure function of the original
/// universe, and therefore part of any derived result's identity.
struct universe_permutation {
  fault_universe universe;                 ///< atoms in permuted (p-sorted) order
  std::vector<std::uint32_t> to_permuted;  ///< original index -> permuted index
  std::vector<std::uint32_t> to_original;  ///< permuted index -> original index
  bool identity = true;                    ///< true iff the sort was a no-op

  [[nodiscard]] std::size_t size() const noexcept { return to_permuted.size(); }

  /// Index translation (debug-asserted bounds, hot-path friendly).
  [[nodiscard]] std::uint32_t index_to_permuted(std::uint32_t original) const noexcept {
    assert(original < to_permuted.size());
    return to_permuted[original];
  }
  [[nodiscard]] std::uint32_t index_to_original(std::uint32_t permuted) const noexcept {
    assert(permuted < to_original.size());
    return to_original[permuted];
  }

  /// Rewrite a mask over the original layout into the permuted layout
  /// (bit to_permuted[i] of the result equals bit i of `m`).
  [[nodiscard]] fault_mask mask_to_permuted(const fault_mask& m) const;
  /// Inverse of mask_to_permuted.
  [[nodiscard]] fault_mask mask_to_original(const fault_mask& m) const;

  /// Remap a per-fault vector (q weights, overlap vectors, per-fault tallies)
  /// from the original layout into the permuted layout...
  [[nodiscard]] std::vector<double> values_to_permuted(std::span<const double> v) const;
  /// ...and back (inverse remap, used when reporting per-fault results).
  [[nodiscard]] std::vector<double> values_to_original(std::span<const double> v) const;
};

/// Build the p-sorted relayout of `u`: faults stably sorted by ascending p
/// (ties keep original order).  The permuted universe is constructed through
/// the ordinary fault_universe constructor, so its SoA caches and sample
/// blocks are re-derived from the permuted layout (see make_sample_blocks).
[[nodiscard]] universe_permutation make_p_sorted_permutation(const fault_universe& u);

/// The golden-ratio threshold (√5−1)/2 at which p²(1−p²) = p(1−p): below it
/// every summand of σ²(Θ2) is smaller than the matching summand of σ²(Θ1)
/// (paper §3.1.2).
inline constexpr double kGoldenThreshold = 0.61803398874989484820;

}  // namespace reldiv::core
