#pragma once
// The paper's central object (Section 2.2): a fixed collection of potential
// faults {F1 .. Fn}.  Fault i is independently left in a newly developed
// version with probability p_i; if present, its (disjoint) failure region is
// hit by an operational demand with probability q_i.
//
// A `fault_universe` is an immutable value type: process-improvement
// operators (improvement.hpp) return transformed copies, matching the
// paper's treatment of "a process" as a parameter vector.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace reldiv::core {

/// One potential fault: (p, q) as defined in the paper's Table 1.
struct fault_atom {
  double p = 0.0;  ///< probability the fault is present in a random version
  double q = 0.0;  ///< probability per demand of hitting its failure region

  friend bool operator==(const fault_atom&, const fault_atom&) = default;
};

class fault_universe {
 public:
  fault_universe() = default;

  /// Throws std::invalid_argument unless every p in [0,1], every q in [0,1],
  /// and sum(q) <= 1 + tolerance (the paper's disjoint-region constraint,
  /// discussed in §6.2).  Pass `allow_q_overflow = true` to build
  /// deliberately pessimistic universes for the §6.2 sensitivity study.
  explicit fault_universe(std::vector<fault_atom> atoms, bool allow_q_overflow = false);

  /// Convenience: parallel (p, q) arrays.
  static fault_universe from_arrays(std::span<const double> p, std::span<const double> q,
                                    bool allow_q_overflow = false);

  [[nodiscard]] std::size_t size() const noexcept { return atoms_.size(); }
  [[nodiscard]] bool empty() const noexcept { return atoms_.empty(); }
  [[nodiscard]] const fault_atom& operator[](std::size_t i) const { return atoms_.at(i); }
  [[nodiscard]] const std::vector<fault_atom>& atoms() const noexcept { return atoms_; }

  [[nodiscard]] auto begin() const noexcept { return atoms_.begin(); }
  [[nodiscard]] auto end() const noexcept { return atoms_.end(); }

  /// pmax = max{p_1 .. p_n} (paper §3.1.1); 0 for the empty universe.
  [[nodiscard]] double p_max() const noexcept;
  /// max q_i; 0 for the empty universe.
  [[nodiscard]] double q_max() const noexcept;
  /// sum of q_i (<= 1 under the disjointness assumption).
  [[nodiscard]] double q_total() const noexcept;
  /// Expected number of faults in a version = sum p_i.
  [[nodiscard]] double expected_fault_count() const noexcept;

  [[nodiscard]] std::vector<double> p_values() const;
  [[nodiscard]] std::vector<double> q_values() const;

  /// True iff every p_i <= threshold (used for the eq. 9 golden-ratio
  /// precondition).
  [[nodiscard]] bool all_p_below(double threshold) const noexcept;

  /// Human-readable one-line description for bench output.
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const fault_universe&, const fault_universe&) = default;

 private:
  std::vector<fault_atom> atoms_;
};

/// The golden-ratio threshold (√5−1)/2 at which p²(1−p²) = p(1−p): below it
/// every summand of σ²(Θ2) is smaller than the matching summand of σ²(Θ1)
/// (paper §3.1.2).
inline constexpr double kGoldenThreshold = 0.61803398874989484820;

}  // namespace reldiv::core
