#pragma once
// Packed-bitmask representation of a fault set: bit i set <=> fault i present
// in the version.  One cache line covers 512 faults, so the §2.2 sampling /
// intersection algebra (which the Monte-Carlo engine executes hundreds of
// millions of times) runs word-parallel: AND for the 1-out-of-2 common-fault
// set, popcount for N, and a masked gather-sum against the universe's
// contiguous q array for the PFD.
//
// Invariant: bits at positions >= bit_size() in the last word are zero.  All
// mutating entry points preserve it; kernels rely on it.

#include <bit>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace reldiv::core {

/// Number of uniform bits behind stats::rng::uniform(): uniform() < p compares
/// a 53-bit integer draw (r() >> 11) scaled by 2^-53 against p.
inline constexpr int kBernoulliBits = 53;

/// Integer threshold t such that, for k = (r() >> 11):  k < t  <=>
/// uniform() < p, decision-for-decision.  (k < p*2^53 in exact arithmetic;
/// p*2^53 is computed exactly because scaling by a power of two is lossless,
/// and ceil() makes the comparison correct whether or not p*2^53 is integral.)
[[nodiscard]] inline std::uint64_t bernoulli_threshold(double p) noexcept {
  if (!(p > 0.0)) return 0;  // negative zero and NaN: never fires, like bernoulli()
  if (p >= 1.0) return std::uint64_t{1} << kBernoulliBits;
  return static_cast<std::uint64_t>(std::ceil(p * 0x1.0p53));
}

/// 32-bit variant for the halved-draw fast samplers: k32 < t <=> presence,
/// where k32 is a 32-bit slice of one rng word.  Rounds p to the 2^-32 grid
/// (bias < 2.4e-10, far below Monte-Carlo noise at any feasible sample size).
[[nodiscard]] inline std::uint64_t bernoulli_threshold32(double p) noexcept {
  if (!(p > 0.0)) return 0;
  if (p >= 1.0) return std::uint64_t{1} << 32;
  return static_cast<std::uint64_t>(std::ceil(p * 0x1.0p32));
}

class fault_mask {
 public:
  fault_mask() = default;
  explicit fault_mask(std::size_t bits) { resize(bits); }

  /// Resize to `bits` capacity and clear all bits.
  void resize(std::size_t bits) {
    bits_ = bits;
    words_.assign(words_needed(bits), 0);
  }

  [[nodiscard]] std::size_t bit_size() const noexcept { return bits_; }
  [[nodiscard]] std::size_t word_count() const noexcept { return words_.size(); }

  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  void set(std::size_t i) noexcept {
    assert(i < bits_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void reset(std::size_t i) noexcept {
    assert(i < bits_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    assert(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  [[nodiscard]] std::uint64_t* words() noexcept { return words_.data(); }
  [[nodiscard]] const std::uint64_t* words() const noexcept { return words_.data(); }
  [[nodiscard]] std::span<const std::uint64_t> word_span() const noexcept { return words_; }

  /// Mask for the last word's valid bits; applied by samplers that fill whole
  /// words to maintain the tail-bits-zero invariant.
  [[nodiscard]] std::uint64_t tail_mask() const noexcept {
    const std::size_t rem = bits_ & 63;
    return rem == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << rem) - 1;
  }

  [[nodiscard]] std::size_t popcount() const noexcept {
    std::size_t n = 0;
    for (const auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  [[nodiscard]] bool any() const noexcept {
    std::uint64_t acc = 0;
    for (const auto w : words_) acc |= w;
    return acc != 0;
  }

  [[nodiscard]] bool none() const noexcept { return !any(); }

  /// this = a & b.  All three masks must share bit_size.
  void intersect(const fault_mask& a, const fault_mask& b) noexcept {
    assert(a.bits_ == bits_ && b.bits_ == bits_);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] = a.words_[w] & b.words_[w];
    }
  }

  fault_mask& operator&=(const fault_mask& o) noexcept {
    assert(o.bits_ == bits_);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= o.words_[w];
    return *this;
  }

  /// Ascending indices of set bits (the sparse `version` representation).
  [[nodiscard]] std::vector<std::uint32_t> to_indices() const {
    std::vector<std::uint32_t> out;
    out.reserve(popcount());
    for (std::size_t b = 0; b < words_.size(); ++b) {
      std::uint64_t w = words_[b];
      while (w != 0) {
        out.push_back(static_cast<std::uint32_t>((b << 6) +
                                                 std::countr_zero(w)));
        w &= w - 1;
      }
    }
    return out;
  }

  [[nodiscard]] static fault_mask from_indices(std::span<const std::uint32_t> indices,
                                               std::size_t bits) {
    fault_mask m(bits);
    for (const auto i : indices) m.set(i);
    return m;
  }

  friend bool operator==(const fault_mask&, const fault_mask&) = default;

  [[nodiscard]] static std::size_t words_needed(std::size_t bits) noexcept {
    return (bits + 63) >> 6;
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Σ q[i] over set bits, accumulated in ascending index order (bitwise
/// identical to the sparse loop over sorted fault indices).
[[nodiscard]] inline double masked_q_sum(const fault_mask& m,
                                         std::span<const double> q) noexcept {
  assert(q.size() >= m.bit_size());
  double pfd = 0.0;
  const std::uint64_t* words = m.words();
  for (std::size_t b = 0; b < m.word_count(); ++b) {
    std::uint64_t w = words[b];
    while (w != 0) {
      pfd += q[(b << 6) + static_cast<std::size_t>(std::countr_zero(w))];
      w &= w - 1;
    }
  }
  return pfd;
}

/// |a ∩ b|: word-parallel popcount of the intersection, no scratch mask.
[[nodiscard]] inline std::size_t intersection_popcount(const fault_mask& a,
                                                       const fault_mask& b) noexcept {
  assert(a.bit_size() == b.bit_size());
  std::size_t n = 0;
  const std::uint64_t* wa = a.words();
  const std::uint64_t* wb = b.words();
  for (std::size_t blk = 0; blk < a.word_count(); ++blk) {
    n += static_cast<std::size_t>(std::popcount(wa[blk] & wb[blk]));
  }
  return n;
}

struct pair_intersection_result {
  double pfd = 0.0;     ///< Σ q over faults common to both versions
  bool any_common = false;  ///< intersection non-empty (N2 > 0)
};

/// Fused intersection + masked q-sum + emptiness test: one pass over the
/// words, no scratch mask, same accumulation order as the sparse merge.
[[nodiscard]] inline pair_intersection_result intersect_q_sum(
    const fault_mask& a, const fault_mask& b, std::span<const double> q) noexcept {
  assert(a.bit_size() == b.bit_size() && q.size() >= a.bit_size());
  pair_intersection_result out;
  const std::uint64_t* wa = a.words();
  const std::uint64_t* wb = b.words();
  std::uint64_t seen = 0;
  for (std::size_t blk = 0; blk < a.word_count(); ++blk) {
    std::uint64_t w = wa[blk] & wb[blk];
    seen |= w;
    while (w != 0) {
      out.pfd += q[(blk << 6) + static_cast<std::size_t>(std::countr_zero(w))];
      w &= w - 1;
    }
  }
  out.any_common = seen != 0;
  return out;
}

}  // namespace reldiv::core
