#pragma once
// Shared kernel template of the fast-simd sampler: simd_sampler.cpp
// instantiates it with scalar word ops, simd_sampler.avx2.cpp (the only TU
// compiled with -mavx2) with AVX2 word ops — "a scalar fallback compiled
// from the same template".  The template owns everything level-invariant:
// plan walking, counter bookkeeping, batch iteration order, bit-slice words
// and tail masking.  An Ops type supplies the two per-word hot kernels:
//
//   static void paired32_word(key, base, t32, occ, &wa, &wb)
//     one counter_draw per fault k in [0, occ): bit k of wa from the high
//     32 bits vs t32[k], bit k of wb from the low 32 bits;
//   static std::uint64_t wide53_word(key, base, t53, occ)
//     one counter_draw per fault: bit k set iff (draw >> 11) < t53[k].
//
// Both must make exactly the decisions mc::sample_version_pair_counter_
// reference makes (the pinned contract) — the SIMD ops achieve this by
// evaluating the identical counter_draw arithmetic four lanes at a time.
//
// Batch iteration is word-major over pairs: each word's plan entry and
// thresholds are loaded once and applied to every pair in the batch, which
// is where batching amortizes generation overhead.

#include <bit>

#include "core/simd_sampler.hpp"
#include "stats/counter_rng.hpp"

namespace reldiv::core::detail {

/// Bit-slice Bernoulli word over the counter stream (identical fold order to
/// the reference): consumes counters [base, base + 53 - countr_zero(t)).
/// Shared scalar code at every level — the recurrence already yields 64
/// lanes per fold step, so there is nothing for SIMD to win here.
inline std::uint64_t counter_slice_word(std::uint64_t key, std::uint64_t base,
                                        std::uint64_t threshold) noexcept {
  const int low = std::countr_zero(threshold);
  std::uint64_t c = base;
  std::uint64_t acc = stats::counter_draw(key, c++);
  for (int j = low + 1; j < kBernoulliBits; ++j) {
    const std::uint64_t r = stats::counter_draw(key, c++);
    acc = ((threshold >> j) & 1) ? (acc | r) : (acc & r);
  }
  return acc;
}

template <class Ops>
void sample_pair_counter_batch_impl(const counter_sample_plan& plan,
                                    std::span<const std::uint64_t> t32,
                                    std::span<const std::uint64_t> t53,
                                    std::uint64_t key, std::uint64_t first_pair,
                                    std::size_t count, std::span<fault_mask> a,
                                    std::span<fault_mask> b) {
  for (std::size_t j = 0; j < count; ++j) {
    if (a[j].bit_size() != plan.bits) a[j].resize(plan.bits);
    if (b[j].bit_size() != plan.bits) b[j].resize(plan.bits);
  }
  if (plan.bits == 0) return;
  for (std::size_t blk = 0; blk < plan.words.size(); ++blk) {
    const counter_word_plan& w = plan.words[blk];
    const std::uint64_t* t32w = t32.data() + (blk << 6);
    const std::uint64_t* t53w = t53.data() + (blk << 6);
    for (std::size_t j = 0; j < count; ++j) {
      const std::uint64_t base =
          (first_pair + j) * plan.draws_per_pair + w.draw_offset;
      std::uint64_t wa = 0;
      std::uint64_t wb = 0;
      switch (w.kind) {
        case counter_word_kind::zero:
          break;
        case counter_word_kind::one:
          wa = ~std::uint64_t{0};
          wb = ~std::uint64_t{0};
          break;
        case counter_word_kind::slice:
          wa = counter_slice_word(key, base, w.threshold);
          wb = counter_slice_word(key, base + w.slice_cost, w.threshold);
          break;
        case counter_word_kind::paired32:
          Ops::paired32_word(key, base, t32w, w.occupancy, wa, wb);
          break;
        case counter_word_kind::wide53:
          wa = Ops::wide53_word(key, base, t53w, w.occupancy);
          wb = Ops::wide53_word(key, base + w.occupancy, t53w, w.occupancy);
          break;
      }
      a[j].words()[blk] = wa;
      b[j].words()[blk] = wb;
    }
  }
  for (std::size_t j = 0; j < count; ++j) {
    a[j].words()[a[j].word_count() - 1] &= a[j].tail_mask();
    b[j].words()[b[j].word_count() - 1] &= b[j].tail_mask();
  }
}

/// Portable per-word ops: the scalar fallback instantiation.  Also the tail
/// kernel the AVX2 ops reuse for the last occ % 4 lanes of a word.
struct scalar_word_ops {
  static void paired32_word(std::uint64_t key, std::uint64_t base,
                            const std::uint64_t* t32, unsigned occ,
                            std::uint64_t& wa, std::uint64_t& wb) noexcept {
    std::uint64_t word_a = 0;
    std::uint64_t word_b = 0;
    for (unsigned k = 0; k < occ; ++k) {
      const std::uint64_t x = stats::counter_draw(key, base + k);
      word_a |= static_cast<std::uint64_t>((x >> 32) < t32[k]) << k;
      word_b |= static_cast<std::uint64_t>((x & 0xffffffffULL) < t32[k]) << k;
    }
    wa = word_a;
    wb = word_b;
  }

  static std::uint64_t wide53_word(std::uint64_t key, std::uint64_t base,
                                   const std::uint64_t* t53,
                                   unsigned occ) noexcept {
    std::uint64_t w = 0;
    for (unsigned k = 0; k < occ; ++k) {
      w |= static_cast<std::uint64_t>(
               (stats::counter_draw(key, base + k) >> 11) < t53[k])
           << k;
    }
    return w;
  }
};

}  // namespace reldiv::core::detail
