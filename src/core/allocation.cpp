#include "core/allocation.hpp"

#include <cmath>
#include <stdexcept>

#include "core/bounds.hpp"
#include "core/moments.hpp"
#include "stats/distributions.hpp"

namespace reldiv::core {

double pmax_for_gain_factor(double factor) {
  if (!(factor > 0.0) || factor > 1.4142135623730951) {
    throw std::invalid_argument("pmax_for_gain_factor: factor must be in (0, sqrt(2)]");
  }
  // Solve p(1+p) = factor^2 for p > 0: p = (sqrt(1 + 4 f^2) - 1)/2.
  const double f2 = factor * factor;
  return 0.5 * (std::sqrt(1.0 + 4.0 * f2) - 1.0);
}

double required_pmax(double one_version_bound, double target_pfd) {
  if (!(one_version_bound > 0.0)) {
    throw std::invalid_argument("required_pmax: one_version_bound must be > 0");
  }
  if (!(target_pfd > 0.0)) {
    throw std::domain_error("required_pmax: target_pfd must be > 0");
  }
  const double factor = target_pfd / one_version_bound;
  if (factor >= 1.0) return 1.0;  // no reduction needed: any pmax works
  return pmax_for_gain_factor(factor);
}

double allowed_mu1(double target_pfd, double p_max, double k, double cv) {
  if (!(target_pfd > 0.0)) throw std::invalid_argument("allowed_mu1: target must be > 0");
  if (!(p_max > 0.0) || !(p_max <= 1.0)) {
    throw std::invalid_argument("allowed_mu1: p_max must be in (0,1]");
  }
  if (!(k >= 0.0) || !(cv >= 0.0)) {
    throw std::invalid_argument("allowed_mu1: k and cv must be >= 0");
  }
  return target_pfd / (p_max + k * sigma_ratio_factor(p_max) * cv);
}

int sil_band(double pfd) {
  if (!(pfd >= 0.0)) throw std::invalid_argument("sil_band: pfd must be >= 0");
  if (pfd >= 1e-1) return 0;
  if (pfd >= 1e-2) return 1;
  if (pfd >= 1e-3) return 2;
  if (pfd >= 1e-4) return 3;
  return 4;
}

sil_allocation allocate_sil(const fault_universe& u, double confidence) {
  const double k = stats::one_sided_k(confidence);
  const pfd_moments m1 = single_version_moments(u);
  const pfd_moments m2 = pair_moments(u);
  sil_allocation a;
  a.single_bound = m1.mean + k * m1.stddev();
  a.pair_bound_actual = m2.mean + k * m2.stddev();
  a.pair_bound_guaranteed = pair_bound_from_bound(a.single_bound, u.p_max());
  a.single_version_sil = sil_band(a.single_bound);
  a.pair_sil_actual = sil_band(a.pair_bound_actual);
  a.pair_sil_guaranteed = sil_band(a.pair_bound_guaranteed);
  return a;
}

}  // namespace reldiv::core
