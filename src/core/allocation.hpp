#pragma once
// Assessor inverse problems ("reliability allocation"): the paper's bounds
// run forward from (pmax, µ1, σ1) to claims about the diverse pair.  In a
// licensing setting the assessor walks them backwards: given a required
// system PFD and confidence, what pmax must the developer's quality
// programme defend, or what single-version quality must be shown?  Standards
// frame the targets as Safety Integrity Levels, so a SIL mapping is
// included ("standards ... map reliability requirements for software into
// 'Safety Integrity Levels'", paper §5).

#include "core/fault_universe.hpp"

namespace reldiv::core {

/// Invert the eq. (12) factor: the LARGEST pmax for which
/// sqrt(pmax(1+pmax)) <= factor.  factor must be in (0, sqrt(2)].
[[nodiscard]] double pmax_for_gain_factor(double factor);

/// Largest pmax such that the eq. (12) pair bound meets `target_pfd` given
/// the one-version bound.  Throws std::domain_error if even pmax -> 0
/// cannot (i.e. target <= 0) or if no reduction is needed (returns 1).
[[nodiscard]] double required_pmax(double one_version_bound, double target_pfd);

/// Largest one-version mean µ1 compatible with the eq. (11) pair bound
/// meeting `target_pfd`, given pmax, the normal multiplier k and the
/// process's coefficient of variation cv = σ1/µ1:
///   target = pmax·µ1 + k·sqrt(pmax(1+pmax))·cv·µ1.
[[nodiscard]] double allowed_mu1(double target_pfd, double p_max, double k, double cv);

/// IEC-style low-demand SIL bands on PFD: SIL 1 = [1e-2, 1e-1), ... SIL 4 =
/// [1e-5, 1e-4).  Returns 0 for PFD >= 1e-1 (no SIL) and 4 for anything
/// below 1e-5 (capped, as the standards do).
[[nodiscard]] int sil_band(double pfd);

/// The full allocation story for a universe: which SIL a single version
/// supports at the given confidence, and which the 1-out-of-2 pair
/// supports via the actual moments and via the pmax-only eq. (12) route.
struct sil_allocation {
  int single_version_sil = 0;
  int pair_sil_actual = 0;     ///< from µ2 + kσ2
  int pair_sil_guaranteed = 0; ///< from eq. (12), pmax-only evidence
  double single_bound = 0.0;
  double pair_bound_actual = 0.0;
  double pair_bound_guaranteed = 0.0;
};

[[nodiscard]] sil_allocation allocate_sil(const fault_universe& u, double confidence);

}  // namespace reldiv::core
