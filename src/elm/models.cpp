#include "elm/models.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/random.hpp"

namespace reldiv::elm {

el_decomposition decompose_el(const core::fault_universe& u) {
  el_decomposition d;
  for (const auto& [p, q] : u) {
    d.mean_single += p * q;
    d.mean_pair += p * p * q;
  }
  d.independent_pair = d.mean_single * d.mean_single;
  d.difficulty_variance = d.mean_pair - d.independent_pair;
  return d;
}

lm_result pair_lm(const core::fault_universe& a, const core::fault_universe& b,
                  double q_tolerance) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("pair_lm: universes must have the same fault set");
  }
  lm_result r;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i].q - b[i].q) > q_tolerance) {
      throw std::invalid_argument(
          "pair_lm: universes must agree on q (same failure regions)");
    }
    r.mean_a += a[i].p * a[i].q;
    r.mean_b += b[i].p * b[i].q;
    r.mean_pair += a[i].p * b[i].p * a[i].q;
  }
  r.independent = r.mean_a * r.mean_b;
  return r;
}

core::fault_universe complementary_methodology(const core::fault_universe& u,
                                               double p_max_cap, double scale) {
  if (!(p_max_cap > 0.0) || !(p_max_cap <= 1.0)) {
    throw std::invalid_argument("complementary_methodology: p_max_cap in (0,1]");
  }
  if (!(scale > 0.0)) {
    throw std::invalid_argument("complementary_methodology: scale must be > 0");
  }
  std::vector<core::fault_atom> atoms;
  atoms.reserve(u.size());
  for (const auto& [p, q] : u) {
    const double flipped = std::clamp(scale * (p_max_cap - p), 0.0, 1.0);
    atoms.push_back({flipped, q});
  }
  return core::fault_universe(std::move(atoms));
}

difficulty_function::difficulty_function(std::vector<demand::region_fault> faults)
    : faults_(std::move(faults)) {
  if (faults_.empty()) throw std::invalid_argument("difficulty_function: no faults");
  for (const auto& f : faults_) {
    if (!f.footprint) throw std::invalid_argument("difficulty_function: null region");
    if (!(f.p >= 0.0) || !(f.p <= 1.0)) {
      throw std::invalid_argument("difficulty_function: p out of [0,1]");
    }
  }
}

double difficulty_function::operator()(const demand::point& x) const {
  double survive = 1.0;
  for (const auto& f : faults_) {
    if (f.footprint->contains(x)) survive *= (1.0 - f.p);
  }
  return 1.0 - survive;
}

difficulty_function::moments difficulty_function::estimate_moments(
    const demand::demand_profile& profile, std::uint64_t samples, std::uint64_t seed) const {
  if (samples == 0) throw std::invalid_argument("estimate_moments: samples > 0");
  stats::rng r(seed);
  moments m;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const double theta = (*this)(profile.sample(r));
    m.mean += theta;
    m.mean_square += theta * theta;
  }
  m.mean /= static_cast<double>(samples);
  m.mean_square /= static_cast<double>(samples);
  return m;
}

}  // namespace reldiv::elm
