#pragma once
// The Eckhardt-Lee (EL) and Littlewood-Miller (LM) models [3,4], which the
// paper's model refines ("this model is the same as the EL and LM models,
// except in being coarser-grained", §2.2).
//
// EL view: the "difficulty function" θ(x) is the probability that a randomly
// chosen version fails on demand x.  Under the paper's disjoint-region
// model θ(x) = p_i for x in region i (0 elsewhere), so
//
//   E[Θ1]      = E_X[θ(X)]   = Σ q_i p_i          (eq. 1 left)
//   E[Θpair]   = E_X[θ(X)²]  = Σ q_i p_i²         (eq. 1 right)
//   E[Θpair] − E[Θ1]² = Var_X[θ(X)] ≥ 0,
//
// re-deriving the EL headline: independently developed versions fail
// *dependently*, with excess equal to the variance of difficulty.
//
// LM view: the two channels may be built by *different* methodologies A and
// B (forced diversity), with per-fault probabilities pA_i, pB_i over the
// same region set.  Then E[Θpair] = Σ q_i pA_i pB_i, which can be LESS than
// E[ΘA]·E[ΘB] when the methodologies' difficulty profiles are negatively
// correlated across faults — the LM result that forced diversity can beat
// failure independence.

#include <vector>

#include "core/fault_universe.hpp"
#include "demand/binding.hpp"
#include "demand/profile.hpp"
#include "demand/region.hpp"

namespace reldiv::elm {

/// EL decomposition of the paper's model.
struct el_decomposition {
  double mean_single = 0.0;        ///< E_X[θ(X)] = µ1
  double mean_pair = 0.0;          ///< E_X[θ(X)²] = µ2
  double independent_pair = 0.0;   ///< (E[Θ1])² — the naive independence claim
  double difficulty_variance = 0.0;  ///< Var_X[θ(X)] = µ2 − µ1²

  /// Ratio E[Θ2]/(E[Θ1])²: how many times worse than the independence claim.
  [[nodiscard]] double dependence_factor() const {
    return independent_pair > 0.0 ? mean_pair / independent_pair : 1.0;
  }
};

[[nodiscard]] el_decomposition decompose_el(const core::fault_universe& u);

/// LM two-methodology pairing: universes must agree on q (same region set).
/// Throws std::invalid_argument otherwise.
struct lm_result {
  double mean_a = 0.0;        ///< E[ΘA]
  double mean_b = 0.0;        ///< E[ΘB]
  double mean_pair = 0.0;     ///< E[Θpair] = Σ q pA pB
  double independent = 0.0;   ///< E[ΘA]·E[ΘB]

  /// < 1 means forced diversity beats independence (the LM possibility).
  [[nodiscard]] double dependence_factor() const {
    return independent > 0.0 ? mean_pair / independent : 1.0;
  }
};

[[nodiscard]] lm_result pair_lm(const core::fault_universe& a,
                                const core::fault_universe& b, double q_tolerance = 1e-12);

/// Construct a "complementary" methodology for LM studies: fault i's
/// probability becomes  p'_i = scale · (p_max_cap − p_i), i.e. what one
/// methodology finds hard the other finds easy.  Clamped to [0,1].
[[nodiscard]] core::fault_universe complementary_methodology(const core::fault_universe& u,
                                                             double p_max_cap,
                                                             double scale);

/// Spatial difficulty function over a demand space: θ(x) = 1 − Π over
/// regions containing x of (1 − p_i).  (Equals p_i inside disjoint region i,
/// and composes correctly where study regions overlap.)
class difficulty_function {
 public:
  difficulty_function(std::vector<demand::region_fault> faults);

  [[nodiscard]] double operator()(const demand::point& x) const;

  /// Monte-Carlo estimates of E[θ(X)] and E[θ(X)²] under a profile.
  struct moments {
    double mean = 0.0;
    double mean_square = 0.0;
  };
  [[nodiscard]] moments estimate_moments(const demand::demand_profile& profile,
                                         std::uint64_t samples, std::uint64_t seed) const;

 private:
  std::vector<demand::region_fault> faults_;
};

}  // namespace reldiv::elm
