#pragma once
// Calibrating the model from data — the paper's validation programme:
// "validation of any general prediction about probability distributions
// would depend on sophisticated collation of data from many projects" (§7).
// Given what an experimenter CAN observe (a sample of independently
// developed versions: which identified faults each contains, and/or failure
// counts from testing), this module estimates the model parameters,
// diagnoses the independent-introduction assumption (§6.1), and predicts
// pair behaviour for out-of-sample validation.

#include <cstdint>
#include <vector>

#include "core/fault_mask.hpp"
#include "core/fault_universe.hpp"
#include "stats/confint.hpp"
#include "stats/gof_tests.hpp"

namespace reldiv::estimate {

/// Versions-by-faults incidence data: cell (v, i) is "version v contains
/// fault i".  Stored as one packed bitmask per FAULT over the version
/// sample, so the estimator hot loops (per-fault counts, pairwise joint
/// counts for the §6.1 diagnostic) run as word-parallel popcounts instead
/// of per-cell byte scans.
class fault_incidence {
 public:
  fault_incidence(std::size_t versions, std::size_t faults);

  /// Build from packed mask versions (the bitset Monte-Carlo representation).
  static fault_incidence from_masks(const std::vector<core::fault_mask>& versions,
                                    std::size_t fault_count);

  void set(std::size_t version, std::size_t fault, bool present);
  [[nodiscard]] bool contains(std::size_t version, std::size_t fault) const;
  [[nodiscard]] std::size_t versions() const noexcept { return versions_; }
  [[nodiscard]] std::size_t faults() const noexcept { return faults_; }

  /// Number of versions containing fault i (word-parallel popcount).
  [[nodiscard]] std::size_t fault_count(std::size_t fault) const;
  /// Number of versions containing both faults i and j (AND + popcount).
  [[nodiscard]] std::size_t joint_count(std::size_t i, std::size_t j) const;
  /// Number of faults in version v.
  [[nodiscard]] std::size_t version_fault_count(std::size_t version) const;

 private:
  std::size_t versions_;
  std::size_t faults_;
  std::vector<core::fault_mask> columns_;  ///< per fault, bit v = version v has it
};

/// One estimated parameter with its uncertainty.
struct p_estimate {
  double p_hat = 0.0;
  stats::interval ci;  ///< Wilson, at the level passed to estimate_p
};

/// MLE p̂_i = (#versions with fault i)/V, with Wilson intervals.
[[nodiscard]] std::vector<p_estimate> estimate_p(const fault_incidence& data,
                                                 double ci_level = 0.95);

/// §6.1 diagnostic: does the data reject independent fault introduction?
/// Pairwise phi coefficients plus an aggregate chi-square over all fault
/// pairs with adequate expected counts.
struct independence_diagnostic {
  double max_abs_phi = 0.0;         ///< largest |pairwise correlation|
  std::size_t pairs_tested = 0;
  stats::gof_result chi_square;     ///< aggregate co-occurrence test
  bool independence_rejected = false;
};

[[nodiscard]] independence_diagnostic diagnose_independence(const fault_incidence& data);

/// PFD-moment estimation from testing campaigns alone (no fault
/// identification): versions scored with `failures[v]` failures in
/// `demands` demands each.  The raw sample variance of the failure
/// fractions overstates var(Θ) by the mean binomial noise E[Θ(1−Θ)]/t;
/// we return both raw and noise-corrected estimates.
struct moment_estimate {
  double mean = 0.0;
  double stddev_raw = 0.0;        ///< sample sd of the failure fractions
  double stddev_corrected = 0.0;  ///< binomial-noise-corrected sd estimate
  stats::interval mean_ci;        ///< 95% CI on the mean
};

[[nodiscard]] moment_estimate estimate_pfd_moments(const std::vector<std::uint64_t>& failures,
                                                   std::uint64_t demands);

/// Predicted pair statistics from estimates: Σ p̂_i² q_i and the eq. (10)
/// products, i.e. what the calibrated model says a diverse pair will do.
struct pair_prediction {
  double mean_pair_pfd = 0.0;          ///< Σ p̂² q
  double prob_no_common_fault = 0.0;   ///< Π(1 − p̂²)
  double risk_ratio = 0.0;             ///< eq. (10) with p̂
};

[[nodiscard]] pair_prediction predict_pair(const std::vector<p_estimate>& p,
                                           const std::vector<double>& q);

/// End-to-end calibration check: split `versions` into a training half
/// (parameter estimation) and a holdout half (all holdout pairs scored
/// exactly against `u`'s q values); returns predicted vs observed pair mean
/// PFD.  The universe is used ONLY for the q values and holdout scoring —
/// the p's come from the training incidence data.
struct validation_config {
  std::size_t versions = 400;
  std::uint64_t seed = 1;
  /// When > 0, the holdout pairs are ALSO scored empirically: each pair is
  /// run through a `demands`-demand testing campaign on the deterministic
  /// campaign layer (one rng stream per pair), yielding the PFD estimate an
  /// experimenter without fault-identification data would see.
  std::uint64_t demands = 0;
  unsigned threads = 0;  ///< campaign workers; throughput only, never results
};

struct validation_report {
  pair_prediction predicted;           ///< from the training half
  double observed_pair_mean = 0.0;     ///< holdout pairs, exact scoring
  double observed_no_common_fraction = 0.0;
  /// Mean of the empirical (campaign-scored) holdout pair PFDs; 0 when
  /// validation_config::demands == 0.
  double observed_pair_mean_hat = 0.0;
  std::uint64_t demands = 0;           ///< campaign length behind the _hat figure
  std::size_t training_versions = 0;
  std::size_t holdout_pairs = 0;
};

[[nodiscard]] validation_report split_sample_validation(const core::fault_universe& u,
                                                        const validation_config& cfg);

/// Exact-scoring-only convenience overload (historical signature).
[[nodiscard]] validation_report split_sample_validation(const core::fault_universe& u,
                                                        std::size_t versions,
                                                        std::uint64_t seed);

}  // namespace reldiv::estimate
