#include "estimate/estimators.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "mc/campaign.hpp"
#include "mc/sampler.hpp"
#include "stats/descriptive.hpp"
#include "stats/random.hpp"

namespace reldiv::estimate {

fault_incidence::fault_incidence(std::size_t versions, std::size_t faults)
    : versions_(versions), faults_(faults),
      columns_(faults, core::fault_mask(versions)) {
  if (versions == 0 || faults == 0) {
    throw std::invalid_argument("fault_incidence: need versions > 0 and faults > 0");
  }
}

fault_incidence fault_incidence::from_masks(const std::vector<core::fault_mask>& versions,
                                            std::size_t fault_count) {
  if (versions.empty()) {
    throw std::invalid_argument("fault_incidence::from_masks: empty sample");
  }
  fault_incidence data(versions.size(), fault_count);
  // Transpose version rows into fault columns word-by-word — no sparse
  // index-vector detour.
  for (std::size_t v = 0; v < versions.size(); ++v) {
    const auto& row = versions[v];
    if (row.bit_size() != fault_count) {
      throw std::invalid_argument("fault_incidence::from_masks: mask size mismatch");
    }
    const std::uint64_t* words = row.words();
    for (std::size_t blk = 0; blk < row.word_count(); ++blk) {
      std::uint64_t w = words[blk];
      while (w != 0) {
        const std::size_t f = (blk << 6) + static_cast<std::size_t>(std::countr_zero(w));
        data.columns_[f].set(v);
        w &= w - 1;
      }
    }
  }
  return data;
}

void fault_incidence::set(std::size_t version, std::size_t fault, bool present) {
  if (version >= versions_ || fault >= faults_) {
    throw std::out_of_range("fault_incidence::set");
  }
  if (present) {
    columns_[fault].set(version);
  } else {
    columns_[fault].reset(version);
  }
}

bool fault_incidence::contains(std::size_t version, std::size_t fault) const {
  if (version >= versions_ || fault >= faults_) {
    throw std::out_of_range("fault_incidence::contains");
  }
  return columns_[fault].test(version);
}

std::size_t fault_incidence::fault_count(std::size_t fault) const {
  if (fault >= faults_) throw std::out_of_range("fault_incidence::fault_count");
  return columns_[fault].popcount();
}

std::size_t fault_incidence::joint_count(std::size_t i, std::size_t j) const {
  if (i >= faults_ || j >= faults_) throw std::out_of_range("fault_incidence::joint_count");
  return core::intersection_popcount(columns_[i], columns_[j]);
}

std::size_t fault_incidence::version_fault_count(std::size_t version) const {
  if (version >= versions_) {
    throw std::out_of_range("fault_incidence::version_fault_count");
  }
  std::size_t n = 0;
  for (std::size_t f = 0; f < faults_; ++f) n += columns_[f].test(version) ? 1 : 0;
  return n;
}

std::vector<p_estimate> estimate_p(const fault_incidence& data, double ci_level) {
  std::vector<p_estimate> out(data.faults());
  for (std::size_t f = 0; f < data.faults(); ++f) {
    const std::size_t k = data.fault_count(f);
    out[f].p_hat = static_cast<double>(k) / static_cast<double>(data.versions());
    out[f].ci = stats::wilson(k, data.versions(), ci_level);
  }
  return out;
}

independence_diagnostic diagnose_independence(const fault_incidence& data) {
  independence_diagnostic d;
  const auto v = static_cast<double>(data.versions());
  std::vector<double> observed;
  std::vector<double> expected;
  for (std::size_t i = 0; i < data.faults(); ++i) {
    const double pi = static_cast<double>(data.fault_count(i)) / v;
    if (pi <= 0.0 || pi >= 1.0) continue;
    for (std::size_t j = i + 1; j < data.faults(); ++j) {
      const double pj = static_cast<double>(data.fault_count(j)) / v;
      if (pj <= 0.0 || pj >= 1.0) continue;
      const double joint = static_cast<double>(data.joint_count(i, j));
      const double exp_joint = v * pi * pj;
      const double phi = (joint / v - pi * pj) /
                         std::sqrt(pi * (1.0 - pi) * pj * (1.0 - pj));
      d.max_abs_phi = std::max(d.max_abs_phi, std::fabs(phi));
      // Only include cells with adequate expected counts in the chi-square
      // (the usual >= 5 rule of thumb).
      if (exp_joint >= 5.0 && v - exp_joint >= 5.0) {
        observed.push_back(joint);
        expected.push_back(exp_joint);
        observed.push_back(v - joint);
        expected.push_back(v - exp_joint);
        ++d.pairs_tested;
      }
    }
  }
  if (!observed.empty()) {
    d.chi_square = stats::chi_square_gof(observed, expected,
                                         /*df_reduction=*/static_cast<int>(d.pairs_tested) + 1);
    d.independence_rejected = d.chi_square.reject_at_05;
  }
  return d;
}

moment_estimate estimate_pfd_moments(const std::vector<std::uint64_t>& failures,
                                     std::uint64_t demands) {
  if (failures.size() < 2) {
    throw std::invalid_argument("estimate_pfd_moments: need >= 2 versions");
  }
  if (demands == 0) throw std::invalid_argument("estimate_pfd_moments: demands > 0");
  const auto t = static_cast<double>(demands);
  const auto n = static_cast<double>(failures.size());
  double mean = 0.0;
  for (const auto f : failures) {
    if (f > demands) throw std::invalid_argument("estimate_pfd_moments: failures > demands");
    mean += static_cast<double>(f) / t;
  }
  mean /= n;
  double var = 0.0;
  double noise = 0.0;
  for (const auto f : failures) {
    const double x = static_cast<double>(f) / t;
    var += (x - mean) * (x - mean);
    noise += x * (1.0 - x) / t;
  }
  var /= (n - 1.0);
  noise /= n;
  moment_estimate out;
  out.mean = mean;
  out.stddev_raw = std::sqrt(var);
  out.stddev_corrected = std::sqrt(std::max(0.0, var - noise));
  out.mean_ci = stats::mean_ci(mean, out.stddev_raw, failures.size(), 0.95);
  return out;
}

pair_prediction predict_pair(const std::vector<p_estimate>& p, const std::vector<double>& q) {
  if (p.size() != q.size() || p.empty()) {
    throw std::invalid_argument("predict_pair: p/q size mismatch or empty");
  }
  pair_prediction out;
  double log_no_common = 0.0;
  double log_no_fault = 0.0;
  bool common_certain = false;
  bool fault_certain = false;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double ph = p[i].p_hat;
    out.mean_pair_pfd += ph * ph * q[i];
    if (ph * ph >= 1.0) {
      common_certain = true;
    } else if (ph > 0.0) {
      log_no_common += std::log1p(-ph * ph);
    }
    if (ph >= 1.0) {
      fault_certain = true;
    } else if (ph > 0.0) {
      log_no_fault += std::log1p(-ph);
    }
  }
  out.prob_no_common_fault = common_certain ? 0.0 : std::exp(log_no_common);
  const double p_some_fault = fault_certain ? 1.0 : -std::expm1(log_no_fault);
  out.risk_ratio =
      p_some_fault > 0.0 ? (1.0 - out.prob_no_common_fault) / p_some_fault : 0.0;
  return out;
}

validation_report split_sample_validation(const core::fault_universe& u,
                                          const validation_config& cfg) {
  if (cfg.versions < 4) {
    throw std::invalid_argument("split_sample_validation: need >= 4 versions");
  }
  stats::rng r(cfg.seed);
  // Exact-stream mask sampling: the drawn fault sets match the historical
  // sparse implementation for a given seed.
  std::vector<core::fault_mask> sample(cfg.versions);
  for (auto& v : sample) mc::sample_version_mask(u, r, v);

  const std::size_t train_n = cfg.versions / 2;
  const std::vector<core::fault_mask> train(
      sample.begin(), sample.begin() + static_cast<std::ptrdiff_t>(train_n));
  const std::vector<core::fault_mask> holdout(
      sample.begin() + static_cast<std::ptrdiff_t>(train_n), sample.end());

  const auto data = fault_incidence::from_masks(train, u.size());
  const auto p_hat = estimate_p(data);

  validation_report rep;
  rep.predicted = predict_pair(p_hat, u.q_values());
  rep.training_versions = train_n;

  // Holdout pair scoring on the campaign worker pool: one job per first
  // index i (all pairs (i, j > i)), per-job accumulators merged in ascending
  // i order — deterministic regardless of the thread count.
  struct holdout_block {
    stats::running_moments pair_pfds;
    std::size_t no_common = 0;
    std::vector<double> pfds;  ///< (i,j)-ordered, kept only for the campaign
  };
  const bool keep_pfds = cfg.demands > 0;
  stats::running_moments pair_pfds;
  std::size_t no_common = 0;
  std::vector<double> holdout_pair_pfds;
  mc::run_jobs(
      0, holdout.empty() ? 0 : holdout.size() - 1, cfg.threads,
      [&](std::size_t i) {
        holdout_block block;
        for (std::size_t j = i + 1; j < holdout.size(); ++j) {
          const auto pair = mc::pair_pfd_stats(holdout[i], holdout[j], u);
          block.pair_pfds.add(pair.pfd);
          if (!pair.any_common) ++block.no_common;
          if (keep_pfds) block.pfds.push_back(pair.pfd);
        }
        return block;
      },
      [&](std::size_t /*i*/, holdout_block&& block) {
        pair_pfds.merge(block.pair_pfds);
        no_common += block.no_common;
        holdout_pair_pfds.insert(holdout_pair_pfds.end(), block.pfds.begin(),
                                 block.pfds.end());
      });
  rep.holdout_pairs = pair_pfds.count();
  rep.observed_pair_mean = pair_pfds.mean();
  rep.observed_no_common_fraction =
      pair_pfds.count() > 0
          ? static_cast<double>(no_common) / static_cast<double>(pair_pfds.count())
          : 0.0;

  if (cfg.demands > 0 && !holdout_pair_pfds.empty()) {
    // Empirical validation: what a testing campaign of cfg.demands demands
    // per holdout pair would observe.  The campaign master seed is split off
    // cfg.seed so its per-pair streams cannot collide with the
    // version-drawing stream rng(cfg.seed).
    mc::campaign_config campaign;
    std::uint64_t split = cfg.seed;
    campaign.seed = stats::splitmix64_next(split);
    campaign.threads = cfg.threads;
    const auto tally = mc::run_demand_campaign(holdout_pair_pfds, cfg.demands, campaign);
    double mean_hat = 0.0;
    for (const auto f : tally.failures) mean_hat += static_cast<double>(f);
    rep.observed_pair_mean_hat = mean_hat / static_cast<double>(cfg.demands) /
                                 static_cast<double>(tally.failures.size());
    rep.demands = cfg.demands;
  }
  return rep;
}

validation_report split_sample_validation(const core::fault_universe& u,
                                          std::size_t versions, std::uint64_t seed) {
  validation_config cfg;
  cfg.versions = versions;
  cfg.seed = seed;
  return split_sample_validation(u, cfg);
}

}  // namespace reldiv::estimate
