#pragma once
// Special functions underlying the distribution machinery: regularized
// incomplete gamma and beta functions, log-beta, and the inverse of the
// regularized incomplete beta (used for Clopper-Pearson intervals and Beta
// quantiles in the Bayesian module).
//
// Implementations follow the classic continued-fraction / series splits
// (Numerical Recipes style) with modern guard rails; accuracy is ~1e-12
// relative over the parameter ranges used in this library, which the test
// suite checks against high-precision reference values.

namespace reldiv::stats {

/// ln Γ(x), x > 0.  Thin wrapper over std::lgamma kept for a single audit point.
[[nodiscard]] double log_gamma(double x);

/// ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a+b); a, b > 0.
[[nodiscard]] double log_beta(double a, double b);

/// Regularized lower incomplete gamma P(a, x); a > 0, x >= 0.
[[nodiscard]] double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x).
[[nodiscard]] double gamma_q(double a, double x);

/// Regularized incomplete beta I_x(a, b); a, b > 0, x in [0, 1].
[[nodiscard]] double incomplete_beta(double a, double b, double x);

/// Inverse of I_x(a, b) in x: returns x such that I_x(a, b) = p.
[[nodiscard]] double inverse_incomplete_beta(double a, double b, double p);

/// log(1 - exp(x)) for x < 0, numerically stable near 0.
[[nodiscard]] double log1m_exp(double x);

/// Numerically stable computation of 1 - prod(1 - p_i) ("at least one event"
/// probability) given iterators over probabilities in [0, 1].  Works in log
/// space when the complement underflows.
template <typename It>
[[nodiscard]] double one_minus_prod_one_minus(It first, It last);

}  // namespace reldiv::stats

#include <cmath>

namespace reldiv::stats {

template <typename It>
double one_minus_prod_one_minus(It first, It last) {
  // Accumulate sum of log1p(-p); exact when any p == 1.
  double log_complement = 0.0;
  for (It it = first; it != last; ++it) {
    const double p = *it;
    if (p >= 1.0) return 1.0;
    if (p > 0.0) log_complement += std::log1p(-p);
  }
  return -std::expm1(log_complement);
}

}  // namespace reldiv::stats
