#include "stats/random.hpp"

#include <cmath>
#include <stdexcept>

namespace reldiv::stats {

double normal_deviate(rng& r) noexcept {
  // Marsaglia polar method (uncached variant: one deviate per call; the
  // sampling loops that need bulk normals use vector fills elsewhere).
  for (;;) {
    const double u = 2.0 * r.uniform() - 1.0;
    const double v = 2.0 * r.uniform() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double gamma_deviate(rng& r, double shape) {
  if (!(shape > 0.0)) throw std::invalid_argument("gamma_deviate: shape must be > 0");
  if (shape < 1.0) {
    // Boost shape above 1 and correct with the standard power-of-uniform trick.
    const double g = gamma_deviate(r, shape + 1.0);
    const double u = r.uniform();
    return g * std::pow(u <= 0.0 ? 1e-300 : u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000) squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal_deviate(r);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = r.uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

double beta_deviate(rng& r, double a, double b) {
  if (!(a > 0.0) || !(b > 0.0)) throw std::invalid_argument("beta_deviate: a, b must be > 0");
  const double x = gamma_deviate(r, a);
  const double y = gamma_deviate(r, b);
  const double sum = x + y;
  return sum > 0.0 ? x / sum : 0.5;
}

std::uint64_t binomial_deviate(rng& r, std::uint64_t trials, double p) {
  std::uint64_t count = 0;
  // Split until the remaining problem is small: the a-th order statistic X of
  // n uniforms is Beta(a, n+1-a).  If X <= p, the a smallest uniforms are all
  // below p and each of the other n-a lands below p independently with
  // probability (p-X)/(1-X); if X > p, only the a-1 uniforms below X can be
  // below p, each with probability p/X.
  while (trials > 64) {
    if (p <= 0.0) return count;
    if (p >= 1.0) return count + trials;
    const std::uint64_t a = 1 + trials / 2;
    const double x = beta_deviate(r, static_cast<double>(a),
                                  static_cast<double>(trials + 1 - a));
    if (x <= p) {
      count += a;
      trials -= a;
      p = (p - x) / (1.0 - x);
    } else {
      trials = a - 1;
      p = p / x;
    }
  }
  if (p <= 0.0) return count;
  if (p >= 1.0) return count + trials;
  for (std::uint64_t i = 0; i < trials; ++i) {
    if (r.bernoulli(p)) ++count;
  }
  return count;
}

}  // namespace reldiv::stats
