#pragma once
// Counter-based pseudo-random generation (Philox/Threefry-style philosophy,
// splitmix64 mixing): every draw is a pure function of (stream key, counter),
// so any lane of a SIMD kernel — or any shard of a distributed run — can
// derive its draw by random access, with no sequential state walk and no
// jump chains.  This is the generator behind the `fast-simd` sampling engine
// (core::simd_sampler): draw k of version-pair s lives at a counter computed
// arithmetically from (s, k), which is exactly the shape block/vector
// kernels want while preserving the PR 2 bit-exact determinism contract.
//
// Quality: counter_draw(key, c) equals the (c+1)-th output of the splitmix64
// sequence seeded at `key` (the finalizer applied to key + (c+1)*gamma), so
// within a stream the draws are exactly a splitmix64 stream — a generator
// that passes BigCrush.  Distinct keys come from counter_stream_key, which
// avalanche-mixes (seed, shard) through two chained splitmix64 steps.

#include <cstdint>

namespace reldiv::stats {

/// The splitmix64 Weyl increment (golden-ratio gamma).  Shared by
/// splitmix64_next (random.hpp) and the counter generator; keeping one
/// constant keeps the "counter_draw == splitmix64 stream" identity pinned.
inline constexpr std::uint64_t kSplitmix64Gamma = 0x9e3779b97f4a7c15ULL;

/// The splitmix64 output finalizer (avalanche mix) alone, without the Weyl
/// step.  Exposed because both counter_draw and counter_stream_key are
/// defined in terms of it.
[[nodiscard]] constexpr std::uint64_t splitmix64_mix(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Draw `counter` of stream `key`: the splitmix64 finalizer applied to
/// key + (counter+1)*gamma.  Pure function — random access, no state.
/// Identity: counter_draw(key, c) == the (c+1)-th splitmix64_next() output
/// starting from state = key.
[[nodiscard]] constexpr std::uint64_t counter_draw(std::uint64_t key,
                                                   std::uint64_t counter) noexcept {
  return splitmix64_mix(key + (counter + 1) * kSplitmix64Gamma);
}

/// Stream key for logical shard `shard` of master seed `seed`: (seed, shard)
/// avalanche-mixed through two chained splitmix64 finalizer steps.  A pure
/// O(1) function — unlike stats::rng::stream(seed, shard), which walks
/// `shard` jumps — so counter-mode shard derivation costs the same for shard
/// 0 and shard 10^6.  The constant is an arbitrary domain tag keeping
/// counter-stream keys decorrelated from other splitmix64 uses of `seed`.
[[nodiscard]] constexpr std::uint64_t counter_stream_key(std::uint64_t seed,
                                                         unsigned shard) noexcept {
  const std::uint64_t h1 = splitmix64_mix((seed ^ 0x8f58f7c95c7742a1ULL) + kSplitmix64Gamma);
  return splitmix64_mix((h1 ^ (static_cast<std::uint64_t>(shard) + 1)) + kSplitmix64Gamma);
}

/// Sequential adapter over counter_draw: a drop-in
/// std::uniform_random_bit_generator whose state is just (key, counter).
/// seek() gives O(1) random access to any point of the stream.
class counter_rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr counter_rng(std::uint64_t key, std::uint64_t counter = 0) noexcept
      : key_(key), counter_(counter) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept { return counter_draw(key_, counter_++); }

  [[nodiscard]] constexpr std::uint64_t key() const noexcept { return key_; }
  [[nodiscard]] constexpr std::uint64_t counter() const noexcept { return counter_; }
  /// Position the stream so the next draw is counter_draw(key, counter).
  constexpr void seek(std::uint64_t counter) noexcept { counter_ = counter; }

 private:
  std::uint64_t key_ = 0;
  std::uint64_t counter_ = 0;
};

}  // namespace reldiv::stats
