#include "stats/distributions.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/special_functions.hpp"

namespace reldiv::stats {

namespace {

/// Acklam's rational approximation to Φ⁻¹ (relative error < 1.15e-9 before
/// refinement).
double acklam_quantile(double p) {
  static constexpr double a[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                  -2.759285104469687e+02, 1.383577518672690e+02,
                                  -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                  -1.556989798598866e+02, 6.680131188771972e+01,
                                  -1.328068155288572e+01};
  static constexpr double c[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                  -2.400758277161838e+00, -2.549732539343734e+00,
                                  4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                                  2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log1p(-p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

double normal_pdf(double x) { return std::exp(-0.5 * x * x) / kSqrt2Pi; }

double normal_cdf(double x) { return 0.5 * std::erfc(-x / kSqrt2); }

double normal_quantile(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("normal_quantile: p must be in (0,1)");
  }
  double x = acklam_quantile(p);
  // One Halley refinement step drives the result to machine precision.
  const double e = normal_cdf(x) - p;
  const double u = e * kSqrt2Pi * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

double normal_pdf(double x, double mu, double sigma) {
  if (!(sigma > 0.0)) throw std::invalid_argument("normal_pdf: sigma must be > 0");
  return normal_pdf((x - mu) / sigma) / sigma;
}

double normal_cdf(double x, double mu, double sigma) {
  if (!(sigma > 0.0)) throw std::invalid_argument("normal_cdf: sigma must be > 0");
  return normal_cdf((x - mu) / sigma);
}

double normal_quantile(double p, double mu, double sigma) {
  if (!(sigma > 0.0)) throw std::invalid_argument("normal_quantile: sigma must be > 0");
  return mu + sigma * normal_quantile(p);
}

double one_sided_k(double alpha) { return normal_quantile(alpha); }

double confidence_from_k(double k) { return normal_cdf(k); }

double beta_distribution::pdf(double x) const {
  if (x < 0.0 || x > 1.0) return 0.0;
  if (x == 0.0 || x == 1.0) {
    // Degenerate edges: finite only when the corresponding exponent is >= 1.
    if (x == 0.0 && a < 1.0) return INFINITY;
    if (x == 1.0 && b < 1.0) return INFINITY;
    if (x == 0.0 && a > 1.0) return 0.0;
    if (x == 1.0 && b > 1.0) return 0.0;
  }
  return std::exp((a - 1.0) * std::log(x) + (b - 1.0) * std::log1p(-x) - log_beta(a, b));
}

double beta_distribution::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  return incomplete_beta(a, b, x);
}

double beta_distribution::quantile(double p) const {
  return inverse_incomplete_beta(a, b, p);
}

double lognormal_distribution::pdf(double x) const {
  if (!(x > 0.0)) return 0.0;
  const double z = (std::log(x) - mu) / sigma;
  return std::exp(-0.5 * z * z) / (x * sigma * kSqrt2Pi);
}

double lognormal_distribution::cdf(double x) const {
  if (!(x > 0.0)) return 0.0;
  return normal_cdf((std::log(x) - mu) / sigma);
}

double lognormal_distribution::quantile(double p) const {
  return std::exp(mu + sigma * normal_quantile(p));
}

double lognormal_distribution::mean() const { return std::exp(mu + 0.5 * sigma * sigma); }

double binomial_cdf(std::int64_t k, std::int64_t n, double p) {
  if (n < 0) throw std::invalid_argument("binomial_cdf: n must be >= 0");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("binomial_cdf: p must be in [0,1]");
  if (k < 0) return 0.0;
  if (k >= n) return 1.0;
  // P(X <= k) = I_{1-p}(n-k, k+1)
  return incomplete_beta(static_cast<double>(n - k), static_cast<double>(k + 1), 1.0 - p);
}

double log_choose(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n) throw std::invalid_argument("log_choose: require 0 <= k <= n");
  return log_gamma(static_cast<double>(n) + 1.0) - log_gamma(static_cast<double>(k) + 1.0) -
         log_gamma(static_cast<double>(n - k) + 1.0);
}

double binomial_pmf(std::int64_t k, std::int64_t n, double p) {
  if (k < 0 || k > n) return 0.0;
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  return std::exp(log_choose(n, k) + static_cast<double>(k) * std::log(p) +
                  static_cast<double>(n - k) * std::log1p(-p));
}

}  // namespace reldiv::stats
