#pragma once
// Deterministic, high-quality pseudo-random number generation.
//
// The library never uses wall-clock seeding: every stochastic component
// takes an explicit 64-bit seed so that experiments, tests and benches are
// exactly reproducible.  The engine is xoshiro256++ (Blackman & Vigna),
// seeded through splitmix64, with jump() support for cheap independent
// parallel streams.

#include <array>
#include <cstdint>
#include <limits>

namespace reldiv::stats {

/// splitmix64 step: used for seeding and for deriving stream seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ engine.  Satisfies std::uniform_random_bit_generator, so it
/// can drive <random> distributions as well as the samplers in this library.
class rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr rng(std::uint64_t seed = 0x9d1fb7e0c2a5d3b1ULL) noexcept { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with success probability p (p outside [0,1] is clamped
  /// by the comparison itself: p<=0 never fires, p>=1 always fires).
  [[nodiscard]] constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Uniform integer in [0, n).  n must be > 0.
  [[nodiscard]] constexpr std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded generation (biased rejection loop).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0ULL - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Advance 2^128 steps: partitions the period into non-overlapping streams.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
    for (const std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (1ULL << bit)) {
          for (int i = 0; i < 4; ++i) acc[i] ^= state_[i];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

  /// Derive the i-th independent stream of a master seed (jump-based).
  [[nodiscard]] static constexpr rng stream(std::uint64_t master_seed, unsigned index) noexcept {
    rng r(master_seed);
    for (unsigned i = 0; i < index; ++i) r.jump();
    return r;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Standard normal deviate (Marsaglia polar method would cache; we use the
/// branch-free inverse-CDF approach in distributions.hpp for quality, and
/// keep this Box-Muller-free ratio method local for hot sampling loops).
[[nodiscard]] double normal_deviate(rng& r) noexcept;

/// Gamma(shape, 1) deviate via Marsaglia–Tsang; shape > 0.
[[nodiscard]] double gamma_deviate(rng& r, double shape);

/// Beta(a, b) deviate; a, b > 0.
[[nodiscard]] double beta_deviate(rng& r, double a, double b);

/// Binomial(trials, p) deviate.  Beta-splitting recursion (the median order
/// statistic of `trials` uniforms is Beta-distributed, so one beta draw
/// halves the problem): O(log trials) beta draws instead of `trials`
/// Bernoulli draws, which makes million-demand testing campaigns cheap.
/// p outside [0,1] is clamped.
[[nodiscard]] std::uint64_t binomial_deviate(rng& r, std::uint64_t trials, double p);

}  // namespace reldiv::stats
