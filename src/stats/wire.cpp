#include "stats/wire.hpp"

namespace reldiv::stats {

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void write_moments_state(wire_writer& w, const running_moments_state& s) {
  w.put_u64(s.count);
  w.put_f64(s.m1);
  w.put_f64(s.m2);
  w.put_f64(s.m3);
  w.put_f64(s.m4);
  w.put_f64(s.min);
  w.put_f64(s.max);
}

running_moments_state read_moments_state(wire_reader& r) {
  running_moments_state s;
  s.count = r.get_u64();
  s.m1 = r.get_f64();
  s.m2 = r.get_f64();
  s.m3 = r.get_f64();
  s.m4 = r.get_f64();
  s.min = r.get_f64();
  s.max = r.get_f64();
  return s;
}

}  // namespace reldiv::stats
