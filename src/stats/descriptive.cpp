#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace reldiv::stats {

void running_moments::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const auto n1 = static_cast<double>(n_);
  ++n_;
  const auto n = static_cast<double>(n_);
  const double delta = x - m1_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  m1_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

void running_moments::merge(const running_moments& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.m1_ - m1_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  running_moments out;
  out.n_ = n_ + other.n_;
  out.m1_ = (na * m1_ + nb * other.m1_) / n;
  out.m2_ = m2_ + other.m2_ + delta2 * na * nb / n;
  out.m3_ = m3_ + other.m3_ + delta3 * na * nb * (na - nb) / (n * n) +
            3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  out.m4_ = m4_ + other.m4_ +
            delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
            6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
            4.0 * delta * (na * other.m3_ - nb * m3_) / n;
  out.min_ = std::min(min_, other.min_);
  out.max_ = std::max(max_, other.max_);
  *this = out;
}

running_moments_state running_moments::state() const noexcept {
  return {static_cast<std::uint64_t>(n_), m1_, m2_, m3_, m4_, min_, max_};
}

running_moments running_moments::from_state(const running_moments_state& s) noexcept {
  running_moments out;
  out.n_ = static_cast<std::size_t>(s.count);
  out.m1_ = s.m1;
  out.m2_ = s.m2;
  out.m3_ = s.m3;
  out.m4_ = s.m4;
  out.min_ = s.min;
  out.max_ = s.max;
  return out;
}

double running_moments::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double running_moments::stddev() const noexcept { return std::sqrt(variance()); }

double running_moments::population_variance() const noexcept {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double running_moments::skewness() const noexcept {
  if (n_ < 2 || m2_ <= 0.0) return 0.0;
  const auto n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double running_moments::excess_kurtosis() const noexcept {
  if (n_ < 2 || m2_ <= 0.0) return 0.0;
  const auto n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

double running_moments::standard_error() const noexcept {
  return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q must be in [0,1]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double quantile(std::vector<double> sample, double q) {
  std::sort(sample.begin(), sample.end());
  return quantile_sorted(sample, q);
}

sample_summary summarize(std::vector<double> sample) {
  if (sample.empty()) throw std::invalid_argument("summarize: empty sample");
  std::sort(sample.begin(), sample.end());
  running_moments rm;
  for (const double x : sample) rm.add(x);
  sample_summary s;
  s.n = sample.size();
  s.mean = rm.mean();
  s.stddev = rm.stddev();
  s.min = sample.front();
  s.q25 = quantile_sorted(sample, 0.25);
  s.median = quantile_sorted(sample, 0.50);
  s.q75 = quantile_sorted(sample, 0.75);
  s.q99 = quantile_sorted(sample, 0.99);
  s.max = sample.back();
  return s;
}

empirical_cdf::empirical_cdf(std::vector<double> sample) : sorted_(std::move(sample)) {
  if (sorted_.empty()) throw std::invalid_argument("empirical_cdf: empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double empirical_cdf::operator()(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double empirical_cdf::quantile(double q) const { return quantile_sorted(sorted_, q); }

histogram::histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (!(hi > lo)) throw std::invalid_argument("histogram: require hi > lo");
  if (bins == 0) throw std::invalid_argument("histogram: require bins > 0");
}

void histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    // The top edge is inclusive so that add(hi) lands in the last bin.
    if (x == hi_) {
      ++counts_.back();
    } else {
      ++overflow_;
    }
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / bin_width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  ++counts_[bin];
}

std::size_t histogram::bin_count(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("histogram::bin_count");
  return counts_[bin];
}

double histogram::bin_lo(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("histogram::bin_lo");
  return lo_ + static_cast<double>(bin) * bin_width_;
}

double histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + bin_width_; }

std::string histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[b]) / static_cast<double>(peak) *
                                 static_cast<double>(width));
    out.setf(std::ios::scientific);
    out.precision(3);
    out << "[" << bin_lo(b) << ", " << bin_hi(b) << ") ";
    out << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return out.str();
}

}  // namespace reldiv::stats
