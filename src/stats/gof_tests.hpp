#pragma once
// Goodness-of-fit tests.  Section 5 of the paper leans on the central limit
// theorem ("we will not know in practice how good an approximation it is in
// a specific case"); experiment E9 quantifies exactly that with these tests,
// and E15 reproduces the paper's observation that the Knight-Leveson PFD
// data do *not* fit a normal.

#include <functional>
#include <vector>

namespace reldiv::stats {

struct gof_result {
  double statistic = 0.0;  ///< test statistic (D for KS, A² for AD, X² for chi²)
  double p_value = 0.0;    ///< asymptotic p-value
  bool reject_at_05 = false;
};

/// One-sample Kolmogorov-Smirnov test of `sample` against the continuous
/// CDF `cdf`.  Asymptotic p-value via the Kolmogorov distribution with the
/// Stephens small-sample correction.
[[nodiscard]] gof_result kolmogorov_smirnov(std::vector<double> sample,
                                            const std::function<double(double)>& cdf);

/// KS distance only (no p-value), against an arbitrary CDF.
[[nodiscard]] double ks_distance(std::vector<double> sample,
                                 const std::function<double(double)>& cdf);

/// Anderson-Darling test for normality with estimated parameters
/// (case 3 in Stephens' tables; A*² correction applied).
[[nodiscard]] gof_result anderson_darling_normal(std::vector<double> sample);

/// Chi-square goodness of fit for binned counts against expected counts.
/// `df_reduction` = number of parameters estimated from the data + 1.
[[nodiscard]] gof_result chi_square_gof(const std::vector<double>& observed,
                                        const std::vector<double>& expected,
                                        int df_reduction = 1);

/// Survival function of the Kolmogorov distribution: P(K > x).
[[nodiscard]] double kolmogorov_sf(double x);

/// Two-sample Kolmogorov-Smirnov test: are the two samples drawn from the
/// same continuous distribution?  Used to compare PFD populations across
/// processes/architectures (e.g. E15-style version sets).
[[nodiscard]] gof_result ks_two_sample(std::vector<double> a, std::vector<double> b);

}  // namespace reldiv::stats
