#pragma once
// Confidence intervals for binomial proportions and means.  Monte-Carlo
// estimators throughout the library report Wilson intervals so that bench
// tables can state "exact value inside the 99% CI" rather than bare point
// estimates.

#include <cstdint>
#include <vector>

namespace reldiv::stats {

struct interval {
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] bool contains(double x) const noexcept { return x >= lo && x <= hi; }
  [[nodiscard]] double width() const noexcept { return hi - lo; }
};

/// Wilson score interval for a binomial proportion (successes out of trials)
/// at confidence `level` (e.g. 0.99).
[[nodiscard]] interval wilson(std::uint64_t successes, std::uint64_t trials, double level);

/// Clopper-Pearson "exact" interval via beta quantiles.
[[nodiscard]] interval clopper_pearson(std::uint64_t successes, std::uint64_t trials,
                                       double level);

/// Normal-approximation CI for a mean given sample mean, sample stddev, n.
[[nodiscard]] interval mean_ci(double mean, double stddev, std::uint64_t n, double level);

/// Percentile bootstrap CI for an arbitrary statistic of a sample.
/// `statistic` maps a resample to a double; `replicates` resamples are drawn
/// with the given seed.
[[nodiscard]] interval bootstrap_percentile(
    const std::vector<double>& sample, double (*statistic)(const std::vector<double>&),
    int replicates, double level, std::uint64_t seed);

}  // namespace reldiv::stats
