#pragma once
// Probability distributions used throughout the library.
//
// The normal distribution is the centrepiece: Section 5 of the paper builds
// its confidence-bound machinery on Φ and Φ⁻¹ ("The inverse function of the
// normal cumulative distribution function is widely available", §5.1).  We
// provide both to ~1e-15 (CDF, via erfc) and ~1e-9 refined to machine
// precision with one Halley step (quantile, via Acklam's rational
// approximation).

#include <cstdint>

namespace reldiv::stats {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kSqrt2 = 1.41421356237309504880;
inline constexpr double kSqrt2Pi = 2.50662827463100050242;

// ---------------------------------------------------------------------------
// Standard normal
// ---------------------------------------------------------------------------

/// Standard normal density φ(x).
[[nodiscard]] double normal_pdf(double x);

/// Standard normal CDF Φ(x), accurate over the full double range.
[[nodiscard]] double normal_cdf(double x);

/// Standard normal quantile Φ⁻¹(p), p in (0, 1).
[[nodiscard]] double normal_quantile(double p);

/// Density / CDF / quantile of N(mu, sigma²); sigma > 0.
[[nodiscard]] double normal_pdf(double x, double mu, double sigma);
[[nodiscard]] double normal_cdf(double x, double mu, double sigma);
[[nodiscard]] double normal_quantile(double p, double mu, double sigma);

/// Confidence level alpha -> one-sided k such that P(Θ <= µ+kσ) = alpha.
/// (E.g. alpha = 0.99 -> k ≈ 2.326; the paper quotes 2.33.)
[[nodiscard]] double one_sided_k(double alpha);

/// One-sided confidence from k: P(Θ <= µ+kσ).
/// (E.g. k = 3 -> 0.99865, the paper's P(Θ≤µ+3σ)=0.99865003.)
[[nodiscard]] double confidence_from_k(double k);

// ---------------------------------------------------------------------------
// Beta
// ---------------------------------------------------------------------------

struct beta_distribution {
  double a = 1.0;
  double b = 1.0;

  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double mean() const { return a / (a + b); }
  [[nodiscard]] double variance() const {
    const double s = a + b;
    return a * b / (s * s * (s + 1.0));
  }
};

// ---------------------------------------------------------------------------
// Lognormal (used by universe generators for heavy-tailed q_i spectra)
// ---------------------------------------------------------------------------

struct lognormal_distribution {
  double mu = 0.0;     ///< mean of log
  double sigma = 1.0;  ///< std dev of log

  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double mean() const;
};

// ---------------------------------------------------------------------------
// Binomial helpers (closed forms; sampling lives in random.hpp users)
// ---------------------------------------------------------------------------

/// P(X <= k) for X ~ Binomial(n, p), via the incomplete beta identity.
[[nodiscard]] double binomial_cdf(std::int64_t k, std::int64_t n, double p);

/// log C(n, k).
[[nodiscard]] double log_choose(std::int64_t n, std::int64_t k);

/// Exact binomial pmf.
[[nodiscard]] double binomial_pmf(std::int64_t k, std::int64_t n, double p);

}  // namespace reldiv::stats
