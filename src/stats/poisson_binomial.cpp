#include "stats/poisson_binomial.hpp"

#include <stdexcept>

#include "stats/special_functions.hpp"

namespace reldiv::stats {

poisson_binomial::poisson_binomial(std::vector<double> probs) : probs_(std::move(probs)) {
  for (const double p : probs_) {
    if (!(p >= 0.0) || !(p <= 1.0)) {
      throw std::invalid_argument("poisson_binomial: probabilities must be in [0,1]");
    }
  }
  // DP over trials: pmf after adding trial i is a mixture of shift-by-one
  // (success) and stay (failure).
  pmf_.assign(probs_.size() + 1, 0.0);
  pmf_[0] = 1.0;
  std::size_t upper = 0;  // highest index with non-zero mass so far
  for (const double p : probs_) {
    ++upper;
    for (std::size_t k = upper; k > 0; --k) {
      pmf_[k] = pmf_[k] * (1.0 - p) + pmf_[k - 1] * p;
    }
    pmf_[0] *= (1.0 - p);
  }
}

double poisson_binomial::pmf(std::size_t k) const {
  if (k >= pmf_.size()) return 0.0;
  return pmf_[k];
}

double poisson_binomial::cdf(std::size_t k) const {
  double sum = 0.0;
  for (std::size_t i = 0; i <= k && i < pmf_.size(); ++i) sum += pmf_[i];
  return sum > 1.0 ? 1.0 : sum;
}

double poisson_binomial::prob_positive() const {
  return one_minus_prod_one_minus(probs_.begin(), probs_.end());
}

double poisson_binomial::mean() const {
  double m = 0.0;
  for (const double p : probs_) m += p;
  return m;
}

std::size_t poisson_binomial::quantile(double alpha) const {
  if (!(alpha >= 0.0) || !(alpha <= 1.0)) {
    throw std::invalid_argument("poisson_binomial::quantile: alpha must be in [0,1]");
  }
  double cum = 0.0;
  for (std::size_t k = 0; k < pmf_.size(); ++k) {
    cum += pmf_[k];
    if (cum + 1e-15 >= alpha) return k;
  }
  return pmf_.size() - 1;
}

double poisson_binomial::variance() const {
  double v = 0.0;
  for (const double p : probs_) v += p * (1.0 - p);
  return v;
}

}  // namespace reldiv::stats
