#pragma once
// Descriptive statistics: single-pass (Welford) accumulators with higher
// moments, order statistics over stored samples, empirical CDFs and ASCII
// histograms for the bench harness output.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace reldiv::stats {

/// Plain serializable snapshot of a running_moments accumulator — the
/// checkpoint currency for streaming experiments (mc::experiment_accumulator
/// round-trips through it).  Field-for-field copy of the internal state, so
/// from_state(state()) resumes the accumulation bit-exactly.
struct running_moments_state {
  std::uint64_t count = 0;
  double m1 = 0.0;
  double m2 = 0.0;
  double m3 = 0.0;
  double m4 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Numerically stable single-pass accumulator for mean/variance/skewness/
/// excess kurtosis (Welford / Pébay update formulas).
class running_moments {
 public:
  void add(double x) noexcept;
  void merge(const running_moments& other) noexcept;

  /// Checkpoint support: exact snapshot / restore of the accumulator state.
  [[nodiscard]] running_moments_state state() const noexcept;
  [[nodiscard]] static running_moments from_state(const running_moments_state& s) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? m1_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when n < 2.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Population variance (n denominator).
  [[nodiscard]] double population_variance() const noexcept;
  [[nodiscard]] double skewness() const noexcept;
  [[nodiscard]] double excess_kurtosis() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Standard error of the mean.
  [[nodiscard]] double standard_error() const noexcept;

 private:
  std::size_t n_ = 0;
  double m1_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample via linear interpolation of order statistics
/// (type-7, the numpy/R default).  The input need not be sorted.
[[nodiscard]] double quantile(std::vector<double> sample, double q);

/// Quantile of an already sorted sample (no copy).
[[nodiscard]] double quantile_sorted(const std::vector<double>& sorted, double q);

/// Summary bundle used by the bench tables.
struct sample_summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double q99 = 0.0;
  double max = 0.0;
};

[[nodiscard]] sample_summary summarize(std::vector<double> sample);

/// Empirical CDF: fraction of sample <= x.
class empirical_cdf {
 public:
  explicit empirical_cdf(std::vector<double> sample);

  [[nodiscard]] double operator()(double x) const noexcept;
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] const std::vector<double>& sorted_sample() const noexcept { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Fixed-width histogram over [lo, hi] with ASCII rendering for benches.
class histogram {
 public:
  histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// Multi-line ASCII bar chart (used by the figure-reproduction benches).
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace reldiv::stats
