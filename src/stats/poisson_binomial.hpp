#pragma once
// Poisson-binomial distribution: the law of N = sum of independent Bernoulli
// trials with heterogeneous probabilities.
//
// In the paper's model the number of faults N1 in a version (and the number
// of common faults N2 in a pair, with probabilities p_i²) is exactly
// Poisson-binomial.  Section 4 works with P(N > 0); this module provides the
// full exact pmf via the standard O(n²) dynamic programme so the test suite
// and benches can validate every tail statement, not just the first moment.

#include <cstddef>
#include <vector>

namespace reldiv::stats {

class poisson_binomial {
 public:
  /// probs[i] in [0,1]; throws std::invalid_argument otherwise.
  explicit poisson_binomial(std::vector<double> probs);

  [[nodiscard]] std::size_t trials() const noexcept { return probs_.size(); }
  [[nodiscard]] double pmf(std::size_t k) const;
  [[nodiscard]] double cdf(std::size_t k) const;
  /// P(N > 0) = 1 - prod(1 - p_i), computed stably (not from the pmf).
  [[nodiscard]] double prob_positive() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;
  /// Smallest k with P(N <= k) >= alpha; alpha in [0,1].
  [[nodiscard]] std::size_t quantile(double alpha) const;
  [[nodiscard]] const std::vector<double>& pmf_table() const noexcept { return pmf_; }

 private:
  std::vector<double> probs_;
  std::vector<double> pmf_;  ///< pmf_[k] = P(N = k), k = 0..n
};

}  // namespace reldiv::stats
