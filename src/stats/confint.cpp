#include "stats/confint.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/distributions.hpp"
#include "stats/random.hpp"
#include "stats/special_functions.hpp"

namespace reldiv::stats {

namespace {

void check_level(double level) {
  if (!(level > 0.0) || !(level < 1.0)) {
    throw std::invalid_argument("confidence level must be in (0,1)");
  }
}

}  // namespace

interval wilson(std::uint64_t successes, std::uint64_t trials, double level) {
  check_level(level);
  if (trials == 0) throw std::invalid_argument("wilson: trials must be > 0");
  if (successes > trials) throw std::invalid_argument("wilson: successes > trials");
  const double z = normal_quantile(0.5 + level / 2.0);
  const auto n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (phat + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, centre - half), std::min(1.0, centre + half)};
}

interval clopper_pearson(std::uint64_t successes, std::uint64_t trials, double level) {
  check_level(level);
  if (trials == 0) throw std::invalid_argument("clopper_pearson: trials must be > 0");
  if (successes > trials) throw std::invalid_argument("clopper_pearson: successes > trials");
  const double alpha = 1.0 - level;
  const auto k = static_cast<double>(successes);
  const auto n = static_cast<double>(trials);
  interval ci;
  ci.lo = (successes == 0)
              ? 0.0
              : inverse_incomplete_beta(k, n - k + 1.0, alpha / 2.0);
  ci.hi = (successes == trials)
              ? 1.0
              : inverse_incomplete_beta(k + 1.0, n - k, 1.0 - alpha / 2.0);
  return ci;
}

interval mean_ci(double mean, double stddev, std::uint64_t n, double level) {
  check_level(level);
  if (n == 0) throw std::invalid_argument("mean_ci: n must be > 0");
  const double z = normal_quantile(0.5 + level / 2.0);
  const double half = z * stddev / std::sqrt(static_cast<double>(n));
  return {mean - half, mean + half};
}

interval bootstrap_percentile(const std::vector<double>& sample,
                              double (*statistic)(const std::vector<double>&),
                              int replicates, double level, std::uint64_t seed) {
  check_level(level);
  if (sample.empty()) throw std::invalid_argument("bootstrap: empty sample");
  if (replicates < 10) throw std::invalid_argument("bootstrap: need >= 10 replicates");
  rng r(seed);
  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(replicates));
  std::vector<double> resample(sample.size());
  for (int b = 0; b < replicates; ++b) {
    for (auto& x : resample) x = sample[r.below(sample.size())];
    stats.push_back(statistic(resample));
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = 1.0 - level;
  const auto m = static_cast<double>(stats.size() - 1);
  const auto lo_idx = static_cast<std::size_t>(alpha / 2.0 * m);
  const auto hi_idx = static_cast<std::size_t>((1.0 - alpha / 2.0) * m);
  return {stats[lo_idx], stats[hi_idx]};
}

}  // namespace reldiv::stats
