#include "stats/gof_tests.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "stats/special_functions.hpp"

namespace reldiv::stats {

double kolmogorov_sf(double x) {
  if (x <= 0.0) return 1.0;
  // Alternating series; converges very fast for x > 0.2.
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * x * x);
    sum += (k % 2 == 1 ? term : -term);
    if (term < 1e-16) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

double ks_distance(std::vector<double> sample, const std::function<double(double)>& cdf) {
  if (sample.empty()) throw std::invalid_argument("ks_distance: empty sample");
  std::sort(sample.begin(), sample.end());
  const auto n = static_cast<double>(sample.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const double f = cdf(sample[i]);
    const double hi = static_cast<double>(i + 1) / n - f;
    const double lo = f - static_cast<double>(i) / n;
    d = std::max({d, hi, lo});
  }
  return d;
}

gof_result kolmogorov_smirnov(std::vector<double> sample,
                              const std::function<double(double)>& cdf) {
  const auto n = static_cast<double>(sample.size());
  const double d = ks_distance(std::move(sample), cdf);
  gof_result r;
  r.statistic = d;
  // Stephens' finite-sample adjustment before the asymptotic Kolmogorov SF.
  const double sqrt_n = std::sqrt(n);
  r.p_value = kolmogorov_sf(d * (sqrt_n + 0.12 + 0.11 / sqrt_n));
  r.reject_at_05 = r.p_value < 0.05;
  return r;
}

gof_result anderson_darling_normal(std::vector<double> sample) {
  if (sample.size() < 8) {
    throw std::invalid_argument("anderson_darling_normal: need at least 8 observations");
  }
  std::sort(sample.begin(), sample.end());
  running_moments rm;
  for (const double x : sample) rm.add(x);
  const double mu = rm.mean();
  const double sd = rm.stddev();
  if (!(sd > 0.0)) throw std::invalid_argument("anderson_darling_normal: zero variance");

  const auto n = static_cast<double>(sample.size());
  double a2 = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const double zi = normal_cdf((sample[i] - mu) / sd);
    const double zrev = normal_cdf((sample[sample.size() - 1 - i] - mu) / sd);
    const double fi = std::clamp(zi, 1e-15, 1.0 - 1e-15);
    const double fr = std::clamp(zrev, 1e-15, 1.0 - 1e-15);
    a2 += (2.0 * static_cast<double>(i) + 1.0) * (std::log(fi) + std::log1p(-fr));
  }
  a2 = -n - a2 / n;
  // Stephens' correction for estimated mean and variance.
  const double a2_star = a2 * (1.0 + 0.75 / n + 2.25 / (n * n));

  // D'Agostino & Stephens (1986) p-value approximation for A*².
  double p = 0.0;
  if (a2_star < 0.2) {
    p = 1.0 - std::exp(-13.436 + 101.14 * a2_star - 223.73 * a2_star * a2_star);
  } else if (a2_star < 0.34) {
    p = 1.0 - std::exp(-8.318 + 42.796 * a2_star - 59.938 * a2_star * a2_star);
  } else if (a2_star < 0.6) {
    p = std::exp(0.9177 - 4.279 * a2_star - 1.38 * a2_star * a2_star);
  } else {
    p = std::exp(1.2937 - 5.709 * a2_star + 0.0186 * a2_star * a2_star);
  }
  p = std::clamp(p, 0.0, 1.0);

  gof_result r;
  r.statistic = a2_star;
  r.p_value = p;
  r.reject_at_05 = p < 0.05;
  return r;
}

gof_result ks_two_sample(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("ks_two_sample: empty sample");
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const auto na = static_cast<double>(a.size());
  const auto nb = static_cast<double>(b.size());
  double d = 0.0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.size() && ib < b.size()) {
    const double x = std::min(a[ia], b[ib]);
    while (ia < a.size() && a[ia] <= x) ++ia;
    while (ib < b.size() && b[ib] <= x) ++ib;
    d = std::max(d, std::fabs(static_cast<double>(ia) / na - static_cast<double>(ib) / nb));
  }
  const double ne = na * nb / (na + nb);
  gof_result r;
  r.statistic = d;
  const double sqrt_ne = std::sqrt(ne);
  r.p_value = kolmogorov_sf(d * (sqrt_ne + 0.12 + 0.11 / sqrt_ne));
  r.reject_at_05 = r.p_value < 0.05;
  return r;
}

gof_result chi_square_gof(const std::vector<double>& observed,
                          const std::vector<double>& expected, int df_reduction) {
  if (observed.size() != expected.size() || observed.empty()) {
    throw std::invalid_argument("chi_square_gof: size mismatch or empty");
  }
  const auto bins = static_cast<int>(observed.size());
  if (bins <= df_reduction) {
    throw std::invalid_argument("chi_square_gof: not enough bins for the degrees of freedom");
  }
  double x2 = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (!(expected[i] > 0.0)) {
      throw std::invalid_argument("chi_square_gof: expected counts must be positive");
    }
    const double diff = observed[i] - expected[i];
    x2 += diff * diff / expected[i];
  }
  const double df = static_cast<double>(bins - df_reduction);
  gof_result r;
  r.statistic = x2;
  r.p_value = gamma_q(0.5 * df, 0.5 * x2);
  r.reject_at_05 = r.p_value < 0.05;
  return r;
}

}  // namespace reldiv::stats
