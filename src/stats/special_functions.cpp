#include "stats/special_functions.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace reldiv::stats {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEps = 3.0e-15;
constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;

/// Continued fraction for the incomplete beta (Lentz's algorithm).
double beta_continued_fraction(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) <= kEps) return h;
  }
  throw std::runtime_error("incomplete_beta: continued fraction failed to converge");
}

/// Series for P(a, x), valid for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 1; n <= kMaxIterations; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) {
      return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
    }
  }
  throw std::runtime_error("gamma_p: series failed to converge");
}

/// Continued fraction for Q(a, x), valid for x >= a + 1.
double gamma_q_cf(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) <= kEps) {
      return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
    }
  }
  throw std::runtime_error("gamma_q: continued fraction failed to converge");
}

}  // namespace

double log_gamma(double x) {
  if (!(x > 0.0)) throw std::invalid_argument("log_gamma: x must be > 0");
  return std::lgamma(x);
}

double log_beta(double a, double b) {
  return log_gamma(a) + log_gamma(b) - log_gamma(a + b);
}

double gamma_p(double a, double x) {
  if (!(a > 0.0)) throw std::invalid_argument("gamma_p: a must be > 0");
  if (x < 0.0) throw std::invalid_argument("gamma_p: x must be >= 0");
  if (x == 0.0) return 0.0;
  return (x < a + 1.0) ? gamma_p_series(a, x) : 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  if (!(a > 0.0)) throw std::invalid_argument("gamma_q: a must be > 0");
  if (x < 0.0) throw std::invalid_argument("gamma_q: x must be >= 0");
  if (x == 0.0) return 1.0;
  return (x < a + 1.0) ? 1.0 - gamma_p_series(a, x) : gamma_q_cf(a, x);
}

double incomplete_beta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0)) {
    throw std::invalid_argument("incomplete_beta: a, b must be > 0");
  }
  if (x < 0.0 || x > 1.0) throw std::invalid_argument("incomplete_beta: x must be in [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double log_front =
      a * std::log(x) + b * std::log1p(-x) - log_beta(a, b);
  const double front = std::exp(log_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double inverse_incomplete_beta(double a, double b, double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("inverse_incomplete_beta: p must be in [0,1]");
  }
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  // Bisection with Newton acceleration; the beta CDF is monotone in x.
  double lo = 0.0;
  double hi = 1.0;
  double x = a / (a + b);  // start at the mean
  for (int iter = 0; iter < 200; ++iter) {
    const double f = incomplete_beta(a, b, x) - p;
    if (std::fabs(f) < 1e-14) break;
    if (f > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    // Newton step using the beta density; fall back to bisection if it
    // leaves the bracket.
    const double log_pdf =
        (a - 1.0) * std::log(x) + (b - 1.0) * std::log1p(-x) - log_beta(a, b);
    const double pdf = std::exp(log_pdf);
    double next = (pdf > 0.0 && std::isfinite(pdf)) ? x - f / pdf : 0.5 * (lo + hi);
    if (!(next > lo) || !(next < hi)) next = 0.5 * (lo + hi);
    if (std::fabs(next - x) < 1e-16) {
      x = next;
      break;
    }
    x = next;
  }
  return x;
}

double log1m_exp(double x) {
  if (x >= 0.0) throw std::invalid_argument("log1m_exp: x must be < 0");
  // Mächler's switchover for accuracy.
  return (x > -0.6931471805599453) ? std::log(-std::expm1(x)) : std::log1p(-std::exp(x));
}

}  // namespace reldiv::stats
