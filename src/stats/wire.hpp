#pragma once
// Portable binary wire format for checkpoint/state files: fixed-width
// little-endian integers and IEEE-754 doubles carried as their uint64 bit
// patterns, so a state serialized on any host decodes bit-exactly on any
// other.  This is the byte-level substrate of mc::run_dir — the on-disk
// currency of the multi-process sweep driver — and of any future
// cross-host transport of accumulator snapshots.
//
// The format is deliberately dumb: a writer appends scalars in declaration
// order, a reader consumes them in the same order, and every read is
// bounds-checked (a short or mangled buffer throws wire_error instead of
// yielding garbage).  Framing, versioning and checksumming live one layer
// up, in mc::run_dir.

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "stats/descriptive.hpp"

namespace reldiv::stats {

/// Thrown on any malformed wire buffer: truncation, oversized length
/// prefixes, trailing bytes where none are allowed.
class wire_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only little-endian encoder.
class wire_writer {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  /// Doubles travel as their exact bit pattern: NaN payloads, signed zeros
  /// and subnormals all round-trip.
  void put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }
  /// Length-prefixed byte string (u64 length + raw bytes).
  void put_bytes(std::string_view bytes) {
    put_u64(bytes.size());
    buf_.append(bytes);
  }

  [[nodiscard]] const std::string& buffer() const noexcept { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer.
class wire_reader {
 public:
  explicit wire_reader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t get_u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  [[nodiscard]] std::uint32_t get_u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  [[nodiscard]] std::uint64_t get_u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  [[nodiscard]] double get_f64() { return std::bit_cast<double>(get_u64()); }
  [[nodiscard]] std::string_view get_bytes() {
    const std::uint64_t n = get_u64();
    need(n);
    const std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }
  /// Require the buffer to be fully consumed (catches trailing garbage).
  void expect_done() const {
    if (!done()) throw wire_error("wire: trailing bytes after payload");
  }

 private:
  void need(std::uint64_t n) const {
    if (n > data_.size() - pos_) throw wire_error("wire: truncated buffer");
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// FNV-1a 64-bit hash — the state-file integrity checksum.  Not
/// cryptographic; it guards against truncation and bit rot, not tampering.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Codec for the running_moments checkpoint snapshot (count + 4 moments +
/// min/max), the innermost layer of every accumulator state file.
void write_moments_state(wire_writer& w, const running_moments_state& s);
[[nodiscard]] running_moments_state read_moments_state(wire_reader& r);

}  // namespace reldiv::stats
