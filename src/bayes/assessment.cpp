#include "bayes/assessment.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/moments.hpp"

namespace reldiv::bayes {

core::pfd_distribution posterior_pfd(const core::fault_universe& u, unsigned m,
                                     std::uint64_t failure_free_demands) {
  const core::pfd_distribution prior = core::exact_pfd_distribution(u, m);
  const auto t = static_cast<double>(failure_free_demands);
  std::vector<core::pfd_distribution::atom> atoms;
  atoms.reserve(prior.atoms().size());
  double total = 0.0;
  for (const auto& a : prior.atoms()) {
    // Likelihood of surviving t demands at PFD value v: (1 - v)^t.
    const double like = (a.value >= 1.0) ? (t > 0.0 ? 0.0 : 1.0)
                                         : std::exp(t * std::log1p(-a.value));
    const double w = a.prob * like;
    if (w > 0.0) {
      atoms.push_back({a.value, w});
      total += w;
    }
  }
  if (!(total > 0.0)) {
    throw std::domain_error("posterior_pfd: zero posterior mass (impossible evidence)");
  }
  for (auto& a : atoms) a.prob /= total;
  return core::pfd_distribution(std::move(atoms));
}

model_assessment assess(const core::fault_universe& u, unsigned m,
                        std::uint64_t failure_free_demands) {
  const core::pfd_distribution prior = core::exact_pfd_distribution(u, m);
  const core::pfd_distribution post = posterior_pfd(u, m, failure_free_demands);
  model_assessment a;
  a.prior_mean = prior.mean();
  a.posterior_mean = post.mean();
  a.prior_prob_zero = prior.prob_zero();
  a.posterior_prob_zero = post.prob_zero();
  a.posterior_q99 = post.quantile(0.99);
  a.predictive_pfd = post.mean();  // E[Θ | data] is the predictive failure probability
  return a;
}

beta_assessment assess_beta(double a, double b, std::uint64_t failure_free_demands) {
  if (!(a > 0.0) || !(b > 0.0)) {
    throw std::invalid_argument("assess_beta: a, b must be > 0");
  }
  beta_assessment out;
  out.prior = {a, b};
  out.posterior = {a, b + static_cast<double>(failure_free_demands)};
  out.posterior_mean = out.posterior.mean();
  out.posterior_q99 = out.posterior.quantile(0.99);
  return out;
}

stats::beta_distribution moment_matched_beta(const core::fault_universe& u, unsigned m) {
  const core::pfd_moments mom = core::one_out_of_m_moments(u, m);
  const double mu = mom.mean;
  const double var = mom.variance;
  if (!(mu > 0.0) || !(mu < 1.0)) {
    throw std::domain_error("moment_matched_beta: mean must be in (0,1)");
  }
  if (!(var > 0.0) || var >= mu * (1.0 - mu)) {
    throw std::domain_error("moment_matched_beta: variance incompatible with a Beta law");
  }
  const double nu = mu * (1.0 - mu) / var - 1.0;
  return {mu * nu, (1.0 - mu) * nu};
}

}  // namespace reldiv::bayes
