#pragma once
// Bayesian assessment on top of the fault-creation model — the paper's
// closing proposal: "apply a family of prior distributions for a product's
// reliability parameters that are based on this plausible physical model
// rather than chosen ... for computational convenience only" (§7, citing
// [14]).
//
// The model gives an exact, physically grounded prior for the PFD of a
// version (or of a 1-out-of-2 pair): the discrete law over fault subsets.
// Observing t failure-free demands reweights each subset S by (1 − q_S)^t.
// This module computes the exact posterior by subset enumeration (n <= 24)
// and compares it with the conventional conjugate Beta prior an assessor
// might use instead.

#include <cstdint>

#include "core/fault_universe.hpp"
#include "core/pfd_distribution.hpp"
#include "stats/distributions.hpp"

namespace reldiv::bayes {

/// Posterior over the PFD of a 1-out-of-m system after observing
/// `failure_free_demands` demands with no failure.  Exact subset
/// enumeration; throws for n > 24 like exact_pfd_distribution.
[[nodiscard]] core::pfd_distribution posterior_pfd(const core::fault_universe& u,
                                                   unsigned m,
                                                   std::uint64_t failure_free_demands);

/// Summary of a model-based assessment.
struct model_assessment {
  double prior_mean = 0.0;
  double posterior_mean = 0.0;
  double prior_prob_zero = 0.0;       ///< P(PFD = 0) before observation
  double posterior_prob_zero = 0.0;   ///< P(PFD = 0 | survived t demands)
  double posterior_q99 = 0.0;         ///< 99% upper credible bound on PFD
  /// Predictive probability that the NEXT demand fails.
  double predictive_pfd = 0.0;
};

[[nodiscard]] model_assessment assess(const core::fault_universe& u, unsigned m,
                                      std::uint64_t failure_free_demands);

/// Conventional conjugate alternative: PFD ~ Beta(a, b) prior; t failure-
/// free demands give Beta(a, b + t).
struct beta_assessment {
  stats::beta_distribution prior;
  stats::beta_distribution posterior;
  double posterior_mean = 0.0;
  double posterior_q99 = 0.0;
};

[[nodiscard]] beta_assessment assess_beta(double a, double b,
                                          std::uint64_t failure_free_demands);

/// Fit a Beta(a, b) to the model prior by moment matching (for a fair
/// model-vs-conjugate comparison).  Requires 0 < mean and variance small
/// enough for a valid Beta; throws std::domain_error otherwise.
[[nodiscard]] stats::beta_distribution moment_matched_beta(const core::fault_universe& u,
                                                           unsigned m);

}  // namespace reldiv::bayes
