#pragma once
// Extended Bayesian inference on the fault-creation model.
//
// assessment.hpp covers the textbook case: exact posterior over fault
// subsets after failure-FREE operation, small n.  This header adds what a
// working assessor needs beyond it:
//
//  * evidence with observed failures (f failures in t demands);
//  * large-n posteriors by self-normalized importance sampling from the
//    prior (the subset lattice is 2^n; IS with the prior as proposal is
//    unbiased for posterior expectations and comes with an effective-
//    sample-size diagnostic);
//  * channel-to-pair transfer: observe each CHANNEL's testing record,
//    update the per-fault presence posteriors, and derive the predicted
//    pair statistics — the assessment route of [14] where the system is
//    assessed from component evidence.

#include <cstdint>
#include <vector>

#include "core/fault_universe.hpp"
#include "core/pfd_distribution.hpp"

namespace reldiv::bayes {

/// Operational evidence: f failures observed in t demands.
struct test_record {
  std::uint64_t demands = 0;
  std::uint64_t failures = 0;
};

/// Exact posterior over the PFD of a 1-out-of-m system given a test record
/// with failures (binomial likelihood per subset).  Subset enumeration,
/// n <= 24.  Throws std::domain_error if the evidence is impossible under
/// the prior (e.g. failures observed but every subset has PFD 0).
[[nodiscard]] core::pfd_distribution posterior_pfd_with_failures(
    const core::fault_universe& u, unsigned m, const test_record& evidence);

/// Importance-sampling posterior summary for large n: draws fault subsets
/// from the prior, weights by the likelihood of `evidence`.
struct is_posterior {
  double mean_pfd = 0.0;          ///< posterior E[Θ | evidence]
  double prob_zero = 0.0;         ///< posterior P(Θ = 0 | evidence)
  double quantile99 = 0.0;        ///< weighted 99th percentile of sampled PFDs
  double effective_sample_size = 0.0;  ///< 1/Σw̃² — reliability diagnostic
  std::uint64_t samples = 0;
  unsigned shards = 0;            ///< campaign shard layout (result identity)
};

/// Runs on the deterministic campaign layer: the sample budget is split
/// over budget-scaled logical rng shards, per-shard draws merged in shard
/// order, so for a given (seed, samples) the summary is bit-identical
/// across `threads` values (throughput knob only).
[[nodiscard]] is_posterior importance_posterior(const core::fault_universe& u, unsigned m,
                                                const test_record& evidence,
                                                std::uint64_t samples, std::uint64_t seed,
                                                unsigned threads = 0);

/// Channel-level evidence propagated to the pair.
///
/// Each channel is tested separately (record_a, record_b).  Per fault i,
/// the posterior presence probability in channel c is obtained from the
/// exact joint posterior over that channel's fault subset; the pair's
/// predicted statistics then use pA_i·pB_i.  Exact (enumeration) per
/// channel; n <= 24.
struct channel_pair_assessment {
  std::vector<double> posterior_p_a;  ///< per-fault presence posterior, channel A
  std::vector<double> posterior_p_b;
  double pair_mean_pfd = 0.0;         ///< Σ pA_i pB_i q_i
  double prob_no_common_fault = 0.0;  ///< Π(1 − pA_i pB_i)
};

[[nodiscard]] channel_pair_assessment assess_pair_from_channel_tests(
    const core::fault_universe& u, const test_record& record_a,
    const test_record& record_b);

/// Assessor inverse problem: how many failure-free demands must be observed
/// before the posterior 99% bound drops below `target_pfd`?  Doubling
/// search on the exact posterior; returns the smallest power-of-two-refined
/// demand count, or 0 if the prior already meets the target, and
/// `max_demands + 1` if even max_demands do not suffice.
[[nodiscard]] std::uint64_t demands_needed_for_target(const core::fault_universe& u,
                                                      unsigned m, double target_pfd,
                                                      double confidence,
                                                      std::uint64_t max_demands);

}  // namespace reldiv::bayes
