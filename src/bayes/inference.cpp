#include "bayes/inference.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mc/campaign.hpp"
#include "mc/sampler.hpp"
#include "stats/random.hpp"

namespace reldiv::bayes {

namespace {

/// log-likelihood of `evidence` at PFD value v (binomial, constant dropped).
double log_likelihood(double v, const test_record& evidence) {
  if (evidence.failures > evidence.demands) {
    throw std::invalid_argument("test_record: failures > demands");
  }
  const auto f = static_cast<double>(evidence.failures);
  const auto s = static_cast<double>(evidence.demands - evidence.failures);
  if (evidence.failures > 0 && v <= 0.0) return -std::numeric_limits<double>::infinity();
  if (evidence.demands - evidence.failures > 0 && v >= 1.0) {
    return -std::numeric_limits<double>::infinity();
  }
  double ll = 0.0;
  if (f > 0.0) ll += f * std::log(v);
  if (s > 0.0) ll += s * std::log1p(-v);
  return ll;
}

}  // namespace

core::pfd_distribution posterior_pfd_with_failures(const core::fault_universe& u,
                                                   unsigned m,
                                                   const test_record& evidence) {
  const core::pfd_distribution prior = core::exact_pfd_distribution(u, m);
  std::vector<core::pfd_distribution::atom> atoms;
  atoms.reserve(prior.atoms().size());
  // Normalize in log space against the best atom to avoid underflow for
  // large demand counts.
  double best = -std::numeric_limits<double>::infinity();
  std::vector<double> ll(prior.atoms().size());
  for (std::size_t i = 0; i < prior.atoms().size(); ++i) {
    ll[i] = log_likelihood(prior.atoms()[i].value, evidence);
    if (prior.atoms()[i].prob > 0.0) best = std::max(best, ll[i]);
  }
  if (!std::isfinite(best)) {
    throw std::domain_error(
        "posterior_pfd_with_failures: evidence impossible under the prior");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < prior.atoms().size(); ++i) {
    const double w = prior.atoms()[i].prob * std::exp(ll[i] - best);
    if (w > 0.0) {
      atoms.push_back({prior.atoms()[i].value, w});
      total += w;
    }
  }
  if (!(total > 0.0)) {
    throw std::domain_error(
        "posterior_pfd_with_failures: evidence impossible under the prior");
  }
  for (auto& a : atoms) a.prob /= total;
  return core::pfd_distribution(std::move(atoms));
}

is_posterior importance_posterior(const core::fault_universe& u, unsigned m,
                                  const test_record& evidence, std::uint64_t samples,
                                  std::uint64_t seed, unsigned threads) {
  if (samples == 0) throw std::invalid_argument("importance_posterior: samples > 0");

  // Sample architecture-level fault subsets directly: fault i is common to
  // all m versions with probability p_i^m.  Precompute the 53-bit Bernoulli
  // thresholds so each draw is one mask-sampler pass (decision-identical to
  // r.bernoulli per fault) plus a masked q dot-product.
  std::vector<std::uint64_t> presence_thresh(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    presence_thresh[i] =
        core::bernoulli_threshold(std::pow(u[i].p, static_cast<double>(m)));
  }

  struct draw {
    double pfd;
    double log_w;
  };
  // Deterministic campaign fan-out: each shard draws its slice from its own
  // stream, shard draw-vectors are concatenated in shard order — the final
  // draw sequence (and every reduction below) is a pure function of
  // (seed, samples, shard layout), never of the thread count.
  const mc::shard_plan plan = mc::make_shard_plan(samples);
  std::vector<draw> draws;
  draws.reserve(samples);
  mc::run_shards(
      plan, seed, threads,
      [&](unsigned /*shard*/, std::uint64_t count, stats::rng& r) {
        std::vector<draw> local;
        local.reserve(count);
        core::fault_mask subset(u.size());
        for (std::uint64_t s = 0; s < count; ++s) {
          mc::sample_mask_from_thresholds(presence_thresh, r, subset);
          const double pfd = core::masked_q_sum(subset, u.q_array());
          local.push_back({pfd, log_likelihood(std::min(pfd, 1.0), evidence)});
        }
        return local;
      },
      [&draws](unsigned /*shard*/, std::vector<draw>&& local) {
        draws.insert(draws.end(), local.begin(), local.end());
      });
  double best = -std::numeric_limits<double>::infinity();
  for (const auto& d : draws) {
    if (std::isfinite(d.log_w)) best = std::max(best, d.log_w);
  }
  if (!std::isfinite(best)) {
    throw std::domain_error("importance_posterior: evidence impossible in every draw");
  }

  double w_sum = 0.0;
  double w2_sum = 0.0;
  double mean = 0.0;
  double zero = 0.0;
  for (auto& d : draws) {
    const double w = std::isfinite(d.log_w) ? std::exp(d.log_w - best) : 0.0;
    d.log_w = w;  // reuse the field as the normalized-scale weight
    w_sum += w;
    w2_sum += w * w;
    mean += w * d.pfd;
    if (d.pfd == 0.0) zero += w;
  }
  is_posterior out;
  out.samples = samples;
  out.shards = plan.shard_count;
  out.mean_pfd = mean / w_sum;
  out.prob_zero = zero / w_sum;
  out.effective_sample_size = w_sum * w_sum / w2_sum;

  // Weighted 99th percentile.
  std::sort(draws.begin(), draws.end(),
            [](const draw& a, const draw& b) { return a.pfd < b.pfd; });
  double cum = 0.0;
  out.quantile99 = draws.back().pfd;
  for (const auto& d : draws) {
    cum += d.log_w;
    if (cum >= 0.99 * w_sum) {
      out.quantile99 = d.pfd;
      break;
    }
  }
  return out;
}

channel_pair_assessment assess_pair_from_channel_tests(const core::fault_universe& u,
                                                       const test_record& record_a,
                                                       const test_record& record_b) {
  if (u.size() > 24) {
    throw std::invalid_argument("assess_pair_from_channel_tests: n > 24");
  }
  // Per channel: enumerate subsets S with prior Π p^s (1-p)^(1-s) and
  // likelihood L(q_S); posterior presence of fault i is the weighted
  // fraction of subsets containing i.
  auto channel_posterior = [&u](const test_record& rec) {
    const std::size_t n = u.size();
    const std::uint64_t subsets = 1ULL << n;
    std::vector<double> presence(n, 0.0);
    double best = -std::numeric_limits<double>::infinity();
    std::vector<double> log_post(subsets);
    for (std::uint64_t mask = 0; mask < subsets; ++mask) {
      double log_prior = 0.0;
      double pfd = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (1ULL << i)) {
          log_prior += std::log(u[i].p > 0.0 ? u[i].p : 1e-300);
          pfd += u[i].q;
        } else {
          log_prior += std::log1p(-std::min(u[i].p, 1.0 - 1e-16));
        }
      }
      log_post[mask] = log_prior + log_likelihood(std::min(pfd, 1.0), rec);
      best = std::max(best, log_post[mask]);
    }
    if (!std::isfinite(best)) {
      throw std::domain_error("assess_pair_from_channel_tests: impossible evidence");
    }
    double total = 0.0;
    for (std::uint64_t mask = 0; mask < subsets; ++mask) {
      const double w = std::exp(log_post[mask] - best);
      total += w;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (1ULL << i)) presence[i] += w;
      }
    }
    for (auto& p : presence) p /= total;
    return presence;
  };

  channel_pair_assessment out;
  out.posterior_p_a = channel_posterior(record_a);
  out.posterior_p_b = channel_posterior(record_b);
  double log_no_common = 0.0;
  bool certain = false;
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double pc = out.posterior_p_a[i] * out.posterior_p_b[i];
    out.pair_mean_pfd += pc * u[i].q;
    if (pc >= 1.0) {
      certain = true;
    } else if (pc > 0.0) {
      log_no_common += std::log1p(-pc);
    }
  }
  out.prob_no_common_fault = certain ? 0.0 : std::exp(log_no_common);
  return out;
}

std::uint64_t demands_needed_for_target(const core::fault_universe& u, unsigned m,
                                        double target_pfd, double confidence,
                                        std::uint64_t max_demands) {
  if (!(target_pfd > 0.0) || !(target_pfd < 1.0)) {
    throw std::invalid_argument("demands_needed_for_target: target in (0,1)");
  }
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    throw std::invalid_argument("demands_needed_for_target: confidence in (0,1)");
  }
  const auto bound_at = [&](std::uint64_t t) {
    return posterior_pfd_with_failures(u, m, {t, 0}).quantile(confidence);
  };
  if (bound_at(0) <= target_pfd) return 0;
  // Doubling search for an upper bracket.
  std::uint64_t hi = 1;
  while (hi <= max_demands && bound_at(hi) > target_pfd) hi *= 2;
  if (hi > max_demands) {
    if (bound_at(max_demands) > target_pfd) return max_demands + 1;
    hi = max_demands;
  }
  std::uint64_t lo = hi / 2;
  while (lo + 1 < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (bound_at(mid) > target_pfd) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace reldiv::bayes
