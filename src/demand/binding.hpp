#pragma once
// Binding geometry to the abstract model: given failure regions with
// introduction probabilities and a demand profile, estimate the q_i (the
// profile measure of each region), check the disjointness assumption, and
// quantify what overlap does to the PFD (the §6.2 sensitivity study).

#include <cstdint>
#include <vector>

#include "core/fault_universe.hpp"
#include "demand/profile.hpp"
#include "demand/region.hpp"
#include "stats/confint.hpp"

namespace reldiv::demand {

/// A potential fault with spatial extent: its failure region plus the
/// probability of being introduced.
struct region_fault {
  region_ptr footprint;
  double p = 0.0;
};

/// Monte-Carlo estimate of the profile measure of one region.
struct hit_estimate {
  double q = 0.0;
  stats::interval ci;  ///< 99% Wilson interval
  std::uint64_t samples = 0;
};

[[nodiscard]] hit_estimate estimate_hit_probability(const region& reg,
                                                    const demand_profile& profile,
                                                    std::uint64_t samples,
                                                    std::uint64_t seed);

/// Exact hit probability of a box region under a uniform profile (ground
/// truth for validating the Monte-Carlo estimator).
[[nodiscard]] double exact_box_hit_probability(const box_region& reg,
                                               const uniform_profile& profile);

/// Everything the binding produces for a set of region faults.
struct bound_universe {
  core::fault_universe universe;         ///< abstract model with estimated q_i
  std::vector<hit_estimate> estimates;   ///< per-region detail
  /// overlap[i][j] = estimated P(demand in F_i AND F_j), i < j; symmetric
  /// entries are stored in a flat row-major (full) matrix.
  std::vector<std::vector<double>> overlap;
  double max_pairwise_overlap = 0.0;
};

/// Estimate q_i for every region fault and the pairwise overlap matrix.
[[nodiscard]] bound_universe bind_universe(const std::vector<region_fault>& faults,
                                           const demand_profile& profile,
                                           std::uint64_t samples, std::uint64_t seed);

/// §6.2: the PFD of a version that contains the given regions, computed two
/// ways — the model's sum-of-q (treats regions as disjoint; pessimistic if
/// they overlap) and the true union measure.
struct overlap_comparison {
  double sum_of_q = 0.0;     ///< model's disjoint-assumption PFD
  double union_measure = 0.0;  ///< true PFD (MC estimate of the union)
  /// Pessimism factor sum/union (>= 1 up to MC noise).
  [[nodiscard]] double pessimism() const {
    return union_measure > 0.0 ? sum_of_q / union_measure : 1.0;
  }
};

[[nodiscard]] overlap_comparison compare_overlap_pfd(const std::vector<region_ptr>& present,
                                                     const demand_profile& profile,
                                                     std::uint64_t samples,
                                                     std::uint64_t seed);

}  // namespace reldiv::demand
