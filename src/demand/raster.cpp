#include "demand/raster.hpp"

#include <bit>
#include <sstream>
#include <stdexcept>

namespace reldiv::demand {

raster_region::raster_region(box domain, std::size_t cols, std::size_t rows)
    : domain_(std::move(domain)),
      cols_(cols),
      rows_(rows),
      bits_((cols * rows + 63) / 64, 0) {
  if (domain_.dims() != 2) {
    throw std::invalid_argument("raster_region: only 2-D domains are supported");
  }
  if (cols == 0 || rows == 0) {
    throw std::invalid_argument("raster_region: need cols > 0 and rows > 0");
  }
}

raster_region raster_region::rasterize(const region& source, const box& domain,
                                       std::size_t cols, std::size_t rows) {
  if (source.dims() != 2) {
    throw std::invalid_argument("raster_region::rasterize: source must be 2-D");
  }
  raster_region out(domain, cols, rows);
  point x(2);
  for (std::size_t r = 0; r < rows; ++r) {
    x[1] = domain.lo[1] + (domain.hi[1] - domain.lo[1]) *
                              (static_cast<double>(r) + 0.5) / static_cast<double>(rows);
    for (std::size_t c = 0; c < cols; ++c) {
      x[0] = domain.lo[0] + (domain.hi[0] - domain.lo[0]) *
                                (static_cast<double>(c) + 0.5) / static_cast<double>(cols);
      if (source.contains(x)) out.set_cell(c, r, true);
    }
  }
  return out;
}

std::size_t raster_region::index(std::size_t col, std::size_t row) const {
  if (col >= cols_ || row >= rows_) throw std::out_of_range("raster_region: cell index");
  return row * cols_ + col;
}

bool raster_region::cell(std::size_t col, std::size_t row) const {
  const std::size_t i = index(col, row);
  return (bits_[i / 64] >> (i % 64)) & 1ULL;
}

void raster_region::set_cell(std::size_t col, std::size_t row, bool on) {
  const std::size_t i = index(col, row);
  if (on) {
    bits_[i / 64] |= (1ULL << (i % 64));
  } else {
    bits_[i / 64] &= ~(1ULL << (i % 64));
  }
}

bool raster_region::contains(const point& x) const {
  if (x.size() != 2) throw std::invalid_argument("raster_region::contains: dim mismatch");
  if (!domain_.contains(x)) return false;
  auto col = static_cast<std::size_t>((x[0] - domain_.lo[0]) /
                                      (domain_.hi[0] - domain_.lo[0]) *
                                      static_cast<double>(cols_));
  auto row = static_cast<std::size_t>((x[1] - domain_.lo[1]) /
                                      (domain_.hi[1] - domain_.lo[1]) *
                                      static_cast<double>(rows_));
  if (col >= cols_) col = cols_ - 1;
  if (row >= rows_) row = rows_ - 1;
  return cell(col, row);
}

std::string raster_region::describe() const {
  std::ostringstream out;
  out << "raster[" << cols_ << "x" << rows_ << ", " << set_cells() << " cells]";
  return out.str();
}

std::size_t raster_region::set_cells() const noexcept {
  std::size_t n = 0;
  for (const auto word : bits_) n += static_cast<std::size_t>(std::popcount(word));
  return n;
}

double raster_region::uniform_measure() const noexcept {
  return static_cast<double>(set_cells()) / static_cast<double>(cell_count());
}

double raster_region::profile_measure(const density_fn& density) const {
  if (!density) {
    throw std::invalid_argument("raster_region::profile_measure: null density");
  }
  double set_mass = 0.0;
  double total_mass = 0.0;
  point x(2);
  for (std::size_t r = 0; r < rows_; ++r) {
    x[1] = domain_.lo[1] + (domain_.hi[1] - domain_.lo[1]) *
                               (static_cast<double>(r) + 0.5) / static_cast<double>(rows_);
    for (std::size_t c = 0; c < cols_; ++c) {
      x[0] = domain_.lo[0] + (domain_.hi[0] - domain_.lo[0]) *
                                 (static_cast<double>(c) + 0.5) / static_cast<double>(cols_);
      const double w = density(x);
      if (!(w >= 0.0)) {
        throw std::invalid_argument("raster_region::profile_measure: negative density");
      }
      total_mass += w;
      if (cell(c, r)) set_mass += w;
    }
  }
  return total_mass > 0.0 ? set_mass / total_mass : 0.0;
}

void raster_region::check_compatible(const raster_region& other) const {
  if (cols_ != other.cols_ || rows_ != other.rows_) {
    throw std::invalid_argument("raster_region: grid size mismatch");
  }
  for (std::size_t d = 0; d < 2; ++d) {
    if (domain_.lo[d] != other.domain_.lo[d] || domain_.hi[d] != other.domain_.hi[d]) {
      throw std::invalid_argument("raster_region: domain mismatch");
    }
  }
}

raster_region raster_region::unite(const raster_region& other) const {
  check_compatible(other);
  raster_region out = *this;
  for (std::size_t w = 0; w < bits_.size(); ++w) out.bits_[w] |= other.bits_[w];
  return out;
}

raster_region raster_region::intersect(const raster_region& other) const {
  check_compatible(other);
  raster_region out = *this;
  for (std::size_t w = 0; w < bits_.size(); ++w) out.bits_[w] &= other.bits_[w];
  return out;
}

raster_region raster_region::subtract(const raster_region& other) const {
  check_compatible(other);
  raster_region out = *this;
  for (std::size_t w = 0; w < bits_.size(); ++w) out.bits_[w] &= ~other.bits_[w];
  return out;
}

bool raster_region::disjoint_with(const raster_region& other) const {
  check_compatible(other);
  for (std::size_t w = 0; w < bits_.size(); ++w) {
    if (bits_[w] & other.bits_[w]) return false;
  }
  return true;
}

double raster_region::jaccard(const raster_region& other) const {
  check_compatible(other);
  std::size_t inter = 0;
  std::size_t uni = 0;
  for (std::size_t w = 0; w < bits_.size(); ++w) {
    inter += static_cast<std::size_t>(std::popcount(bits_[w] & other.bits_[w]));
    uni += static_cast<std::size_t>(std::popcount(bits_[w] | other.bits_[w]));
  }
  return uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni) : 0.0;
}

raster_overlap_comparison raster_overlap(const std::vector<raster_region>& regions) {
  if (regions.empty()) throw std::invalid_argument("raster_overlap: no regions");
  raster_overlap_comparison out;
  raster_region acc(regions.front().domain(), regions.front().cols(),
                    regions.front().rows());
  for (const auto& r : regions) {
    out.sum_of_measures += r.uniform_measure();
    acc = acc.unite(r);
  }
  out.union_measure = acc.uniform_measure();
  return out;
}

}  // namespace reldiv::demand
