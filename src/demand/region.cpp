#include "demand/region.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace reldiv::demand {

box_region::box_region(box b) : bounds_(std::move(b)) {}

bool box_region::contains(const point& x) const { return bounds_.contains(x); }

std::string box_region::describe() const {
  std::ostringstream out;
  out << "box[";
  for (std::size_t d = 0; d < bounds_.dims(); ++d) {
    if (d) out << " x ";
    out << "(" << bounds_.lo[d] << "," << bounds_.hi[d] << ")";
  }
  out << "]";
  return out.str();
}

ellipsoid_region::ellipsoid_region(point centre, std::vector<double> radii)
    : centre_(std::move(centre)), radii_(std::move(radii)) {
  if (centre_.size() != radii_.size() || centre_.empty()) {
    throw std::invalid_argument("ellipsoid_region: centre/radii size mismatch or empty");
  }
  for (const double r : radii_) {
    if (!(r > 0.0)) throw std::invalid_argument("ellipsoid_region: radii must be > 0");
  }
}

bool ellipsoid_region::contains(const point& x) const {
  if (x.size() != centre_.size()) {
    throw std::invalid_argument("ellipsoid_region::contains: dim mismatch");
  }
  double s = 0.0;
  for (std::size_t d = 0; d < centre_.size(); ++d) {
    const double z = (x[d] - centre_[d]) / radii_[d];
    s += z * z;
  }
  return s <= 1.0;
}

std::string ellipsoid_region::describe() const {
  std::ostringstream out;
  out << "ellipsoid[dims=" << centre_.size() << ", r0=" << radii_[0] << "]";
  return out.str();
}

point_array_region::point_array_region(std::vector<point> seeds, double radius)
    : seeds_(std::move(seeds)), radius_(radius) {
  if (seeds_.empty()) throw std::invalid_argument("point_array_region: no seeds");
  if (!(radius > 0.0)) throw std::invalid_argument("point_array_region: radius must be > 0");
  const std::size_t d0 = seeds_.front().size();
  for (const auto& s : seeds_) {
    if (s.size() != d0 || s.empty()) {
      throw std::invalid_argument("point_array_region: inconsistent seed dims");
    }
  }
}

bool point_array_region::contains(const point& x) const {
  if (x.size() != seeds_.front().size()) {
    throw std::invalid_argument("point_array_region::contains: dim mismatch");
  }
  const double r2 = radius_ * radius_;
  for (const auto& s : seeds_) {
    double d2 = 0.0;
    for (std::size_t d = 0; d < s.size(); ++d) {
      const double z = x[d] - s[d];
      d2 += z * z;
      if (d2 > r2) break;
    }
    if (d2 <= r2) return true;
  }
  return false;
}

std::size_t point_array_region::dims() const noexcept { return seeds_.front().size(); }

std::string point_array_region::describe() const {
  std::ostringstream out;
  out << "point_array[" << seeds_.size() << " seeds, r=" << radius_ << "]";
  return out.str();
}

stripe_region::stripe_region(std::size_t dims, std::size_t axis, double period,
                             double width, double phase)
    : dims_(dims), axis_(axis), period_(period), width_(width), phase_(phase) {
  if (dims == 0 || axis >= dims) throw std::invalid_argument("stripe_region: bad axis/dims");
  if (!(period > 0.0) || !(width > 0.0) || width > period) {
    throw std::invalid_argument("stripe_region: require 0 < width <= period");
  }
}

bool stripe_region::contains(const point& x) const {
  if (x.size() != dims_) throw std::invalid_argument("stripe_region::contains: dim mismatch");
  double t = std::fmod(x[axis_] - phase_, period_);
  if (t < 0.0) t += period_;
  return t < width_;
}

std::string stripe_region::describe() const {
  std::ostringstream out;
  out << "stripes[axis=" << axis_ << ", period=" << period_ << ", width=" << width_ << "]";
  return out.str();
}

union_region::union_region(std::vector<region_ptr> parts) : parts_(std::move(parts)) {
  if (parts_.empty()) throw std::invalid_argument("union_region: no parts");
  for (const auto& p : parts_) {
    if (!p) throw std::invalid_argument("union_region: null part");
    if (p->dims() != parts_.front()->dims()) {
      throw std::invalid_argument("union_region: dimension mismatch between parts");
    }
  }
}

bool union_region::contains(const point& x) const {
  for (const auto& p : parts_) {
    if (p->contains(x)) return true;
  }
  return false;
}

std::size_t union_region::dims() const noexcept { return parts_.front()->dims(); }

std::string union_region::describe() const {
  std::ostringstream out;
  out << "union[" << parts_.size() << " parts]";
  return out.str();
}

region_ptr make_box_region(box b) { return std::make_shared<box_region>(std::move(b)); }

region_ptr make_ellipsoid_region(point centre, std::vector<double> radii) {
  return std::make_shared<ellipsoid_region>(std::move(centre), std::move(radii));
}

region_ptr make_point_array_region(std::vector<point> seeds, double radius) {
  return std::make_shared<point_array_region>(std::move(seeds), radius);
}

region_ptr make_stripe_region(std::size_t dims, std::size_t axis, double period,
                              double width, double phase) {
  return std::make_shared<stripe_region>(dims, axis, period, width, phase);
}

region_ptr make_union_region(std::vector<region_ptr> parts) {
  return std::make_shared<union_region>(std::move(parts));
}

std::string render_regions_ascii(const std::vector<region_ptr>& regions, const box& domain,
                                 std::size_t cols, std::size_t rows) {
  if (domain.dims() < 2) {
    throw std::invalid_argument("render_regions_ascii: need a >= 2-D domain");
  }
  std::ostringstream out;
  for (std::size_t r = 0; r < rows; ++r) {
    // Render top row = high var2 so the picture has conventional orientation.
    const double y = domain.lo[1] + (domain.hi[1] - domain.lo[1]) *
                                        (static_cast<double>(rows - 1 - r) + 0.5) /
                                        static_cast<double>(rows);
    for (std::size_t c = 0; c < cols; ++c) {
      const double x = domain.lo[0] + (domain.hi[0] - domain.lo[0]) *
                                          (static_cast<double>(c) + 0.5) /
                                          static_cast<double>(cols);
      point pt(domain.dims(), 0.0);
      pt[0] = x;
      pt[1] = y;
      // Any further dimensions sit at the domain centre for the slice.
      for (std::size_t d = 2; d < domain.dims(); ++d) {
        pt[d] = 0.5 * (domain.lo[d] + domain.hi[d]);
      }
      int hits = 0;
      std::size_t first = 0;
      for (std::size_t i = 0; i < regions.size(); ++i) {
        if (regions[i]->contains(pt)) {
          if (hits == 0) first = i;
          ++hits;
        }
      }
      if (hits == 0) {
        out << '.';
      } else if (hits > 1) {
        out << '*';
      } else {
        out << static_cast<char>(first < 9 ? '1' + first : 'a' + (first - 9));
      }
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace reldiv::demand
