#pragma once
// The demand space (paper §2.1): the set of all possible demands on the
// protection system.  A demand is a point in a k-dimensional box of sensed
// state variables ("a single reading of two input variables, var1 and var2"
// in the paper's Fig. 2 example; possibly many more in reality).

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace reldiv::demand {

/// A demand: one reading of the sensed state variables.
using point = std::vector<double>;

/// Axis-aligned box, the domain of the demand space.
struct box {
  std::vector<double> lo;
  std::vector<double> hi;

  box() = default;
  box(std::vector<double> lo_, std::vector<double> hi_) : lo(std::move(lo_)), hi(std::move(hi_)) {
    if (lo.size() != hi.size() || lo.empty()) {
      throw std::invalid_argument("box: lo/hi size mismatch or empty");
    }
    for (std::size_t d = 0; d < lo.size(); ++d) {
      if (!(lo[d] < hi[d])) throw std::invalid_argument("box: require lo < hi per axis");
    }
  }

  /// The unit hypercube [0,1]^dims.
  static box unit(std::size_t dims) {
    return box(std::vector<double>(dims, 0.0), std::vector<double>(dims, 1.0));
  }

  [[nodiscard]] std::size_t dims() const noexcept { return lo.size(); }

  [[nodiscard]] bool contains(const point& x) const {
    if (x.size() != lo.size()) throw std::invalid_argument("box::contains: dim mismatch");
    for (std::size_t d = 0; d < lo.size(); ++d) {
      if (x[d] < lo[d] || x[d] > hi[d]) return false;
    }
    return true;
  }

  [[nodiscard]] double volume() const noexcept {
    double v = 1.0;
    for (std::size_t d = 0; d < lo.size(); ++d) v *= (hi[d] - lo[d]);
    return v;
  }
};

}  // namespace reldiv::demand
