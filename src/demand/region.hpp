#pragma once
// Failure regions (paper §2.1 and Fig. 2): sets of demands on which a
// version containing a given fault fails.  The literature the paper cites
// [9,10,11] reports simple blobs *and* non-intuitive shapes — arrays of
// separate points, thin lines/stripes — so the shape library covers both.
// Regions are immutable; shared_ptr<const region> is the handle type.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "demand/demand_space.hpp"

namespace reldiv::demand {

class region {
 public:
  virtual ~region() = default;

  /// Is demand x a failure point of this region?
  [[nodiscard]] virtual bool contains(const point& x) const = 0;
  [[nodiscard]] virtual std::size_t dims() const noexcept = 0;
  [[nodiscard]] virtual std::string describe() const = 0;

 protected:
  region() = default;
  region(const region&) = default;
  region& operator=(const region&) = default;
};

using region_ptr = std::shared_ptr<const region>;

/// Axis-aligned box region ("region 1/2 style" blobs in Fig. 2).
class box_region final : public region {
 public:
  explicit box_region(box b);

  [[nodiscard]] bool contains(const point& x) const override;
  [[nodiscard]] std::size_t dims() const noexcept override { return bounds_.dims(); }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] const box& bounds() const noexcept { return bounds_; }

 private:
  box bounds_;
};

/// Axis-aligned ellipsoid: Σ ((x_d − c_d)/r_d)² <= 1.
class ellipsoid_region final : public region {
 public:
  ellipsoid_region(point centre, std::vector<double> radii);

  [[nodiscard]] bool contains(const point& x) const override;
  [[nodiscard]] std::size_t dims() const noexcept override { return centre_.size(); }
  [[nodiscard]] std::string describe() const override;

 private:
  point centre_;
  std::vector<double> radii_;
};

/// Non-connected array of isolated hyper-balls (the "arrays of separate
/// points" shape from the literature): failure within `radius` of any seed.
class point_array_region final : public region {
 public:
  point_array_region(std::vector<point> seeds, double radius);

  [[nodiscard]] bool contains(const point& x) const override;
  [[nodiscard]] std::size_t dims() const noexcept override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::size_t seed_count() const noexcept { return seeds_.size(); }

 private:
  std::vector<point> seeds_;
  double radius_;
};

/// Periodic stripes along one axis: fails when fmod(x[axis]−phase, period)
/// lands within [0, width).  Models the "lines" shapes (e.g. boundary or
/// quantization faults recurring across the range).
class stripe_region final : public region {
 public:
  stripe_region(std::size_t dims, std::size_t axis, double period, double width,
                double phase);

  [[nodiscard]] bool contains(const point& x) const override;
  [[nodiscard]] std::size_t dims() const noexcept override { return dims_; }
  [[nodiscard]] std::string describe() const override;

 private:
  std::size_t dims_;
  std::size_t axis_;
  double period_;
  double width_;
  double phase_;
};

/// Union of sub-regions (used for merged faults and overlap studies).
class union_region final : public region {
 public:
  explicit union_region(std::vector<region_ptr> parts);

  [[nodiscard]] bool contains(const point& x) const override;
  [[nodiscard]] std::size_t dims() const noexcept override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::vector<region_ptr> parts_;
};

/// Convenience factories.
[[nodiscard]] region_ptr make_box_region(box b);
[[nodiscard]] region_ptr make_ellipsoid_region(point centre, std::vector<double> radii);
[[nodiscard]] region_ptr make_point_array_region(std::vector<point> seeds, double radius);
[[nodiscard]] region_ptr make_stripe_region(std::size_t dims, std::size_t axis,
                                            double period, double width, double phase);
[[nodiscard]] region_ptr make_union_region(std::vector<region_ptr> parts);

/// Render a 2-D slice of a set of regions as an ASCII grid: each cell shows
/// the 1-based index of the first region containing its centre ('.' if
/// none, '*' if more than one — an overlap).  Used by bench E11 to redraw
/// Fig. 2.
[[nodiscard]] std::string render_regions_ascii(const std::vector<region_ptr>& regions,
                                               const box& domain, std::size_t cols = 64,
                                               std::size_t rows = 24);

}  // namespace reldiv::demand
