#pragma once
// Demand profiles: the probability distribution of demands during operation
// ("Each demand in the demand space has a certain (possibly unknown)
// probability of happening", §2.1).  The q_i parameters are exactly the
// profile measure of the failure regions, so the same fault can have very
// different q under different plants — which is why profiles are explicit
// objects here.

#include <memory>
#include <string>
#include <vector>

#include "demand/demand_space.hpp"
#include "stats/random.hpp"

namespace reldiv::demand {

class demand_profile {
 public:
  virtual ~demand_profile() = default;

  /// Draw one demand.
  [[nodiscard]] virtual point sample(stats::rng& r) const = 0;
  [[nodiscard]] virtual std::size_t dims() const noexcept = 0;
  [[nodiscard]] virtual std::string describe() const = 0;

 protected:
  demand_profile() = default;
  demand_profile(const demand_profile&) = default;
  demand_profile& operator=(const demand_profile&) = default;
};

using profile_ptr = std::shared_ptr<const demand_profile>;

/// Uniform over a box.
class uniform_profile final : public demand_profile {
 public:
  explicit uniform_profile(box domain);

  [[nodiscard]] point sample(stats::rng& r) const override;
  [[nodiscard]] std::size_t dims() const noexcept override { return domain_.dims(); }
  [[nodiscard]] std::string describe() const override { return "uniform"; }
  [[nodiscard]] const box& domain() const noexcept { return domain_; }

 private:
  box domain_;
};

/// Independent normals per axis, truncated to a box by rejection (plants
/// spend most time near an operating point; demands cluster around it).
class truncated_normal_profile final : public demand_profile {
 public:
  truncated_normal_profile(box domain, point mean, std::vector<double> sd);

  [[nodiscard]] point sample(stats::rng& r) const override;
  [[nodiscard]] std::size_t dims() const noexcept override { return domain_.dims(); }
  [[nodiscard]] std::string describe() const override { return "truncated_normal"; }

 private:
  box domain_;
  point mean_;
  std::vector<double> sd_;
};

/// Finite mixture of profiles (e.g. normal operation + rare transients).
class mixture_profile final : public demand_profile {
 public:
  mixture_profile(std::vector<profile_ptr> components, std::vector<double> weights);

  [[nodiscard]] point sample(stats::rng& r) const override;
  [[nodiscard]] std::size_t dims() const noexcept override;
  [[nodiscard]] std::string describe() const override { return "mixture"; }

 private:
  std::vector<profile_ptr> components_;
  std::vector<double> cumulative_;
};

[[nodiscard]] profile_ptr make_uniform_profile(box domain);
[[nodiscard]] profile_ptr make_truncated_normal_profile(box domain, point mean,
                                                        std::vector<double> sd);
[[nodiscard]] profile_ptr make_mixture_profile(std::vector<profile_ptr> components,
                                               std::vector<double> weights);

}  // namespace reldiv::demand
