#pragma once
// Rasterized 2-D failure regions: a bitmap over a uniform cell grid of the
// demand-space box.  Complements the analytic shapes in region.hpp with
// exact (cell-resolution) set algebra — union, intersection, difference —
// and exact measure under a uniform profile, which turns the §6.2 overlap
// analysis from Monte-Carlo estimates into exact arithmetic at raster
// resolution.  Any analytic region can be rasterized, and a raster is
// itself a `region`, so the two representations compose.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "demand/demand_space.hpp"
#include "demand/region.hpp"

namespace reldiv::demand {

/// Pointwise demand-profile density over the space (need not be
/// normalized; profile_measure normalizes over the raster's own grid).
using density_fn = std::function<double(const point&)>;

class raster_region final : public region {
 public:
  /// Empty raster over `domain` with cols x rows cells.
  raster_region(box domain, std::size_t cols, std::size_t rows);

  /// Rasterize an analytic region by sampling each cell's centre.
  static raster_region rasterize(const region& source, const box& domain,
                                 std::size_t cols, std::size_t rows);

  // region interface --------------------------------------------------------
  [[nodiscard]] bool contains(const point& x) const override;
  [[nodiscard]] std::size_t dims() const noexcept override { return 2; }
  [[nodiscard]] std::string describe() const override;

  // raster accessors ---------------------------------------------------------
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] const box& domain() const noexcept { return domain_; }
  [[nodiscard]] bool cell(std::size_t col, std::size_t row) const;
  void set_cell(std::size_t col, std::size_t row, bool on);
  [[nodiscard]] std::size_t cell_count() const noexcept { return cols_ * rows_; }
  [[nodiscard]] std::size_t set_cells() const noexcept;

  /// Exact measure under a UNIFORM profile over the domain: set cells /
  /// total cells.
  [[nodiscard]] double uniform_measure() const noexcept;

  /// Measure under an arbitrary demand-profile density sampled at cell
  /// centres: Σ density(centre) over SET cells / Σ density(centre) over ALL
  /// cells (0 when the denominator is 0).  Cells accumulate row-major
  /// (row, then col) — a fixed order, so the result is a pure function of
  /// the bitmap and the density.  With a constant density this equals
  /// uniform_measure() exactly up to fp rounding of the ratio.
  [[nodiscard]] double profile_measure(const density_fn& density) const;

  // set algebra (domains and grids must match; throws otherwise) -------------
  [[nodiscard]] raster_region unite(const raster_region& other) const;
  [[nodiscard]] raster_region intersect(const raster_region& other) const;
  [[nodiscard]] raster_region subtract(const raster_region& other) const;
  [[nodiscard]] bool disjoint_with(const raster_region& other) const;

  /// Jaccard overlap |A∩B| / |A∪B| (0 when both empty).
  [[nodiscard]] double jaccard(const raster_region& other) const;

 private:
  void check_compatible(const raster_region& other) const;
  [[nodiscard]] std::size_t index(std::size_t col, std::size_t row) const;

  box domain_;
  std::size_t cols_;
  std::size_t rows_;
  std::vector<std::uint64_t> bits_;  ///< packed row-major bitmap
};

/// Exact sum-of-q vs union-measure comparison at raster resolution (the
/// §6.2 pessimism, without Monte-Carlo noise).
struct raster_overlap_comparison {
  double sum_of_measures = 0.0;
  double union_measure = 0.0;
  [[nodiscard]] double pessimism() const {
    return union_measure > 0.0 ? sum_of_measures / union_measure : 1.0;
  }
};

[[nodiscard]] raster_overlap_comparison raster_overlap(
    const std::vector<raster_region>& regions);

}  // namespace reldiv::demand
