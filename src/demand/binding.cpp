#include "demand/binding.hpp"

#include <algorithm>
#include <stdexcept>

namespace reldiv::demand {

hit_estimate estimate_hit_probability(const region& reg, const demand_profile& profile,
                                      std::uint64_t samples, std::uint64_t seed) {
  if (samples == 0) throw std::invalid_argument("estimate_hit_probability: samples > 0");
  stats::rng r(seed);
  std::uint64_t hits = 0;
  for (std::uint64_t s = 0; s < samples; ++s) {
    if (reg.contains(profile.sample(r))) ++hits;
  }
  hit_estimate e;
  e.q = static_cast<double>(hits) / static_cast<double>(samples);
  e.ci = stats::wilson(hits, samples, 0.99);
  e.samples = samples;
  return e;
}

double exact_box_hit_probability(const box_region& reg, const uniform_profile& profile) {
  const box& inner = reg.bounds();
  const box& outer = profile.domain();
  if (inner.dims() != outer.dims()) {
    throw std::invalid_argument("exact_box_hit_probability: dim mismatch");
  }
  double measure = 1.0;
  for (std::size_t d = 0; d < inner.dims(); ++d) {
    const double lo = std::max(inner.lo[d], outer.lo[d]);
    const double hi = std::min(inner.hi[d], outer.hi[d]);
    if (hi <= lo) return 0.0;
    measure *= (hi - lo) / (outer.hi[d] - outer.lo[d]);
  }
  return measure;
}

bound_universe bind_universe(const std::vector<region_fault>& faults,
                             const demand_profile& profile, std::uint64_t samples,
                             std::uint64_t seed) {
  if (faults.empty()) throw std::invalid_argument("bind_universe: no faults");
  if (samples == 0) throw std::invalid_argument("bind_universe: samples > 0");
  for (const auto& f : faults) {
    if (!f.footprint) throw std::invalid_argument("bind_universe: null region");
    if (!(f.p >= 0.0) || !(f.p <= 1.0)) {
      throw std::invalid_argument("bind_universe: p out of [0,1]");
    }
  }
  const std::size_t n = faults.size();
  std::vector<std::uint64_t> hits(n, 0);
  std::vector<std::vector<std::uint64_t>> joint(n, std::vector<std::uint64_t>(n, 0));
  stats::rng r(seed);
  std::vector<bool> in(n, false);
  for (std::uint64_t s = 0; s < samples; ++s) {
    const point x = profile.sample(r);
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = faults[i].footprint->contains(x);
      if (in[i]) ++hits[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!in[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (in[j]) ++joint[i][j];
      }
    }
  }

  std::vector<core::fault_atom> atoms(n);
  std::vector<hit_estimate> estimates(n);
  const auto total = static_cast<double>(samples);
  for (std::size_t i = 0; i < n; ++i) {
    estimates[i].q = static_cast<double>(hits[i]) / total;
    estimates[i].ci = stats::wilson(hits[i], samples, 0.99);
    estimates[i].samples = samples;
    atoms[i] = {faults[i].p, estimates[i].q};
  }

  bound_universe out{
      // Overlapping regions can push Σq past 1; that is precisely what the
      // §6.2 study measures, so the constructor must not reject it.
      core::fault_universe(std::move(atoms), /*allow_q_overflow=*/true),
      std::move(estimates),
      std::vector<std::vector<double>>(n, std::vector<double>(n, 0.0)),
      0.0};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double ov = static_cast<double>(joint[i][j]) / total;
      out.overlap[i][j] = ov;
      out.overlap[j][i] = ov;
      out.max_pairwise_overlap = std::max(out.max_pairwise_overlap, ov);
    }
  }
  return out;
}

overlap_comparison compare_overlap_pfd(const std::vector<region_ptr>& present,
                                       const demand_profile& profile,
                                       std::uint64_t samples, std::uint64_t seed) {
  if (samples == 0) throw std::invalid_argument("compare_overlap_pfd: samples > 0");
  stats::rng r(seed);
  std::uint64_t union_hits = 0;
  std::vector<std::uint64_t> individual(present.size(), 0);
  for (std::uint64_t s = 0; s < samples; ++s) {
    const point x = profile.sample(r);
    bool any = false;
    for (std::size_t i = 0; i < present.size(); ++i) {
      if (present[i]->contains(x)) {
        any = true;
        ++individual[i];
      }
    }
    if (any) ++union_hits;
  }
  overlap_comparison out;
  const auto total = static_cast<double>(samples);
  for (const std::uint64_t h : individual) out.sum_of_q += static_cast<double>(h) / total;
  out.union_measure = static_cast<double>(union_hits) / total;
  return out;
}

}  // namespace reldiv::demand
