#include "demand/profile.hpp"

#include <stdexcept>

namespace reldiv::demand {

uniform_profile::uniform_profile(box domain) : domain_(std::move(domain)) {}

point uniform_profile::sample(stats::rng& r) const {
  point x(domain_.dims());
  for (std::size_t d = 0; d < x.size(); ++d) {
    x[d] = r.uniform(domain_.lo[d], domain_.hi[d]);
  }
  return x;
}

truncated_normal_profile::truncated_normal_profile(box domain, point mean,
                                                   std::vector<double> sd)
    : domain_(std::move(domain)), mean_(std::move(mean)), sd_(std::move(sd)) {
  if (mean_.size() != domain_.dims() || sd_.size() != domain_.dims()) {
    throw std::invalid_argument("truncated_normal_profile: dim mismatch");
  }
  for (const double s : sd_) {
    if (!(s > 0.0)) throw std::invalid_argument("truncated_normal_profile: sd must be > 0");
  }
  if (!domain_.contains(mean_)) {
    throw std::invalid_argument("truncated_normal_profile: mean outside domain");
  }
}

point truncated_normal_profile::sample(stats::rng& r) const {
  point x(domain_.dims());
  for (std::size_t d = 0; d < x.size(); ++d) {
    // Per-axis rejection; the mean lies inside the domain, so acceptance is
    // bounded away from zero.
    for (int attempt = 0; attempt < 1000; ++attempt) {
      const double v = mean_[d] + sd_[d] * stats::normal_deviate(r);
      if (v >= domain_.lo[d] && v <= domain_.hi[d]) {
        x[d] = v;
        break;
      }
      if (attempt == 999) x[d] = mean_[d];  // pathological sd: fall back to the mean
    }
  }
  return x;
}

mixture_profile::mixture_profile(std::vector<profile_ptr> components,
                                 std::vector<double> weights)
    : components_(std::move(components)) {
  if (components_.empty() || components_.size() != weights.size()) {
    throw std::invalid_argument("mixture_profile: component/weight mismatch or empty");
  }
  double total = 0.0;
  for (const double w : weights) {
    if (!(w >= 0.0)) throw std::invalid_argument("mixture_profile: negative weight");
    total += w;
  }
  if (!(total > 0.0)) throw std::invalid_argument("mixture_profile: zero total weight");
  const std::size_t d0 = components_.front()->dims();
  for (const auto& c : components_) {
    if (!c) throw std::invalid_argument("mixture_profile: null component");
    if (c->dims() != d0) throw std::invalid_argument("mixture_profile: dim mismatch");
  }
  cumulative_.reserve(weights.size());
  double cum = 0.0;
  for (const double w : weights) {
    cum += w / total;
    cumulative_.push_back(cum);
  }
  cumulative_.back() = 1.0;
}

point mixture_profile::sample(stats::rng& r) const {
  const double u = r.uniform();
  for (std::size_t i = 0; i < cumulative_.size(); ++i) {
    if (u <= cumulative_[i]) return components_[i]->sample(r);
  }
  return components_.back()->sample(r);
}

std::size_t mixture_profile::dims() const noexcept { return components_.front()->dims(); }

profile_ptr make_uniform_profile(box domain) {
  return std::make_shared<uniform_profile>(std::move(domain));
}

profile_ptr make_truncated_normal_profile(box domain, point mean, std::vector<double> sd) {
  return std::make_shared<truncated_normal_profile>(std::move(domain), std::move(mean),
                                                    std::move(sd));
}

profile_ptr make_mixture_profile(std::vector<profile_ptr> components,
                                 std::vector<double> weights) {
  return std::make_shared<mixture_profile>(std::move(components), std::move(weights));
}

}  // namespace reldiv::demand
