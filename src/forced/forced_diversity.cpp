#include "forced/forced_diversity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/no_common_fault.hpp"

namespace reldiv::forced {

forced_pair::forced_pair(core::fault_universe a, core::fault_universe b,
                         double q_tolerance)
    : a_(std::move(a)), b_(std::move(b)) {
  if (a_.size() != b_.size()) {
    throw std::invalid_argument("forced_pair: channels must share the fault set");
  }
  for (std::size_t i = 0; i < a_.size(); ++i) {
    if (std::fabs(a_[i].q - b_[i].q) > q_tolerance) {
      throw std::invalid_argument("forced_pair: channels must agree on q");
    }
  }
}

core::pfd_moments forced_pair::pair_moments() const {
  core::pfd_moments m;
  for (std::size_t i = 0; i < a_.size(); ++i) {
    const double pc = a_[i].p * b_[i].p;  // fault common to both channels
    const double q = a_[i].q;
    m.mean += pc * q;
    m.variance += pc * (1.0 - pc) * q * q;
  }
  return m;
}

double forced_pair::prob_no_common_fault() const {
  double log_prod = 0.0;
  for (std::size_t i = 0; i < a_.size(); ++i) {
    const double pc = a_[i].p * b_[i].p;
    if (pc >= 1.0) return 0.0;
    if (pc > 0.0) log_prod += std::log1p(-pc);
  }
  return std::exp(log_prod);
}

double forced_pair::risk_ratio_vs_best_channel() const {
  const double pa = core::prob_some_fault(a_);
  const double pb = core::prob_some_fault(b_);
  const double best = std::min(pa, pb);
  if (best <= 0.0) {
    throw std::domain_error("risk_ratio_vs_best_channel: a channel never has faults");
  }
  return (1.0 - prob_no_common_fault()) / best;
}

double forced_pair::mean_bound() const {
  const double mu_a = core::single_version_moments(a_).mean;
  const double mu_b = core::single_version_moments(b_).mean;
  return std::min(b_.p_max() * mu_a, a_.p_max() * mu_b);
}

functional_pair::functional_pair(forced_pair base, std::vector<double> overlap)
    : base_(std::move(base)), overlap_(std::move(overlap)) {
  if (overlap_.size() != base_.size()) {
    throw std::invalid_argument("functional_pair: overlap vector size mismatch");
  }
  for (const double w : overlap_) {
    if (!(w >= 0.0) || !(w <= 1.0)) {
      throw std::invalid_argument("functional_pair: overlap must be in [0,1]");
    }
  }
}

core::pfd_moments functional_pair::pair_moments() const {
  core::pfd_moments m;
  const auto& a = base_.channel_a();
  const auto& b = base_.channel_b();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double pc = a[i].p * b[i].p;
    const double q_shared = overlap_[i] * a[i].q;
    m.mean += pc * q_shared;
    m.variance += pc * (1.0 - pc) * q_shared * q_shared;
  }
  return m;
}

double functional_pair::prob_no_common_failure_point() const {
  const auto& a = base_.channel_a();
  const auto& b = base_.channel_b();
  double log_prod = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // A fault pair contributes a common failure point only if both present
    // and the regions actually share mass.
    const double pc = (overlap_[i] > 0.0) ? a[i].p * b[i].p : 0.0;
    if (pc >= 1.0) return 0.0;
    if (pc > 0.0) log_prod += std::log1p(-pc);
  }
  return std::exp(log_prod);
}

mc::experiment_result score_empirically(const forced_pair& pair, std::uint64_t samples,
                                        const mc::campaign_config& cfg) {
  return mc::run_pair_campaign(pair.channel_a(), pair.channel_b(),
                               pair.channel_a().q_array(), samples, cfg);
}

mc::experiment_result score_empirically(const functional_pair& pair,
                                        std::uint64_t samples,
                                        const mc::campaign_config& cfg) {
  const auto& a = pair.base().channel_a();
  std::vector<double> coincidence_q(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    coincidence_q[i] = pair.overlap()[i] * a[i].q;
  }
  return mc::run_pair_campaign(a, pair.base().channel_b(), coincidence_q, samples, cfg);
}

diversity_comparison compare_against_non_forced(const functional_pair& pair) {
  const auto& a = pair.base().channel_a();
  const auto& b = pair.base().channel_b();
  // Conservative non-forced baseline: both channels developed under the
  // element-wise WORSE of the two regimes, identical regions (omega = 1).
  std::vector<core::fault_atom> worse;
  worse.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    worse.push_back({std::max(a[i].p, b[i].p), a[i].q});
  }
  const core::fault_universe non_forced(std::move(worse), true);

  diversity_comparison out;
  out.non_forced_mean = core::pair_moments(non_forced).mean;
  out.forced_mean = pair.base().pair_moments().mean;
  out.functional_mean = pair.pair_moments().mean;
  return out;
}

}  // namespace reldiv::forced
