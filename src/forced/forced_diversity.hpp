#pragma once
// Forced and functional diversity — the paper's declared "desirable
// extensions" (§7) and the premise for treating non-forced diversity as a
// worst case ("These are expected to be superior to non-forced diversity,
// but the degree of superiority is unknown: hence the utility of studying a
// limiting case", §1).
//
// Two mechanisms:
//  * FORCED diversity: the channels are developed under different regimes
//    (methods, notations, tools), so fault i has probability pA_i in
//    channel A and pB_i in channel B over the SAME failure regions.  A
//    fault is common with probability pA_i·pB_i.
//  * FUNCTIONAL diversity: the channels additionally monitor different
//    state variables, so their failure-region sets only partially coincide.
//    We model this with an overlap coefficient per fault: omega_i in [0,1]
//    is the probability-mass fraction of fault i's region that channel B's
//    corresponding fault shares with channel A's.  The pair PFD contribution
//    becomes pA_i pB_i (omega_i q_i) — omega = 1 recovers forced diversity,
//    omega = 0 a fault pair that can never coincide.  (The paper's [8]
//    argues functional diversity belongs on exactly this continuum.)

#include <vector>

#include "core/fault_universe.hpp"
#include "core/moments.hpp"
#include "mc/campaign.hpp"

namespace reldiv::forced {

/// A two-channel forced-diversity model: shared regions, per-channel p.
class forced_pair {
 public:
  /// Universes must agree on q (same failure regions); throws otherwise.
  forced_pair(core::fault_universe a, core::fault_universe b, double q_tolerance = 1e-12);

  [[nodiscard]] const core::fault_universe& channel_a() const noexcept { return a_; }
  [[nodiscard]] const core::fault_universe& channel_b() const noexcept { return b_; }
  [[nodiscard]] std::size_t size() const noexcept { return a_.size(); }

  /// Mean and variance of the pair PFD: per fault, Bernoulli(pA·pB) times q.
  [[nodiscard]] core::pfd_moments pair_moments() const;

  /// P(no common fault) = Π(1 − pA_i·pB_i).
  [[nodiscard]] double prob_no_common_fault() const;

  /// Risk ratio vs the BETTER single channel: P(common fault) / min over
  /// channels of P(channel has a fault).
  [[nodiscard]] double risk_ratio_vs_best_channel() const;

  /// eq. (4) analogue: µ2 <= sqrt(pmaxA·pmaxB) · sqrt(µA·µB) does NOT hold
  /// in general; what does hold is µ2 <= min(pmaxB·µA, pmaxA·µB).  Returns
  /// that bound.
  [[nodiscard]] double mean_bound() const;

 private:
  core::fault_universe a_;
  core::fault_universe b_;
};

/// Functional diversity on top of forced diversity: per-fault region-overlap
/// coefficients omega_i in [0,1].
class functional_pair {
 public:
  functional_pair(forced_pair base, std::vector<double> overlap);

  [[nodiscard]] const forced_pair& base() const noexcept { return base_; }
  [[nodiscard]] const std::vector<double>& overlap() const noexcept { return overlap_; }

  /// Pair PFD moments with the overlap-thinned coincidence masses.
  [[nodiscard]] core::pfd_moments pair_moments() const;

  /// P(the pair never coincides on any demand): per fault, coincidence
  /// requires both faults present AND the demand in the shared fraction;
  /// "no common failure point" needs, per fault, NOT(both present and
  /// omega_i > 0).
  [[nodiscard]] double prob_no_common_failure_point() const;

 private:
  forced_pair base_;
  std::vector<double> overlap_;
};

/// The §1 worst-case claim, quantified: the gain of a forced/functional pair
/// relative to the non-forced pair built from the element-wise max process
/// max(pA, pB) (the conservative "same regime for both channels" baseline).
struct diversity_comparison {
  double non_forced_mean = 0.0;   ///< E[Θ2] for the max-process non-forced pair
  double forced_mean = 0.0;       ///< E[Θ2] for the forced pair
  double functional_mean = 0.0;   ///< E[Θ2] with region overlap thinning

  [[nodiscard]] double forced_gain() const {
    return forced_mean > 0.0 ? non_forced_mean / forced_mean : 1.0;
  }
  [[nodiscard]] double functional_gain() const {
    return functional_mean > 0.0 ? non_forced_mean / functional_mean : 1.0;
  }
};

[[nodiscard]] diversity_comparison compare_against_non_forced(
    const functional_pair& pair);

/// Monte-Carlo scoring of a forced pair on the deterministic campaign layer:
/// θ1 is channel A's per-version PFD, θ2 the pair PFD over the shared
/// regions.  Bit-identical across thread counts for a given (seed, samples,
/// shards); the chosen shard layout is recorded in the result.
[[nodiscard]] mc::experiment_result score_empirically(const forced_pair& pair,
                                                      std::uint64_t samples,
                                                      const mc::campaign_config& cfg = {});

/// Same for a functional pair: the coincidence masses are thinned by the
/// per-fault overlaps (θ2 sums ω_i·q_i over common faults, and a pair counts
/// toward N2 > 0 only via faults with ω_i > 0).
[[nodiscard]] mc::experiment_result score_empirically(const functional_pair& pair,
                                                      std::uint64_t samples,
                                                      const mc::campaign_config& cfg = {});

}  // namespace reldiv::forced
