#include "mc/scenario.hpp"

#include <cstdio>
#include <optional>
#include <stdexcept>

#include "mc/aliasing.hpp"
#include "mc/campaign.hpp"
#include "mc/correlated.hpp"
#include "mc/shard_runner.hpp"
#include "stats/random.hpp"

namespace reldiv::mc {

namespace {

/// Cell campaign seed: a splitmix64 hash of (grid seed, cell index) — a pure
/// function of the grid identity, uncorrelated across cells, and unrelated
/// to any stream the cells themselves derive.
std::uint64_t cell_seed(std::uint64_t grid_seed, std::size_t cell_index) {
  std::uint64_t state = grid_seed;
  const std::uint64_t mixed_seed = stats::splitmix64_next(state);
  state = mixed_seed ^ static_cast<std::uint64_t>(cell_index);
  return stats::splitmix64_next(state);
}

scenario_cell_result run_cell(const scenario_axes& axes, const scenario_config& cfg,
                              const scenario_cell& cell, std::size_t cell_index) {
  scenario_cell_result out;
  out.cell = cell;
  out.seed = cell_seed(cfg.seed, cell_index);

  // §6.3 axis: under aliasing the trustworthy model is the region-level
  // effective universe; the naive per-mistake pmax is recorded so the sweep
  // quantifies what an assessor reading mistake-level data would claim.
  // Only aliased cells materialize a universe of their own — everything
  // else samples the axis universe in place.
  const core::fault_universe& base = axes.universes[cell.universe_index].second;
  std::optional<core::fault_universe> aliased;
  out.p_max_naive = base.p_max();
  if (cell.aliasing > 1) {
    const aliased_model model = split_into_mistakes(base, cell.aliasing);
    aliased.emplace(model.effective_universe());
    out.p_max_naive = model.naive_p_max();
  }
  const core::fault_universe& effective = aliased ? *aliased : base;
  out.p_max_true = effective.p_max();

  // §6.1 axis: the marginal-preserving common-cause mixture (ρ = 0 is the
  // independent baseline on the same code path).
  const common_cause_mixture sampler(effective, cell.rho, axes.stress);

  // Per-cell deterministic sharded campaign.  Cells already fan out over
  // the grid's worker pool, so the inner campaign runs single-threaded —
  // by the determinism contract that changes throughput only, never the
  // per-cell result.
  const shard_plan plan = make_shard_plan(cell.samples, cfg.shards);
  out.shards = plan.shard_count;
  const double omega = cell.omega;
  experiment_accumulator acc;
  run_shards(
      plan, out.seed, /*threads=*/1,
      [&](unsigned /*shard*/, std::uint64_t count, stats::rng& r) {
        experiment_accumulator shard_acc;
        core::fault_mask a(effective.size());
        core::fault_mask b(effective.size());
        for (std::uint64_t s = 0; s < count; ++s) {
          sampler.sample_mask(r, a);
          sampler.sample_mask(r, b);
          const double t1 = core::masked_q_sum(a, effective.q_array());
          const auto pair = core::intersect_q_sum(a, b, effective.q_array());
          // §6.2 axis: only the shared fraction ω of each region produces
          // coincident failures; ω = 0 pairs can share faults but never a
          // failure point.
          shard_acc.add(t1, omega * pair.pfd, a.any(),
                        pair.any_common && omega > 0.0);
        }
        return shard_acc;
      },
      [&acc](unsigned /*shard*/, experiment_accumulator&& shard_acc) {
        acc.merge(shard_acc);
      });

  out.state = acc.state();
  const auto n = static_cast<double>(acc.samples());
  out.mean_theta1 = acc.theta1().mean();
  out.mean_theta2 = acc.theta2().mean();
  out.prob_n1_positive = static_cast<double>(acc.n1_positive()) / n;
  out.prob_n2_positive = static_cast<double>(acc.n2_positive()) / n;
  out.risk_ratio = acc.n1_positive() > 0
                       ? static_cast<double>(acc.n2_positive()) /
                             static_cast<double>(acc.n1_positive())
                       : 0.0;
  return out;
}

void append(std::string& out, const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  out += buf;
}

}  // namespace

scenario_cell_result run_scenario_cell(const scenario_axes& axes, const scenario_config& cfg,
                                       const scenario_cell& cell, std::size_t cell_index) {
  return run_cell(axes, cfg, cell, cell_index);
}

std::vector<scenario_cell> enumerate_cells(const scenario_axes& axes) {
  if (axes.universes.empty() || axes.correlations.empty() || axes.overlaps.empty() ||
      axes.aliasing.empty() || axes.budgets.empty()) {
    throw std::invalid_argument("scenario_grid: every axis needs >= 1 value");
  }
  for (const double w : axes.overlaps) {
    if (!(w >= 0.0) || !(w <= 1.0)) {
      throw std::invalid_argument("scenario_grid: overlap must be in [0,1]");
    }
  }
  for (const std::size_t k : axes.aliasing) {
    if (k == 0) throw std::invalid_argument("scenario_grid: aliasing must be >= 1");
  }
  for (const std::uint64_t s : axes.budgets) {
    if (s == 0) throw std::invalid_argument("scenario_grid: budget must be > 0");
  }
  std::vector<scenario_cell> cells;
  cells.reserve(axes.universes.size() * axes.correlations.size() * axes.overlaps.size() *
                axes.aliasing.size() * axes.budgets.size());
  for (std::size_t u = 0; u < axes.universes.size(); ++u) {
    for (const double rho : axes.correlations) {
      for (const double omega : axes.overlaps) {
        for (const std::size_t k : axes.aliasing) {
          for (const std::uint64_t samples : axes.budgets) {
            cells.push_back({u, axes.universes[u].first, rho, omega, k, samples});
          }
        }
      }
    }
  }
  return cells;
}

namespace {

void run_cell_window(const scenario_axes& axes, const scenario_config& cfg,
                     const std::vector<scenario_cell>& cells, std::size_t cell_begin,
                     std::size_t cell_end, grid_result& out) {
  if (cell_begin > cell_end || cell_end > cells.size()) {
    throw std::invalid_argument("run_scenario_cells: cell window out of range");
  }
  if (out.cells.size() != cell_begin) {
    throw std::invalid_argument(
        "run_scenario_cells: result must hold exactly the checkpointed prefix");
  }
  out.cells.reserve(cell_end);
  run_jobs(
      cell_begin, cell_end, cfg.threads,
      [&](std::size_t index) { return run_cell(axes, cfg, cells[index], index); },
      [&out](std::size_t /*index*/, scenario_cell_result&& cell) {
        out.cells.push_back(std::move(cell));
      });
}

}  // namespace

void run_scenario_cells(const scenario_axes& axes, const scenario_config& cfg,
                        std::size_t cell_begin, std::size_t cell_end, grid_result& out) {
  run_cell_window(axes, cfg, enumerate_cells(axes), cell_begin, cell_end, out);
}

grid_result run_scenario_grid(const scenario_axes& axes, const scenario_config& cfg) {
  const auto cells = enumerate_cells(axes);
  grid_result out;
  run_cell_window(axes, cfg, cells, 0, cells.size(), out);
  return out;
}

std::string grid_result::to_csv() const {
  std::string out =
      "universe,rho,omega,aliasing,samples,seed,shards,mean_theta1,mean_theta2,"
      "prob_n1_positive,prob_n2_positive,risk_ratio,p_max_true,p_max_naive\n";
  for (const auto& c : cells) {
    out += c.cell.universe;
    append(out, ",%.17g", c.cell.rho);
    append(out, ",%.17g", c.cell.omega);
    out += ',';
    out += std::to_string(c.cell.aliasing);
    out += ',';
    out += std::to_string(c.cell.samples);
    out += ',';
    out += std::to_string(c.seed);
    out += ',';
    out += std::to_string(c.shards);
    append(out, ",%.17g", c.mean_theta1);
    append(out, ",%.17g", c.mean_theta2);
    append(out, ",%.17g", c.prob_n1_positive);
    append(out, ",%.17g", c.prob_n2_positive);
    append(out, ",%.17g", c.risk_ratio);
    append(out, ",%.17g", c.p_max_true);
    append(out, ",%.17g", c.p_max_naive);
    out += "\n";
  }
  return out;
}

std::string grid_result::to_json() const {
  std::string out = "{\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    if (i > 0) out += ",";
    out += "{\"universe\":\"";
    out += c.cell.universe;
    out += '"';
    append(out, ",\"rho\":%.17g", c.cell.rho);
    append(out, ",\"omega\":%.17g", c.cell.omega);
    out += ",\"aliasing\":";
    out += std::to_string(c.cell.aliasing);
    out += ",\"samples\":";
    out += std::to_string(c.cell.samples);
    out += ",\"seed\":";
    out += std::to_string(c.seed);
    out += ",\"shards\":";
    out += std::to_string(c.shards);
    append(out, ",\"mean_theta1\":%.17g", c.mean_theta1);
    append(out, ",\"mean_theta2\":%.17g", c.mean_theta2);
    append(out, ",\"prob_n1_positive\":%.17g", c.prob_n1_positive);
    append(out, ",\"prob_n2_positive\":%.17g", c.prob_n2_positive);
    append(out, ",\"risk_ratio\":%.17g", c.risk_ratio);
    append(out, ",\"p_max_true\":%.17g", c.p_max_true);
    append(out, ",\"p_max_naive\":%.17g", c.p_max_naive);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace reldiv::mc
