#include "mc/scenario.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <optional>
#include <span>
#include <stdexcept>

#include "mc/aliasing.hpp"
#include "mc/campaign.hpp"
#include "mc/correlated.hpp"
#include "mc/shard_runner.hpp"
#include "stats/descriptive.hpp"
#include "stats/random.hpp"

namespace reldiv::mc {

namespace {

/// Cell campaign seed: a splitmix64 hash of (grid seed, cell index) — a pure
/// function of the grid identity, uncorrelated across cells, and unrelated
/// to any stream the cells themselves derive.
std::uint64_t cell_seed(std::uint64_t grid_seed, std::size_t cell_index) {
  std::uint64_t state = grid_seed;
  const std::uint64_t mixed_seed = stats::splitmix64_next(state);
  state = mixed_seed ^ static_cast<std::uint64_t>(cell_index);
  return stats::splitmix64_next(state);
}

/// Σ q[i] over set bits of a raw word array, ascending index order — the
/// same accumulation order as core::masked_q_sum, so a 2-of-2 defeated set
/// sums bitwise identically to intersect_q_sum.
double word_q_sum(const std::vector<std::uint64_t>& words, std::span<const double> q,
                  bool& any) {
  double pfd = 0.0;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < words.size(); ++b) {
    std::uint64_t w = words[b];
    seen |= w;
    while (w != 0) {
      pfd += q[(b << 6) + static_cast<std::size_t>(std::countr_zero(w))];
      w &= w - 1;
    }
  }
  any = seen != 0;
  return pfd;
}

/// Generalized k-out-of-m cell loop: draw `versions` channel masks per
/// demand, θ1 = first channel's pfd, θ2 = ω · Σq over faults shared by at
/// least `votes` channels.  The defeated set is computed word-wise with
/// bit-sliced counters: ge[j] holds the faults seen in >= j+1 of the masks
/// processed so far, so folding mask v in is ge[j] |= ge[j-1] & v from the
/// top down.  Channels are drawn in index order from the one shard stream —
/// the {2,2} special case consumes the stream exactly like the baseline
/// pair loop.
template <typename Sampler>
experiment_accumulator run_adjudicated_shards(const Sampler& sampler,
                                              const core::fault_universe& effective,
                                              const scenario_cell& cell,
                                              const shard_plan& plan, std::uint64_t seed) {
  const unsigned versions = cell.versions;
  const unsigned votes = cell.votes;
  const double omega = cell.omega;
  experiment_accumulator acc;
  run_shards(
      plan, seed, /*threads=*/1,
      [&](unsigned /*shard*/, std::uint64_t count, stats::rng& r) {
        experiment_accumulator shard_acc;
        std::vector<core::fault_mask> channels(versions,
                                               core::fault_mask(effective.size()));
        const std::size_t words = channels[0].word_count();
        std::vector<std::vector<std::uint64_t>> ge(votes,
                                                   std::vector<std::uint64_t>(words));
        for (std::uint64_t s = 0; s < count; ++s) {
          for (unsigned v = 0; v < versions; ++v) sampler.sample_mask(r, channels[v]);
          const double t1 = core::masked_q_sum(channels[0], effective.q_array());
          for (auto& layer : ge) std::fill(layer.begin(), layer.end(), 0);
          for (unsigned v = 0; v < versions; ++v) {
            const std::uint64_t* mask = channels[v].words();
            for (std::size_t j = votes; j-- > 1;) {
              for (std::size_t w = 0; w < words; ++w) ge[j][w] |= ge[j - 1][w] & mask[w];
            }
            for (std::size_t w = 0; w < words; ++w) ge[0][w] |= mask[w];
          }
          bool defeated = false;
          const double shared = word_q_sum(ge[votes - 1], effective.q_array(), defeated);
          shard_acc.add(t1, omega * shared, channels[0].any(), defeated && omega > 0.0);
        }
        return shard_acc;
      },
      [&acc](unsigned /*shard*/, experiment_accumulator&& shard_acc) {
        acc.merge(shard_acc);
      });
  return acc;
}

scenario_cell_result run_cell(const scenario_axes& axes, const scenario_config& cfg,
                              const scenario_cell& cell, std::size_t cell_index) {
  scenario_cell_result out;
  out.cell = cell;
  out.seed = cell_seed(cfg.seed, cell_index);

  // §6.3 axis: under aliasing the trustworthy model is the region-level
  // effective universe; the naive per-mistake pmax is recorded so the sweep
  // quantifies what an assessor reading mistake-level data would claim.
  // Only aliased cells materialize a universe of their own — everything
  // else samples the axis universe in place.
  const core::fault_universe& base = axes.universes[cell.universe_index].second;
  std::optional<core::fault_universe> aliased;
  out.p_max_naive = base.p_max();
  if (cell.aliasing > 1) {
    const aliased_model model = split_into_mistakes(base, cell.aliasing);
    aliased.emplace(model.effective_universe());
    out.p_max_naive = model.naive_p_max();
  }
  const core::fault_universe& effective = aliased ? *aliased : base;
  out.p_max_true = effective.p_max();

  // Per-cell deterministic sharded campaign.  Cells already fan out over
  // the grid's worker pool, so the inner campaign runs single-threaded —
  // by the determinism contract that changes throughput only, never the
  // per-cell result.
  const shard_plan plan = make_shard_plan(cell.samples, cfg.shards);
  out.shards = plan.shard_count;
  const double omega = cell.omega;
  experiment_accumulator acc;
  if (axes.rho_model == correlation_model::mixture && cell.versions == 2 &&
      cell.votes == 2) {
    // §6.1 axis: the marginal-preserving common-cause mixture (ρ = 0 is the
    // independent baseline on the same code path).  The paper's {2,2} pair
    // keeps this loop verbatim — bit-exact with every earlier release.
    const common_cause_mixture sampler(effective, cell.rho, axes.stress);
    run_shards(
        plan, out.seed, /*threads=*/1,
        [&](unsigned /*shard*/, std::uint64_t count, stats::rng& r) {
          experiment_accumulator shard_acc;
          core::fault_mask a(effective.size());
          core::fault_mask b(effective.size());
          for (std::uint64_t s = 0; s < count; ++s) {
            sampler.sample_mask(r, a);
            sampler.sample_mask(r, b);
            const double t1 = core::masked_q_sum(a, effective.q_array());
            const auto pair = core::intersect_q_sum(a, b, effective.q_array());
            // §6.2 axis: only the shared fraction ω of each region produces
            // coincident failures; ω = 0 pairs can share faults but never a
            // failure point.
            shard_acc.add(t1, omega * pair.pfd, a.any(),
                          pair.any_common && omega > 0.0);
          }
          return shard_acc;
        },
        [&acc](unsigned /*shard*/, experiment_accumulator&& shard_acc) {
          acc.merge(shard_acc);
        });
  } else if (axes.rho_model == correlation_model::mixture) {
    const common_cause_mixture sampler(effective, cell.rho, axes.stress);
    acc = run_adjudicated_shards(sampler, effective, cell, plan, out.seed);
  } else {
    // Copula cells — including the {2,2} pair — share the generalized loop:
    // for two channels its defeated set is exactly the pairwise
    // intersection, accumulated in the same ascending fault order.
    const gaussian_copula_sampler sampler(effective, cell.rho);
    acc = run_adjudicated_shards(sampler, effective, cell, plan, out.seed);
  }

  out.state = acc.state();
  const auto n = static_cast<double>(acc.samples());
  out.mean_theta1 = acc.theta1().mean();
  out.mean_theta2 = acc.theta2().mean();
  out.prob_n1_positive = static_cast<double>(acc.n1_positive()) / n;
  out.prob_n2_positive = static_cast<double>(acc.n2_positive()) / n;
  out.risk_ratio = acc.n1_positive() > 0
                       ? static_cast<double>(acc.n2_positive()) /
                             static_cast<double>(acc.n1_positive())
                       : 0.0;
  return out;
}

void append(std::string& out, const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  out += buf;
}

}  // namespace

scenario_cell_result run_scenario_cell(const scenario_axes& axes, const scenario_config& cfg,
                                       const scenario_cell& cell, std::size_t cell_index) {
  return run_cell(axes, cfg, cell, cell_index);
}

std::vector<scenario_cell> enumerate_cells(const scenario_axes& axes) {
  if (axes.universes.empty() || axes.correlations.empty() || axes.overlaps.empty() ||
      axes.aliasing.empty() || axes.adjudications.empty() || axes.budgets.empty()) {
    throw std::invalid_argument("scenario_grid: every axis needs >= 1 value");
  }
  if (axes.rho_model != correlation_model::mixture &&
      axes.rho_model != correlation_model::copula) {
    throw std::invalid_argument("scenario_grid: unknown correlation model");
  }
  for (const double rho : axes.correlations) {
    if (axes.rho_model == correlation_model::mixture) {
      // Negative ρ needs the copula model; the mixture has no such regime.
      if (!(rho >= 0.0) || !(rho < 1.0)) {
        throw std::invalid_argument("scenario_grid: mixture rho must be in [0,1)");
      }
    } else if (!(rho > -1.0) || !(rho < 1.0)) {
      throw std::invalid_argument("scenario_grid: copula rho must be in (-1,1)");
    }
  }
  for (const double w : axes.overlaps) {
    if (!(w >= 0.0) || !(w <= 1.0)) {
      throw std::invalid_argument("scenario_grid: overlap must be in [0,1]");
    }
  }
  for (const std::size_t k : axes.aliasing) {
    if (k == 0) throw std::invalid_argument("scenario_grid: aliasing must be >= 1");
  }
  for (const core::architecture& arch : axes.adjudications) {
    if (arch.versions == 0 || arch.votes_to_defeat == 0 ||
        arch.votes_to_defeat > arch.versions) {
      throw std::invalid_argument(
          "scenario_grid: adjudication needs 1 <= votes_to_defeat <= versions");
    }
  }
  for (const std::uint64_t s : axes.budgets) {
    if (s == 0) throw std::invalid_argument("scenario_grid: budget must be > 0");
  }
  const std::size_t grid_cells = axes.universes.size() * axes.correlations.size() *
                                 axes.overlaps.size() * axes.aliasing.size() *
                                 axes.adjudications.size() * axes.budgets.size();
  if (!axes.cell_budgets.empty()) {
    // Per-cell overrides keep the grid shape: the budget axis degenerates to
    // one placeholder value and the override vector supplies cell i's
    // samples.  Anything else would change cell indices — and with them
    // every cell seed.
    if (axes.budgets.size() != 1) {
      throw std::invalid_argument(
          "scenario_grid: cell_budgets requires a single-valued budget axis");
    }
    if (axes.cell_budgets.size() != grid_cells) {
      throw std::invalid_argument(
          "scenario_grid: cell_budgets must hold one budget per cell");
    }
    for (const std::uint64_t s : axes.cell_budgets) {
      if (s == 0) throw std::invalid_argument("scenario_grid: cell budget must be > 0");
    }
  }
  std::vector<scenario_cell> cells;
  cells.reserve(grid_cells);
  for (std::size_t u = 0; u < axes.universes.size(); ++u) {
    for (const double rho : axes.correlations) {
      for (const double omega : axes.overlaps) {
        for (const std::size_t k : axes.aliasing) {
          for (const core::architecture& arch : axes.adjudications) {
            for (const std::uint64_t samples : axes.budgets) {
              const std::uint64_t resolved = axes.cell_budgets.empty()
                                                 ? samples
                                                 : axes.cell_budgets[cells.size()];
              cells.push_back({u, axes.universes[u].first, rho, omega, k, arch.versions,
                               arch.votes_to_defeat, resolved});
            }
          }
        }
      }
    }
  }
  return cells;
}

namespace {

void run_cell_window(const scenario_axes& axes, const scenario_config& cfg,
                     const std::vector<scenario_cell>& cells, std::size_t cell_begin,
                     std::size_t cell_end, grid_result& out) {
  if (cell_begin > cell_end || cell_end > cells.size()) {
    throw std::invalid_argument("run_scenario_cells: cell window out of range");
  }
  if (out.cells.size() != cell_begin) {
    throw std::invalid_argument(
        "run_scenario_cells: result must hold exactly the checkpointed prefix");
  }
  out.cells.reserve(cell_end);
  run_jobs(
      cell_begin, cell_end, cfg.threads,
      [&](std::size_t index) { return run_cell(axes, cfg, cells[index], index); },
      [&out](std::size_t /*index*/, scenario_cell_result&& cell) {
        out.cells.push_back(std::move(cell));
      });
}

}  // namespace

void run_scenario_cells(const scenario_axes& axes, const scenario_config& cfg,
                        std::size_t cell_begin, std::size_t cell_end, grid_result& out) {
  run_cell_window(axes, cfg, enumerate_cells(axes), cell_begin, cell_end, out);
}

grid_result run_scenario_grid(const scenario_axes& axes, const scenario_config& cfg) {
  const auto cells = enumerate_cells(axes);
  grid_result out;
  run_cell_window(axes, cfg, cells, 0, cells.size(), out);
  return out;
}

std::string grid_result::to_csv() const {
  // The adjudication and spread columns ride at the end so every existing
  // column keeps its position (downstream tooling indexes by header name,
  // but the stable prefix costs nothing).  sd_theta* are the sample
  // standard deviations the refinement pass turns into CI half-widths.
  std::string out =
      "universe,rho,omega,aliasing,samples,seed,shards,mean_theta1,mean_theta2,"
      "prob_n1_positive,prob_n2_positive,risk_ratio,p_max_true,p_max_naive,"
      "versions,votes,sd_theta1,sd_theta2\n";
  for (const auto& c : cells) {
    out += c.cell.universe;
    append(out, ",%.17g", c.cell.rho);
    append(out, ",%.17g", c.cell.omega);
    out += ',';
    out += std::to_string(c.cell.aliasing);
    out += ',';
    out += std::to_string(c.cell.samples);
    out += ',';
    out += std::to_string(c.seed);
    out += ',';
    out += std::to_string(c.shards);
    append(out, ",%.17g", c.mean_theta1);
    append(out, ",%.17g", c.mean_theta2);
    append(out, ",%.17g", c.prob_n1_positive);
    append(out, ",%.17g", c.prob_n2_positive);
    append(out, ",%.17g", c.risk_ratio);
    append(out, ",%.17g", c.p_max_true);
    append(out, ",%.17g", c.p_max_naive);
    out += ',';
    out += std::to_string(c.cell.versions);
    out += ',';
    out += std::to_string(c.cell.votes);
    append(out, ",%.17g", stats::running_moments::from_state(c.state.theta1).stddev());
    append(out, ",%.17g", stats::running_moments::from_state(c.state.theta2).stddev());
    out += "\n";
  }
  return out;
}

std::string grid_result::to_json() const {
  std::string out = "{\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    if (i > 0) out += ",";
    out += "{\"universe\":\"";
    out += c.cell.universe;
    out += '"';
    append(out, ",\"rho\":%.17g", c.cell.rho);
    append(out, ",\"omega\":%.17g", c.cell.omega);
    out += ",\"aliasing\":";
    out += std::to_string(c.cell.aliasing);
    out += ",\"samples\":";
    out += std::to_string(c.cell.samples);
    out += ",\"seed\":";
    out += std::to_string(c.seed);
    out += ",\"shards\":";
    out += std::to_string(c.shards);
    append(out, ",\"mean_theta1\":%.17g", c.mean_theta1);
    append(out, ",\"mean_theta2\":%.17g", c.mean_theta2);
    append(out, ",\"prob_n1_positive\":%.17g", c.prob_n1_positive);
    append(out, ",\"prob_n2_positive\":%.17g", c.prob_n2_positive);
    append(out, ",\"risk_ratio\":%.17g", c.risk_ratio);
    append(out, ",\"p_max_true\":%.17g", c.p_max_true);
    append(out, ",\"p_max_naive\":%.17g", c.p_max_naive);
    out += ",\"versions\":";
    out += std::to_string(c.cell.versions);
    out += ",\"votes\":";
    out += std::to_string(c.cell.votes);
    append(out, ",\"sd_theta1\":%.17g",
           stats::running_moments::from_state(c.state.theta1).stddev());
    append(out, ",\"sd_theta2\":%.17g",
           stats::running_moments::from_state(c.state.theta2).stddev());
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace reldiv::mc
