#pragma once
// mc::io_env — the injectable filesystem seam under the run-directory layer
// (ROADMAP item 1 earmarks this seam for an object-store backend; this PR
// uses it for deterministic fault injection).
//
// Every filesystem touch the distributed driver performs — whole-file reads,
// temp-file writes, directory fsyncs, state-file renames, claim-lease
// renames, probe/heartbeat touches — goes through the process's *active*
// io_env.  The default is real_io_env (POSIX syscalls, crash-durable
// write+fsync).  Tests and the chaos harness install a faulty_io_env, which
// forwards to a base env but consults a deterministic fault_plan first:
//
//   * the plan is a pure function of (chaos seed, operation index) — a
//     splitmix64 hash in the same style as mc::target_stream_seed — so any
//     chaos run is replayable from its seed alone;
//   * injected faults are the failure classes a real fleet sees at this
//     seam: EIO, ENOSPC, a torn (silently short) write, a rename whose
//     target never becomes visible, and a stall past a deadline.
//
// The seam raises io_error — a run_dir_error carrying the operation, the
// path and the errno — for injected and real failures alike, so callers
// cannot tell chaos from a genuinely bad disk (which is the point).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

#include "mc/run_dir.hpp"

namespace reldiv::mc {

/// A filesystem operation failed (for real or by injection).  Derives from
/// run_dir_error so every existing "treat a bad file as not-done / not
/// mergeable" catch site handles it; carries the operation name, the path
/// and the errno so a failed read mid-merge reports exactly what broke
/// where, not a generic what().
class io_error : public run_dir_error {
 public:
  io_error(std::string op, std::filesystem::path path, int error_number);

  [[nodiscard]] const std::string& op() const noexcept { return op_; }
  [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }
  /// The errno value (EIO, ENOSPC, ENOENT, ...).
  [[nodiscard]] int error_number() const noexcept { return error_number_; }

 private:
  std::string op_;
  std::filesystem::path path_;
  int error_number_ = 0;
};

/// The operations the seam distinguishes — fault plans target these.
enum class io_op : std::uint32_t {
  read = 0,    ///< whole-file read (state files, manifests, claim bodies)
  write = 1,   ///< create/truncate + write (+optional fsync) of one file
  fsync = 2,   ///< directory fsync after a rename
  rename = 3,  ///< replacing rename of a completed temp file into place
  claim = 4,   ///< RENAME_NOREPLACE (or link) of a claim-lease file
  touch = 5,   ///< probe creation / claim heartbeat renewal
};

inline constexpr std::uint32_t io_op_bit(io_op op) {
  return 1u << static_cast<std::uint32_t>(op);
}
inline constexpr std::uint32_t kAllIoOps =
    io_op_bit(io_op::read) | io_op_bit(io_op::write) | io_op_bit(io_op::fsync) |
    io_op_bit(io_op::rename) | io_op_bit(io_op::claim) | io_op_bit(io_op::touch);

/// The injectable failure classes.
enum class fault_kind : std::uint32_t {
  none = 0,
  eio = 1,          ///< operation fails with EIO
  enospc = 2,       ///< operation fails with ENOSPC
  torn_write = 3,   ///< write reports success but lands only a prefix
  lost_rename = 4,  ///< rename reports success but the target never appears
  stall = 5,        ///< operation sleeps past a deadline, then proceeds
};

inline constexpr std::uint32_t fault_kind_bit(fault_kind k) {
  return 1u << static_cast<std::uint32_t>(k);
}
inline constexpr std::uint32_t kAllFaultKinds =
    fault_kind_bit(fault_kind::eio) | fault_kind_bit(fault_kind::enospc) |
    fault_kind_bit(fault_kind::torn_write) | fault_kind_bit(fault_kind::lost_rename) |
    fault_kind_bit(fault_kind::stall);

/// Human-readable name of a fault kind ("eio", "torn_write", ...).
[[nodiscard]] std::string_view fault_kind_name(fault_kind k);

/// A deterministic, serializable fault-injection schedule.  Whether — and
/// how — operation number N fails is a pure function of (seed, N): the
/// faulty env keeps one monotone per-process op counter, and decide() hashes
/// (seed, index) with splitmix64 exactly like target_stream_seed hashes
/// (seed, target).  Same plan, same code path => same faults, every run.
struct fault_plan {
  std::uint64_t seed = 0;        ///< chaos seed; 0 disables injection entirely
  std::uint32_t rate_ppm = 0;    ///< per-operation fault probability, parts per million
  std::uint32_t ops_mask = kAllIoOps;        ///< io_op_bit()s eligible for faults
  std::uint32_t kinds_mask = kAllFaultKinds; ///< fault_kind_bit()s to draw from
  std::uint32_t stall_ms = 5;    ///< injected stall duration, milliseconds

  /// The fault (or none) for the index'th operation of type `op`.  Pure:
  /// respects ops_mask, kinds_mask and per-op applicability (a read cannot
  /// tear a write; a claim cannot run out of disk it never writes).
  [[nodiscard]] fault_kind decide(io_op op, std::uint64_t op_index) const;

  /// "seed=..,rate_ppm=..,ops=..,kinds=..,stall_ms=.." — the replay recipe
  /// printed by the chaos harness.  parse() round-trips it; throws
  /// std::invalid_argument on malformed text.
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static fault_plan parse(std::string_view text);
};

/// The plan the chaos harness runs for sweep position `index` off one chaos
/// seed: a derived splitmix64 seed plus a rotating fault-kind palette, so a
/// small sweep still covers every failure class.
[[nodiscard]] fault_plan chaos_plan(std::uint64_t chaos_seed, std::uint32_t index,
                                    std::uint32_t rate_ppm);

/// The seam.  Implementations throw io_error on failure; rename_noreplace
/// reports via return code because EEXIST is an expected outcome there.
class io_env {
 public:
  virtual ~io_env() = default;

  /// Read a whole file.
  [[nodiscard]] virtual std::string read_file(const std::filesystem::path& path) = 0;

  /// Create/truncate `path` and write `contents`; when `sync`, fsync the
  /// file before closing so the bytes survive a power cut.
  virtual void write_file(const std::filesystem::path& path, std::string_view contents,
                          bool sync) = 0;

  /// fsync the directory itself, making a just-renamed entry durable.
  virtual void fsync_dir(const std::filesystem::path& dir) = 0;

  /// Replacing rename (the temp -> final step of write_file_atomic).
  virtual void rename_file(const std::filesystem::path& from,
                           const std::filesystem::path& to) = 0;

  /// Non-replacing rename for claim leases: 0 on success (the source is
  /// consumed), -EEXIST when the target already exists, -errno otherwise
  /// (the source is left for the caller to clean up).  Falls back to
  /// link(2) where the kernel/filesystem lacks RENAME_NOREPLACE.
  [[nodiscard]] virtual int rename_noreplace(const std::filesystem::path& from,
                                             const std::filesystem::path& to) = 0;

  /// Rewrite `path` with `contents`, refreshing its mtime with the *owning
  /// filesystem's* clock (probe files, claim heartbeats).  When `create` is
  /// false and the file is gone, returns false instead of recreating it — a
  /// heartbeat must never resurrect a reaped claim.
  virtual bool touch(const std::filesystem::path& path, std::string_view contents,
                     bool create) = 0;
};

/// The POSIX env every process starts with.
class real_io_env : public io_env {
 public:
  [[nodiscard]] std::string read_file(const std::filesystem::path& path) override;
  void write_file(const std::filesystem::path& path, std::string_view contents,
                  bool sync) override;
  void fsync_dir(const std::filesystem::path& dir) override;
  void rename_file(const std::filesystem::path& from,
                   const std::filesystem::path& to) override;
  [[nodiscard]] int rename_noreplace(const std::filesystem::path& from,
                                     const std::filesystem::path& to) override;
  bool touch(const std::filesystem::path& path, std::string_view contents,
             bool create) override;
};

/// Forwards to `base` (default: the system env) after consulting `plan`.
/// Thread-safe: the op counter is atomic, so heartbeat threads and the
/// worker loop share one deterministic operation sequence.
class faulty_io_env : public io_env {
 public:
  explicit faulty_io_env(fault_plan plan, io_env* base = nullptr);

  [[nodiscard]] const fault_plan& plan() const noexcept { return plan_; }
  /// Seam operations performed so far.
  [[nodiscard]] std::uint64_t operations() const noexcept { return ops_.load(); }
  /// Faults injected so far.
  [[nodiscard]] std::uint64_t injected() const noexcept { return injected_.load(); }

  [[nodiscard]] std::string read_file(const std::filesystem::path& path) override;
  void write_file(const std::filesystem::path& path, std::string_view contents,
                  bool sync) override;
  void fsync_dir(const std::filesystem::path& dir) override;
  void rename_file(const std::filesystem::path& from,
                   const std::filesystem::path& to) override;
  [[nodiscard]] int rename_noreplace(const std::filesystem::path& from,
                                     const std::filesystem::path& to) override;
  bool touch(const std::filesystem::path& path, std::string_view contents,
             bool create) override;

 private:
  [[nodiscard]] fault_kind next(io_op op);

  fault_plan plan_;
  io_env* base_;
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> injected_{0};
};

/// The process-wide default env (plain POSIX, no injection).
[[nodiscard]] real_io_env& system_io_env();

/// The env the run-directory layer currently routes through.
[[nodiscard]] io_env& active_io_env();

/// Install `env` as the active env (nullptr restores the system env);
/// returns the previous override (nullptr when none was installed).
io_env* set_io_env(io_env* env);

/// RAII install/restore for tests and the chaos harness.
class scoped_io_env {
 public:
  explicit scoped_io_env(io_env& env) : previous_(set_io_env(&env)) {}
  ~scoped_io_env() { set_io_env(previous_); }
  scoped_io_env(const scoped_io_env&) = delete;
  scoped_io_env& operator=(const scoped_io_env&) = delete;

 private:
  io_env* previous_;
};

}  // namespace reldiv::mc
