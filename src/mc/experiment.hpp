#pragma once
// Multithreaded Monte-Carlo experiment runner: estimates every quantity the
// paper derives in closed form (means, σs, P(N>0), full PFD distributions)
// by simulating large populations of independently developed versions and
// pairs.  The benches use it to validate the analytics; the sensitivity
// studies (§6) use it where no closed form exists.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/fault_universe.hpp"
#include "stats/confint.hpp"
#include "stats/descriptive.hpp"

namespace reldiv::mc {

/// Which inner sampling kernel drives the experiment.  All three draw from
/// the same distribution; they differ in speed and rng-stream layout.
enum class sampling_engine {
  /// Packed bitmask kernels with halved rng draws (paired 32-bit thresholds;
  /// word-parallel bit-slice when all faults share one p).  Fastest; the
  /// per-fault probabilities are realized to at worst the 2^-32 grid, and
  /// the engine falls back to the exact 53-bit kernel when any p is too
  /// small for that grid (see fault_universe::fast32_grid_safe).
  fast,
  /// Packed bitmask kernels consuming the rng stream decision-for-decision
  /// like the original sparse sampler: results are bit-identical to the
  /// legacy engine (and to pre-bitset releases) for a given seed.
  exact,
  /// The original sparse std::vector<uint32_t> path.  Kept as the
  /// regression/benchmark baseline.
  legacy,
};

struct experiment_config {
  std::uint64_t samples = 100'000;   ///< number of version-pairs to draw
  std::uint64_t seed = 1;
  unsigned threads = 0;              ///< 0 = hardware_concurrency
  bool keep_samples = false;         ///< retain per-sample PFDs (memory!)
  double ci_level = 0.99;            ///< level for the reported intervals
  sampling_engine engine = sampling_engine::fast;
};

struct estimate {
  double value = 0.0;
  stats::interval ci;                ///< CI at experiment_config::ci_level
};

struct experiment_result {
  std::uint64_t samples = 0;

  // Single-version statistics (channel A of each simulated pair).
  stats::running_moments theta1;
  // Pair (1-out-of-2) statistics.
  stats::running_moments theta2;

  std::uint64_t n1_positive = 0;  ///< count of versions with >= 1 fault
  std::uint64_t n2_positive = 0;  ///< count of pairs with >= 1 common fault
  std::uint64_t n1_zero_pfd = 0;  ///< versions with PFD == 0
  std::uint64_t n2_zero_pfd = 0;  ///< pairs with PFD == 0

  double ci_level = 0.99;

  std::optional<std::vector<double>> theta1_samples;
  std::optional<std::vector<double>> theta2_samples;

  [[nodiscard]] estimate mean_theta1() const;
  [[nodiscard]] estimate mean_theta2() const;
  [[nodiscard]] double stddev_theta1() const { return theta1.stddev(); }
  [[nodiscard]] double stddev_theta2() const { return theta2.stddev(); }
  [[nodiscard]] estimate prob_n1_positive() const;
  [[nodiscard]] estimate prob_n2_positive() const;
  /// Empirical eq. (10) ratio.
  [[nodiscard]] double risk_ratio() const;
};

/// Simulate `config.samples` independent pairs of versions from `u`.
[[nodiscard]] experiment_result run_experiment(const core::fault_universe& u,
                                               const experiment_config& config);

}  // namespace reldiv::mc
