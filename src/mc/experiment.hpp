#pragma once
// Multithreaded Monte-Carlo experiment runner: estimates every quantity the
// paper derives in closed form (means, σs, P(N>0), full PFD distributions)
// by simulating large populations of independently developed versions and
// pairs.  The benches use it to validate the analytics; the sensitivity
// studies (§6) use it where no closed form exists.
//
// Determinism contract: the sample budget is decomposed into a fixed number
// of logical rng shards (experiment_config::shards, default
// default_logical_shards(samples)) executed by the shard_runner subsystem, so for a
// given (seed, samples, shards, engine) the result is bit-identical
// regardless of experiment_config::threads or the machine's core count.
// Thread count is a throughput knob, never a results knob.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/fault_universe.hpp"
#include "mc/shard_runner.hpp"
#include "stats/confint.hpp"
#include "stats/descriptive.hpp"

namespace reldiv::mc {

/// Which inner sampling kernel drives the experiment.  All three draw from
/// the same distribution; they differ in speed and rng-stream layout.
enum class sampling_engine {
  /// Packed bitmask kernels with halved rng draws (paired 32-bit thresholds;
  /// word-parallel bit-slice when all faults share one p).  Fastest; the
  /// per-fault probabilities are realized to at worst the 2^-32 grid, and
  /// the engine falls back to the exact 53-bit kernel when any p is too
  /// small for that grid (see fault_universe::fast32_grid_safe).
  fast,
  /// Packed bitmask kernels consuming the rng stream decision-for-decision
  /// like the original sparse sampler: results are bit-identical to the
  /// legacy engine for a given seed and shard layout.
  exact,
  /// The original sparse std::vector<uint32_t> path.  Kept as the
  /// regression/benchmark baseline.
  legacy,
  /// Counter-based SIMD block engine: the universe is relaid out with
  /// core::make_p_sorted_permutation (equal-p faults gathered into whole
  /// mask words, so heterogeneous universes become mostly bit-sliceable),
  /// a core::counter_sample_plan is frozen over the permuted layout, and
  /// version-pairs are generated in batches by core::sample_pair_counter_batch
  /// under runtime SIMD dispatch.  Every draw is a pure function of
  /// (counter stream key, counter), so shard streams are derived O(1) via
  /// stats::counter_stream_key instead of jump walks, and results are
  /// bit-identical across thread counts AND across SIMD dispatch levels
  /// (RELDIV_SIMD is a throughput knob, like threads).  NOT stream-compatible
  /// with `fast`: the rng layout and the per-word accumulation order follow
  /// the permuted universe, pinned by mc::sample_version_pair_counter_reference.
  fast_simd,
};

struct experiment_config {
  std::uint64_t samples = 100'000;   ///< number of version-pairs to draw
  std::uint64_t seed = 1;
  unsigned threads = 0;              ///< workers; 0 = hardware_concurrency.
                                     ///< Affects throughput only, never results.
  unsigned shards = 0;               ///< logical rng streams; 0 = the budget-scaled
                                     ///< default_logical_shards(samples).  Part of the
                                     ///< result's identity: changing it changes the
                                     ///< rng layout.
  bool keep_samples = false;         ///< retain per-sample PFDs (memory!)
  double ci_level = 0.99;            ///< level for the reported intervals
  sampling_engine engine = sampling_engine::fast;
};

/// Effective logical shard count for a config (resolves the 0 default and
/// the cap at `samples`).
[[nodiscard]] unsigned experiment_shard_count(const experiment_config& config);

struct estimate {
  double value = 0.0;
  stats::interval ci;                ///< CI at experiment_config::ci_level
};

struct experiment_result {
  std::uint64_t samples = 0;
  unsigned shards = 0;  ///< logical shard layout that produced the result
                        ///< (part of its identity; 0 when accumulated
                        ///< outside the sharded runners)

  // Single-version statistics (channel A of each simulated pair).
  stats::running_moments theta1;
  // Pair (1-out-of-2) statistics.
  stats::running_moments theta2;

  std::uint64_t n1_positive = 0;  ///< count of versions with >= 1 fault
  std::uint64_t n2_positive = 0;  ///< count of pairs with >= 1 common fault
  std::uint64_t n1_zero_pfd = 0;  ///< versions with PFD == 0
  std::uint64_t n2_zero_pfd = 0;  ///< pairs with PFD == 0

  double ci_level = 0.99;

  std::optional<std::vector<double>> theta1_samples;
  std::optional<std::vector<double>> theta2_samples;

  [[nodiscard]] estimate mean_theta1() const;
  [[nodiscard]] estimate mean_theta2() const;
  [[nodiscard]] double stddev_theta1() const { return theta1.stddev(); }
  [[nodiscard]] double stddev_theta2() const { return theta2.stddev(); }
  [[nodiscard]] estimate prob_n1_positive() const;
  [[nodiscard]] estimate prob_n2_positive() const;
  /// Empirical eq. (10) ratio.
  [[nodiscard]] double risk_ratio() const;
};

/// Plain serializable snapshot of an experiment_accumulator: write the
/// fields to any medium, read them back, and experiment_accumulator::
/// from_state resumes the accumulation bit-exactly.  The sample vectors are
/// empty unless the accumulator was keeping samples.
struct accumulator_state {
  std::uint64_t samples = 0;
  stats::running_moments_state theta1;
  stats::running_moments_state theta2;
  std::uint64_t n1_positive = 0;
  std::uint64_t n2_positive = 0;
  std::uint64_t n1_zero_pfd = 0;
  std::uint64_t n2_zero_pfd = 0;
  bool keeping_samples = false;
  std::vector<double> theta1_samples;
  std::vector<double> theta2_samples;
};

/// Streaming accumulator for pair experiments: feed (θ1, θ2, N1>0, N2>0)
/// observations in any number of chunks, merge accumulators built
/// elsewhere, checkpoint to a plain struct and resume.  This is the unit
/// every shard of the sharded runners produces, and the API >10^9-sample
/// studies drive directly.
class experiment_accumulator {
 public:
  experiment_accumulator() = default;
  explicit experiment_accumulator(bool keep_samples) : keep_samples_(keep_samples) {}

  /// Record one simulated pair.
  void add(double theta1, double theta2, bool version_has_fault,
           bool pair_has_common_fault);
  /// Fold another accumulator in (its samples logically follow this one's).
  void merge(const experiment_accumulator& other);

  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }
  [[nodiscard]] bool keeping_samples() const noexcept { return keep_samples_; }
  [[nodiscard]] const stats::running_moments& theta1() const noexcept { return theta1_; }
  [[nodiscard]] const stats::running_moments& theta2() const noexcept { return theta2_; }
  [[nodiscard]] std::uint64_t n1_positive() const noexcept { return n1_positive_; }
  [[nodiscard]] std::uint64_t n2_positive() const noexcept { return n2_positive_; }

  /// Checkpoint / resume.
  [[nodiscard]] accumulator_state state() const;
  [[nodiscard]] static experiment_accumulator from_state(const accumulator_state& s);

  /// Package the accumulated statistics as an experiment_result.
  [[nodiscard]] experiment_result to_result(double ci_level = 0.99) const;

 private:
  std::uint64_t samples_ = 0;
  stats::running_moments theta1_;
  stats::running_moments theta2_;
  std::uint64_t n1_positive_ = 0;
  std::uint64_t n2_positive_ = 0;
  std::uint64_t n1_zero_pfd_ = 0;
  std::uint64_t n2_zero_pfd_ = 0;
  bool keep_samples_ = false;
  std::vector<double> theta1_samples_;
  std::vector<double> theta2_samples_;
};

/// Streaming building block: run logical shards [shard_begin, shard_end) of
/// the experiment `config` defines (its shard layout comes from
/// experiment_shard_count) and merge the per-shard results into `acc` in
/// ascending shard order.  Running all shards — in one call or split across
/// any sequence of calls with checkpoints in between — produces exactly the
/// run_experiment result for the same config.
void run_experiment_shards(const core::fault_universe& u,
                           const experiment_config& config, unsigned shard_begin,
                           unsigned shard_end, experiment_accumulator& acc);

/// Simulate `config.samples` independent pairs of versions from `u`.
[[nodiscard]] experiment_result run_experiment(const core::fault_universe& u,
                                               const experiment_config& config);

// ---------------------------------------------------------------------------
// Distributed experiment: the manifest + shard-window job unit
// ---------------------------------------------------------------------------

/// Identity of one huge run_experiment distributed as shard windows: the
/// universe atom-for-atom, the experiment identity knobs (samples, seed,
/// RESOLVED logical shard count, engine, keep_samples, ci_level), and the
/// window size that slices the shard range into job units.  Window w covers
/// shards [w*window, min((w+1)*window, shards)); each shard is a pure
/// function of (universe, config, shard index), so a window result is a pure
/// function of (manifest, window index).
struct experiment_manifest {
  core::fault_universe universe;
  std::uint64_t samples = 0;
  std::uint64_t seed = 1;
  unsigned shards = 0;  ///< resolved logical shard count (never 0 — use
                        ///< make_experiment_manifest to resolve a config)
  sampling_engine engine = sampling_engine::fast;
  bool keep_samples = false;
  double ci_level = 0.99;
  unsigned window = 0;  ///< shards per distributed window

  /// The experiment_config this manifest pins (threads is a throughput knob,
  /// never part of the identity).
  [[nodiscard]] experiment_config config(unsigned threads = 0) const {
    return experiment_config{.samples = samples,
                             .seed = seed,
                             .threads = threads,
                             .shards = shards,
                             .keep_samples = keep_samples,
                             .ci_level = ci_level,
                             .engine = engine};
  }
  /// ceil(shards / window).
  [[nodiscard]] std::uint64_t window_count() const;
  /// [shard_begin, shard_end) of window `index`; throws std::out_of_range
  /// past window_count().
  [[nodiscard]] std::pair<unsigned, unsigned> window_bounds(std::uint64_t index) const;
  /// Throws std::invalid_argument on samples == 0, window == 0, or a shard
  /// count that disagrees with the config's resolved layout.
  void validate() const;
};

/// Pin a (universe, config) pair as a distributable manifest: resolves the
/// config's logical shard count (the 0 default is budget-scaled, so it must
/// be frozen before windows can be enumerated) and records `window` shards
/// per job unit (0 = one window spanning every shard).
[[nodiscard]] experiment_manifest make_experiment_manifest(
    const core::fault_universe& u, const experiment_config& config, unsigned window = 0);

/// One computed shard window.  The per-shard accumulator states are kept
/// SEPARATE: experiment_accumulator::merge is a Chan pairwise fold and is not
/// floating-point-associative, so bit-identity with the single-process
/// run_experiment requires the final merge to replay its exact left fold —
/// empty accumulator, then every shard's accumulator in ascending shard
/// order.  Window files therefore carry one state per shard and the merge
/// walks them in order.
struct experiment_window_result {
  unsigned shard_begin = 0;
  unsigned shard_end = 0;
  std::vector<accumulator_state> shard_states;  ///< shards [begin, end), in order
};

/// Pure job unit of the distributed experiment driver, mirroring
/// run_scenario_cell: compute every shard of window `index` independently.
[[nodiscard]] experiment_window_result run_experiment_window(const experiment_manifest& m,
                                                             std::uint64_t index,
                                                             unsigned threads = 0);

}  // namespace reldiv::mc
