#include "mc/sampler.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "stats/counter_rng.hpp"

namespace reldiv::mc {

version sample_version(const core::fault_universe& u, stats::rng& r) {
  version v;
  for (std::uint32_t i = 0; i < u.size(); ++i) {
    if (r.bernoulli(u[i].p)) v.faults.push_back(i);
  }
  return v;
}

double pfd_of(const version& v, const core::fault_universe& u) {
  double pfd = 0.0;
  for (const std::uint32_t i : v.faults) {
    if (i >= u.size()) throw std::out_of_range("pfd_of: fault index outside universe");
    pfd += u[i].q;
  }
  return pfd;
}

std::vector<std::uint32_t> common_faults(const version& a, const version& b) {
  std::vector<std::uint32_t> out;
  std::set_intersection(a.faults.begin(), a.faults.end(), b.faults.begin(), b.faults.end(),
                        std::back_inserter(out));
  return out;
}

double pair_pfd(const version& a, const version& b, const core::fault_universe& u) {
  double pfd = 0.0;
  auto ia = a.faults.begin();
  auto ib = b.faults.begin();
  while (ia != a.faults.end() && ib != b.faults.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      if (*ia >= u.size()) throw std::out_of_range("pair_pfd: fault index outside universe");
      pfd += u[*ia].q;
      ++ia;
      ++ib;
    }
  }
  return pfd;
}

double tuple_pfd(const std::vector<version>& versions, const core::fault_universe& u) {
  if (versions.empty()) throw std::invalid_argument("tuple_pfd: empty tuple");
  std::vector<std::uint32_t> common = versions.front().faults;
  for (std::size_t k = 1; k < versions.size() && !common.empty(); ++k) {
    std::vector<std::uint32_t> next;
    std::set_intersection(common.begin(), common.end(), versions[k].faults.begin(),
                          versions[k].faults.end(), std::back_inserter(next));
    common = std::move(next);
  }
  double pfd = 0.0;
  for (const std::uint32_t i : common) {
    if (i >= u.size()) throw std::out_of_range("tuple_pfd: fault index outside universe");
    pfd += u[i].q;
  }
  return pfd;
}

double empirical_pfd(const version& v, const core::fault_universe& u,
                     std::uint64_t demands, stats::rng& r) {
  if (demands == 0) throw std::invalid_argument("empirical_pfd: demands must be > 0");
  // Disjoint regions: each demand fails with probability Σ q_i over present
  // faults, so the failure count is one Binomial(demands, pfd) draw.
  const double true_pfd = pfd_of(v, u);
  const std::uint64_t failures = stats::binomial_deviate(r, demands, true_pfd);
  return static_cast<double>(failures) / static_cast<double>(demands);
}

// ---------------------------------------------------------------------------
// Packed-bitmask engine
// ---------------------------------------------------------------------------

namespace {

inline void ensure_sized(core::fault_mask& m, std::size_t bits) {
  if (m.bit_size() != bits) m.resize(bits);
}

/// One word of 64 Bernoulli(threshold / 2^53) lanes via the bit-slice
/// recurrence: with the threshold's binary digits b_52..b_0 (weight of b_j
/// is 2^(j-53)), folding fresh rng words from the lowest set digit upward
/// via acc = b_j ? (acc | rng) : (acc & rng) leaves every lane set with
/// probability threshold / 2^53 — exactly P((r()>>11) < threshold).
/// Requires threshold in (0, 2^53).
inline std::uint64_t bitslice_bernoulli_word(stats::rng& r,
                                             std::uint64_t threshold) noexcept {
  const int low = std::countr_zero(threshold);
  std::uint64_t acc = r();
  for (int j = low + 1; j < core::kBernoulliBits; ++j) {
    acc = ((threshold >> j) & 1) ? (acc | r()) : (acc & r());
  }
  return acc;
}

}  // namespace

void sample_mask_from_thresholds(std::span<const std::uint64_t> thresholds,
                                 stats::rng& r, core::fault_mask& out) {
  const std::size_t n = thresholds.size();
  ensure_sized(out, n);
  const std::uint64_t* t = thresholds.data();
  std::uint64_t* words = out.words();
  std::size_t i = 0;
  for (std::size_t blk = 0; blk < out.word_count(); ++blk) {
    std::uint64_t w = 0;
    const std::size_t hi = std::min<std::size_t>(n, i + 64);
    for (std::size_t k = 0; i < hi; ++i, ++k) {
      w |= static_cast<std::uint64_t>((r() >> 11) < t[i]) << k;
    }
    words[blk] = w;
  }
}

void sample_version_mask(const core::fault_universe& u, stats::rng& r,
                         core::fault_mask& out) {
  sample_mask_from_thresholds(u.bernoulli_thresholds(), r, out);
}

void sample_version_pair_fast(const core::fault_universe& u, stats::rng& r,
                              core::fault_mask& a, core::fault_mask& b) {
  const std::size_t n = u.size();
  ensure_sized(a, n);
  ensure_sized(b, n);
  const std::uint64_t* t = u.bernoulli_thresholds32().data();
  std::uint64_t* wa = a.words();
  std::uint64_t* wb = b.words();
  std::size_t i = 0;
  for (std::size_t blk = 0; blk < a.word_count(); ++blk) {
    std::uint64_t word_a = 0;
    std::uint64_t word_b = 0;
    const std::size_t hi = std::min<std::size_t>(n, i + 64);
    for (std::size_t k = 0; i < hi; ++i, ++k) {
      const std::uint64_t x = r();
      word_a |= static_cast<std::uint64_t>((x >> 32) < t[i]) << k;
      word_b |= static_cast<std::uint64_t>((x & 0xffffffffULL) < t[i]) << k;
    }
    wa[blk] = word_a;
    wb[blk] = word_b;
  }
}

void sample_version_mask_uniform(const core::fault_universe& u, stats::rng& r,
                                 core::fault_mask& out) {
  if (!u.has_uniform_p()) {
    throw std::invalid_argument("sample_version_mask_uniform: p not uniform");
  }
  const std::size_t n = u.size();
  ensure_sized(out, n);
  std::uint64_t* words = out.words();
  const std::uint64_t threshold = core::bernoulli_threshold(u.uniform_p());
  if (threshold == 0) {
    out.clear();
    return;
  }
  if (threshold == (std::uint64_t{1} << core::kBernoulliBits)) {
    for (std::size_t blk = 0; blk < out.word_count(); ++blk) words[blk] = ~std::uint64_t{0};
    words[out.word_count() - 1] &= out.tail_mask();
    return;
  }
  for (std::size_t blk = 0; blk < out.word_count(); ++blk) {
    words[blk] = bitslice_bernoulli_word(r, threshold);
  }
  words[out.word_count() - 1] &= out.tail_mask();
}

void sample_version_pair_grouped(const core::fault_universe& u, stats::rng& r,
                                 core::fault_mask& a, core::fault_mask& b) {
  if (!u.has_grouped_p()) {
    throw std::invalid_argument("sample_version_pair_grouped: universe not grouped");
  }
  const std::size_t n = u.size();
  ensure_sized(a, n);
  ensure_sized(b, n);
  const auto blocks = u.sample_blocks();
  const std::uint64_t* t32 = u.bernoulli_thresholds32().data();
  std::uint64_t* wa = a.words();
  std::uint64_t* wb = b.words();
  for (std::size_t blk = 0; blk < a.word_count(); ++blk) {
    const core::sample_block& plan = blocks[blk];
    if (plan.sliceable) {
      if (plan.threshold == 0) {
        wa[blk] = 0;
        wb[blk] = 0;
      } else if (plan.threshold == (std::uint64_t{1} << core::kBernoulliBits)) {
        wa[blk] = ~std::uint64_t{0};
        wb[blk] = ~std::uint64_t{0};
      } else {
        wa[blk] = bitslice_bernoulli_word(r, plan.threshold);
        wb[blk] = bitslice_bernoulli_word(r, plan.threshold);
      }
    } else {
      std::uint64_t word_a = 0;
      std::uint64_t word_b = 0;
      const std::size_t lo = blk << 6;
      const std::size_t hi = std::min<std::size_t>(n, lo + 64);
      for (std::size_t i = lo, k = 0; i < hi; ++i, ++k) {
        const std::uint64_t x = r();
        word_a |= static_cast<std::uint64_t>((x >> 32) < t32[i]) << k;
        word_b |= static_cast<std::uint64_t>((x & 0xffffffffULL) < t32[i]) << k;
      }
      wa[blk] = word_a;
      wb[blk] = word_b;
    }
  }
  wa[a.word_count() - 1] &= a.tail_mask();
  wb[b.word_count() - 1] &= b.tail_mask();
}

std::uint64_t counter_draws_per_pair(const core::fault_universe& u) {
  const auto blocks = u.sample_blocks();
  const bool grid_safe = u.fast32_grid_safe();
  const std::size_t n = u.size();
  std::uint64_t draws = 0;
  for (std::size_t blk = 0; blk < blocks.size(); ++blk) {
    const std::size_t lo = blk << 6;
    const std::size_t occupancy = std::min<std::size_t>(n, lo + 64) - lo;
    const core::sample_block& plan = blocks[blk];
    if (plan.sliceable) {
      if (plan.threshold != 0 &&
          plan.threshold != (std::uint64_t{1} << core::kBernoulliBits)) {
        draws += 2 * static_cast<std::uint64_t>(core::kBernoulliBits -
                                                std::countr_zero(plan.threshold));
      }
    } else if (grid_safe) {
      draws += occupancy;
    } else {
      draws += 2 * occupancy;
    }
  }
  return draws;
}

namespace {

/// bitslice_bernoulli_word over the counter stream: consumes `cost` counters
/// starting at `base` (ascending), same fold order as the xoshiro variant.
inline std::uint64_t counter_slice_word(std::uint64_t key, std::uint64_t base,
                                        std::uint64_t threshold) noexcept {
  const int low = std::countr_zero(threshold);
  std::uint64_t c = base;
  std::uint64_t acc = stats::counter_draw(key, c++);
  for (int j = low + 1; j < core::kBernoulliBits; ++j) {
    const std::uint64_t r = stats::counter_draw(key, c++);
    acc = ((threshold >> j) & 1) ? (acc | r) : (acc & r);
  }
  return acc;
}

}  // namespace

void sample_version_pair_counter_reference(const core::fault_universe& u,
                                           std::uint64_t key, std::uint64_t pair_index,
                                           core::fault_mask& a, core::fault_mask& b) {
  const std::size_t n = u.size();
  ensure_sized(a, n);
  ensure_sized(b, n);
  if (n == 0) return;
  const auto blocks = u.sample_blocks();
  const bool grid_safe = u.fast32_grid_safe();
  const std::uint64_t* t32 = u.bernoulli_thresholds32().data();
  const std::uint64_t* t53 = u.bernoulli_thresholds().data();
  std::uint64_t* wa = a.words();
  std::uint64_t* wb = b.words();
  std::uint64_t counter = pair_index * counter_draws_per_pair(u);
  for (std::size_t blk = 0; blk < a.word_count(); ++blk) {
    const core::sample_block& plan = blocks[blk];
    const std::size_t lo = blk << 6;
    const std::size_t hi = std::min<std::size_t>(n, lo + 64);
    if (plan.sliceable) {
      if (plan.threshold == 0) {
        wa[blk] = 0;
        wb[blk] = 0;
      } else if (plan.threshold == (std::uint64_t{1} << core::kBernoulliBits)) {
        wa[blk] = ~std::uint64_t{0};
        wb[blk] = ~std::uint64_t{0};
      } else {
        const std::uint64_t cost = static_cast<std::uint64_t>(
            core::kBernoulliBits - std::countr_zero(plan.threshold));
        wa[blk] = counter_slice_word(key, counter, plan.threshold);
        wb[blk] = counter_slice_word(key, counter + cost, plan.threshold);
        counter += 2 * cost;
      }
    } else if (grid_safe) {
      std::uint64_t word_a = 0;
      std::uint64_t word_b = 0;
      for (std::size_t i = lo, k = 0; i < hi; ++i, ++k) {
        const std::uint64_t x = stats::counter_draw(key, counter++);
        word_a |= static_cast<std::uint64_t>((x >> 32) < t32[i]) << k;
        word_b |= static_cast<std::uint64_t>((x & 0xffffffffULL) < t32[i]) << k;
      }
      wa[blk] = word_a;
      wb[blk] = word_b;
    } else {
      std::uint64_t word_a = 0;
      std::uint64_t word_b = 0;
      for (std::size_t i = lo, k = 0; i < hi; ++i, ++k) {
        word_a |= static_cast<std::uint64_t>(
                      (stats::counter_draw(key, counter++) >> 11) < t53[i])
                  << k;
      }
      for (std::size_t i = lo, k = 0; i < hi; ++i, ++k) {
        word_b |= static_cast<std::uint64_t>(
                      (stats::counter_draw(key, counter++) >> 11) < t53[i])
                  << k;
      }
      wa[blk] = word_a;
      wb[blk] = word_b;
    }
  }
  wa[a.word_count() - 1] &= a.tail_mask();
  wb[b.word_count() - 1] &= b.tail_mask();
}

double pfd_of(const core::fault_mask& v, const core::fault_universe& u) {
  if (v.bit_size() != u.size()) {
    throw std::invalid_argument("pfd_of: mask size does not match universe");
  }
  return core::masked_q_sum(v, u.q_array());
}

core::pair_intersection_result pair_pfd_stats(const core::fault_mask& a,
                                              const core::fault_mask& b,
                                              const core::fault_universe& u) {
  if (a.bit_size() != u.size() || b.bit_size() != u.size()) {
    throw std::invalid_argument("pair_pfd_stats: mask size does not match universe");
  }
  return core::intersect_q_sum(a, b, u.q_array());
}

double pair_pfd(const core::fault_mask& a, const core::fault_mask& b,
                const core::fault_universe& u) {
  return pair_pfd_stats(a, b, u).pfd;
}

double tuple_pfd(std::span<const core::fault_mask> versions,
                 const core::fault_universe& u, core::fault_mask& scratch) {
  if (versions.empty()) throw std::invalid_argument("tuple_pfd: empty tuple");
  for (const auto& v : versions) {
    if (v.bit_size() != u.size()) {
      throw std::invalid_argument("tuple_pfd: mask size does not match universe");
    }
  }
  if (scratch.bit_size() != u.size()) scratch.resize(u.size());
  const core::fault_mask* acc = &versions.front();
  if (versions.size() > 1) {
    scratch.intersect(versions[0], versions[1]);
    for (std::size_t k = 2; k < versions.size(); ++k) scratch &= versions[k];
    acc = &scratch;
  }
  return core::masked_q_sum(*acc, u.q_array());
}

version to_version(const core::fault_mask& m) { return version{m.to_indices()}; }

core::fault_mask to_mask(const version& v, std::size_t universe_size) {
  return core::fault_mask::from_indices(v.faults, universe_size);
}

}  // namespace reldiv::mc
