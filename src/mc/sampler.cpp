#include "mc/sampler.hpp"

#include <algorithm>
#include <stdexcept>

namespace reldiv::mc {

version sample_version(const core::fault_universe& u, stats::rng& r) {
  version v;
  for (std::uint32_t i = 0; i < u.size(); ++i) {
    if (r.bernoulli(u[i].p)) v.faults.push_back(i);
  }
  return v;
}

double pfd_of(const version& v, const core::fault_universe& u) {
  double pfd = 0.0;
  for (const std::uint32_t i : v.faults) {
    if (i >= u.size()) throw std::out_of_range("pfd_of: fault index outside universe");
    pfd += u[i].q;
  }
  return pfd;
}

std::vector<std::uint32_t> common_faults(const version& a, const version& b) {
  std::vector<std::uint32_t> out;
  std::set_intersection(a.faults.begin(), a.faults.end(), b.faults.begin(), b.faults.end(),
                        std::back_inserter(out));
  return out;
}

double pair_pfd(const version& a, const version& b, const core::fault_universe& u) {
  double pfd = 0.0;
  auto ia = a.faults.begin();
  auto ib = b.faults.begin();
  while (ia != a.faults.end() && ib != b.faults.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      if (*ia >= u.size()) throw std::out_of_range("pair_pfd: fault index outside universe");
      pfd += u[*ia].q;
      ++ia;
      ++ib;
    }
  }
  return pfd;
}

double tuple_pfd(const std::vector<version>& versions, const core::fault_universe& u) {
  if (versions.empty()) throw std::invalid_argument("tuple_pfd: empty tuple");
  std::vector<std::uint32_t> common = versions.front().faults;
  for (std::size_t k = 1; k < versions.size() && !common.empty(); ++k) {
    std::vector<std::uint32_t> next;
    std::set_intersection(common.begin(), common.end(), versions[k].faults.begin(),
                          versions[k].faults.end(), std::back_inserter(next));
    common = std::move(next);
  }
  double pfd = 0.0;
  for (const std::uint32_t i : common) {
    if (i >= u.size()) throw std::out_of_range("tuple_pfd: fault index outside universe");
    pfd += u[i].q;
  }
  return pfd;
}

double empirical_pfd(const version& v, const core::fault_universe& u,
                     std::uint64_t demands, stats::rng& r) {
  if (demands == 0) throw std::invalid_argument("empirical_pfd: demands must be > 0");
  const double true_pfd = pfd_of(v, u);
  std::uint64_t failures = 0;
  for (std::uint64_t d = 0; d < demands; ++d) {
    // Disjoint regions: a demand is a failure point with total probability
    // equal to the sum of the present regions' hit probabilities.
    if (r.bernoulli(true_pfd)) ++failures;
  }
  return static_cast<double>(failures) / static_cast<double>(demands);
}

}  // namespace reldiv::mc
