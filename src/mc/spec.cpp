#include "mc/spec.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <utility>

#include "core/generators.hpp"
#include "demand/raster.hpp"
#include "demand/region.hpp"
#include "stats/random.hpp"

namespace reldiv::mc {

namespace {

// ---------------------------------------------------------------------------
// Deterministic text emission: every number flows through these two typed
// helpers — %.17g round-trips doubles bit-exactly through std::from_chars,
// %llu is locale-free.  (reldiv_lint's spec-fmt rule bans the
// to_string/strtod families in this TU.)
// ---------------------------------------------------------------------------

void append_f64(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

// ---------------------------------------------------------------------------
// Locale-free, non-throwing scalar parsing (std::from_chars only)
// ---------------------------------------------------------------------------

enum class num_status { ok, malformed, out_of_range };

num_status parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.front() == '+' || s.front() == '-') return num_status::malformed;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec == std::errc::result_out_of_range) return num_status::out_of_range;
  if (ec != std::errc() || ptr != s.data() + s.size()) return num_status::malformed;
  return num_status::ok;
}

num_status parse_f64(std::string_view s, double& out) {
  if (s.empty()) return num_status::malformed;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec == std::errc::result_out_of_range) return num_status::out_of_range;
  if (ec != std::errc() || ptr != s.data() + s.size()) return num_status::malformed;
  return num_status::ok;
}

std::vector<std::string_view> split_tokens(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool valid_name(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Raw sections
// ---------------------------------------------------------------------------

struct raw_entry {
  std::string key;
  std::string value;
  std::size_t line = 0;
  bool used = false;
};

struct raw_section {
  std::string name;  ///< "sweep", "universe", "axes", "refine", "demand", "experiment"
  std::string arg;   ///< universe name for [universe NAME]
  std::size_t line = 0;
  std::vector<raw_entry> entries;
};

class parse_ctx {
 public:
  explicit parse_ctx(std::string_view file) : file_(file) {}

  void error(std::size_t line, std::string field, std::string message) {
    errors_.push_back(
        {std::string(file_), line, std::move(field), std::move(message)});
  }

  [[nodiscard]] bool ok() const { return errors_.empty(); }
  [[nodiscard]] std::vector<spec_error> take_errors() { return std::move(errors_); }

 private:
  std::string_view file_;
  std::vector<spec_error> errors_;
};

bool known_section(std::string_view name) {
  return name == "sweep" || name == "universe" || name == "axes" || name == "refine" ||
         name == "demand" || name == "experiment";
}

/// Pass 1: lines -> sections.  Every malformed line is reported and skipped;
/// lexing always runs to the end of the text so one typo does not hide the
/// diagnostics after it.
std::vector<raw_section> lex_spec(std::string_view text, parse_ctx& ctx) {
  std::vector<raw_section> sections;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) {
      if (pos > text.size()) break;
      continue;
    }
    if (line.front() == '[') {
      if (line.back() != ']') {
        ctx.error(line_no, "", "unterminated section header (missing ']')");
        continue;
      }
      const auto tokens = split_tokens(line.substr(1, line.size() - 2));
      if (tokens.empty() || tokens.size() > 2) {
        ctx.error(line_no, "", "section header must be [name] or [universe NAME]");
        continue;
      }
      raw_section sec;
      sec.name = std::string(tokens[0]);
      sec.line = line_no;
      if (!known_section(sec.name)) {
        ctx.error(line_no, sec.name, "unknown section");
        continue;
      }
      if (sec.name == "universe") {
        if (tokens.size() != 2 || !valid_name(tokens[1])) {
          ctx.error(line_no, "universe",
                    "universe sections need a name: [universe NAME] "
                    "(letters, digits, '_', '-', '.')");
          continue;
        }
        sec.arg = std::string(tokens[1]);
      } else if (tokens.size() != 1) {
        ctx.error(line_no, sec.name, "section takes no argument");
        continue;
      }
      sections.push_back(std::move(sec));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      ctx.error(line_no, "", "expected '[section]' or 'key = value'");
      continue;
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (!valid_name(key)) {
      ctx.error(line_no, std::string(key), "malformed key");
      continue;
    }
    if (sections.empty()) {
      ctx.error(line_no, std::string(key), "key before any [section]");
      continue;
    }
    raw_section& sec = sections.back();
    const bool duplicate =
        std::any_of(sec.entries.begin(), sec.entries.end(),
                    [&](const raw_entry& e) { return e.key == key; });
    if (duplicate) {
      ctx.error(line_no, std::string(key), "duplicate key in this section");
      continue;
    }
    sec.entries.push_back({std::string(key), std::string(value), line_no, false});
    if (pos > text.size()) break;
  }
  return sections;
}

// ---------------------------------------------------------------------------
// Typed key access
// ---------------------------------------------------------------------------

class section_view {
 public:
  section_view(raw_section& sec, parse_ctx& ctx) : sec_(&sec), ctx_(&ctx) {}

  [[nodiscard]] std::size_t line() const { return sec_->line; }
  [[nodiscard]] const std::string& arg() const { return sec_->arg; }

  [[nodiscard]] raw_entry* find(std::string_view key) {
    for (raw_entry& e : sec_->entries) {
      if (e.key == key) {
        e.used = true;
        return &e;
      }
    }
    return nullptr;
  }

  [[nodiscard]] bool has(std::string_view key) const {
    return std::any_of(sec_->entries.begin(), sec_->entries.end(),
                       [&](const raw_entry& e) { return e.key == key; });
  }

  std::uint64_t u64_or(std::string_view key, std::uint64_t def) {
    const raw_entry* e = find(key);
    if (e == nullptr) return def;
    std::uint64_t v = 0;
    report_num(parse_u64(e->value, v), *e, "unsigned integer");
    return v;
  }

  std::optional<std::uint64_t> u64_required(std::string_view key) {
    const raw_entry* e = find(key);
    if (e == nullptr) {
      ctx_->error(sec_->line, std::string(key), "required key missing");
      return std::nullopt;
    }
    std::uint64_t v = 0;
    if (!report_num(parse_u64(e->value, v), *e, "unsigned integer")) return std::nullopt;
    return v;
  }

  double f64_or(std::string_view key, double def) {
    const raw_entry* e = find(key);
    if (e == nullptr) return def;
    double v = 0.0;
    report_num(parse_f64(e->value, v), *e, "number");
    return v;
  }

  std::optional<double> f64_required(std::string_view key) {
    const raw_entry* e = find(key);
    if (e == nullptr) {
      ctx_->error(sec_->line, std::string(key), "required key missing");
      return std::nullopt;
    }
    double v = 0.0;
    if (!report_num(parse_f64(e->value, v), *e, "number")) return std::nullopt;
    return v;
  }

  std::string str_or(std::string_view key, std::string def) {
    const raw_entry* e = find(key);
    return e != nullptr ? e->value : def;
  }

  bool bool_or(std::string_view key, bool def) {
    const raw_entry* e = find(key);
    if (e == nullptr) return def;
    if (e->value == "true" || e->value == "1") return true;
    if (e->value == "false" || e->value == "0") return false;
    ctx_->error(e->line, e->key, "expected true or false, got '" + e->value + "'");
    return def;
  }

  std::vector<double> f64_list_or(std::string_view key, std::vector<double> def) {
    const raw_entry* e = find(key);
    if (e == nullptr) return def;
    std::vector<double> out;
    for (const std::string_view tok : split_tokens(e->value)) {
      double v = 0.0;
      if (!report_num(parse_f64(tok, v), *e, "number", tok)) return def;
      out.push_back(v);
    }
    if (out.empty()) {
      ctx_->error(e->line, e->key, "list needs at least one value");
      return def;
    }
    return out;
  }

  std::vector<std::uint64_t> u64_list_or(std::string_view key,
                                         std::vector<std::uint64_t> def) {
    const raw_entry* e = find(key);
    if (e == nullptr) return def;
    std::vector<std::uint64_t> out;
    for (const std::string_view tok : split_tokens(e->value)) {
      std::uint64_t v = 0;
      if (!report_num(parse_u64(tok, v), *e, "unsigned integer", tok)) return def;
      out.push_back(v);
    }
    if (out.empty()) {
      ctx_->error(e->line, e->key, "list needs at least one value");
      return def;
    }
    return out;
  }

  /// Every key the resolver did not consume is unknown for this section.
  void finish() {
    for (const raw_entry& e : sec_->entries) {
      if (!e.used) ctx_->error(e.line, e.key, "unknown key for this section");
    }
  }

 private:
  bool report_num(num_status st, const raw_entry& e, std::string_view what,
                  std::string_view token = {}) {
    if (st == num_status::ok) return true;
    const std::string shown(token.empty() ? std::string_view(e.value) : token);
    if (st == num_status::out_of_range) {
      ctx_->error(e.line, e.key, "'" + shown + "' overflows the " + std::string(what) +
                                     " range");
    } else {
      ctx_->error(e.line, e.key,
                  "expected " + std::string(what) + ", got '" + shown + "'");
    }
    return false;
  }

  raw_section* sec_;
  parse_ctx* ctx_;
};

// ---------------------------------------------------------------------------
// Universe generators
// ---------------------------------------------------------------------------

double next_unit(std::uint64_t& state) {
  return static_cast<double>(stats::splitmix64_next(state) >> 11) * 0x1.0p-53;
}

std::optional<core::fault_universe> resolve_universe(section_view& sec, parse_ctx& ctx) {
  const std::string generator = sec.str_or("generator", "");
  if (generator.empty()) {
    ctx.error(sec.line(), "generator", "required key missing");
    return std::nullopt;
  }
  try {
    if (generator == "safety_grade") {
      const auto n = sec.u64_required("faults");
      const double p_lo = sec.f64_or("p_lo", 0.0);
      const double p_hi = sec.f64_or("p_hi", 0.0);
      const double q_total = sec.f64_or("q_total", 1.0);
      const std::uint64_t gen_seed = sec.u64_or("gen_seed", 1);
      if (!n) return std::nullopt;
      return core::make_safety_grade_universe(*n, p_lo, p_hi, q_total, gen_seed);
    }
    if (generator == "many_small") {
      const auto n = sec.u64_required("faults");
      const double p_lo = sec.f64_or("p_lo", 0.0);
      const double p_hi = sec.f64_or("p_hi", 0.0);
      const double q_total = sec.f64_or("q_total", 1.0);
      const double jitter = sec.f64_or("jitter", 0.0);
      const std::uint64_t gen_seed = sec.u64_or("gen_seed", 1);
      if (!n) return std::nullopt;
      return core::make_many_small_faults_universe(*n, p_lo, p_hi, q_total, jitter,
                                                   gen_seed);
    }
    if (generator == "random") {
      const auto n = sec.u64_required("faults");
      const double p_max = sec.f64_or("p_max", 0.0);
      const double q_total = sec.f64_or("q_total", 1.0);
      const std::uint64_t gen_seed = sec.u64_or("gen_seed", 1);
      if (!n) return std::nullopt;
      return core::make_random_universe(*n, p_max, q_total, gen_seed);
    }
    if (generator == "dominant") {
      const auto n = sec.u64_required("faults");
      const double p_dominant = sec.f64_or("p_dominant", 0.0);
      const double p_background = sec.f64_or("p_background", 0.0);
      const double q_total = sec.f64_or("q_total", 1.0);
      const std::uint64_t gen_seed = sec.u64_or("gen_seed", 1);
      if (!n) return std::nullopt;
      return core::make_dominant_fault_universe(*n, p_dominant, p_background, q_total,
                                                gen_seed);
    }
    if (generator == "homogeneous") {
      const auto n = sec.u64_required("faults");
      const auto p = sec.f64_required("p");
      const auto q = sec.f64_required("q");
      if (!n || !p || !q) return std::nullopt;
      return core::make_homogeneous_universe(*n, *p, *q);
    }
    if (generator == "explicit") {
      const std::vector<double> p = sec.f64_list_or("p", {});
      const std::vector<double> q = sec.f64_list_or("q", {});
      const bool allow_q_overflow = sec.bool_or("allow_q_overflow", false);
      if (p.empty() || q.empty()) {
        ctx.error(sec.line(), "p", "explicit universes need p and q lists");
        return std::nullopt;
      }
      if (p.size() != q.size()) {
        ctx.error(sec.line(), "q", "p and q lists must have equal length");
        return std::nullopt;
      }
      return core::fault_universe::from_arrays(p, q, allow_q_overflow);
    }
    if (generator == "raster") {
      raster_universe_params rp;
      const auto n = sec.u64_required("faults");
      rp.p_lo = sec.f64_or("p_lo", 0.0);
      rp.p_hi = sec.f64_or("p_hi", 0.0);
      rp.q_total = sec.f64_or("q_total", 1.0);
      rp.seed = sec.u64_or("gen_seed", 1);
      rp.cols = sec.u64_or("cols", 64);
      rp.rows = sec.u64_or("rows", 64);
      rp.profile = sec.str_or("profile", "uniform");
      rp.sigma = sec.f64_or("sigma", 0.25);
      if (!n) return std::nullopt;
      rp.faults = *n;
      if (rp.profile != "uniform" && rp.profile != "gaussian") {
        ctx.error(sec.line(), "profile", "expected uniform or gaussian, got '" +
                                             rp.profile + "'");
        return std::nullopt;
      }
      return make_raster_universe(rp);
    }
  } catch (const std::exception& e) {
    // Library-level rejection (p/q range, Σq > 1, empty rasters, ...):
    // positioned at the section header — the values were lexically fine.
    ctx.error(sec.line(), "generator", std::string("universe infeasible: ") + e.what());
    return std::nullopt;
  }
  ctx.error(sec.line(), "generator", "unknown generator '" + generator + "'");
  return std::nullopt;
}

std::optional<core::architecture> parse_adjudication(std::string_view tok) {
  const std::size_t of = tok.find("of");
  if (of == std::string_view::npos) return std::nullopt;
  std::uint64_t votes = 0;
  std::uint64_t versions = 0;
  if (parse_u64(tok.substr(0, of), votes) != num_status::ok ||
      parse_u64(tok.substr(of + 2), versions) != num_status::ok) {
    return std::nullopt;
  }
  if (votes == 0 || versions == 0 || votes > versions || versions > 64) {
    return std::nullopt;
  }
  return core::architecture{static_cast<unsigned>(versions),
                            static_cast<unsigned>(votes)};
}

universe_decl decl_from_section(const raw_section& sec) {
  universe_decl d;
  d.name = sec.arg;
  d.line = sec.line;
  for (const raw_entry& e : sec.entries) {
    if (e.key == "generator") {
      d.generator = e.value;
    } else {
      d.params.emplace_back(e.key, e.value);
    }
  }
  return d;
}

}  // namespace

std::string spec_error::render() const {
  std::string out = file;
  out += ':';
  append_u64(out, line);
  out += ": ";
  if (!field.empty()) {
    out += field;
    out += ": ";
  }
  out += message;
  return out;
}

std::vector<double> make_loguniform_roster(std::uint64_t targets, double pfd_lo,
                                           double pfd_ratio, std::uint64_t seed) {
  // Bit-identical to the historical CLI roster at (1e-6, 1000): same hash,
  // same 53-bit unit draw, same pow.
  std::vector<double> pfd;
  pfd.reserve(targets);
  for (std::uint64_t t = 0; t < targets; ++t) {
    std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (t + 0x51ed2701ULL));
    const double u = static_cast<double>(stats::splitmix64_next(state) >> 11) * 0x1.0p-53;
    pfd.push_back(pfd_lo * std::pow(pfd_ratio, u));
  }
  return pfd;
}

core::fault_universe make_raster_universe(const raster_universe_params& prm) {
  if (prm.faults == 0) {
    throw std::invalid_argument("raster universe: need faults >= 1");
  }
  if (!(prm.p_lo >= 0.0) || !(prm.p_hi >= prm.p_lo) || prm.p_hi > 1.0) {
    throw std::invalid_argument("raster universe: need 0 <= p_lo <= p_hi <= 1");
  }
  if (prm.profile == "gaussian" && !(prm.sigma > 0.0)) {
    throw std::invalid_argument("raster universe: gaussian profile needs sigma > 0");
  }
  const demand::box domain = demand::box::unit(2);
  demand::density_fn density;
  if (prm.profile == "gaussian") {
    const double inv = 1.0 / (2.0 * prm.sigma * prm.sigma);
    density = [inv](const demand::point& x) {
      const double dx = x[0] - 0.5;
      const double dy = x[1] - 0.5;
      return std::exp(-(dx * dx + dy * dy) * inv);
    };
  }
  // The seeded shape stream, one fault at a time.  Draw order per fault
  // (pinned by mc_spec_test's equivalence test against direct library
  // calls): kind = splitmix64 % 4, then the shape parameters below in
  // listed order, then the uniform p draw.
  std::uint64_t state = prm.seed;
  std::vector<double> p;
  std::vector<double> raw_q;
  p.reserve(prm.faults);
  raw_q.reserve(prm.faults);
  for (std::size_t i = 0; i < prm.faults; ++i) {
    const std::uint64_t kind = stats::splitmix64_next(state) % 4;
    demand::region_ptr shape;
    if (kind == 0) {
      // Box: centre in [0.1, 0.9]^2, half-extent in [0.02, 0.2] per axis.
      const double cx = 0.1 + 0.8 * next_unit(state);
      const double cy = 0.1 + 0.8 * next_unit(state);
      const double hx = 0.02 + 0.18 * next_unit(state);
      const double hy = 0.02 + 0.18 * next_unit(state);
      shape = demand::make_box_region(
          demand::box({std::max(0.0, cx - hx), std::max(0.0, cy - hy)},
                      {std::min(1.0, cx + hx), std::min(1.0, cy + hy)}));
    } else if (kind == 1) {
      // Ellipsoid: centre in [0.1, 0.9]^2, radii in [0.02, 0.2].
      const double cx = 0.1 + 0.8 * next_unit(state);
      const double cy = 0.1 + 0.8 * next_unit(state);
      const double rx = 0.02 + 0.18 * next_unit(state);
      const double ry = 0.02 + 0.18 * next_unit(state);
      shape = demand::make_ellipsoid_region({cx, cy}, {rx, ry});
    } else if (kind == 2) {
      // Point array: 2 + (draw % 4) seeds in the unit square, one radius.
      const std::size_t seeds = 2 + (stats::splitmix64_next(state) % 4);
      std::vector<demand::point> pts;
      pts.reserve(seeds);
      for (std::size_t s = 0; s < seeds; ++s) {
        const double x = next_unit(state);
        const double y = next_unit(state);
        pts.push_back({x, y});
      }
      const double radius = 0.02 + 0.08 * next_unit(state);
      shape = demand::make_point_array_region(std::move(pts), radius);
    } else {
      // Stripes: axis from a parity draw, period in [0.1, 0.5], width a
      // [0.2, 0.8] fraction of the period, phase within the period.
      const std::size_t axis = stats::splitmix64_next(state) % 2;
      const double period = 0.1 + 0.4 * next_unit(state);
      const double width = period * (0.2 + 0.6 * next_unit(state));
      const double phase = period * next_unit(state);
      shape = demand::make_stripe_region(2, axis, period, width, phase);
    }
    const demand::raster_region raster =
        demand::raster_region::rasterize(*shape, domain, prm.cols, prm.rows);
    raw_q.push_back(density ? raster.profile_measure(density) : raster.uniform_measure());
    p.push_back(prm.p_lo + (prm.p_hi - prm.p_lo) * next_unit(state));
  }
  double q_sum = 0.0;
  for (const double q : raw_q) q_sum += q;
  if (!(q_sum > 0.0)) {
    throw std::invalid_argument(
        "raster universe: every region rasterized to measure 0");
  }
  std::vector<double> q;
  q.reserve(prm.faults);
  for (const double raw : raw_q) q.push_back(raw * prm.q_total / q_sum);
  // Region q are profile measures of OVERLAPPING regions: their sum is the
  // declared q_total, which may legitimately exceed 1.
  return core::fault_universe::from_arrays(p, q, /*allow_q_overflow=*/true);
}

spec_parse_result parse_sweep_spec(std::string_view text, std::string_view filename,
                                   const spec_overrides& overrides) {
  parse_ctx ctx(filename);
  std::vector<raw_section> sections = lex_spec(text, ctx);

  // Locate the singleton sections; duplicates are errors.
  raw_section* sweep_sec = nullptr;
  raw_section* axes_sec = nullptr;
  raw_section* refine_sec = nullptr;
  raw_section* demand_sec = nullptr;
  raw_section* experiment_sec = nullptr;
  std::vector<raw_section*> universe_secs;
  for (raw_section& sec : sections) {
    raw_section** slot = nullptr;
    if (sec.name == "sweep") slot = &sweep_sec;
    if (sec.name == "axes") slot = &axes_sec;
    if (sec.name == "refine") slot = &refine_sec;
    if (sec.name == "demand") slot = &demand_sec;
    if (sec.name == "experiment") slot = &experiment_sec;
    if (slot != nullptr) {
      if (*slot != nullptr) {
        ctx.error(sec.line, sec.name, "duplicate section");
      } else {
        *slot = &sec;
      }
      continue;
    }
    const bool dup_name = std::any_of(
        universe_secs.begin(), universe_secs.end(),
        [&](const raw_section* u) { return u->arg == sec.arg; });
    if (dup_name) {
      ctx.error(sec.line, sec.arg, "duplicate universe name");
    } else {
      universe_secs.push_back(&sec);
    }
  }
  if (sweep_sec == nullptr) {
    ctx.error(1, "sweep", "missing required [sweep] section");
    return {std::nullopt, ctx.take_errors()};
  }

  section_view sweep(*sweep_sec, ctx);
  const std::string kind_str = sweep.str_or("kind", "");
  job_kind kind = job_kind::scenario_grid;
  if (kind_str == "scenario") {
    kind = job_kind::scenario_grid;
  } else if (kind_str == "demand") {
    kind = job_kind::demand_campaign;
  } else if (kind_str == "experiment") {
    kind = job_kind::experiment_shards;
  } else if (kind_str.empty()) {
    ctx.error(sweep.line(), "kind", "required key missing");
  } else {
    ctx.error(sweep.line(), "kind",
              "expected scenario, demand, or experiment, got '" + kind_str + "'");
  }
  std::uint64_t seed = sweep.u64_or("seed", 1);
  if (overrides.seed) seed = *overrides.seed;

  sweep_spec spec;
  spec.kind = kind;

  // Per-kind section admission: a [demand] section in a scenario spec is an
  // operator error, not dead weight.
  auto reject = [&](raw_section* sec, const char* why) {
    if (sec != nullptr) ctx.error(sec->line, sec->name, why);
  };

  if (kind == job_kind::scenario_grid) {
    reject(demand_sec, "not allowed in a scenario spec");
    reject(experiment_sec, "not allowed in a scenario spec");
    scenario_axes axes;
    axes.stress = sweep.f64_or("stress", 1.8);
    const std::string model = sweep.str_or("rho_model", "mixture");
    if (model == "copula") {
      axes.rho_model = correlation_model::copula;
    } else if (model != "mixture") {
      ctx.error(sweep.line(), "rho_model",
                "expected mixture or copula, got '" + model + "'");
    }
    unsigned shards = static_cast<unsigned>(sweep.u64_or("shards", 0));
    if (overrides.shards) shards = *overrides.shards;
    sweep.finish();

    if (universe_secs.empty()) {
      ctx.error(sweep_sec->line, "universe",
                "scenario specs need at least one [universe NAME] section");
    }
    for (raw_section* usec : universe_secs) {
      section_view uview(*usec, ctx);
      auto resolved = resolve_universe(uview, ctx);
      uview.finish();
      spec.universes.push_back(decl_from_section(*usec));
      if (resolved) axes.universes.emplace_back(usec->arg, std::move(*resolved));
    }

    std::size_t axes_line = sweep_sec->line;
    if (axes_sec != nullptr) {
      axes_line = axes_sec->line;
      section_view aview(*axes_sec, ctx);
      axes.correlations = aview.f64_list_or("rho", {0.0});
      axes.overlaps = aview.f64_list_or("omega", {1.0});
      {
        const auto aliasing = aview.u64_list_or("aliasing", {1});
        axes.aliasing.assign(aliasing.begin(), aliasing.end());
      }
      if (raw_entry* adj = aview.find("adjudication"); adj != nullptr) {
        axes.adjudications.clear();
        for (const std::string_view tok : split_tokens(adj->value)) {
          const auto arch = parse_adjudication(tok);
          if (!arch) {
            ctx.error(adj->line, adj->key,
                      "expected MofN tokens (votes-to-defeat of versions, e.g. "
                      "2of2 2of3), got '" +
                          std::string(tok) + "'");
            break;
          }
          axes.adjudications.push_back(*arch);
        }
        if (axes.adjudications.empty()) {
          axes.adjudications = {core::architecture::one_out_of_two()};
        }
      }
      axes.budgets = aview.u64_list_or("budget", {100'000});
      axes.cell_budgets = aview.u64_list_or("cell_budget", {});
      if (raw_entry* cb = aview.find("cell_budget");
          cb != nullptr && overrides.budget) {
        ctx.error(cb->line, cb->key,
                  "--budget cannot override a refined per-cell budget list");
      }
      aview.finish();
    }
    if (overrides.budget) axes.budgets = {*overrides.budget};

    spec.has_refine = refine_sec != nullptr;
    if (refine_sec != nullptr) {
      section_view rview(*refine_sec, ctx);
      refine_rule& rule = spec.refine;
      rule.metric = rview.str_or("metric", rule.metric);
      if (rule.metric != "mean_theta2" && rule.metric != "risk_ratio") {
        ctx.error(rview.line(), "metric",
                  "expected mean_theta2 or risk_ratio, got '" + rule.metric + "'");
      }
      rule.target_rel_halfwidth = rview.f64_or("target_rel_halfwidth",
                                               rule.target_rel_halfwidth);
      rule.z = rview.f64_or("z", rule.z);
      rule.gradient_weight = rview.f64_or("gradient_weight", rule.gradient_weight);
      rule.mean_floor = rview.f64_or("mean_floor", rule.mean_floor);
      rule.min_budget = rview.u64_or("min_budget", rule.min_budget);
      rule.max_budget = rview.u64_or("max_budget", rule.max_budget);
      rule.max_growth = rview.f64_or("max_growth", rule.max_growth);
      rule.round_to = rview.u64_or("round_to", rule.round_to);
      if (!(rule.target_rel_halfwidth > 0.0)) {
        ctx.error(rview.line(), "target_rel_halfwidth", "must be > 0");
      }
      if (!(rule.z > 0.0)) ctx.error(rview.line(), "z", "must be > 0");
      if (!(rule.gradient_weight >= 0.0)) {
        ctx.error(rview.line(), "gradient_weight", "must be >= 0");
      }
      if (!(rule.mean_floor > 0.0)) ctx.error(rview.line(), "mean_floor", "must be > 0");
      if (rule.min_budget == 0) ctx.error(rview.line(), "min_budget", "must be > 0");
      if (!(rule.max_growth >= 1.0)) {
        ctx.error(rview.line(), "max_growth", "must be >= 1");
      }
      if (rule.round_to == 0) ctx.error(rview.line(), "round_to", "must be > 0");
      rview.finish();
    }

    if (ctx.ok()) {
      sweep_manifest m;
      m.axes = std::move(axes);
      m.seed = seed;
      m.shards = shards;
      try {
        m.cell_count = enumerate_cells(m.axes).size();
      } catch (const std::invalid_argument& e) {
        ctx.error(axes_line, "axes", std::string("infeasible axes: ") + e.what());
      }
      spec.manifest = std::move(m);
    }
  } else if (kind == job_kind::demand_campaign) {
    reject(axes_sec, "not allowed in a demand spec");
    reject(refine_sec, "refinement applies to scenario grids only");
    reject(experiment_sec, "not allowed in a demand spec");
    for (raw_section* usec : universe_secs) {
      reject(usec, "not allowed in a demand spec");
    }
    sweep.finish();
    if (demand_sec == nullptr) {
      ctx.error(sweep_sec->line, "demand", "demand specs need a [demand] section");
    } else {
      section_view dview(*demand_sec, ctx);
      demand_manifest m;
      m.seed = seed;
      const auto demands = dview.u64_required("demands");
      const auto window = dview.u64_required("window");
      if (demands) m.demands = *demands;
      if (window) m.window = *window;
      if (overrides.budget) m.demands = *overrides.budget;
      const bool explicit_roster = dview.has("target_pfd");
      const bool compact_roster = dview.has("targets");
      if (explicit_roster && compact_roster) {
        ctx.error(dview.line(), "targets",
                  "give either targets/pfd_lo/pfd_ratio or target_pfd, not both");
      } else if (explicit_roster) {
        m.target_pfd = dview.f64_list_or("target_pfd", {});
      } else if (compact_roster) {
        const auto targets = dview.u64_required("targets");
        spec.roster_pfd_lo = dview.f64_or("pfd_lo", 1e-6);
        spec.roster_pfd_ratio = dview.f64_or("pfd_ratio", 1000.0);
        if (targets) {
          spec.roster_targets = *targets;
          m.target_pfd = make_loguniform_roster(*targets, spec.roster_pfd_lo,
                                                spec.roster_pfd_ratio, m.seed);
        }
      } else {
        ctx.error(dview.line(), "targets",
                  "demand specs need a roster: targets/pfd_lo/pfd_ratio or target_pfd");
      }
      dview.finish();
      if (ctx.ok()) {
        try {
          m.validate();
        } catch (const std::invalid_argument& e) {
          ctx.error(dview.line(), "demand", std::string("infeasible: ") + e.what());
        }
        spec.manifest = std::move(m);
      }
    }
  } else {
    reject(axes_sec, "not allowed in an experiment spec");
    reject(refine_sec, "refinement applies to scenario grids only");
    reject(demand_sec, "not allowed in an experiment spec");
    unsigned shards = static_cast<unsigned>(sweep.u64_or("shards", 0));
    if (overrides.shards) shards = *overrides.shards;
    sweep.finish();
    if (experiment_sec == nullptr) {
      ctx.error(sweep_sec->line, "experiment",
                "experiment specs need an [experiment] section");
    } else {
      section_view eview(*experiment_sec, ctx);
      const std::string uname = eview.str_or("universe", "");
      std::optional<core::fault_universe> universe;
      for (raw_section* usec : universe_secs) {
        section_view uview(*usec, ctx);
        auto resolved = resolve_universe(uview, ctx);
        uview.finish();
        spec.universes.push_back(decl_from_section(*usec));
        if (usec->arg == uname && resolved) universe = std::move(*resolved);
      }
      if (uname.empty()) {
        ctx.error(eview.line(), "universe", "required key missing");
      } else if (!universe && ctx.ok()) {
        ctx.error(eview.line(), "universe",
                  "no [universe " + uname + "] section in this spec");
      }
      experiment_config cfg;
      const auto samples = eview.u64_required("samples");
      if (samples) cfg.samples = *samples;
      if (overrides.budget) cfg.samples = *overrides.budget;
      cfg.seed = seed;
      cfg.shards = shards;
      cfg.keep_samples = eview.bool_or("keep_samples", false);
      cfg.ci_level = eview.f64_or("ci_level", 0.99);
      const std::string engine = eview.str_or("engine", "fast");
      if (engine == "fast") {
        cfg.engine = sampling_engine::fast;
      } else if (engine == "exact") {
        cfg.engine = sampling_engine::exact;
      } else if (engine == "legacy") {
        cfg.engine = sampling_engine::legacy;
      } else if (engine == "fast-simd") {
        cfg.engine = sampling_engine::fast_simd;
      } else {
        ctx.error(eview.line(), "engine",
                  "expected fast, exact, legacy, or fast-simd, got '" + engine + "'");
      }
      if (overrides.engine) cfg.engine = *overrides.engine;
      const auto window = static_cast<unsigned>(eview.u64_or("window", 0));
      eview.finish();
      if (ctx.ok() && universe) {
        try {
          spec.manifest = make_experiment_manifest(*universe, cfg, window);
        } catch (const std::invalid_argument& e) {
          ctx.error(eview.line(), "experiment", std::string("infeasible: ") + e.what());
        }
      }
    }
  }

  if (!ctx.ok()) return {std::nullopt, ctx.take_errors()};
  return {std::move(spec), {}};
}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

namespace {

void append_adjudication(std::string& out, const core::architecture& arch) {
  append_u64(out, arch.votes_to_defeat);
  out += "of";
  append_u64(out, arch.versions);
}

void append_kv_u64(std::string& out, const char* key, std::uint64_t v) {
  out += key;
  out += " = ";
  append_u64(out, v);
  out += '\n';
}

void append_kv_f64(std::string& out, const char* key, double v) {
  out += key;
  out += " = ";
  append_f64(out, v);
  out += '\n';
}

template <typename T, typename Fn>
void append_kv_list(std::string& out, const char* key, const std::vector<T>& v,
                    Fn&& append_one) {
  out += key;
  out += " =";
  for (const T& x : v) {
    out += ' ';
    append_one(out, x);
  }
  out += '\n';
}

}  // namespace

std::string write_sweep_spec(const sweep_spec& spec) {
  std::string out = "[sweep]\n";
  switch (spec.kind) {
    case job_kind::scenario_grid: {
      const auto& m = std::get<sweep_manifest>(spec.manifest);
      out += "kind = scenario\n";
      append_kv_u64(out, "seed", m.seed);
      append_kv_u64(out, "shards", m.shards);
      append_kv_f64(out, "stress", m.axes.stress);
      out += "rho_model = ";
      out += m.axes.rho_model == correlation_model::copula ? "copula" : "mixture";
      out += '\n';
      for (const universe_decl& decl : spec.universes) {
        out += "\n[universe ";
        out += decl.name;
        out += "]\ngenerator = ";
        out += decl.generator;
        out += '\n';
        for (const auto& [key, value] : decl.params) {
          out += key;
          out += " = ";
          out += value;
          out += '\n';
        }
      }
      out += "\n[axes]\n";
      append_kv_list(out, "rho", m.axes.correlations,
                     [](std::string& o, double v) { append_f64(o, v); });
      append_kv_list(out, "omega", m.axes.overlaps,
                     [](std::string& o, double v) { append_f64(o, v); });
      append_kv_list(out, "aliasing", m.axes.aliasing,
                     [](std::string& o, std::size_t v) { append_u64(o, v); });
      append_kv_list(out, "adjudication", m.axes.adjudications, append_adjudication);
      append_kv_list(out, "budget", m.axes.budgets,
                     [](std::string& o, std::uint64_t v) { append_u64(o, v); });
      if (!m.axes.cell_budgets.empty()) {
        append_kv_list(out, "cell_budget", m.axes.cell_budgets,
                       [](std::string& o, std::uint64_t v) { append_u64(o, v); });
      }
      if (spec.has_refine) {
        const refine_rule& r = spec.refine;
        out += "\n[refine]\n";
        out += "metric = ";
        out += r.metric;
        out += '\n';
        append_kv_f64(out, "target_rel_halfwidth", r.target_rel_halfwidth);
        append_kv_f64(out, "z", r.z);
        append_kv_f64(out, "gradient_weight", r.gradient_weight);
        append_kv_f64(out, "mean_floor", r.mean_floor);
        append_kv_u64(out, "min_budget", r.min_budget);
        append_kv_u64(out, "max_budget", r.max_budget);
        append_kv_f64(out, "max_growth", r.max_growth);
        append_kv_u64(out, "round_to", r.round_to);
      }
      break;
    }
    case job_kind::demand_campaign: {
      const auto& m = std::get<demand_manifest>(spec.manifest);
      out += "kind = demand\n";
      append_kv_u64(out, "seed", m.seed);
      out += "\n[demand]\n";
      append_kv_u64(out, "demands", m.demands);
      append_kv_u64(out, "window", m.window);
      if (spec.roster_targets > 0) {
        append_kv_u64(out, "targets", spec.roster_targets);
        append_kv_f64(out, "pfd_lo", spec.roster_pfd_lo);
        append_kv_f64(out, "pfd_ratio", spec.roster_pfd_ratio);
      } else {
        append_kv_list(out, "target_pfd", m.target_pfd,
                       [](std::string& o, double v) { append_f64(o, v); });
      }
      break;
    }
    case job_kind::experiment_shards: {
      const auto& m = std::get<experiment_manifest>(spec.manifest);
      out += "kind = experiment\n";
      append_kv_u64(out, "seed", m.seed);
      append_kv_u64(out, "shards", m.shards);
      for (const universe_decl& decl : spec.universes) {
        out += "\n[universe ";
        out += decl.name;
        out += "]\ngenerator = ";
        out += decl.generator;
        out += '\n';
        for (const auto& [key, value] : decl.params) {
          out += key;
          out += " = ";
          out += value;
          out += '\n';
        }
      }
      out += "\n[experiment]\n";
      out += "universe = ";
      out += spec.universes.empty() ? std::string("u") : spec.universes.front().name;
      out += '\n';
      append_kv_u64(out, "samples", m.samples);
      out += "engine = ";
      switch (m.engine) {
        case sampling_engine::fast:
          out += "fast";
          break;
        case sampling_engine::exact:
          out += "exact";
          break;
        case sampling_engine::legacy:
          out += "legacy";
          break;
        case sampling_engine::fast_simd:
          out += "fast-simd";
          break;
      }
      out += '\n';
      append_kv_u64(out, "window", m.window);
      append_kv_f64(out, "ci_level", m.ci_level);
      out += "keep_samples = ";
      out += m.keep_samples ? "true" : "false";
      out += '\n';
      break;
    }
  }
  return out;
}

namespace {

universe_decl explicit_decl(std::string name, const core::fault_universe& u) {
  universe_decl d;
  d.name = std::move(name);
  d.generator = "explicit";
  std::string p;
  std::string q;
  for (const core::fault_atom& atom : u.atoms()) {
    if (!p.empty()) p += ' ';
    if (!q.empty()) q += ' ';
    append_f64(p, atom.p);
    append_f64(q, atom.q);
  }
  d.params.emplace_back("p", std::move(p));
  d.params.emplace_back("q", std::move(q));
  d.params.emplace_back("allow_q_overflow", "true");
  return d;
}

}  // namespace

sweep_spec spec_from_manifest(
    const std::variant<sweep_manifest, demand_manifest, experiment_manifest>& manifest) {
  sweep_spec spec;
  if (const auto* m = std::get_if<sweep_manifest>(&manifest)) {
    spec.kind = job_kind::scenario_grid;
    for (const auto& [name, universe] : m->axes.universes) {
      spec.universes.push_back(explicit_decl(name, universe));
    }
    spec.manifest = *m;
  } else if (const auto* d = std::get_if<demand_manifest>(&manifest)) {
    spec.kind = job_kind::demand_campaign;
    spec.manifest = *d;
  } else {
    const auto& e = std::get<experiment_manifest>(manifest);
    spec.kind = job_kind::experiment_shards;
    spec.universes.push_back(explicit_decl("u", e.universe));
    spec.manifest = e;
  }
  return spec;
}

std::string describe_manifest_json(
    const std::variant<sweep_manifest, demand_manifest, experiment_manifest>& manifest) {
  std::string out;
  auto atoms_json = [](std::string& o, const core::fault_universe& u) {
    o += "[";
    const auto atoms = u.atoms();
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      if (i > 0) o += ',';
      o += "{\"p\":";
      append_f64(o, atoms[i].p);
      o += ",\"q\":";
      append_f64(o, atoms[i].q);
      o += "}";
    }
    o += "]";
  };
  if (const auto* m = std::get_if<sweep_manifest>(&manifest)) {
    out += "{\n  \"kind\": \"scenario_grid\",\n  \"fingerprint\": ";
    append_u64(out, manifest_fingerprint(*m));
    out += ",\n  \"seed\": ";
    append_u64(out, m->seed);
    out += ",\n  \"shards\": ";
    append_u64(out, m->shards);
    out += ",\n  \"cell_count\": ";
    append_u64(out, m->cell_count);
    out += ",\n  \"stress\": ";
    append_f64(out, m->axes.stress);
    out += ",\n  \"rho_model\": \"";
    out += m->axes.rho_model == correlation_model::copula ? "copula" : "mixture";
    out += "\",\n  \"universes\": [";
    for (std::size_t u = 0; u < m->axes.universes.size(); ++u) {
      if (u > 0) out += ',';
      out += "{\"name\":\"";
      out += m->axes.universes[u].first;
      out += "\",\"atoms\":";
      atoms_json(out, m->axes.universes[u].second);
      out += "}";
    }
    out += "],\n  \"correlations\": [";
    for (std::size_t i = 0; i < m->axes.correlations.size(); ++i) {
      if (i > 0) out += ',';
      append_f64(out, m->axes.correlations[i]);
    }
    out += "],\n  \"overlaps\": [";
    for (std::size_t i = 0; i < m->axes.overlaps.size(); ++i) {
      if (i > 0) out += ',';
      append_f64(out, m->axes.overlaps[i]);
    }
    out += "],\n  \"aliasing\": [";
    for (std::size_t i = 0; i < m->axes.aliasing.size(); ++i) {
      if (i > 0) out += ',';
      append_u64(out, m->axes.aliasing[i]);
    }
    out += "],\n  \"adjudications\": [";
    for (std::size_t i = 0; i < m->axes.adjudications.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"versions\":";
      append_u64(out, m->axes.adjudications[i].versions);
      out += ",\"votes\":";
      append_u64(out, m->axes.adjudications[i].votes_to_defeat);
      out += "}";
    }
    out += "],\n  \"budgets\": [";
    for (std::size_t i = 0; i < m->axes.budgets.size(); ++i) {
      if (i > 0) out += ',';
      append_u64(out, m->axes.budgets[i]);
    }
    out += "]";
    if (!m->axes.cell_budgets.empty()) {
      out += ",\n  \"cell_budgets\": [";
      for (std::size_t i = 0; i < m->axes.cell_budgets.size(); ++i) {
        if (i > 0) out += ',';
        append_u64(out, m->axes.cell_budgets[i]);
      }
      out += "]";
    }
    out += "\n}\n";
  } else if (const auto* d = std::get_if<demand_manifest>(&manifest)) {
    out += "{\n  \"kind\": \"demand_campaign\",\n  \"fingerprint\": ";
    append_u64(out, demand_manifest_fingerprint(*d));
    out += ",\n  \"seed\": ";
    append_u64(out, d->seed);
    out += ",\n  \"demands\": ";
    append_u64(out, d->demands);
    out += ",\n  \"window\": ";
    append_u64(out, d->window);
    out += ",\n  \"target_pfd\": [";
    for (std::size_t i = 0; i < d->target_pfd.size(); ++i) {
      if (i > 0) out += ',';
      append_f64(out, d->target_pfd[i]);
    }
    out += "]\n}\n";
  } else {
    const auto& e = std::get<experiment_manifest>(manifest);
    out += "{\n  \"kind\": \"experiment_shards\",\n  \"fingerprint\": ";
    append_u64(out, experiment_manifest_fingerprint(e));
    out += ",\n  \"seed\": ";
    append_u64(out, e.seed);
    out += ",\n  \"samples\": ";
    append_u64(out, e.samples);
    out += ",\n  \"shards\": ";
    append_u64(out, e.shards);
    out += ",\n  \"engine\": ";
    append_u64(out, static_cast<std::uint64_t>(e.engine));
    out += ",\n  \"keep_samples\": ";
    out += e.keep_samples ? "true" : "false";
    out += ",\n  \"ci_level\": ";
    append_f64(out, e.ci_level);
    out += ",\n  \"window\": ";
    append_u64(out, e.window);
    out += ",\n  \"atoms\": ";
    atoms_json(out, e.universe);
    out += "\n}\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Adaptive refinement
// ---------------------------------------------------------------------------

namespace {

/// Split one CSV row on commas.  Universe names are spec-name tokens (no
/// commas), so plain splitting is exact.
std::vector<std::string_view> split_csv(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (true) {
    const std::size_t comma = line.find(',', i);
    if (comma == std::string_view::npos) {
      out.push_back(line.substr(i));
      return out;
    }
    out.push_back(line.substr(i, comma - i));
    i = comma + 1;
  }
}

}  // namespace

refined_budgets compute_refined_budgets(const sweep_manifest& manifest,
                                        const refine_rule& rule,
                                        std::string_view merged_csv,
                                        std::string_view table_name) {
  refined_budgets out;
  parse_ctx ctx(table_name);
  std::vector<scenario_cell> cells;
  try {
    cells = enumerate_cells(manifest.axes);
  } catch (const std::invalid_argument& e) {
    ctx.error(0, "axes", std::string("spec axes infeasible: ") + e.what());
    out.errors = ctx.take_errors();
    return out;
  }
  if (manifest.axes.budgets.size() != 1) {
    ctx.error(0, "budget",
              "refinement needs a single-valued budget axis (a multi-valued axis "
              "would change the grid shape and every cell seed)");
    out.errors = ctx.take_errors();
    return out;
  }

  // Parse the merged table: exact header, one row per cell, in cell order.
  std::vector<std::string_view> lines;
  {
    std::size_t pos = 0;
    while (pos < merged_csv.size()) {
      const std::size_t eol = std::min(merged_csv.find('\n', pos), merged_csv.size());
      const std::string_view line = merged_csv.substr(pos, eol - pos);
      if (!line.empty()) lines.push_back(line);
      pos = eol + 1;
    }
  }
  if (lines.empty()) {
    ctx.error(1, "", "empty results table");
    out.errors = ctx.take_errors();
    return out;
  }
  const std::vector<std::string_view> header = split_csv(lines[0]);
  auto column = [&](std::string_view name) -> std::size_t {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (header[i] == name) return i;
    }
    ctx.error(1, std::string(name), "column missing from the results table");
    return 0;
  };
  const std::size_t col_samples = column("samples");
  const std::size_t col_mean2 = column("mean_theta2");
  const std::size_t col_sd2 = column("sd_theta2");
  const std::size_t col_metric = column(rule.metric);
  if (!ctx.ok()) {
    out.errors = ctx.take_errors();
    return out;
  }
  if (lines.size() - 1 != cells.size()) {
    std::string msg = "expected ";
    append_u64(msg, cells.size());
    msg += " result rows (one per cell), got ";
    append_u64(msg, lines.size() - 1);
    ctx.error(1, "", std::move(msg));
    out.errors = ctx.take_errors();
    return out;
  }

  struct row_values {
    std::uint64_t samples = 0;
    double mean2 = 0.0;
    double sd2 = 0.0;
    double metric = 0.0;
  };
  std::vector<row_values> rows;
  rows.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::size_t line_no = i + 2;
    const std::vector<std::string_view> fields = split_csv(lines[i + 1]);
    if (fields.size() != header.size()) {
      ctx.error(line_no, "", "row width disagrees with the header");
      break;
    }
    row_values v;
    if (parse_u64(fields[col_samples], v.samples) != num_status::ok ||
        parse_f64(fields[col_mean2], v.mean2) != num_status::ok ||
        parse_f64(fields[col_sd2], v.sd2) != num_status::ok ||
        parse_f64(fields[col_metric], v.metric) != num_status::ok) {
      ctx.error(line_no, "", "malformed numeric field");
      break;
    }
    if (v.samples != cells[i].samples) {
      std::string msg = "row samples ";
      append_u64(msg, v.samples);
      msg += " disagree with the spec's cell budget ";
      append_u64(msg, cells[i].samples);
      msg += " (is this table from a different round?)";
      ctx.error(line_no, "samples", std::move(msg));
      break;
    }
    rows.push_back(v);
  }
  if (!ctx.ok()) {
    out.errors = ctx.take_errors();
    return out;
  }

  // Axis strides for neighbour lookup: the enumeration is row-major over
  // (universe, rho, omega, aliasing, adjudication, budget).
  const std::size_t sizes[6] = {
      manifest.axes.universes.size(),    manifest.axes.correlations.size(),
      manifest.axes.overlaps.size(),     manifest.axes.aliasing.size(),
      manifest.axes.adjudications.size(), manifest.axes.budgets.size()};
  std::size_t strides[6];
  {
    std::size_t stride = 1;
    for (std::size_t a = 6; a-- > 0;) {
      strides[a] = stride;
      stride *= sizes[a];
    }
  }

  out.budgets.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const row_values& v = rows[i];
    const double n = static_cast<double>(v.samples);
    const double rel = (rule.z * v.sd2 / std::sqrt(n)) /
                       std::max(std::abs(v.mean2), rule.mean_floor);
    // Steepest relative jump of the metric to any axis neighbour.
    double grad = 0.0;
    for (std::size_t a = 0; a < 6; ++a) {
      if (sizes[a] < 2) continue;
      const std::size_t coord = (i / strides[a]) % sizes[a];
      for (const std::ptrdiff_t step : {std::ptrdiff_t{-1}, std::ptrdiff_t{1}}) {
        if (step < 0 && coord == 0) continue;
        if (step > 0 && coord + 1 >= sizes[a]) continue;
        const std::size_t j = step < 0 ? i - strides[a] : i + strides[a];
        const double denom = std::max(std::max(std::abs(v.metric),
                                               std::abs(rows[j].metric)),
                                      rule.mean_floor);
        grad = std::max(grad, std::abs(v.metric - rows[j].metric) / denom);
      }
    }
    const double ratio = rel / rule.target_rel_halfwidth;
    double raw = n * ratio * ratio * (1.0 + rule.gradient_weight * grad);
    raw = std::min(raw, n * rule.max_growth);
    raw = std::max(raw, static_cast<double>(rule.min_budget));
    if (rule.max_budget > 0) {
      raw = std::min(raw, static_cast<double>(rule.max_budget));
    }
    auto budget = static_cast<std::uint64_t>(std::ceil(raw));
    if (budget == 0) budget = 1;
    if (rule.round_to > 1) {
      budget = ((budget + rule.round_to - 1) / rule.round_to) * rule.round_to;
    }
    out.budgets.push_back(budget);
  }
  return out;
}

}  // namespace reldiv::mc
