#pragma once
// mc::campaign — the unified deterministic demand-campaign layer.
//
// Every empirical study in this library is, at bottom, a demand campaign:
// score a roster of targets (versions, pairs, channels, scenario cells)
// against a budget of simulated demands or version draws.  This header
// provides the one engine they all sit on, layered on shard_runner:
//
//  * run_jobs        — deterministic job fan-out: jobs are executed by any
//                      number of workers but merged in ascending job order on
//                      the calling thread, so thread count never leaks into
//                      results.  The scenario grid fans sweep cells out
//                      through it.
//  * demand campaign — score a fixed roster of per-target hit probabilities
//                      over a shared demand budget.  One rng stream PER
//                      TARGET, seeded by target_stream_seed(seed, t) (a
//                      splitmix64 hash — O(1) per target, unlike jump-based
//                      streams whose derivation is serial in the target
//                      index), so results are a pure function of (seed,
//                      demands, roster order): bit-identical across thread
//                      counts, shard groupings, and checkpoint/resume
//                      windows.  kl empirical scoring and estimate holdout
//                      scoring ride on it.
//  * pair campaign   — Monte-Carlo scoring of a two-channel pair (possibly
//                      with per-fault coincidence weights for functional
//                      diversity): the sample budget is decomposed by
//                      make_shard_plan (budget-scaled logical shards), each
//                      shard owning stream(seed, shard), shard accumulators
//                      merged in shard order into an experiment_accumulator.
//                      forced/functional scoring and the scenario grid's
//                      correlated cells ride on it.
//
// Determinism contract (inherited from shard_runner): thread count is a
// throughput knob, never a results knob.  The chosen logical layout (shard
// count / roster order) is part of the result's identity and is recorded in
// the result structs.

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/fault_universe.hpp"
#include "mc/experiment.hpp"
#include "mc/shard_runner.hpp"
#include "stats/random.hpp"

namespace reldiv::mc {

/// Runner knobs shared by every campaign.  `seed` and `shards` are part of
/// the result's identity; `threads` affects throughput only.
struct campaign_config {
  std::uint64_t seed = 1;
  unsigned threads = 0;  ///< workers; 0 = hardware_concurrency
  unsigned shards = 0;   ///< logical rng streams for budget-sharded campaigns;
                         ///< 0 = default_logical_shards(budget)
};

/// Run `body(job)` for every job in [job_begin, job_end), distributing jobs
/// over `threads` workers, then call `merge(job, result)` in ascending job
/// order on the calling thread.  The rng-free sibling of run_shards: each
/// job derives whatever randomness it needs from its own index, so the set
/// of per-job computations — and the merge sequence — is independent of the
/// thread count.  `body` must not touch shared mutable state; `merge` runs
/// serially.  The first exception thrown by a `body` invocation (lowest job
/// index wins) is rethrown after all workers join.
template <typename Body, typename Merge>
void run_jobs(std::size_t job_begin, std::size_t job_end, unsigned threads, Body&& body,
              Merge&& merge) {
  using result_type = std::decay_t<std::invoke_result_t<Body&, std::size_t>>;
  if (job_begin > job_end) {
    throw std::invalid_argument("run_jobs: job window out of range");
  }
  const std::size_t jobs = job_end - job_begin;
  if (jobs == 0) return;

  std::vector<std::optional<result_type>> results(jobs);
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_job = jobs;

  auto work = [&]() noexcept {
    for (std::size_t j = next.fetch_add(1, std::memory_order_relaxed); j < jobs;
         j = next.fetch_add(1, std::memory_order_relaxed)) {
      try {
        results[j].emplace(body(job_begin + j));
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (j < first_error_job) {
          first_error_job = j;
          first_error = std::current_exception();
        }
      }
    }
  };

  const unsigned workers = resolve_threads(threads, jobs);
  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(work);
    for (auto& th : pool) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  for (std::size_t j = 0; j < jobs; ++j) {
    merge(job_begin + j, std::move(*results[j]));
  }
}

// ---------------------------------------------------------------------------
// Target-roster demand campaign
// ---------------------------------------------------------------------------

/// Mergeable, serializable tally of a demand campaign: per-target failure
/// counts over a shared per-target demand budget.  Targets outside the
/// windows accumulated so far hold 0; merging window tallies is plain
/// element-wise addition, so a campaign interrupted at any target boundary
/// and resumed from a serialized tally equals the uninterrupted run exactly.
struct demand_tally {
  std::uint64_t demands = 0;               ///< budget per target
  std::vector<std::uint64_t> failures;     ///< roster order

  /// Empirical failure rates failures[t] / demands.
  [[nodiscard]] std::vector<double> rates() const;

  /// Element-wise fold of another tally over the same roster and budget
  /// (windows accumulated disjointly); throws std::invalid_argument on a
  /// roster-size or budget mismatch.
  void merge(const demand_tally& other);
};

/// Seed of target t's private campaign stream: a splitmix64 hash of
/// (campaign seed, target index).  O(1) per target — any window of a huge
/// roster can derive its streams without walking the prefix — and part of
/// the campaign's result identity.
[[nodiscard]] inline std::uint64_t target_stream_seed(std::uint64_t seed,
                                                      std::uint64_t target) noexcept {
  std::uint64_t state = seed + 0x9e3779b97f4a7c15ULL * (target + 1);
  return stats::splitmix64_next(state);
}

/// Score targets [target_begin, target_end) of the roster: target t's
/// failure count is one Binomial(demands, pfd[t]) draw from its OWN stream
/// stats::rng(target_stream_seed(cfg.seed, t)), accumulated into `out`
/// (which must already be sized to the full roster with out.demands ==
/// demands).  The per-target streams make the result independent of both
/// the thread count and how the roster is windowed across calls.
void run_demand_campaign_window(std::span<const double> target_pfd, std::uint64_t demands,
                                const campaign_config& cfg, std::size_t target_begin,
                                std::size_t target_end, demand_tally& out);

/// Score the whole roster: each target's campaign is `demands` demands
/// against a region of hit probability pfd[t] (disjoint regions make the
/// failure count one binomial draw).  Throws std::invalid_argument when the
/// roster is empty or demands == 0.
[[nodiscard]] demand_tally run_demand_campaign(std::span<const double> target_pfd,
                                               std::uint64_t demands,
                                               const campaign_config& cfg);

// ---------------------------------------------------------------------------
// Distributed demand campaign: the manifest + window job unit
// ---------------------------------------------------------------------------

/// Identity of a distributed demand campaign: the full roster atom-for-atom,
/// the per-target budget, the campaign seed, and the window size that slices
/// the roster into job units.  Window w covers targets
/// [w*window, min((w+1)*window, roster)); because every target owns its own
/// rng stream (target_stream_seed), a window result is a pure function of
/// (manifest, window index) — the property the multi-process driver needs.
struct demand_manifest {
  std::vector<double> target_pfd;  ///< roster, in campaign order
  std::uint64_t demands = 0;       ///< budget per target
  std::uint64_t seed = 1;
  std::uint64_t window = 0;        ///< targets per distributed window

  /// The campaign_config this manifest pins (threads is a throughput knob,
  /// never part of the identity).
  [[nodiscard]] campaign_config config(unsigned threads = 0) const {
    return campaign_config{.seed = seed, .threads = threads, .shards = 0};
  }
  /// ceil(roster / window).
  [[nodiscard]] std::uint64_t window_count() const;
  /// [target_begin, target_end) of window `index`; throws std::out_of_range
  /// past window_count().
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> window_bounds(
      std::uint64_t index) const;
  /// Throws std::invalid_argument on an empty roster, demands == 0,
  /// window == 0, or a pfd outside [0, 1].
  void validate() const;
};

/// One computed window: the slice of per-target failure counts it owns.
/// Slices over disjoint windows assemble into the exact run_demand_campaign
/// tally — the counts are integers, so "merge" is plain placement.
struct demand_window_result {
  std::uint64_t target_begin = 0;
  std::uint64_t target_end = 0;
  std::uint64_t demands = 0;
  std::vector<std::uint64_t> failures;  ///< targets [target_begin, target_end)
};

/// Pure job unit of the distributed demand driver, mirroring
/// run_scenario_cell: compute window `index` of the manifest's campaign.
/// Bit-identical to the corresponding slice of run_demand_campaign for the
/// same (roster, demands, seed), regardless of threads or window layout.
[[nodiscard]] demand_window_result run_demand_window(const demand_manifest& m,
                                                     std::uint64_t index,
                                                     unsigned threads = 0);

// ---------------------------------------------------------------------------
// Two-channel pair campaign
// ---------------------------------------------------------------------------

/// Monte-Carlo scoring of a 1-out-of-2 pair whose channels are developed by
/// (possibly) different processes over the SAME failure regions: per sample,
/// version A is drawn from `channel_a`, B from `channel_b` (53-bit
/// exact-stream kernels), θ1 is A's PFD and θ2 is Σ coincidence_q[i] over
/// faults present in both.  `coincidence_q` carries functional-diversity
/// overlap thinning (ω_i·q_i); pass channel_a.q_array() for plain forced
/// diversity.  A pair counts toward n2_positive only when some common fault
/// has coincidence_q > 0 (a shared fault whose regions never coincide is not
/// a common failure point).
///
/// The budget is decomposed by make_shard_plan(samples, cfg.shards); shard s
/// draws from stream(cfg.seed, s) and accumulators merge in shard order —
/// bit-identical across thread counts.  The layout is recorded in the
/// result's `shards` field.
[[nodiscard]] experiment_result run_pair_campaign(const core::fault_universe& channel_a,
                                                  const core::fault_universe& channel_b,
                                                  std::span<const double> coincidence_q,
                                                  std::uint64_t samples,
                                                  const campaign_config& cfg);

}  // namespace reldiv::mc
