#include "mc/aliasing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/special_functions.hpp"

namespace reldiv::mc {

double aliased_region::region_presence_probability() const {
  return stats::one_minus_prod_one_minus(mistake_probs.begin(), mistake_probs.end());
}

aliased_model::aliased_model(std::vector<aliased_region> regions)
    : regions_(std::move(regions)) {
  double q_sum = 0.0;
  for (const auto& reg : regions_) {
    if (reg.mistake_probs.empty()) {
      throw std::invalid_argument("aliased_model: region with no mistakes");
    }
    for (const double p : reg.mistake_probs) {
      if (!(p >= 0.0) || !(p <= 1.0)) {
        throw std::invalid_argument("aliased_model: mistake prob out of [0,1]");
      }
    }
    if (!(reg.q >= 0.0) || !(reg.q <= 1.0)) {
      throw std::invalid_argument("aliased_model: q out of [0,1]");
    }
    q_sum += reg.q;
  }
  if (q_sum > 1.0 + 1e-9) {
    throw std::invalid_argument("aliased_model: sum of q exceeds 1");
  }
}

core::fault_universe aliased_model::effective_universe() const {
  std::vector<core::fault_atom> atoms;
  atoms.reserve(regions_.size());
  for (const auto& reg : regions_) {
    atoms.push_back({reg.region_presence_probability(), reg.q});
  }
  return core::fault_universe(std::move(atoms));
}

core::fault_universe aliased_model::naive_mistake_universe() const {
  std::vector<core::fault_atom> atoms;
  for (const auto& reg : regions_) {
    for (const double p : reg.mistake_probs) {
      atoms.push_back({p, reg.q});
    }
  }
  // Regions are shared between mistakes, so Σq over mistake-level atoms can
  // exceed 1: that multiple counting is exactly the naive assessor's error.
  return core::fault_universe(std::move(atoms), /*allow_q_overflow=*/true);
}

double aliased_model::naive_p_max() const {
  double m = 0.0;
  for (const auto& reg : regions_) {
    for (const double p : reg.mistake_probs) m = std::max(m, p);
  }
  return m;
}

double aliased_model::true_p_max() const {
  double m = 0.0;
  for (const auto& reg : regions_) m = std::max(m, reg.region_presence_probability());
  return m;
}

version aliased_model::sample(stats::rng& r) const {
  core::fault_mask m;
  sample_mask(r, m);
  return to_version(m);
}

void aliased_model::sample_mask(stats::rng& r, core::fault_mask& out) const {
  if (out.bit_size() != regions_.size()) out.resize(regions_.size());
  out.clear();
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    for (const double p : regions_[i].mistake_probs) {
      if (r.bernoulli(p)) {
        out.set(i);
        break;  // region already present; further mistakes change nothing
      }
    }
  }
}

aliased_model split_into_mistakes(const core::fault_universe& u,
                                  std::size_t mistakes_per_region) {
  if (mistakes_per_region == 0) {
    throw std::invalid_argument("split_into_mistakes: need >= 1 mistake per region");
  }
  std::vector<aliased_region> regions;
  regions.reserve(u.size());
  for (const auto& a : u) {
    // Solve 1 - (1 - m)^k = p for the per-mistake probability m.
    const double m =
        -std::expm1(std::log1p(-a.p) / static_cast<double>(mistakes_per_region));
    aliased_region reg;
    reg.mistake_probs.assign(mistakes_per_region, m);
    reg.q = a.q;
    regions.push_back(std::move(reg));
  }
  return aliased_model(std::move(regions));
}

}  // namespace reldiv::mc
