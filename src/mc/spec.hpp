#pragma once
// mc::sweep_spec — the declarative sweep-spec layer (ROADMAP item 1).
//
// A spec file is an operator-facing plain-text declaration of one sweep:
// INI-style `[section]` headers and `key = value` lines, `#` comments.
// parse_sweep_spec resolves it into the exact manifest types the
// distributed driver and service already run (`sweep_manifest` /
// `demand_manifest` / `experiment_manifest`), so a spec-launched run is
// byte-identical to one built in code — the manifest fingerprint is the
// only identity either path has.
//
// Section reference (full key list in README "Launching sweeps from spec
// files"):
//
//   [sweep]            kind = scenario|demand|experiment, seed, shards,
//                      stress, rho_model = mixture|copula
//   [universe NAME]    generator = safety_grade|many_small|random|dominant|
//                      homogeneous|explicit|raster + generator params
//   [axes]             rho / omega / aliasing / adjudication (MofN tokens,
//                      e.g. 2of2, 2of3) / budget lists; cell_budget =
//                      per-cell override list (written by `refine`)
//   [refine]           the adaptive refinement rule + knobs (scenario only;
//                      deliberately NOT part of the manifest fingerprint —
//                      identical axes must share result-cache entries)
//   [demand]           demands, window, and the roster: either the compact
//                      loguniform form (targets, pfd_lo, pfd_ratio) or an
//                      explicit target_pfd list
//   [experiment]       universe = NAME, samples, engine, window, ci_level,
//                      keep_samples
//
// Error contract (the PR 7 parse-robustness contract): parsing never
// throws.  Every malformed line, duplicate key, unknown section/key,
// overflowing integer (std::from_chars), or infeasible resolved value
// becomes a spec_error carrying an exact `file:line: field: message`
// position; the CLI prints them and exits 2.
//
// Adaptive refinement: compute_refined_budgets re-budgets every cell of a
// scenario grid as a PURE function of the merged round-N CSV table (no
// wall-clock, no unordered iteration):
//
//   rel_i   = z * sd_theta2_i / (sqrt(n_i) * max(|mean_theta2_i|, mean_floor))
//   grad_i  = max over axis neighbours j of
//             |metric_i - metric_j| / max(|metric_i|, |metric_j|, mean_floor)
//   raw_i   = n_i * (rel_i / target_rel_halfwidth)^2 * (1 + gradient_weight * grad_i)
//   new_i   = round_to-multiple ceiling of
//             clamp(raw_i, min_budget, min(n_i * max_growth, max_budget))
//
// so budget flows to cells with wide confidence intervals or steep
// response gradients, and the emitted round-N+1 spec (same grid shape,
// `cell_budget` overrides) is byte-identical across thread counts.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "mc/campaign.hpp"
#include "mc/experiment.hpp"
#include "mc/run_dir.hpp"
#include "mc/scenario.hpp"

namespace reldiv::mc {

/// One diagnostic, positioned to the character: file, 1-based line, the
/// offending field (key, section, or CSV column), and what went wrong.
struct spec_error {
  std::string file;
  std::size_t line = 0;
  std::string field;
  std::string message;

  /// "file:line: field: message" (field omitted when empty).
  [[nodiscard]] std::string render() const;
};

/// A universe declaration as written in the spec — kept verbatim (generator
/// name + params in declaration order) so writers re-emit the compact
/// generator form instead of exploding atoms.
struct universe_decl {
  std::string name;
  std::string generator;
  std::vector<std::pair<std::string, std::string>> params;
  std::size_t line = 0;  ///< section header line (0 for synthesized decls)
};

/// The adaptive refinement rule + knobs, declared in [refine].
struct refine_rule {
  std::string metric = "mean_theta2";  ///< gradient metric: mean_theta2 | risk_ratio
  double target_rel_halfwidth = 0.05;  ///< CI convergence target
  double z = 2.5758293035489004;       ///< two-sided 99% normal quantile
  double gradient_weight = 1.0;        ///< steep-response boost factor
  double mean_floor = 1e-12;           ///< |mean| floor for relative widths
  std::uint64_t min_budget = 1000;     ///< floor for converged cells
  std::uint64_t max_budget = 0;        ///< absolute cap (0 = uncapped)
  double max_growth = 8.0;             ///< per-round growth cap (× old budget)
  std::uint64_t round_to = 1000;       ///< budgets round UP to this multiple
};

/// The resolved job plus everything needed to re-emit the spec.
struct sweep_spec {
  job_kind kind = job_kind::scenario_grid;
  std::variant<sweep_manifest, demand_manifest, experiment_manifest> manifest;
  std::vector<universe_decl> universes;  ///< declarations, writer-ready
  /// Compact demand roster declaration (kind == demand_campaign, when the
  /// spec used the loguniform form): targets > 0 means (targets, pfd_lo,
  /// pfd_ratio) regenerates the manifest's target_pfd exactly.
  std::uint64_t roster_targets = 0;
  double roster_pfd_lo = 1e-6;
  double roster_pfd_ratio = 1000.0;
  bool has_refine = false;
  refine_rule refine;
};

/// CLI overrides applied BEFORE resolution, so `--spec f --seed N` equals
/// editing the file: each set field replaces the spec's value.
struct spec_overrides {
  std::optional<std::uint64_t> seed;
  std::optional<std::uint64_t> budget;  ///< replaces the scenario budget axis
  std::optional<unsigned> shards;
  std::optional<sampling_engine> engine;
};

struct spec_parse_result {
  std::optional<sweep_spec> spec;  ///< engaged iff errors is empty
  std::vector<spec_error> errors;
};

/// Parse + resolve a spec file.  Never throws; every failure is a
/// positioned spec_error.  `filename` only labels diagnostics.
[[nodiscard]] spec_parse_result parse_sweep_spec(std::string_view text,
                                                 std::string_view filename,
                                                 const spec_overrides& overrides = {});

/// Canonical spec text for a resolved spec: parsing it back yields a
/// manifest with the SAME fingerprint (spec -> manifest -> spec round-trips
/// through the fingerprint unchanged).  Doubles emit as %.17g, which
/// std::from_chars recovers bit-exactly.
[[nodiscard]] std::string write_sweep_spec(const sweep_spec& spec);

/// Recover a launchable spec from a bare manifest (the `describe` path):
/// universes become explicit %.17g atom lists, demand rosters an explicit
/// target_pfd list.  Refinement knobs are not part of any manifest, so the
/// result carries no [refine] section.
[[nodiscard]] sweep_spec spec_from_manifest(
    const std::variant<sweep_manifest, demand_manifest, experiment_manifest>& manifest);

/// The run's spec/axes as %.17g-clean JSON (atom-for-atom universes
/// included) — what `run_handle::describe()` and `reldiv_sweep describe`
/// print.
[[nodiscard]] std::string describe_manifest_json(
    const std::variant<sweep_manifest, demand_manifest, experiment_manifest>& manifest);

struct refined_budgets {
  std::vector<std::uint64_t> budgets;  ///< per cell, engaged iff errors empty
  std::vector<spec_error> errors;
};

/// The deterministic refinement rule (header comment above): per-cell
/// round-N+1 budgets from the merged round-N CSV.  `table_name` labels
/// diagnostics.  Requires a single-valued budget axis (a multi-valued axis
/// would change the grid shape — and with it every cell seed).
[[nodiscard]] refined_budgets compute_refined_budgets(const sweep_manifest& manifest,
                                                      const refine_rule& rule,
                                                      std::string_view merged_csv,
                                                      std::string_view table_name);

/// Deterministic raster-universe construction (generator = raster): fault
/// i's failure-region q is the profile-weighted raster measure of a seeded
/// analytic region over the unit square, scaled so the q sum to q_total;
/// p_i is uniform over [p_lo, p_hi].  The shape stream is splitmix64
/// from `seed`: per fault, draw kind = next % 4 (0 box, 1 ellipsoid,
/// 2 point-array, 3 stripe), then the shape parameters — the exact
/// derivation lives in spec.cpp and is pinned by an equivalence test
/// against direct demand/raster + demand/region library calls.
struct raster_universe_params {
  std::size_t faults = 0;
  double p_lo = 0.0;
  double p_hi = 0.0;
  double q_total = 0.0;
  std::uint64_t seed = 0;
  std::size_t cols = 64;
  std::size_t rows = 64;
  std::string profile = "uniform";  ///< uniform | gaussian
  double sigma = 0.25;              ///< gaussian profile width
};

[[nodiscard]] core::fault_universe make_raster_universe(const raster_universe_params& p);

/// The loguniform demand roster (the historical CLI roster when pfd_lo =
/// 1e-6 and pfd_ratio = 1000, bit-for-bit).
[[nodiscard]] std::vector<double> make_loguniform_roster(std::uint64_t targets,
                                                         double pfd_lo, double pfd_ratio,
                                                         std::uint64_t seed);

}  // namespace reldiv::mc
