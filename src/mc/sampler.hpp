#pragma once
// Sampling the paper's generative story: "developing versions ... means
// choosing, randomly and independently, possible subsets of this set of
// possible faults" (§2.2).  A sampled `version` is the subset of fault
// indices present; its PFD is the sum of the q_i of present faults
// (disjoint-region assumption).

#include <cstdint>
#include <span>
#include <vector>

#include "core/fault_mask.hpp"
#include "core/fault_universe.hpp"
#include "stats/random.hpp"

namespace reldiv::mc {

/// A developed version: indices of the faults it contains (sorted).
struct version {
  std::vector<std::uint32_t> faults;

  [[nodiscard]] bool has_fault() const noexcept { return !faults.empty(); }
  [[nodiscard]] std::size_t fault_count() const noexcept { return faults.size(); }
};

/// Draw one version: fault i included independently with probability p_i.
[[nodiscard]] version sample_version(const core::fault_universe& u, stats::rng& r);

/// PFD of a version under the disjoint-region model: Σ q_i over present faults.
[[nodiscard]] double pfd_of(const version& v, const core::fault_universe& u);

/// Faults common to two versions (sorted intersection).
[[nodiscard]] std::vector<std::uint32_t> common_faults(const version& a, const version& b);

/// PFD of the 1-out-of-2 system built from versions a and b: Σ q_i over
/// faults present in *both* (the system fails only where both channels fail).
[[nodiscard]] double pair_pfd(const version& a, const version& b,
                              const core::fault_universe& u);

/// PFD of a 1-out-of-m system: Σ q_i over faults present in *all* versions.
[[nodiscard]] double tuple_pfd(const std::vector<version>& versions,
                               const core::fault_universe& u);

/// Empirical PFD: execute `demands` random demands against a version, where
/// a demand lands in fault i's failure region with probability q_i (regions
/// disjoint).  Returns the failure fraction — this is what a testing
/// campaign would observe, as opposed to the exact pfd_of().  Implemented as
/// a single Binomial(demands, pfd) draw (O(log demands) work), not a
/// demand-by-demand Bernoulli loop.
[[nodiscard]] double empirical_pfd(const version& v, const core::fault_universe& u,
                                   std::uint64_t demands, stats::rng& r);

// ---------------------------------------------------------------------------
// Packed-bitmask engine.  A fault set is a core::fault_mask over the
// universe; sampling writes presence bits word-by-word and the PFD algebra
// runs as word-AND + masked dot-product against the universe's contiguous q
// array.  The sparse `version` API above remains as a thin adapter
// (to_version / to_mask) for callers that want explicit index lists.
// ---------------------------------------------------------------------------

/// Core threshold kernel: bit i of `out` is set iff (r() >> 11) <
/// thresholds[i], one rng word per threshold in index order — the same
/// decision r.bernoulli(p_i) makes when thresholds come from
/// core::bernoulli_threshold.  `out` is resized to thresholds.size() only
/// when its size differs (steady-state reuse performs no allocation).
/// Shared by every sampler that carries the bit-exactness contract.
void sample_mask_from_thresholds(std::span<const std::uint64_t> thresholds,
                                 stats::rng& r, core::fault_mask& out);

/// Bit-exact mask sampler: consumes exactly one rng word per fault, in fault
/// order, making the same decision as r.bernoulli(p_i) — so for a given rng
/// state it reproduces sample_version() exactly (to_indices == faults).
/// `out` is resized to u.size() only when its size differs (steady-state
/// reuse performs no allocation).
void sample_version_mask(const core::fault_universe& u, stats::rng& r,
                         core::fault_mask& out);

/// Fast paired sampler: one rng word per fault yields the presence bit for
/// BOTH versions of a pair (high/low 32-bit slices against 32-bit
/// thresholds).  Statistically equivalent (p rounded to the 2^-32 grid) but
/// NOT stream-compatible with sample_version().
void sample_version_pair_fast(const core::fault_universe& u, stats::rng& r,
                              core::fault_mask& a, core::fault_mask& b);

/// Word-parallel sampler for uniform-p universes: builds 64 presence bits at
/// a time via the bit-slice Bernoulli recurrence over the shared 53-bit
/// threshold, consuming (53 - trailing zero bits) rng words per 64 faults
/// (e.g. a single word for p = 0.5).  Exact marginal probability (identical
/// to rng.bernoulli(p)); NOT stream-compatible with sample_version().
/// Requires u.has_uniform_p().
void sample_version_mask_uniform(const core::fault_universe& u, stats::rng& r,
                                 core::fault_mask& out);

/// Grouped-universe paired sampler: for mask words whose 64 faults all share
/// one p (runs of equal p, e.g. concatenated make_homogeneous blocks —
/// fault_universe::sample_blocks), both versions' presence bits come from
/// the word-parallel bit-slice recurrence over the shared 53-bit threshold;
/// the remaining words use the paired 32-bit-threshold kernel.  Exact
/// marginals on the sliceable words, 2^-32-grid marginals elsewhere (callers
/// must check fault_universe::fast32_grid_safe); NOT stream-compatible with
/// sample_version().  Requires u.has_grouped_p().
void sample_version_pair_grouped(const core::fault_universe& u, stats::rng& r,
                                 core::fault_mask& a, core::fault_mask& b);

// ---------------------------------------------------------------------------
// Counter-based sampling: THE pinned `fast-simd` contract.
//
// A version-pair of a counter stream is a pure function of (key, pair
// index): pair s consumes counters [s*D, (s+1)*D) of stats::counter_draw,
// where D = counter_draws_per_pair(u).  Draw consumption order within a
// pair is word-major over the universe's sample_blocks plan:
//   - sliceable word, degenerate threshold (0 or 2^53): zero draws;
//   - sliceable word otherwise: version a's 64 bits from the bit-slice
//     recurrence (cost = 53 - countr_zero(threshold) draws, lowest set
//     digit first), then version b's bits from the next `cost` draws;
//   - non-sliceable word, u.fast32_grid_safe(): one draw per occupied bit,
//     bit k of a from the high 32 bits vs bernoulli_thresholds32()[i], bit
//     k of b from the low 32 bits (the paired-kernel decision rule);
//   - non-sliceable word, NOT grid-safe: one draw per occupied bit for
//     version a ((draw >> 11) < bernoulli_thresholds()[i]), then one per
//     bit for version b.
// This scalar reference is the normative implementation; the fast-simd
// engine (core::simd_sampler, scalar fallback and AVX2 alike) must match it
// decision-for-decision — pinned by the randomized equivalence fuzz in
// tests/mc_simd_sampler_test.cpp.  NOT stream-compatible with any xoshiro
// sampler above: fast-simd results are a new pinned contract, bit-identical
// across thread counts and SIMD dispatch levels but not comparable
// per-seed to the `fast` engine.
// ---------------------------------------------------------------------------

/// Counters one version-pair of `u` consumes (the D above): a pure function
/// of the universe layout.
[[nodiscard]] std::uint64_t counter_draws_per_pair(const core::fault_universe& u);

/// The pinned reference: sample version-pair `pair_index` of counter stream
/// `key` into (a, b), exactly as specified above.  Scalar, one decision at a
/// time — correctness anchor, not a fast path.
void sample_version_pair_counter_reference(const core::fault_universe& u,
                                           std::uint64_t key, std::uint64_t pair_index,
                                           core::fault_mask& a, core::fault_mask& b);

/// PFD of a mask version: masked dot-product against the contiguous q array
/// (bitwise-identical accumulation order to the sparse pfd_of).
[[nodiscard]] double pfd_of(const core::fault_mask& v, const core::fault_universe& u);

/// Fused 1-out-of-2 kernel: intersection PFD and non-emptiness in one pass.
[[nodiscard]] core::pair_intersection_result pair_pfd_stats(
    const core::fault_mask& a, const core::fault_mask& b,
    const core::fault_universe& u);

/// PFD of the 1-out-of-2 system built from mask versions a and b.
[[nodiscard]] double pair_pfd(const core::fault_mask& a, const core::fault_mask& b,
                              const core::fault_universe& u);

/// PFD of a 1-out-of-m system over mask versions.  `scratch` holds the
/// running intersection (resized as needed, reusable across calls).
[[nodiscard]] double tuple_pfd(std::span<const core::fault_mask> versions,
                               const core::fault_universe& u,
                               core::fault_mask& scratch);

/// Adapters between the sparse and packed representations.
[[nodiscard]] version to_version(const core::fault_mask& m);
[[nodiscard]] core::fault_mask to_mask(const version& v, std::size_t universe_size);

}  // namespace reldiv::mc
