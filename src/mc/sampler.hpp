#pragma once
// Sampling the paper's generative story: "developing versions ... means
// choosing, randomly and independently, possible subsets of this set of
// possible faults" (§2.2).  A sampled `version` is the subset of fault
// indices present; its PFD is the sum of the q_i of present faults
// (disjoint-region assumption).

#include <cstdint>
#include <vector>

#include "core/fault_universe.hpp"
#include "stats/random.hpp"

namespace reldiv::mc {

/// A developed version: indices of the faults it contains (sorted).
struct version {
  std::vector<std::uint32_t> faults;

  [[nodiscard]] bool has_fault() const noexcept { return !faults.empty(); }
  [[nodiscard]] std::size_t fault_count() const noexcept { return faults.size(); }
};

/// Draw one version: fault i included independently with probability p_i.
[[nodiscard]] version sample_version(const core::fault_universe& u, stats::rng& r);

/// PFD of a version under the disjoint-region model: Σ q_i over present faults.
[[nodiscard]] double pfd_of(const version& v, const core::fault_universe& u);

/// Faults common to two versions (sorted intersection).
[[nodiscard]] std::vector<std::uint32_t> common_faults(const version& a, const version& b);

/// PFD of the 1-out-of-2 system built from versions a and b: Σ q_i over
/// faults present in *both* (the system fails only where both channels fail).
[[nodiscard]] double pair_pfd(const version& a, const version& b,
                              const core::fault_universe& u);

/// PFD of a 1-out-of-m system: Σ q_i over faults present in *all* versions.
[[nodiscard]] double tuple_pfd(const std::vector<version>& versions,
                               const core::fault_universe& u);

/// Empirical PFD: execute `demands` random demands against a version, where
/// a demand lands in fault i's failure region with probability q_i (regions
/// disjoint).  Returns the failure fraction — this is what a testing
/// campaign would observe, as opposed to the exact pfd_of().
[[nodiscard]] double empirical_pfd(const version& v, const core::fault_universe& u,
                                   std::uint64_t demands, stats::rng& r);

}  // namespace reldiv::mc
