#pragma once
// Section 6.3 sensitivity: the model's 1-to-1 fault↔failure-region mapping.
// In reality several distinct mistakes can create the *same* failure region;
// an assessor who estimates pmax from per-mistake frequencies then
// *underestimates* the probability of the region being present (which can
// approach the sum of the mistake probabilities).  This module builds the
// aliased generative model and the region-level universe an assessor should
// have used, so experiment E14 can quantify the estimation error.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/fault_universe.hpp"
#include "mc/sampler.hpp"
#include "stats/random.hpp"

namespace reldiv::mc {

/// A failure region fed by several independent mistakes.
struct aliased_region {
  std::vector<double> mistake_probs;  ///< each mistake independently made
  double q = 0.0;                     ///< region hit probability

  /// Region present iff at least one mistake is made:
  /// p_region = 1 − Π(1 − mistake_probs).
  [[nodiscard]] double region_presence_probability() const;
};

class aliased_model {
 public:
  explicit aliased_model(std::vector<aliased_region> regions);

  [[nodiscard]] std::size_t region_count() const noexcept { return regions_.size(); }
  [[nodiscard]] const std::vector<aliased_region>& regions() const noexcept {
    return regions_;
  }

  /// The *correct* region-level universe (p_i = region presence probability).
  [[nodiscard]] core::fault_universe effective_universe() const;

  /// The universe a naive assessor builds by treating each mistake as its
  /// own fault with its own (shared) region — i.e. applying the paper's
  /// 1-to-1 assumption to mistake-level data.  Under it the same region is
  /// multiply counted, so pmax is read off the *largest single mistake*.
  [[nodiscard]] core::fault_universe naive_mistake_universe() const;

  /// pmax as the naive assessor estimates it (max single-mistake probability)
  /// vs the true region-level pmax.
  [[nodiscard]] double naive_p_max() const;
  [[nodiscard]] double true_p_max() const;

  /// Sample a version at the mistake level (region present iff any of its
  /// mistakes fires).  Fault indices refer to regions.
  [[nodiscard]] version sample(stats::rng& r) const;

  /// Mask-based sampling: same rng decisions as sample() (bit-exact); bit i
  /// of `out` is region i's presence.
  void sample_mask(stats::rng& r, core::fault_mask& out) const;

 private:
  std::vector<aliased_region> regions_;
};

/// Build an aliased model from a region-level universe by splitting each
/// fault's presence probability across `mistakes_per_region` equal
/// independent mistakes (preserving the region presence probability).
[[nodiscard]] aliased_model split_into_mistakes(const core::fault_universe& u,
                                                std::size_t mistakes_per_region);

}  // namespace reldiv::mc
