#include "mc/io_env.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "stats/random.hpp"

namespace reldiv::mc {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// io_error
// ---------------------------------------------------------------------------

namespace {

std::string io_error_message(const std::string& op, const fs::path& path,
                             int error_number) {
  return "io: " + op + " " + path.string() + ": " + std::strerror(error_number) +
         " (errno " + std::to_string(error_number) + ")";
}

}  // namespace

io_error::io_error(std::string op, fs::path path, int error_number)
    : run_dir_error(io_error_message(op, path, error_number)),
      op_(std::move(op)),
      path_(std::move(path)),
      error_number_(error_number) {}

// ---------------------------------------------------------------------------
// fault_plan
// ---------------------------------------------------------------------------

std::string_view fault_kind_name(fault_kind k) {
  switch (k) {
    case fault_kind::none: return "none";
    case fault_kind::eio: return "eio";
    case fault_kind::enospc: return "enospc";
    case fault_kind::torn_write: return "torn_write";
    case fault_kind::lost_rename: return "lost_rename";
    case fault_kind::stall: return "stall";
  }
  return "unknown";
}

namespace {

/// Which fault kinds make physical sense for each operation: a read cannot
/// tear a write it never performs, a claim rename allocates no blocks, and
/// only the two rename flavours can lose visibility.
std::uint32_t applicable_kinds(io_op op) {
  switch (op) {
    case io_op::read:
      return fault_kind_bit(fault_kind::eio) | fault_kind_bit(fault_kind::stall);
    case io_op::write:
      return fault_kind_bit(fault_kind::eio) | fault_kind_bit(fault_kind::enospc) |
             fault_kind_bit(fault_kind::torn_write) | fault_kind_bit(fault_kind::stall);
    case io_op::fsync:
      return fault_kind_bit(fault_kind::eio) | fault_kind_bit(fault_kind::enospc) |
             fault_kind_bit(fault_kind::stall);
    case io_op::rename:
      return fault_kind_bit(fault_kind::eio) | fault_kind_bit(fault_kind::enospc) |
             fault_kind_bit(fault_kind::lost_rename) | fault_kind_bit(fault_kind::stall);
    case io_op::claim:
      return fault_kind_bit(fault_kind::eio) | fault_kind_bit(fault_kind::lost_rename) |
             fault_kind_bit(fault_kind::stall);
    case io_op::touch:
      return fault_kind_bit(fault_kind::eio) | fault_kind_bit(fault_kind::enospc) |
             fault_kind_bit(fault_kind::stall);
  }
  return 0;
}

}  // namespace

fault_kind fault_plan::decide(io_op op, std::uint64_t op_index) const {
  if (seed == 0 || rate_ppm == 0) return fault_kind::none;
  if ((ops_mask & io_op_bit(op)) == 0) return fault_kind::none;
  // Same derivation style as target_stream_seed(seed, t): one splitmix64
  // state keyed by (seed, index), drawn twice — once for "fault or not",
  // once for "which kind".
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (op_index + 0xc4a05e77ULL));
  const std::uint64_t h = stats::splitmix64_next(state);
  if (h % 1'000'000 >= rate_ppm) return fault_kind::none;
  const std::uint32_t applicable = kinds_mask & applicable_kinds(op);
  if (applicable == 0) return fault_kind::none;
  const std::uint64_t h2 = stats::splitmix64_next(state);
  int pick = static_cast<int>(h2 % static_cast<std::uint64_t>(std::popcount(applicable)));
  for (std::uint32_t k = 1; k <= static_cast<std::uint32_t>(fault_kind::stall); ++k) {
    if ((applicable & (1u << k)) && pick-- == 0) return static_cast<fault_kind>(k);
  }
  return fault_kind::none;
}

std::string fault_plan::to_string() const {
  return "seed=" + std::to_string(seed) + ",rate_ppm=" + std::to_string(rate_ppm) +
         ",ops=" + std::to_string(ops_mask) + ",kinds=" + std::to_string(kinds_mask) +
         ",stall_ms=" + std::to_string(stall_ms);
}

fault_plan fault_plan::parse(std::string_view text) {
  fault_plan plan;
  // Every field must appear exactly once; unknown keys are refused so a
  // typo'd replay recipe cannot silently run a different plan.
  std::uint32_t seen = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string_view field = text.substr(pos, comma - pos);
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("fault_plan: malformed field '" + std::string(field) +
                                  "' (expected key=value)");
    }
    const std::string_view key = field.substr(0, eq);
    const std::string_view value = field.substr(eq + 1);
    std::uint64_t parsed = 0;
    const auto [end, ec] =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc{} || end != value.data() + value.size()) {
      throw std::invalid_argument("fault_plan: field '" + std::string(key) +
                                  "' has a non-integer value '" + std::string(value) + "'");
    }
    if (key == "seed") {
      plan.seed = parsed;
      seen |= 1u;
    } else if (key == "rate_ppm") {
      plan.rate_ppm = static_cast<std::uint32_t>(parsed);
      seen |= 2u;
    } else if (key == "ops") {
      plan.ops_mask = static_cast<std::uint32_t>(parsed);
      seen |= 4u;
    } else if (key == "kinds") {
      plan.kinds_mask = static_cast<std::uint32_t>(parsed);
      seen |= 8u;
    } else if (key == "stall_ms") {
      plan.stall_ms = static_cast<std::uint32_t>(parsed);
      seen |= 16u;
    } else {
      throw std::invalid_argument("fault_plan: unknown field '" + std::string(key) + "'");
    }
    pos = comma + 1;
  }
  if (seen != 31u) {
    throw std::invalid_argument("fault_plan: missing fields in '" + std::string(text) +
                                "' (need seed, rate_ppm, ops, kinds, stall_ms)");
  }
  return plan;
}

fault_plan chaos_plan(std::uint64_t chaos_seed, std::uint32_t index,
                      std::uint32_t rate_ppm) {
  // Rotating palettes so even a 2-plan sweep exercises both the errno
  // failures and the silent-corruption failures.
  static constexpr std::uint32_t kPalettes[] = {
      kAllFaultKinds,
      fault_kind_bit(fault_kind::eio) | fault_kind_bit(fault_kind::enospc),
      fault_kind_bit(fault_kind::torn_write) | fault_kind_bit(fault_kind::lost_rename),
      fault_kind_bit(fault_kind::stall) | fault_kind_bit(fault_kind::eio),
  };
  std::uint64_t state = chaos_seed ^ (0x9e3779b97f4a7c15ULL * (index + 0x5eedULL));
  fault_plan plan;
  plan.seed = stats::splitmix64_next(state);
  if (plan.seed == 0) plan.seed = 1;  // 0 would disable the plan entirely
  plan.rate_ppm = rate_ppm;
  plan.ops_mask = kAllIoOps;
  plan.kinds_mask = kPalettes[index % (sizeof(kPalettes) / sizeof(kPalettes[0]))];
  plan.stall_ms = 5;
  return plan;
}

// ---------------------------------------------------------------------------
// real_io_env
// ---------------------------------------------------------------------------

namespace {

struct fd_guard {
  int fd = -1;
  ~fd_guard() {
    if (fd >= 0) ::close(fd);
  }
  int release() { return std::exchange(fd, -1); }
};

// RENAME_NOREPLACE restated locally so no uapi header — with its macro
// collisions — has to be dragged in.
constexpr unsigned int kRenameNoReplace = 1;

}  // namespace

std::string real_io_env::read_file(const fs::path& path) {
  fd_guard f{::open(path.c_str(), O_RDONLY | O_CLOEXEC)};
  if (f.fd < 0) throw io_error("read", path, errno);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(f.fd, buf, sizeof(buf));
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      throw io_error("read", path, errno);
    }
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

void real_io_env::write_file(const fs::path& path, std::string_view contents, bool sync) {
  fd_guard f{::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644)};
  if (f.fd < 0) throw io_error("write", path, errno);
  std::size_t off = 0;
  while (off < contents.size()) {
    const ssize_t n = ::write(f.fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw io_error("write", path, errno);
    }
    off += static_cast<std::size_t>(n);
  }
  // The fsync-before-rename half of crash durability: without it a power
  // cut after the rename can surface a zero-length "committed" file.
  if (sync && ::fsync(f.fd) != 0) throw io_error("fsync", path, errno);
  if (::close(f.release()) != 0) throw io_error("close", path, errno);
}

void real_io_env::fsync_dir(const fs::path& dir) {
  fd_guard f{::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC)};
  if (f.fd < 0) throw io_error("fsync", dir, errno);
  if (::fsync(f.fd) != 0) {
    // Some filesystems refuse directory fsync (EINVAL) — the entry is as
    // durable as that filesystem can make it; nothing more to do.
    if (errno != EINVAL) throw io_error("fsync", dir, errno);
  }
}

void real_io_env::rename_file(const fs::path& from, const fs::path& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) throw io_error("rename", to, errno);
}

int real_io_env::rename_noreplace(const fs::path& from, const fs::path& to) {
  int rc = -ENOSYS;
#ifdef SYS_renameat2
  rc = ::syscall(SYS_renameat2, AT_FDCWD, from.c_str(), AT_FDCWD, to.c_str(),
                 kRenameNoReplace) == 0
           ? 0
           : -errno;
#endif
  if (rc == -ENOSYS || rc == -EINVAL || rc == -ENOTSUP || rc == -EOPNOTSUPP) {
    // link() never replaces its target either; "at most one winner" holds
    // on NFS too.  On success the source hard link is consumed here so the
    // caller sees rename semantics.
    rc = ::link(from.c_str(), to.c_str()) == 0 ? 0 : -errno;
    if (rc == 0) ::unlink(from.c_str());
  }
  return rc;
}

bool real_io_env::touch(const fs::path& path, std::string_view contents, bool create) {
  const int flags = O_WRONLY | O_TRUNC | O_CLOEXEC | (create ? O_CREAT : 0);
  fd_guard f{::open(path.c_str(), flags, 0644)};
  if (f.fd < 0) {
    if (!create && errno == ENOENT) return false;
    throw io_error("touch", path, errno);
  }
  std::size_t off = 0;
  while (off < contents.size()) {
    const ssize_t n = ::write(f.fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw io_error("touch", path, errno);
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// ---------------------------------------------------------------------------
// faulty_io_env
// ---------------------------------------------------------------------------

faulty_io_env::faulty_io_env(fault_plan plan, io_env* base)
    : plan_(plan), base_(base ? base : &system_io_env()) {}

fault_kind faulty_io_env::next(io_op op) {
  const std::uint64_t index = ops_.fetch_add(1, std::memory_order_relaxed);
  const fault_kind k = plan_.decide(op, index);
  if (k == fault_kind::none) return k;
  if (k == fault_kind::stall) {
    std::this_thread::sleep_for(std::chrono::milliseconds(plan_.stall_ms));
    injected_.fetch_add(1, std::memory_order_relaxed);
    return fault_kind::none;  // a stall delays, then the operation proceeds
  }
  injected_.fetch_add(1, std::memory_order_relaxed);
  return k;
}

std::string faulty_io_env::read_file(const fs::path& path) {
  if (next(io_op::read) == fault_kind::eio) throw io_error("read", path, EIO);
  return base_->read_file(path);
}

void faulty_io_env::write_file(const fs::path& path, std::string_view contents,
                               bool sync) {
  switch (next(io_op::write)) {
    case fault_kind::eio: throw io_error("write", path, EIO);
    case fault_kind::enospc: throw io_error("write", path, ENOSPC);
    case fault_kind::torn_write:
      // The nastiest disk lie: success reported, only a prefix on disk.
      // The container checksum is what must catch this downstream.
      base_->write_file(path, contents.substr(0, contents.size() / 2), sync);
      return;
    default: break;
  }
  base_->write_file(path, contents, sync);
}

void faulty_io_env::fsync_dir(const fs::path& dir) {
  switch (next(io_op::fsync)) {
    case fault_kind::eio: throw io_error("fsync", dir, EIO);
    case fault_kind::enospc: throw io_error("fsync", dir, ENOSPC);
    default: break;
  }
  base_->fsync_dir(dir);
}

void faulty_io_env::rename_file(const fs::path& from, const fs::path& to) {
  switch (next(io_op::rename)) {
    case fault_kind::eio: throw io_error("rename", to, EIO);
    case fault_kind::enospc: throw io_error("rename", to, ENOSPC);
    case fault_kind::lost_rename: {
      // Success reported, target never appears (a lost NFS reply, say).
      std::error_code ec;
      fs::remove(from, ec);
      return;
    }
    default: break;
  }
  base_->rename_file(from, to);
}

int faulty_io_env::rename_noreplace(const fs::path& from, const fs::path& to) {
  switch (next(io_op::claim)) {
    case fault_kind::eio: return -EIO;
    case fault_kind::lost_rename: {
      // The worker believes it holds the claim, but no claim file exists:
      // another worker may claim too.  Cell results are pure functions of
      // (manifest, index), so the duplicated compute is benign — which is
      // exactly what this fault is meant to prove.
      std::error_code ec;
      fs::remove(from, ec);
      return 0;
    }
    default: break;
  }
  return base_->rename_noreplace(from, to);
}

bool faulty_io_env::touch(const fs::path& path, std::string_view contents, bool create) {
  switch (next(io_op::touch)) {
    case fault_kind::eio: throw io_error("touch", path, EIO);
    case fault_kind::enospc: throw io_error("touch", path, ENOSPC);
    default: break;
  }
  return base_->touch(path, contents, create);
}

// ---------------------------------------------------------------------------
// Active-env plumbing
// ---------------------------------------------------------------------------

namespace {

std::atomic<io_env*>& env_slot() {
  static std::atomic<io_env*> slot{nullptr};
  return slot;
}

}  // namespace

real_io_env& system_io_env() {
  static real_io_env env;
  return env;
}

io_env& active_io_env() {
  io_env* env = env_slot().load(std::memory_order_acquire);
  return env ? *env : system_io_env();
}

io_env* set_io_env(io_env* env) {
  return env_slot().exchange(env, std::memory_order_acq_rel);
}

}  // namespace reldiv::mc
