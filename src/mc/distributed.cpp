#include "mc/distributed.hpp"

#include <fcntl.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

extern char** environ;

namespace reldiv::mc {

namespace fs = std::filesystem;

namespace {

/// True iff cell `index` has a state file that validates against the run's
/// fingerprint.  Any defect — absent, truncated, corrupt, wrong run, wrong
/// index — reads as "not done", so the cell gets recomputed.  Uses the
/// identity peek (container checks + checksum, no payload decode): this
/// runs once per cell per scan, and kept-sample payloads can be large.
bool cell_done(const fs::path& run_dir, std::uint64_t fingerprint, std::uint64_t index) {
  const fs::path path = cell_state_path(run_dir, index);
  std::error_code ec;
  if (!fs::exists(path, ec)) return false;
  try {
    const cell_identity id = peek_cell_identity(read_file(path));
    return id.fingerprint == fingerprint && id.cell_index == index;
  } catch (const run_dir_error&) {
    return false;
  }
}

/// Try to take the claim marker for a cell.  O_CREAT|O_EXCL is atomic on a
/// local filesystem: exactly one live worker wins.  Returns false when
/// another worker holds the claim.
bool try_claim(const fs::path& run_dir, std::uint64_t index) {
  const fs::path path = cell_claim_path(run_dir, index);
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) {
    if (errno == EEXIST) return false;
    throw run_dir_error("run_dir: cannot create claim " + path.string() + ": " +
                        std::strerror(errno));
  }
  // Record the owner pid for operators debugging a wedged run.
  const std::string pid = std::to_string(::getpid()) + "\n";
  (void)!::write(fd, pid.data(), pid.size());
  ::close(fd);
  return true;
}

void release_claim(const fs::path& run_dir, std::uint64_t index) {
  std::error_code ec;
  fs::remove(cell_claim_path(run_dir, index), ec);
}

}  // namespace

sweep_manifest init_run_dir(const scenario_axes& axes, const scenario_config& cfg,
                            const fs::path& run_dir) {
  sweep_manifest m;
  m.axes = axes;
  m.seed = cfg.seed;
  m.shards = cfg.shards;
  m.cell_count = enumerate_cells(axes).size();

  std::error_code ec;
  fs::create_directories(cells_dir(run_dir), ec);
  if (ec) {
    throw run_dir_error("run_dir: cannot create " + cells_dir(run_dir).string() + ": " +
                        ec.message());
  }

  const fs::path mpath = manifest_path(run_dir);
  const fs::path jpath = run_dir / "manifest.json";
  if (fs::exists(mpath)) {
    // Resume: the directory must belong to this exact sweep.
    const sweep_manifest existing = decode_manifest(read_file(mpath));
    if (manifest_fingerprint(existing) != manifest_fingerprint(m)) {
      throw run_dir_error("run_dir: " + run_dir.string() +
                          " holds a different sweep (manifest fingerprint mismatch); "
                          "refusing to mix runs");
    }
    // Heal the human-readable mirror if a crash landed between the two
    // writes (the binary manifest is the one that matters for correctness).
    if (!fs::exists(jpath)) write_file_atomic(jpath, manifest_json(existing));
    return existing;
  }
  // Mirror first: once the authoritative manifest exists the directory is
  // live, and the mirror must already be in place for any later artifact
  // upload or operator inspection.
  write_file_atomic(jpath, manifest_json(m));
  write_file_atomic(mpath, encode_manifest(m));
  return m;
}

sweep_manifest load_run_manifest(const fs::path& run_dir) {
  return decode_manifest(read_file(manifest_path(run_dir)));
}

void clean_stale_claims(const fs::path& run_dir) {
  const fs::path dir = cells_dir(run_dir);
  std::error_code ec;
  if (!fs::exists(dir, ec)) return;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".claim") || name.find(".tmp.") != std::string::npos) {
      fs::remove(entry.path(), ec);
    }
  }
}

std::vector<std::uint64_t> missing_cells(const fs::path& run_dir) {
  const sweep_manifest m = load_run_manifest(run_dir);
  const std::uint64_t fingerprint = manifest_fingerprint(m);
  std::vector<std::uint64_t> missing;
  for (std::uint64_t i = 0; i < m.cell_count; ++i) {
    if (!cell_done(run_dir, fingerprint, i)) missing.push_back(i);
  }
  return missing;
}

worker_report run_pending_cells(const fs::path& run_dir, std::size_t max_cells) {
  const sweep_manifest m = load_run_manifest(run_dir);
  const std::uint64_t fingerprint = manifest_fingerprint(m);
  const std::vector<scenario_cell> cells = enumerate_cells(m.axes);
  const scenario_config cfg = m.config();

  worker_report report;
  for (std::uint64_t i = 0; i < cells.size(); ++i) {
    if (max_cells > 0 && report.computed >= max_cells) break;
    if (cell_done(run_dir, fingerprint, i)) {
      ++report.skipped;
      continue;
    }
    if (!try_claim(run_dir, i)) {
      ++report.skipped;  // a live sibling owns it
      continue;
    }
    // A sibling may have completed the cell between the done-check and our
    // claim win; re-check before burning a cell's worth of compute on it.
    if (cell_done(run_dir, fingerprint, i)) {
      release_claim(run_dir, i);
      ++report.skipped;
      continue;
    }
    try {
      cell_state state;
      state.fingerprint = fingerprint;
      state.cell_index = i;
      state.result = run_scenario_cell(m.axes, cfg, cells[i], i);
      write_file_atomic(cell_state_path(run_dir, i), encode_cell_state(state));
    } catch (...) {
      release_claim(run_dir, i);
      throw;
    }
    release_claim(run_dir, i);
    ++report.computed;
  }
  return report;
}

std::vector<int> spawn_sweep_workers(const std::string& worker_exe, const fs::path& run_dir,
                                     unsigned workers, std::size_t max_cells) {
  std::vector<std::string> args = {worker_exe, "--worker", "--run-dir", run_dir.string()};
  if (max_cells > 0) {
    args.emplace_back("--max-cells");
    args.emplace_back(std::to_string(max_cells));
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  std::vector<int> pids;
  pids.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pid_t pid = -1;
    const int rc =
        ::posix_spawn(&pid, worker_exe.c_str(), nullptr, nullptr, argv.data(), environ);
    if (rc != 0) {
      // Reap what we already launched before reporting: never leak workers.
      (void)wait_sweep_workers(pids);
      throw run_dir_error("run_dir: cannot spawn worker " + worker_exe + ": " +
                          std::strerror(rc));
    }
    pids.push_back(static_cast<int>(pid));
  }
  return pids;
}

std::vector<int> wait_sweep_workers(const std::vector<int>& pids) {
  std::vector<int> codes;
  codes.reserve(pids.size());
  for (const int pid : pids) {
    int status = 0;
    pid_t rc;
    do {
      rc = ::waitpid(static_cast<pid_t>(pid), &status, 0);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      codes.push_back(-1);
    } else if (WIFEXITED(status)) {
      codes.push_back(WEXITSTATUS(status));
    } else if (WIFSIGNALED(status)) {
      codes.push_back(128 + WTERMSIG(status));
    } else {
      codes.push_back(-1);
    }
  }
  return codes;
}

grid_result merge_run_dir(const fs::path& run_dir) {
  const sweep_manifest m = load_run_manifest(run_dir);
  const std::uint64_t fingerprint = manifest_fingerprint(m);
  const std::vector<scenario_cell> cells = enumerate_cells(m.axes);

  grid_result out;
  out.cells.reserve(cells.size());
  for (std::uint64_t i = 0; i < cells.size(); ++i) {
    cell_state state;
    try {
      state = decode_cell_state(read_file(cell_state_path(run_dir, i)));
    } catch (const run_dir_error& e) {
      throw run_dir_error("run_dir: cell " + std::to_string(i) +
                          " missing or invalid — run is incomplete, rerun workers to "
                          "resume (" +
                          e.what() + ")");
    }
    if (state.fingerprint != fingerprint || state.cell_index != i) {
      throw run_dir_error("run_dir: cell " + std::to_string(i) +
                          " belongs to a different run or position");
    }
    // Belt and braces: the stored coordinates must be the enumerated ones
    // (rho/omega compared as bits — they round-tripped through the wire
    // format, and adjacent cells differ in exactly these float axes).
    if (state.result.cell.universe_index != cells[i].universe_index ||
        state.result.cell.universe != cells[i].universe ||
        state.result.cell.samples != cells[i].samples ||
        state.result.cell.aliasing != cells[i].aliasing ||
        std::bit_cast<std::uint64_t>(state.result.cell.rho) !=
            std::bit_cast<std::uint64_t>(cells[i].rho) ||
        std::bit_cast<std::uint64_t>(state.result.cell.omega) !=
            std::bit_cast<std::uint64_t>(cells[i].omega)) {
      throw run_dir_error("run_dir: cell " + std::to_string(i) +
                          " coordinates disagree with the manifest");
    }
    out.cells.push_back(std::move(state.result));
  }
  return out;
}

grid_result run_distributed_grid(const scenario_axes& axes, const scenario_config& cfg,
                                 const distributed_config& dist,
                                 const std::string& worker_exe) {
  init_run_dir(axes, cfg, dist.run_dir);
  clean_stale_claims(dist.run_dir);

  const std::vector<std::uint64_t> pending = missing_cells(dist.run_dir);
  if (!pending.empty()) {
    if (dist.workers == 0) {
      throw run_dir_error("run_dir: no workers requested but " +
                          std::to_string(pending.size()) + " cells are pending");
    }
    // No point spawning more processes than there are pending cells.
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(dist.workers, pending.size()));
    const std::vector<int> pids =
        spawn_sweep_workers(worker_exe, dist.run_dir, workers, dist.max_cells);
    const std::vector<int> codes = wait_sweep_workers(pids);

    const std::vector<std::uint64_t> still_missing = missing_cells(dist.run_dir);
    if (!still_missing.empty()) {
      std::string detail = "worker exit codes:";
      for (const int c : codes) detail += ' ' + std::to_string(c);
      throw run_dir_error("run_dir: " + std::to_string(still_missing.size()) + " of " +
                          std::to_string(enumerate_cells(axes).size()) +
                          " cells still pending after workers finished (" + detail +
                          "); rerun to resume");
    }
  }
  return merge_run_dir(dist.run_dir);
}

}  // namespace reldiv::mc
