#include "mc/distributed.hpp"

#include "mc/io_env.hpp"
#include "mc/spec.hpp"
#include "stats/wire.hpp"

#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <ctime>    // reldiv-lint: allow(det-time) claim owner records carry an informational wall-clock stamp
#include <fstream>  // reldiv-lint: allow(io-seam) /proc reads and the quarantine ledger are deliberately outside the seam (see below)
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

extern char** environ;

namespace reldiv::mc {

namespace fs = std::filesystem;

namespace {

/// True iff cell `index` has a state file of the run's window kind that
/// validates against the run's fingerprint.  Any defect — absent, truncated,
/// corrupt, wrong kind, wrong run, wrong index — reads as "not done", so the
/// cell gets recomputed.  Uses the identity peek (container checks +
/// checksum, no payload decode): this runs once per cell per scan, and
/// kept-sample payloads can be large.
bool cell_done(const fs::path& run_dir, state_kind window_kind, std::uint64_t fingerprint,
               std::uint64_t index) {
  const fs::path path = cell_state_path(run_dir, index);
  std::error_code ec;
  if (!fs::exists(path, ec)) return false;
  try {
    const cell_identity id = peek_cell_identity(window_kind, read_file(path));
    return id.fingerprint == fingerprint && id.cell_index == index;
  } catch (const run_dir_error&) {
    return false;
  }
}

/// The owner record a claim (and its heartbeat renewals) carries.
std::string claim_owner_body() {
  return "host " + claim_host_name() + "\npid " + std::to_string(::getpid()) +
         // reldiv-lint: allow(det-time) operator-facing debug stamp only; lease arithmetic uses filesystem mtimes (filesystem_now), never this value
         "\ntime " + std::to_string(static_cast<long long>(::time(nullptr))) + "\n";
}

/// Try to take the claim marker for a cell.  The claim's owner record (host,
/// pid, wall-clock) is written to a uniquely-named sibling first, then moved
/// onto the claim path with RENAME_NOREPLACE (falling back to link(2) inside
/// real_io_env): exactly one live worker — on any host sharing the
/// filesystem — wins, and the claim file is never observable half-written.
/// Returns false when another worker holds the claim.
}  // namespace

claim_owner parse_claim_owner(const std::string& body) {
  claim_owner owner;
  std::istringstream in(body);
  std::string key;
  while (in >> key) {
    if (key == "host") {
      in >> owner.host;
    } else if (key == "pid") {
      if (!(in >> owner.pid)) break;
    } else {
      std::string skip;
      in >> skip;
    }
  }
  return owner;
}

namespace {

bool try_claim(const fs::path& run_dir, std::uint64_t index) {
  io_env& env = active_io_env();
  const fs::path claim = cell_claim_path(run_dir, index);
  const fs::path unique = claim.string() + ".tmp." + claim_host_name() + "." +
                          std::to_string(::getpid());
  try {
    env.write_file(unique, claim_owner_body(), /*sync=*/false);
  } catch (...) {
    std::error_code ec;
    fs::remove(unique, ec);
    throw;
  }
  const int rc = env.rename_noreplace(unique, claim);
  if (rc == 0) return true;
  std::error_code ec;
  fs::remove(unique, ec);
  if (rc == -EEXIST) return false;
  throw io_error("claim", claim, -rc);
}

void release_claim(const fs::path& run_dir, std::uint64_t index) {
  std::error_code ec;
  fs::remove(cell_claim_path(run_dir, index), ec);
}

/// Non-throwing integer parse: filenames and ledger records come from disk,
/// where a torn write or a hostile rename can produce all-digit garbage that
/// overflows the target type.  std::sto* would throw out of cleanup paths
/// that promise to be best-effort; from_chars reports failure as a bool.
template <typename T>
bool parse_number(std::string_view text, T& out) {
  if (text.empty()) return false;
  const auto* first = text.data();
  const auto* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

/// Owner of a `<name>.tmp.<host>.<pid>` (or legacy `<name>.tmp.<pid>`)
/// orphan, recovered from the filename.
claim_owner parse_tmp_owner(const std::string& filename) {
  claim_owner owner;
  const std::size_t tag = filename.rfind(".tmp.");
  if (tag == std::string::npos) return owner;
  const std::string suffix = filename.substr(tag + 5);
  const std::size_t dot = suffix.rfind('.');
  const std::string pid_text = dot == std::string::npos ? suffix : suffix.substr(dot + 1);
  if (dot != std::string::npos) owner.host = suffix.substr(0, dot);
  // Positive only: a crafted `.tmp.-1` suffix must not turn a later
  // kill(pid, 0) liveness probe into a process-group signal.
  long pid = -1;
  if (parse_number(pid_text, pid) && pid > 0) owner.pid = pid;
  return owner;
}

/// A pid is provably dead when kill(pid, 0) reports ESRCH — or when the pid
/// still exists but only as a zombie (a SIGKILLed worker whose parent died
/// with it is reparented and may never be reaped inside a container; it
/// holds its pid forever but will never release its claim).  EPERM means a
/// live process owned by someone else — alive for our purposes.
bool local_pid_dead(long pid) {
  if (pid <= 0) return false;
  if (::kill(static_cast<pid_t>(pid), 0) != 0) return errno == ESRCH;
#ifdef __linux__
  // reldiv-lint: allow(io-seam) /proc liveness probe of a LOCAL pid: not distributed state, and injecting faults here would fake dead workers
  std::ifstream stat("/proc/" + std::to_string(pid) + "/stat");
  std::string line;
  if (stat && std::getline(stat, line)) {
    // "pid (comm) S ..." — comm may itself contain ') ', so the state char
    // is the first non-space after the LAST ')'.
    const std::size_t close = line.rfind(')');
    const std::size_t state = line.find_first_not_of(' ', close + 1);
    if (close != std::string::npos && state != std::string::npos) {
      return line[state] == 'Z' || line[state] == 'X';
    }
  }
#endif
  return false;
}

/// "Now" according to the clock of the filesystem that holds `dir` — the
/// same clock that stamps claim mtimes.  Touch a probe file and read its
/// mtime back, so lease arithmetic never mixes a server-assigned timestamp
/// with a skewed local clock.  Falls back to the local clock when the probe
/// cannot be written (read-only mount during a post-mortem, say).
fs::file_time_type filesystem_now(const fs::path& dir) {
  const fs::path probe = dir / (".lease_probe.tmp." + claim_host_name() + "." +
                                std::to_string(::getpid()));
  std::error_code ec;
  try {
    active_io_env().touch(probe, {}, /*create=*/true);
  } catch (const run_dir_error&) {
    return fs::file_time_type::clock::now();
  }
  const fs::file_time_type t = fs::last_write_time(probe, ec);
  std::error_code remove_ec;
  fs::remove(probe, remove_ec);
  if (!ec) return t;
  return fs::file_time_type::clock::now();
}

/// The lease rule shared by claims and .tmp orphans: reap when the lease —
/// the file's mtime measured against `now`, both assigned by the filesystem
/// that holds the run directory — expired, or when the owner is provably
/// dead on this host.  A young claim whose pid we cannot probe (another
/// host, unparseable owner) is left alone.
bool lease_expired_or_owner_dead(const fs::path& path, const claim_owner& owner,
                                 std::chrono::seconds ttl, fs::file_time_type now) {
  std::error_code ec;
  const auto mtime = fs::last_write_time(path, ec);
  if (!ec && now - mtime > ttl) return true;
  const bool local = owner.host.empty() || owner.host == claim_host_name();
  return local && local_pid_dead(owner.pid);
}

/// Apply the lease rule to one cell's claim (the worker-side sibling of
/// clean_stale_claims): reap it if its lease expired or its local owner is
/// dead.  Returns true when the claim is gone afterwards — the caller may
/// retry its own claim.  This is what lets a coordinator-less worker fleet
/// (README's multi-host recipe) make progress past a lost host once its
/// leases expire, instead of skipping the dead host's cells forever.
bool reap_claim_if_stale(const fs::path& run_dir, std::uint64_t index,
                         std::chrono::seconds ttl) {
  const fs::path claim = cell_claim_path(run_dir, index);
  claim_owner owner;
  try {
    owner = parse_claim_owner(read_file(claim));
  } catch (const run_dir_error&) {
    // Already released by its owner — gone is gone.
    std::error_code ec;
    return !fs::exists(claim, ec);
  }
  if (!lease_expired_or_owner_dead(claim, owner, ttl, filesystem_now(cells_dir(run_dir)))) {
    return false;
  }
  std::error_code ec;
  fs::remove(claim, ec);
  return true;
}

/// Everything the generic worker/merge loops need to serve one run
/// directory: the run's kind and identity, plus the pure cell function
/// packaged as "index -> encoded state blob".
struct job_driver {
  job_kind kind = job_kind::scenario_grid;
  std::uint64_t fingerprint = 0;
  std::uint64_t cell_count = 0;
  std::function<std::string(std::uint64_t)> compute;
};

job_driver make_job_driver(const fs::path& run_dir) {
  const std::string blob = read_file(manifest_path(run_dir));
  job_driver d;
  d.kind = manifest_job_kind(peek_state_kind(blob));
  switch (d.kind) {
    case job_kind::scenario_grid: {
      auto m = std::make_shared<const sweep_manifest>(decode_manifest(blob));
      auto cells =
          std::make_shared<const std::vector<scenario_cell>>(enumerate_cells(m->axes));
      d.fingerprint = manifest_fingerprint(*m);
      d.cell_count = m->cell_count;
      d.compute = [m, cells, fp = d.fingerprint](std::uint64_t index) {
        cell_state state;
        state.fingerprint = fp;
        state.cell_index = index;
        state.result = run_scenario_cell(m->axes, m->config(), (*cells)[index], index);
        return encode_cell_state(state);
      };
      break;
    }
    case job_kind::demand_campaign: {
      auto m = std::make_shared<const demand_manifest>(decode_demand_manifest(blob));
      d.fingerprint = demand_manifest_fingerprint(*m);
      d.cell_count = m->window_count();
      d.compute = [m, fp = d.fingerprint](std::uint64_t index) {
        demand_window_state state;
        state.fingerprint = fp;
        state.window_index = index;
        state.result = run_demand_window(*m, index);
        return encode_demand_window_state(state);
      };
      break;
    }
    case job_kind::experiment_shards: {
      auto m =
          std::make_shared<const experiment_manifest>(decode_experiment_manifest(blob));
      d.fingerprint = experiment_manifest_fingerprint(*m);
      d.cell_count = m->window_count();
      d.compute = [m, fp = d.fingerprint](std::uint64_t index) {
        experiment_window_state state;
        state.fingerprint = fp;
        state.window_index = index;
        state.result = run_experiment_window(*m, index);
        return encode_experiment_window_state(state);
      };
      break;
    }
  }
  return d;
}

/// Shared init path: create the directory skeleton, then either adopt an
/// existing manifest (same kind + fingerprint, else refuse) or write the new
/// one with its JSON mirror.
void init_run_dir_files(const fs::path& run_dir, state_kind manifest_kind,
                        std::uint64_t fingerprint, const std::string& manifest_blob,
                        const std::string& json_mirror) {
  std::error_code ec;
  fs::create_directories(cells_dir(run_dir), ec);
  if (ec) {
    throw run_dir_error("run_dir: cannot create " + cells_dir(run_dir).string() + ": " +
                        ec.message());
  }

  const fs::path mpath = manifest_path(run_dir);
  const fs::path jpath = run_dir / "manifest.json";
  if (fs::exists(mpath)) {
    // Resume: the directory must belong to this exact run.
    const std::string existing = read_file(mpath);
    if (peek_state_kind(existing) != manifest_kind ||
        stats::fnv1a64(decode_state_blob(manifest_kind, existing)) != fingerprint) {
      throw run_dir_error("run_dir: " + run_dir.string() +
                          " holds a different run (manifest kind or fingerprint "
                          "mismatch); refusing to mix runs");
    }
    // Heal the human-readable mirror if a crash landed between the two
    // writes (the binary manifest is the one that matters for correctness).
    if (!fs::exists(jpath)) write_file_atomic(jpath, json_mirror);
    return;
  }
  // Mirror first: once the authoritative manifest exists the directory is
  // live, and the mirror must already be in place for any later artifact
  // upload or operator inspection.
  write_file_atomic(jpath, json_mirror);
  write_file_atomic(mpath, manifest_blob);
}

}  // namespace

// ---------------------------------------------------------------------------
// run_handle — the job-kind-polymorphic facade
// ---------------------------------------------------------------------------

run_handle run_handle::open(const fs::path& run_dir) {
  const std::string blob = read_file(manifest_path(run_dir));
  run_handle h;
  h.dir_ = run_dir;
  h.kind_ = manifest_job_kind(peek_state_kind(blob));
  switch (h.kind_) {
    case job_kind::scenario_grid: {
      sweep_manifest m = decode_manifest(blob);
      h.fingerprint_ = manifest_fingerprint(m);
      h.cell_count_ = m.cell_count;
      h.manifest_ = std::move(m);
      break;
    }
    case job_kind::demand_campaign: {
      demand_manifest m = decode_demand_manifest(blob);
      h.fingerprint_ = demand_manifest_fingerprint(m);
      h.cell_count_ = m.window_count();
      h.manifest_ = std::move(m);
      break;
    }
    case job_kind::experiment_shards: {
      experiment_manifest m = decode_experiment_manifest(blob);
      h.fingerprint_ = experiment_manifest_fingerprint(m);
      h.cell_count_ = m.window_count();
      h.manifest_ = std::move(m);
      break;
    }
  }
  return h;
}

run_handle run_handle::init(const scenario_axes& axes, const scenario_config& cfg,
                            const fs::path& run_dir) {
  sweep_manifest m;
  m.axes = axes;
  m.seed = cfg.seed;
  m.shards = cfg.shards;
  m.cell_count = enumerate_cells(axes).size();
  const std::uint64_t fingerprint = manifest_fingerprint(m);
  init_run_dir_files(run_dir, state_kind::manifest, fingerprint, encode_manifest(m),
                     manifest_json(m));
  run_handle h;
  h.dir_ = run_dir;
  h.kind_ = job_kind::scenario_grid;
  h.fingerprint_ = fingerprint;
  h.cell_count_ = m.cell_count;
  h.manifest_ = std::move(m);
  return h;
}

run_handle run_handle::init(const demand_manifest& m, const fs::path& run_dir) {
  m.validate();
  const std::uint64_t fingerprint = demand_manifest_fingerprint(m);
  init_run_dir_files(run_dir, state_kind::demand_manifest, fingerprint,
                     encode_demand_manifest(m), demand_manifest_json(m));
  run_handle h;
  h.dir_ = run_dir;
  h.kind_ = job_kind::demand_campaign;
  h.fingerprint_ = fingerprint;
  h.cell_count_ = m.window_count();
  h.manifest_ = m;
  return h;
}

run_handle run_handle::init(const experiment_manifest& m, const fs::path& run_dir) {
  m.validate();
  const std::uint64_t fingerprint = experiment_manifest_fingerprint(m);
  init_run_dir_files(run_dir, state_kind::experiment_manifest, fingerprint,
                     encode_experiment_manifest(m), experiment_manifest_json(m));
  run_handle h;
  h.dir_ = run_dir;
  h.kind_ = job_kind::experiment_shards;
  h.fingerprint_ = fingerprint;
  h.cell_count_ = m.window_count();
  h.manifest_ = m;
  return h;
}

namespace {

[[noreturn]] void throw_kind_mismatch(const fs::path& dir, job_kind held,
                                      job_kind wanted) {
  throw run_dir_error("run_dir: " + dir.string() + " holds a " +
                      std::string(job_kind_name(held)) + " run, not " +
                      std::string(job_kind_name(wanted)));
}

}  // namespace

const sweep_manifest& run_handle::grid_manifest() const {
  if (const auto* m = std::get_if<sweep_manifest>(&manifest_)) return *m;
  throw_kind_mismatch(dir_, kind_, job_kind::scenario_grid);
}

const demand_manifest& run_handle::demand_campaign_manifest() const {
  if (const auto* m = std::get_if<demand_manifest>(&manifest_)) return *m;
  throw_kind_mismatch(dir_, kind_, job_kind::demand_campaign);
}

const experiment_manifest& run_handle::experiment_shards_manifest() const {
  if (const auto* m = std::get_if<experiment_manifest>(&manifest_)) return *m;
  throw_kind_mismatch(dir_, kind_, job_kind::experiment_shards);
}

sweep_manifest init_run_dir(const scenario_axes& axes, const scenario_config& cfg,
                            const fs::path& run_dir) {
  return run_handle::init(axes, cfg, run_dir).grid_manifest();
}

demand_manifest init_demand_run_dir(const demand_manifest& m, const fs::path& run_dir) {
  return run_handle::init(m, run_dir).demand_campaign_manifest();
}

experiment_manifest init_experiment_run_dir(const experiment_manifest& m,
                                            const fs::path& run_dir) {
  return run_handle::init(m, run_dir).experiment_shards_manifest();
}

job_kind load_run_kind(const fs::path& run_dir) {
  // Deliberately NOT run_handle::open: dispatch-only callers (the worker
  // loop chooses a decoder; merge-only chooses an output table) should not
  // pay a full manifest decode — a large axes payload — to learn one enum.
  return manifest_job_kind(peek_state_kind(read_file(manifest_path(run_dir))));
}

sweep_manifest load_run_manifest(const fs::path& run_dir) {
  return run_handle::open(run_dir).grid_manifest();
}

demand_manifest load_demand_manifest(const fs::path& run_dir) {
  return run_handle::open(run_dir).demand_campaign_manifest();
}

experiment_manifest load_experiment_manifest(const fs::path& run_dir) {
  return run_handle::open(run_dir).experiment_shards_manifest();
}

claim_sweep_report clean_stale_claims(const fs::path& run_dir, std::chrono::seconds ttl) {
  claim_sweep_report report;
  const fs::path dir = cells_dir(run_dir);
  std::error_code ec;
  if (!fs::exists(dir, ec)) return report;
  const fs::file_time_type now = filesystem_now(dir);
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".claim")) {
      claim_owner owner;
      try {
        owner = parse_claim_owner(read_file(entry.path()));
      } catch (const run_dir_error&) {
        // Unreadable (e.g. already released by its owner): fall through to
        // the lease rule with an unknown owner.
      }
      if (lease_expired_or_owner_dead(entry.path(), owner, ttl, now)) {
        if (fs::remove(entry.path(), ec) && !ec) ++report.claims_reaped;
      } else {
        ++report.claims_honored;
      }
    } else if (name.find(".tmp.") != std::string::npos) {
      if (lease_expired_or_owner_dead(entry.path(), parse_tmp_owner(name), ttl, now)) {
        if (fs::remove(entry.path(), ec) && !ec) ++report.tmps_removed;
      }
    }
  }
  return report;
}

std::vector<std::uint64_t> missing_cells(const fs::path& run_dir) {
  const job_driver d = make_job_driver(run_dir);
  const state_kind window_kind = window_kind_of(d.kind);
  std::vector<std::uint64_t> missing;
  for (std::uint64_t i = 0; i < d.cell_count; ++i) {
    if (!cell_done(run_dir, window_kind, d.fingerprint, i)) missing.push_back(i);
  }
  return missing;
}

// ---------------------------------------------------------------------------
// Lease renewal heartbeat
// ---------------------------------------------------------------------------

claim_heartbeat::claim_heartbeat(fs::path claim_path, std::string owner_body,
                                 std::chrono::milliseconds interval)
    : claim_path_(std::move(claim_path)),
      body_(std::move(owner_body)),
      interval_(interval),
      thread_([this] { run(); }) {}

claim_heartbeat::~claim_heartbeat() { stop(); }

void claim_heartbeat::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void claim_heartbeat::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (cv_.wait_for(lock, interval_, [this] { return stopping_; })) return;
    lock.unlock();
    try {
      // create=false: if a sweep reaped the claim (we beat too late, or the
      // TTL was misconfigured), the renewal must NOT resurrect it — another
      // worker may already hold a fresh claim on the same path.
      if (!active_io_env().touch(claim_path_, body_, /*create=*/false)) {
        lost_.store(true);
        return;
      }
      beats_.fetch_add(1);
    } catch (const run_dir_error&) {
      // Transient renewal failure (real or injected): the lease still has
      // most of a TTL of slack, so just let the next beat retry.
    }
    lock.lock();
  }
}

// ---------------------------------------------------------------------------
// Poison-cell quarantine ledger
// ---------------------------------------------------------------------------

namespace {

// Ledger writes deliberately bypass the io_env seam (plain ofstream): the
// machinery that REPORTS chaos must not itself be killable by chaos.  The
// records are advisory — a torn ledger degrades reporting, never merges.
void write_quarantine_record(const fs::path& run_dir, const quarantine_record& rec) {
  std::error_code ec;
  fs::create_directories(quarantine_dir(run_dir), ec);
  // reldiv-lint: allow(io-seam) the machinery that REPORTS chaos must not be killable by chaos; records are advisory and never merge
  std::ofstream f(cell_quarantine_path(run_dir, rec.cell_index),
                  std::ios::binary | std::ios::trunc);
  f << "cell " << rec.cell_index << "\nattempts " << rec.attempts << "\nerrno "
    << rec.error_number << "\nmessage " << rec.message << "\n";
}

void clear_quarantine_record(const fs::path& run_dir, std::uint64_t index) {
  std::error_code ec;
  fs::remove(cell_quarantine_path(run_dir, index), ec);
}

}  // namespace

std::vector<quarantine_record> quarantined_cells(const fs::path& run_dir) {
  std::vector<quarantine_record> records;
  const fs::path dir = quarantine_dir(run_dir);
  std::error_code ec;
  if (!fs::exists(dir, ec)) return records;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (!name.ends_with(".quarantine")) continue;
    quarantine_record rec;
    // The filename carries the index too (cell_NNNNNN.quarantine) — the
    // fallback identity for a record whose body cannot be read.
    if (name.starts_with("cell_")) {
      const std::string digits = name.substr(5, name.size() - 5 - 11);
      std::uint64_t index = 0;
      if (parse_number(digits, index)) rec.cell_index = index;
    }
    // reldiv-lint: allow(io-seam) ledger reads mirror the ledger writes: advisory reporting stays outside the injectable seam
    std::ifstream f(entry.path(), std::ios::binary);
    std::string line;
    bool parsed = false;
    while (f && std::getline(f, line)) {
      // A torn or malformed record must degrade, not throw: the ledger is
      // advisory, and quarantine_summary runs inside error reporting where
      // an escaping exception would mask the original failure.
      if (line.starts_with("cell ")) {
        std::uint64_t index = 0;
        if (parse_number(std::string_view(line).substr(5), index)) {
          rec.cell_index = index;
          parsed = true;
        }
      } else if (line.starts_with("attempts ")) {
        std::uint32_t attempts = 0;
        if (parse_number(std::string_view(line).substr(9), attempts)) {
          rec.attempts = attempts;
        }
      } else if (line.starts_with("errno ")) {
        int error_number = 0;
        if (parse_number(std::string_view(line).substr(6), error_number)) {
          rec.error_number = error_number;
        }
      } else if (line.starts_with("message ")) {
        rec.message = line.substr(8);
      }
    }
    if (!parsed && rec.message.empty()) {
      rec.message = "quarantine record unreadable or malformed";
    }
    records.push_back(std::move(rec));
  }
  std::sort(records.begin(), records.end(),
            [](const quarantine_record& a, const quarantine_record& b) {
              return a.cell_index < b.cell_index;
            });
  return records;
}

// ---------------------------------------------------------------------------
// Worker loop
// ---------------------------------------------------------------------------

namespace {

/// Releases a held claim on scope exit unless disarmed.
struct claim_guard {
  const fs::path& run_dir;
  std::uint64_t index;
  bool armed = true;
  ~claim_guard() {
    if (armed) release_claim(run_dir, index);
  }
};

}  // namespace

worker_report run_pending_cells(const fs::path& run_dir, const worker_config& cfg) {
  const job_driver d = make_job_driver(run_dir);
  const state_kind window_kind = window_kind_of(d.kind);
  const std::chrono::milliseconds heartbeat = cfg.heartbeat_interval();

  worker_report report;
  for (std::uint64_t i = 0; i < d.cell_count; ++i) {
    // Between cells only: a stop request never abandons a claimed cell, so
    // honoring it leaves no claim or .tmp behind (the drain-hygiene
    // guarantee the service layer relies on).
    if (cfg.should_stop && cfg.should_stop()) break;
    if (cfg.max_cells > 0 && report.computed >= cfg.max_cells) break;

    std::uint32_t attempts = 0;
    quarantine_record failure;
    bool settled = false;  // computed or skipped — either way, move on
    while (!settled && attempts < cfg.max_attempts) {
      try {
        if (cell_done(run_dir, window_kind, d.fingerprint, i)) {
          ++report.skipped;
          settled = true;
          break;
        }
        if (!try_claim(run_dir, i)) {
          // The holder may be a lost host's expired lease rather than a live
          // sibling: apply the lease rule to this one claim and retry once,
          // so a coordinator-less worker fleet recovers dead hosts' cells on
          // its own.  A genuinely live claim is skipped as before.
          if (!reap_claim_if_stale(run_dir, i, cfg.lease_ttl) ||
              !try_claim(run_dir, i)) {
            ++report.skipped;
            settled = true;
            break;
          }
        }
        claim_guard claim{run_dir, i};
        // A sibling may have completed the cell between the done-check and
        // our claim win; re-check before burning a cell's worth of compute.
        if (cell_done(run_dir, window_kind, d.fingerprint, i)) {
          ++report.skipped;
          settled = true;
          break;
        }
        {
          // Renew the lease while we compute: a cell whose runtime exceeds
          // the TTL keeps its claim alive beat by beat instead of being
          // reaped and recomputed by a sibling.
          claim_heartbeat beats(cell_claim_path(run_dir, i), claim_owner_body(),
                                heartbeat);
          write_file_atomic(cell_state_path(run_dir, i), d.compute(i));
          beats.stop();
          if (beats.lost()) {
            // Our claim was reaped mid-compute (sweeping with a tighter TTL
            // than ours, or a long stall).  The state file we just wrote is
            // still correct — cells are pure and the write was atomic — but
            // the claim path may now be a sibling's; don't release it.
            claim.armed = false;
          }
        }
        clear_quarantine_record(run_dir, i);
        ++report.computed;
        settled = true;
      } catch (const io_error& e) {
        ++attempts;
        failure = {i, attempts, e.error_number(), e.what()};
        if (attempts >= cfg.max_attempts) break;
        // Deterministic exponential backoff: attempt k waits base * 2^(k-1),
        // with the exponent clamped so a (mis)configured max_attempts > 32
        // cannot push the shift into undefined behaviour.
        const auto delay = cfg.backoff_base * (1u << std::min(attempts - 1, 20u));
        report.backoff_ms += static_cast<std::uint64_t>(delay.count());
        ++report.retried;
        std::this_thread::sleep_for(delay);
      }
    }
    if (!settled) {
      write_quarantine_record(run_dir, failure);
      ++report.quarantined;
    }
  }
  return report;
}

worker_report run_pending_cells(const fs::path& run_dir, std::size_t max_cells) {
  worker_config cfg;
  cfg.max_cells = max_cells;
  return run_pending_cells(run_dir, cfg);
}

std::vector<int> spawn_processes(const std::string& exe,
                                 const std::vector<std::string>& args, unsigned count) {
  std::vector<std::string> argv_store = args;
  std::vector<char*> argv;
  argv.reserve(argv_store.size() + 1);
  for (std::string& a : argv_store) argv.push_back(a.data());
  argv.push_back(nullptr);

  std::vector<int> pids;
  pids.reserve(count);
  for (unsigned w = 0; w < count; ++w) {
    pid_t pid = -1;
    const int rc =
        ::posix_spawn(&pid, exe.c_str(), nullptr, nullptr, argv.data(), environ);
    if (rc != 0) {
      // Reap what we already launched before reporting: never leak workers.
      (void)wait_sweep_workers(pids);
      throw run_dir_error("run_dir: cannot spawn " + exe + ": " + std::strerror(rc));
    }
    pids.push_back(static_cast<int>(pid));
  }
  return pids;
}

std::vector<int> spawn_sweep_workers(const std::string& worker_exe, const fs::path& run_dir,
                                     unsigned workers, std::size_t max_cells,
                                     const std::vector<std::string>& extra_args) {
  std::vector<std::string> args = {worker_exe, "--worker", "--run-dir", run_dir.string()};
  if (max_cells > 0) {
    args.emplace_back("--max-cells");
    args.emplace_back(std::to_string(max_cells));
  }
  args.insert(args.end(), extra_args.begin(), extra_args.end());
  return spawn_processes(worker_exe, args, workers);
}

std::vector<int> wait_sweep_workers(const std::vector<int>& pids) {
  std::vector<int> codes;
  codes.reserve(pids.size());
  for (const int pid : pids) {
    int status = 0;
    pid_t rc;
    do {
      rc = ::waitpid(static_cast<pid_t>(pid), &status, 0);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      codes.push_back(-1);
    } else if (WIFEXITED(status)) {
      codes.push_back(WEXITSTATUS(status));
    } else if (WIFSIGNALED(status)) {
      codes.push_back(128 + WTERMSIG(status));
    } else {
      codes.push_back(-1);
    }
  }
  return codes;
}

namespace {

/// One line per ledger entry — appended to coordinator/merge errors so the
/// operator sees exactly which cells are poisoned and why, not a generic
/// "incomplete".
std::string quarantine_summary(const fs::path& run_dir) {
  std::string out;
  for (const quarantine_record& rec : quarantined_cells(run_dir)) {
    out += "\n  quarantined cell " + std::to_string(rec.cell_index) + " (attempts " +
           std::to_string(rec.attempts) + ", errno " +
           std::to_string(rec.error_number) + "): " + rec.message;
  }
  return out;
}

[[noreturn]] void throw_incomplete(const fs::path& run_dir, std::uint64_t index,
                                   const run_dir_error& e) {
  std::string message = "run_dir: cell " + std::to_string(index) +
                        " missing or invalid — run is incomplete, rerun workers to "
                        "resume (" +
                        e.what() + ")";
  std::error_code ec;
  if (fs::exists(cell_quarantine_path(run_dir, index), ec)) {
    message += quarantine_summary(run_dir);
  }
  throw run_dir_error(std::move(message));
}

}  // namespace

namespace {

/// The three per-kind merge bodies, taking the already-validated manifest so
/// run_handle::merge never re-reads it from disk.

grid_result merge_grid_cells(const fs::path& run_dir, const sweep_manifest& m) {
  const std::uint64_t fingerprint = manifest_fingerprint(m);
  const std::vector<scenario_cell> cells = enumerate_cells(m.axes);

  grid_result out;
  out.cells.reserve(cells.size());
  for (std::uint64_t i = 0; i < cells.size(); ++i) {
    cell_state state;
    try {
      state = decode_cell_state(read_file(cell_state_path(run_dir, i)));
    } catch (const run_dir_error& e) {
      throw_incomplete(run_dir, i, e);
    }
    if (state.fingerprint != fingerprint || state.cell_index != i) {
      throw run_dir_error("run_dir: cell " + std::to_string(i) +
                          " belongs to a different run or position");
    }
    // Belt and braces: the stored coordinates must be the enumerated ones
    // (rho/omega compared as bits — they round-tripped through the wire
    // format, and adjacent cells differ in exactly these float axes).
    if (state.result.cell.universe_index != cells[i].universe_index ||
        state.result.cell.universe != cells[i].universe ||
        state.result.cell.samples != cells[i].samples ||
        state.result.cell.aliasing != cells[i].aliasing ||
        state.result.cell.versions != cells[i].versions ||
        state.result.cell.votes != cells[i].votes ||
        std::bit_cast<std::uint64_t>(state.result.cell.rho) !=
            std::bit_cast<std::uint64_t>(cells[i].rho) ||
        std::bit_cast<std::uint64_t>(state.result.cell.omega) !=
            std::bit_cast<std::uint64_t>(cells[i].omega)) {
      throw run_dir_error("run_dir: cell " + std::to_string(i) +
                          " coordinates disagree with the manifest");
    }
    out.cells.push_back(std::move(state.result));
  }
  return out;
}

demand_tally merge_demand_windows(const fs::path& run_dir, const demand_manifest& m) {
  const std::uint64_t fingerprint = demand_manifest_fingerprint(m);
  const std::uint64_t windows = m.window_count();

  demand_tally out;
  out.demands = m.demands;
  out.failures.assign(m.target_pfd.size(), 0);
  for (std::uint64_t w = 0; w < windows; ++w) {
    demand_window_state state;
    try {
      state = decode_demand_window_state(read_file(cell_state_path(run_dir, w)));
    } catch (const run_dir_error& e) {
      throw_incomplete(run_dir, w, e);
    }
    if (state.fingerprint != fingerprint || state.window_index != w) {
      throw run_dir_error("run_dir: window " + std::to_string(w) +
                          " belongs to a different run or position");
    }
    const auto [begin, end] = m.window_bounds(w);
    if (state.result.target_begin != begin || state.result.target_end != end ||
        state.result.demands != m.demands) {
      throw run_dir_error("run_dir: window " + std::to_string(w) +
                          " bounds disagree with the manifest");
    }
    // Integer counts over disjoint target windows: placement IS the merge,
    // so the assembled tally equals run_demand_campaign's exactly.
    std::copy(state.result.failures.begin(), state.result.failures.end(),
              out.failures.begin() + static_cast<std::ptrdiff_t>(begin));
  }
  return out;
}

experiment_result merge_experiment_windows(const fs::path& run_dir,
                                           const experiment_manifest& m) {
  const std::uint64_t fingerprint = experiment_manifest_fingerprint(m);
  const std::uint64_t windows = m.window_count();

  // Replay run_experiment's exact fold: an empty accumulator, then every
  // shard's accumulator in ascending shard order.  The per-shard states are
  // kept separate in the window files precisely because this pairwise fold
  // is not floating-point-associative.
  experiment_accumulator acc(m.keep_samples);
  for (std::uint64_t w = 0; w < windows; ++w) {
    experiment_window_state state;
    try {
      state = decode_experiment_window_state(read_file(cell_state_path(run_dir, w)));
    } catch (const run_dir_error& e) {
      throw_incomplete(run_dir, w, e);
    }
    if (state.fingerprint != fingerprint || state.window_index != w) {
      throw run_dir_error("run_dir: window " + std::to_string(w) +
                          " belongs to a different run or position");
    }
    const auto [begin, end] = m.window_bounds(w);
    if (state.result.shard_begin != begin || state.result.shard_end != end) {
      throw run_dir_error("run_dir: window " + std::to_string(w) +
                          " shard bounds disagree with the manifest");
    }
    for (const accumulator_state& shard : state.result.shard_states) {
      acc.merge(experiment_accumulator::from_state(shard));
    }
  }
  experiment_result result = acc.to_result(m.ci_level);
  result.shards = m.shards;
  return result;
}

}  // namespace

run_handle::result_variant run_handle::merge() const {
  switch (kind_) {
    case job_kind::scenario_grid:
      return merge_grid_cells(dir_, std::get<sweep_manifest>(manifest_));
    case job_kind::demand_campaign:
      return merge_demand_windows(dir_, std::get<demand_manifest>(manifest_));
    case job_kind::experiment_shards:
      return merge_experiment_windows(dir_, std::get<experiment_manifest>(manifest_));
  }
  throw run_dir_error("run_dir: unknown job kind");
}

merged_tables run_handle::merge_tables() const {
  merged_tables out;
  switch (kind_) {
    case job_kind::scenario_grid: {
      const grid_result grid = merge_grid_cells(dir_, std::get<sweep_manifest>(manifest_));
      out.csv = grid.to_csv();
      out.json = grid.to_json();
      out.cells = grid.cells.size();
      break;
    }
    case job_kind::demand_campaign: {
      const auto& m = std::get<demand_manifest>(manifest_);
      const demand_tally tally = merge_demand_windows(dir_, m);
      out.csv = demand_tally_csv(m, tally);
      out.json = demand_tally_json(tally);
      out.cells = m.window_count();
      break;
    }
    case job_kind::experiment_shards: {
      const auto& m = std::get<experiment_manifest>(manifest_);
      const experiment_result result = merge_experiment_windows(dir_, m);
      out.csv = experiment_result_csv(result);
      out.json = experiment_result_json(result);
      out.cells = m.window_count();
      break;
    }
  }
  return out;
}

std::string run_handle::describe() const { return describe_manifest_json(manifest_); }

grid_result merge_run_dir(const fs::path& run_dir) {
  const run_handle h = run_handle::open(run_dir);
  return merge_grid_cells(run_dir, h.grid_manifest());
}

demand_tally merge_demand_run_dir(const fs::path& run_dir) {
  const run_handle h = run_handle::open(run_dir);
  return merge_demand_windows(run_dir, h.demand_campaign_manifest());
}

experiment_result merge_experiment_run_dir(const fs::path& run_dir) {
  const run_handle h = run_handle::open(run_dir);
  return merge_experiment_windows(run_dir, h.experiment_shards_manifest());
}

// ---------------------------------------------------------------------------
// Deterministic result tables (moved here from the reldiv_sweep CLI so the
// oracle, the distributed merge and the result cache all render through the
// exact same bytes)
// ---------------------------------------------------------------------------

std::string demand_tally_csv(const demand_manifest& m, const demand_tally& t) {
  std::string out = "target,pfd,failures,rate\n";
  char buf[96];
  for (std::size_t i = 0; i < t.failures.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%zu,%.17g,%llu,%.17g\n", i, m.target_pfd[i],
                  static_cast<unsigned long long>(t.failures[i]),
                  static_cast<double>(t.failures[i]) / static_cast<double>(t.demands));
    out += buf;
  }
  return out;
}

std::string demand_tally_json(const demand_tally& t) {
  std::string out = "{\n  \"demands\": " + std::to_string(t.demands);
  out += ",\n  \"targets\": " + std::to_string(t.failures.size());
  std::uint64_t total = 0;
  for (const std::uint64_t f : t.failures) total += f;
  out += ",\n  \"total_failures\": " + std::to_string(total);
  out += ",\n  \"failures\": [";
  for (std::size_t i = 0; i < t.failures.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(t.failures[i]);
  }
  out += "]\n}\n";
  return out;
}

std::string experiment_result_csv(const experiment_result& r) {
  std::string out =
      "samples,shards,mean_theta1,sd_theta1,mean_theta2,sd_theta2,"
      "n1_positive,n2_positive,n1_zero_pfd,n2_zero_pfd,risk_ratio\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%llu,%u,%.17g,%.17g,%.17g,%.17g,%llu,%llu,%llu,%llu,%.17g\n",
                static_cast<unsigned long long>(r.samples), r.shards, r.theta1.mean(),
                r.stddev_theta1(), r.theta2.mean(), r.stddev_theta2(),
                static_cast<unsigned long long>(r.n1_positive),
                static_cast<unsigned long long>(r.n2_positive),
                static_cast<unsigned long long>(r.n1_zero_pfd),
                static_cast<unsigned long long>(r.n2_zero_pfd), r.risk_ratio());
  out += buf;
  return out;
}

std::string experiment_result_json(const experiment_result& r) {
  char buf[96];
  std::string out = "{\n  \"samples\": " + std::to_string(r.samples);
  out += ",\n  \"shards\": " + std::to_string(r.shards);
  const auto field = [&](const char* name, double v) {
    std::snprintf(buf, sizeof(buf), ",\n  \"%s\": %.17g", name, v);
    out += buf;
  };
  field("mean_theta1", r.theta1.mean());
  field("sd_theta1", r.stddev_theta1());
  field("mean_theta2", r.theta2.mean());
  field("sd_theta2", r.stddev_theta2());
  out += ",\n  \"n1_positive\": " + std::to_string(r.n1_positive);
  out += ",\n  \"n2_positive\": " + std::to_string(r.n2_positive);
  out += ",\n  \"n1_zero_pfd\": " + std::to_string(r.n1_zero_pfd);
  out += ",\n  \"n2_zero_pfd\": " + std::to_string(r.n2_zero_pfd);
  field("risk_ratio", r.risk_ratio());
  out += "\n}\n";
  return out;
}

namespace {

/// The kind-agnostic middle of every coordinator: clean stale claims, fan
/// pending cells out to worker processes, and demand completeness.  The
/// incomplete-run error names every quarantined cell, so a chaos run that
/// degraded gracefully is distinguishable from one that simply ran out of
/// quota.
void drive_pending_cells(const distributed_config& dist, const std::string& worker_exe) {
  clean_stale_claims(dist.run_dir);

  const std::vector<std::uint64_t> pending = missing_cells(dist.run_dir);
  if (pending.empty()) return;
  if (dist.workers == 0) {
    throw run_dir_error("run_dir: no workers requested but " +
                        std::to_string(pending.size()) + " cells are pending");
  }
  // No point spawning more processes than there are pending cells.
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(dist.workers, pending.size()));
  std::vector<std::string> extra_args;
  if (!dist.worker_fault_plan.empty()) {
    extra_args = {"--fault-plan", dist.worker_fault_plan};
  }
  const std::vector<int> pids = spawn_sweep_workers(worker_exe, dist.run_dir, workers,
                                                    dist.max_cells, extra_args);
  const std::vector<int> codes = wait_sweep_workers(pids);

  const std::vector<std::uint64_t> still_missing = missing_cells(dist.run_dir);
  if (!still_missing.empty()) {
    std::string detail = "worker exit codes:";
    for (const int c : codes) detail += ' ' + std::to_string(c);
    throw run_dir_error("run_dir: " + std::to_string(still_missing.size()) +
                        " cells still pending after workers finished (" + detail +
                        "); rerun to resume" + quarantine_summary(dist.run_dir));
  }
}

}  // namespace

grid_result run_distributed_grid(const scenario_axes& axes, const scenario_config& cfg,
                                 const distributed_config& dist,
                                 const std::string& worker_exe) {
  init_run_dir(axes, cfg, dist.run_dir);
  drive_pending_cells(dist, worker_exe);
  return merge_run_dir(dist.run_dir);
}

demand_tally run_distributed_demand(const demand_manifest& m,
                                    const distributed_config& dist,
                                    const std::string& worker_exe) {
  init_demand_run_dir(m, dist.run_dir);
  drive_pending_cells(dist, worker_exe);
  return merge_demand_run_dir(dist.run_dir);
}

experiment_result run_distributed_experiment(const experiment_manifest& m,
                                             const distributed_config& dist,
                                             const std::string& worker_exe) {
  init_experiment_run_dir(m, dist.run_dir);
  drive_pending_cells(dist, worker_exe);
  return merge_experiment_run_dir(dist.run_dir);
}

}  // namespace reldiv::mc
