#pragma once
// mc::run_dir — the versioned on-disk serialization layer of the
// multi-process sweep driver (ROADMAP: "shard run_experiment / scenario
// grids across *processes*.  accumulator_state / demand_tally are the wire
// formats").
//
// Every state file is one self-describing container:
//
//   [0..7]   magic  "RELDIVST"
//   [8..11]  u32 LE format version (kStateFormatVersion)
//   [12..15] u32 LE state kind (state_kind enum)
//   [16..23] u64 LE payload length
//   [24..]   payload (stats::wire encoding of the state struct)
//   [last 8] u64 LE FNV-1a checksum of every preceding byte
//
// decode rejects — with run_dir_error — short files, bad magic, unknown
// versions, kind mismatches, length mismatches and checksum failures, so a
// truncated or bit-rotted file from a killed worker can never silently
// contribute to a merged result.
//
// A sweep *run directory* is:
//
//   <run_dir>/manifest.state      authoritative binary manifest (this
//                                 container format, kind = manifest):
//                                 the full scenario_axes (universes
//                                 serialized atom-for-atom), grid seed and
//                                 shard layout, and the enumerated cell
//                                 count.  Its payload's FNV-1a hash is the
//                                 run's *fingerprint*.
//   <run_dir>/manifest.json       human-readable mirror (never parsed).
//   <run_dir>/cells/cell_NNNNNN.state
//                                 one completed cell: the run fingerprint,
//                                 the cell index, and the full
//                                 scenario_cell_result (coordinates, derived
//                                 seed, shard layout, accumulator state,
//                                 headline statistics — every double as its
//                                 exact bit pattern).
//   <run_dir>/cells/cell_NNNNNN.claim
//                                 transient worker claim marker (see
//                                 mc/distributed.hpp).
//
// Completed files are written atomically (write to a .tmp sibling, rename
// into place), so a state file either exists in full or not at all — the
// property mid-run SIGKILL + resume relies on.

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <string_view>

#include "mc/campaign.hpp"
#include "mc/experiment.hpp"
#include "mc/scenario.hpp"

namespace reldiv::mc {

/// Thrown on any malformed state file, manifest mismatch, or structurally
/// invalid run directory.
class run_dir_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::string_view kStateMagic = "RELDIVST";
inline constexpr std::uint32_t kStateFormatVersion = 1;

/// What a state-file container carries.  The kind is part of the header so
/// a demand tally handed to the scenario-cell decoder fails loudly.
enum class state_kind : std::uint32_t {
  accumulator = 1,          ///< mc::accumulator_state
  demand = 2,               ///< mc::demand_tally
  scenario_cell = 3,        ///< mc::cell_state (fingerprint + index + result)
  manifest = 4,             ///< mc::sweep_manifest (scenario-grid runs)
  demand_manifest = 5,      ///< mc::demand_manifest (demand-campaign runs)
  experiment_manifest = 6,  ///< mc::experiment_manifest (shard-window runs)
  demand_window = 7,        ///< mc::demand_window_state
  experiment_window = 8,    ///< mc::experiment_window_state
  cached_result = 9,        ///< mc::cached_result (memoized merge front-end)
};

/// The three work units the distributed driver can fan out.  A run
/// directory's kind is decided by which manifest kind its manifest.state
/// holds; every cell/window file kind must match it.
enum class job_kind : std::uint32_t {
  scenario_grid = 1,      ///< cells are scenario cells (run_scenario_cell)
  demand_campaign = 2,    ///< cells are roster windows (run_demand_window)
  experiment_shards = 3,  ///< cells are shard windows (run_experiment_window)
};

/// Human-readable name of a job kind ("scenario_grid", "demand_campaign",
/// "experiment_shards") for diagnostics and the service status JSON.
[[nodiscard]] std::string_view job_kind_name(job_kind kind);

/// Manifest state kind of a job kind, and back.  manifest_job_kind throws
/// run_dir_error for a non-manifest state kind.
[[nodiscard]] state_kind manifest_kind_of(job_kind kind);
[[nodiscard]] job_kind manifest_job_kind(state_kind kind);
/// Cell/window state kind the driver writes for a job kind.
[[nodiscard]] state_kind window_kind_of(job_kind kind);

// ---------------------------------------------------------------------------
// Container framing
// ---------------------------------------------------------------------------

/// Wrap a payload in the versioned, checksummed container.
[[nodiscard]] std::string encode_state_blob(state_kind kind, std::string_view payload);

/// Validate a container (magic, version, kind, length, checksum) and return
/// its payload.  Throws run_dir_error on any defect.
[[nodiscard]] std::string_view decode_state_blob(state_kind expected_kind,
                                                 std::string_view blob);

/// Validate a container's integrity (magic, version, length, checksum — every
/// check decode_state_blob performs except the kind comparison) and return
/// the kind it declares.  How the generic driver discovers what job kind a
/// run directory holds before choosing a typed decoder.
[[nodiscard]] state_kind peek_state_kind(std::string_view blob);

// ---------------------------------------------------------------------------
// Typed state codecs (full container in, full container out)
// ---------------------------------------------------------------------------

[[nodiscard]] std::string encode_accumulator_state(const accumulator_state& s);
[[nodiscard]] accumulator_state decode_accumulator_state(std::string_view blob);

[[nodiscard]] std::string encode_demand_tally(const demand_tally& t);
[[nodiscard]] demand_tally decode_demand_tally(std::string_view blob);

/// Payload of one completed scenario cell: which run it belongs to
/// (manifest fingerprint), which cell it is, and the full result.
struct cell_state {
  std::uint64_t fingerprint = 0;
  std::uint64_t cell_index = 0;
  scenario_cell_result result;
};

[[nodiscard]] std::string encode_cell_state(const cell_state& c);
[[nodiscard]] cell_state decode_cell_state(std::string_view blob);

/// A cell file's identity fields.  The fingerprint and index lead the
/// payload precisely so done-ness scans can validate a file without
/// materializing the full result (the accumulator's kept-sample vectors can
/// dominate a large file).
struct cell_identity {
  std::uint64_t fingerprint = 0;
  std::uint64_t cell_index = 0;
};

/// Validate the container (magic, version, kind, length, checksum — the
/// same integrity guarantees as the full decoder) and return just the
/// identity prefix, with no payload decode or allocation.  Every cell/window
/// payload leads with (fingerprint, index) precisely so done-ness scans can
/// validate a file this cheaply; `kind` selects which window kind the file
/// must hold.
[[nodiscard]] cell_identity peek_cell_identity(state_kind kind, std::string_view blob);
/// Scenario-cell shorthand (the original PR 4 entry point).
[[nodiscard]] cell_identity peek_cell_identity(std::string_view blob);

// ---------------------------------------------------------------------------
// Demand-campaign and experiment shard-window state files
// ---------------------------------------------------------------------------

/// Payload of one completed demand window: which run it belongs to, which
/// window it is, and the window's slice of the campaign tally.
struct demand_window_state {
  std::uint64_t fingerprint = 0;
  std::uint64_t window_index = 0;
  demand_window_result result;
};

[[nodiscard]] std::string encode_demand_window_state(const demand_window_state& s);
[[nodiscard]] demand_window_state decode_demand_window_state(std::string_view blob);

/// Payload of one completed experiment shard window: run fingerprint, window
/// index, and the per-shard accumulator states (kept separate so the merge
/// can replay run_experiment's exact left fold — see experiment_window_result).
struct experiment_window_state {
  std::uint64_t fingerprint = 0;
  std::uint64_t window_index = 0;
  experiment_window_result result;
};

[[nodiscard]] std::string encode_experiment_window_state(const experiment_window_state& s);
[[nodiscard]] experiment_window_state decode_experiment_window_state(std::string_view blob);

// ---------------------------------------------------------------------------
// Memoized merge results (mc::result_cache entries — see mc/service.hpp)
// ---------------------------------------------------------------------------

/// One fully merged run, keyed by its manifest fingerprint: the job kind it
/// came from and the rendered CSV/JSON tables.  The fingerprint already
/// uniquely keys every cell's inputs, so an entry with a matching
/// fingerprint IS the run's result — re-submitting an identical manifest can
/// be served from this record without recomputing a single cell.
struct cached_result {
  job_kind kind = job_kind::scenario_grid;
  std::uint64_t fingerprint = 0;
  std::string csv;
  std::string json;
};

[[nodiscard]] std::string encode_cached_result(const cached_result& c);
[[nodiscard]] cached_result decode_cached_result(std::string_view blob);

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// The run's identity: everything a worker process needs to reproduce the
/// exact single-process grid — the full axes (universes atom-for-atom), the
/// grid seed, the per-cell shard override, and the enumerated cell count
/// (stored for validation; recomputed on load).
struct sweep_manifest {
  scenario_axes axes;
  std::uint64_t seed = 1;
  unsigned shards = 0;        ///< scenario_config::shards (0 = budget-scaled)
  std::uint64_t cell_count = 0;

  /// The scenario_config this manifest pins (threads left at the caller's
  /// discretion — it is a throughput knob, never part of the identity).
  [[nodiscard]] scenario_config config(unsigned threads = 0) const {
    return scenario_config{.seed = seed, .threads = threads, .shards = shards};
  }
};

[[nodiscard]] std::string encode_manifest(const sweep_manifest& m);
[[nodiscard]] sweep_manifest decode_manifest(std::string_view blob);

/// The run fingerprint: FNV-1a of the manifest *payload* bytes.  Recorded in
/// every cell state file; a cell file from a different grid/seed/shard
/// layout can never be merged into this run.
[[nodiscard]] std::uint64_t manifest_fingerprint(const sweep_manifest& m);

/// Human-readable JSON mirror of the manifest (axes summary + identity
/// fields).  Written next to the binary manifest for operators and CI
/// artifacts; never parsed back.
[[nodiscard]] std::string manifest_json(const sweep_manifest& m);

// Demand-campaign manifest (kind = demand_manifest).  The payload leads with
// the job kind so the three manifest payloads can never alias under the
// fingerprint hash.
[[nodiscard]] std::string encode_demand_manifest(const demand_manifest& m);
[[nodiscard]] demand_manifest decode_demand_manifest(std::string_view blob);
[[nodiscard]] std::uint64_t demand_manifest_fingerprint(const demand_manifest& m);
[[nodiscard]] std::string demand_manifest_json(const demand_manifest& m);

// Experiment shard-window manifest (kind = experiment_manifest).
[[nodiscard]] std::string encode_experiment_manifest(const experiment_manifest& m);
[[nodiscard]] experiment_manifest decode_experiment_manifest(std::string_view blob);
[[nodiscard]] std::uint64_t experiment_manifest_fingerprint(const experiment_manifest& m);
[[nodiscard]] std::string experiment_manifest_json(const experiment_manifest& m);

// ---------------------------------------------------------------------------
// Filesystem layer
// ---------------------------------------------------------------------------

/// This host's name as recorded in claim files and .tmp suffixes (cached
/// gethostname, sanitized to a filename-safe token; "localhost" when the
/// name cannot be read).
[[nodiscard]] const std::string& claim_host_name();

/// Write-temp + rename: `path` either holds the complete contents or is
/// untouched, even if the writer is SIGKILLed — or the host power-cut —
/// mid-write.  The temp sibling lives in the same directory (rename is
/// atomic only within a filesystem) and is named `<path>.tmp.<host>.<pid>`
/// so concurrent writers — including same-pid writers on different hosts
/// sharing the filesystem — never collide, and stale-claim sweeps can probe
/// the owner.  Crash durability: the temp file is fsync'd before the rename
/// and the parent directory after it, so a power cut can never surface a
/// zero-length "committed" state file.  All syscalls route through the
/// active mc::io_env (see mc/io_env.hpp), so fault-injection plans can hit
/// every step; failures raise io_error carrying path + operation + errno.
void write_file_atomic(const std::filesystem::path& path, std::string_view contents);

/// Read a whole file through the active io_env; throws io_error (a
/// run_dir_error carrying path + operation + errno) if it cannot be
/// opened/read.
[[nodiscard]] std::string read_file(const std::filesystem::path& path);

// Run-directory layout.
[[nodiscard]] std::filesystem::path manifest_path(const std::filesystem::path& run_dir);
[[nodiscard]] std::filesystem::path cells_dir(const std::filesystem::path& run_dir);
[[nodiscard]] std::filesystem::path cell_state_path(const std::filesystem::path& run_dir,
                                                    std::uint64_t cell_index);
[[nodiscard]] std::filesystem::path cell_claim_path(const std::filesystem::path& run_dir,
                                                    std::uint64_t cell_index);

// Poison-cell ledger: a cell that keeps failing with I/O errors past its
// retry budget is recorded under <run_dir>/quarantine/cell_NNNNNN.quarantine
// (cell index, attempts, last errno) instead of being recomputed forever.
// See mc/distributed.hpp for the worker/merge semantics.
[[nodiscard]] std::filesystem::path quarantine_dir(const std::filesystem::path& run_dir);
[[nodiscard]] std::filesystem::path cell_quarantine_path(
    const std::filesystem::path& run_dir, std::uint64_t cell_index);

}  // namespace reldiv::mc
