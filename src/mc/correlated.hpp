#pragma once
// Section 6.1 sensitivity machinery: the model assumes mistakes are made
// independently ("as though the design team ... tossed dice").  The paper
// argues both positive correlation (common conceptual errors) and negative
// correlation (effort trade-offs under schedule pressure) are plausible,
// and that predictions should be checked against them.  Two correlated
// fault-introduction samplers:
//
// * common_cause_mixture — with probability rho a development is "stressed"
//   and every p_i is inflated by a factor (capped at 1); otherwise p_i is
//   deflated so the *marginal* presence probability stays exactly p_i.
//   Induces positive pairwise correlation between fault indicators within a
//   version.
//
// * gaussian_copula — latent equicorrelated normals Z_i = sqrt(|rho|)·Z0 ±
//   sqrt(1−|rho|)·E_i thresholded at Φ⁻¹(p_i).  rho > 0 gives positive
//   association, rho < 0 is emulated by flipping the shared factor's sign
//   for alternate faults (an antithetic construction producing negative
//   pairwise association while preserving marginals).

#include <stdexcept>

#include "core/fault_universe.hpp"
#include "mc/sampler.hpp"
#include "stats/random.hpp"

namespace reldiv::mc {

/// Common-cause mixture with exact marginals.
///
/// With probability `rho` the version is developed under a common stress
/// that multiplies every presence probability by `stress` (capped at 1);
/// with probability 1−rho the probabilities are deflated to keep the
/// marginal P(fault i present) == p_i.  Requires rho in [0,1),
/// stress >= 1, and rho*min(stress*p_i,1) <= p_i for deflation feasibility
/// (throws std::invalid_argument otherwise).
class common_cause_mixture {
 public:
  common_cause_mixture(const core::fault_universe& u, double rho, double stress);

  [[nodiscard]] version sample(stats::rng& r) const;
  /// Mask-based sampling: same rng decisions as sample() (bit-exact), writes
  /// presence bits into `out` with no allocation in steady-state reuse.
  void sample_mask(stats::rng& r, core::fault_mask& out) const;
  /// Exact marginal presence probability of fault i (== u[i].p by design).
  [[nodiscard]] double marginal(std::size_t i) const;
  /// Exact pairwise correlation of the presence indicators of faults i, j.
  [[nodiscard]] double indicator_correlation(std::size_t i, std::size_t j) const;

 private:
  const core::fault_universe* u_;
  double rho_;
  std::vector<double> stressed_p_;
  std::vector<double> relaxed_p_;
  std::vector<std::uint64_t> stressed_thresh_;  ///< bernoulli_threshold(stressed_p_)
  std::vector<std::uint64_t> relaxed_thresh_;   ///< bernoulli_threshold(relaxed_p_)
};

/// Gaussian-copula sampler with equicorrelation |rho| and sign(rho)
/// association; marginals are exact.
class gaussian_copula_sampler {
 public:
  gaussian_copula_sampler(const core::fault_universe& u, double rho);

  [[nodiscard]] version sample(stats::rng& r) const;
  /// Mask-based sampling: same rng decisions as sample() (bit-exact).
  void sample_mask(stats::rng& r, core::fault_mask& out) const;

 private:
  const core::fault_universe* u_;
  double rho_;
  std::vector<double> thresholds_;  ///< Φ⁻¹(p_i)
};

/// Correlated-development experiment: same outputs as run_experiment but
/// versions are drawn from `sampler` (anything with
/// `version sample(stats::rng&) const`).
struct correlated_result {
  double mean_theta1 = 0.0;
  double mean_theta2 = 0.0;
  double prob_n1_positive = 0.0;
  double prob_n2_positive = 0.0;
  double risk_ratio = 0.0;  ///< empirical eq. (10)
  std::uint64_t samples = 0;
};

template <typename Sampler>
[[nodiscard]] correlated_result run_correlated(const core::fault_universe& u,
                                               const Sampler& sampler,
                                               std::uint64_t samples, std::uint64_t seed) {
  stats::rng r(seed);
  correlated_result out;
  out.samples = samples;
  std::uint64_t n1_pos = 0;
  std::uint64_t n2_pos = 0;
  double sum1 = 0.0;
  double sum2 = 0.0;
  constexpr bool has_mask_path =
      requires(const Sampler& s, stats::rng& rr, core::fault_mask& m) {
        s.sample_mask(rr, m);
      };
  if constexpr (has_mask_path) {
    // Bitset path: two reused scratch masks, allocation-free steady state.
    core::fault_mask a(u.size());
    core::fault_mask b(u.size());
    for (std::uint64_t s = 0; s < samples; ++s) {
      sampler.sample_mask(r, a);
      sampler.sample_mask(r, b);
      if (a.bit_size() != u.size() || b.bit_size() != u.size()) {
        // Same guard the sparse path gets from pfd_of's range check.
        throw std::out_of_range("run_correlated: sampler does not match universe");
      }
      sum1 += core::masked_q_sum(a, u.q_array());
      const auto pair = core::intersect_q_sum(a, b, u.q_array());
      sum2 += pair.pfd;
      if (a.any()) ++n1_pos;
      if (pair.any_common) ++n2_pos;
    }
  } else {
    for (std::uint64_t s = 0; s < samples; ++s) {
      const version a = sampler.sample(r);
      const version b = sampler.sample(r);
      sum1 += pfd_of(a, u);
      sum2 += pair_pfd(a, b, u);
      if (a.has_fault()) ++n1_pos;
      if (!common_faults(a, b).empty()) ++n2_pos;
    }
  }
  const auto n = static_cast<double>(samples);
  out.mean_theta1 = sum1 / n;
  out.mean_theta2 = sum2 / n;
  out.prob_n1_positive = static_cast<double>(n1_pos) / n;
  out.prob_n2_positive = static_cast<double>(n2_pos) / n;
  out.risk_ratio = n1_pos > 0 ? static_cast<double>(n2_pos) / static_cast<double>(n1_pos)
                              : 0.0;
  return out;
}

/// The §6.1 "merge positively correlated faults" approximation: collapse
/// groups of faults into single super-faults whose failure region is the
/// union (q summed, p set to the group maximum — the perfectly-correlated
/// limit where the group occurs together).
[[nodiscard]] core::fault_universe merge_fault_groups(
    const core::fault_universe& u, const std::vector<std::vector<std::size_t>>& groups);

}  // namespace reldiv::mc
