#pragma once
// Section 6.1 sensitivity machinery: the model assumes mistakes are made
// independently ("as though the design team ... tossed dice").  The paper
// argues both positive correlation (common conceptual errors) and negative
// correlation (effort trade-offs under schedule pressure) are plausible,
// and that predictions should be checked against them.  Two correlated
// fault-introduction samplers:
//
// * common_cause_mixture — with probability rho a development is "stressed"
//   and every p_i is inflated by a factor (capped at 1); otherwise p_i is
//   deflated so the *marginal* presence probability stays exactly p_i.
//   Induces positive pairwise correlation between fault indicators within a
//   version.
//
// * gaussian_copula — latent equicorrelated normals Z_i = sqrt(|rho|)·Z0 ±
//   sqrt(1−|rho|)·E_i thresholded at Φ⁻¹(p_i).  rho > 0 gives positive
//   association, rho < 0 is emulated by flipping the shared factor's sign
//   for alternate faults (an antithetic construction producing negative
//   pairwise association while preserving marginals).

#include <stdexcept>

#include "core/fault_universe.hpp"
#include "mc/experiment.hpp"
#include "mc/sampler.hpp"
#include "mc/shard_runner.hpp"
#include "stats/random.hpp"

namespace reldiv::mc {

/// Common-cause mixture with exact marginals.
///
/// With probability `rho` the version is developed under a common stress
/// that multiplies every presence probability by `stress` (capped at 1);
/// with probability 1−rho the probabilities are deflated to keep the
/// marginal P(fault i present) == p_i.  Requires rho in [0,1),
/// stress >= 1, and rho*min(stress*p_i,1) <= p_i for deflation feasibility
/// (throws std::invalid_argument otherwise).
class common_cause_mixture {
 public:
  common_cause_mixture(const core::fault_universe& u, double rho, double stress);

  [[nodiscard]] version sample(stats::rng& r) const;
  /// Mask-based sampling: same rng decisions as sample() (bit-exact), writes
  /// presence bits into `out` with no allocation in steady-state reuse.
  void sample_mask(stats::rng& r, core::fault_mask& out) const;
  /// Exact marginal presence probability of fault i (== u[i].p by design).
  [[nodiscard]] double marginal(std::size_t i) const;
  /// Exact pairwise correlation of the presence indicators of faults i, j.
  [[nodiscard]] double indicator_correlation(std::size_t i, std::size_t j) const;

 private:
  const core::fault_universe* u_;
  double rho_;
  std::vector<double> marginal_;  ///< preserved marginals (== u[i].p exactly)
  std::vector<double> stressed_p_;
  std::vector<double> relaxed_p_;
  std::vector<std::uint64_t> stressed_thresh_;  ///< bernoulli_threshold(stressed_p_)
  std::vector<std::uint64_t> relaxed_thresh_;   ///< bernoulli_threshold(relaxed_p_)
};

/// Gaussian-copula sampler with equicorrelation |rho| and sign(rho)
/// association; marginals are exact.
class gaussian_copula_sampler {
 public:
  gaussian_copula_sampler(const core::fault_universe& u, double rho);

  [[nodiscard]] version sample(stats::rng& r) const;
  /// Mask-based sampling: same rng decisions as sample() (bit-exact).
  void sample_mask(stats::rng& r, core::fault_mask& out) const;

 private:
  const core::fault_universe* u_;
  double rho_;
  std::vector<double> thresholds_;  ///< Φ⁻¹(p_i)
};

/// Correlated-development experiment: same outputs as run_experiment but
/// versions are drawn from `sampler` (anything with
/// `version sample(stats::rng&) const`).
struct correlated_result {
  double mean_theta1 = 0.0;
  double mean_theta2 = 0.0;
  double prob_n1_positive = 0.0;
  double prob_n2_positive = 0.0;
  double risk_ratio = 0.0;  ///< empirical eq. (10)
  std::uint64_t samples = 0;
  unsigned shards = 0;  ///< logical shard layout (result identity; 0 = serial)
};

/// Runner knobs for run_correlated.  Like run_experiment, thread count is a
/// throughput knob only: results are bit-identical for a given (seed,
/// samples, shards) across any `threads` value.
struct correlated_config {
  unsigned threads = 0;  ///< workers; 0 = hardware_concurrency
  unsigned shards = 0;   ///< logical rng streams; 0 = the budget-scaled
                         ///< default_logical_shards(samples)
};

namespace detail {

/// Shared inner loop of the serial and sharded correlated runners: draw
/// `samples` pairs from `sampler` using `r` and fold them into `acc`.
/// Prefers the allocation-free mask path when the sampler provides one.
template <typename Sampler>
void accumulate_correlated(const core::fault_universe& u, const Sampler& sampler,
                           std::uint64_t samples, stats::rng& r,
                           experiment_accumulator& acc) {
  constexpr bool has_mask_path =
      requires(const Sampler& s, stats::rng& rr, core::fault_mask& m) {
        s.sample_mask(rr, m);
      };
  if constexpr (has_mask_path) {
    // Bitset path: two reused scratch masks, allocation-free steady state.
    core::fault_mask a(u.size());
    core::fault_mask b(u.size());
    for (std::uint64_t s = 0; s < samples; ++s) {
      sampler.sample_mask(r, a);
      sampler.sample_mask(r, b);
      if (a.bit_size() != u.size() || b.bit_size() != u.size()) {
        // Same guard the sparse path gets from pfd_of's range check.
        throw std::out_of_range("run_correlated: sampler does not match universe");
      }
      const double t1 = core::masked_q_sum(a, u.q_array());
      const auto pair = core::intersect_q_sum(a, b, u.q_array());
      acc.add(t1, pair.pfd, a.any(), pair.any_common);
    }
  } else {
    for (std::uint64_t s = 0; s < samples; ++s) {
      const version a = sampler.sample(r);
      const version b = sampler.sample(r);
      acc.add(pfd_of(a, u), pair_pfd(a, b, u), a.has_fault(),
              !common_faults(a, b).empty());
    }
  }
}

[[nodiscard]] inline correlated_result to_correlated_result(
    const experiment_accumulator& acc) {
  correlated_result out;
  out.samples = acc.samples();
  const auto n = static_cast<double>(acc.samples());
  out.mean_theta1 = acc.theta1().mean();
  out.mean_theta2 = acc.theta2().mean();
  out.prob_n1_positive = static_cast<double>(acc.n1_positive()) / n;
  out.prob_n2_positive = static_cast<double>(acc.n2_positive()) / n;
  out.risk_ratio = acc.n1_positive() > 0
                       ? static_cast<double>(acc.n2_positive()) /
                             static_cast<double>(acc.n1_positive())
                       : 0.0;
  return out;
}

}  // namespace detail

/// Multithreaded correlated runner on the shard_runner subsystem: the sample
/// budget is split over fixed logical shards, each with its own
/// stats::rng::stream(seed, shard), so results do not depend on
/// cfg.threads.  `Sampler::sample(_mask)` must be const-thread-safe (all
/// samplers in this library are: their const methods only read immutable
/// tables).
template <typename Sampler>
[[nodiscard]] correlated_result run_correlated(const core::fault_universe& u,
                                               const Sampler& sampler,
                                               std::uint64_t samples, std::uint64_t seed,
                                               const correlated_config& cfg = {}) {
  if (samples == 0) throw std::invalid_argument("run_correlated: samples > 0");
  const shard_plan plan = make_shard_plan(samples, cfg.shards);
  experiment_accumulator total;
  run_shards(
      plan, seed, cfg.threads,
      [&u, &sampler](unsigned /*shard*/, std::uint64_t count, stats::rng& r) {
        experiment_accumulator acc;
        detail::accumulate_correlated(u, sampler, count, r, acc);
        return acc;
      },
      [&total](unsigned /*shard*/, experiment_accumulator&& acc) { total.merge(acc); });
  correlated_result out = detail::to_correlated_result(total);
  out.shards = plan.shard_count;
  return out;
}

/// Single-threaded single-stream reference runner (the pre-shard-runner
/// layout: one rng(seed) consumed sequentially).  Kept as the statistical
/// baseline the sharded runner is tested and benchmarked against.
template <typename Sampler>
[[nodiscard]] correlated_result run_correlated_serial(const core::fault_universe& u,
                                                      const Sampler& sampler,
                                                      std::uint64_t samples,
                                                      std::uint64_t seed) {
  if (samples == 0) throw std::invalid_argument("run_correlated: samples > 0");
  stats::rng r(seed);
  experiment_accumulator acc;
  detail::accumulate_correlated(u, sampler, samples, r, acc);
  return detail::to_correlated_result(acc);
}

/// The §6.1 "merge positively correlated faults" approximation: collapse
/// groups of faults into single super-faults whose failure region is the
/// union (q summed, p set to the group maximum — the perfectly-correlated
/// limit where the group occurs together).  A group whose q's sum past 1
/// would not be a probability (the regions cannot be disjoint): throws
/// std::invalid_argument.
[[nodiscard]] core::fault_universe merge_fault_groups(
    const core::fault_universe& u, const std::vector<std::vector<std::size_t>>& groups);

}  // namespace reldiv::mc
