#include "mc/run_dir.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <utility>

#include "mc/io_env.hpp"
#include "stats/wire.hpp"

namespace reldiv::mc {

namespace fs = std::filesystem;
using stats::wire_reader;
using stats::wire_writer;

namespace {

// Vector codecs with a length sanity check: a mangled length prefix must
// throw, not drive a multi-exabyte reserve.
void write_f64_vec(wire_writer& w, const std::vector<double>& v) {
  w.put_u64(v.size());
  for (const double x : v) w.put_f64(x);
}

std::vector<double> read_f64_vec(wire_reader& r) {
  const std::uint64_t n = r.get_u64();
  if (n > r.remaining() / 8) throw stats::wire_error("wire: vector length exceeds buffer");
  std::vector<double> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.get_f64());
  return v;
}

void write_u64_vec(wire_writer& w, const std::vector<std::uint64_t>& v) {
  w.put_u64(v.size());
  for (const std::uint64_t x : v) w.put_u64(x);
}

std::vector<std::uint64_t> read_u64_vec(wire_reader& r) {
  const std::uint64_t n = r.get_u64();
  if (n > r.remaining() / 8) throw stats::wire_error("wire: vector length exceeds buffer");
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.get_u64());
  return v;
}

// Payload-level codecs (no container framing) so composite states can nest.

void write_accumulator_payload(wire_writer& w, const accumulator_state& s) {
  w.put_u64(s.samples);
  stats::write_moments_state(w, s.theta1);
  stats::write_moments_state(w, s.theta2);
  w.put_u64(s.n1_positive);
  w.put_u64(s.n2_positive);
  w.put_u64(s.n1_zero_pfd);
  w.put_u64(s.n2_zero_pfd);
  w.put_u8(s.keeping_samples ? 1 : 0);
  write_f64_vec(w, s.theta1_samples);
  write_f64_vec(w, s.theta2_samples);
}

accumulator_state read_accumulator_payload(wire_reader& r) {
  accumulator_state s;
  s.samples = r.get_u64();
  s.theta1 = stats::read_moments_state(r);
  s.theta2 = stats::read_moments_state(r);
  s.n1_positive = r.get_u64();
  s.n2_positive = r.get_u64();
  s.n1_zero_pfd = r.get_u64();
  s.n2_zero_pfd = r.get_u64();
  s.keeping_samples = r.get_u8() != 0;
  s.theta1_samples = read_f64_vec(r);
  s.theta2_samples = read_f64_vec(r);
  return s;
}

void write_cell_payload(wire_writer& w, const cell_state& c) {
  w.put_u64(c.fingerprint);
  w.put_u64(c.cell_index);
  const scenario_cell_result& res = c.result;
  w.put_u64(res.cell.universe_index);
  w.put_bytes(res.cell.universe);
  w.put_f64(res.cell.rho);
  w.put_f64(res.cell.omega);
  w.put_u64(res.cell.aliasing);
  w.put_u64(res.cell.samples);
  w.put_u64(res.seed);
  w.put_u32(res.shards);
  write_accumulator_payload(w, res.state);
  w.put_f64(res.mean_theta1);
  w.put_f64(res.mean_theta2);
  w.put_f64(res.prob_n1_positive);
  w.put_f64(res.prob_n2_positive);
  w.put_f64(res.risk_ratio);
  w.put_f64(res.p_max_true);
  w.put_f64(res.p_max_naive);
  // Adjudication coordinates append only when off the paper's {2,2} pair,
  // so baseline cell files stay byte-identical to earlier releases.
  if (res.cell.versions != 2 || res.cell.votes != 2) {
    w.put_u32(res.cell.versions);
    w.put_u32(res.cell.votes);
  }
}

cell_state read_cell_payload(wire_reader& r) {
  cell_state c;
  c.fingerprint = r.get_u64();
  c.cell_index = r.get_u64();
  scenario_cell_result& res = c.result;
  res.cell.universe_index = r.get_u64();
  res.cell.universe = std::string(r.get_bytes());
  res.cell.rho = r.get_f64();
  res.cell.omega = r.get_f64();
  res.cell.aliasing = r.get_u64();
  res.cell.samples = r.get_u64();
  res.seed = r.get_u64();
  res.shards = r.get_u32();
  res.state = read_accumulator_payload(r);
  res.mean_theta1 = r.get_f64();
  res.mean_theta2 = r.get_f64();
  res.prob_n1_positive = r.get_f64();
  res.prob_n2_positive = r.get_f64();
  res.risk_ratio = r.get_f64();
  res.p_max_true = r.get_f64();
  res.p_max_naive = r.get_f64();
  if (r.remaining() > 0) {
    res.cell.versions = r.get_u32();
    res.cell.votes = r.get_u32();
  }
  return c;
}

/// True when the extended axes sit at their historical defaults — such a
/// manifest is written WITHOUT the extension block, so its payload bytes
/// (and therefore its fingerprint) are identical to every earlier release.
bool axes_extension_is_default(const scenario_axes& axes) {
  return axes.rho_model == correlation_model::mixture && axes.adjudications.size() == 1 &&
         axes.adjudications[0].versions == 2 &&
         axes.adjudications[0].votes_to_defeat == 2 && axes.cell_budgets.empty();
}

// Version tag of the appended axes-extension block (append-only, like the
// engine wire values).
constexpr std::uint32_t kAxesExtensionVersion = 1;

void write_manifest_payload(wire_writer& w, const sweep_manifest& m) {
  w.put_u64(m.seed);
  w.put_u32(m.shards);
  w.put_f64(m.axes.stress);
  w.put_u64(m.axes.universes.size());
  for (const auto& [name, universe] : m.axes.universes) {
    w.put_bytes(name);
    w.put_u64(universe.size());
    for (const auto& atom : universe.atoms()) {
      w.put_f64(atom.p);
      w.put_f64(atom.q);
    }
  }
  write_f64_vec(w, m.axes.correlations);
  write_f64_vec(w, m.axes.overlaps);
  {
    std::vector<std::uint64_t> aliasing(m.axes.aliasing.begin(), m.axes.aliasing.end());
    write_u64_vec(w, aliasing);
  }
  write_u64_vec(w, m.axes.budgets);
  w.put_u64(m.cell_count);
  // Extended axes (correlation model, k-out-of-m adjudication, per-cell
  // refinement budgets) append AFTER the historical payload and only when
  // non-default; the reader takes their absence as the defaults.
  if (!axes_extension_is_default(m.axes)) {
    w.put_u32(kAxesExtensionVersion);
    w.put_u32(static_cast<std::uint32_t>(m.axes.rho_model));
    w.put_u64(m.axes.adjudications.size());
    for (const core::architecture& arch : m.axes.adjudications) {
      w.put_u32(arch.versions);
      w.put_u32(arch.votes_to_defeat);
    }
    write_u64_vec(w, m.axes.cell_budgets);
  }
}

sweep_manifest read_manifest_payload(wire_reader& r) {
  sweep_manifest m;
  m.seed = r.get_u64();
  m.shards = r.get_u32();
  m.axes.stress = r.get_f64();
  const std::uint64_t universes = r.get_u64();
  if (universes > r.remaining() / 8) {
    throw stats::wire_error("wire: universe count exceeds buffer");
  }
  m.axes.universes.reserve(universes);
  for (std::uint64_t u = 0; u < universes; ++u) {
    std::string name(r.get_bytes());
    const std::uint64_t n = r.get_u64();
    if (n > r.remaining() / 16) throw stats::wire_error("wire: universe size exceeds buffer");
    std::vector<double> p;
    std::vector<double> q;
    p.reserve(n);
    q.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      p.push_back(r.get_f64());
      q.push_back(r.get_f64());
    }
    // allow_q_overflow: a deliberately pessimistic §6.2 universe must
    // round-trip; per-atom range validation still applies.
    m.axes.universes.emplace_back(
        std::move(name), core::fault_universe::from_arrays(p, q, /*allow_q_overflow=*/true));
  }
  m.axes.correlations = read_f64_vec(r);
  m.axes.overlaps = read_f64_vec(r);
  {
    const std::vector<std::uint64_t> aliasing = read_u64_vec(r);
    m.axes.aliasing.assign(aliasing.begin(), aliasing.end());
  }
  m.axes.budgets = read_u64_vec(r);
  m.cell_count = r.get_u64();
  if (r.remaining() > 0) {
    const std::uint32_t ext = r.get_u32();
    if (ext != kAxesExtensionVersion) {
      throw stats::wire_error("wire: unknown axes extension version " +
                              std::to_string(ext));
    }
    const std::uint32_t model = r.get_u32();
    if (model > static_cast<std::uint32_t>(correlation_model::copula)) {
      throw stats::wire_error("wire: unknown correlation model " + std::to_string(model));
    }
    m.axes.rho_model = static_cast<correlation_model>(model);
    const std::uint64_t archs = r.get_u64();
    if (archs > r.remaining() / 8) {
      throw stats::wire_error("wire: adjudication count exceeds buffer");
    }
    m.axes.adjudications.clear();
    m.axes.adjudications.reserve(archs);
    for (std::uint64_t i = 0; i < archs; ++i) {
      core::architecture arch;
      arch.versions = r.get_u32();
      arch.votes_to_defeat = r.get_u32();
      m.axes.adjudications.push_back(arch);
    }
    m.axes.cell_budgets = read_u64_vec(r);
  }
  return m;
}

/// Decode a typed payload, translating wire/validation failures into
/// run_dir_error (a payload that passed the checksum but fails to parse is a
/// format bug or a version-1 file written by a newer incompatible writer).
template <typename Fn>
auto decode_payload(state_kind kind, std::string_view blob, Fn&& read) {
  const std::string_view payload = decode_state_blob(kind, blob);
  try {
    wire_reader r(payload);
    auto value = read(r);
    r.expect_done();
    return value;
  } catch (const stats::wire_error& e) {
    throw run_dir_error(std::string("run_dir: state payload malformed: ") + e.what());
  } catch (const std::invalid_argument& e) {
    throw run_dir_error(std::string("run_dir: state payload invalid: ") + e.what());
  }
}

void append_json_f64_array(std::string& out, const std::vector<double>& v) {
  out += '[';
  char buf[64];
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ',';
    std::snprintf(buf, sizeof(buf), "%.17g", v[i]);
    out += buf;
  }
  out += ']';
}

template <typename T>
void append_json_u64_array(std::string& out, const std::vector<T>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(static_cast<std::uint64_t>(v[i]));
  }
  out += ']';
}

}  // namespace

// ---------------------------------------------------------------------------
// Container framing
// ---------------------------------------------------------------------------

std::string encode_state_blob(state_kind kind, std::string_view payload) {
  wire_writer w;
  for (const char c : kStateMagic) w.put_u8(static_cast<std::uint8_t>(c));
  w.put_u32(kStateFormatVersion);
  w.put_u32(static_cast<std::uint32_t>(kind));
  w.put_u64(payload.size());
  std::string blob = w.take();
  blob.append(payload);
  wire_writer checksum;
  checksum.put_u64(stats::fnv1a64(blob));
  blob.append(checksum.buffer());
  return blob;
}

namespace {

/// The integrity half of container decoding: everything except the kind
/// comparison.  Returns (declared kind, payload).
std::pair<std::uint32_t, std::string_view> decode_state_blob_any(std::string_view blob) {
  constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8;  // magic + version + kind + length
  constexpr std::size_t kChecksumSize = 8;
  if (blob.size() < kHeaderSize + kChecksumSize) {
    throw run_dir_error("run_dir: state file truncated (shorter than header)");
  }
  if (blob.substr(0, kStateMagic.size()) != kStateMagic) {
    throw run_dir_error("run_dir: bad magic (not a reldiv state file)");
  }
  wire_reader header(blob.substr(kStateMagic.size()));
  const std::uint32_t version = header.get_u32();
  if (version != kStateFormatVersion) {
    throw run_dir_error("run_dir: unsupported state format version " +
                        std::to_string(version) + " (expected " +
                        std::to_string(kStateFormatVersion) + ")");
  }
  const std::uint32_t kind = header.get_u32();
  const std::uint64_t payload_size = header.get_u64();
  if (payload_size != blob.size() - kHeaderSize - kChecksumSize) {
    throw run_dir_error("run_dir: state file truncated or padded (payload length " +
                        std::to_string(payload_size) + " does not match file size)");
  }
  wire_reader trailer(blob.substr(blob.size() - kChecksumSize));
  const std::uint64_t stored = trailer.get_u64();
  const std::uint64_t actual = stats::fnv1a64(blob.substr(0, blob.size() - kChecksumSize));
  if (stored != actual) {
    throw run_dir_error("run_dir: state file checksum mismatch (corrupt)");
  }
  return {kind, blob.substr(kHeaderSize, payload_size)};
}

}  // namespace

std::string_view decode_state_blob(state_kind expected_kind, std::string_view blob) {
  const auto [kind, payload] = decode_state_blob_any(blob);
  if (kind != static_cast<std::uint32_t>(expected_kind)) {
    throw run_dir_error("run_dir: state kind mismatch (file holds kind " +
                        std::to_string(kind) + ", expected " +
                        std::to_string(static_cast<std::uint32_t>(expected_kind)) + ")");
  }
  return payload;
}

state_kind peek_state_kind(std::string_view blob) {
  const auto [kind, payload] = decode_state_blob_any(blob);
  (void)payload;
  if (kind < static_cast<std::uint32_t>(state_kind::accumulator) ||
      kind > static_cast<std::uint32_t>(state_kind::cached_result)) {
    throw run_dir_error("run_dir: unknown state kind " + std::to_string(kind));
  }
  return static_cast<state_kind>(kind);
}

std::string_view job_kind_name(job_kind kind) {
  switch (kind) {
    case job_kind::scenario_grid: return "scenario_grid";
    case job_kind::demand_campaign: return "demand_campaign";
    case job_kind::experiment_shards: return "experiment_shards";
  }
  return "unknown";
}

state_kind manifest_kind_of(job_kind kind) {
  switch (kind) {
    case job_kind::scenario_grid: return state_kind::manifest;
    case job_kind::demand_campaign: return state_kind::demand_manifest;
    case job_kind::experiment_shards: return state_kind::experiment_manifest;
  }
  throw run_dir_error("run_dir: unknown job kind");
}

job_kind manifest_job_kind(state_kind kind) {
  switch (kind) {
    case state_kind::manifest: return job_kind::scenario_grid;
    case state_kind::demand_manifest: return job_kind::demand_campaign;
    case state_kind::experiment_manifest: return job_kind::experiment_shards;
    default:
      throw run_dir_error("run_dir: state kind " +
                          std::to_string(static_cast<std::uint32_t>(kind)) +
                          " is not a manifest kind");
  }
}

state_kind window_kind_of(job_kind kind) {
  switch (kind) {
    case job_kind::scenario_grid: return state_kind::scenario_cell;
    case job_kind::demand_campaign: return state_kind::demand_window;
    case job_kind::experiment_shards: return state_kind::experiment_window;
  }
  throw run_dir_error("run_dir: unknown job kind");
}

// ---------------------------------------------------------------------------
// Typed codecs
// ---------------------------------------------------------------------------

std::string encode_accumulator_state(const accumulator_state& s) {
  wire_writer w;
  write_accumulator_payload(w, s);
  return encode_state_blob(state_kind::accumulator, w.buffer());
}

accumulator_state decode_accumulator_state(std::string_view blob) {
  return decode_payload(state_kind::accumulator, blob,
                        [](wire_reader& r) { return read_accumulator_payload(r); });
}

std::string encode_demand_tally(const demand_tally& t) {
  wire_writer w;
  w.put_u64(t.demands);
  write_u64_vec(w, t.failures);
  return encode_state_blob(state_kind::demand, w.buffer());
}

demand_tally decode_demand_tally(std::string_view blob) {
  return decode_payload(state_kind::demand, blob, [](wire_reader& r) {
    demand_tally t;
    t.demands = r.get_u64();
    t.failures = read_u64_vec(r);
    return t;
  });
}

std::string encode_cell_state(const cell_state& c) {
  wire_writer w;
  write_cell_payload(w, c);
  return encode_state_blob(state_kind::scenario_cell, w.buffer());
}

cell_state decode_cell_state(std::string_view blob) {
  return decode_payload(state_kind::scenario_cell, blob,
                        [](wire_reader& r) { return read_cell_payload(r); });
}

cell_identity peek_cell_identity(state_kind kind, std::string_view blob) {
  const std::string_view payload = decode_state_blob(kind, blob);
  try {
    wire_reader r(payload);
    cell_identity id;
    id.fingerprint = r.get_u64();
    id.cell_index = r.get_u64();
    return id;
  } catch (const stats::wire_error& e) {
    throw run_dir_error(std::string("run_dir: state payload malformed: ") + e.what());
  }
}

cell_identity peek_cell_identity(std::string_view blob) {
  return peek_cell_identity(state_kind::scenario_cell, blob);
}

// ---------------------------------------------------------------------------
// Demand and experiment window states
// ---------------------------------------------------------------------------

std::string encode_demand_window_state(const demand_window_state& s) {
  wire_writer w;
  w.put_u64(s.fingerprint);
  w.put_u64(s.window_index);
  w.put_u64(s.result.target_begin);
  w.put_u64(s.result.target_end);
  w.put_u64(s.result.demands);
  write_u64_vec(w, s.result.failures);
  return encode_state_blob(state_kind::demand_window, w.buffer());
}

demand_window_state decode_demand_window_state(std::string_view blob) {
  return decode_payload(state_kind::demand_window, blob, [](wire_reader& r) {
    demand_window_state s;
    s.fingerprint = r.get_u64();
    s.window_index = r.get_u64();
    s.result.target_begin = r.get_u64();
    s.result.target_end = r.get_u64();
    s.result.demands = r.get_u64();
    s.result.failures = read_u64_vec(r);
    if (s.result.target_begin > s.result.target_end ||
        s.result.failures.size() != s.result.target_end - s.result.target_begin) {
      throw stats::wire_error("wire: demand window bounds disagree with its counts");
    }
    return s;
  });
}

std::string encode_experiment_window_state(const experiment_window_state& s) {
  wire_writer w;
  w.put_u64(s.fingerprint);
  w.put_u64(s.window_index);
  w.put_u32(s.result.shard_begin);
  w.put_u32(s.result.shard_end);
  w.put_u64(s.result.shard_states.size());
  for (const accumulator_state& shard : s.result.shard_states) {
    write_accumulator_payload(w, shard);
  }
  return encode_state_blob(state_kind::experiment_window, w.buffer());
}

experiment_window_state decode_experiment_window_state(std::string_view blob) {
  return decode_payload(state_kind::experiment_window, blob, [](wire_reader& r) {
    experiment_window_state s;
    s.fingerprint = r.get_u64();
    s.window_index = r.get_u64();
    s.result.shard_begin = r.get_u32();
    s.result.shard_end = r.get_u32();
    const std::uint64_t n = r.get_u64();
    // Each shard state is at least 8 bytes of counters on the wire; a
    // mangled count must throw, not drive a huge reserve.
    if (n > r.remaining() / 8) {
      throw stats::wire_error("wire: shard state count exceeds buffer");
    }
    if (s.result.shard_begin > s.result.shard_end ||
        n != s.result.shard_end - s.result.shard_begin) {
      throw stats::wire_error("wire: shard window bounds disagree with its states");
    }
    s.result.shard_states.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      s.result.shard_states.push_back(read_accumulator_payload(r));
    }
    return s;
  });
}

// ---------------------------------------------------------------------------
// Memoized merge results
// ---------------------------------------------------------------------------

std::string encode_cached_result(const cached_result& c) {
  wire_writer w;
  w.put_u32(static_cast<std::uint32_t>(c.kind));
  w.put_u64(c.fingerprint);
  w.put_bytes(c.csv);
  w.put_bytes(c.json);
  return encode_state_blob(state_kind::cached_result, w.buffer());
}

cached_result decode_cached_result(std::string_view blob) {
  return decode_payload(state_kind::cached_result, blob, [](wire_reader& r) {
    cached_result c;
    const std::uint32_t kind = r.get_u32();
    if (kind < static_cast<std::uint32_t>(job_kind::scenario_grid) ||
        kind > static_cast<std::uint32_t>(job_kind::experiment_shards)) {
      throw stats::wire_error("wire: unknown job kind " + std::to_string(kind) +
                              " in cached result");
    }
    c.kind = static_cast<job_kind>(kind);
    c.fingerprint = r.get_u64();
    c.csv = std::string(r.get_bytes());
    c.json = std::string(r.get_bytes());
    return c;
  });
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

std::string encode_manifest(const sweep_manifest& m) {
  wire_writer w;
  write_manifest_payload(w, m);
  return encode_state_blob(state_kind::manifest, w.buffer());
}

sweep_manifest decode_manifest(std::string_view blob) {
  sweep_manifest m = decode_payload(state_kind::manifest, blob,
                                    [](wire_reader& r) { return read_manifest_payload(r); });
  // The cell count is derived data; a mismatch means the axes and the count
  // were written by disagreeing code, and no cell index can be trusted.
  std::size_t expected = 0;
  try {
    expected = enumerate_cells(m.axes).size();
  } catch (const std::invalid_argument& e) {
    throw run_dir_error(std::string("run_dir: manifest axes invalid: ") + e.what());
  }
  if (expected != m.cell_count) {
    throw run_dir_error("run_dir: manifest cell count " + std::to_string(m.cell_count) +
                        " does not match its axes (" + std::to_string(expected) + " cells)");
  }
  return m;
}

std::uint64_t manifest_fingerprint(const sweep_manifest& m) {
  wire_writer w;
  write_manifest_payload(w, m);
  return stats::fnv1a64(w.buffer());
}

std::string manifest_json(const sweep_manifest& m) {
  std::string out = "{\n  \"format_version\": " + std::to_string(kStateFormatVersion);
  out += ",\n  \"seed\": " + std::to_string(m.seed);
  out += ",\n  \"shards\": " + std::to_string(m.shards);
  out += ",\n  \"cell_count\": " + std::to_string(m.cell_count);
  out += ",\n  \"fingerprint\": " + std::to_string(manifest_fingerprint(m));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", m.axes.stress);
  out += ",\n  \"stress\": ";
  out += buf;
  out += ",\n  \"universes\": [";
  for (std::size_t u = 0; u < m.axes.universes.size(); ++u) {
    if (u > 0) out += ',';
    out += "{\"name\":\"" + m.axes.universes[u].first +
           "\",\"faults\":" + std::to_string(m.axes.universes[u].second.size()) + "}";
  }
  out += "]";
  out += ",\n  \"correlations\": ";
  append_json_f64_array(out, m.axes.correlations);
  out += ",\n  \"overlaps\": ";
  append_json_f64_array(out, m.axes.overlaps);
  out += ",\n  \"aliasing\": ";
  append_json_u64_array(out, m.axes.aliasing);
  out += ",\n  \"rho_model\": \"";
  out += m.axes.rho_model == correlation_model::copula ? "copula" : "mixture";
  out += '"';
  out += ",\n  \"adjudications\": [";
  for (std::size_t i = 0; i < m.axes.adjudications.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"versions\":" + std::to_string(m.axes.adjudications[i].versions) +
           ",\"votes\":" + std::to_string(m.axes.adjudications[i].votes_to_defeat) + "}";
  }
  out += "]";
  out += ",\n  \"budgets\": ";
  append_json_u64_array(out, m.axes.budgets);
  if (!m.axes.cell_budgets.empty()) {
    out += ",\n  \"cell_budgets\": ";
    append_json_u64_array(out, m.axes.cell_budgets);
  }
  out += "\n}\n";
  return out;
}

namespace {

// The demand and experiment manifest payloads lead with their job kind so
// the three manifest payloads can never alias under the shared FNV-1a
// fingerprint hash (the scenario payload predates the tag and keeps its
// PR 4 layout for fingerprint stability).

void write_demand_manifest_payload(wire_writer& w, const demand_manifest& m) {
  w.put_u32(static_cast<std::uint32_t>(job_kind::demand_campaign));
  w.put_u64(m.seed);
  w.put_u64(m.demands);
  w.put_u64(m.window);
  write_f64_vec(w, m.target_pfd);
}

demand_manifest read_demand_manifest_payload(wire_reader& r) {
  demand_manifest m;
  if (r.get_u32() != static_cast<std::uint32_t>(job_kind::demand_campaign)) {
    throw stats::wire_error("wire: demand manifest job-kind tag mismatch");
  }
  m.seed = r.get_u64();
  m.demands = r.get_u64();
  m.window = r.get_u64();
  m.target_pfd = read_f64_vec(r);
  m.validate();
  return m;
}

void write_experiment_manifest_payload(wire_writer& w, const experiment_manifest& m) {
  w.put_u32(static_cast<std::uint32_t>(job_kind::experiment_shards));
  w.put_u64(m.seed);
  w.put_u64(m.samples);
  w.put_u32(m.shards);
  w.put_u32(static_cast<std::uint32_t>(m.engine));
  w.put_u8(m.keep_samples ? 1 : 0);
  w.put_f64(m.ci_level);
  w.put_u32(m.window);
  w.put_u64(m.universe.size());
  for (const auto& atom : m.universe.atoms()) {
    w.put_f64(atom.p);
    w.put_f64(atom.q);
  }
}

experiment_manifest read_experiment_manifest_payload(wire_reader& r) {
  experiment_manifest m;
  if (r.get_u32() != static_cast<std::uint32_t>(job_kind::experiment_shards)) {
    throw stats::wire_error("wire: experiment manifest job-kind tag mismatch");
  }
  m.seed = r.get_u64();
  m.samples = r.get_u64();
  m.shards = r.get_u32();
  const std::uint32_t engine = r.get_u32();
  // Wire values are append-only: fast=0, exact=1, legacy=2, fast_simd=3.
  if (engine > static_cast<std::uint32_t>(sampling_engine::fast_simd)) {
    throw stats::wire_error("wire: unknown sampling engine " + std::to_string(engine));
  }
  m.engine = static_cast<sampling_engine>(engine);
  m.keep_samples = r.get_u8() != 0;
  m.ci_level = r.get_f64();
  m.window = r.get_u32();
  const std::uint64_t n = r.get_u64();
  if (n > r.remaining() / 16) throw stats::wire_error("wire: universe size exceeds buffer");
  std::vector<double> p;
  std::vector<double> q;
  p.reserve(n);
  q.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    p.push_back(r.get_f64());
    q.push_back(r.get_f64());
  }
  m.universe = core::fault_universe::from_arrays(p, q, /*allow_q_overflow=*/true);
  m.validate();
  return m;
}

}  // namespace

std::string encode_demand_manifest(const demand_manifest& m) {
  wire_writer w;
  write_demand_manifest_payload(w, m);
  return encode_state_blob(state_kind::demand_manifest, w.buffer());
}

demand_manifest decode_demand_manifest(std::string_view blob) {
  return decode_payload(state_kind::demand_manifest, blob,
                        [](wire_reader& r) { return read_demand_manifest_payload(r); });
}

std::uint64_t demand_manifest_fingerprint(const demand_manifest& m) {
  wire_writer w;
  write_demand_manifest_payload(w, m);
  return stats::fnv1a64(w.buffer());
}

std::string demand_manifest_json(const demand_manifest& m) {
  m.validate();
  std::string out = "{\n  \"format_version\": " + std::to_string(kStateFormatVersion);
  out += ",\n  \"job_kind\": \"demand_campaign\"";
  out += ",\n  \"seed\": " + std::to_string(m.seed);
  out += ",\n  \"demands\": " + std::to_string(m.demands);
  out += ",\n  \"targets\": " + std::to_string(m.target_pfd.size());
  out += ",\n  \"window\": " + std::to_string(m.window);
  out += ",\n  \"window_count\": " + std::to_string(m.window_count());
  out += ",\n  \"fingerprint\": " + std::to_string(demand_manifest_fingerprint(m));
  const auto [lo, hi] =
      std::minmax_element(m.target_pfd.begin(), m.target_pfd.end());
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", *lo);
  out += ",\n  \"pfd_min\": ";
  out += buf;
  std::snprintf(buf, sizeof(buf), "%.17g", *hi);
  out += ",\n  \"pfd_max\": ";
  out += buf;
  out += "\n}\n";
  return out;
}

std::string encode_experiment_manifest(const experiment_manifest& m) {
  wire_writer w;
  write_experiment_manifest_payload(w, m);
  return encode_state_blob(state_kind::experiment_manifest, w.buffer());
}

experiment_manifest decode_experiment_manifest(std::string_view blob) {
  return decode_payload(state_kind::experiment_manifest, blob, [](wire_reader& r) {
    return read_experiment_manifest_payload(r);
  });
}

std::uint64_t experiment_manifest_fingerprint(const experiment_manifest& m) {
  wire_writer w;
  write_experiment_manifest_payload(w, m);
  return stats::fnv1a64(w.buffer());
}

std::string experiment_manifest_json(const experiment_manifest& m) {
  m.validate();
  std::string out = "{\n  \"format_version\": " + std::to_string(kStateFormatVersion);
  out += ",\n  \"job_kind\": \"experiment_shards\"";
  out += ",\n  \"seed\": " + std::to_string(m.seed);
  out += ",\n  \"samples\": " + std::to_string(m.samples);
  out += ",\n  \"shards\": " + std::to_string(m.shards);
  out += ",\n  \"engine\": " + std::to_string(static_cast<std::uint32_t>(m.engine));
  out += ",\n  \"keep_samples\": ";
  out += m.keep_samples ? "true" : "false";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", m.ci_level);
  out += ",\n  \"ci_level\": ";
  out += buf;
  out += ",\n  \"window\": " + std::to_string(m.window);
  out += ",\n  \"window_count\": " + std::to_string(m.window_count());
  out += ",\n  \"faults\": " + std::to_string(m.universe.size());
  out += ",\n  \"fingerprint\": " + std::to_string(experiment_manifest_fingerprint(m));
  out += "\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Filesystem layer
// ---------------------------------------------------------------------------

const std::string& claim_host_name() {
  static const std::string host = [] {
    char buf[256] = {};
    if (::gethostname(buf, sizeof(buf) - 1) != 0 || buf[0] == '\0') {
      return std::string("localhost");
    }
    std::string name(buf);
    // '.' separates the pid in .tmp suffixes and '/' is a path separator:
    // map both (and anything else exotic) to '-'.
    for (char& c : name) {
      const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '_';
      if (!safe) c = '-';
    }
    return name;
  }();
  return host;
}

void write_file_atomic(const fs::path& path, std::string_view contents) {
  io_env& env = active_io_env();
  const fs::path tmp =
      path.string() + ".tmp." + claim_host_name() + "." + std::to_string(::getpid());
  try {
    // fsync the temp before renaming and the directory after: without the
    // first a power cut can commit a zero-length rename target, without the
    // second the rename itself may not survive the cut.
    env.write_file(tmp, contents, /*sync=*/true);
    env.rename_file(tmp, path);
  } catch (...) {
    std::error_code ec;
    fs::remove(tmp, ec);
    throw;
  }
  env.fsync_dir(path.parent_path());
}

std::string read_file(const fs::path& path) { return active_io_env().read_file(path); }

fs::path manifest_path(const fs::path& run_dir) { return run_dir / "manifest.state"; }

fs::path cells_dir(const fs::path& run_dir) { return run_dir / "cells"; }

namespace {
std::string cell_file_stem(std::uint64_t cell_index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "cell_%06llu",
                static_cast<unsigned long long>(cell_index));
  return buf;
}
}  // namespace

fs::path cell_state_path(const fs::path& run_dir, std::uint64_t cell_index) {
  return cells_dir(run_dir) / (cell_file_stem(cell_index) + ".state");
}

fs::path cell_claim_path(const fs::path& run_dir, std::uint64_t cell_index) {
  return cells_dir(run_dir) / (cell_file_stem(cell_index) + ".claim");
}

fs::path quarantine_dir(const fs::path& run_dir) { return run_dir / "quarantine"; }

fs::path cell_quarantine_path(const fs::path& run_dir, std::uint64_t cell_index) {
  return quarantine_dir(run_dir) / (cell_file_stem(cell_index) + ".quarantine");
}

}  // namespace reldiv::mc
