#include "mc/experiment.hpp"

#include <algorithm>
#include <bit>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/simd_sampler.hpp"
#include "mc/sampler.hpp"
#include "stats/counter_rng.hpp"
#include "stats/random.hpp"

namespace reldiv::mc {

namespace {

/// Legacy sparse shard: per-sample heap-allocated index vectors and scalar
/// merges.  Retained as the benchmark/regression baseline for the bitset
/// engine.
experiment_accumulator run_shard_legacy(const core::fault_universe& u,
                                        std::uint64_t samples, stats::rng r,
                                        bool keep_samples) {
  experiment_accumulator acc(keep_samples);
  for (std::uint64_t s = 0; s < samples; ++s) {
    const version a = sample_version(u, r);
    const version b = sample_version(u, r);
    const double t1 = pfd_of(a, u);
    const double t2 = pair_pfd(a, b, u);
    acc.add(t1, t2, a.has_fault(), !common_faults(a, b).empty());
  }
  return acc;
}

/// Bitset shard: the two scratch masks are allocated once up front and
/// rewritten in place, so the steady-state loop performs zero heap
/// allocations; n2_positive falls out of the fused intersection kernel.
experiment_accumulator run_shard_mask(const core::fault_universe& u,
                                      std::uint64_t samples, stats::rng r,
                                      bool keep_samples, bool exact_stream) {
  experiment_accumulator acc(keep_samples);
  core::fault_mask a(u.size());
  core::fault_mask b(u.size());
  // Word-parallel sampling costs 53 - countr_zero(threshold) rng words per
  // 64 faults per version; the paired sampler costs 64 per 64 faults per
  // PAIR.  Pick bit-slice only when the shared p's threshold makes it the
  // cheaper of the two (e.g. p = 0.5 needs a single word per 64 faults).
  bool word_parallel = false;
  if (!exact_stream && u.has_uniform_p()) {
    const std::uint64_t t = core::bernoulli_threshold(u.uniform_p());
    word_parallel = t == 0 || t == (std::uint64_t{1} << core::kBernoulliBits) ||
                    std::countr_zero(t) >= core::kBernoulliBits - 32;
  }
  // Grouped universes (runs of equal p covering whole mask words, e.g.
  // concatenated make_homogeneous blocks) bit-slice the uniform words and
  // fall back to the paired kernel elsewhere.  The paired kernel realizes p
  // on the 2^-32 grid; for universes with faults rarer than that grid
  // resolves (relative error > 1e-6) fall back to the 53-bit exact-stream
  // kernel rather than silently oversample them.
  const bool grouped = !exact_stream && !word_parallel && u.has_grouped_p() &&
                       u.fast32_grid_safe();
  const bool use_exact_kernel =
      exact_stream || (!word_parallel && !grouped && !u.fast32_grid_safe());
  for (std::uint64_t s = 0; s < samples; ++s) {
    if (use_exact_kernel) {
      sample_version_mask(u, r, a);
      sample_version_mask(u, r, b);
    } else if (word_parallel) {
      sample_version_mask_uniform(u, r, a);
      sample_version_mask_uniform(u, r, b);
    } else if (grouped) {
      sample_version_pair_grouped(u, r, a, b);
    } else {
      sample_version_pair_fast(u, r, a, b);
    }
    const double t1 = core::masked_q_sum(a, u.q_array());
    const auto pair = core::intersect_q_sum(a, b, u.q_array());
    acc.add(t1, pair.pfd, a.any(), pair.any_common);
  }
  return acc;
}

/// Version-pairs generated per sample_pair_counter_batch pass by the
/// fast-simd shard.  Word-major batching amortizes per-word plan/threshold
/// loads across the batch; 8 pairs keeps the scratch masks comfortably in L1
/// for any universe the benches exercise.
constexpr std::size_t kSimdPairBatch = 8;

/// Everything the fast-simd engine precomputes ONCE per run (never per
/// shard, never per sample): the p-sorted relayout of the universe, the
/// frozen counter-sampling plan over the permuted layout, and the dispatch
/// level.  Pinning the level here also guarantees every shard of a run uses
/// the same kernels even if a test flips the cap concurrently.
struct simd_engine_context {
  core::universe_permutation perm;
  core::counter_sample_plan plan;
  core::simd_level level = core::simd_level::scalar;
};

simd_engine_context make_simd_engine_context(const core::fault_universe& u) {
  simd_engine_context ctx;
  ctx.perm = core::make_p_sorted_permutation(u);
  ctx.plan = core::make_counter_sample_plan(ctx.perm.universe);
  ctx.level = core::active_simd_level();
  return ctx;
}

/// fast-simd shard: batches of counter-generated version-pairs over the
/// PERMUTED universe.  θ accumulation (masked_q_sum / intersect_q_sum) runs
/// over the permuted q layout, which is part of this engine's pinned stream
/// contract — per-seed values are not comparable to the `fast` engine, but
/// are bit-identical across thread counts and SIMD levels.  Pair s of shard
/// `shard` always consumes counters [s*D, (s+1)*D) of stream
/// counter_stream_key(seed, shard), regardless of batching.
experiment_accumulator run_shard_simd(const simd_engine_context& ctx,
                                      std::uint64_t seed, unsigned shard,
                                      std::uint64_t samples, bool keep_samples) {
  experiment_accumulator acc(keep_samples);
  const core::fault_universe& pu = ctx.perm.universe;
  const std::uint64_t key = stats::counter_stream_key(seed, shard);
  std::vector<core::fault_mask> a(kSimdPairBatch, core::fault_mask(pu.size()));
  std::vector<core::fault_mask> b(kSimdPairBatch, core::fault_mask(pu.size()));
  for (std::uint64_t s = 0; s < samples; s += kSimdPairBatch) {
    const std::size_t batch =
        static_cast<std::size_t>(std::min<std::uint64_t>(kSimdPairBatch, samples - s));
    core::sample_pair_counter_batch(ctx.plan, pu, key, s, batch,
                                    std::span<core::fault_mask>(a.data(), batch),
                                    std::span<core::fault_mask>(b.data(), batch),
                                    ctx.level);
    for (std::size_t j = 0; j < batch; ++j) {
      const double t1 = core::masked_q_sum(a[j], pu.q_array());
      const auto pair = core::intersect_q_sum(a[j], b[j], pu.q_array());
      acc.add(t1, pair.pfd, a[j].any(), pair.any_common);
    }
  }
  return acc;
}

experiment_accumulator run_shard(const core::fault_universe& u, std::uint64_t samples,
                                 stats::rng r, bool keep_samples,
                                 sampling_engine engine) {
  switch (engine) {
    case sampling_engine::legacy:
      return run_shard_legacy(u, samples, std::move(r), keep_samples);
    case sampling_engine::exact:
      return run_shard_mask(u, samples, std::move(r), keep_samples,
                            /*exact_stream=*/true);
    case sampling_engine::fast_simd:
      // fast-simd shards need the per-run simd_engine_context; the run-level
      // loops route them to run_shard_simd before reaching this dispatcher.
      throw std::logic_error("run_shard: fast_simd must be routed at run level");
    case sampling_engine::fast:
    default:
      return run_shard_mask(u, samples, std::move(r), keep_samples,
                            /*exact_stream=*/false);
  }
}

}  // namespace

void experiment_accumulator::add(double theta1, double theta2,
                                 bool version_has_fault, bool pair_has_common_fault) {
  ++samples_;
  theta1_.add(theta1);
  theta2_.add(theta2);
  if (version_has_fault) ++n1_positive_;
  if (pair_has_common_fault) ++n2_positive_;
  if (theta1 == 0.0) ++n1_zero_pfd_;
  if (theta2 == 0.0) ++n2_zero_pfd_;
  if (keep_samples_) {
    theta1_samples_.push_back(theta1);
    theta2_samples_.push_back(theta2);
  }
}

void experiment_accumulator::merge(const experiment_accumulator& other) {
  if (keep_samples_ != other.keep_samples_) {
    // Merging mismatched modes would silently break the "kept vectors hold
    // every accumulated sample" invariant.
    throw std::invalid_argument(
        "experiment_accumulator::merge: keep-samples mode mismatch");
  }
  samples_ += other.samples_;
  theta1_.merge(other.theta1_);
  theta2_.merge(other.theta2_);
  n1_positive_ += other.n1_positive_;
  n2_positive_ += other.n2_positive_;
  n1_zero_pfd_ += other.n1_zero_pfd_;
  n2_zero_pfd_ += other.n2_zero_pfd_;
  if (keep_samples_) {
    theta1_samples_.insert(theta1_samples_.end(), other.theta1_samples_.begin(),
                           other.theta1_samples_.end());
    theta2_samples_.insert(theta2_samples_.end(), other.theta2_samples_.begin(),
                           other.theta2_samples_.end());
  }
}

accumulator_state experiment_accumulator::state() const {
  accumulator_state s;
  s.samples = samples_;
  s.theta1 = theta1_.state();
  s.theta2 = theta2_.state();
  s.n1_positive = n1_positive_;
  s.n2_positive = n2_positive_;
  s.n1_zero_pfd = n1_zero_pfd_;
  s.n2_zero_pfd = n2_zero_pfd_;
  s.keeping_samples = keep_samples_;
  s.theta1_samples = theta1_samples_;
  s.theta2_samples = theta2_samples_;
  return s;
}

experiment_accumulator experiment_accumulator::from_state(const accumulator_state& s) {
  experiment_accumulator acc(s.keeping_samples);
  acc.samples_ = s.samples;
  acc.theta1_ = stats::running_moments::from_state(s.theta1);
  acc.theta2_ = stats::running_moments::from_state(s.theta2);
  acc.n1_positive_ = s.n1_positive;
  acc.n2_positive_ = s.n2_positive;
  acc.n1_zero_pfd_ = s.n1_zero_pfd;
  acc.n2_zero_pfd_ = s.n2_zero_pfd;
  acc.theta1_samples_ = s.theta1_samples;
  acc.theta2_samples_ = s.theta2_samples;
  return acc;
}

experiment_result experiment_accumulator::to_result(double ci_level) const {
  experiment_result result;
  result.samples = samples_;
  result.ci_level = ci_level;
  result.theta1 = theta1_;
  result.theta2 = theta2_;
  result.n1_positive = n1_positive_;
  result.n2_positive = n2_positive_;
  result.n1_zero_pfd = n1_zero_pfd_;
  result.n2_zero_pfd = n2_zero_pfd_;
  if (keep_samples_) {
    result.theta1_samples = theta1_samples_;
    result.theta2_samples = theta2_samples_;
  }
  return result;
}

estimate experiment_result::mean_theta1() const {
  return {theta1.mean(),
          stats::mean_ci(theta1.mean(), theta1.stddev(), theta1.count(), ci_level)};
}

estimate experiment_result::mean_theta2() const {
  return {theta2.mean(),
          stats::mean_ci(theta2.mean(), theta2.stddev(), theta2.count(), ci_level)};
}

estimate experiment_result::prob_n1_positive() const {
  return {static_cast<double>(n1_positive) / static_cast<double>(samples),
          stats::wilson(n1_positive, samples, ci_level)};
}

estimate experiment_result::prob_n2_positive() const {
  return {static_cast<double>(n2_positive) / static_cast<double>(samples),
          stats::wilson(n2_positive, samples, ci_level)};
}

double experiment_result::risk_ratio() const {
  if (n1_positive == 0) return 0.0;
  return static_cast<double>(n2_positive) / static_cast<double>(n1_positive);
}

unsigned experiment_shard_count(const experiment_config& config) {
  return make_shard_plan(config.samples, config.shards).shard_count;
}

void run_experiment_shards(const core::fault_universe& u,
                           const experiment_config& config, unsigned shard_begin,
                           unsigned shard_end, experiment_accumulator& acc) {
  if (config.samples == 0) {
    throw std::invalid_argument("run_experiment: samples > 0");
  }
  const shard_plan plan = make_shard_plan(config.samples, config.shards);
  if (config.engine == sampling_engine::fast_simd) {
    const simd_engine_context ctx = make_simd_engine_context(u);
    run_shards(
        plan, config.seed, shard_begin, shard_end, config.threads,
        stream_mode::counter,
        [&ctx, &config](unsigned shard, std::uint64_t samples, stats::rng& /*r*/) {
          return run_shard_simd(ctx, config.seed, shard, samples,
                                config.keep_samples);
        },
        [&acc](unsigned /*shard*/, experiment_accumulator&& shard_acc) {
          acc.merge(shard_acc);
        });
    return;
  }
  run_shards(
      plan, config.seed, shard_begin, shard_end, config.threads,
      [&u, &config](unsigned /*shard*/, std::uint64_t samples, stats::rng& r) {
        return run_shard(u, samples, r, config.keep_samples, config.engine);
      },
      [&acc](unsigned /*shard*/, experiment_accumulator&& shard_acc) {
        acc.merge(shard_acc);
      });
}

experiment_result run_experiment(const core::fault_universe& u,
                                 const experiment_config& config) {
  experiment_accumulator acc(config.keep_samples);
  const unsigned shards = experiment_shard_count(config);
  run_experiment_shards(u, config, 0, shards, acc);
  experiment_result result = acc.to_result(config.ci_level);
  result.shards = shards;
  return result;
}

std::uint64_t experiment_manifest::window_count() const {
  validate();
  return (static_cast<std::uint64_t>(shards) + window - 1) / window;
}

std::pair<unsigned, unsigned> experiment_manifest::window_bounds(
    std::uint64_t index) const {
  const std::uint64_t windows = window_count();
  if (index >= windows) {
    throw std::out_of_range("experiment_manifest: window index " + std::to_string(index) +
                            " out of range (windows: " + std::to_string(windows) + ")");
  }
  const unsigned begin = static_cast<unsigned>(index * window);
  const unsigned end = static_cast<unsigned>(
      std::min<std::uint64_t>(static_cast<std::uint64_t>(begin) + window, shards));
  return {begin, end};
}

void experiment_manifest::validate() const {
  if (samples == 0) throw std::invalid_argument("experiment_manifest: samples must be > 0");
  if (window == 0) throw std::invalid_argument("experiment_manifest: window must be > 0");
  if (!(ci_level > 0.0 && ci_level < 1.0)) {
    throw std::invalid_argument("experiment_manifest: ci_level outside (0, 1)");
  }
  if (engine != sampling_engine::fast && engine != sampling_engine::exact &&
      engine != sampling_engine::legacy && engine != sampling_engine::fast_simd) {
    throw std::invalid_argument("experiment_manifest: unknown sampling engine");
  }
  if (shards == 0 || shards != experiment_shard_count(config())) {
    throw std::invalid_argument(
        "experiment_manifest: shard count does not match the resolved layout "
        "(build manifests with make_experiment_manifest)");
  }
}

experiment_manifest make_experiment_manifest(const core::fault_universe& u,
                                             const experiment_config& config,
                                             unsigned window) {
  if (config.samples == 0) {
    throw std::invalid_argument("experiment_manifest: samples must be > 0");
  }
  experiment_manifest m;
  m.universe = u;
  m.samples = config.samples;
  m.seed = config.seed;
  m.shards = experiment_shard_count(config);
  m.engine = config.engine;
  m.keep_samples = config.keep_samples;
  m.ci_level = config.ci_level;
  m.window = window == 0 ? m.shards : window;
  m.validate();
  return m;
}

experiment_window_result run_experiment_window(const experiment_manifest& m,
                                               std::uint64_t index, unsigned threads) {
  const auto [shard_begin, shard_end] = m.window_bounds(index);
  const experiment_config cfg = m.config(threads);
  const shard_plan plan = make_shard_plan(cfg.samples, cfg.shards);

  experiment_window_result out;
  out.shard_begin = shard_begin;
  out.shard_end = shard_end;
  out.shard_states.reserve(shard_end - shard_begin);
  // Per-shard states stay separate (see experiment_window_result): run_shards
  // already merges — here: appends — in ascending shard order regardless of
  // the thread count.
  if (cfg.engine == sampling_engine::fast_simd) {
    const simd_engine_context ctx = make_simd_engine_context(m.universe);
    run_shards(
        plan, cfg.seed, shard_begin, shard_end, threads, stream_mode::counter,
        [&](unsigned shard, std::uint64_t samples, stats::rng& /*r*/) {
          return run_shard_simd(ctx, cfg.seed, shard, samples, cfg.keep_samples);
        },
        [&out](unsigned /*shard*/, experiment_accumulator&& acc) {
          out.shard_states.push_back(acc.state());
        });
    return out;
  }
  run_shards(
      plan, cfg.seed, shard_begin, shard_end, threads,
      [&](unsigned /*shard*/, std::uint64_t samples, stats::rng& r) {
        return run_shard(m.universe, samples, r, cfg.keep_samples, cfg.engine);
      },
      [&out](unsigned /*shard*/, experiment_accumulator&& acc) {
        out.shard_states.push_back(acc.state());
      });
  return out;
}

}  // namespace reldiv::mc
