#include "mc/experiment.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <thread>

#include "mc/sampler.hpp"
#include "stats/random.hpp"

namespace reldiv::mc {

namespace {

struct shard_result {
  stats::running_moments theta1;
  stats::running_moments theta2;
  std::uint64_t n1_positive = 0;
  std::uint64_t n2_positive = 0;
  std::uint64_t n1_zero_pfd = 0;
  std::uint64_t n2_zero_pfd = 0;
  std::vector<double> theta1_samples;
  std::vector<double> theta2_samples;
};

/// Legacy sparse shard: per-sample heap-allocated index vectors and scalar
/// merges.  Retained as the benchmark/regression baseline for the bitset
/// engine.
shard_result run_shard_legacy(const core::fault_universe& u, std::uint64_t samples,
                              stats::rng r, bool keep_samples) {
  shard_result out;
  if (keep_samples) {
    out.theta1_samples.reserve(samples);
    out.theta2_samples.reserve(samples);
  }
  for (std::uint64_t s = 0; s < samples; ++s) {
    const version a = sample_version(u, r);
    const version b = sample_version(u, r);
    const double t1 = pfd_of(a, u);
    const double t2 = pair_pfd(a, b, u);
    out.theta1.add(t1);
    out.theta2.add(t2);
    if (a.has_fault()) ++out.n1_positive;
    if (!common_faults(a, b).empty()) ++out.n2_positive;
    if (t1 == 0.0) ++out.n1_zero_pfd;
    if (t2 == 0.0) ++out.n2_zero_pfd;
    if (keep_samples) {
      out.theta1_samples.push_back(t1);
      out.theta2_samples.push_back(t2);
    }
  }
  return out;
}

/// Bitset shard: the two scratch masks are allocated once up front and
/// rewritten in place, so the steady-state loop performs zero heap
/// allocations; n2_positive falls out of the fused intersection kernel.
shard_result run_shard_mask(const core::fault_universe& u, std::uint64_t samples,
                            stats::rng r, bool keep_samples, bool exact_stream) {
  shard_result out;
  if (keep_samples) {
    out.theta1_samples.reserve(samples);
    out.theta2_samples.reserve(samples);
  }
  core::fault_mask a(u.size());
  core::fault_mask b(u.size());
  // Word-parallel sampling costs 53 - countr_zero(threshold) rng words per
  // 64 faults per version; the paired sampler costs 64 per 64 faults per
  // PAIR.  Pick bit-slice only when the shared p's threshold makes it the
  // cheaper of the two (e.g. p = 0.5 needs a single word per 64 faults).
  bool word_parallel = false;
  if (!exact_stream && u.has_uniform_p()) {
    const std::uint64_t t = core::bernoulli_threshold(u.uniform_p());
    word_parallel = t == 0 || t == (std::uint64_t{1} << core::kBernoulliBits) ||
                    std::countr_zero(t) >= core::kBernoulliBits - 32;
  }
  // The paired sampler realizes p on the 2^-32 grid; for universes with
  // faults rarer than that grid resolves (relative error > 1e-6) fall back
  // to the 53-bit exact-stream kernel rather than silently oversample them.
  const bool use_exact_kernel = exact_stream || (!word_parallel && !u.fast32_grid_safe());
  for (std::uint64_t s = 0; s < samples; ++s) {
    if (use_exact_kernel) {
      sample_version_mask(u, r, a);
      sample_version_mask(u, r, b);
    } else if (word_parallel) {
      sample_version_mask_uniform(u, r, a);
      sample_version_mask_uniform(u, r, b);
    } else {
      sample_version_pair_fast(u, r, a, b);
    }
    const double t1 = core::masked_q_sum(a, u.q_array());
    const auto pair = core::intersect_q_sum(a, b, u.q_array());
    out.theta1.add(t1);
    out.theta2.add(pair.pfd);
    if (a.any()) ++out.n1_positive;
    if (pair.any_common) ++out.n2_positive;
    if (t1 == 0.0) ++out.n1_zero_pfd;
    if (pair.pfd == 0.0) ++out.n2_zero_pfd;
    if (keep_samples) {
      out.theta1_samples.push_back(t1);
      out.theta2_samples.push_back(pair.pfd);
    }
  }
  return out;
}

shard_result run_shard(const core::fault_universe& u, std::uint64_t samples,
                       stats::rng r, bool keep_samples, sampling_engine engine) {
  switch (engine) {
    case sampling_engine::legacy:
      return run_shard_legacy(u, samples, std::move(r), keep_samples);
    case sampling_engine::exact:
      return run_shard_mask(u, samples, std::move(r), keep_samples,
                            /*exact_stream=*/true);
    case sampling_engine::fast:
    default:
      return run_shard_mask(u, samples, std::move(r), keep_samples,
                            /*exact_stream=*/false);
  }
}

}  // namespace

estimate experiment_result::mean_theta1() const {
  return {theta1.mean(),
          stats::mean_ci(theta1.mean(), theta1.stddev(), theta1.count(), ci_level)};
}

estimate experiment_result::mean_theta2() const {
  return {theta2.mean(),
          stats::mean_ci(theta2.mean(), theta2.stddev(), theta2.count(), ci_level)};
}

estimate experiment_result::prob_n1_positive() const {
  return {static_cast<double>(n1_positive) / static_cast<double>(samples),
          stats::wilson(n1_positive, samples, ci_level)};
}

estimate experiment_result::prob_n2_positive() const {
  return {static_cast<double>(n2_positive) / static_cast<double>(samples),
          stats::wilson(n2_positive, samples, ci_level)};
}

double experiment_result::risk_ratio() const {
  if (n1_positive == 0) return 0.0;
  return static_cast<double>(n2_positive) / static_cast<double>(n1_positive);
}

experiment_result run_experiment(const core::fault_universe& u,
                                 const experiment_config& config) {
  if (config.samples == 0) throw std::invalid_argument("run_experiment: samples > 0");
  unsigned threads = config.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<unsigned>(
      std::min<std::uint64_t>(threads, config.samples));

  std::vector<shard_result> shards(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  const std::uint64_t per_thread = config.samples / threads;
  const std::uint64_t remainder = config.samples % threads;
  for (unsigned t = 0; t < threads; ++t) {
    const std::uint64_t count = per_thread + (t < remainder ? 1 : 0);
    // Independent streams via xoshiro jump: stream t of the master seed.
    pool.emplace_back([&u, &shards, t, count, &config] {
      shards[t] = run_shard(u, count, stats::rng::stream(config.seed, t),
                            config.keep_samples, config.engine);
    });
  }
  for (auto& th : pool) th.join();

  experiment_result result;
  result.samples = config.samples;
  result.ci_level = config.ci_level;
  if (config.keep_samples) {
    result.theta1_samples.emplace();
    result.theta2_samples.emplace();
    result.theta1_samples->reserve(config.samples);
    result.theta2_samples->reserve(config.samples);
  }
  for (auto& s : shards) {
    result.theta1.merge(s.theta1);
    result.theta2.merge(s.theta2);
    result.n1_positive += s.n1_positive;
    result.n2_positive += s.n2_positive;
    result.n1_zero_pfd += s.n1_zero_pfd;
    result.n2_zero_pfd += s.n2_zero_pfd;
    if (config.keep_samples) {
      result.theta1_samples->insert(result.theta1_samples->end(), s.theta1_samples.begin(),
                                    s.theta1_samples.end());
      result.theta2_samples->insert(result.theta2_samples->end(), s.theta2_samples.begin(),
                                    s.theta2_samples.end());
    }
  }
  return result;
}

}  // namespace reldiv::mc
