#include "mc/shard_runner.hpp"

namespace reldiv::mc {

shard_plan make_shard_plan(std::uint64_t samples, unsigned requested_shards) {
  if (samples == 0) {
    throw std::invalid_argument("make_shard_plan: samples must be > 0");
  }
  const unsigned requested =
      requested_shards == 0 ? default_logical_shards(samples) : requested_shards;
  shard_plan plan;
  plan.total_samples = samples;
  plan.shard_count = static_cast<unsigned>(std::min<std::uint64_t>(requested, samples));
  return plan;
}

unsigned resolve_threads(unsigned requested, std::uint64_t jobs) {
  unsigned threads = requested;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  return static_cast<unsigned>(std::min<std::uint64_t>(threads, std::max<std::uint64_t>(jobs, 1)));
}

}  // namespace reldiv::mc
