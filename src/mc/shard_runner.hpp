#pragma once
// Deterministic sharded Monte-Carlo runner: the subsystem every
// multithreaded experiment loop in this library sits on.
//
// The determinism contract: an experiment is decomposed into a FIXED number
// of logical shards (kDefaultLogicalShards unless the caller overrides it),
// each owning its own rng stream `stats::rng::stream(seed, shard)` and a
// fixed slice of the sample budget.  Worker threads pull whole shards from a
// queue; per-shard results are merged in ascending shard order on the
// calling thread.  Every floating-point operation therefore happens in an
// order that is a pure function of (seed, samples, shard count) — results
// are bit-identical for 1 thread, 7 threads, or whatever
// hardware_concurrency() says on the machine at hand.  Thread count is a
// throughput knob, never a results knob.
//
// Shard granularity is also the checkpoint granularity: run_shards accepts a
// [shard_begin, shard_end) window, so a caller can process shards in chunks,
// serialize its accumulator between chunks, and resume — the merged result
// is identical to an uninterrupted run because the merge sequence is the
// same either way.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "stats/counter_rng.hpp"
#include "stats/random.hpp"

namespace reldiv::mc {

/// How a shard's rng stream is derived from (seed, shard).  Part of the
/// result's identity — two modes give two different (both deterministic)
/// stream layouts:
enum class stream_mode {
  /// stats::rng::stream(seed, shard): the historical layout, derived by
  /// jumping rng(seed) `shard` times.  run_shards amortizes the walk
  /// incrementally, but entering a window still costs O(shard_begin) jumps.
  jump,
  /// stats::rng(stats::counter_stream_key(seed, shard)): O(1) pure hash per
  /// shard, no walk at all.  The counter-based engines (fast-simd) use this
  /// layout; their bodies typically re-derive the key directly and ignore
  /// the rng object.
  counter,
};

/// Ceiling on the default number of logical rng streams per experiment.
/// Large enough to keep any plausible worker count busy, small enough that
/// the per-shard stream-derivation and merge costs stay negligible.
inline constexpr unsigned kDefaultLogicalShards = 256;

/// Samples a default-layout shard targets: the default shard count grows
/// with the budget (samples / kDefaultSamplesPerShard, clamped to
/// [1, kDefaultLogicalShards]) so tiny campaigns are not dominated by
/// stream-derivation and merge overhead.
inline constexpr std::uint64_t kDefaultSamplesPerShard = 64;

/// Default logical shard count for a `samples` budget.  A pure function of
/// the budget — never of the machine — so the default layout is part of the
/// result's identity and bit-identical everywhere: 1 shard up to 64 samples,
/// then samples/64 up to the kDefaultLogicalShards ceiling (reached at 16384
/// samples).
[[nodiscard]] constexpr unsigned default_logical_shards(std::uint64_t samples) noexcept {
  const std::uint64_t scaled = samples / kDefaultSamplesPerShard;
  if (scaled <= 1) return 1;
  if (scaled >= kDefaultLogicalShards) return kDefaultLogicalShards;
  return static_cast<unsigned>(scaled);
}

/// Fixed decomposition of `total_samples` over `shard_count` logical shards:
/// shard i draws total/shards samples plus one of the remainder for
/// i < total % shards.  Depends only on the sample budget, never on threads.
struct shard_plan {
  std::uint64_t total_samples = 0;
  unsigned shard_count = 0;

  [[nodiscard]] std::uint64_t shard_samples(unsigned shard) const noexcept {
    const std::uint64_t base = total_samples / shard_count;
    return base + (shard < total_samples % shard_count ? 1 : 0);
  }
  /// Global index of the first sample shard `shard` owns.
  [[nodiscard]] std::uint64_t shard_offset(unsigned shard) const noexcept {
    const std::uint64_t base = total_samples / shard_count;
    const std::uint64_t rem = total_samples % shard_count;
    return base * shard + std::min<std::uint64_t>(shard, rem);
  }
};

/// Build the canonical plan: `requested_shards` (0 = the budget-scaled
/// default_logical_shards(samples)) capped at `samples` so no shard is
/// empty.  Throws std::invalid_argument when samples == 0.
[[nodiscard]] shard_plan make_shard_plan(std::uint64_t samples,
                                         unsigned requested_shards = 0);

/// Resolve a requested worker count: 0 means hardware_concurrency(), and the
/// result is capped at `jobs` (no point spinning up idle threads).
[[nodiscard]] unsigned resolve_threads(unsigned requested, std::uint64_t jobs);

/// Run `body(shard, samples, rng)` for every shard in [shard_begin,
/// shard_end) of `plan`, distributing shards over `threads` workers
/// (resolved via resolve_threads), then call `merge(shard, result)` in
/// ascending shard order on the calling thread.
///
/// Shard `s` always receives `stats::rng::stream(seed, s)` and
/// `plan.shard_samples(s)` samples, so the set of per-shard computations —
/// and the merge sequence — is independent of the thread count and of
/// scheduling.  `body` must not touch shared mutable state (it runs
/// concurrently); `merge` runs serially.  The first exception thrown by a
/// `body` invocation (lowest shard index wins) is rethrown after all workers
/// join.
template <typename Body, typename Merge>
void run_shards(const shard_plan& plan, std::uint64_t seed, unsigned shard_begin,
                unsigned shard_end, unsigned threads, stream_mode mode, Body&& body,
                Merge&& merge) {
  using acc_type = std::decay_t<std::invoke_result_t<Body&, unsigned, std::uint64_t,
                                                     stats::rng&>>;
  if (shard_begin > shard_end || shard_end > plan.shard_count) {
    throw std::invalid_argument("run_shards: shard window out of range");
  }
  const unsigned jobs = shard_end - shard_begin;
  if (jobs == 0) return;

  std::vector<stats::rng> streams;
  streams.reserve(jobs);
  if (mode == stream_mode::counter) {
    // Counter layout: every stream is an O(1) pure hash of (seed, shard), so
    // a window starting at shard 10^6 costs the same as one starting at 0.
    for (unsigned j = 0; j < jobs; ++j) {
      streams.emplace_back(stats::counter_stream_key(seed, shard_begin + j));
    }
  } else {
    // Derive the shard streams incrementally (stream(seed, s) is rng(seed)
    // jumped s times): O(shard_end) jumps total instead of O(shard_end^2) if
    // each worker re-derived its stream from scratch.
    stats::rng walker(seed);
    for (unsigned s = 0; s < shard_begin; ++s) walker.jump();
    for (unsigned j = 0; j < jobs; ++j) {
      streams.push_back(walker);
      walker.jump();
    }
  }

  std::vector<std::optional<acc_type>> results(jobs);
  std::atomic<unsigned> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  unsigned first_error_job = jobs;

  auto work = [&]() noexcept {
    for (unsigned j = next.fetch_add(1, std::memory_order_relaxed); j < jobs;
         j = next.fetch_add(1, std::memory_order_relaxed)) {
      const unsigned shard = shard_begin + j;
      try {
        results[j].emplace(body(shard, plan.shard_samples(shard), streams[j]));
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (j < first_error_job) {
          first_error_job = j;
          first_error = std::current_exception();
        }
      }
    }
  };

  const unsigned workers = resolve_threads(threads, jobs);
  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(work);
    for (auto& th : pool) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  for (unsigned j = 0; j < jobs; ++j) {
    merge(shard_begin + j, std::move(*results[j]));
  }
}

/// Historical signature: jump-derived streams.
template <typename Body, typename Merge>
void run_shards(const shard_plan& plan, std::uint64_t seed, unsigned shard_begin,
                unsigned shard_end, unsigned threads, Body&& body, Merge&& merge) {
  run_shards(plan, seed, shard_begin, shard_end, threads, stream_mode::jump,
             std::forward<Body>(body), std::forward<Merge>(merge));
}

/// Convenience overload: run every shard of the plan (jump streams).
template <typename Body, typename Merge>
void run_shards(const shard_plan& plan, std::uint64_t seed, unsigned threads,
                Body&& body, Merge&& merge) {
  run_shards(plan, seed, 0, plan.shard_count, threads, stream_mode::jump,
             std::forward<Body>(body), std::forward<Merge>(merge));
}

}  // namespace reldiv::mc
