#pragma once
// mc::distributed — the multi-process sweep driver (ROADMAP: "the missing
// piece is a driver that fans cell/shard windows out to OS processes and
// merges the serialized states").
//
// Execution model:
//
//   coordinator                    worker processes (reldiv_sweep --worker)
//   -----------                    -------------------------------------
//   init_run_dir(axes, cfg, dir)   load_run_manifest(dir)
//   clean_stale_claims(dir)        for each cell index in manifest order:
//   spawn N workers ------------->   skip if a valid state file exists
//   waitpid all                      claim via O_CREAT|O_EXCL claim file
//   merge_run_dir(dir)               run_scenario_cell(...)
//                                    write state file atomically
//                                    remove the claim
//
// The claim protocol is file-granular and crash-safe: a cell is DONE iff
// its state file exists and validates (fingerprint + index + checksum); a
// claim file only arbitrates between concurrently *live* workers.  A worker
// SIGKILLed mid-cell leaves at worst a stale claim and a .tmp file, both
// removed by clean_stale_claims on the next coordinator start — the cell is
// simply recomputed.  Because every cell result is a pure function of
// (manifest, cell index) and merge_run_dir assembles cells in ascending
// index order, the merged grid_result is bit-identical to the
// single-process run_scenario_grid for the same axes/config — regardless of
// worker count, scheduling, or how many kill/resume cycles the run
// suffered.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "mc/run_dir.hpp"
#include "mc/scenario.hpp"

namespace reldiv::mc {

/// Create (or re-open) a run directory for the given sweep: make
/// `<run_dir>/cells/`, write the binary manifest and its JSON mirror
/// atomically.  Re-opening an existing directory is the resume path — the
/// existing manifest must carry the same fingerprint, otherwise the
/// directory belongs to a different sweep and run_dir_error is thrown.
sweep_manifest init_run_dir(const scenario_axes& axes, const scenario_config& cfg,
                            const std::filesystem::path& run_dir);

/// Load and validate the manifest of an existing run directory.
[[nodiscard]] sweep_manifest load_run_manifest(const std::filesystem::path& run_dir);

/// Remove stale claim markers and orphaned .tmp files left by killed
/// workers.  Only call when no worker is running against the directory (the
/// coordinator calls it before spawning).
void clean_stale_claims(const std::filesystem::path& run_dir);

/// Cells whose state file is absent or fails validation, in ascending
/// order.  Empty means the run directory is complete and mergeable.
[[nodiscard]] std::vector<std::uint64_t> missing_cells(const std::filesystem::path& run_dir);

struct worker_report {
  std::size_t computed = 0;  ///< cells this worker claimed and wrote
  std::size_t skipped = 0;   ///< cells already done or claimed by others
};

/// Worker body: walk the manifest's cells, claim-and-compute every cell
/// that is not already done (a cell with an invalid/corrupt state file is
/// recomputed and its file replaced).  Stops early after `max_cells`
/// computed cells when max_cells > 0 — the deterministic-interruption hook
/// the resume tests and CI use.  Safe to run concurrently from any number
/// of processes on a shared filesystem.
worker_report run_pending_cells(const std::filesystem::path& run_dir,
                                std::size_t max_cells = 0);

/// Spawn `workers` copies of `worker_exe --worker --run-dir <run_dir>`
/// (plus `--max-cells N` when max_cells > 0) as detached OS processes.
/// Returns their pids.
[[nodiscard]] std::vector<int> spawn_sweep_workers(const std::string& worker_exe,
                                                   const std::filesystem::path& run_dir,
                                                   unsigned workers,
                                                   std::size_t max_cells = 0);

/// Wait for all pids; returns their exit codes (128+signal for a killed
/// worker).
[[nodiscard]] std::vector<int> wait_sweep_workers(const std::vector<int>& pids);

/// Assemble the completed run directory into the exact single-process
/// grid_result: read every cell state file in ascending index order,
/// validate it against the manifest (fingerprint, index, cell coordinates),
/// and append.  Throws run_dir_error if any cell is missing or invalid.
[[nodiscard]] grid_result merge_run_dir(const std::filesystem::path& run_dir);

struct distributed_config {
  std::filesystem::path run_dir;
  unsigned workers = 2;         ///< worker processes to spawn
  std::size_t max_cells = 0;    ///< per-worker cell quota (0 = unlimited)
};

/// The full coordinator: init (or resume) the run directory, clean stale
/// claims, fan the pending cells out to `cfg.workers` fresh processes of
/// `worker_exe`, wait for them, and merge.  Throws run_dir_error when
/// workers exit abnormally while cells are still missing, or when the
/// directory is incomplete after the workers finish (e.g. a max_cells
/// quota) — rerun to resume.
[[nodiscard]] grid_result run_distributed_grid(const scenario_axes& axes,
                                               const scenario_config& cfg,
                                               const distributed_config& dist,
                                               const std::string& worker_exe);

}  // namespace reldiv::mc
