#pragma once
// mc::distributed — the multi-process, multi-host job driver.  PR 4 built it
// as a scenario-cell sweep driver; it is now polymorphic over three job
// kinds (ROADMAP: "extend it to demand campaigns ... and to shard-window
// distribution of a single huge run_experiment ... needs a claim story that
// doesn't rely on O_EXCL semantics"):
//
//   job_kind::scenario_grid      cell = one scenario cell (run_scenario_cell)
//   job_kind::demand_campaign    cell = one roster window (run_demand_window)
//   job_kind::experiment_shards  cell = one shard window (run_experiment_window)
//
// Execution model (identical for every kind):
//
//   coordinator                    worker processes (reldiv_sweep --worker)
//   -----------                    -------------------------------------
//   init_*_run_dir(manifest, dir)  load manifest, dispatch on its kind
//   clean_stale_claims(dir)        for each cell index in manifest order:
//   spawn N workers ------------->   skip if a valid state file exists
//   waitpid all                      claim via rename-based lease file
//   merge_*_run_dir(dir)             compute the pure cell function
//                                    write state file atomically
//                                    remove the claim
//
// The claim protocol is file-granular and crash-safe: a cell is DONE iff its
// state file exists and validates (fingerprint + index + checksum); a claim
// file only arbitrates between concurrently *live* workers.  Claims are
// taken by writing a uniquely-named owner file (host + pid + timestamp) and
// renaming it onto the claim path with RENAME_NOREPLACE — atomic on local
// filesystems AND on shared network filesystems where O_CREAT|O_EXCL is
// historically unreliable, which is what makes one run directory on NFS
// safe for workers on many hosts.  A claim's lease timestamp is its file
// mtime, and lease AGE is measured against the same filesystem's clock (a
// freshly-touched probe file's mtime), so per-host clock skew cannot
// corrupt the arithmetic.  A claim is reaped only when its owner pid is
// provably dead on THIS host, or when its lease has been silent longer
// than the TTL — a young claim from another host is never touched.  Both
// the coordinator sweep (clean_stale_claims) and the workers themselves
// (on claim conflict) apply this rule, so a coordinator-less fleet
// recovers a lost host's cells on its own once the leases expire.  A
// worker SIGKILLed mid-cell leaves at worst a stale claim and a .tmp file;
// the cell is simply recomputed.  Because every cell result
// is a pure function of (manifest, cell index) and the merges assemble cells
// in ascending index order, the merged output is bit-identical to the
// single-process oracle (run_scenario_grid / run_demand_campaign /
// run_experiment) — regardless of worker count, host count, scheduling, or
// how many kill/resume cycles the run suffered.
//
// This PR hardens the protocol against the I/O layer itself (all filesystem
// traffic routes through mc::io_env, so the chaos harness can inject faults
// deterministically):
//
//   * lease renewal heartbeats — while computing, a worker re-touches its
//     claim's owner record on a cadence of lease_ttl / kHeartbeatsPerTtl, so
//     a cell whose runtime exceeds kClaimLeaseTtl is never reaped out from
//     under a live worker (the sweeps measure lease age by mtime, which the
//     heartbeat refreshes with the run filesystem's own clock);
//   * bounded deterministic retry — a transient I/O failure (EIO, ENOSPC,
//     torn write caught by the checksum) costs one attempt out of
//     worker_config::max_attempts, with an exponential backoff schedule
//     derived purely from the attempt number (no wall-clock randomness);
//   * poison-cell quarantine — a cell that exhausts its budget is recorded
//     under <run_dir>/quarantine/ (index, attempts, last errno) and the
//     worker moves on; the coordinator exits nonzero listing quarantined
//     cells, and merge names the quarantine record when it refuses a
//     partial directory.  A later clean resume re-attempts the cell and
//     clears the record on success — quarantine degrades, never corrupts.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "mc/run_dir.hpp"
#include "mc/scenario.hpp"

namespace reldiv::mc {

// ---------------------------------------------------------------------------
// run_handle — the job-kind-polymorphic facade over a run directory
// ---------------------------------------------------------------------------

/// The rendered tables of one merged run: what reldiv_sweep writes to
/// --out-csv/--out-json, and what mc::result_cache memoizes.  `cells` is the
/// merged cell/window count (the progress line's denominator).
struct merged_tables {
  std::string csv;
  std::string json;
  std::size_t cells = 0;
};

/// One run directory, whatever its job kind.  Three job kinds accreted six
/// per-kind free functions (init_/load_/merge_ × scenario/demand/experiment);
/// this facade replaces that sprawl with one object that dispatches on the
/// manifest's kind:
///
///   auto h = run_handle::open(dir);       // kind read from manifest.state
///   auto result = h.merge();              // variant over the three results
///   auto tables = h.merge_tables();       // rendered CSV/JSON, any kind
///
/// open() fully validates the manifest (container integrity + typed decode),
/// so a run_handle in hand means the directory's identity — kind,
/// fingerprint, cell count — is trustworthy.  The per-kind free functions
/// below survive as thin wrappers over this class.
class run_handle {
 public:
  using manifest_variant =
      std::variant<sweep_manifest, demand_manifest, experiment_manifest>;
  using result_variant = std::variant<grid_result, demand_tally, experiment_result>;

  /// Open an existing run directory, dispatching on its manifest's kind.
  [[nodiscard]] static run_handle open(const std::filesystem::path& run_dir);

  /// Create (or resume — same kind + fingerprint, else run_dir_error) a run
  /// directory for each job kind.  The demand/experiment manifests must
  /// validate().
  [[nodiscard]] static run_handle init(const scenario_axes& axes,
                                       const scenario_config& cfg,
                                       const std::filesystem::path& run_dir);
  [[nodiscard]] static run_handle init(const demand_manifest& m,
                                       const std::filesystem::path& run_dir);
  [[nodiscard]] static run_handle init(const experiment_manifest& m,
                                       const std::filesystem::path& run_dir);

  [[nodiscard]] job_kind kind() const noexcept { return kind_; }
  [[nodiscard]] std::uint64_t fingerprint() const noexcept { return fingerprint_; }
  [[nodiscard]] std::uint64_t cell_count() const noexcept { return cell_count_; }
  [[nodiscard]] const std::filesystem::path& dir() const noexcept { return dir_; }
  [[nodiscard]] const manifest_variant& manifest() const noexcept { return manifest_; }

  /// Typed manifest accessors; run_dir_error when the run holds another kind.
  [[nodiscard]] const sweep_manifest& grid_manifest() const;
  [[nodiscard]] const demand_manifest& demand_campaign_manifest() const;
  [[nodiscard]] const experiment_manifest& experiment_shards_manifest() const;

  /// Assemble the completed directory into the exact single-process result
  /// for its kind (see the per-kind merge contracts below).  Throws
  /// run_dir_error if any cell is missing or invalid.
  [[nodiscard]] result_variant merge() const;

  /// merge() rendered as the deterministic CSV/JSON tables for its kind —
  /// byte-identical to what the single-process oracle path emits.
  [[nodiscard]] merged_tables merge_tables() const;

  /// The run's spec/axes as %.17g-clean JSON (mc::describe_manifest_json):
  /// kind, fingerprint, seed, every axis, and atom-for-atom universes.
  [[nodiscard]] std::string describe() const;

 private:
  run_handle() = default;

  std::filesystem::path dir_;
  job_kind kind_ = job_kind::scenario_grid;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t cell_count_ = 0;
  manifest_variant manifest_;
};

// ---------------------------------------------------------------------------
// Deterministic result tables (the oracle and the distributed merge render
// results through these exact emitters, so byte-comparison is meaningful;
// grid_result carries its own to_csv()/to_json())
// ---------------------------------------------------------------------------

[[nodiscard]] std::string demand_tally_csv(const demand_manifest& m,
                                           const demand_tally& t);
[[nodiscard]] std::string demand_tally_json(const demand_tally& t);
[[nodiscard]] std::string experiment_result_csv(const experiment_result& r);
[[nodiscard]] std::string experiment_result_json(const experiment_result& r);

/// Create (or re-open) a run directory for the given scenario sweep: make
/// `<run_dir>/cells/`, write the binary manifest and its JSON mirror
/// atomically.  Re-opening an existing directory is the resume path — the
/// existing manifest must carry the same kind and fingerprint, otherwise the
/// directory belongs to a different run and run_dir_error is thrown.
/// Thin wrapper over run_handle::init (kept for the PR 4/5 call sites).
sweep_manifest init_run_dir(const scenario_axes& axes, const scenario_config& cfg,
                            const std::filesystem::path& run_dir);

/// Demand-campaign sibling of init_run_dir: `m` must validate().  Thin
/// wrapper over run_handle::init.
demand_manifest init_demand_run_dir(const demand_manifest& m,
                                    const std::filesystem::path& run_dir);

/// Experiment shard-window sibling of init_run_dir: `m` must validate()
/// (build it with make_experiment_manifest).  Thin wrapper over
/// run_handle::init.
experiment_manifest init_experiment_run_dir(const experiment_manifest& m,
                                            const std::filesystem::path& run_dir);

/// Which job kind an existing run directory holds (from its manifest's
/// container kind, after full integrity validation).  Cheaper than
/// run_handle::open — it peeks the container header without the typed
/// manifest decode — so dispatch-only call sites keep it.
[[nodiscard]] job_kind load_run_kind(const std::filesystem::path& run_dir);

/// Load and validate the manifest of an existing run directory of the
/// matching kind.
[[nodiscard]] sweep_manifest load_run_manifest(const std::filesystem::path& run_dir);
[[nodiscard]] demand_manifest load_demand_manifest(const std::filesystem::path& run_dir);
[[nodiscard]] experiment_manifest load_experiment_manifest(
    const std::filesystem::path& run_dir);

/// Default claim lease: a claim (or orphaned .tmp file) whose owner cannot
/// be probed — another host's worker — is only reaped after this long
/// without its state file landing.
inline constexpr std::chrono::seconds kClaimLeaseTtl{600};

/// What one clean_stale_claims sweep did — printed by reldiv_sweep so fleet
/// operators can watch recovery happen instead of inferring it.
struct claim_sweep_report {
  std::size_t claims_reaped = 0;   ///< stale/dead-owner claims removed
  std::size_t tmps_removed = 0;    ///< orphaned .tmp files removed
  std::size_t claims_honored = 0;  ///< live-lease claims left alone
};

/// Remove stale claim markers and orphaned .tmp files left by killed
/// workers.  Honors the lease protocol, so it is safe to call while workers
/// — including workers on other hosts — are running:
///   * a claim whose recorded host is THIS host and whose pid is dead is
///     reaped immediately;
///   * any other claim (unknown host, unparseable owner, live-looking pid)
///     is reaped only once its mtime is older than `ttl` — and a heartbeat
///     renewal refreshes that mtime, so an actively-renewed claim is
///     honored no matter how long its cell runs;
///   * same rules for write_file_atomic .tmp orphans.
claim_sweep_report clean_stale_claims(const std::filesystem::path& run_dir,
                                      std::chrono::seconds ttl = kClaimLeaseTtl);

/// Cells whose state file is absent or fails validation, in ascending
/// order.  Empty means the run directory is complete and mergeable.  Works
/// for every job kind.
[[nodiscard]] std::vector<std::uint64_t> missing_cells(const std::filesystem::path& run_dir);

/// Heartbeats per lease TTL: the renewal cadence is ttl / kHeartbeatsPerTtl,
/// comfortably under the TTL so one delayed beat (GC pause, NFS hiccup,
/// injected stall) cannot let a live claim expire.
inline constexpr unsigned kHeartbeatsPerTtl = 6;

/// Per-worker knobs; the defaults are what `run_pending_cells(dir,
/// max_cells)` has always done, plus retry and heartbeats.
struct worker_config {
  std::size_t max_cells = 0;  ///< stop after this many computed cells (0 = unlimited)
  std::chrono::seconds lease_ttl = kClaimLeaseTtl;
  /// Claim renewal cadence; zero means lease_ttl / kHeartbeatsPerTtl.
  std::chrono::milliseconds heartbeat{0};
  /// Attempts per cell before it is quarantined.  Transient I/O failures
  /// (io_error from any seam operation) cost one attempt each.
  std::uint32_t max_attempts = 4;
  /// Backoff before retry k (1-based) is backoff_base * 2^(k-1) — a pure
  /// function of the attempt number, so chaos runs replay exactly.
  std::chrono::milliseconds backoff_base{10};
  /// Checked before every cell; returning true ends the walk after the
  /// current cell — never mid-cell, so no claim or .tmp is left behind.  The
  /// long-poll service installs its drain-sentinel check here (see
  /// mc/service.hpp); empty means "never stop early".
  std::function<bool()> should_stop{};

  [[nodiscard]] std::chrono::milliseconds heartbeat_interval() const {
    if (heartbeat.count() > 0) return heartbeat;
    return std::chrono::duration_cast<std::chrono::milliseconds>(lease_ttl) /
           kHeartbeatsPerTtl;
  }
};

struct worker_report {
  std::size_t computed = 0;     ///< cells this worker claimed and wrote
  std::size_t skipped = 0;      ///< cells already done or claimed by others
  std::size_t retried = 0;      ///< retry attempts after transient I/O failures
  std::size_t quarantined = 0;  ///< cells that exhausted their retry budget
  std::uint64_t backoff_ms = 0; ///< total deterministic backoff slept
};

/// Worker body: walk the manifest's cells, claim-and-compute every cell
/// that is not already done (a cell with an invalid/corrupt state file is
/// recomputed and its file replaced).  Dispatches on the directory's job
/// kind — the same worker loop serves scenario grids, demand campaigns and
/// experiment shard windows.  Stops early after `max_cells` computed cells
/// when max_cells > 0 — the deterministic-interruption hook the resume
/// tests and CI use.  Safe to run concurrently from any number of processes
/// on any number of hosts sharing the directory's filesystem.
///
/// While a cell computes, a heartbeat thread renews the claim lease; a
/// transient I/O failure is retried with deterministic backoff up to
/// cfg.max_attempts, then the cell is quarantined (see quarantined_cells)
/// and the walk continues.  A successful compute clears any stale
/// quarantine record for that cell.
worker_report run_pending_cells(const std::filesystem::path& run_dir,
                                const worker_config& cfg);
worker_report run_pending_cells(const std::filesystem::path& run_dir,
                                std::size_t max_cells = 0);

/// Renews one claim's lease from a background thread: every `interval`, the
/// owner record is rewritten in place (create=false — a reaped claim is
/// never resurrected), refreshing its mtime with the run filesystem's own
/// clock.  If the claim vanishes mid-renewal, lost() flips true and beating
/// stops; transient io_error on a beat is skipped and the next beat retries.
/// stop() (or destruction) joins the thread.
class claim_heartbeat {
 public:
  claim_heartbeat(std::filesystem::path claim_path, std::string owner_body,
                  std::chrono::milliseconds interval);
  ~claim_heartbeat();
  claim_heartbeat(const claim_heartbeat&) = delete;
  claim_heartbeat& operator=(const claim_heartbeat&) = delete;

  void stop();
  /// True when a beat found the claim gone (reaped by a sweep).
  [[nodiscard]] bool lost() const noexcept { return lost_.load(); }
  /// Successful renewals so far.
  [[nodiscard]] std::uint64_t beats() const noexcept { return beats_.load(); }

 private:
  void run();

  std::filesystem::path claim_path_;
  std::string body_;
  std::chrono::milliseconds interval_;
  std::atomic<bool> lost_{false};
  std::atomic<std::uint64_t> beats_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

/// One poison-cell ledger entry (a `quarantine/cell_NNNNNN.quarantine`
/// file).  The record is advisory — the cell still reads as missing, so a
/// clean rerun recomputes it and clears the record.
struct quarantine_record {
  std::uint64_t cell_index = 0;
  std::uint32_t attempts = 0;
  int error_number = 0;  ///< errno of the last failing attempt
  std::string message;   ///< what() of the last failing attempt
};

/// The quarantine ledger of a run directory, in ascending cell order.
/// Unparseable records are reported with their index parsed from the
/// filename and an explanatory message — never silently dropped.
[[nodiscard]] std::vector<quarantine_record> quarantined_cells(
    const std::filesystem::path& run_dir);

/// Owner record parsed from a claim file ("host H\npid P\ntime T\n").  A
/// legacy or foreign-format claim parses to {host: "", pid: -1} and is
/// handled by the lease-TTL rule alone.  Public so the service status layer
/// can count distinct live claim owners (mc::query_service_status).
struct claim_owner {
  std::string host;
  long pid = -1;
};

[[nodiscard]] claim_owner parse_claim_owner(const std::string& body);

/// Spawn `count` identical copies of `exe` with `args` (argv[0] included) as
/// detached OS processes; returns their pids.  The generic fan-out primitive
/// under spawn_sweep_workers and the service fleet launcher.  Partial
/// failure never leaks processes: already-spawned pids are reaped before the
/// error is thrown.
[[nodiscard]] std::vector<int> spawn_processes(const std::string& exe,
                                               const std::vector<std::string>& args,
                                               unsigned count);

/// Spawn `workers` copies of `worker_exe --worker --run-dir <run_dir>`
/// (plus `--max-cells N` when max_cells > 0, plus `extra_args` verbatim —
/// the chaos harness passes `--fault-plan <recipe>` this way) as detached
/// OS processes.  Returns their pids.  Thin wrapper over spawn_processes.
[[nodiscard]] std::vector<int> spawn_sweep_workers(
    const std::string& worker_exe, const std::filesystem::path& run_dir,
    unsigned workers, std::size_t max_cells = 0,
    const std::vector<std::string>& extra_args = {});

/// Wait for all pids; returns their exit codes (128+signal for a killed
/// worker).
[[nodiscard]] std::vector<int> wait_sweep_workers(const std::vector<int>& pids);

/// Assemble a completed scenario run directory into the exact single-process
/// grid_result: read every cell state file in ascending index order,
/// validate it against the manifest (fingerprint, index, cell coordinates),
/// and append.  Throws run_dir_error if any cell is missing or invalid — or
/// if the directory holds another job kind.  Thin wrapper over
/// run_handle::open(run_dir).merge().
[[nodiscard]] grid_result merge_run_dir(const std::filesystem::path& run_dir);

/// Assemble a completed demand run directory into the exact
/// run_demand_campaign tally: window slices are placed (integer counts —
/// placement IS the merge) in ascending window order after fingerprint and
/// bounds validation.  Thin wrapper over run_handle, same kind-mismatch
/// contract as merge_run_dir.
[[nodiscard]] demand_tally merge_demand_run_dir(const std::filesystem::path& run_dir);

/// Assemble a completed experiment run directory into the exact
/// run_experiment result: every window's per-shard accumulator states are
/// folded — empty accumulator first, then ascending shard order — replaying
/// run_experiment's left fold bit-for-bit.  Thin wrapper over run_handle,
/// same kind-mismatch contract as merge_run_dir.
[[nodiscard]] experiment_result merge_experiment_run_dir(
    const std::filesystem::path& run_dir);

struct distributed_config {
  std::filesystem::path run_dir;
  unsigned workers = 2;         ///< worker processes to spawn
  std::size_t max_cells = 0;    ///< per-worker cell quota (0 = unlimited)
  /// When non-empty, passed to each worker as `--fault-plan <recipe>`
  /// (fault_plan::to_string format) — the chaos harness's injection hook.
  /// The coordinator itself stays un-injected so its merge verdict is
  /// trustworthy.
  std::string worker_fault_plan{};
};

/// The full coordinator: init (or resume) the run directory, clean stale
/// claims, fan the pending cells out to `cfg.workers` fresh processes of
/// `worker_exe`, wait for them, and merge.  Throws run_dir_error when
/// workers exit abnormally while cells are still missing, when any cell
/// was quarantined (the message lists the ledger), or when the directory
/// is incomplete after the workers finish (e.g. a max_cells quota) — rerun
/// to resume.
[[nodiscard]] grid_result run_distributed_grid(const scenario_axes& axes,
                                               const scenario_config& cfg,
                                               const distributed_config& dist,
                                               const std::string& worker_exe);

/// Demand-campaign coordinator, same contract as run_distributed_grid.
[[nodiscard]] demand_tally run_distributed_demand(const demand_manifest& m,
                                                  const distributed_config& dist,
                                                  const std::string& worker_exe);

/// Experiment shard-window coordinator, same contract as
/// run_distributed_grid.
[[nodiscard]] experiment_result run_distributed_experiment(
    const experiment_manifest& m, const distributed_config& dist,
    const std::string& worker_exe);

}  // namespace reldiv::mc
