#include "mc/service.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <set>
#include <thread>
#include <utility>

#include "mc/io_env.hpp"

namespace reldiv::mc {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Layout
// ---------------------------------------------------------------------------

fs::path queue_dir(const fs::path& root) { return root / "queue"; }

fs::path runs_dir(const fs::path& root) { return root / "runs"; }

fs::path service_cache_dir(const fs::path& root) { return root / "cache"; }

fs::path drain_path(const fs::path& root) { return root / "drain"; }

// ---------------------------------------------------------------------------
// Queue
// ---------------------------------------------------------------------------

void validate_submission_name(const std::string& name) {
  const bool bad = name.empty() || name.front() == '.' ||
                   name.find('/') != std::string::npos ||
                   name.find('\\') != std::string::npos ||
                   name.find('\0') != std::string::npos;
  if (bad) {
    throw std::invalid_argument("service: submission name '" + name +
                                "' must be a plain filename (non-empty, no path "
                                "separators, no leading dot)");
  }
}

namespace {

fs::path queue_pointer_path(const fs::path& root, const std::string& name) {
  return queue_dir(root) / (name + ".run");
}

void create_dir_or_throw(const fs::path& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw run_dir_error("service: cannot create " + dir.string() + ": " + ec.message());
  }
}

}  // namespace

bool submit_queued_run(const fs::path& root, const std::string& name,
                       const fs::path& run_dir) {
  validate_submission_name(name);
  create_dir_or_throw(queue_dir(root));
  io_env& env = active_io_env();
  const fs::path pointer = queue_pointer_path(root, name);
  // The try_claim pattern: a uniquely-named sibling published with
  // rename_noreplace.  The pointer is never observable half-written, and of
  // two racing submissions under one name exactly one wins — the loser
  // changed nothing (its run dir may simply be resumed by the winner's
  // entry when the manifests are identical).
  const fs::path unique = pointer.string() + ".tmp." + claim_host_name() + "." +
                          std::to_string(::getpid());
  try {
    env.write_file(unique, run_dir.string() + "\n", /*sync=*/true);
  } catch (...) {
    std::error_code ec;
    fs::remove(unique, ec);
    throw;
  }
  const int rc = env.rename_noreplace(unique, pointer);
  if (rc == 0) {
    env.fsync_dir(queue_dir(root));
    return true;
  }
  std::error_code ec;
  fs::remove(unique, ec);
  if (rc == -EEXIST) return false;
  throw io_error("submit", pointer, -rc);
}

std::vector<queue_entry> queued_runs(const fs::path& root) {
  std::vector<queue_entry> entries;
  const fs::path dir = queue_dir(root);
  std::error_code ec;
  if (!fs::exists(dir, ec)) return entries;
  for (const auto& item : fs::directory_iterator(dir, ec)) {
    const std::string filename = item.path().filename().string();
    if (!filename.ends_with(".run")) continue;
    queue_entry entry;
    entry.name = filename.substr(0, filename.size() - 4);
    try {
      const std::string body = read_file(item.path());
      entry.run_dir = body.substr(0, std::min(body.find('\n'), body.size()));
    } catch (const run_dir_error&) {
      // Dequeued between listing and read — gone is gone.
      continue;
    }
    if (entry.run_dir.empty()) continue;
    entries.push_back(std::move(entry));
  }
  // Submission-name order, never directory order and never mtime: every
  // worker on every host walks the same deterministic sequence.
  std::sort(entries.begin(), entries.end(),
            [](const queue_entry& a, const queue_entry& b) { return a.name < b.name; });
  return entries;
}

bool dequeue_run(const fs::path& root, const std::string& name) {
  validate_submission_name(name);
  std::error_code ec;
  return fs::remove(queue_pointer_path(root, name), ec) && !ec;
}

// ---------------------------------------------------------------------------
// Drain sentinel
// ---------------------------------------------------------------------------

void request_drain(const fs::path& root) {
  create_dir_or_throw(root);
  (void)active_io_env().touch(drain_path(root), "drain\n", /*create=*/true);
}

bool drain_requested(const fs::path& root) {
  std::error_code ec;
  return fs::exists(drain_path(root), ec);
}

void clear_drain(const fs::path& root) {
  std::error_code ec;
  fs::remove(drain_path(root), ec);
}

// ---------------------------------------------------------------------------
// Long-poll worker
// ---------------------------------------------------------------------------

service_report run_service_worker(const fs::path& root, const service_config& cfg) {
  service_report report;
  std::set<std::string> served;
  std::size_t consecutive_empty = 0;
  std::chrono::milliseconds delay = cfg.poll_min;

  for (;;) {
    if (drain_requested(root)) {
      report.drained = true;
      break;
    }

    bool progressed = false;
    for (const queue_entry& entry : queued_runs(root)) {
      if (drain_requested(root)) break;
      worker_config wcfg = cfg.worker;
      const std::function<bool()> base_stop = cfg.worker.should_stop;
      const fs::path drain_root = root;
      // The drain sentinel interrupts a worker between cells even mid-run;
      // run_pending_cells guarantees no claim or .tmp survives the stop.
      wcfg.should_stop = [drain_root, base_stop] {
        return drain_requested(drain_root) || (base_stop && base_stop());
      };
      worker_report r;
      try {
        r = run_pending_cells(entry.run_dir, wcfg);
      } catch (const run_dir_error&) {
        // Pointer to a missing or invalid run directory: not this worker's
        // problem to fix — status reports it as unreadable.
        continue;
      }
      report.cells_computed += r.computed;
      report.cells_skipped += r.skipped;
      report.retried += r.retried;
      report.quarantined += r.quarantined;
      if (r.computed > 0) {
        progressed = true;
        served.insert(entry.name);
      }
    }
    if (drain_requested(root)) {
      report.drained = true;
      break;
    }

    if (progressed) {
      // Work happened: someone may have submitted more while we computed.
      // Re-poll immediately and reset the backoff schedule.
      consecutive_empty = 0;
      delay = cfg.poll_min;
      continue;
    }

    ++consecutive_empty;
    ++report.polls;
    if (cfg.max_polls > 0 && consecutive_empty >= cfg.max_polls) break;
    // Deterministic bounded backoff: sleep min(poll_min * 2^(k-1), poll_max)
    // after the k'th consecutive empty poll — a pure function of k.  The
    // sleep is chunked only so a drain request is honored promptly; the
    // schedule itself never consults a clock.
    std::chrono::milliseconds remaining = delay;
    const std::chrono::milliseconds chunk{25};
    while (remaining.count() > 0) {
      if (drain_requested(root)) break;
      const std::chrono::milliseconds step = std::min(remaining, chunk);
      std::this_thread::sleep_for(step);
      remaining -= step;
    }
    delay = std::min(delay * 2, cfg.poll_max);
  }

  report.runs_served = served.size();
  return report;
}

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

namespace {

/// Distinct (host, pid) owner records among a run's claim files.  Purely
/// what is on disk: no liveness probing, no clocks.
std::set<std::pair<std::string, long>> claim_owners(const fs::path& run_dir) {
  std::set<std::pair<std::string, long>> owners;
  const fs::path dir = cells_dir(run_dir);
  std::error_code ec;
  if (!fs::exists(dir, ec)) return owners;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.path().filename().string().ends_with(".claim")) continue;
    try {
      const claim_owner owner = parse_claim_owner(read_file(entry.path()));
      owners.emplace(owner.host, owner.pid);
    } catch (const run_dir_error&) {
      // Released between listing and read: not an active worker.
    }
  }
  return owners;
}

/// Minimal JSON string escaping (names and paths; control characters are
/// replaced, not escaped — they cannot round-trip through filenames anyway).
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += '?';
    } else {
      out += c;
    }
  }
  out += '"';
}

}  // namespace

service_status query_service_status(const fs::path& root) {
  service_status status;
  status.draining = drain_requested(root);
  std::set<std::pair<std::string, long>> fleet_owners;
  for (const queue_entry& entry : queued_runs(root)) {
    run_status rs;
    rs.name = entry.name;
    rs.run_dir = entry.run_dir;
    try {
      const run_handle h = run_handle::open(entry.run_dir);
      rs.kind = h.kind();
      rs.fingerprint = h.fingerprint();
      rs.cells_total = h.cell_count();
      // Done-ness is the integrity-validated complement of missing_cells:
      // a torn or foreign cell file counts as NOT done, exactly as the
      // worker loop and the merge see it.
      rs.cells_done = rs.cells_total - missing_cells(entry.run_dir).size();
      rs.quarantined = quarantined_cells(entry.run_dir).size();
      const auto owners = claim_owners(entry.run_dir);
      rs.active_workers = owners.size();
      fleet_owners.insert(owners.begin(), owners.end());
    } catch (const run_dir_error&) {
      rs.readable = false;
    }
    status.cells_done += rs.cells_done;
    status.cells_total += rs.cells_total;
    status.quarantined += rs.quarantined;
    status.runs.push_back(std::move(rs));
  }
  status.active_workers = fleet_owners.size();
  return status;
}

std::string service_status::to_json() const {
  std::string out = "{\n  \"draining\": ";
  out += draining ? "true" : "false";
  out += ",\n  \"cells_done\": " + std::to_string(cells_done);
  out += ",\n  \"cells_total\": " + std::to_string(cells_total);
  out += ",\n  \"quarantined\": " + std::to_string(quarantined);
  out += ",\n  \"active_workers\": " + std::to_string(active_workers);
  out += ",\n  \"runs\": [";
  char buf[64];
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const run_status& r = runs[i];
    out += i > 0 ? ",\n    {" : "\n    {";
    out += "\"name\": ";
    append_json_string(out, r.name);
    out += ", \"run_dir\": ";
    append_json_string(out, r.run_dir.string());
    out += ", \"kind\": ";
    append_json_string(out, job_kind_name(r.kind));
    out += ", \"fingerprint\": " + std::to_string(r.fingerprint);
    out += ", \"cells_done\": " + std::to_string(r.cells_done);
    out += ", \"cells_total\": " + std::to_string(r.cells_total);
    out += ", \"quarantined\": " + std::to_string(r.quarantined);
    out += ", \"active_workers\": " + std::to_string(r.active_workers);
    const double fraction =
        r.cells_total > 0
            ? static_cast<double>(r.cells_done) / static_cast<double>(r.cells_total)
            : 0.0;
    std::snprintf(buf, sizeof(buf), "%.17g", fraction);
    out += ", \"fraction_done\": ";
    out += buf;
    out += ", \"readable\": ";
    out += r.readable ? "true" : "false";
    out += '}';
  }
  out += runs.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// result_cache
// ---------------------------------------------------------------------------

result_cache::result_cache(const fs::path& root) : dir_(service_cache_dir(root)) {}

fs::path result_cache::entry_path(std::uint64_t fingerprint) const {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "result_%016llx.state",
                static_cast<unsigned long long>(fingerprint));
  return dir_ / buf;
}

std::optional<cached_result> result_cache::lookup(std::uint64_t fingerprint) const {
  const fs::path path = entry_path(fingerprint);
  std::error_code ec;
  if (!fs::exists(path, ec)) return std::nullopt;
  try {
    cached_result entry = decode_cached_result(read_file(path));
    // A renamed or hand-copied entry whose payload disagrees with its
    // filename is a miss, not a wrong answer.
    if (entry.fingerprint != fingerprint) return std::nullopt;
    return entry;
  } catch (const run_dir_error&) {
    // Absent, torn, truncated, wrong kind: every defect means recompute.
    return std::nullopt;
  }
}

void result_cache::store(const cached_result& entry) {
  create_dir_or_throw(dir_);
  write_file_atomic(entry_path(entry.fingerprint), encode_cached_result(entry));
}

cached_result merge_and_store(result_cache& cache, const fs::path& run_dir) {
  const run_handle h = run_handle::open(run_dir);
  const merged_tables tables = h.merge_tables();
  cached_result entry;
  entry.kind = h.kind();
  entry.fingerprint = h.fingerprint();
  entry.csv = tables.csv;
  entry.json = tables.json;
  cache.store(entry);
  return entry;
}

}  // namespace reldiv::mc
