#pragma once
// mc::sweep_service — the always-on layer over the run-dir protocol
// (ROADMAP item 1: batch → fleet).  PR 5's rename/lease claims and PR 6's
// io_env seam already make one run directory safe for any number of worker
// processes on any number of hosts; this layer assembles them into a
// long-lived service:
//
//   <root>/queue/<name>.run   one pointer file per submitted run: its bytes
//                             are the run directory's path.  Submission is
//                             an atomic publish — write a unique temp
//                             sibling, then rename_noreplace onto the
//                             pointer path, all through the active io_env —
//                             so a submission either exists in full or not
//                             at all, and a duplicate name loses the rename
//                             race instead of clobbering.  Queue ORDER is
//                             the lexicographic order of submission names,
//                             never wall-clock: every worker walks the same
//                             deterministic sequence regardless of clock
//                             skew or directory-iteration order.
//   <root>/runs/<name>/       the run directories themselves (by
//                             convention; a pointer may target any path on
//                             the same filesystem).
//   <root>/cache/             mc::result_cache — merged results memoized by
//                             manifest fingerprint (state_kind::cached_result
//                             containers, checksummed like every state file).
//   <root>/drain              the graceful-shutdown sentinel: workers finish
//                             the cell they are computing, then exit —
//                             leaving no claims and no .tmp files.
//
// Long-poll workers (run_service_worker) never exit on an empty queue:
// they sleep with bounded deterministic backoff (poll_min doubling to
// poll_max, reset on progress — a pure function of the empty-poll count,
// measured by steady_clock only) and pick up runs submitted after they
// started.  Underneath, each pass over a run is exactly the PR 6 worker
// loop — heartbeats, retry/backoff, quarantine — unchanged.
//
// Progress reporting (query_service_status) is a pure function of the
// on-disk claim owner records and completed cell files: no worker
// registration, no liveness probes, no wall-clock — so the same directory
// state always reports the same status, from any host.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "mc/distributed.hpp"
#include "mc/run_dir.hpp"

namespace reldiv::mc {

// Service-root layout.
[[nodiscard]] std::filesystem::path queue_dir(const std::filesystem::path& root);
[[nodiscard]] std::filesystem::path runs_dir(const std::filesystem::path& root);
[[nodiscard]] std::filesystem::path service_cache_dir(const std::filesystem::path& root);
[[nodiscard]] std::filesystem::path drain_path(const std::filesystem::path& root);

/// One queued submission: the name that orders it and the run directory its
/// pointer file targets.
struct queue_entry {
  std::string name;
  std::filesystem::path run_dir;
};

/// Submission names are filenames: one path segment, no separators, not
/// empty, no leading dot.  Throws std::invalid_argument otherwise.
void validate_submission_name(const std::string& name);

/// Publish run_dir on the queue as `name`.  Atomic through the io_env seam
/// (unique temp + rename_noreplace): returns true when newly enqueued,
/// false when `name` was already queued — the submission that lost the race
/// changed nothing.  The run directory itself must already exist (use
/// run_handle::init); a pointer to a missing directory is skipped by
/// workers and reported by status as unreadable.
bool submit_queued_run(const std::filesystem::path& root, const std::string& name,
                       const std::filesystem::path& run_dir);

/// The queue, in deterministic submission-name order (lexicographic —
/// never mtime).  Unreadable pointer files are skipped.
[[nodiscard]] std::vector<queue_entry> queued_runs(const std::filesystem::path& root);

/// Remove one submission's pointer file (its run directory is untouched).
/// Returns false when `name` was not queued.
bool dequeue_run(const std::filesystem::path& root, const std::string& name);

/// Raise / inspect / clear the graceful-shutdown sentinel.  Workers honor it
/// between cells, so a drained fleet leaves no claims and no .tmp files.
void request_drain(const std::filesystem::path& root);
[[nodiscard]] bool drain_requested(const std::filesystem::path& root);
void clear_drain(const std::filesystem::path& root);

/// Long-poll worker knobs.  The backoff schedule is deterministic: after k
/// consecutive empty polls the worker sleeps min(poll_min * 2^(k-1),
/// poll_max) — a pure function of k, like the retry backoff in
/// worker_config.  Any progress resets k to zero.
struct service_config {
  worker_config worker{};
  std::chrono::milliseconds poll_min{50};
  std::chrono::milliseconds poll_max{1000};
  /// Stop after this many consecutive empty polls (0 = serve forever, until
  /// drain).  The deterministic-interruption hook tests and benches use.
  std::size_t max_polls = 0;
};

/// What one service worker did over its lifetime.
struct service_report {
  std::size_t runs_served = 0;     ///< distinct runs this worker computed cells for
  std::size_t cells_computed = 0;
  std::size_t cells_skipped = 0;
  std::size_t retried = 0;
  std::size_t quarantined = 0;
  std::uint64_t polls = 0;         ///< empty polls slept through
  bool drained = false;            ///< exited via the drain sentinel
};

/// The long-poll worker body: walk the queue in submission order, run the
/// PR 6 claim-and-compute loop over every queued run, and — instead of
/// exiting when everything is claimed — keep polling for new submissions
/// with bounded deterministic backoff until the drain sentinel appears (or
/// max_polls empty polls pass).  The drain check is also installed as the
/// per-cell should_stop hook, so a drain request interrupts a worker
/// between cells even mid-run.  Safe to run from any number of processes
/// on any number of hosts sharing the root's filesystem.
service_report run_service_worker(const std::filesystem::path& root,
                                  const service_config& cfg = {});

/// Progress of one queued run — a pure function of its claim owner records
/// and completed cell files.
struct run_status {
  std::string name;
  std::filesystem::path run_dir;
  job_kind kind = job_kind::scenario_grid;
  std::uint64_t fingerprint = 0;
  std::uint64_t cells_done = 0;
  std::uint64_t cells_total = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t active_workers = 0;  ///< distinct (host, pid) claim owners
  bool readable = true;  ///< false: pointer target missing or manifest invalid
};

/// Fleet-wide progress: per-run rows plus their aggregates.  active_workers
/// counts distinct (host, pid) owner records across all runs — a worker
/// holds at most one claim at a time, so this is the number of workers
/// provably computing right now.
struct service_status {
  std::vector<run_status> runs;  ///< submission-name order
  std::uint64_t cells_done = 0;
  std::uint64_t cells_total = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t active_workers = 0;
  bool draining = false;

  /// %.17g-clean JSON (integers verbatim; the only float is each run's
  /// fraction_done).  Stable field order, deterministic for a given
  /// directory state.
  [[nodiscard]] std::string to_json() const;
};

[[nodiscard]] service_status query_service_status(const std::filesystem::path& root);

// ---------------------------------------------------------------------------
// result_cache — the fingerprint-memoized query front-end
// ---------------------------------------------------------------------------

/// Merged results keyed by manifest fingerprint.  The fingerprint is the
/// FNV-1a of the manifest payload and already uniquely keys every cell's
/// inputs (it is stamped into each cell state file), so an entry with a
/// matching fingerprint IS the run's merged result: re-submitting an
/// identical manifest is served from here without recomputing a cell.
/// Entries are cached_result containers (checksummed, atomic-written); any
/// defect — absent, torn, wrong fingerprint — reads as a miss, and a miss
/// just means recompute.
class result_cache {
 public:
  explicit result_cache(const std::filesystem::path& root);

  /// Where fingerprint's entry lives: cache/result_<16-hex>.state.
  [[nodiscard]] std::filesystem::path entry_path(std::uint64_t fingerprint) const;

  /// The memoized result, or nullopt on any miss/defect.
  [[nodiscard]] std::optional<cached_result> lookup(std::uint64_t fingerprint) const;

  /// Memoize one merged result (atomic write through the seam).
  void store(const cached_result& entry);

 private:
  std::filesystem::path dir_;
};

/// Merge a completed run directory through run_handle, memoize the rendered
/// tables under the run's fingerprint, and return the entry.  Throws
/// run_dir_error while the run is incomplete.
cached_result merge_and_store(result_cache& cache, const std::filesystem::path& run_dir);

}  // namespace reldiv::mc
