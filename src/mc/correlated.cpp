#include "mc/correlated.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/distributions.hpp"

namespace reldiv::mc {

common_cause_mixture::common_cause_mixture(const core::fault_universe& u, double rho,
                                           double stress)
    : u_(&u), rho_(rho) {
  if (!(rho >= 0.0) || !(rho < 1.0)) {
    throw std::invalid_argument("common_cause_mixture: rho must be in [0,1)");
  }
  if (!(stress >= 1.0)) {
    throw std::invalid_argument("common_cause_mixture: stress must be >= 1");
  }
  marginal_.reserve(u.size());
  stressed_p_.reserve(u.size());
  relaxed_p_.reserve(u.size());
  for (const auto& a : u) {
    const double hi = std::min(1.0, stress * a.p);
    // Solve rho*hi + (1-rho)*lo = p for the relaxed probability lo.
    const double lo = rho > 0.0 ? (a.p - rho * hi) / (1.0 - rho) : a.p;
    if (lo < -1e-12) {
      throw std::invalid_argument(
          "common_cause_mixture: marginal preservation infeasible (rho*stress too large)");
    }
    // The marginal the construction preserves is a.p itself; recomputing it
    // from the clamped relaxed probability would drift near the feasibility
    // boundary (where lo rounds to a hair below 0 and is clamped away).
    marginal_.push_back(a.p);
    stressed_p_.push_back(hi);
    relaxed_p_.push_back(std::max(0.0, lo));
  }
  stressed_thresh_.reserve(stressed_p_.size());
  relaxed_thresh_.reserve(relaxed_p_.size());
  for (const double p : stressed_p_) stressed_thresh_.push_back(core::bernoulli_threshold(p));
  for (const double p : relaxed_p_) relaxed_thresh_.push_back(core::bernoulli_threshold(p));
}

version common_cause_mixture::sample(stats::rng& r) const {
  // Delegate to the mask sampler so the sparse and packed paths cannot
  // diverge: identical rng consumption, indices emitted in ascending order.
  core::fault_mask m;
  sample_mask(r, m);
  return to_version(m);
}

void common_cause_mixture::sample_mask(stats::rng& r, core::fault_mask& out) const {
  const bool stressed = r.bernoulli(rho_);
  sample_mask_from_thresholds(stressed ? stressed_thresh_ : relaxed_thresh_, r, out);
}

double common_cause_mixture::marginal(std::size_t i) const {
  if (i >= marginal_.size()) throw std::out_of_range("common_cause_mixture::marginal");
  return marginal_[i];
}

double common_cause_mixture::indicator_correlation(std::size_t i, std::size_t j) const {
  if (i >= stressed_p_.size() || j >= stressed_p_.size() || i == j) {
    throw std::invalid_argument("indicator_correlation: need distinct valid indices");
  }
  const double pi = marginal(i);
  const double pj = marginal(j);
  // E[Xi Xj] = rho*hi_i*hi_j + (1-rho)*lo_i*lo_j (conditional independence).
  const double exy =
      rho_ * stressed_p_[i] * stressed_p_[j] + (1.0 - rho_) * relaxed_p_[i] * relaxed_p_[j];
  const double cov = exy - pi * pj;
  const double denom = std::sqrt(pi * (1.0 - pi) * pj * (1.0 - pj));
  return denom > 0.0 ? cov / denom : 0.0;
}

gaussian_copula_sampler::gaussian_copula_sampler(const core::fault_universe& u, double rho)
    : u_(&u), rho_(rho) {
  if (!(rho > -1.0) || !(rho < 1.0)) {
    throw std::invalid_argument("gaussian_copula_sampler: rho must be in (-1,1)");
  }
  thresholds_.reserve(u.size());
  for (const auto& a : u) {
    if (a.p <= 0.0) {
      thresholds_.push_back(-1e30);  // never present
    } else if (a.p >= 1.0) {
      thresholds_.push_back(1e30);  // always present
    } else {
      thresholds_.push_back(stats::normal_quantile(a.p));
    }
  }
}

version gaussian_copula_sampler::sample(stats::rng& r) const {
  core::fault_mask m;
  sample_mask(r, m);
  return to_version(m);
}

void gaussian_copula_sampler::sample_mask(stats::rng& r, core::fault_mask& out) const {
  const std::size_t n = thresholds_.size();
  if (out.bit_size() != n) out.resize(n);
  out.clear();
  const double shared = stats::normal_deviate(r);
  const double abs_rho = std::fabs(rho_);
  const double w_shared = std::sqrt(abs_rho);
  const double w_own = std::sqrt(1.0 - abs_rho);
  for (std::size_t i = 0; i < n; ++i) {
    // Negative rho: alternate the shared factor's sign across faults, which
    // yields negative association between odd/even fault pairs while
    // preserving the standard-normal latent marginal.
    const double sign = (rho_ < 0.0 && (i % 2 == 1)) ? -1.0 : 1.0;
    const double z = sign * w_shared * shared + w_own * stats::normal_deviate(r);
    if (z < thresholds_[i]) out.set(i);
  }
}

core::fault_universe merge_fault_groups(const core::fault_universe& u,
                                        const std::vector<std::vector<std::size_t>>& groups) {
  std::vector<bool> used(u.size(), false);
  std::vector<core::fault_atom> atoms;
  for (const auto& g : groups) {
    if (g.empty()) throw std::invalid_argument("merge_fault_groups: empty group");
    core::fault_atom merged{0.0, 0.0};
    for (const std::size_t i : g) {
      if (i >= u.size()) throw std::out_of_range("merge_fault_groups: index");
      if (used[i]) throw std::invalid_argument("merge_fault_groups: overlapping groups");
      used[i] = true;
      merged.p = std::max(merged.p, u[i].p);  // perfectly-correlated limit
      merged.q += u[i].q;                     // union of disjoint regions
    }
    if (merged.q > 1.0) {
      throw std::invalid_argument(
          "merge_fault_groups: group q sum exceeds 1 (failure regions cannot be "
          "disjoint probabilities)");
    }
    atoms.push_back(merged);
  }
  for (std::size_t i = 0; i < u.size(); ++i) {
    if (!used[i]) atoms.push_back(u[i]);
  }
  return core::fault_universe(std::move(atoms));
}

}  // namespace reldiv::mc
