#pragma once
// mc::scenario_grid — declarative parameter-sweep driver on the campaign
// layer.  The paper's §6 sensitivity programme (and benches E12–E14) asks
// the same question over and over: take a fault universe, perturb one
// modelling assumption — correlated fault introduction (§6.1), partially
// overlapping failure regions (§6.2), many-to-one fault↔region aliasing
// (§6.3) — and measure what happens to the pair statistics.  Instead of a
// hand-written loop per study, a scenario_axes declares the sweep:
//
//   axes: universe generator × correlation ρ × region overlap ω ×
//         aliasing multiplicity × demand budget
//
// run_scenario_grid enumerates the cells (row-major in that axis order),
// fans them out over the shared worker pool (mc::run_jobs), and merges
// per-cell results in cell order.  Each cell runs its own deterministic
// sharded campaign from a seed derived purely from (grid seed, cell index),
// so the whole grid is bit-identical across thread counts.
//
// Checkpoint/resume: a cell's full empirical state is its
// mc::accumulator_state (the library's wire format, ROADMAP's multi-process
// substrate).  run_scenario_cells processes any [begin, end) cell window and
// appends to an existing grid_result, so a sweep interrupted at a cell
// boundary and resumed from its serialized cells equals the uninterrupted
// run exactly.  Results export as CSV and JSON for downstream tooling.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/fault_universe.hpp"
#include "core/kofn.hpp"
#include "mc/experiment.hpp"

namespace reldiv::mc {

/// Correlation model behind the ρ axis.  `mixture` is the paper's
/// marginal-preserving common-cause mixture (ρ in [0,1)); `copula` is the
/// Gaussian-copula equicorrelation sampler, which also admits NEGATIVE ρ in
/// (−1,0) — forced diversity between the channels.  The enum values are
/// wire values (append-only).
enum class correlation_model : std::uint32_t { mixture = 0, copula = 1 };

/// The sweep declaration.  Every axis must be non-empty; the default is a
/// single cell at the model's baseline assumptions (independent
/// introduction, fully shared regions, 1-to-1 fault↔region mapping, the
/// paper's 1-out-of-2 adjudication).
struct scenario_axes {
  /// Universe axis: (name, universe) pairs — the name keys the output rows.
  std::vector<std::pair<std::string, core::fault_universe>> universes;
  /// §6.1 axis: correlation ρ — mixture model in [0,1) under `stress`,
  /// copula model in (−1,1).
  std::vector<double> correlations = {0.0};
  double stress = 1.8;  ///< p inflation factor of a stressed development
  correlation_model rho_model = correlation_model::mixture;
  /// §6.2 axis: uniform region-overlap coefficient ω in [0,1] (the fraction
  /// of each fault's coincidence mass the channels actually share).
  std::vector<double> overlaps = {1.0};
  /// §6.3 axis: distinct mistakes feeding each failure region (1 = the
  /// paper's 1-to-1 assumption).  Cells with multiplicity > 1 run the
  /// region-level effective universe and also record the naive per-mistake
  /// pmax an aliased assessor would read off.
  std::vector<std::size_t> aliasing = {1};
  /// Adjudication axis: the system is defeated when at least
  /// `votes_to_defeat` of `versions` channels share a fault (the paper's
  /// pair is {2,2}; 2-out-of-3 models TMR).  θ1 stays the first channel's
  /// single-version pfd; θ2 becomes ω · Σq over the defeated-fault set.
  std::vector<core::architecture> adjudications = {core::architecture::one_out_of_two()};
  /// Demand budget axis: version-pair samples per cell.
  std::vector<std::uint64_t> budgets = {100'000};
  /// Adaptive refinement override: when non-empty, `budgets` must hold
  /// exactly one (placeholder) value and this vector must hold one budget
  /// per enumerated cell, in cell order — cell i runs cell_budgets[i]
  /// samples instead of the budget-axis value.  This is how a refined
  /// round-N+1 sweep re-budgets individual cells while keeping the grid
  /// shape (and therefore cell indices and seeds) intact.
  std::vector<std::uint64_t> cell_budgets;
};

/// Resolved coordinates of one grid cell.
struct scenario_cell {
  std::size_t universe_index = 0;
  std::string universe;  ///< name from the axis declaration
  double rho = 0.0;
  double omega = 1.0;
  std::size_t aliasing = 1;
  unsigned versions = 2;  ///< adjudication: channel count
  unsigned votes = 2;     ///< adjudication: coincident faults that defeat it
  std::uint64_t samples = 0;
};

/// One executed cell: coordinates, the deterministic identity that produced
/// it (derived seed + shard layout), the checkpointable accumulator state,
/// and the derived headline statistics.
struct scenario_cell_result {
  scenario_cell cell;
  std::uint64_t seed = 0;      ///< cell campaign seed (pure function of grid
                               ///< seed and cell index)
  unsigned shards = 0;         ///< logical shard layout of the cell campaign
  accumulator_state state;     ///< full empirical state (wire format)

  double mean_theta1 = 0.0;
  double mean_theta2 = 0.0;
  double prob_n1_positive = 0.0;
  double prob_n2_positive = 0.0;
  double risk_ratio = 0.0;     ///< empirical eq. (10)
  double p_max_true = 0.0;     ///< region-level pmax of the cell universe
  double p_max_naive = 0.0;    ///< per-mistake pmax under aliasing (== true
                               ///< when aliasing == 1)
};

struct scenario_config {
  std::uint64_t seed = 1;
  unsigned threads = 0;  ///< workers for the cell fan-out; throughput only
  unsigned shards = 0;   ///< per-cell logical shards; 0 = budget-scaled default
};

struct grid_result {
  std::vector<scenario_cell_result> cells;  ///< row-major in axis order

  /// One row per cell; stable header; deterministic formatting (%.17g for
  /// doubles) so equal results serialize identically.
  [[nodiscard]] std::string to_csv() const;
  /// JSON array of cell objects under {"cells": [...]}.
  [[nodiscard]] std::string to_json() const;
};

/// Row-major enumeration of the axes (universe, ρ, ω, aliasing,
/// adjudication, budget); validates the axes.  The index of a cell in this
/// vector is its identity for seeding and resume.  With the default
/// single-valued adjudication axis the enumeration (and thus every cell
/// index and seed) is exactly the historical five-axis order.
[[nodiscard]] std::vector<scenario_cell> enumerate_cells(const scenario_axes& axes);

/// Run one cell of the grid.  `cell` must be enumerate_cells(axes)[cell_index]
/// — the index (not the coordinates) seeds the cell campaign, so the result
/// is exactly the entry the full-grid run produces at that position.  This is
/// the job unit the multi-process driver (mc::distributed) hands to worker
/// processes.
[[nodiscard]] scenario_cell_result run_scenario_cell(const scenario_axes& axes,
                                                     const scenario_config& cfg,
                                                     const scenario_cell& cell,
                                                     std::size_t cell_index);

/// Run cells [cell_begin, cell_end) of the grid, appending to `out.cells`
/// (which must already hold exactly cell_begin results — the checkpointed
/// prefix).  Cells execute on the shared worker pool but merge in ascending
/// cell order, so resuming from a serialized prefix reproduces the
/// uninterrupted run bit-for-bit.
void run_scenario_cells(const scenario_axes& axes, const scenario_config& cfg,
                        std::size_t cell_begin, std::size_t cell_end, grid_result& out);

/// Run the whole grid.
[[nodiscard]] grid_result run_scenario_grid(const scenario_axes& axes,
                                            const scenario_config& cfg);

}  // namespace reldiv::mc
