#include "mc/campaign.hpp"

#include "mc/sampler.hpp"

namespace reldiv::mc {

std::vector<double> demand_tally::rates() const {
  std::vector<double> out;
  out.reserve(failures.size());
  for (const auto f : failures) {
    out.push_back(static_cast<double>(f) / static_cast<double>(demands));
  }
  return out;
}

void demand_tally::merge(const demand_tally& other) {
  if (failures.size() != other.failures.size() || demands != other.demands) {
    throw std::invalid_argument("demand_tally::merge: roster/budget mismatch");
  }
  for (std::size_t t = 0; t < failures.size(); ++t) failures[t] += other.failures[t];
}

void run_demand_campaign_window(std::span<const double> target_pfd, std::uint64_t demands,
                                const campaign_config& cfg, std::size_t target_begin,
                                std::size_t target_end, demand_tally& out) {
  if (target_begin > target_end || target_end > target_pfd.size()) {
    throw std::invalid_argument("run_demand_campaign: target window out of range");
  }
  if (demands == 0) {
    throw std::invalid_argument("run_demand_campaign: demands must be > 0");
  }
  if (out.failures.size() != target_pfd.size() || out.demands != demands) {
    throw std::invalid_argument("run_demand_campaign: tally does not match campaign");
  }
  if (target_begin == target_end) return;

  run_jobs(
      target_begin, target_end, cfg.threads,
      [&](std::size_t target) {
        // O(1) per-target stream derivation: workers seed their own streams,
        // so there is no serial jump walk to amortize and any window of a
        // huge roster starts instantly.
        stats::rng r(target_stream_seed(cfg.seed, target));
        return stats::binomial_deviate(r, demands, target_pfd[target]);
      },
      [&out](std::size_t target, std::uint64_t&& fails) { out.failures[target] = fails; });
}

demand_tally run_demand_campaign(std::span<const double> target_pfd, std::uint64_t demands,
                                 const campaign_config& cfg) {
  if (target_pfd.empty()) {
    throw std::invalid_argument("run_demand_campaign: empty target roster");
  }
  demand_tally out;
  out.demands = demands;
  out.failures.assign(target_pfd.size(), 0);
  run_demand_campaign_window(target_pfd, demands, cfg, 0, target_pfd.size(), out);
  return out;
}

namespace {

/// Σ w[i] over faults common to a and b, plus "some common fault has
/// positive weight" — the coincidence-weighted sibling of
/// core::intersect_q_sum (a common fault with w == 0 never produces a
/// common failure point, so it must not count toward N2 > 0).
core::pair_intersection_result intersect_weighted_sum(const core::fault_mask& a,
                                                      const core::fault_mask& b,
                                                      std::span<const double> w) noexcept {
  core::pair_intersection_result out;
  const std::uint64_t* wa = a.words();
  const std::uint64_t* wb = b.words();
  for (std::size_t blk = 0; blk < a.word_count(); ++blk) {
    std::uint64_t common = wa[blk] & wb[blk];
    while (common != 0) {
      const double wi = w[(blk << 6) + static_cast<std::size_t>(std::countr_zero(common))];
      out.pfd += wi;
      if (wi > 0.0) out.any_common = true;
      common &= common - 1;
    }
  }
  return out;
}

}  // namespace

experiment_result run_pair_campaign(const core::fault_universe& channel_a,
                                    const core::fault_universe& channel_b,
                                    std::span<const double> coincidence_q,
                                    std::uint64_t samples, const campaign_config& cfg) {
  if (channel_a.size() != channel_b.size()) {
    throw std::invalid_argument("run_pair_campaign: channels must share the fault set");
  }
  if (coincidence_q.size() != channel_a.size()) {
    throw std::invalid_argument("run_pair_campaign: coincidence weights size mismatch");
  }
  if (samples == 0) {
    throw std::invalid_argument("run_pair_campaign: samples must be > 0");
  }
  const shard_plan plan = make_shard_plan(samples, cfg.shards);
  experiment_accumulator total;
  run_shards(
      plan, cfg.seed, cfg.threads,
      [&](unsigned /*shard*/, std::uint64_t count, stats::rng& r) {
        experiment_accumulator acc;
        core::fault_mask a(channel_a.size());
        core::fault_mask b(channel_b.size());
        for (std::uint64_t s = 0; s < count; ++s) {
          sample_version_mask(channel_a, r, a);
          sample_version_mask(channel_b, r, b);
          const double t1 = core::masked_q_sum(a, channel_a.q_array());
          const auto pair = intersect_weighted_sum(a, b, coincidence_q);
          acc.add(t1, pair.pfd, a.any(), pair.any_common);
        }
        return acc;
      },
      [&total](unsigned /*shard*/, experiment_accumulator&& acc) { total.merge(acc); });
  experiment_result result = total.to_result();
  result.shards = plan.shard_count;
  return result;
}

}  // namespace reldiv::mc
