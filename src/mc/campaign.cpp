#include "mc/campaign.hpp"

#include <algorithm>

#include "mc/sampler.hpp"

namespace reldiv::mc {

std::vector<double> demand_tally::rates() const {
  std::vector<double> out;
  out.reserve(failures.size());
  for (const auto f : failures) {
    out.push_back(static_cast<double>(f) / static_cast<double>(demands));
  }
  return out;
}

void demand_tally::merge(const demand_tally& other) {
  if (failures.size() != other.failures.size() || demands != other.demands) {
    throw std::invalid_argument("demand_tally::merge: roster/budget mismatch");
  }
  for (std::size_t t = 0; t < failures.size(); ++t) failures[t] += other.failures[t];
}

void run_demand_campaign_window(std::span<const double> target_pfd, std::uint64_t demands,
                                const campaign_config& cfg, std::size_t target_begin,
                                std::size_t target_end, demand_tally& out) {
  if (target_begin > target_end || target_end > target_pfd.size()) {
    throw std::invalid_argument("run_demand_campaign: target window out of range");
  }
  if (demands == 0) {
    throw std::invalid_argument("run_demand_campaign: demands must be > 0");
  }
  if (out.failures.size() != target_pfd.size() || out.demands != demands) {
    throw std::invalid_argument("run_demand_campaign: tally does not match campaign");
  }
  if (target_begin == target_end) return;

  run_jobs(
      target_begin, target_end, cfg.threads,
      [&](std::size_t target) {
        // O(1) per-target stream derivation: workers seed their own streams,
        // so there is no serial jump walk to amortize and any window of a
        // huge roster starts instantly.
        stats::rng r(target_stream_seed(cfg.seed, target));
        return stats::binomial_deviate(r, demands, target_pfd[target]);
      },
      [&out](std::size_t target, std::uint64_t&& fails) { out.failures[target] = fails; });
}

demand_tally run_demand_campaign(std::span<const double> target_pfd, std::uint64_t demands,
                                 const campaign_config& cfg) {
  if (target_pfd.empty()) {
    throw std::invalid_argument("run_demand_campaign: empty target roster");
  }
  demand_tally out;
  out.demands = demands;
  out.failures.assign(target_pfd.size(), 0);
  run_demand_campaign_window(target_pfd, demands, cfg, 0, target_pfd.size(), out);
  return out;
}

std::uint64_t demand_manifest::window_count() const {
  validate();
  return (target_pfd.size() + window - 1) / window;
}

std::pair<std::uint64_t, std::uint64_t> demand_manifest::window_bounds(
    std::uint64_t index) const {
  const std::uint64_t windows = window_count();
  if (index >= windows) {
    throw std::out_of_range("demand_manifest: window index " + std::to_string(index) +
                            " out of range (windows: " + std::to_string(windows) + ")");
  }
  const std::uint64_t begin = index * window;
  const std::uint64_t end = std::min<std::uint64_t>(begin + window, target_pfd.size());
  return {begin, end};
}

void demand_manifest::validate() const {
  if (target_pfd.empty()) {
    throw std::invalid_argument("demand_manifest: empty target roster");
  }
  if (demands == 0) throw std::invalid_argument("demand_manifest: demands must be > 0");
  if (window == 0) throw std::invalid_argument("demand_manifest: window must be > 0");
  for (const double pfd : target_pfd) {
    if (!(pfd >= 0.0 && pfd <= 1.0)) {
      throw std::invalid_argument("demand_manifest: target pfd outside [0, 1]");
    }
  }
}

demand_window_result run_demand_window(const demand_manifest& m, std::uint64_t index,
                                       unsigned threads) {
  const auto [begin, end] = m.window_bounds(index);
  demand_tally scratch;
  scratch.demands = m.demands;
  scratch.failures.assign(m.target_pfd.size(), 0);
  run_demand_campaign_window(m.target_pfd, m.demands, m.config(threads), begin, end,
                             scratch);
  demand_window_result out;
  out.target_begin = begin;
  out.target_end = end;
  out.demands = m.demands;
  out.failures.assign(scratch.failures.begin() + static_cast<std::ptrdiff_t>(begin),
                      scratch.failures.begin() + static_cast<std::ptrdiff_t>(end));
  return out;
}

namespace {

/// Σ w[i] over faults common to a and b, plus "some common fault has
/// positive weight" — the coincidence-weighted sibling of
/// core::intersect_q_sum (a common fault with w == 0 never produces a
/// common failure point, so it must not count toward N2 > 0).
core::pair_intersection_result intersect_weighted_sum(const core::fault_mask& a,
                                                      const core::fault_mask& b,
                                                      std::span<const double> w) noexcept {
  core::pair_intersection_result out;
  const std::uint64_t* wa = a.words();
  const std::uint64_t* wb = b.words();
  for (std::size_t blk = 0; blk < a.word_count(); ++blk) {
    std::uint64_t common = wa[blk] & wb[blk];
    while (common != 0) {
      const double wi = w[(blk << 6) + static_cast<std::size_t>(std::countr_zero(common))];
      out.pfd += wi;
      if (wi > 0.0) out.any_common = true;
      common &= common - 1;
    }
  }
  return out;
}

}  // namespace

experiment_result run_pair_campaign(const core::fault_universe& channel_a,
                                    const core::fault_universe& channel_b,
                                    std::span<const double> coincidence_q,
                                    std::uint64_t samples, const campaign_config& cfg) {
  if (channel_a.size() != channel_b.size()) {
    throw std::invalid_argument("run_pair_campaign: channels must share the fault set");
  }
  if (coincidence_q.size() != channel_a.size()) {
    throw std::invalid_argument("run_pair_campaign: coincidence weights size mismatch");
  }
  if (samples == 0) {
    throw std::invalid_argument("run_pair_campaign: samples must be > 0");
  }
  const shard_plan plan = make_shard_plan(samples, cfg.shards);
  experiment_accumulator total;
  run_shards(
      plan, cfg.seed, cfg.threads,
      [&](unsigned /*shard*/, std::uint64_t count, stats::rng& r) {
        experiment_accumulator acc;
        core::fault_mask a(channel_a.size());
        core::fault_mask b(channel_b.size());
        for (std::uint64_t s = 0; s < count; ++s) {
          sample_version_mask(channel_a, r, a);
          sample_version_mask(channel_b, r, b);
          const double t1 = core::masked_q_sum(a, channel_a.q_array());
          const auto pair = intersect_weighted_sum(a, b, coincidence_q);
          acc.add(t1, pair.pfd, a.any(), pair.any_common);
        }
        return acc;
      },
      [&total](unsigned /*shard*/, experiment_accumulator&& acc) { total.merge(acc); });
  experiment_result result = total.to_result();
  result.shards = plan.shard_count;
  return result;
}

}  // namespace reldiv::mc
