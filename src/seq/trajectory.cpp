#include "seq/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace reldiv::seq {

namespace {

void check_trajectory_dim(const trajectory& t, std::size_t dim) {
  if (t.samples.empty()) throw std::invalid_argument("trajectory_region: empty trajectory");
  if (dim >= t.samples.front().size()) {
    throw std::invalid_argument("trajectory_region: dimension out of range");
  }
}

class sustained_excursion_region final : public trajectory_region {
 public:
  sustained_excursion_region(std::size_t dim, double threshold, std::size_t run_length)
      : dim_(dim), threshold_(threshold), run_length_(run_length) {
    if (run_length == 0) {
      throw std::invalid_argument("sustained_excursion_region: run_length must be > 0");
    }
  }

  [[nodiscard]] bool contains(const trajectory& t) const override {
    check_trajectory_dim(t, dim_);
    std::size_t run = 0;
    for (const auto& s : t.samples) {
      run = (s[dim_] > threshold_) ? run + 1 : 0;
      if (run >= run_length_) return true;
    }
    return false;
  }

  [[nodiscard]] std::string describe() const override {
    std::ostringstream out;
    out << "sustained_excursion[dim=" << dim_ << ", thr=" << threshold_
        << ", run=" << run_length_ << "]";
    return out.str();
  }

 private:
  std::size_t dim_;
  double threshold_;
  std::size_t run_length_;
};

class rate_limit_region final : public trajectory_region {
 public:
  rate_limit_region(std::size_t dim, double max_rate) : dim_(dim), max_rate_(max_rate) {
    if (!(max_rate > 0.0)) {
      throw std::invalid_argument("rate_limit_region: max_rate must be > 0");
    }
  }

  [[nodiscard]] bool contains(const trajectory& t) const override {
    check_trajectory_dim(t, dim_);
    for (std::size_t k = 1; k < t.samples.size(); ++k) {
      if (std::fabs(t.samples[k][dim_] - t.samples[k - 1][dim_]) > max_rate_) return true;
    }
    return false;
  }

  [[nodiscard]] std::string describe() const override {
    std::ostringstream out;
    out << "rate_limit[dim=" << dim_ << ", rate=" << max_rate_ << "]";
    return out.str();
  }

 private:
  std::size_t dim_;
  double max_rate_;
};

class chatter_region final : public trajectory_region {
 public:
  chatter_region(std::size_t dim, double threshold, std::size_t max_crossings)
      : dim_(dim), threshold_(threshold), max_crossings_(max_crossings) {}

  [[nodiscard]] bool contains(const trajectory& t) const override {
    check_trajectory_dim(t, dim_);
    std::size_t crossings = 0;
    for (std::size_t k = 1; k < t.samples.size(); ++k) {
      if (t.samples[k - 1][dim_] <= threshold_ && t.samples[k][dim_] > threshold_) {
        if (++crossings > max_crossings_) return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::string describe() const override {
    std::ostringstream out;
    out << "chatter[dim=" << dim_ << ", thr=" << threshold_ << ", max=" << max_crossings_
        << "]";
    return out.str();
  }

 private:
  std::size_t dim_;
  double threshold_;
  std::size_t max_crossings_;
};

class mean_band_region final : public trajectory_region {
 public:
  mean_band_region(std::size_t dim, double band_lo, double band_hi)
      : dim_(dim), band_lo_(band_lo), band_hi_(band_hi) {
    if (!(band_lo < band_hi)) {
      throw std::invalid_argument("mean_band_region: require band_lo < band_hi");
    }
  }

  [[nodiscard]] bool contains(const trajectory& t) const override {
    check_trajectory_dim(t, dim_);
    double mean = 0.0;
    for (const auto& s : t.samples) mean += s[dim_];
    mean /= static_cast<double>(t.samples.size());
    return mean >= band_lo_ && mean <= band_hi_;
  }

  [[nodiscard]] std::string describe() const override {
    std::ostringstream out;
    out << "mean_band[dim=" << dim_ << ", (" << band_lo_ << "," << band_hi_ << ")]";
    return out.str();
  }

 private:
  std::size_t dim_;
  double band_lo_;
  double band_hi_;
};

}  // namespace

trajectory_region_ptr make_sustained_excursion_region(std::size_t dim, double threshold,
                                                      std::size_t run_length) {
  return std::make_shared<sustained_excursion_region>(dim, threshold, run_length);
}

trajectory_region_ptr make_rate_limit_region(std::size_t dim, double max_rate) {
  return std::make_shared<rate_limit_region>(dim, max_rate);
}

trajectory_region_ptr make_chatter_region(std::size_t dim, double threshold,
                                          std::size_t max_crossings) {
  return std::make_shared<chatter_region>(dim, threshold, max_crossings);
}

trajectory_region_ptr make_mean_band_region(std::size_t dim, double band_lo,
                                            double band_hi) {
  return std::make_shared<mean_band_region>(dim, band_lo, band_hi);
}

episode_generator::episode_generator(config cfg) : cfg_(cfg) {
  if (cfg_.dims == 0 || cfg_.length < 2) {
    throw std::invalid_argument("episode_generator: need dims > 0 and length >= 2");
  }
  if (!(cfg_.volatility > 0.0)) {
    throw std::invalid_argument("episode_generator: volatility must be > 0");
  }
}

trajectory episode_generator::sample(stats::rng& r) const {
  trajectory t;
  t.samples.assign(cfg_.length, std::vector<double>(cfg_.dims, 0.0));
  const bool ramping = r.bernoulli(cfg_.ramp_probability);
  const std::size_t ramp_dim = ramping ? r.below(cfg_.dims) : 0;
  for (std::size_t k = 1; k < cfg_.length; ++k) {
    for (std::size_t d = 0; d < cfg_.dims; ++d) {
      double x = t.samples[k - 1][d];
      x += -cfg_.reversion * x + cfg_.volatility * stats::normal_deviate(r);
      if (ramping && d == ramp_dim) x += cfg_.ramp_rate;
      t.samples[k][d] = x;
    }
  }
  return t;
}

bound_trajectory_universe bind_trajectory_universe(
    const std::vector<trajectory_fault>& faults, const episode_generator& gen,
    std::uint64_t episodes, std::uint64_t seed) {
  if (faults.empty()) throw std::invalid_argument("bind_trajectory_universe: no faults");
  if (episodes == 0) throw std::invalid_argument("bind_trajectory_universe: episodes > 0");
  for (const auto& f : faults) {
    if (!f.footprint) throw std::invalid_argument("bind_trajectory_universe: null region");
    if (!(f.p >= 0.0) || !(f.p <= 1.0)) {
      throw std::invalid_argument("bind_trajectory_universe: p out of [0,1]");
    }
  }
  stats::rng r(seed);
  const std::size_t n = faults.size();
  std::vector<std::uint64_t> hits(n, 0);
  std::vector<std::vector<std::uint64_t>> joint(n, std::vector<std::uint64_t>(n, 0));
  std::vector<bool> in(n, false);
  for (std::uint64_t e = 0; e < episodes; ++e) {
    const trajectory t = gen.sample(r);
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = faults[i].footprint->contains(t);
      if (in[i]) ++hits[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!in[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (in[j]) ++joint[i][j];
      }
    }
  }
  std::vector<core::fault_atom> atoms(n);
  std::vector<stats::interval> cis(n);
  double max_overlap = 0.0;
  const auto total = static_cast<double>(episodes);
  for (std::size_t i = 0; i < n; ++i) {
    atoms[i] = {faults[i].p, static_cast<double>(hits[i]) / total};
    cis[i] = stats::wilson(hits[i], episodes, 0.99);
    for (std::size_t j = i + 1; j < n; ++j) {
      max_overlap = std::max(max_overlap, static_cast<double>(joint[i][j]) / total);
    }
  }
  return {core::fault_universe(std::move(atoms), /*allow_q_overflow=*/true),
          std::move(cis), max_overlap};
}

trajectory_channel::trajectory_channel(std::vector<trajectory_region_ptr> faults)
    : faults_(std::move(faults)) {
  for (const auto& f : faults_) {
    if (!f) throw std::invalid_argument("trajectory_channel: null region");
  }
}

bool trajectory_channel::responds_correctly(const trajectory& t) const {
  for (const auto& f : faults_) {
    if (f->contains(t)) return false;
  }
  return true;
}

trajectory_channel develop_trajectory_channel(const std::vector<trajectory_fault>& faults,
                                              stats::rng& r) {
  std::vector<trajectory_region_ptr> present;
  for (const auto& f : faults) {
    if (!f.footprint) throw std::invalid_argument("develop_trajectory_channel: null region");
    if (r.bernoulli(f.p)) present.push_back(f.footprint);
  }
  return trajectory_channel(std::move(present));
}

trajectory_campaign_result run_trajectory_campaign(const trajectory_channel& a,
                                                   const trajectory_channel& b,
                                                   const episode_generator& gen,
                                                   std::uint64_t episodes, stats::rng& r) {
  if (episodes == 0) throw std::invalid_argument("run_trajectory_campaign: episodes > 0");
  trajectory_campaign_result out;
  out.episodes = episodes;
  for (std::uint64_t e = 0; e < episodes; ++e) {
    const trajectory t = gen.sample(r);
    const bool a_ok = a.responds_correctly(t);
    const bool b_ok = b.responds_correctly(t);
    if (!a_ok) ++out.channel_a_failures;
    if (!b_ok) ++out.channel_b_failures;
    if (!a_ok && !b_ok) ++out.system_failures;
  }
  return out;
}

}  // namespace reldiv::seq
