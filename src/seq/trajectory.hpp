#pragma once
// Demands as trajectories.
//
// Footnote 2 of the paper is explicit that a demand need not be a single
// reading: "A 'demand', as defined here, may be a sequence of multiple
// samples of many input variables.  Our analysis refers to systems whose
// operation can be seen as a series of demands, possibly separated by idle
// periods."  The point-based demand/ module covers the common Fig. 2 view;
// this module covers the sequence view: a demand is a finite trajectory of
// state samples, a failure region is a PREDICATE over trajectories (e.g.
// "ramp rate exceeded for k consecutive samples" — the kind of condition a
// protection algorithm with memory can get wrong), and the q_i are measures
// of trajectory sets under a stochastic episode generator.  Everything then
// plugs into the same abstract fault_universe machinery.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fault_universe.hpp"
#include "stats/confint.hpp"
#include "stats/random.hpp"

namespace reldiv::seq {

/// One demand episode: a fixed-rate sequence of scalar-vector samples.
struct trajectory {
  std::vector<std::vector<double>> samples;  ///< samples[t][dim]

  [[nodiscard]] std::size_t length() const noexcept { return samples.size(); }
  [[nodiscard]] std::size_t dims() const { return samples.empty() ? 0 : samples[0].size(); }
};

/// A failure region in trajectory space: the set of demand episodes on
/// which a version carrying this fault responds incorrectly.
class trajectory_region {
 public:
  virtual ~trajectory_region() = default;
  [[nodiscard]] virtual bool contains(const trajectory& t) const = 0;
  [[nodiscard]] virtual std::string describe() const = 0;

 protected:
  trajectory_region() = default;
  trajectory_region(const trajectory_region&) = default;
  trajectory_region& operator=(const trajectory_region&) = default;
};

using trajectory_region_ptr = std::shared_ptr<const trajectory_region>;

/// Fails when variable `dim` exceeds `threshold` for at least `run_length`
/// consecutive samples (missed-trip on sustained excursions: a debounce/
/// hysteresis bug).
[[nodiscard]] trajectory_region_ptr make_sustained_excursion_region(std::size_t dim,
                                                                    double threshold,
                                                                    std::size_t run_length);

/// Fails when the sample-to-sample increment of variable `dim` ever exceeds
/// `max_rate` (rate-of-change handling bug).
[[nodiscard]] trajectory_region_ptr make_rate_limit_region(std::size_t dim, double max_rate);

/// Fails when variable `dim` crosses `threshold` upward more than
/// `max_crossings` times (oscillation/chatter handling bug).
[[nodiscard]] trajectory_region_ptr make_chatter_region(std::size_t dim, double threshold,
                                                        std::size_t max_crossings);

/// Fails when the time-average of variable `dim` lies inside
/// [band_lo, band_hi] (integral-computation bug: slow drifts missed).
[[nodiscard]] trajectory_region_ptr make_mean_band_region(std::size_t dim, double band_lo,
                                                          double band_hi);

/// Stochastic episode generator: an AR(1) path with occasional ramps, the
/// sequence analogue of the demand profile.
class episode_generator {
 public:
  struct config {
    std::size_t dims = 2;
    std::size_t length = 64;
    double reversion = 0.15;
    double volatility = 0.12;
    double ramp_probability = 0.3;  ///< episode contains a sustained ramp
    double ramp_rate = 0.05;
  };

  explicit episode_generator(config cfg);

  [[nodiscard]] trajectory sample(stats::rng& r) const;
  [[nodiscard]] const config& parameters() const noexcept { return cfg_; }

 private:
  config cfg_;
};

/// A trajectory fault: region + introduction probability.
struct trajectory_fault {
  trajectory_region_ptr footprint;
  double p = 0.0;
};

/// Estimate q_i for each trajectory fault under the episode generator and
/// assemble the abstract fault universe (the seq analogue of
/// demand::bind_universe).  Also reports pairwise overlap measures, since
/// trajectory predicates overlap easily (§6.2 applies here too).
struct bound_trajectory_universe {
  core::fault_universe universe;
  std::vector<stats::interval> q_intervals;  ///< 99% Wilson CIs on each q
  double max_pairwise_overlap = 0.0;
};

[[nodiscard]] bound_trajectory_universe bind_trajectory_universe(
    const std::vector<trajectory_fault>& faults, const episode_generator& gen,
    std::uint64_t episodes, std::uint64_t seed);

/// Channel over trajectories (the version's present faults) and the
/// 1-out-of-2 campaign, mirroring protection::run_profile_campaign.
class trajectory_channel {
 public:
  trajectory_channel() = default;
  explicit trajectory_channel(std::vector<trajectory_region_ptr> faults);

  [[nodiscard]] bool responds_correctly(const trajectory& t) const;
  [[nodiscard]] std::size_t fault_count() const noexcept { return faults_.size(); }

 private:
  std::vector<trajectory_region_ptr> faults_;
};

[[nodiscard]] trajectory_channel develop_trajectory_channel(
    const std::vector<trajectory_fault>& faults, stats::rng& r);

struct trajectory_campaign_result {
  std::uint64_t episodes = 0;
  std::uint64_t channel_a_failures = 0;
  std::uint64_t channel_b_failures = 0;
  std::uint64_t system_failures = 0;  ///< both channels fail on the episode

  [[nodiscard]] double system_pfd() const {
    return episodes > 0 ? static_cast<double>(system_failures) /
                              static_cast<double>(episodes)
                        : 0.0;
  }
};

[[nodiscard]] trajectory_campaign_result run_trajectory_campaign(
    const trajectory_channel& a, const trajectory_channel& b, const episode_generator& gen,
    std::uint64_t episodes, stats::rng& r);

}  // namespace reldiv::seq
