// Unit tests for the RNG substrate: determinism, range contracts, stream
// independence and distributional sanity of the deviate generators.

#include "stats/random.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "stats/descriptive.hpp"

namespace {

using reldiv::stats::rng;

TEST(SplitMix64, IsDeterministicAndNonTrivial) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  EXPECT_EQ(reldiv::stats::splitmix64_next(s1), reldiv::stats::splitmix64_next(s2));
  EXPECT_NE(s1, 42u);  // state advanced
  const std::uint64_t a = reldiv::stats::splitmix64_next(s1);
  const std::uint64_t b = reldiv::stats::splitmix64_next(s1);
  EXPECT_NE(a, b);
}

TEST(Rng, SameSeedSameStream) {
  rng a(123);
  rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  rng a(1);
  rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
  rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[i]);
}

TEST(Rng, UniformInUnitInterval) {
  rng r(99);
  for (int i = 0; i < 100000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-3.0, 2.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 2.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  rng r(2024);
  reldiv::stats::running_moments m;
  for (int i = 0; i < 200000; ++i) m.add(r.uniform());
  EXPECT_NEAR(m.mean(), 0.5, 0.005);
  EXPECT_NEAR(m.variance(), 1.0 / 12.0, 0.002);
}

TEST(Rng, BelowRespectsBoundAndCoversRange) {
  rng r(31);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = r.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowOneAlwaysZero) {
  rng r(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BernoulliFrequency) {
  rng r(17);
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  rng r(18);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, JumpedStreamsDoNotCollide) {
  rng a = rng::stream(555, 0);
  rng b = rng::stream(555, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, StreamIndexingIsStable) {
  rng a = rng::stream(9, 3);
  rng b = rng::stream(9, 3);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a(), b());
}

TEST(NormalDeviate, MomentsMatchStandardNormal) {
  rng r(77);
  reldiv::stats::running_moments m;
  for (int i = 0; i < 300000; ++i) m.add(reldiv::stats::normal_deviate(r));
  EXPECT_NEAR(m.mean(), 0.0, 0.01);
  EXPECT_NEAR(m.variance(), 1.0, 0.02);
  EXPECT_NEAR(m.skewness(), 0.0, 0.05);
  EXPECT_NEAR(m.excess_kurtosis(), 0.0, 0.1);
}

TEST(GammaDeviate, MomentsMatchShape) {
  rng r(88);
  for (const double shape : {0.5, 1.0, 2.5, 9.0}) {
    reldiv::stats::running_moments m;
    for (int i = 0; i < 100000; ++i) m.add(reldiv::stats::gamma_deviate(r, shape));
    EXPECT_NEAR(m.mean(), shape, 0.05 * shape + 0.02) << "shape=" << shape;
    EXPECT_NEAR(m.variance(), shape, 0.08 * shape + 0.05) << "shape=" << shape;
  }
}

TEST(GammaDeviate, RejectsNonPositiveShape) {
  rng r(1);
  EXPECT_THROW((void)reldiv::stats::gamma_deviate(r, 0.0), std::invalid_argument);
  EXPECT_THROW((void)reldiv::stats::gamma_deviate(r, -1.0), std::invalid_argument);
}

TEST(BetaDeviate, MomentsMatch) {
  rng r(4);
  const double a = 2.0;
  const double b = 5.0;
  reldiv::stats::running_moments m;
  for (int i = 0; i < 100000; ++i) m.add(reldiv::stats::beta_deviate(r, a, b));
  EXPECT_NEAR(m.mean(), a / (a + b), 0.005);
  EXPECT_NEAR(m.variance(), a * b / ((a + b) * (a + b) * (a + b + 1.0)), 0.002);
}

TEST(BetaDeviate, StaysInUnitInterval) {
  rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = reldiv::stats::beta_deviate(r, 0.5, 0.5);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 1.0);
  }
}

TEST(BetaDeviate, RejectsBadParameters) {
  rng r(1);
  EXPECT_THROW((void)reldiv::stats::beta_deviate(r, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)reldiv::stats::beta_deviate(r, 1.0, -2.0), std::invalid_argument);
}

}  // namespace
