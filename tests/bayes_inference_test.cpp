// Extended Bayesian inference: failure evidence, importance sampling,
// channel-to-pair transfer, and the demands-needed inverse problem.

#include "bayes/inference.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bayes/assessment.hpp"
#include "core/generators.hpp"

namespace {

using namespace reldiv;
using namespace reldiv::bayes;

core::fault_universe tiny() {
  return core::fault_universe({{0.3, 0.01}, {0.1, 0.001}});
}

TEST(PosteriorWithFailures, FailureFreeMatchesAssessmentModule) {
  const auto u = tiny();
  const auto a = posterior_pfd(u, 1, 700);
  const auto b = posterior_pfd_with_failures(u, 1, {700, 0});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.atoms().size(); ++i) {
    EXPECT_NEAR(a.atoms()[i].prob, b.atoms()[i].prob, 1e-12);
  }
}

TEST(PosteriorWithFailures, ObservedFailuresKillTheZeroAtom) {
  const auto u = tiny();
  const auto post = posterior_pfd_with_failures(u, 1, {1000, 3});
  // A failure was observed, so PFD = 0 is impossible a posteriori.
  EXPECT_DOUBLE_EQ(post.prob_zero(), 0.0);
  // And the posterior mean must sit above the failure-free posterior's.
  const auto clean = posterior_pfd_with_failures(u, 1, {1000, 0});
  EXPECT_GT(post.mean(), clean.mean());
}

TEST(PosteriorWithFailures, ConcentratesOnTheCompatibleAtom) {
  // With enough evidence at failure fraction ~0.01, the posterior must
  // concentrate on the subset whose PFD is 0.01 (fault 1 only).
  const auto u = tiny();
  const auto post = posterior_pfd_with_failures(u, 1, {100000, 1000});
  EXPECT_NEAR(post.mean(), 0.01, 5e-4);
  EXPECT_NEAR(post.cdf(0.0105) - post.cdf(0.0095), 1.0, 1e-3);
}

TEST(PosteriorWithFailures, ImpossibleEvidenceThrows) {
  core::fault_universe never_fails({{0.5, 0.0}});  // every subset has PFD 0
  EXPECT_THROW((void)posterior_pfd_with_failures(never_fails, 1, {100, 5}),
               std::domain_error);
  EXPECT_THROW((void)posterior_pfd_with_failures(tiny(), 1, {10, 20}),
               std::invalid_argument);
}

TEST(ImportancePosterior, AgreesWithExactOnSmallUniverse) {
  const auto u = core::make_random_universe(10, 0.4, 0.5, 21);
  const test_record ev{2000, 0};
  const auto exact = posterior_pfd_with_failures(u, 1, ev);
  const auto is = importance_posterior(u, 1, ev, 400000, 22);
  EXPECT_NEAR(is.mean_pfd, exact.mean(), 0.05 * exact.mean() + 1e-5);
  EXPECT_NEAR(is.prob_zero, exact.prob_zero(), 0.01);
  EXPECT_GT(is.effective_sample_size, 1000.0);
  EXPECT_THROW((void)importance_posterior(u, 1, ev, 0, 1), std::invalid_argument);
}

TEST(ImportancePosterior, ScalesToLargeUniverses) {
  // 200 faults: exact enumeration impossible; IS must still produce a
  // coherent posterior whose mean drops with evidence.
  const auto u = core::make_safety_grade_universe(200, 0.0, 0.02, 0.6, 23);
  const auto weak = importance_posterior(u, 1, {0, 0}, 100000, 24);
  const auto strong = importance_posterior(u, 1, {20000, 0}, 100000, 24);
  EXPECT_LT(strong.mean_pfd, weak.mean_pfd);
  EXPECT_GT(strong.prob_zero, weak.prob_zero);
  EXPECT_EQ(weak.samples, 100000u);
}

TEST(ChannelPairAssessment, NoEvidenceReducesToPriorPrediction) {
  const auto u = tiny();
  const auto a = assess_pair_from_channel_tests(u, {0, 0}, {0, 0});
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(a.posterior_p_a[i], u[i].p, 1e-10) << i;
    EXPECT_NEAR(a.posterior_p_b[i], u[i].p, 1e-10) << i;
  }
  double expected_pair = 0.0;
  for (const auto& [p, q] : u) expected_pair += p * p * q;
  EXPECT_NEAR(a.pair_mean_pfd, expected_pair, 1e-10);
}

TEST(ChannelPairAssessment, CleanChannelTestingImprovesThePairClaim) {
  const auto u = tiny();
  const auto before = assess_pair_from_channel_tests(u, {0, 0}, {0, 0});
  const auto after = assess_pair_from_channel_tests(u, {20000, 0}, {20000, 0});
  EXPECT_LT(after.pair_mean_pfd, before.pair_mean_pfd);
  EXPECT_GT(after.prob_no_common_fault, before.prob_no_common_fault);
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_LT(after.posterior_p_a[i], u[i].p) << i;
  }
}

TEST(ChannelPairAssessment, AsymmetricEvidence) {
  const auto u = tiny();
  const auto a = assess_pair_from_channel_tests(u, {50000, 0}, {0, 0});
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_LT(a.posterior_p_a[i], a.posterior_p_b[i]) << i;
  }
  const auto big = core::make_random_universe(30, 0.3, 0.5, 25);
  EXPECT_THROW((void)assess_pair_from_channel_tests(big, {0, 0}, {0, 0}),
               std::invalid_argument);
}

TEST(DemandsNeeded, MonotoneAndConsistent) {
  const auto u = tiny();
  // Prior pair 99% bound:
  const auto prior_bound = posterior_pfd(u, 2, 0).quantile(0.99);
  ASSERT_GT(prior_bound, 1e-4);
  const auto needed = demands_needed_for_target(u, 2, 1e-4, 0.99, 10'000'000);
  ASSERT_GT(needed, 0u);
  ASSERT_LE(needed, 10'000'000u);
  // The returned count meets the target; one less does not.
  EXPECT_LE(posterior_pfd_with_failures(u, 2, {needed, 0}).quantile(0.99), 1e-4);
  EXPECT_GT(posterior_pfd_with_failures(u, 2, {needed - 1, 0}).quantile(0.99), 1e-4);
  // Already-met target returns 0.
  EXPECT_EQ(demands_needed_for_target(u, 2, 0.5, 0.99, 1000), 0u);
  // Unreachable target within a small budget flags max+1.  (Given enough
  // demands ANY positive target is reachable here, because the posterior
  // eventually puts >= 99% mass on the PFD = 0 atom.)
  EXPECT_EQ(demands_needed_for_target(u, 2, 1e-15, 0.99, 10), 11u);
  EXPECT_THROW((void)demands_needed_for_target(u, 2, 0.0, 0.99, 10), std::invalid_argument);
}

}  // namespace
