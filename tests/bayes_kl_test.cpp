// Bayesian assessment on the model prior (§7 / [14]) and the synthetic
// Knight-Leveson replication.

#include <gtest/gtest.h>

#include <cmath>

#include "bayes/assessment.hpp"
#include "core/generators.hpp"
#include "kl/experiment.hpp"

namespace {

using namespace reldiv;

core::fault_universe tiny_universe() {
  return core::fault_universe({{0.3, 0.01}, {0.1, 0.001}});
}

TEST(BayesPosterior, NoEvidenceLeavesPriorUnchanged) {
  const auto u = tiny_universe();
  const auto prior = core::exact_pfd_distribution(u, 1);
  const auto post = bayes::posterior_pfd(u, 1, 0);
  ASSERT_EQ(prior.size(), post.size());
  for (std::size_t i = 0; i < prior.atoms().size(); ++i) {
    EXPECT_NEAR(prior.atoms()[i].prob, post.atoms()[i].prob, 1e-14);
  }
}

TEST(BayesPosterior, MatchesHandReweighting) {
  const auto u = tiny_universe();
  const std::uint64_t t = 500;
  const auto post = bayes::posterior_pfd(u, 1, t);
  // Hand computation over the 4 subsets.
  struct atom {
    double v;
    double prior;
  };
  const std::vector<atom> subsets = {
      {0.0, 0.7 * 0.9}, {0.001, 0.7 * 0.1}, {0.01, 0.3 * 0.9}, {0.011, 0.3 * 0.1}};
  double z = 0.0;
  for (const auto& s : subsets) z += s.prior * std::pow(1.0 - s.v, t);
  for (const auto& s : subsets) {
    const double expected = s.prior * std::pow(1.0 - s.v, t) / z;
    EXPECT_NEAR(post.cdf(s.v) - post.cdf(s.v - 1e-9), expected, 1e-10) << s.v;
  }
}

TEST(BayesPosterior, SurvivalEvidenceImprovesBeliefs) {
  const auto u = tiny_universe();
  double prev_mean = 1.0;
  double prev_zero = 0.0;
  for (const std::uint64_t t : {0ull, 100ull, 1000ull, 10000ull}) {
    const auto a = bayes::assess(u, 1, t);
    EXPECT_LT(a.posterior_mean, prev_mean) << "t=" << t;
    EXPECT_GT(a.posterior_prob_zero, prev_zero - 1e-15) << "t=" << t;
    prev_mean = a.posterior_mean;
    prev_zero = a.posterior_prob_zero;
  }
}

TEST(BayesPosterior, PairPosteriorDominatesSingle) {
  const auto u = tiny_universe();
  const auto single = bayes::assess(u, 1, 1000);
  const auto pair = bayes::assess(u, 2, 1000);
  EXPECT_LT(pair.posterior_mean, single.posterior_mean);
  EXPECT_GT(pair.posterior_prob_zero, single.posterior_prob_zero);
}

TEST(BayesPosterior, ImpossibleEvidenceThrows) {
  core::fault_universe certain({{1.0, 1.0}});  // PFD == 1 with certainty
  EXPECT_THROW((void)bayes::posterior_pfd(certain, 1, 10), std::domain_error);
}

TEST(BayesBeta, ConjugateUpdate) {
  const auto a = bayes::assess_beta(1.0, 1.0, 999);
  EXPECT_NEAR(a.posterior_mean, 1.0 / 1001.0, 1e-12);
  EXPECT_GT(a.posterior_q99, a.posterior_mean);
  EXPECT_THROW((void)bayes::assess_beta(0.0, 1.0, 10), std::invalid_argument);
}

TEST(BayesBeta, MomentMatchedPriorAgreesOnMoments) {
  const auto u = core::make_random_universe(12, 0.4, 0.6, 3);
  const auto beta = bayes::moment_matched_beta(u, 1);
  const auto mom = core::single_version_moments(u);
  EXPECT_NEAR(beta.mean(), mom.mean, 1e-12);
  EXPECT_NEAR(beta.variance(), mom.variance, 1e-12);
  core::fault_universe impossible({{0.0, 0.5}});
  EXPECT_THROW((void)bayes::moment_matched_beta(impossible, 1), std::domain_error);
}

TEST(BayesBeta, ModelPriorBeatsVaguePriorGivenGoodProcess) {
  // With a physically-informed prior (most mass at PFD=0), the posterior
  // 99% bound after modest evidence is far tighter than from Beta(1,1).
  const auto u = tiny_universe();
  const auto model = bayes::assess(u, 1, 1000);
  const auto vague = bayes::assess_beta(1.0, 1.0, 1000);
  EXPECT_LT(model.posterior_q99, vague.posterior_q99);
}

TEST(KnightLeveson, ShapesAndSizes) {
  const auto u = core::make_knight_leveson_like_universe(1);
  kl::kl_config cfg;
  cfg.demands = 20000;  // keep the unit test fast
  const auto res = kl::run_kl_experiment(u, cfg);
  EXPECT_EQ(res.version_pfd.size(), 27u);
  EXPECT_EQ(res.pair_pfd.size(), 27u * 26u / 2u);
  EXPECT_EQ(res.version_pfd_hat.size(), 27u);
  EXPECT_EQ(res.pair_pfd_hat.size(), res.pair_pfd.size());
}

TEST(KnightLeveson, DiversityReducesMeanAndStdDev) {
  // The paper's §7 qualitative check: "diversity reduced not only the
  // sample mean of the PFD ... but also – greatly – its standard deviation".
  const auto u = core::make_knight_leveson_like_universe(1);
  kl::kl_config cfg;
  cfg.score_empirically = false;
  const auto res = kl::run_kl_experiment(u, cfg);
  EXPECT_LT(res.pair_summary.mean, res.version_summary.mean);
  EXPECT_LT(res.pair_summary.stddev, res.version_summary.stddev);
  EXPECT_GT(res.mean_reduction, 1.0);
  EXPECT_GT(res.sd_reduction, 1.0);
}

TEST(KnightLeveson, PairsThatNeverFailYieldInfiniteReduction) {
  // A sparse universe where (for this seed) versions do carry faults but no
  // pair of the 27 shares one: θ2 is identically zero.  A zero denominator
  // means the reduction is unbounded — +inf — not 0.0, which would read as
  // "diversity bought nothing" when it bought everything.
  std::vector<core::fault_atom> atoms(500, core::fault_atom{0.0005, 0.001});
  const core::fault_universe u{std::move(atoms)};
  kl::kl_config cfg;
  cfg.score_empirically = false;
  cfg.seed = 5;
  const auto res = kl::run_kl_experiment(u, cfg);
  ASSERT_GT(res.version_summary.mean, 0.0);  // seed draws some faults...
  ASSERT_EQ(res.pair_summary.mean, 0.0);     // ...but no pair shares one
  EXPECT_TRUE(std::isinf(res.mean_reduction));
  EXPECT_GT(res.mean_reduction, 0.0);
  EXPECT_TRUE(std::isinf(res.sd_reduction));
}

TEST(KnightLeveson, NothingEverFailsYieldsIndeterminateReduction) {
  // 0/0 — versions never fail either — is indeterminate, not an unbounded
  // benefit: NaN, so neither a "no reduction" nor an "infinite reduction"
  // verdict can be read off vacuously.
  std::vector<core::fault_atom> atoms(20, core::fault_atom{0.0, 0.01});
  const core::fault_universe u{std::move(atoms)};
  kl::kl_config cfg;
  cfg.score_empirically = false;
  const auto res = kl::run_kl_experiment(u, cfg);
  ASSERT_EQ(res.version_summary.mean, 0.0);
  EXPECT_TRUE(std::isnan(res.mean_reduction));
  EXPECT_TRUE(std::isnan(res.sd_reduction));
  // The degenerate point-mass sample is reported as non-normal rather than
  // tripping the AD statistic's zero-variance guard.
  EXPECT_TRUE(res.version_normality.reject_at_05);
}

TEST(KnightLeveson, EmpiricalScoresTrackExactScores) {
  const auto u = core::make_knight_leveson_like_universe(2);
  kl::kl_config cfg;
  cfg.demands = 200000;
  const auto res = kl::run_kl_experiment(u, cfg);
  for (std::size_t v = 0; v < res.version_pfd.size(); ++v) {
    EXPECT_NEAR(res.version_pfd_hat[v], res.version_pfd[v],
                4.0 * std::sqrt(res.version_pfd[v] / 200000.0) + 5e-4)
        << "v=" << v;
  }
}

TEST(KnightLeveson, DeterministicInSeed) {
  const auto u = core::make_knight_leveson_like_universe(3);
  kl::kl_config cfg;
  cfg.score_empirically = false;
  const auto a = kl::run_kl_experiment(u, cfg);
  const auto b = kl::run_kl_experiment(u, cfg);
  EXPECT_EQ(a.version_pfd, b.version_pfd);
}

TEST(KnightLeveson, Validation) {
  const auto u = core::make_knight_leveson_like_universe(4);
  kl::kl_config cfg;
  cfg.versions = 1;
  EXPECT_THROW((void)kl::run_kl_experiment(u, cfg), std::invalid_argument);
  kl::kl_config cfg2;
  cfg2.demands = 0;
  EXPECT_THROW((void)kl::run_kl_experiment(u, cfg2), std::invalid_argument);
}

}  // namespace
