// mc::sweep_service — the always-on layer: multi-run queue, long-poll
// workers, drain, status and the fingerprint-memoized result cache.  The
// determinism contract is inherited from the run-dir protocol and restated
// here at the service level: however a queue gets drained (one in-process
// worker, a thread racing a late submission, a 3-process fleet with one
// worker SIGKILL'd), every run's merged tables are byte-identical to its
// single-process oracle — and an identical manifest re-submission is served
// from the cache without recomputing anything.
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/generators.hpp"
#include "mc/distributed.hpp"
#include "mc/run_dir.hpp"
#include "mc/service.hpp"

namespace mc = reldiv::mc;
namespace core = reldiv::core;
namespace fs = std::filesystem;

namespace {

mc::scenario_axes test_axes() {
  mc::scenario_axes axes;
  axes.universes.emplace_back("grade",
                              core::make_safety_grade_universe(24, 0.0, 0.05, 0.6, 5));
  axes.correlations = {0.0, 0.4};
  axes.overlaps = {1.0, 0.5};
  axes.aliasing = {1, 2};
  axes.budgets = {2'000};
  return axes;  // 8 cells
}

mc::scenario_config test_config() { return {.seed = 31337, .threads = 2, .shards = 0}; }

mc::demand_manifest test_demand_manifest() {
  mc::demand_manifest m;
  m.target_pfd.reserve(600);
  for (std::size_t t = 0; t < 600; ++t) {
    m.target_pfd.push_back(1e-4 + 1e-6 * static_cast<double>(t % 97));
  }
  m.demands = 5'000;
  m.seed = 424242;
  m.window = 64;  // 10 windows
  return m;
}

mc::experiment_manifest test_experiment_manifest() {
  mc::experiment_config cfg;
  cfg.samples = 4'000;
  cfg.seed = 90210;
  cfg.shards = 16;
  return mc::make_experiment_manifest(
      core::make_safety_grade_universe(24, 0.0, 0.05, 0.6, 5), cfg, /*window=*/3);
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("reldiv_service_test_" + std::to_string(::getpid()) + "_" +
             std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  /// Init a demand run under runs/<name> and enqueue it.
  fs::path submit_demand(const std::string& name) {
    const fs::path dir = mc::runs_dir(root_) / name;
    (void)mc::run_handle::init(test_demand_manifest(), dir);
    EXPECT_TRUE(mc::submit_queued_run(root_, name, dir));
    return dir;
  }

  fs::path root_;
};

// ---------------------------------------------------------------------------
// Queue protocol
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, SubmissionNamesMustBePlainFilenames) {
  EXPECT_NO_THROW(mc::validate_submission_name("run_01"));
  EXPECT_THROW(mc::validate_submission_name(""), std::invalid_argument);
  EXPECT_THROW(mc::validate_submission_name("a/b"), std::invalid_argument);
  EXPECT_THROW(mc::validate_submission_name("a\\b"), std::invalid_argument);
  EXPECT_THROW(mc::validate_submission_name(".hidden"), std::invalid_argument);
  EXPECT_THROW(mc::validate_submission_name(".."), std::invalid_argument);
}

TEST_F(ServiceTest, SubmitIsAtomicAndDuplicateNamesLoseTheRace) {
  EXPECT_TRUE(mc::submit_queued_run(root_, "alpha", root_ / "runs" / "alpha"));
  // Same name again: the rename_noreplace loses, nothing is clobbered.
  EXPECT_FALSE(mc::submit_queued_run(root_, "alpha", root_ / "elsewhere"));
  const auto queue = mc::queued_runs(root_);
  ASSERT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue[0].name, "alpha");
  EXPECT_EQ(queue[0].run_dir, root_ / "runs" / "alpha");
  // No temp droppings from the losing submission.
  for (const auto& entry : fs::directory_iterator(mc::queue_dir(root_))) {
    EXPECT_TRUE(entry.path().filename().string().ends_with(".run"))
        << entry.path();
  }
}

TEST_F(ServiceTest, QueueOrderIsSubmissionNameOrderNotArrivalOrder) {
  // Enqueue out of lexicographic order; the walk must still be sorted.
  EXPECT_TRUE(mc::submit_queued_run(root_, "charlie", root_ / "c"));
  EXPECT_TRUE(mc::submit_queued_run(root_, "alpha", root_ / "a"));
  EXPECT_TRUE(mc::submit_queued_run(root_, "bravo", root_ / "b"));
  const auto queue = mc::queued_runs(root_);
  ASSERT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue[0].name, "alpha");
  EXPECT_EQ(queue[1].name, "bravo");
  EXPECT_EQ(queue[2].name, "charlie");
}

TEST_F(ServiceTest, DequeueRemovesThePointerButNotTheRunDir) {
  const fs::path dir = submit_demand("gone");
  EXPECT_TRUE(mc::dequeue_run(root_, "gone"));
  EXPECT_FALSE(mc::dequeue_run(root_, "gone"));  // already gone
  EXPECT_TRUE(mc::queued_runs(root_).empty());
  EXPECT_TRUE(fs::exists(dir));  // the run dir itself is untouched
}

TEST_F(ServiceTest, DrainSentinelRoundTrips) {
  EXPECT_FALSE(mc::drain_requested(root_));
  mc::request_drain(root_);
  EXPECT_TRUE(mc::drain_requested(root_));
  mc::request_drain(root_);  // idempotent
  EXPECT_TRUE(mc::drain_requested(root_));
  mc::clear_drain(root_);
  EXPECT_FALSE(mc::drain_requested(root_));
}

// ---------------------------------------------------------------------------
// run_handle facade
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, RunHandleOpensAnyKindAndDispatchesTypedAccess) {
  const fs::path grid_dir = root_ / "grid";
  const fs::path demand_dir = root_ / "demand";
  const fs::path exp_dir = root_ / "exp";
  (void)mc::run_handle::init(test_axes(), test_config(), grid_dir);
  (void)mc::run_handle::init(test_demand_manifest(), demand_dir);
  (void)mc::run_handle::init(test_experiment_manifest(), exp_dir);

  const mc::run_handle grid = mc::run_handle::open(grid_dir);
  const mc::run_handle demand = mc::run_handle::open(demand_dir);
  const mc::run_handle exp = mc::run_handle::open(exp_dir);
  EXPECT_EQ(grid.kind(), mc::job_kind::scenario_grid);
  EXPECT_EQ(demand.kind(), mc::job_kind::demand_campaign);
  EXPECT_EQ(exp.kind(), mc::job_kind::experiment_shards);
  EXPECT_EQ(grid.cell_count(), 8u);
  EXPECT_EQ(demand.cell_count(), 10u);
  EXPECT_NE(grid.fingerprint(), demand.fingerprint());

  // The typed accessors enforce the kind they promise.
  EXPECT_NO_THROW((void)grid.grid_manifest());
  EXPECT_THROW((void)grid.demand_campaign_manifest(), mc::run_dir_error);
  EXPECT_THROW((void)demand.experiment_shards_manifest(), mc::run_dir_error);
  EXPECT_NO_THROW((void)exp.experiment_shards_manifest());
}

TEST_F(ServiceTest, RunHandleWrappersMatchTheFreeFunctions) {
  const fs::path dir = root_ / "demand";
  const mc::run_handle inited = mc::run_handle::init(test_demand_manifest(), dir);
  // The thin per-kind wrappers go through run_handle; both views agree.
  const mc::demand_manifest loaded = mc::load_demand_manifest(dir);
  EXPECT_EQ(mc::demand_manifest_fingerprint(loaded), inited.fingerprint());
  EXPECT_EQ(mc::load_run_kind(dir), mc::job_kind::demand_campaign);
}

TEST_F(ServiceTest, RunHandleMergeMatchesOracleForEveryKind) {
  const mc::demand_manifest m = test_demand_manifest();
  const fs::path dir = root_ / "demand";
  (void)mc::run_handle::init(m, dir);
  const mc::worker_report rep = mc::run_pending_cells(dir, {});
  EXPECT_EQ(rep.computed, m.window_count());

  const mc::run_handle h = mc::run_handle::open(dir);
  const mc::run_handle::result_variant merged = h.merge();
  ASSERT_TRUE(std::holds_alternative<mc::demand_tally>(merged));
  const mc::demand_tally oracle =
      mc::run_demand_campaign(m.target_pfd, m.demands, m.config());
  EXPECT_EQ(std::get<mc::demand_tally>(merged).failures, oracle.failures);

  // merge_tables renders through the same emitters the CLI and cache use.
  const mc::merged_tables tables = h.merge_tables();
  EXPECT_EQ(tables.cells, m.window_count());
  EXPECT_EQ(tables.csv, mc::demand_tally_csv(m, oracle));
  EXPECT_EQ(tables.json, mc::demand_tally_json(oracle));
}

// ---------------------------------------------------------------------------
// cached_result codec + result_cache
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, CachedResultRoundTripsThroughTheCodec) {
  mc::cached_result entry;
  entry.kind = mc::job_kind::experiment_shards;
  entry.fingerprint = 0xdeadbeefcafef00dULL;
  entry.csv = "a,b\n1,2\n";
  entry.json = "{\n  \"a\": 1\n}\n";
  const mc::cached_result back = mc::decode_cached_result(mc::encode_cached_result(entry));
  EXPECT_EQ(back.kind, entry.kind);
  EXPECT_EQ(back.fingerprint, entry.fingerprint);
  EXPECT_EQ(back.csv, entry.csv);
  EXPECT_EQ(back.json, entry.json);
}

TEST_F(ServiceTest, ResultCacheMissesOnAbsentCorruptOrMismatchedEntries) {
  mc::result_cache cache(root_);
  EXPECT_FALSE(cache.lookup(42).has_value());

  mc::cached_result entry;
  entry.kind = mc::job_kind::scenario_grid;
  entry.fingerprint = 42;
  entry.csv = "csv";
  entry.json = "json";
  cache.store(entry);
  ASSERT_TRUE(cache.lookup(42).has_value());
  EXPECT_EQ(cache.lookup(42)->csv, "csv");

  // A torn entry is a miss, never an error or a wrong answer.
  {
    std::ofstream f(cache.entry_path(42), std::ios::binary | std::ios::trunc);
    f << "garbage";
  }
  EXPECT_FALSE(cache.lookup(42).has_value());

  // A hand-renamed entry disagrees with its filename: miss.
  cache.store(entry);
  fs::rename(cache.entry_path(42), cache.entry_path(43));
  EXPECT_FALSE(cache.lookup(43).has_value());
}

TEST_F(ServiceTest, MergeAndStoreMemoizesAndHitEqualsRecompute) {
  const fs::path dir = submit_demand("memo");
  (void)mc::run_pending_cells(dir, {});

  mc::result_cache cache(root_);
  const mc::run_handle h = mc::run_handle::open(dir);
  EXPECT_FALSE(cache.lookup(h.fingerprint()).has_value());
  const mc::cached_result stored = mc::merge_and_store(cache, dir);
  const auto hit = cache.lookup(h.fingerprint());
  ASSERT_TRUE(hit.has_value());

  // Cache hit vs recompute: byte-for-byte the same tables.
  const mc::merged_tables recomputed = h.merge_tables();
  EXPECT_EQ(hit->csv, recomputed.csv);
  EXPECT_EQ(hit->json, recomputed.json);
  EXPECT_EQ(stored.csv, recomputed.csv);
  EXPECT_EQ(hit->kind, mc::job_kind::demand_campaign);
}

// ---------------------------------------------------------------------------
// Long-poll worker
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, WorkerDrainsAnEmptyQueueAfterMaxPolls) {
  mc::service_config cfg;
  cfg.poll_min = std::chrono::milliseconds(1);
  cfg.poll_max = std::chrono::milliseconds(2);
  cfg.max_polls = 3;
  const mc::service_report rep = mc::run_service_worker(root_, cfg);
  EXPECT_EQ(rep.runs_served, 0u);
  EXPECT_EQ(rep.cells_computed, 0u);
  EXPECT_EQ(rep.polls, 3u);
  EXPECT_FALSE(rep.drained);
}

TEST_F(ServiceTest, WorkerPicksUpARunSubmittedAfterItStarted) {
  // Start the long-poll worker FIRST, on an empty queue.
  mc::service_config cfg;
  cfg.poll_min = std::chrono::milliseconds(1);
  cfg.poll_max = std::chrono::milliseconds(10);
  mc::service_report report;
  std::thread worker([&] { report = mc::run_service_worker(root_, cfg); });

  // Submit while it is polling, then ask it to drain once the run is done.
  const fs::path dir = submit_demand("late");
  while (!mc::missing_cells(dir).empty()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  mc::request_drain(root_);
  worker.join();

  EXPECT_TRUE(report.drained);
  EXPECT_EQ(report.runs_served, 1u);
  EXPECT_EQ(report.cells_computed, test_demand_manifest().window_count());

  // The merged result is the single-process oracle, bit for bit.
  const mc::demand_manifest m = test_demand_manifest();
  const mc::demand_tally oracle =
      mc::run_demand_campaign(m.target_pfd, m.demands, m.config());
  EXPECT_EQ(mc::merge_demand_run_dir(dir).failures, oracle.failures);
}

TEST_F(ServiceTest, DrainedWorkerLeavesNoClaimsAndNoTmpFiles) {
  (void)submit_demand("hygiene_a");
  (void)submit_demand("hygiene_b");
  mc::request_drain(root_);  // raised BEFORE the worker starts

  mc::service_config cfg;
  cfg.poll_min = std::chrono::milliseconds(1);
  cfg.poll_max = std::chrono::milliseconds(2);
  const mc::service_report rep = mc::run_service_worker(root_, cfg);
  EXPECT_TRUE(rep.drained);

  std::size_t leftovers = 0;
  for (const auto& entry : fs::recursive_directory_iterator(root_)) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".claim") || name.find(".tmp.") != std::string::npos) {
      ++leftovers;
    }
  }
  EXPECT_EQ(leftovers, 0u);
}

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, StatusReportsExactCellCountsPerQueuedRun) {
  const fs::path dir = submit_demand("partial");
  mc::worker_config wcfg;
  wcfg.max_cells = 3;
  (void)mc::run_pending_cells(dir, wcfg);

  const mc::service_status status = mc::query_service_status(root_);
  ASSERT_EQ(status.runs.size(), 1u);
  EXPECT_EQ(status.runs[0].name, "partial");
  EXPECT_EQ(status.runs[0].cells_done, 3u);
  EXPECT_EQ(status.runs[0].cells_total, 10u);
  EXPECT_EQ(status.runs[0].quarantined, 0u);
  EXPECT_TRUE(status.runs[0].readable);
  EXPECT_EQ(status.cells_done, 3u);
  EXPECT_EQ(status.cells_total, 10u);
  EXPECT_FALSE(status.draining);

  const std::string json = status.to_json();
  EXPECT_NE(json.find("\"cells_done\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"cells_total\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"fraction_done\": 0.2999"), std::string::npos);
}

TEST_F(ServiceTest, StatusCountsDistinctClaimOwnersAsActiveWorkers) {
  const fs::path dir = submit_demand("claimed");
  // Two claims by one owner, one by another: 2 distinct active workers.
  const auto write_claim = [&](std::uint64_t index, const std::string& host, long pid) {
    std::ofstream f(mc::cell_claim_path(dir, index), std::ios::binary);
    f << "host " << host << "\npid " << pid << "\ntime 0\n";
  };
  write_claim(0, "hostA", 111);
  write_claim(1, "hostA", 111);
  write_claim(2, "hostB", 222);

  const mc::service_status status = mc::query_service_status(root_);
  ASSERT_EQ(status.runs.size(), 1u);
  EXPECT_EQ(status.runs[0].active_workers, 2u);
  EXPECT_EQ(status.active_workers, 2u);
}

TEST_F(ServiceTest, StatusFlagsAnUnreadableRunWithoutThrowing) {
  EXPECT_TRUE(mc::submit_queued_run(root_, "ghost", root_ / "runs" / "ghost"));
  const mc::service_status status = mc::query_service_status(root_);
  ASSERT_EQ(status.runs.size(), 1u);
  EXPECT_FALSE(status.runs[0].readable);
  EXPECT_EQ(status.cells_total, 0u);
  EXPECT_NE(status.to_json().find("\"readable\": false"), std::string::npos);
}

#ifdef RELDIV_SWEEP_BIN
// ---------------------------------------------------------------------------
// Fleet end-to-end: 3 long-poll worker processes, two queued runs of
// different kinds, one worker SIGKILL'd mid-run — both merged results
// byte-identical to their single-process oracles.
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, FleetDrainsTwoKindsThroughASigkillByteIdenticalToOracles) {
  const mc::demand_manifest dm = test_demand_manifest();
  const mc::experiment_manifest em = test_experiment_manifest();
  const fs::path demand_dir = mc::runs_dir(root_) / "a_demand";
  const fs::path exp_dir = mc::runs_dir(root_) / "b_exp";
  (void)mc::run_handle::init(dm, demand_dir);
  (void)mc::run_handle::init(em, exp_dir);
  ASSERT_TRUE(mc::submit_queued_run(root_, "a_demand", demand_dir));
  ASSERT_TRUE(mc::submit_queued_run(root_, "b_exp", exp_dir));

  const std::vector<std::string> args = {
      "reldiv_sweep", "serve",         "--root", root_.string(), "--workers", "0",
      "--quiet",      "--poll-min-ms", "1",      "--poll-max-ms", "20"};
  const std::vector<int> pids = mc::spawn_processes(RELDIV_SWEEP_BIN, args, 3);
  ASSERT_EQ(pids.size(), 3u);

  // SIGKILL one worker mid-run; its siblings reap the dead claim (the pid is
  // provably dead on this host) and finish the cell themselves.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(::kill(pids[0], SIGKILL), 0);

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(5);
  while (!mc::missing_cells(demand_dir).empty() || !mc::missing_cells(exp_dir).empty()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "fleet stalled";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  mc::request_drain(root_);
  const std::vector<int> codes = mc::wait_sweep_workers(pids);
  EXPECT_EQ(codes[0], 128 + SIGKILL);
  EXPECT_EQ(codes[1], 0);
  EXPECT_EQ(codes[2], 0);

  // Byte-identical to the single-process oracles, both kinds.
  const mc::demand_tally demand_oracle =
      mc::run_demand_campaign(dm.target_pfd, dm.demands, dm.config());
  const mc::experiment_result exp_oracle = mc::run_experiment(em.universe, em.config());
  EXPECT_EQ(mc::run_handle::open(demand_dir).merge_tables().csv,
            mc::demand_tally_csv(dm, demand_oracle));
  EXPECT_EQ(mc::run_handle::open(exp_dir).merge_tables().csv,
            mc::experiment_result_csv(exp_oracle));
  EXPECT_TRUE(mc::quarantined_cells(demand_dir).empty());
  EXPECT_TRUE(mc::quarantined_cells(exp_dir).empty());
}
#endif  // RELDIV_SWEEP_BIN

}  // namespace
