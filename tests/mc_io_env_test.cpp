// mc::io_env — the injectable filesystem seam and its deterministic fault
// plans: plan purity and masking, recipe round-trips, the POSIX env's
// contract (including RENAME_NOREPLACE and heartbeat-style touches), the
// faulty env's injections, and write_file_atomic's behavior when the seam
// misbehaves underneath it (a torn "committed" write must be caught by the
// container checksum, never silently merged).
#include "mc/io_env.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <string>

#include "mc/run_dir.hpp"
#include "stats/wire.hpp"

namespace mc = reldiv::mc;
namespace fs = std::filesystem;

namespace {

class IoEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-qualified so concurrent test processes can't clobber each other.
    dir_ = fs::temp_directory_path() /
           ("reldiv_io_env_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

/// A plan that fires on every matching operation — the deterministic way to
/// hit a specific op with a specific fault.
mc::fault_plan always(mc::io_op op, mc::fault_kind kind) {
  mc::fault_plan plan;
  plan.seed = 42;
  plan.rate_ppm = 1'000'000;
  plan.ops_mask = mc::io_op_bit(op);
  plan.kinds_mask = mc::fault_kind_bit(kind);
  return plan;
}

// ---------------------------------------------------------------------------
// fault_plan
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, DecideIsAPureFunctionOfSeedAndIndex) {
  mc::fault_plan plan;
  plan.seed = 0xfeedULL;
  plan.rate_ppm = 250'000;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const mc::fault_kind first = plan.decide(mc::io_op::write, i);
    EXPECT_EQ(first, plan.decide(mc::io_op::write, i)) << "index " << i;
  }
  // A different seed must produce a different schedule somewhere in 200 ops.
  mc::fault_plan other = plan;
  other.seed = 0xbeefULL;
  bool differs = false;
  for (std::uint64_t i = 0; i < 200 && !differs; ++i) {
    differs = plan.decide(mc::io_op::write, i) != other.decide(mc::io_op::write, i);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlanTest, ZeroSeedOrZeroRateDisablesInjection) {
  mc::fault_plan zero_seed;
  zero_seed.seed = 0;
  zero_seed.rate_ppm = 1'000'000;
  mc::fault_plan zero_rate;
  zero_rate.seed = 7;
  zero_rate.rate_ppm = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(zero_seed.decide(mc::io_op::write, i), mc::fault_kind::none);
    EXPECT_EQ(zero_rate.decide(mc::io_op::write, i), mc::fault_kind::none);
  }
}

TEST(FaultPlanTest, RespectsOpAndKindMasksAndApplicability) {
  // Writes only, EIO only: reads never fault, writes only ever see EIO.
  mc::fault_plan plan = always(mc::io_op::write, mc::fault_kind::eio);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(plan.decide(mc::io_op::read, i), mc::fault_kind::none);
    EXPECT_EQ(plan.decide(mc::io_op::write, i), mc::fault_kind::eio);
  }
  // torn_write is not applicable to reads: even with every op enabled and
  // only torn_write in the palette, reads must never report it.
  mc::fault_plan torn;
  torn.seed = 9;
  torn.rate_ppm = 1'000'000;
  torn.kinds_mask = mc::fault_kind_bit(mc::fault_kind::torn_write);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(torn.decide(mc::io_op::read, i), mc::fault_kind::none);
    EXPECT_EQ(torn.decide(mc::io_op::write, i), mc::fault_kind::torn_write);
  }
}

TEST(FaultPlanTest, RecipeRoundTripsAndRejectsMalformedText) {
  mc::fault_plan plan;
  plan.seed = 0x1234'5678'9abc'def0ULL;
  plan.rate_ppm = 31'415;
  plan.ops_mask = mc::io_op_bit(mc::io_op::rename) | mc::io_op_bit(mc::io_op::claim);
  plan.kinds_mask = mc::fault_kind_bit(mc::fault_kind::lost_rename);
  plan.stall_ms = 17;

  const mc::fault_plan back = mc::fault_plan::parse(plan.to_string());
  EXPECT_EQ(back.seed, plan.seed);
  EXPECT_EQ(back.rate_ppm, plan.rate_ppm);
  EXPECT_EQ(back.ops_mask, plan.ops_mask);
  EXPECT_EQ(back.kinds_mask, plan.kinds_mask);
  EXPECT_EQ(back.stall_ms, plan.stall_ms);

  EXPECT_THROW((void)mc::fault_plan::parse(""), std::invalid_argument);
  EXPECT_THROW((void)mc::fault_plan::parse("seed=1"), std::invalid_argument);
  EXPECT_THROW((void)mc::fault_plan::parse("seed=x,rate_ppm=1,ops=1,kinds=2,stall_ms=5"),
               std::invalid_argument);
}

TEST(FaultPlanTest, ChaosPlansDeriveDistinctSeedsFromOneChaosSeed) {
  const mc::fault_plan a = mc::chaos_plan(7331, 0, 30'000);
  const mc::fault_plan b = mc::chaos_plan(7331, 1, 30'000);
  EXPECT_NE(a.seed, 0u);
  EXPECT_NE(b.seed, 0u);
  EXPECT_NE(a.seed, b.seed);
  EXPECT_EQ(a.rate_ppm, 30'000u);
  // Replayable: the same (chaos seed, index) always yields the same plan.
  EXPECT_EQ(a.to_string(), mc::chaos_plan(7331, 0, 30'000).to_string());
}

// ---------------------------------------------------------------------------
// real_io_env
// ---------------------------------------------------------------------------

TEST_F(IoEnvTest, RealEnvWritesReadsAndReportsErrnoInErrors) {
  mc::real_io_env env;
  const fs::path p = dir_ / "file.bin";
  const std::string payload("payload\0with\0nuls", 17);
  env.write_file(p, payload, /*sync=*/true);
  EXPECT_EQ(env.read_file(p), payload);

  try {
    (void)env.read_file(dir_ / "absent");
    FAIL() << "read of a missing file must throw";
  } catch (const mc::io_error& e) {
    EXPECT_EQ(e.error_number(), ENOENT);
    EXPECT_EQ(e.op(), "read");
    EXPECT_NE(std::string(e.what()).find("absent"), std::string::npos);
  }
}

TEST_F(IoEnvTest, IoErrorIsARunDirErrorSoExistingCatchSitesHandleIt) {
  mc::real_io_env env;
  EXPECT_THROW((void)env.read_file(dir_ / "absent"), mc::run_dir_error);
}

TEST_F(IoEnvTest, RenameNoReplaceConsumesSourceAndRefusesExistingTarget) {
  mc::real_io_env env;
  const fs::path a = dir_ / "a";
  const fs::path b = dir_ / "b";
  env.write_file(a, "first", false);
  EXPECT_EQ(env.rename_noreplace(a, b), 0);
  EXPECT_FALSE(fs::exists(a));
  EXPECT_EQ(env.read_file(b), "first");

  env.write_file(a, "second", false);
  EXPECT_EQ(env.rename_noreplace(a, b), -EEXIST);
  EXPECT_EQ(env.read_file(b), "first") << "losing rename must not clobber the target";
}

TEST_F(IoEnvTest, TouchWithoutCreateRefusesToResurrectAMissingFile) {
  mc::real_io_env env;
  const fs::path p = dir_ / "claim";
  EXPECT_FALSE(env.touch(p, "body", /*create=*/false));
  EXPECT_FALSE(fs::exists(p)) << "a heartbeat must never recreate a reaped claim";

  EXPECT_TRUE(env.touch(p, "body", /*create=*/true));
  const auto before = fs::last_write_time(p);
  EXPECT_TRUE(env.touch(p, "body", /*create=*/false));
  EXPECT_GE(fs::last_write_time(p), before);
}

TEST_F(IoEnvTest, ScopedEnvInstallsAndRestores) {
  mc::faulty_io_env faulty(mc::fault_plan{});
  EXPECT_EQ(&mc::active_io_env(), &mc::system_io_env());
  {
    mc::scoped_io_env scope(faulty);
    EXPECT_EQ(&mc::active_io_env(), static_cast<mc::io_env*>(&faulty));
  }
  EXPECT_EQ(&mc::active_io_env(), &mc::system_io_env());
}

// ---------------------------------------------------------------------------
// faulty_io_env
// ---------------------------------------------------------------------------

TEST_F(IoEnvTest, InjectedEioSurfacesAsIoErrorAndIsCounted) {
  mc::faulty_io_env env(always(mc::io_op::read, mc::fault_kind::eio));
  const fs::path p = dir_ / "file";
  env.write_file(p, "data", false);  // writes unaffected by the read-only mask
  try {
    (void)env.read_file(p);
    FAIL() << "injected EIO must throw";
  } catch (const mc::io_error& e) {
    EXPECT_EQ(e.error_number(), EIO);
  }
  EXPECT_GE(env.operations(), 2u);
  EXPECT_EQ(env.injected(), 1u);
}

TEST_F(IoEnvTest, TornWriteReportsSuccessButLandsOnlyAPrefix) {
  mc::faulty_io_env env(always(mc::io_op::write, mc::fault_kind::torn_write));
  const fs::path p = dir_ / "torn";
  const std::string contents(64, 'x');
  env.write_file(p, contents, /*sync=*/true);  // no throw: the tear is silent
  const std::string landed = mc::real_io_env{}.read_file(p);
  EXPECT_LT(landed.size(), contents.size());
}

TEST_F(IoEnvTest, LostRenameReportsSuccessButTargetNeverAppears) {
  mc::faulty_io_env env(always(mc::io_op::rename, mc::fault_kind::lost_rename));
  const fs::path from = dir_ / "from";
  const fs::path to = dir_ / "to";
  env.write_file(from, "data", false);
  env.rename_file(from, to);  // no throw
  EXPECT_FALSE(fs::exists(to));
  EXPECT_FALSE(fs::exists(from)) << "the source is consumed either way";
}

TEST_F(IoEnvTest, StallDelaysButCompletesTheOperation) {
  mc::fault_plan plan = always(mc::io_op::write, mc::fault_kind::stall);
  plan.stall_ms = 1;
  mc::faulty_io_env env(plan);
  const fs::path p = dir_ / "slow";
  env.write_file(p, "eventually", false);
  EXPECT_EQ(mc::real_io_env{}.read_file(p), "eventually");
  EXPECT_GE(env.injected(), 1u);
}

// ---------------------------------------------------------------------------
// The seam under run_dir: torn commits must be caught downstream
// ---------------------------------------------------------------------------

TEST_F(IoEnvTest, TornAtomicWriteIsRejectedByTheContainerChecksum) {
  const std::string blob = mc::encode_state_blob(mc::state_kind::demand, "payload");
  const fs::path p = dir_ / "cell.state";
  {
    mc::faulty_io_env env(always(mc::io_op::write, mc::fault_kind::torn_write));
    mc::scoped_io_env scope(env);
    mc::write_file_atomic(p, blob);  // "succeeds" — the tear is silent
  }
  // The protocol's actual defense: a torn state file never validates, so the
  // cell reads as not-done and is recomputed instead of merged.
  EXPECT_THROW((void)mc::decode_state_blob(mc::state_kind::demand, mc::read_file(p)),
               mc::run_dir_error);
}

TEST_F(IoEnvTest, AtomicWriteFailureLeavesNoTempBehind) {
  mc::faulty_io_env env(always(mc::io_op::write, mc::fault_kind::enospc));
  mc::scoped_io_env scope(env);
  EXPECT_THROW(mc::write_file_atomic(dir_ / "out", "data"), mc::io_error);
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 0u) << "failed atomic writes must clean up their temp file";
}

}  // namespace
