// mc::distributed — the multi-process sweep driver.  The contract under
// test: however a run directory gets filled (one process, many processes,
// interrupted and resumed, corrupted and healed), the merged grid_result is
// bit-identical to the single-process run_scenario_grid for the same
// axes/config.
#include "mc/distributed.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/generators.hpp"
#include "mc/run_dir.hpp"
#include "mc/scenario.hpp"

namespace mc = reldiv::mc;
namespace core = reldiv::core;
namespace fs = std::filesystem;

namespace {

mc::scenario_axes test_axes() {
  mc::scenario_axes axes;
  axes.universes.emplace_back("grade",
                              core::make_safety_grade_universe(24, 0.0, 0.05, 0.6, 5));
  axes.universes.emplace_back("small",
                              core::make_many_small_faults_universe(64, 0.05, 0.3, 0.8, 0.2, 6));
  axes.correlations = {0.0, 0.4};
  axes.overlaps = {1.0, 0.5};
  axes.aliasing = {1, 2};
  axes.budgets = {2'000};
  return axes;  // 16 cells
}

mc::scenario_config test_config() { return {.seed = 31337, .threads = 2, .shards = 0}; }

class DistributedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-qualified so concurrent test processes (parallel CI builds on one
    // runner) can't remove_all each other's live run directories.
    dir_ = fs::temp_directory_path() /
           ("reldiv_distributed_test_" + std::to_string(::getpid()) + "_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(DistributedTest, InitWritesManifestAndJsonMirror) {
  const auto m = mc::init_run_dir(test_axes(), test_config(), dir_);
  EXPECT_EQ(m.cell_count, 16u);
  EXPECT_EQ(m.seed, 31337u);
  EXPECT_TRUE(fs::exists(mc::manifest_path(dir_)));
  EXPECT_TRUE(fs::exists(dir_ / "manifest.json"));
  EXPECT_TRUE(fs::exists(mc::cells_dir(dir_)));

  const auto loaded = mc::load_run_manifest(dir_);
  EXPECT_EQ(mc::manifest_fingerprint(loaded), mc::manifest_fingerprint(m));

  // Re-init with the same sweep resumes; with a different seed it refuses.
  EXPECT_NO_THROW((void)mc::init_run_dir(test_axes(), test_config(), dir_));
  mc::scenario_config other = test_config();
  other.seed = 1;
  EXPECT_THROW((void)mc::init_run_dir(test_axes(), other, dir_), mc::run_dir_error);
  // threads is a throughput knob, not identity: changing it still resumes.
  mc::scenario_config threads = test_config();
  threads.threads = 7;
  EXPECT_NO_THROW((void)mc::init_run_dir(test_axes(), threads, dir_));
}

TEST_F(DistributedTest, WorkerFillsDirectoryAndMergeEqualsSingleProcess) {
  const auto axes = test_axes();
  const auto cfg = test_config();
  mc::init_run_dir(axes, cfg, dir_);

  const auto report = mc::run_pending_cells(dir_);
  EXPECT_EQ(report.computed, 16u);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_TRUE(mc::missing_cells(dir_).empty());

  const mc::grid_result merged = mc::merge_run_dir(dir_);
  const mc::grid_result single = mc::run_scenario_grid(axes, cfg);
  EXPECT_EQ(merged.to_csv(), single.to_csv());
  EXPECT_EQ(merged.to_json(), single.to_json());

  // A second worker pass is a no-op: everything reads as done.
  const auto again = mc::run_pending_cells(dir_);
  EXPECT_EQ(again.computed, 0u);
  EXPECT_EQ(again.skipped, 16u);
}

TEST_F(DistributedTest, InterruptedRunResumesBitIdentical) {
  const auto axes = test_axes();
  const auto cfg = test_config();
  mc::init_run_dir(axes, cfg, dir_);

  // "Kill" the worker after 5 cells: exactly the surviving-state-files
  // situation a SIGKILL leaves behind.
  const auto partial = mc::run_pending_cells(dir_, /*max_cells=*/5);
  EXPECT_EQ(partial.computed, 5u);
  EXPECT_EQ(mc::missing_cells(dir_).size(), 11u);
  EXPECT_THROW((void)mc::merge_run_dir(dir_), mc::run_dir_error);

  const auto resumed = mc::run_pending_cells(dir_);
  EXPECT_EQ(resumed.computed, 11u);
  EXPECT_EQ(resumed.skipped, 5u);

  const mc::grid_result merged = mc::merge_run_dir(dir_);
  const mc::grid_result single = mc::run_scenario_grid(axes, cfg);
  EXPECT_EQ(merged.to_csv(), single.to_csv());
  EXPECT_EQ(merged.to_json(), single.to_json());
}

// A pid far past Linux's pid_max: kill(pid, 0) reports ESRCH, so a claim
// recording it on THIS host is provably dead.
constexpr long kDeadPid = 999'999'999;

TEST_F(DistributedTest, StaleClaimsAreSkippedThenCleaned) {
  const auto axes = test_axes();
  const auto cfg = test_config();
  mc::init_run_dir(axes, cfg, dir_);

  // A claim left by a killed local worker makes cell 2 look owned — but its
  // recorded pid is provably dead on this host, so the worker reaps it
  // inline (no lease wait, no coordinator) and computes every cell.
  std::ofstream(mc::cell_claim_path(dir_, 2))
      << "host " << mc::claim_host_name() << "\npid " << kDeadPid << "\ntime 0\n";
  const fs::path orphan_tmp =
      mc::cells_dir(dir_) / ("cell_000003.state.tmp." + mc::claim_host_name() + "." +
                             std::to_string(kDeadPid));
  std::ofstream(orphan_tmp) << "partial";
  const auto report = mc::run_pending_cells(dir_);
  EXPECT_EQ(report.computed, 16u);
  EXPECT_TRUE(mc::missing_cells(dir_).empty());
  EXPECT_FALSE(fs::exists(mc::cell_claim_path(dir_, 2)));

  // The orphaned temp blocks nothing, so only the coordinator sweep — same
  // dead-owner rule — bothers removing it.
  EXPECT_TRUE(fs::exists(orphan_tmp));
  mc::clean_stale_claims(dir_);
  EXPECT_FALSE(fs::exists(orphan_tmp));
  EXPECT_EQ(mc::merge_run_dir(dir_).to_csv(), mc::run_scenario_grid(axes, cfg).to_csv());
}

TEST_F(DistributedTest, ForeignHostClaimHonorsLeaseTtl) {
  mc::init_run_dir(test_axes(), test_config(), dir_);

  // A claim from another host whose pid we cannot probe: inside its lease it
  // must survive any clean_stale_claims sweep (the worker may be alive over
  // there), and workers must keep skipping the cell it guards.
  const fs::path claim = mc::cell_claim_path(dir_, 4);
  std::ofstream(claim) << "host some-other-host\npid 1234\ntime 0\n";
  mc::clean_stale_claims(dir_);
  EXPECT_TRUE(fs::exists(claim));

  (void)mc::run_pending_cells(dir_);
  EXPECT_EQ(mc::missing_cells(dir_), std::vector<std::uint64_t>{4});

  // Once the lease expires the claim is fair game even though its owner is
  // unknown — and the WORKER reaps it itself (no coordinator sweep needed:
  // a coordinator-less fleet must recover a lost host's cells on its own).
  fs::last_write_time(claim,
                      fs::file_time_type::clock::now() - 2 * mc::kClaimLeaseTtl);
  (void)mc::run_pending_cells(dir_);
  EXPECT_FALSE(fs::exists(claim));
  EXPECT_TRUE(mc::missing_cells(dir_).empty());
}

TEST_F(DistributedTest, LiveLocalClaimIsNotReaped) {
  mc::init_run_dir(test_axes(), test_config(), dir_);

  // Our own live pid: clean_stale_claims must leave the claim alone — the
  // rename-claim protocol's whole point is that live owners keep their cell.
  const fs::path claim = mc::cell_claim_path(dir_, 0);
  std::ofstream(claim) << "host " << mc::claim_host_name() << "\npid " << ::getpid()
                       << "\ntime 0\n";
  mc::clean_stale_claims(dir_);
  EXPECT_TRUE(fs::exists(claim));
  fs::remove(claim);
}

TEST_F(DistributedTest, UnparseableClaimFallsBackToLease) {
  mc::init_run_dir(test_axes(), test_config(), dir_);

  // Garbage content (e.g. a pre-lease-format claim): only the TTL rule may
  // reap it.
  const fs::path claim = mc::cell_claim_path(dir_, 1);
  std::ofstream(claim) << "???";
  mc::clean_stale_claims(dir_);
  EXPECT_TRUE(fs::exists(claim));
  fs::last_write_time(claim,
                      fs::file_time_type::clock::now() - 2 * mc::kClaimLeaseTtl);
  mc::clean_stale_claims(dir_);
  EXPECT_FALSE(fs::exists(claim));
}

TEST_F(DistributedTest, OverflowingOrphanPidSuffixFallsBackToLease) {
  mc::init_run_dir(test_axes(), test_config(), dir_);

  // Orphan temp names carry their owner's pid as a filename suffix.  A
  // suffix that overflows `long` (or a crafted negative one) must parse as
  // "owner unknown" — handled by the lease TTL, never a throw out of the
  // sweep and never a probe of pid -1.
  const fs::path overflow_tmp =
      mc::cells_dir(dir_) / ("cell_000003.state.tmp." + mc::claim_host_name() +
                             ".99999999999999999999999999999");
  const fs::path negative_tmp =
      mc::cells_dir(dir_) /
      ("cell_000004.state.tmp." + mc::claim_host_name() + ".-1");
  std::ofstream(overflow_tmp) << "partial";
  std::ofstream(negative_tmp) << "partial";

  // Fresh + unknown owner: both survive a sweep.
  mc::clean_stale_claims(dir_);
  EXPECT_TRUE(fs::exists(overflow_tmp));
  EXPECT_TRUE(fs::exists(negative_tmp));

  // Expired lease: the TTL rule reclaims them regardless of the bad owner.
  for (const fs::path& p : {overflow_tmp, negative_tmp}) {
    fs::last_write_time(p, fs::file_time_type::clock::now() - 2 * mc::kClaimLeaseTtl);
  }
  mc::clean_stale_claims(dir_);
  EXPECT_FALSE(fs::exists(overflow_tmp));
  EXPECT_FALSE(fs::exists(negative_tmp));
}

std::string own_claim_body() {
  return "host " + mc::claim_host_name() + "\npid " + std::to_string(::getpid()) +
         "\ntime 0\n";
}

// The acceptance case for lease heartbeats: a cell whose runtime exceeds
// the lease TTL completes without being reaped.  Shrunken TTL (1 s) so the
// claim is held for ~2.5 lease lifetimes while an adversarial coordinator
// sweeps continuously — the heartbeat's mtime renewals are the only thing
// keeping it alive (the TTL rule reaps aged claims even for live local
// owners; that is exactly why workers must renew).
TEST_F(DistributedTest, HeartbeatRenewalOutlivesTheLeaseTtl) {
  mc::init_run_dir(test_axes(), test_config(), dir_);
  const auto ttl = std::chrono::seconds{1};
  const fs::path claim = mc::cell_claim_path(dir_, 3);
  const std::string body = own_claim_body();
  std::ofstream(claim) << body;

  mc::claim_heartbeat heartbeat(claim, body, std::chrono::milliseconds{100});
  std::size_t honored = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds{2'500};
  while (std::chrono::steady_clock::now() < deadline) {
    honored += mc::clean_stale_claims(dir_, ttl).claims_honored;
    ASSERT_TRUE(fs::exists(claim)) << "sweep reaped an actively renewed claim";
    std::this_thread::sleep_for(std::chrono::milliseconds{200});
  }
  heartbeat.stop();
  EXPECT_FALSE(heartbeat.lost());
  EXPECT_GT(heartbeat.beats(), 0u);
  EXPECT_GT(honored, 0u);

  // Once renewals stop, filesystem-clock ageing governs again: backdate the
  // mtime past the TTL and the next sweep reaps it, live owner or not.
  fs::last_write_time(claim, fs::file_time_type::clock::now() - 2 * ttl);
  EXPECT_EQ(mc::clean_stale_claims(dir_, ttl).claims_reaped, 1u);
  EXPECT_FALSE(fs::exists(claim));
}

TEST_F(DistributedTest, ReapedClaimStopsTheHeartbeatInsteadOfResurrecting) {
  mc::init_run_dir(test_axes(), test_config(), dir_);
  const fs::path claim = mc::cell_claim_path(dir_, 5);
  const std::string body = own_claim_body();
  std::ofstream(claim) << body;

  mc::claim_heartbeat heartbeat(claim, body, std::chrono::milliseconds{50});
  auto wait_until = [](auto&& pred) {
    const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds{10};
    while (!pred() && std::chrono::steady_clock::now() < give_up) {
      std::this_thread::sleep_for(std::chrono::milliseconds{10});
    }
  };
  wait_until([&] { return heartbeat.beats() > 0; });
  ASSERT_GT(heartbeat.beats(), 0u);

  // A sweep (or a rival worker) reaps the claim out from under us: the next
  // renewal must notice and fail cleanly — NEVER recreate the claim, which
  // would steal the cell back from whoever legitimately owns it now.
  fs::remove(claim);
  wait_until([&] { return heartbeat.lost(); });
  EXPECT_TRUE(heartbeat.lost());
  heartbeat.stop();
  EXPECT_FALSE(fs::exists(claim)) << "renewal must never resurrect a reaped claim";
}

TEST_F(DistributedTest, WorkerWithShrunkenTtlSurvivesConcurrentSweeps) {
  const auto axes = test_axes();
  const auto cfg = test_config();
  mc::init_run_dir(axes, cfg, dir_);

  // A coordinator hammering clean_stale_claims with the same shrunken TTL
  // the worker renews against: no live claim may be reaped, every cell
  // lands, and the merge is still bit-identical to the oracle.
  std::atomic<bool> done{false};
  std::thread sweeper([&] {
    while (!done.load()) {
      (void)mc::clean_stale_claims(dir_, std::chrono::seconds{1});
      std::this_thread::sleep_for(std::chrono::milliseconds{5});
    }
  });
  mc::worker_config wcfg;
  wcfg.lease_ttl = std::chrono::seconds{1};
  const auto report = mc::run_pending_cells(dir_, wcfg);
  done = true;
  sweeper.join();

  EXPECT_EQ(report.computed, 16u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_EQ(mc::merge_run_dir(dir_).to_csv(), mc::run_scenario_grid(axes, cfg).to_csv());
}

TEST_F(DistributedTest, ClaimSweepReportCountsEachOutcome) {
  mc::init_run_dir(test_axes(), test_config(), dir_);

  // One provably-dead local claim, one orphaned .tmp, one live foreign
  // lease: the sweep report must account for each fate separately.
  std::ofstream(mc::cell_claim_path(dir_, 0))
      << "host " << mc::claim_host_name() << "\npid " << kDeadPid << "\ntime 0\n";
  const fs::path orphan =
      mc::cells_dir(dir_) / ("cell_000001.state.tmp." + mc::claim_host_name() + "." +
                             std::to_string(kDeadPid));
  std::ofstream(orphan) << "partial";
  std::ofstream(mc::cell_claim_path(dir_, 2)) << "host some-other-host\npid 1\ntime 0\n";

  const mc::claim_sweep_report report = mc::clean_stale_claims(dir_);
  EXPECT_EQ(report.claims_reaped, 1u);
  EXPECT_EQ(report.tmps_removed, 1u);
  EXPECT_EQ(report.claims_honored, 1u);
  EXPECT_FALSE(fs::exists(mc::cell_claim_path(dir_, 0)));
  EXPECT_FALSE(fs::exists(orphan));
  EXPECT_TRUE(fs::exists(mc::cell_claim_path(dir_, 2)));
}

TEST_F(DistributedTest, CorruptCellFileIsRecomputed) {
  const auto axes = test_axes();
  const auto cfg = test_config();
  mc::init_run_dir(axes, cfg, dir_);
  (void)mc::run_pending_cells(dir_);

  // Flip one byte in a completed cell: it must read as "not done" ...
  const fs::path victim = mc::cell_state_path(dir_, 7);
  std::string blob = mc::read_file(victim);
  blob[blob.size() / 2] = static_cast<char>(blob[blob.size() / 2] ^ 0x10);
  mc::write_file_atomic(victim, blob);
  EXPECT_EQ(mc::missing_cells(dir_), std::vector<std::uint64_t>{7});
  EXPECT_THROW((void)mc::merge_run_dir(dir_), mc::run_dir_error);

  // ... and a resume heals it, landing on the exact single-process result.
  const auto report = mc::run_pending_cells(dir_);
  EXPECT_EQ(report.computed, 1u);
  EXPECT_EQ(mc::merge_run_dir(dir_).to_csv(), mc::run_scenario_grid(axes, cfg).to_csv());
}

TEST_F(DistributedTest, ForeignCellFileRejected) {
  const auto axes = test_axes();
  mc::init_run_dir(axes, test_config(), dir_);
  (void)mc::run_pending_cells(dir_);

  // Plant cell 0 of a different sweep (other seed) at position 0.
  const fs::path foreign_dir = dir_.string() + ".foreign";
  mc::scenario_config other = test_config();
  other.seed = 777;
  mc::init_run_dir(axes, other, foreign_dir);
  (void)mc::run_pending_cells(foreign_dir, 1);
  fs::copy_file(mc::cell_state_path(foreign_dir, 0), mc::cell_state_path(dir_, 0),
                fs::copy_options::overwrite_existing);
  fs::remove_all(foreign_dir);

  // The fingerprint check refuses to merge it, and resume recomputes it.
  EXPECT_THROW((void)mc::merge_run_dir(dir_), mc::run_dir_error);
  EXPECT_EQ(mc::missing_cells(dir_), std::vector<std::uint64_t>{0});
  (void)mc::run_pending_cells(dir_);
  EXPECT_EQ(mc::merge_run_dir(dir_).to_csv(),
            mc::run_scenario_grid(axes, test_config()).to_csv());
}

#ifdef RELDIV_SWEEP_BIN

TEST_F(DistributedTest, FourWorkerProcessesMatchSingleProcessBitForBit) {
  const auto axes = test_axes();
  const auto cfg = test_config();
  const mc::distributed_config dist{.run_dir = dir_, .workers = 4};

  const mc::grid_result merged =
      mc::run_distributed_grid(axes, cfg, dist, RELDIV_SWEEP_BIN);
  const mc::grid_result single = mc::run_scenario_grid(axes, cfg);
  EXPECT_EQ(merged.to_csv(), single.to_csv());
  EXPECT_EQ(merged.to_json(), single.to_json());
}

TEST_F(DistributedTest, KilledMultiProcessRunResumesBitIdentical) {
  const auto axes = test_axes();
  const auto cfg = test_config();
  mc::init_run_dir(axes, cfg, dir_);

  // First wave: 4 real worker processes, each quota'd to one cell — the
  // deterministic stand-in for a SIGKILL that leaves 4 of 16 state files.
  const auto pids = mc::spawn_sweep_workers(RELDIV_SWEEP_BIN, dir_, 4, /*max_cells=*/1);
  const auto codes = mc::wait_sweep_workers(pids);
  for (const int c : codes) EXPECT_EQ(c, 0);
  EXPECT_EQ(mc::missing_cells(dir_).size(), 12u);

  // Resume with a fresh coordinator: identical to the uninterrupted run.
  const mc::distributed_config dist{.run_dir = dir_, .workers = 4};
  const mc::grid_result merged =
      mc::run_distributed_grid(axes, cfg, dist, RELDIV_SWEEP_BIN);
  EXPECT_EQ(merged.to_csv(), mc::run_scenario_grid(axes, cfg).to_csv());
}

TEST_F(DistributedTest, MissingWorkerBinaryReportsCleanly) {
  const auto axes = test_axes();
  const mc::distributed_config dist{.run_dir = dir_, .workers = 2};
  EXPECT_THROW(
      (void)mc::run_distributed_grid(axes, test_config(), dist, "/nonexistent/worker"),
      mc::run_dir_error);
}

#endif  // RELDIV_SWEEP_BIN

}  // namespace
