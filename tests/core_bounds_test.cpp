// The paper's bounds: eq. (4) µ2 <= pmax·µ1, eq. (9) σ2 < sqrt(pmax(1+pmax))·σ1,
// and the §5.1 confidence bounds eqs. (11)-(12), including the worked
// example and the pmax table values quoted in the paper.

#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/generators.hpp"
#include "stats/distributions.hpp"

namespace {

using namespace reldiv::core;

TEST(SigmaRatioFactor, PaperTableValues) {
  // §5.1 table: pmax -> sqrt(pmax(1+pmax))
  EXPECT_NEAR(sigma_ratio_factor(0.5), 0.866, 5e-4);
  EXPECT_NEAR(sigma_ratio_factor(0.1), 0.332, 5e-4);
  EXPECT_NEAR(sigma_ratio_factor(0.01), 0.100, 5e-4);
  // "For even lower values of pmax, clearly sqrt(pmax(1+pmax)) ≈ sqrt(pmax)".
  EXPECT_NEAR(sigma_ratio_factor(1e-6), std::sqrt(1e-6), 1e-9);
}

TEST(SigmaRatioFactor, Validation) {
  EXPECT_THROW((void)sigma_ratio_factor(-0.1), std::invalid_argument);
  EXPECT_THROW((void)sigma_ratio_factor(1.1), std::invalid_argument);
  EXPECT_DOUBLE_EQ(sigma_ratio_factor(0.0), 0.0);
}

TEST(WorkedExample, Section51Numbers) {
  // §5.1: µ1 = 0.01, σ1 = 0.001, 84% bound (k = 1) -> one-version bound 0.011.
  const double mu1 = 0.01;
  const double sigma1 = 0.001;
  const double k = 1.0;
  const double pmax = 0.1;
  const double one_version = mu1 + k * sigma1;
  EXPECT_NEAR(one_version, 0.011, 1e-12);
  // "our upper bound is 0.001 (an improvement by an order of magnitude) if
  // we use our first formula" — eq. (11), quoted to one significant digit.
  const double eq11 = pair_bound_from_moments(mu1, sigma1, k, pmax);
  EXPECT_NEAR(eq11, 0.1 * 0.01 + std::sqrt(0.11) * 0.001, 1e-12);
  EXPECT_NEAR(eq11, 0.001, 4e-4);  // paper rounds 0.00133 to 0.001
  // "a more modest 0.004 if we use the second formula" — eq. (12).
  const double eq12 = pair_bound_from_bound(one_version, pmax);
  EXPECT_NEAR(eq12, std::sqrt(0.11) * 0.011, 1e-12);
  EXPECT_NEAR(eq12, 0.004, 4e-4);  // paper rounds 0.00365 to 0.004
  // eq. (11) is tighter than eq. (12).
  EXPECT_LT(eq11, eq12);
}

TEST(Bounds, Validation) {
  EXPECT_THROW((void)mean_bound(-1.0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)sigma_bound(1.0, 2.0), std::invalid_argument);
  EXPECT_THROW((void)pair_bound_from_bound(-0.1, 0.5), std::invalid_argument);
}

TEST(AssessorView, ConsistentAcrossRepresentations) {
  const auto u = make_many_small_faults_universe(60, 0.0, 0.2, 0.5, 0.3, 77);
  const auto v = make_assessor_view(u, 2.0);
  EXPECT_NEAR(v.confidence, reldiv::stats::normal_cdf(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(v.one_version.value(), v.one_version.mu + 2.0 * v.one_version.sigma);
  // The view built from a confidence level must agree.
  const auto w = make_assessor_view_at_confidence(u, v.confidence);
  EXPECT_NEAR(w.k, 2.0, 1e-9);
  EXPECT_NEAR(w.bound_eq11, v.bound_eq11, 1e-12);
  EXPECT_THROW((void)make_assessor_view(u, -1.0), std::invalid_argument);
  EXPECT_THROW((void)make_assessor_view_at_confidence(u, 0.3), std::invalid_argument);
}

// --- property sweeps: the bounds must hold for every valid universe ---------

class BoundsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundsPropertyTest, MeanBoundEq4AlwaysHolds) {
  // eq. (4) requires nothing but pmax <= 1; test across the full p range.
  const auto u = make_random_universe(35, 1.0, 0.9, GetParam());
  const double mu1 = single_version_moments(u).mean;
  const double mu2 = pair_moments(u).mean;
  EXPECT_LE(mu2, mean_bound(mu1, u.p_max()) + 1e-15);
}

TEST_P(BoundsPropertyTest, SigmaBoundEq9HoldsBelowGoldenThreshold) {
  const auto u = make_random_universe(35, kGoldenThreshold, 0.9, GetParam() + 500);
  ASSERT_TRUE(u.all_p_below(kGoldenThreshold));
  const double s1 = single_version_moments(u).stddev();
  const double s2 = pair_moments(u).stddev();
  EXPECT_LE(s2, sigma_bound(s1, u.p_max()) + 1e-15);
}

TEST_P(BoundsPropertyTest, ConfidenceBoundsEq11Eq12Hold) {
  const auto u = make_random_universe(35, kGoldenThreshold, 0.9, GetParam() + 900);
  for (const double k : {0.0, 1.0, 2.33, 3.0}) {
    const auto view = make_assessor_view(u, k);
    const double actual = view.two_version.value();
    EXPECT_LE(actual, view.bound_eq11 + 1e-15) << "k=" << k;
    EXPECT_LE(actual, view.bound_eq12 + 1e-15) << "k=" << k;
    // eq. (12) is derived by loosening eq. (11).
    EXPECT_LE(view.bound_eq11, view.bound_eq12 + 1e-15) << "k=" << k;
  }
}

TEST_P(BoundsPropertyTest, SigmaSummandInequalityCanReverseAboveThreshold) {
  // §3.1.2: p²(1−p²) <= p(1−p) iff p <= 0.618...; above the threshold the
  // per-fault variance contribution of the pair EXCEEDS the single's.
  const double p = 0.7 + 0.2 * static_cast<double>(GetParam() % 10) / 10.0;
  fault_universe u({{p, 0.5}});
  const double s1 = single_version_moments(u).variance;
  const double s2 = pair_moments(u).variance;
  EXPECT_GT(s2, s1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
