// Distribution-layer tests, anchored on the exact numbers the paper quotes:
// P(Θ <= µ+3σ) = 0.99865003 and the 99% one-sided multiplier k = 2.33 (§5.1).

#include "stats/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace {

using namespace reldiv::stats;

TEST(NormalCdf, PaperQuotedValues) {
  // §5.1: "P(Θ≤µ+3σ)=0.99865003".  The true value is 0.998650102; the
  // paper's last printed digits are off by 7e-8 (a table-rounding artefact),
  // so we check agreement to the accuracy the paper can actually claim.
  EXPECT_NEAR(normal_cdf(3.0), 0.99865003, 1e-7);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-12);  // true value
  // §5.1: "the 99% confidence level corresponds to ϑ=µ+2.33σ"
  EXPECT_NEAR(one_sided_k(0.99), 2.33, 0.005);
}

TEST(NormalCdf, StandardValues) {
  EXPECT_DOUBLE_EQ(normal_cdf(0.0), 0.5);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.959963984540054), 0.025, 1e-12);
  EXPECT_NEAR(normal_cdf(5.0), 0.9999997133484281, 1e-12);
}

TEST(NormalPdf, KnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-14);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-14);
  EXPECT_NEAR(normal_pdf(2.0, 2.0, 1.0), 0.3989422804014327, 1e-14);
}

TEST(NormalQuantile, RoundTripOverWideRange) {
  for (double p = 1e-10; p < 1.0; p = p < 0.5 ? p * 10.0 : (1.0 + p) / 2.0) {
    const double x = normal_quantile(p);
    EXPECT_NEAR(normal_cdf(x), p, 1e-12 + 1e-9 * p) << "p=" << p;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.84134474606854293), 1.0, 1e-9);
}

TEST(NormalQuantile, RejectsEdges) {
  EXPECT_THROW((void)normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(1.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(-0.5), std::invalid_argument);
}

TEST(NormalScaled, LocationScale) {
  EXPECT_NEAR(normal_cdf(0.011, 0.01, 0.001), normal_cdf(1.0), 1e-12);
  EXPECT_NEAR(normal_quantile(0.99, 0.01, 0.001), 0.01 + 0.001 * normal_quantile(0.99),
              1e-12);
  EXPECT_THROW((void)normal_cdf(0.0, 0.0, 0.0), std::invalid_argument);
}

TEST(ConfidenceHelpers, Inverses) {
  for (const double k : {0.0, 1.0, 2.0, 3.0}) {
    EXPECT_NEAR(one_sided_k(confidence_from_k(k)), k, 1e-9);
  }
}

TEST(BetaDistribution, UniformSpecialCase) {
  const beta_distribution u{1.0, 1.0};
  EXPECT_NEAR(u.cdf(0.3), 0.3, 1e-13);
  EXPECT_NEAR(u.pdf(0.3), 1.0, 1e-13);
  EXPECT_NEAR(u.quantile(0.7), 0.7, 1e-10);
  EXPECT_DOUBLE_EQ(u.mean(), 0.5);
}

TEST(BetaDistribution, MomentsAndQuantileRoundTrip) {
  const beta_distribution b{2.5, 7.5};
  EXPECT_NEAR(b.mean(), 0.25, 1e-14);
  EXPECT_NEAR(b.variance(), 0.25 * 0.75 / 11.0, 1e-14);
  for (const double p : {0.05, 0.5, 0.95}) {
    EXPECT_NEAR(b.cdf(b.quantile(p)), p, 1e-9);
  }
}

TEST(BetaDistribution, CdfBounds) {
  const beta_distribution b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(b.cdf(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(b.cdf(1.5), 1.0);
}

TEST(LognormalDistribution, KnownRelations) {
  const lognormal_distribution ln{0.0, 1.0};
  EXPECT_NEAR(ln.cdf(1.0), 0.5, 1e-13);  // median at e^mu
  EXPECT_NEAR(ln.mean(), std::exp(0.5), 1e-12);
  EXPECT_NEAR(ln.quantile(0.5), 1.0, 1e-10);
  EXPECT_DOUBLE_EQ(ln.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ln.pdf(-1.0), 0.0);
}

TEST(BinomialCdf, MatchesDirectSum) {
  const std::int64_t n = 12;
  const double p = 0.3;
  double direct = 0.0;
  for (std::int64_t k = 0; k <= n; ++k) {
    direct += binomial_pmf(k, n, p);
    EXPECT_NEAR(binomial_cdf(k, n, p), direct, 1e-12) << "k=" << k;
  }
  EXPECT_NEAR(direct, 1.0, 1e-12);
}

TEST(BinomialCdf, Edges) {
  EXPECT_DOUBLE_EQ(binomial_cdf(-1, 5, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(5, 5, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(0, 5, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(7, 5, 0.5), 0.0);
}

TEST(LogChoose, KnownValues) {
  EXPECT_NEAR(log_choose(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(log_choose(52, 5), std::log(2598960.0), 1e-9);
  EXPECT_THROW((void)log_choose(3, 5), std::invalid_argument);
}

}  // namespace
