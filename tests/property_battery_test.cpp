// Cross-cutting property battery: for randomized universes, every layer of
// the library must tell the same story.  Each TEST_P seed checks ~20
// invariants spanning core, stats, mc, elm, forced, kofn and bayes — the
// consistency net that catches any module drifting from the model.

#include <gtest/gtest.h>

#include <cmath>

#include "bayes/assessment.hpp"
#include "core/bounds.hpp"
#include "core/generators.hpp"
#include "core/improvement.hpp"
#include "core/kofn.hpp"
#include "core/moments.hpp"
#include "core/no_common_fault.hpp"
#include "core/pfd_distribution.hpp"
#include "elm/models.hpp"
#include "forced/forced_diversity.hpp"
#include "stats/poisson_binomial.hpp"
#include "mc/experiment.hpp"
#include "stats/random.hpp"

namespace {

using namespace reldiv;
using namespace reldiv::core;

class PropertyBattery : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  [[nodiscard]] fault_universe universe() const {
    stats::rng r(GetParam());
    const std::size_t n = 5 + r.below(14);  // keep n <= 18 for enumeration
    return make_random_universe(n, 0.05 + 0.55 * r.uniform(), 0.3 + 0.6 * r.uniform(),
                                GetParam() * 7919 + 17);
  }
};

TEST_P(PropertyBattery, MomentAndBoundConsistency) {
  const auto u = universe();
  const auto m1 = single_version_moments(u);
  const auto m2 = pair_moments(u);

  // Ordering and eq. (4).
  EXPECT_LE(m2.mean, m1.mean + 1e-15);
  EXPECT_LE(m2.mean, mean_bound(m1.mean, u.p_max()) + 1e-15);
  // eq. (9) under its precondition.
  if (u.all_p_below(kGoldenThreshold)) {
    EXPECT_LE(m2.stddev(), sigma_bound(m1.stddev(), u.p_max()) + 1e-15);
  }
  // eqs. (11)/(12) at several k.
  for (const double k : {0.5, 1.0, 2.33}) {
    const double actual = m2.mean + k * m2.stddev();
    if (u.all_p_below(kGoldenThreshold)) {
      EXPECT_LE(actual, pair_bound_from_moments(m1.mean, m1.stddev(), k, u.p_max()) + 1e-15);
      EXPECT_LE(actual,
                pair_bound_from_bound(m1.mean + k * m1.stddev(), u.p_max()) + 1e-15);
    }
  }
}

TEST_P(PropertyBattery, DistributionLayerAgreesWithMomentLayer) {
  const auto u = universe();
  for (const unsigned m : {1u, 2u}) {
    const auto law = exact_pfd_distribution(u, m);
    const auto mom = one_out_of_m_moments(u, m);
    EXPECT_NEAR(law.mean(), mom.mean, 1e-11);
    EXPECT_NEAR(law.variance(), mom.variance, 1e-11);
    EXPECT_NEAR(law.prob_zero(), prob_no_common_fault_m(u, m), 1e-10);
    // CDF is monotone and hits 1 at the top.
    EXPECT_NEAR(law.cdf(law.max_value()), 1.0, 1e-10);
    // Quantile/CDF duality at a few levels.
    for (const double alpha : {0.5, 0.9, 0.99}) {
      const double x = law.quantile(alpha);
      EXPECT_GE(law.cdf(x) + 1e-12, alpha);
    }
  }
}

TEST_P(PropertyBattery, CountLayerAgreesWithProductFormulas) {
  const auto u = universe();
  const stats::poisson_binomial n1(u.p_values());
  std::vector<double> p2;
  for (const auto& a : u) p2.push_back(a.p * a.p);
  const stats::poisson_binomial n2(p2);
  EXPECT_NEAR(n1.pmf(0), prob_no_fault(u), 1e-11);
  EXPECT_NEAR(n2.pmf(0), prob_no_common_fault(u), 1e-11);
  EXPECT_NEAR(n1.prob_positive(), prob_some_fault(u), 1e-11);
  // eq. (10) two ways.
  EXPECT_NEAR(risk_ratio(u), n2.prob_positive() / n1.prob_positive(), 1e-10);
  // Footnote 5 identity.
  EXPECT_NEAR(success_ratio(u), prob_no_common_fault(u) / prob_no_fault(u),
              1e-9 * success_ratio(u));
}

TEST_P(PropertyBattery, ArchitectureElmForcedCrossChecks) {
  const auto u = universe();
  // kofn reduces to the pair machinery.
  EXPECT_NEAR(architecture_moments(u, architecture::one_out_of_two()).mean,
              pair_moments(u).mean, 1e-14);
  // EL decomposition consistency.
  const auto el = elm::decompose_el(u);
  EXPECT_NEAR(el.mean_pair, pair_moments(u).mean, 1e-14);
  EXPECT_GE(el.difficulty_variance, -1e-14);
  // forced_pair with identical channels = non-forced pair.
  const forced::forced_pair fp(u, u);
  EXPECT_NEAR(fp.pair_moments().mean, pair_moments(u).mean, 1e-14);
  EXPECT_NEAR(fp.prob_no_common_fault(), prob_no_common_fault(u), 1e-11);
}

TEST_P(PropertyBattery, ImprovementDirectionsAreLawful) {
  const auto u = universe();
  // Proportional improvement: reliability up AND diversity gain up (App. B).
  const auto uniform = improve_all(u, 0.5);
  EXPECT_LT(single_version_moments(uniform).mean, single_version_moments(u).mean);
  EXPECT_LE(risk_ratio(uniform), risk_ratio(u) + 1e-12);
  // Any improvement leaves the bounds ordered.
  EXPECT_LE(pair_moments(uniform).mean,
            mean_bound(single_version_moments(uniform).mean, uniform.p_max()) + 1e-15);
}

TEST_P(PropertyBattery, BayesNoEvidenceIdentityAndMonotonicity) {
  const auto u = universe();
  const auto prior = exact_pfd_distribution(u, 2);
  const auto post0 = bayes::posterior_pfd(u, 2, 0);
  EXPECT_NEAR(post0.mean(), prior.mean(), 1e-12);
  // Survival evidence can only improve the posterior mean and P(0).
  const auto post = bayes::posterior_pfd(u, 2, 2000);
  EXPECT_LE(post.mean(), prior.mean() + 1e-15);
  EXPECT_GE(post.prob_zero(), prior.prob_zero() - 1e-15);
}

TEST_P(PropertyBattery, MonteCarloBracketsTheAnalytics) {
  const auto u = universe();
  mc::experiment_config cfg;
  cfg.samples = 60000;
  cfg.seed = GetParam() + 5;
  // 48 containment checks run across the seed sweep: use 99.99% intervals
  // so a clean suite is the overwhelmingly likely outcome.
  cfg.ci_level = 0.9999;
  const auto res = mc::run_experiment(u, cfg);
  EXPECT_TRUE(res.mean_theta1().ci.contains(single_version_moments(u).mean));
  EXPECT_TRUE(res.mean_theta2().ci.contains(pair_moments(u).mean));
  EXPECT_TRUE(res.prob_n1_positive().ci.contains(prob_some_fault(u)));
  EXPECT_TRUE(res.prob_n2_positive().ci.contains(prob_some_common_fault(u)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyBattery,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
                                           2048));

}  // namespace
