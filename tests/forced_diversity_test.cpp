// Forced and functional diversity extensions (paper §1 and §7).

#include "forced/forced_diversity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/moments.hpp"

namespace {

using namespace reldiv;
using namespace reldiv::forced;

core::fault_universe channel_a() {
  return core::fault_universe({{0.30, 0.1}, {0.02, 0.2}, {0.25, 0.15}});
}

core::fault_universe channel_b() {
  return core::fault_universe({{0.05, 0.1}, {0.20, 0.2}, {0.10, 0.15}});
}

TEST(ForcedPair, PairMomentsByHand) {
  const forced_pair fp(channel_a(), channel_b());
  const auto m = fp.pair_moments();
  const double mean = 0.30 * 0.05 * 0.1 + 0.02 * 0.20 * 0.2 + 0.25 * 0.10 * 0.15;
  EXPECT_NEAR(m.mean, mean, 1e-15);
  double var = 0.0;
  const double pc[] = {0.015, 0.004, 0.025};
  const double q[] = {0.1, 0.2, 0.15};
  for (int i = 0; i < 3; ++i) var += pc[i] * (1 - pc[i]) * q[i] * q[i];
  EXPECT_NEAR(m.variance, var, 1e-15);
}

TEST(ForcedPair, ReducesToNonForcedWhenChannelsIdentical) {
  const forced_pair fp(channel_a(), channel_a());
  EXPECT_NEAR(fp.pair_moments().mean, core::pair_moments(channel_a()).mean, 1e-15);
  EXPECT_NEAR(fp.pair_moments().variance, core::pair_moments(channel_a()).variance, 1e-15);
}

TEST(ForcedPair, NoCommonFaultProduct) {
  const forced_pair fp(channel_a(), channel_b());
  EXPECT_NEAR(fp.prob_no_common_fault(), (1 - 0.015) * (1 - 0.004) * (1 - 0.025), 1e-13);
  EXPECT_GT(fp.risk_ratio_vs_best_channel(), 0.0);
  EXPECT_LT(fp.risk_ratio_vs_best_channel(), 1.0);
}

TEST(ForcedPair, MeanBoundHolds) {
  const forced_pair fp(channel_a(), channel_b());
  EXPECT_LE(fp.pair_moments().mean, fp.mean_bound() + 1e-15);
}

TEST(ForcedPair, Validation) {
  core::fault_universe short_b({{0.1, 0.1}});
  EXPECT_THROW(forced_pair(channel_a(), short_b), std::invalid_argument);
  core::fault_universe wrong_q({{0.05, 0.3}, {0.20, 0.2}, {0.10, 0.15}});
  EXPECT_THROW(forced_pair(channel_a(), wrong_q), std::invalid_argument);
}

TEST(FunctionalPair, FullOverlapRecoversForced) {
  const forced_pair fp(channel_a(), channel_b());
  const functional_pair full(fp, {1.0, 1.0, 1.0});
  EXPECT_NEAR(full.pair_moments().mean, fp.pair_moments().mean, 1e-15);
  EXPECT_NEAR(full.prob_no_common_failure_point(), fp.prob_no_common_fault(), 1e-13);
}

TEST(FunctionalPair, ZeroOverlapEliminatesCoincidence) {
  const forced_pair fp(channel_a(), channel_b());
  const functional_pair none(fp, {0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(none.pair_moments().mean, 0.0);
  EXPECT_DOUBLE_EQ(none.prob_no_common_failure_point(), 1.0);
}

TEST(FunctionalPair, PartialOverlapInterpolatesMonotonically) {
  const forced_pair fp(channel_a(), channel_b());
  double prev = -1.0;
  for (const double w : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const functional_pair p(fp, {w, w, w});
    const double mean = p.pair_moments().mean;
    EXPECT_GT(mean, prev);
    prev = mean;
  }
}

TEST(FunctionalPair, Validation) {
  const forced_pair fp(channel_a(), channel_b());
  EXPECT_THROW(functional_pair(fp, {1.0}), std::invalid_argument);
  EXPECT_THROW(functional_pair(fp, {0.5, 0.5, 1.5}), std::invalid_argument);
}

TEST(Comparison, ForcedAndFunctionalBeatNonForcedWorstCase) {
  // The paper's §1 premise: forced/functional arrangements "are expected to
  // be superior to non-forced diversity".  Against the conservative
  // max-process baseline, both gains must be >= 1.
  const forced_pair fp(channel_a(), channel_b());
  const functional_pair func(fp, {0.6, 0.8, 0.5});
  const auto cmp = compare_against_non_forced(func);
  EXPECT_GE(cmp.forced_gain(), 1.0);
  EXPECT_GE(cmp.functional_gain(), cmp.forced_gain());  // thinning only helps
  EXPECT_LE(cmp.functional_mean, cmp.forced_mean + 1e-15);
  EXPECT_LE(cmp.forced_mean, cmp.non_forced_mean + 1e-15);
}

}  // namespace
