// Equivalence and property tests for the packed-bitmask Monte-Carlo engine:
// the exact-stream mask sampler must reproduce the legacy sparse sampler
// decision-for-decision (same seed -> identical fault sets and identical
// theta1/theta2 streams), fault_mask algebra must agree with the
// set_intersection reference, and the fast samplers must have the right
// marginals.  Also covers stats::binomial_deviate, which now backs
// empirical_pfd.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/fault_mask.hpp"
#include "core/generators.hpp"
#include "core/moments.hpp"
#include "core/no_common_fault.hpp"
#include "mc/aliasing.hpp"
#include "mc/correlated.hpp"
#include "mc/experiment.hpp"
#include "mc/sampler.hpp"
#include "stats/random.hpp"

namespace {

using namespace reldiv;
using namespace reldiv::mc;

// --------------------------------------------------------------------------
// Bit-exact equivalence with the legacy sparse sampler
// --------------------------------------------------------------------------

TEST(MaskEquivalence, ExactSamplerReproducesSparseSamplerFaultSets) {
  // Word-boundary sizes included deliberately (1, 63, 64, 65, ...).
  for (const std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                              std::size_t{65}, std::size_t{200}}) {
    const auto u = core::make_random_universe(n, 0.5, 0.8, 1000 + n);
    stats::rng r_sparse(42);
    stats::rng r_mask(42);
    core::fault_mask m;
    for (int iter = 0; iter < 200; ++iter) {
      const version v = sample_version(u, r_sparse);
      sample_version_mask(u, r_mask, m);
      EXPECT_EQ(m.to_indices(), v.faults) << "n=" << n << " iter=" << iter;
      EXPECT_EQ(m.popcount(), v.fault_count());
      EXPECT_EQ(m.any(), v.has_fault());
    }
  }
}

TEST(MaskEquivalence, ExactSamplerReproducesLegacyThetaStreamsBitwise) {
  const auto u = core::make_random_universe(130, 0.4, 0.8, 99);
  stats::rng r_sparse(7);
  stats::rng r_mask(7);
  core::fault_mask a;
  core::fault_mask b;
  for (int s = 0; s < 500; ++s) {
    const version va = sample_version(u, r_sparse);
    const version vb = sample_version(u, r_sparse);
    const double t1_sparse = pfd_of(va, u);
    const double t2_sparse = pair_pfd(va, vb, u);

    sample_version_mask(u, r_mask, a);
    sample_version_mask(u, r_mask, b);
    const double t1_mask = pfd_of(a, u);
    const auto pair = pair_pfd_stats(a, b, u);

    // Same accumulation order -> bitwise-identical doubles, not just close.
    EXPECT_EQ(t1_sparse, t1_mask);
    EXPECT_EQ(t2_sparse, pair.pfd);
    EXPECT_EQ(!common_faults(va, vb).empty(), pair.any_common);
  }
}

TEST(MaskEquivalence, ExactEngineMatchesLegacyEngineExactly) {
  const auto u = core::make_random_universe(64, 0.4, 0.7, 123);
  experiment_config cfg;
  cfg.samples = 20000;
  cfg.threads = 4;
  cfg.seed = 2024;
  cfg.keep_samples = true;

  cfg.engine = sampling_engine::legacy;
  const auto legacy = run_experiment(u, cfg);
  cfg.engine = sampling_engine::exact;
  const auto exact = run_experiment(u, cfg);

  EXPECT_EQ(legacy.theta1.mean(), exact.theta1.mean());
  EXPECT_EQ(legacy.theta2.mean(), exact.theta2.mean());
  EXPECT_EQ(legacy.theta1.stddev(), exact.theta1.stddev());
  EXPECT_EQ(legacy.theta2.stddev(), exact.theta2.stddev());
  EXPECT_EQ(legacy.n1_positive, exact.n1_positive);
  EXPECT_EQ(legacy.n2_positive, exact.n2_positive);
  EXPECT_EQ(legacy.n1_zero_pfd, exact.n1_zero_pfd);
  EXPECT_EQ(legacy.n2_zero_pfd, exact.n2_zero_pfd);
  ASSERT_TRUE(legacy.theta1_samples.has_value() && exact.theta1_samples.has_value());
  EXPECT_EQ(*legacy.theta1_samples, *exact.theta1_samples);
  EXPECT_EQ(*legacy.theta2_samples, *exact.theta2_samples);
}

// --------------------------------------------------------------------------
// fault_mask algebra vs the sparse set_intersection reference
// --------------------------------------------------------------------------

TEST(FaultMask, IntersectionPopcountAndDotMatchSparseReference) {
  stats::rng r(5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(r.below(300));
    const auto u = core::make_random_universe(n, 0.6, 0.9, 77 + trial);
    const version va = sample_version(u, r);
    const version vb = sample_version(u, r);
    const auto ma = to_mask(va, n);
    const auto mb = to_mask(vb, n);

    // Round trip through the adapters.
    EXPECT_EQ(to_version(ma).faults, va.faults);

    // Intersection vs set_intersection.
    core::fault_mask mi(n);
    mi.intersect(ma, mb);
    EXPECT_EQ(mi.to_indices(), common_faults(va, vb));
    EXPECT_EQ(mi.popcount(), common_faults(va, vb).size());
    EXPECT_EQ(mi.any(), !common_faults(va, vb).empty());

    // PFD algebra, bitwise.
    EXPECT_EQ(pfd_of(ma, u), pfd_of(va, u));
    EXPECT_EQ(pair_pfd(ma, mb, u), pair_pfd(va, vb, u));

    // Tuple intersection over three versions.
    const version vc = sample_version(u, r);
    const auto mc_mask = to_mask(vc, n);
    const std::vector<core::fault_mask> tuple{ma, mb, mc_mask};
    core::fault_mask scratch;
    EXPECT_EQ(tuple_pfd(tuple, u, scratch), tuple_pfd({va, vb, vc}, u));
  }
}

TEST(FaultMask, TailBitsStayZeroAndEdgeSizesWork) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                              std::size_t{65}, std::size_t{127}, std::size_t{128}}) {
    core::fault_mask m(n);
    EXPECT_EQ(m.word_count(), (n + 63) / 64);
    EXPECT_TRUE(m.none());
    for (std::size_t i = 0; i < n; ++i) m.set(i);
    EXPECT_EQ(m.popcount(), n);  // no phantom tail bits
    EXPECT_TRUE(m.test(n - 1));
  }
  // The all-present uniform sampler must respect the tail invariant too.
  const auto u = core::make_homogeneous_universe(70, 1.0, 0.01);
  stats::rng r(3);
  core::fault_mask m;
  sample_version_mask_uniform(u, r, m);
  EXPECT_EQ(m.popcount(), 70u);
}

TEST(FaultMask, BernoulliThresholdMatchesUniformCompare) {
  // The threshold construction is what bit-exactness rests on: check the
  // comparison agrees with the double path across the 53-bit draw space
  // boundary values for an assortment of p.
  stats::rng r(11);
  for (const double p : {0.0, 1e-12, 0.05, 0.3, 0.5, 1 - 1e-12, 1.0}) {
    const std::uint64_t t = core::bernoulli_threshold(p);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t word = r();
      const std::uint64_t k = word >> 11;
      const bool via_double = static_cast<double>(k) * 0x1.0p-53 < p;
      EXPECT_EQ(k < t, via_double) << "p=" << p << " k=" << k;
    }
  }
}

// --------------------------------------------------------------------------
// Fast (non-stream-compatible) samplers: marginals
// --------------------------------------------------------------------------

TEST(FastSamplers, WordParallelUniformSamplerHasExactMarginals) {
  const double p = 0.37;
  const auto u = core::make_homogeneous_universe(150, p, 0.005);
  ASSERT_TRUE(u.has_uniform_p());
  stats::rng r(17);
  core::fault_mask m;
  const int iters = 40000;
  std::uint64_t present = 0;
  for (int i = 0; i < iters; ++i) {
    sample_version_mask_uniform(u, r, m);
    present += m.popcount();
  }
  const double freq =
      static_cast<double>(present) / (static_cast<double>(iters) * u.size());
  // sd of the frequency ~ sqrt(p(1-p)/(iters*n)) ~ 2e-4; allow 5 sigma.
  EXPECT_NEAR(freq, p, 1e-3);
}

TEST(FastSamplers, PairedSamplerHasPerFaultMarginals) {
  const auto u = core::make_random_universe(40, 0.6, 0.8, 31);
  stats::rng r(23);
  core::fault_mask a;
  core::fault_mask b;
  const int iters = 60000;
  std::vector<int> count_a(u.size(), 0);
  std::vector<int> count_b(u.size(), 0);
  for (int i = 0; i < iters; ++i) {
    sample_version_pair_fast(u, r, a, b);
    for (std::size_t f = 0; f < u.size(); ++f) {
      count_a[f] += a.test(f);
      count_b[f] += b.test(f);
    }
  }
  for (std::size_t f = 0; f < u.size(); ++f) {
    const double p = u[f].p;
    const double tol = 5.0 * std::sqrt(p * (1.0 - p) / iters) + 1e-9;
    EXPECT_NEAR(count_a[f] / static_cast<double>(iters), p, tol) << "fault " << f;
    EXPECT_NEAR(count_b[f] / static_cast<double>(iters), p, tol) << "fault " << f;
  }
}

TEST(FastSamplers, FastEngineBracketsClosedFormsOnUniformAndGenericUniverses) {
  // Uniform p exercises the word-parallel path; generic p the paired path.
  const auto uniform_u = core::make_homogeneous_universe(100, 0.3, 0.005);
  const auto generic_u = core::make_random_universe(100, 0.4, 0.8, 61);
  for (const auto* u : {&uniform_u, &generic_u}) {
    experiment_config cfg;
    cfg.samples = 150000;
    cfg.seed = 9;
    cfg.engine = sampling_engine::fast;
    cfg.ci_level = 0.9999;
    const auto res = run_experiment(*u, cfg);
    EXPECT_TRUE(res.mean_theta1().ci.contains(core::single_version_moments(*u).mean));
    EXPECT_TRUE(res.mean_theta2().ci.contains(core::pair_moments(*u).mean));
    EXPECT_TRUE(res.prob_n1_positive().ci.contains(core::prob_some_fault(*u)));
    EXPECT_TRUE(res.prob_n2_positive().ci.contains(core::prob_some_common_fault(*u)));
  }
}

TEST(FastSamplers, RareFaultUniverseFallsBackToExactKernel) {
  // Every fault far below the 2^-32 grid the paired sampler uses: the fast
  // engine must fall back to the 53-bit kernel rather than realize each
  // fault at p = 2^-32 (a ~233x oversample of the whole universe).  The
  // fallback consumes the rng stream exactly like the legacy engine, so
  // results are bit-identical.  (p values differ so the word-parallel
  // uniform path is out too.)
  std::vector<core::fault_atom> atoms(50, core::fault_atom{1e-12, 0.01});
  for (std::size_t i = 0; i < atoms.size(); i += 2) atoms[i].p = 2e-12;
  const core::fault_universe u(std::move(atoms));
  EXPECT_FALSE(u.fast32_grid_safe());
  EXPECT_TRUE(core::make_random_universe(64, 0.4, 0.7, 3).fast32_grid_safe());
  // A single negligible-weight rare fault must NOT force the slow path.
  std::vector<core::fault_atom> mixed(50, core::fault_atom{0.1, 0.01});
  mixed[3].p = 1e-12;
  EXPECT_TRUE(core::fault_universe(std::move(mixed)).fast32_grid_safe());

  experiment_config cfg;
  cfg.samples = 5000;
  cfg.threads = 2;
  cfg.seed = 31;
  cfg.engine = sampling_engine::fast;
  const auto fast = run_experiment(u, cfg);
  cfg.engine = sampling_engine::legacy;
  const auto legacy = run_experiment(u, cfg);
  EXPECT_EQ(fast.theta1.mean(), legacy.theta1.mean());
  EXPECT_EQ(fast.n1_positive, legacy.n1_positive);
  EXPECT_EQ(fast.n2_positive, legacy.n2_positive);
}

TEST(CorrelatedSamplers, SparseAndMaskPathsShareOneRngStream) {
  // sample() delegates to sample_mask(), so the two representations cannot
  // diverge; this pins the contract against future reimplementation.
  const auto u = core::make_random_universe(90, 0.4, 0.8, 55);
  const common_cause_mixture mix(u, 0.3, 1.5);
  const gaussian_copula_sampler cop(u, 0.4);
  const auto aliased = split_into_mistakes(u, 3);
  core::fault_mask m;
  stats::rng r1(5);
  stats::rng r2(5);
  for (int i = 0; i < 100; ++i) {
    mix.sample_mask(r1, m);
    EXPECT_EQ(m.to_indices(), mix.sample(r2).faults);
    cop.sample_mask(r1, m);
    EXPECT_EQ(m.to_indices(), cop.sample(r2).faults);
    aliased.sample_mask(r1, m);
    EXPECT_EQ(m.to_indices(), aliased.sample(r2).faults);
  }
}

// --------------------------------------------------------------------------
// Binomial deviate (the new empirical_pfd backend)
// --------------------------------------------------------------------------

TEST(BinomialDeviate, EdgesAndDeterminism) {
  stats::rng r(1);
  EXPECT_EQ(stats::binomial_deviate(r, 1000000, 0.0), 0u);
  EXPECT_EQ(stats::binomial_deviate(r, 1000000, 1.0), 1000000u);
  EXPECT_EQ(stats::binomial_deviate(r, 0, 0.5), 0u);
  stats::rng r1(77);
  stats::rng r2(77);
  EXPECT_EQ(stats::binomial_deviate(r1, 123456, 0.123),
            stats::binomial_deviate(r2, 123456, 0.123));
}

TEST(BinomialDeviate, MomentsMatchBinomialLaw) {
  stats::rng r(8);
  const std::uint64_t trials = 1'000'000;
  const double p = 0.0007;
  const int reps = 400;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < reps; ++i) {
    const auto k = static_cast<double>(stats::binomial_deviate(r, trials, p));
    sum += k;
    sum_sq += k * k;
  }
  const double mean = sum / reps;
  const double var = sum_sq / reps - mean * mean;
  const double expect_mean = static_cast<double>(trials) * p;  // 700
  const double expect_var = expect_mean * (1.0 - p);
  // 5-sigma bands on the Monte-Carlo estimates.
  EXPECT_NEAR(mean, expect_mean, 5.0 * std::sqrt(expect_var / reps));
  EXPECT_NEAR(var, expect_var, 0.35 * expect_var);
}

TEST(BinomialDeviate, SmallTrialsPathMatchesLaw) {
  stats::rng r(13);
  const std::uint64_t trials = 50;  // below the splitting cutoff
  const double p = 0.2;
  const int reps = 30000;
  double sum = 0.0;
  for (int i = 0; i < reps; ++i) {
    sum += static_cast<double>(stats::binomial_deviate(r, trials, p));
  }
  const double mean = sum / reps;
  EXPECT_NEAR(mean, 10.0, 5.0 * std::sqrt(trials * p * (1.0 - p) / reps));
}

}  // namespace
