// Protection-system simulator (Fig. 1): channel semantics, OR adjudication,
// and the integration property that campaign PFDs match the geometric model.

#include "protection/system.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace reldiv;
using namespace reldiv::protection;
using reldiv::demand::box;
using reldiv::demand::make_box_region;

TEST(SoftwareChannel, FailsExactlyInsideItsRegions) {
  software_channel ch({make_box_region(box({0.0, 0.0}, {0.2, 0.2}))});
  EXPECT_FALSE(ch.responds_correctly({0.1, 0.1}));
  EXPECT_TRUE(ch.responds_correctly({0.5, 0.5}));
  EXPECT_EQ(ch.fault_count(), 1u);
  software_channel perfect;
  EXPECT_TRUE(perfect.responds_correctly({0.1, 0.1}));
}

TEST(OneOutOfTwo, OrAdjudication) {
  software_channel a({make_box_region(box({0.0, 0.0}, {0.5, 1.0}))});  // fails left half
  software_channel b({make_box_region(box({0.25, 0.0}, {0.75, 1.0}))});
  one_out_of_two sys(a, b);
  EXPECT_TRUE(sys.responds_correctly({0.1, 0.5}));   // b ok
  EXPECT_TRUE(sys.responds_correctly({0.6, 0.5}));   // a ok
  EXPECT_FALSE(sys.responds_correctly({0.3, 0.5}));  // both fail: common region
  EXPECT_TRUE(sys.responds_correctly({0.9, 0.5}));   // both ok
}

TEST(DevelopChannel, RespectsFaultProbabilities) {
  const std::vector<demand::region_fault> faults = {
      {make_box_region(box({0.0, 0.0}, {0.1, 0.1})), 1.0},
      {make_box_region(box({0.5, 0.5}, {0.6, 0.6})), 0.0}};
  stats::rng r(1);
  const auto ch = develop_channel(faults, r);
  EXPECT_EQ(ch.fault_count(), 1u);
  EXPECT_FALSE(ch.responds_correctly({0.05, 0.05}));
  EXPECT_TRUE(ch.responds_correctly({0.55, 0.55}));
}

TEST(Campaign, PfdsMatchGeometryUnderUniformDemands) {
  // Channel A fails on a 0.1-measure strip, channel B on a 0.1-measure
  // strip overlapping A on 0.05: the system PFD is the overlap measure.
  software_channel a({make_box_region(box({0.0, 0.0}, {0.1, 1.0}))});
  software_channel b({make_box_region(box({0.05, 0.0}, {0.15, 1.0}))});
  one_out_of_two sys(a, b);
  const demand::uniform_profile prof(box::unit(2));
  stats::rng r(2);
  const auto res = run_profile_campaign(prof, sys, 400000, r);
  EXPECT_NEAR(res.channel_a_pfd(), 0.10, 0.003);
  EXPECT_NEAR(res.channel_b_pfd(), 0.10, 0.003);
  EXPECT_NEAR(res.system_pfd(), 0.05, 0.002);
  EXPECT_TRUE(res.system_pfd_ci(0.99).contains(0.05));
  // 1-out-of-2 never does worse than either channel.
  EXPECT_LE(res.system_pfd(), std::min(res.channel_a_pfd(), res.channel_b_pfd()));
}

TEST(Campaign, IdenticalChannelsGainNothing) {
  // The degenerate "no diversity" case: both channels carry the same fault.
  const auto region = make_box_region(box({0.4, 0.4}, {0.6, 0.6}));
  software_channel a({region});
  software_channel b({region});
  one_out_of_two sys(a, b);
  const demand::uniform_profile prof(box::unit(2));
  stats::rng r(3);
  const auto res = run_profile_campaign(prof, sys, 100000, r);
  EXPECT_EQ(res.system_failures, res.channel_a_failures);
  EXPECT_EQ(res.system_failures, res.channel_b_failures);
}

TEST(Plant, ProducesDemandsInUnitBox) {
  plant::config cfg;
  plant pl(cfg);
  stats::rng r(4);
  for (int i = 0; i < 200; ++i) {
    const auto x = pl.next_demand(r);
    ASSERT_EQ(x.size(), cfg.dims);
    for (const double v : x) {
      ASSERT_GE(v, 0.0);
      ASSERT_LE(v, 1.0);
    }
  }
}

TEST(Plant, DemandsClusterNearTripBoundary) {
  // Demands are threshold crossings, so the normalized coordinates should
  // concentrate away from the centre (0.5 would be the setpoint).
  plant::config cfg;
  plant pl(cfg);
  stats::rng r(5);
  int extreme = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const auto x = pl.next_demand(r);
    for (const double v : x) {
      if (std::fabs(v - 0.5) >= 0.19) {  // |state| >= ~0.76*threshold
        ++extreme;
        break;
      }
    }
  }
  EXPECT_GT(extreme, n / 2);
}

TEST(Plant, Validation) {
  plant::config bad;
  bad.dims = 0;
  EXPECT_THROW(plant{bad}, std::invalid_argument);
  plant::config bad2;
  bad2.volatility = 0.0;
  EXPECT_THROW(plant{bad2}, std::invalid_argument);
  plant::config stuck;
  stuck.volatility = 1e-9;
  stuck.transient_rate = 0.0;
  stuck.max_steps_per_demand = 100;
  plant pl(stuck);
  stats::rng r(6);
  EXPECT_THROW((void)pl.next_demand(r), std::runtime_error);
}

TEST(Campaign, PlantDrivenRunsEndToEnd) {
  const std::vector<demand::region_fault> faults = {
      {make_box_region(box({0.0, 0.0}, {0.3, 0.3})), 0.5},
      {make_box_region(box({0.7, 0.7}, {1.0, 1.0})), 0.5}};
  stats::rng dev_rng(7);
  one_out_of_two sys(develop_channel(faults, dev_rng), develop_channel(faults, dev_rng));
  plant::config cfg;
  plant pl(cfg);
  stats::rng op_rng(8);
  const auto res = run_campaign(pl, sys, 2000, op_rng);
  EXPECT_EQ(res.demands, 2000u);
  EXPECT_LE(res.system_failures, res.channel_a_failures);
  EXPECT_LE(res.system_failures, res.channel_b_failures);
}

TEST(Campaign, Validation) {
  one_out_of_two sys{software_channel{}, software_channel{}};
  const demand::uniform_profile prof(box::unit(2));
  stats::rng r(9);
  EXPECT_THROW((void)run_profile_campaign(prof, sys, 0, r), std::invalid_argument);
}

}  // namespace
