// Section 4 of the paper: P(no fault), P(no common fault), the eq. (10)
// risk ratio, the footnote-5 success ratio, and the Appendix A / B process-
// improvement results (trend reversal and proportional monotonicity).

#include "core/no_common_fault.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/generators.hpp"
#include "stats/random.hpp"

namespace {

using namespace reldiv::core;

TEST(NoCommonFault, HandComputedProbabilities) {
  fault_universe u({{0.1, 0.0}, {0.2, 0.0}});
  EXPECT_NEAR(prob_no_fault(u), 0.9 * 0.8, 1e-15);
  EXPECT_NEAR(prob_no_common_fault(u), (1.0 - 0.01) * (1.0 - 0.04), 1e-15);
  EXPECT_NEAR(prob_some_fault(u), 1.0 - 0.72, 1e-15);
  EXPECT_NEAR(prob_some_common_fault(u), 1.0 - 0.99 * 0.96, 1e-15);
}

TEST(NoCommonFault, OneOutOfMGeneralization) {
  fault_universe u({{0.5, 0.0}});
  EXPECT_NEAR(prob_no_common_fault_m(u, 1), 0.5, 1e-15);
  EXPECT_NEAR(prob_no_common_fault_m(u, 2), 0.75, 1e-15);
  EXPECT_NEAR(prob_no_common_fault_m(u, 3), 0.875, 1e-15);
  EXPECT_THROW((void)prob_no_common_fault_m(u, 0), std::invalid_argument);
}

TEST(NoCommonFault, TinyProbabilitiesAreStable) {
  // 1000 faults of p = 1e-9: P(N1>0) ~ 1e-6, P(N2>0) ~ 1e-15.
  fault_universe u(std::vector<fault_atom>(1000, fault_atom{1e-9, 0.0}));
  EXPECT_NEAR(prob_some_fault(u), 1e-6, 1e-9);
  EXPECT_NEAR(prob_some_common_fault(u), 1e-15, 1e-18);
  EXPECT_NEAR(risk_ratio(u), 1e-9, 1e-11);
}

TEST(RiskRatio, HandComputedAndDegenerate) {
  fault_universe u({{0.5, 0.0}});
  // (1-(1-0.25))/(1-(1-0.5)) = 0.25/0.5 = 0.5 = p for a single fault.
  EXPECT_NEAR(risk_ratio(u), 0.5, 1e-15);
  fault_universe none({{0.0, 0.0}});
  EXPECT_THROW((void)risk_ratio(none), std::domain_error);
  fault_universe certain({{1.0, 0.0}});
  EXPECT_DOUBLE_EQ(risk_ratio(certain), 1.0);  // diversity buys nothing
}

TEST(SuccessRatio, Footnote5Formula) {
  fault_universe u({{0.1, 0.0}, {0.25, 0.0}});
  EXPECT_NEAR(success_ratio(u), 1.1 * 1.25, 1e-15);
  // P(N2=0)/P(N1=0) must equal Π(1+p_i) (footnote 5 identity).
  EXPECT_NEAR(prob_no_common_fault(u) / prob_no_fault(u), success_ratio(u), 1e-12);
  EXPECT_GE(success_ratio(u), 1.0);
}

TEST(RiskRatioDerivative, MatchesNumericDerivative) {
  fault_universe u({{0.15, 0.0}, {0.4, 0.0}, {0.05, 0.0}});
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double analytic = risk_ratio_derivative(u, i);
    const double numeric = risk_ratio_derivative_numeric(u, i);
    EXPECT_NEAR(analytic, numeric, 1e-5) << "i=" << i;
  }
  EXPECT_THROW((void)risk_ratio_derivative(u, 7), std::out_of_range);
}

TEST(AppendixA, ClosedFormRootMatchesNumericZero) {
  for (const double p2 : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double root = appendix_a_root(p2);
    ASSERT_GT(root, 0.0) << "p2=" << p2;
    ASSERT_LT(root, 1.0) << "p2=" << p2;
    // The analytic derivative must vanish at the closed-form root.
    fault_universe u({{root, 0.0}, {p2, 0.0}});
    EXPECT_NEAR(risk_ratio_derivative(u, 0), 0.0, 1e-10) << "p2=" << p2;
    // And the numeric zero-finder must land on the same point.
    const double numeric = find_derivative_zero(u, 0);
    EXPECT_NEAR(numeric, root, 1e-8) << "p2=" << p2;
  }
  EXPECT_THROW((void)appendix_a_root(0.0), std::invalid_argument);
  EXPECT_THROW((void)appendix_a_root(1.0), std::invalid_argument);
}

TEST(AppendixA, TrendReversalSignPattern) {
  // Below the root the derivative is negative (improving p1 there REDUCES
  // the diversity gain); above it, positive.
  const double p2 = 0.5;
  const double root = appendix_a_root(p2);
  fault_universe below({{root * 0.5, 0.0}, {p2, 0.0}});
  EXPECT_LT(risk_ratio_derivative(below, 0), 0.0);
  fault_universe above({{std::min(0.99, root * 2.0), 0.0}, {p2, 0.0}});
  EXPECT_GT(risk_ratio_derivative(above, 0), 0.0);
  // Consequence, as the paper puts it: "decreasing p1 below p1z will
  // increase the ratio (i.e. reduce the gain from fault tolerance)".
  const double ratio_at_root = risk_ratio_two_faults(root, p2);
  const double ratio_below = risk_ratio_two_faults(root * 0.3, p2);
  EXPECT_GT(ratio_below, ratio_at_root);
}

TEST(AppendixA, RootIsInteriorMinimumOfTheRatio) {
  const double p2 = 0.4;
  const double root = appendix_a_root(p2);
  const double at_root = risk_ratio_two_faults(root, p2);
  for (const double p1 : {0.01, 0.1, 0.3, 0.6, 0.9}) {
    EXPECT_GE(risk_ratio_two_faults(p1, p2), at_root - 1e-12) << "p1=" << p1;
  }
}

TEST(FindDerivativeZero, ReportsNoSignChange) {
  // With a single fault, R = p1 is monotone: derivative never vanishes.
  fault_universe u({{0.5, 0.0}});
  EXPECT_LT(find_derivative_zero(u, 0), 0.0);
}

TEST(AppendixB, ScaledRatioAndValidation) {
  const std::vector<double> b = {0.2, 0.5, 0.1};
  EXPECT_NO_THROW((void)risk_ratio_scaled(b, 1.0));
  EXPECT_THROW((void)risk_ratio_scaled(b, 3.0), std::invalid_argument);  // k*0.5 > 1
  EXPECT_THROW((void)risk_ratio_scaled(b, -1.0), std::invalid_argument);
  // k -> 0 drives the ratio toward 0 (huge gain) for multiple faults.
  EXPECT_LT(risk_ratio_scaled(b, 0.01), risk_ratio_scaled(b, 1.0));
}

// --- property sweeps ---------------------------------------------------------

class RiskRatioPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RiskRatioPropertyTest, RatioIsInUnitIntervalEq10) {
  const auto u = make_random_universe(30, 0.95, 0.5, GetParam());
  const double r = risk_ratio(u);
  EXPECT_GE(r, 0.0);
  EXPECT_LE(r, 1.0 + 1e-12);
}

TEST_P(RiskRatioPropertyTest, AnalyticDerivativeMatchesNumericEverywhere) {
  const auto u = make_random_universe(8, 0.9, 0.5, GetParam() + 100);
  for (std::size_t i = 0; i < u.size(); ++i) {
    if (u[i].p < 1e-4 || u[i].p > 1.0 - 1e-4) continue;
    EXPECT_NEAR(risk_ratio_derivative(u, i), risk_ratio_derivative_numeric(u, i), 1e-4)
        << "i=" << i;
  }
}

TEST_P(RiskRatioPropertyTest, AppendixBMonotoneInK) {
  // Appendix B theorem: dR/dk >= 0 for any b and any feasible k.
  reldiv::stats::rng r(GetParam());
  std::vector<double> b(12);
  for (auto& x : b) x = 0.9 * r.uniform();
  EXPECT_TRUE(appendix_b_monotone_on_grid(b, 0.01, 1.0, 64));
  // Spot-check the derivative itself at random interior points.
  for (int rep = 0; rep < 5; ++rep) {
    const double k = r.uniform(0.05, 0.95);
    EXPECT_GE(risk_ratio_scale_derivative(b, k), -1e-9) << "k=" << k;
  }
}

TEST_P(RiskRatioPropertyTest, MoreChannelsNeverHurt) {
  const auto u = make_random_universe(20, 0.9, 0.5, GetParam() + 300);
  double prev = 0.0;
  for (unsigned m = 1; m <= 4; ++m) {
    const double p_ok = prob_no_common_fault_m(u, m);
    EXPECT_GE(p_ok, prev - 1e-15) << "m=" << m;
    prev = p_ok;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RiskRatioPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
