// Poisson-binomial law: exact pmf checks against binomial special cases,
// brute-force enumeration, and the paper's P(N > 0) product formula.

#include "stats/poisson_binomial.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/distributions.hpp"

namespace {

using reldiv::stats::poisson_binomial;

TEST(PoissonBinomial, ReducesToBinomialForEqualProbs) {
  const double p = 0.23;
  const int n = 9;
  poisson_binomial pb(std::vector<double>(n, p));
  for (int k = 0; k <= n; ++k) {
    EXPECT_NEAR(pb.pmf(static_cast<std::size_t>(k)),
                reldiv::stats::binomial_pmf(k, n, p), 1e-13)
        << "k=" << k;
  }
}

TEST(PoissonBinomial, MatchesBruteForceEnumeration) {
  const std::vector<double> p = {0.1, 0.5, 0.9, 0.25};
  poisson_binomial pb(p);
  std::vector<double> brute(p.size() + 1, 0.0);
  for (unsigned mask = 0; mask < (1u << p.size()); ++mask) {
    double prob = 1.0;
    int bits = 0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (mask & (1u << i)) {
        prob *= p[i];
        ++bits;
      } else {
        prob *= 1.0 - p[i];
      }
    }
    brute[bits] += prob;
  }
  for (std::size_t k = 0; k <= p.size(); ++k) {
    EXPECT_NEAR(pb.pmf(k), brute[k], 1e-14) << "k=" << k;
  }
}

TEST(PoissonBinomial, PmfSumsToOne) {
  poisson_binomial pb({0.01, 0.2, 0.8, 0.5, 0.03, 0.97});
  double total = 0.0;
  for (std::size_t k = 0; k <= 6; ++k) total += pb.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-13);
  EXPECT_DOUBLE_EQ(pb.pmf(7), 0.0);
  EXPECT_NEAR(pb.cdf(6), 1.0, 1e-13);
}

TEST(PoissonBinomial, ProbPositiveMatchesProductFormula) {
  const std::vector<double> p = {0.05, 0.02, 0.11};
  poisson_binomial pb(p);
  const double expected = 1.0 - (1.0 - 0.05) * (1.0 - 0.02) * (1.0 - 0.11);
  EXPECT_NEAR(pb.prob_positive(), expected, 1e-14);
  EXPECT_NEAR(pb.prob_positive(), 1.0 - pb.pmf(0), 1e-13);
}

TEST(PoissonBinomial, MeanAndVariance) {
  const std::vector<double> p = {0.1, 0.4, 0.7};
  poisson_binomial pb(p);
  EXPECT_NEAR(pb.mean(), 1.2, 1e-14);
  EXPECT_NEAR(pb.variance(), 0.1 * 0.9 + 0.4 * 0.6 + 0.7 * 0.3, 1e-14);
  // Cross-check variance against the pmf.
  double var = 0.0;
  for (std::size_t k = 0; k <= 3; ++k) {
    const double d = static_cast<double>(k) - 1.2;
    var += d * d * pb.pmf(k);
  }
  EXPECT_NEAR(pb.variance(), var, 1e-13);
}

TEST(PoissonBinomial, DegenerateInputs) {
  poisson_binomial empty(std::vector<double>{});
  EXPECT_DOUBLE_EQ(empty.pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(empty.prob_positive(), 0.0);

  poisson_binomial certain({1.0, 1.0});
  EXPECT_DOUBLE_EQ(certain.pmf(2), 1.0);
  EXPECT_DOUBLE_EQ(certain.prob_positive(), 1.0);

  EXPECT_THROW(poisson_binomial({0.5, 1.2}), std::invalid_argument);
  EXPECT_THROW(poisson_binomial({-0.1}), std::invalid_argument);
}

TEST(PoissonBinomial, TinyProbabilitiesAreStable) {
  // P(N>0) for 100 faults of 1e-10 each must be ~1e-8, not 0.
  poisson_binomial pb(std::vector<double>(100, 1e-10));
  EXPECT_NEAR(pb.prob_positive(), 1e-8, 1e-12);
}

}  // namespace
