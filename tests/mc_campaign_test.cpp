// The unified deterministic campaign layer: run_jobs fan-out, the
// target-roster demand campaign, the two-channel pair campaign, the
// scenario grid, and the downstream migrations (kl empirical scoring,
// forced/functional scoring, bayes importance posterior, protection profile
// campaigns, grouped-universe sampling).  Pins the two contracts the README
// documents: thread count is never a results knob, and a campaign
// interrupted at a checkpoint boundary and resumed equals the uninterrupted
// run exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/generators.hpp"
#include "core/moments.hpp"
#include "demand/profile.hpp"
#include "demand/region.hpp"
#include "forced/forced_diversity.hpp"
#include "kl/experiment.hpp"
#include "bayes/inference.hpp"
#include "mc/campaign.hpp"
#include "mc/sampler.hpp"
#include "mc/scenario.hpp"
#include "protection/system.hpp"
#include "stats/random.hpp"

namespace {

using namespace reldiv;
using namespace reldiv::mc;

const std::vector<unsigned> kThreadSweep = {1, 2, 7, 0};

// --------------------------------------------------------------------------
// Budget-scaled default shard layout
// --------------------------------------------------------------------------

TEST(DefaultShards, ScaleWithTheSampleBudget) {
  // Pure function of the budget: 1 shard for tiny runs, samples/64 in the
  // mid range, capped at the historical 256 ceiling from 16384 samples up.
  EXPECT_EQ(default_logical_shards(1), 1u);
  EXPECT_EQ(default_logical_shards(64), 1u);
  EXPECT_EQ(default_logical_shards(128), 2u);
  EXPECT_EQ(default_logical_shards(4096), 64u);
  EXPECT_EQ(default_logical_shards(16384), kDefaultLogicalShards);
  EXPECT_EQ(default_logical_shards(1'000'000'000), kDefaultLogicalShards);
  // make_shard_plan resolves 0 to the scaled default, and the chosen layout
  // is recorded in sharded results (part of the result identity).
  EXPECT_EQ(make_shard_plan(4096).shard_count, 64u);
  const auto u = core::make_random_universe(16, 0.4, 0.5, 3);
  experiment_config cfg;
  cfg.samples = 4096;
  EXPECT_EQ(run_experiment(u, cfg).shards, 64u);
  cfg.shards = 16;
  EXPECT_EQ(run_experiment(u, cfg).shards, 16u);
}

// --------------------------------------------------------------------------
// run_jobs primitive
// --------------------------------------------------------------------------

TEST(RunJobs, MergesInJobOrderAcrossThreadCounts) {
  for (const unsigned threads : kThreadSweep) {
    std::vector<std::size_t> order;
    run_jobs(
        3, 20, threads, [](std::size_t job) { return job * job; },
        [&order](std::size_t job, std::size_t&& result) {
          EXPECT_EQ(result, job * job);
          order.push_back(job);
        });
    ASSERT_EQ(order.size(), 17u);
    for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], 3 + i);
  }
}

TEST(RunJobs, FirstExceptionIsRethrown) {
  EXPECT_THROW(run_jobs(
                   0, 16, 4,
                   [](std::size_t job) -> int {
                     if (job >= 10) throw std::runtime_error("boom");
                     return 0;
                   },
                   [](std::size_t, int&&) {}),
               std::runtime_error);
  EXPECT_THROW(run_jobs(5, 2, 1, [](std::size_t) { return 0; },
                        [](std::size_t, int&&) {}),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// Demand campaign: roster of targets, one stream per target
// --------------------------------------------------------------------------

TEST(DemandCampaign, MatchesThePerTargetSerialReference) {
  // The campaign's contract: target t's failure count is exactly one
  // binomial draw from the target's private stream
  // rng(target_stream_seed(seed, t)) — what a serial loop over per-target
  // streams would produce.  Pinned before the legacy serial scoring loops
  // were deleted.
  const std::vector<double> roster = {0.0, 1e-4, 0.01, 0.3, 0.999, 1.0};
  const std::uint64_t demands = 50'000;
  campaign_config cfg;
  cfg.seed = 99;
  const auto tally = run_demand_campaign(roster, demands, cfg);
  ASSERT_EQ(tally.failures.size(), roster.size());
  EXPECT_EQ(tally.demands, demands);
  for (std::size_t t = 0; t < roster.size(); ++t) {
    stats::rng reference(target_stream_seed(99, t));
    EXPECT_EQ(tally.failures[t], stats::binomial_deviate(reference, demands, roster[t]))
        << "target " << t;
  }
  EXPECT_EQ(tally.failures[0], 0u);
  EXPECT_EQ(tally.failures[5], demands);
  // Distinct targets get distinct stream seeds (splitmix64 hash).
  EXPECT_NE(target_stream_seed(99, 0), target_stream_seed(99, 1));
  EXPECT_NE(target_stream_seed(99, 0), target_stream_seed(100, 0));
}

TEST(DemandCampaign, BitIdenticalAcrossThreadCounts) {
  std::vector<double> roster(378);
  stats::rng r(5);
  for (auto& pfd : roster) pfd = r.uniform() * 0.01;
  campaign_config cfg;
  cfg.seed = 7;
  cfg.threads = 1;
  const auto reference = run_demand_campaign(roster, 100'000, cfg);
  for (const unsigned threads : kThreadSweep) {
    cfg.threads = threads;
    const auto tally = run_demand_campaign(roster, 100'000, cfg);
    EXPECT_EQ(tally.failures, reference.failures);
  }
}

TEST(DemandCampaign, WindowedRunsResumeExactly) {
  std::vector<double> roster(101);
  stats::rng r(6);
  for (auto& pfd : roster) pfd = r.uniform() * 0.05;
  campaign_config cfg;
  cfg.seed = 11;
  const auto uninterrupted = run_demand_campaign(roster, 20'000, cfg);

  // Process the roster in three windows with a merge of serialized partial
  // tallies at the end — the stitched result must be identical.
  auto window = [&](std::size_t lo, std::size_t hi) {
    demand_tally t;
    t.demands = 20'000;
    t.failures.assign(roster.size(), 0);
    run_demand_campaign_window(roster, 20'000, cfg, lo, hi, t);
    return t;
  };
  demand_tally stitched = window(0, 40);
  stitched.merge(window(40, 41));
  stitched.merge(window(41, roster.size()));
  EXPECT_EQ(stitched.failures, uninterrupted.failures);

  demand_tally bad;
  bad.demands = 1;
  bad.failures.assign(2, 0);
  EXPECT_THROW(stitched.merge(bad), std::invalid_argument);
  EXPECT_THROW((void)run_demand_campaign({}, 10, cfg), std::invalid_argument);
  EXPECT_THROW((void)run_demand_campaign(roster, 0, cfg), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Pair campaign + forced/functional migration
// --------------------------------------------------------------------------

TEST(PairCampaign, BitIdenticalAcrossThreadCounts) {
  const auto a = core::make_random_universe(60, 0.4, 0.6, 21);
  const auto b = core::fault_universe::from_arrays(
      core::make_random_universe(60, 0.2, 0.6, 21).p_values(), a.q_values());
  campaign_config cfg;
  cfg.seed = 3;
  cfg.threads = 1;
  const auto reference = run_pair_campaign(a, b, a.q_array(), 20'000, cfg);
  for (const unsigned threads : kThreadSweep) {
    cfg.threads = threads;
    const auto res = run_pair_campaign(a, b, a.q_array(), 20'000, cfg);
    EXPECT_EQ(res.theta1.mean(), reference.theta1.mean());
    EXPECT_EQ(res.theta2.mean(), reference.theta2.mean());
    EXPECT_EQ(res.theta2.stddev(), reference.theta2.stddev());
    EXPECT_EQ(res.n1_positive, reference.n1_positive);
    EXPECT_EQ(res.n2_positive, reference.n2_positive);
    EXPECT_EQ(res.shards, reference.shards);
  }
}

TEST(ForcedScoring, TracksClosedFormsAndThinsByOverlap) {
  // Two channels over shared regions with different p vectors; overlap
  // omega thins the coincidence masses.  The campaign estimates must sit on
  // the closed forms within Monte-Carlo noise.
  const auto qa = core::make_random_universe(20, 0.5, 0.5, 31);
  const auto a = qa;
  const auto b = core::fault_universe::from_arrays(
      core::make_random_universe(20, 0.25, 0.5, 32).p_values(), qa.q_values());
  forced::forced_pair pair(a, b);
  const std::uint64_t samples = 300'000;
  const auto forced_res = forced::score_empirically(pair, samples, {.seed = 41});
  const auto forced_exact = pair.pair_moments();
  EXPECT_NEAR(forced_res.theta2.mean(), forced_exact.mean,
              5.0 * std::sqrt(forced_exact.variance / static_cast<double>(samples)) +
                  1e-5);
  EXPECT_NEAR(1.0 - forced_res.prob_n2_positive().value, pair.prob_no_common_fault(),
              0.01);

  std::vector<double> omega(a.size(), 0.5);
  omega[0] = 0.0;
  forced::functional_pair fpair(pair, omega);
  const auto func_res = forced::score_empirically(fpair, samples, {.seed = 42});
  const auto func_exact = fpair.pair_moments();
  EXPECT_NEAR(func_res.theta2.mean(), func_exact.mean,
              5.0 * std::sqrt(func_exact.variance / static_cast<double>(samples)) + 1e-5);
  EXPECT_NEAR(1.0 - func_res.prob_n2_positive().value,
              fpair.prob_no_common_failure_point(), 0.01);
  // Thinning can only reduce the pair PFD.
  EXPECT_LE(func_res.theta2.mean(), forced_res.theta2.mean());
}

TEST(PairCampaign, ZeroOverlapFaultsNeverCountAsCommonFailurePoints) {
  // One certain fault shared by both channels, but with coincidence weight
  // 0: pairs always share it, yet N2>0 must never fire and theta2 stays 0.
  const core::fault_universe u({{1.0, 0.1}});
  const std::vector<double> no_overlap = {0.0};
  const auto res = run_pair_campaign(u, u, no_overlap, 1000, {.seed = 1});
  EXPECT_EQ(res.n2_positive, 0u);
  EXPECT_EQ(res.theta2.mean(), 0.0);
  EXPECT_EQ(res.n1_positive, 1000u);
}

// --------------------------------------------------------------------------
// KL empirical scoring on the campaign
// --------------------------------------------------------------------------

TEST(KnightLevesonCampaign, EmpiricalScoresBitIdenticalAcrossThreadCounts) {
  const auto u = core::make_knight_leveson_like_universe(1);
  kl::kl_config cfg;
  cfg.demands = 100'000;
  cfg.threads = 1;
  const auto reference = kl::run_kl_experiment(u, cfg);
  ASSERT_EQ(reference.pair_pfd_hat.size(), 351u);
  for (const unsigned threads : kThreadSweep) {
    cfg.threads = threads;
    const auto res = kl::run_kl_experiment(u, cfg);
    EXPECT_EQ(res.version_pfd, reference.version_pfd);
    EXPECT_EQ(res.pair_pfd, reference.pair_pfd);
    EXPECT_EQ(res.version_pfd_hat, reference.version_pfd_hat);
    EXPECT_EQ(res.pair_pfd_hat, reference.pair_pfd_hat);
  }
}

TEST(KnightLevesonCampaign, ScoresMatchThePerTargetCampaignContract) {
  // The kl module's empirical scores are exactly a demand campaign over the
  // (versions, then pairs) roster with the splitmix-derived master seed —
  // the migration must not have changed the scoring semantics.
  const auto u = core::make_knight_leveson_like_universe(2);
  kl::kl_config cfg;
  cfg.demands = 50'000;
  const auto res = kl::run_kl_experiment(u, cfg);
  std::vector<double> roster = res.version_pfd;
  roster.insert(roster.end(), res.pair_pfd.begin(), res.pair_pfd.end());
  campaign_config ccfg;
  std::uint64_t split = cfg.seed;
  ccfg.seed = stats::splitmix64_next(split);
  const auto rates = run_demand_campaign(roster, cfg.demands, ccfg).rates();
  for (std::size_t v = 0; v < res.version_pfd_hat.size(); ++v) {
    EXPECT_EQ(res.version_pfd_hat[v], rates[v]);
  }
  for (std::size_t p = 0; p < res.pair_pfd_hat.size(); ++p) {
    EXPECT_EQ(res.pair_pfd_hat[p], rates[res.version_pfd_hat.size() + p]);
  }
}

// --------------------------------------------------------------------------
// Bayes importance posterior on the campaign
// --------------------------------------------------------------------------

TEST(ImportancePosterior, BitIdenticalAcrossThreadCounts) {
  const auto u = core::make_random_universe(40, 0.3, 0.5, 51);
  const bayes::test_record evidence{5000, 1};
  const auto reference = bayes::importance_posterior(u, 2, evidence, 50'000, 9, 1);
  EXPECT_GT(reference.effective_sample_size, 0.0);
  EXPECT_EQ(reference.shards, default_logical_shards(50'000));
  for (const unsigned threads : kThreadSweep) {
    const auto res = bayes::importance_posterior(u, 2, evidence, 50'000, 9, threads);
    EXPECT_EQ(res.mean_pfd, reference.mean_pfd);
    EXPECT_EQ(res.prob_zero, reference.prob_zero);
    EXPECT_EQ(res.quantile99, reference.quantile99);
    EXPECT_EQ(res.effective_sample_size, reference.effective_sample_size);
  }
}

// --------------------------------------------------------------------------
// Protection profile campaign on the campaign layer
// --------------------------------------------------------------------------

TEST(ProtectionCampaign, ShardedProfileCampaignIsThreadInvariantAndAccurate) {
  using reldiv::demand::box;
  using reldiv::demand::make_box_region;
  protection::software_channel a({make_box_region(box({0.0, 0.0}, {0.1, 1.0}))});
  protection::software_channel b({make_box_region(box({0.05, 0.0}, {0.15, 1.0}))});
  protection::one_out_of_two sys(a, b);
  const demand::uniform_profile prof(box::unit(2));
  campaign_config cfg;
  cfg.seed = 4;
  cfg.threads = 1;
  const auto reference = protection::run_profile_campaign(prof, sys, 200'000, cfg);
  EXPECT_NEAR(reference.system_pfd(), 0.05, 0.003);
  EXPECT_NEAR(reference.channel_a_pfd(), 0.10, 0.004);
  for (const unsigned threads : kThreadSweep) {
    cfg.threads = threads;
    const auto res = protection::run_profile_campaign(prof, sys, 200'000, cfg);
    EXPECT_EQ(res.demands, reference.demands);
    EXPECT_EQ(res.channel_a_failures, reference.channel_a_failures);
    EXPECT_EQ(res.channel_b_failures, reference.channel_b_failures);
    EXPECT_EQ(res.system_failures, reference.system_failures);
  }
}

// --------------------------------------------------------------------------
// Grouped-universe word-parallel sampling
// --------------------------------------------------------------------------

TEST(GroupedSampling, BlockPlanDetectsUniformWords) {
  const std::vector<core::fault_block> blocks = {
      {64, 0.5, 0.001}, {40, 0.25, 0.001}, {64, 0.3, 0.001}};
  const auto u = core::make_grouped_universe(blocks);
  ASSERT_EQ(u.size(), 168u);
  EXPECT_FALSE(u.has_uniform_p());
  EXPECT_TRUE(u.has_grouped_p());
  const auto plan = u.sample_blocks();
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_TRUE(plan[0].uniform);
  EXPECT_TRUE(plan[0].sliceable);  // p = 0.5: a single rng word per 64 bits
  // Word 1 spans the 0.25 run's tail and part of the 0.3 run: not uniform.
  EXPECT_FALSE(plan[1].uniform);
  EXPECT_FALSE(plan[1].sliceable);
  // Word 2 (the tail word) is all p = 0.3: uniform, but 0.3's threshold has
  // no cheap trailing-zero structure, so bit-slicing would cost more rng
  // words than the paired kernel — not sliceable.
  EXPECT_TRUE(plan[2].uniform);
  EXPECT_FALSE(plan[2].sliceable);

  // A fully-uniform universe keeps the dedicated single-threshold path.
  EXPECT_FALSE(core::make_homogeneous_universe(128, 0.5, 0.001).has_grouped_p());
  // p = 0.3 has an expensive threshold: uniform but not sliceable.
  const auto u3 = core::make_grouped_universe(
      std::vector<core::fault_block>{{64, 0.3, 0.001}, {64, 0.5, 0.001}});
  EXPECT_TRUE(u3.sample_blocks()[0].uniform);
  EXPECT_FALSE(u3.sample_blocks()[0].sliceable);
  EXPECT_TRUE(u3.sample_blocks()[1].sliceable);
  EXPECT_TRUE(u3.has_grouped_p());
}

TEST(GroupedSampling, MarginalsMatchTheUniverse) {
  const std::vector<core::fault_block> blocks = {
      {64, 0.5, 0.001}, {64, 0.125, 0.001}, {32, 0.75, 0.001}};
  const auto u = core::make_grouped_universe(blocks);
  ASSERT_TRUE(u.has_grouped_p());
  stats::rng r(77);
  core::fault_mask a;
  core::fault_mask b;
  std::vector<std::uint64_t> hits(u.size(), 0);
  const std::uint64_t pairs = 30'000;
  for (std::uint64_t s = 0; s < pairs; ++s) {
    sample_version_pair_grouped(u, r, a, b);
    for (std::size_t i = 0; i < u.size(); ++i) {
      hits[i] += (a.test(i) ? 1 : 0) + (b.test(i) ? 1 : 0);
    }
  }
  const auto n = static_cast<double>(2 * pairs);
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double p = u[i].p;
    const double tol = 5.0 * std::sqrt(p * (1.0 - p) / n);
    EXPECT_NEAR(static_cast<double>(hits[i]) / n, p, tol) << "fault " << i;
  }
}

TEST(GroupedSampling, FastEngineAgreesWithExactEngineStatistically) {
  const std::vector<core::fault_block> blocks = {
      {64, 0.5, 0.002}, {64, 0.25, 0.002}, {40, 0.3, 0.002}};
  const auto u = core::make_grouped_universe(blocks);
  experiment_config cfg;
  cfg.samples = 50'000;
  cfg.seed = 12;
  cfg.engine = sampling_engine::fast;  // takes the grouped kernel
  const auto fast = run_experiment(u, cfg);
  cfg.engine = sampling_engine::exact;
  const auto exact = run_experiment(u, cfg);
  const double sigma =
      exact.theta1.stddev() / std::sqrt(static_cast<double>(cfg.samples));
  EXPECT_NEAR(fast.theta1.mean(), exact.theta1.mean(), 5.0 * sigma + 1e-6);
  EXPECT_NEAR(fast.mean_theta2().value, exact.mean_theta2().value,
              5.0 * exact.theta2.stddev() / std::sqrt(static_cast<double>(cfg.samples)) +
                  1e-6);
  EXPECT_NEAR(fast.prob_n1_positive().value, exact.prob_n1_positive().value, 0.02);

  // And the grouped fast path is thread-invariant like every engine.
  cfg.engine = sampling_engine::fast;
  for (const unsigned threads : kThreadSweep) {
    cfg.threads = threads;
    const auto res = run_experiment(u, cfg);
    EXPECT_EQ(res.theta1.mean(), fast.theta1.mean());
    EXPECT_EQ(res.n2_positive, fast.n2_positive);
  }
}

// --------------------------------------------------------------------------
// Scenario grid
// --------------------------------------------------------------------------

scenario_axes small_axes() {
  scenario_axes axes;
  axes.universes.emplace_back("rand20", core::make_random_universe(20, 0.3, 0.5, 61));
  axes.universes.emplace_back("homog", core::make_homogeneous_universe(32, 0.2, 0.01));
  axes.correlations = {0.0, 0.3};
  axes.overlaps = {1.0, 0.5};
  axes.aliasing = {1, 2};
  axes.budgets = {3000};
  return axes;
}

TEST(ScenarioGrid, EnumeratesRowMajorAndValidates) {
  const auto axes = small_axes();
  const auto cells = enumerate_cells(axes);
  ASSERT_EQ(cells.size(), 16u);
  EXPECT_EQ(cells[0].universe, "rand20");
  EXPECT_EQ(cells[0].rho, 0.0);
  EXPECT_EQ(cells[1].aliasing, 2u);   // innermost-but-one axis moves first
  EXPECT_EQ(cells[8].universe, "homog");

  scenario_axes bad = axes;
  bad.budgets = {};
  EXPECT_THROW((void)enumerate_cells(bad), std::invalid_argument);
  bad = axes;
  bad.overlaps = {1.5};
  EXPECT_THROW((void)enumerate_cells(bad), std::invalid_argument);
  bad = axes;
  bad.aliasing = {0};
  EXPECT_THROW((void)enumerate_cells(bad), std::invalid_argument);
}

TEST(ScenarioGrid, BitIdenticalAcrossThreadCounts) {
  const auto axes = small_axes();
  scenario_config cfg;
  cfg.seed = 71;
  cfg.threads = 1;
  const auto reference = run_scenario_grid(axes, cfg);
  ASSERT_EQ(reference.cells.size(), 16u);
  for (const unsigned threads : kThreadSweep) {
    cfg.threads = threads;
    const auto grid = run_scenario_grid(axes, cfg);
    EXPECT_EQ(grid.to_csv(), reference.to_csv());
    for (std::size_t c = 0; c < grid.cells.size(); ++c) {
      EXPECT_EQ(grid.cells[c].mean_theta2, reference.cells[c].mean_theta2) << c;
      EXPECT_EQ(grid.cells[c].state.n2_positive, reference.cells[c].state.n2_positive)
          << c;
    }
  }
}

TEST(ScenarioGrid, InterruptedAtACellBoundaryResumesExactly) {
  const auto axes = small_axes();
  scenario_config cfg;
  cfg.seed = 72;
  const auto uninterrupted = run_scenario_grid(axes, cfg);

  grid_result resumed;
  run_scenario_cells(axes, cfg, 0, 5, resumed);
  ASSERT_EQ(resumed.cells.size(), 5u);
  // "Serialize" the prefix: rebuild the partial result from the plain
  // accumulator_state checkpoints, then resume the remaining cells.
  grid_result restored;
  restored.cells = resumed.cells;
  for (auto& cell : restored.cells) {
    const auto acc = experiment_accumulator::from_state(cell.state);
    cell.state = acc.state();  // round-trip through the wire format
  }
  run_scenario_cells(axes, cfg, 5, enumerate_cells(axes).size(), restored);
  EXPECT_EQ(restored.to_csv(), uninterrupted.to_csv());
  EXPECT_EQ(restored.to_json(), uninterrupted.to_json());
  for (std::size_t c = 0; c < restored.cells.size(); ++c) {
    EXPECT_EQ(restored.cells[c].state.theta2.count,
              uninterrupted.cells[c].state.theta2.count);
    EXPECT_EQ(restored.cells[c].state.n1_positive,
              uninterrupted.cells[c].state.n1_positive);
  }

  grid_result wrong_prefix;
  EXPECT_THROW(run_scenario_cells(axes, cfg, 3, 5, wrong_prefix), std::invalid_argument);
}

TEST(ScenarioGrid, CellSemanticsMatchTheModel) {
  // omega = 0 cells never coincide; rho shifts P(N2>0) but not the means
  // (marginal-preserving mixture); aliasing > 1 records a lower naive pmax.
  scenario_axes axes;
  axes.universes.emplace_back("rand20", core::make_random_universe(20, 0.3, 0.5, 61));
  axes.correlations = {0.0};
  axes.overlaps = {1.0, 0.0};
  axes.aliasing = {1, 4};
  axes.budgets = {20'000};
  const auto grid = run_scenario_grid(axes, {.seed = 73});
  ASSERT_EQ(grid.cells.size(), 4u);
  const auto& full = grid.cells[0];     // omega 1, aliasing 1
  const auto& aliased = grid.cells[1];  // omega 1, aliasing 4
  const auto& none = grid.cells[2];     // omega 0, aliasing 1
  EXPECT_GT(full.mean_theta2, 0.0);
  EXPECT_EQ(none.mean_theta2, 0.0);
  EXPECT_EQ(none.prob_n2_positive, 0.0);
  EXPECT_GT(none.mean_theta1, 0.0);
  EXPECT_LT(aliased.p_max_naive, aliased.p_max_true);
  EXPECT_EQ(full.p_max_naive, full.p_max_true);
  // The aliased cell runs the region-level effective universe, so its
  // moments agree with the un-aliased cell within Monte-Carlo noise.
  EXPECT_NEAR(aliased.mean_theta1, full.mean_theta1, 0.05 * full.mean_theta1 + 1e-3);

  const auto csv = grid.to_csv();
  EXPECT_NE(csv.find("universe,rho,omega,aliasing"), std::string::npos);
  EXPECT_NE(csv.find("rand20"), std::string::npos);
  const auto json = grid.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"cells\":["), std::string::npos);
}

}  // namespace
