// Rasterized failure regions: set algebra, exact measures, rasterization
// fidelity against analytic shapes.

#include "demand/raster.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace reldiv::demand;

raster_region quarter(std::size_t grid = 64) {
  // Lower-left quarter of the unit square.
  return raster_region::rasterize(box_region(box({0.0, 0.0}, {0.5, 0.5})), box::unit(2),
                                  grid, grid);
}

TEST(Raster, ConstructionAndCells) {
  raster_region r(box::unit(2), 8, 4);
  EXPECT_EQ(r.cols(), 8u);
  EXPECT_EQ(r.rows(), 4u);
  EXPECT_EQ(r.set_cells(), 0u);
  r.set_cell(3, 2, true);
  EXPECT_TRUE(r.cell(3, 2));
  r.set_cell(3, 2, false);
  EXPECT_FALSE(r.cell(3, 2));
  EXPECT_THROW((void)r.cell(8, 0), std::out_of_range);
  EXPECT_THROW(raster_region(box::unit(2), 0, 4), std::invalid_argument);
  EXPECT_THROW(raster_region(box::unit(3), 4, 4), std::invalid_argument);
}

TEST(Raster, RasterizationMeasureMatchesAnalytic) {
  const auto r = quarter(128);
  EXPECT_NEAR(r.uniform_measure(), 0.25, 1e-6);
  // An ellipse's area converges at raster resolution.
  const auto e = raster_region::rasterize(ellipsoid_region({0.5, 0.5}, {0.3, 0.2}),
                                          box::unit(2), 256, 256);
  EXPECT_NEAR(e.uniform_measure(), 3.14159265358979 * 0.3 * 0.2, 0.002);
}

TEST(Raster, ContainsAgreesWithSource) {
  const auto r = quarter(64);
  EXPECT_TRUE(r.contains({0.1, 0.1}));
  EXPECT_FALSE(r.contains({0.9, 0.9}));
  EXPECT_FALSE(r.contains({2.0, 0.1}));  // outside the domain
  EXPECT_THROW((void)r.contains({0.5}), std::invalid_argument);
}

TEST(Raster, SetAlgebra) {
  const auto a = quarter(64);
  const auto b = raster_region::rasterize(box_region(box({0.25, 0.25}, {0.75, 0.75})),
                                          box::unit(2), 64, 64);
  const auto u = a.unite(b);
  const auto i = a.intersect(b);
  const auto d = a.subtract(b);
  EXPECT_NEAR(u.uniform_measure(), 0.25 + 0.25 - 0.0625, 1e-9);
  EXPECT_NEAR(i.uniform_measure(), 0.0625, 1e-9);
  EXPECT_NEAR(d.uniform_measure(), 0.25 - 0.0625, 1e-9);
  // Inclusion-exclusion at raster exactness: |A| + |B| = |A∪B| + |A∩B|.
  EXPECT_NEAR(a.uniform_measure() + b.uniform_measure(),
              u.uniform_measure() + i.uniform_measure(), 1e-12);
  EXPECT_FALSE(a.disjoint_with(b));
  const auto far = raster_region::rasterize(box_region(box({0.8, 0.8}, {0.95, 0.95})),
                                            box::unit(2), 64, 64);
  EXPECT_TRUE(a.disjoint_with(far));
}

TEST(Raster, Jaccard) {
  const auto a = quarter(64);
  EXPECT_NEAR(a.jaccard(a), 1.0, 1e-12);
  const auto b = raster_region::rasterize(box_region(box({0.25, 0.25}, {0.75, 0.75})),
                                          box::unit(2), 64, 64);
  EXPECT_NEAR(a.jaccard(b), 0.0625 / (0.5 - 0.0625), 1e-9);
  raster_region empty(box::unit(2), 64, 64);
  EXPECT_DOUBLE_EQ(empty.jaccard(empty), 0.0);
}

TEST(Raster, IncompatibleGridsThrow) {
  const auto a = quarter(64);
  const auto b = quarter(32);
  EXPECT_THROW((void)a.unite(b), std::invalid_argument);
  raster_region other_domain(box({0.0, 0.0}, {2.0, 2.0}), 64, 64);
  EXPECT_THROW((void)a.intersect(other_domain), std::invalid_argument);
}

TEST(RasterOverlap, ExactPessimismWithoutMonteCarlo) {
  // The §6.2 comparison, now exact at raster resolution.
  std::vector<raster_region> regions;
  regions.push_back(raster_region::rasterize(box_region(box({0.1, 0.1}, {0.6, 0.6})),
                                             box::unit(2), 200, 200));
  regions.push_back(raster_region::rasterize(box_region(box({0.3, 0.3}, {0.8, 0.8})),
                                             box::unit(2), 200, 200));
  const auto cmp = raster_overlap(regions);
  EXPECT_NEAR(cmp.sum_of_measures, 0.5, 1e-9);
  EXPECT_NEAR(cmp.union_measure, 0.5 - 0.09, 1e-9);
  EXPECT_NEAR(cmp.pessimism(), 0.5 / 0.41, 1e-6);
  EXPECT_THROW((void)raster_overlap({}), std::invalid_argument);
}

TEST(Raster, ComposesWithAnalyticRegionsAsARegion) {
  // A raster is itself a region: it can participate in unions with analytic
  // shapes through the region interface.
  auto r = std::make_shared<raster_region>(quarter(64));
  const auto u = make_union_region({r, make_box_region(box({0.8, 0.8}, {0.9, 0.9}))});
  EXPECT_TRUE(u->contains({0.1, 0.1}));
  EXPECT_TRUE(u->contains({0.85, 0.85}));
  EXPECT_FALSE(u->contains({0.7, 0.7}));
}

}  // namespace
