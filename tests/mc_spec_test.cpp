// mc::sweep_spec — the declarative sweep-spec layer: parse/write round-trips
// through the manifest fingerprint, exact file:line: field diagnostics, the
// new correlation/adjudication/demand axes pinned bit-exactly against direct
// library calls, and the deterministic adaptive-refinement rule.
#include "mc/spec.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/fault_mask.hpp"
#include "core/generators.hpp"
#include "demand/raster.hpp"
#include "demand/region.hpp"
#include "mc/correlated.hpp"
#include "mc/run_dir.hpp"
#include "mc/scenario.hpp"
#include "mc/shard_runner.hpp"
#include "stats/random.hpp"

namespace mc = reldiv::mc;
namespace core = reldiv::core;
namespace demand = reldiv::demand;
namespace stats = reldiv::stats;

namespace {

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

constexpr const char* kScenarioSpec = R"(# two-universe scenario
[sweep]
kind = scenario
seed = 77
stress = 1.6

[universe safety_grade]
generator = safety_grade
faults = 40
p_lo = 0
p_hi = 0.05
q_total = 0.6
gen_seed = 11

[universe many_small]
generator = many_small
faults = 64
p_lo = 0.05
p_hi = 0.3
q_total = 0.8
jitter = 0.2
gen_seed = 12

[axes]
rho = 0 0.3
omega = 1 0.5
aliasing = 1 4
budget = 1000
)";

mc::sweep_spec parse_ok(const std::string& text, const mc::spec_overrides& ov = {}) {
  mc::spec_parse_result r = mc::parse_sweep_spec(text, "test.spec", ov);
  for (const mc::spec_error& e : r.errors) ADD_FAILURE() << e.render();
  EXPECT_TRUE(r.spec.has_value());
  return std::move(*r.spec);
}

std::vector<mc::spec_error> parse_errors(const std::string& text) {
  mc::spec_parse_result r = mc::parse_sweep_spec(text, "test.spec");
  EXPECT_FALSE(r.spec.has_value());
  EXPECT_FALSE(r.errors.empty());
  return std::move(r.errors);
}

bool has_error(const std::vector<mc::spec_error>& errors, std::size_t line,
               const std::string& field) {
  for (const mc::spec_error& e : errors) {
    if (e.line == line && e.field == field) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Parse -> manifest equivalence with direct library calls
// ---------------------------------------------------------------------------

TEST(SweepSpec, ScenarioSpecMatchesDirectAxesConstruction) {
  const mc::sweep_spec spec = parse_ok(kScenarioSpec);
  ASSERT_EQ(spec.kind, mc::job_kind::scenario_grid);
  const auto& m = std::get<mc::sweep_manifest>(spec.manifest);

  mc::scenario_axes axes;
  axes.universes.emplace_back("safety_grade",
                              core::make_safety_grade_universe(40, 0.0, 0.05, 0.6, 11));
  axes.universes.emplace_back(
      "many_small", core::make_many_small_faults_universe(64, 0.05, 0.3, 0.8, 0.2, 12));
  axes.correlations = {0.0, 0.3};
  axes.overlaps = {1.0, 0.5};
  axes.aliasing = {1, 4};
  axes.budgets = {1000};
  axes.stress = 1.6;
  mc::sweep_manifest direct;
  direct.axes = axes;
  direct.seed = 77;
  direct.shards = 0;
  direct.cell_count = mc::enumerate_cells(axes).size();

  EXPECT_EQ(m.cell_count, 16u);
  EXPECT_EQ(mc::manifest_fingerprint(m), mc::manifest_fingerprint(direct));
}

TEST(SweepSpec, OverridesReplaceSpecValues) {
  mc::spec_overrides ov;
  ov.seed = 123;
  ov.budget = 5000;
  ov.shards = 7;
  const mc::sweep_spec spec = parse_ok(kScenarioSpec, ov);
  const auto& m = std::get<mc::sweep_manifest>(spec.manifest);
  EXPECT_EQ(m.seed, 123u);
  EXPECT_EQ(m.shards, 7u);
  ASSERT_EQ(m.axes.budgets.size(), 1u);
  EXPECT_EQ(m.axes.budgets[0], 5000u);
}

TEST(SweepSpec, DemandRosterMatchesLegacyDerivation) {
  const std::string text =
      "[sweep]\nkind = demand\nseed = 77\n"
      "[demand]\ndemands = 1000\nwindow = 8\ntargets = 50\n"
      "pfd_lo = 1e-06\npfd_ratio = 1000\n";
  const mc::sweep_spec spec = parse_ok(text);
  const auto& m = std::get<mc::demand_manifest>(spec.manifest);
  ASSERT_EQ(m.target_pfd.size(), 50u);
  // The historical CLI roster, reproduced here verbatim.
  for (std::size_t t = 0; t < 50; ++t) {
    std::uint64_t state = 77ULL ^ (0x9e3779b97f4a7c15ULL * (t + 0x51ed2701ULL));
    const double u = static_cast<double>(stats::splitmix64_next(state) >> 11) * 0x1.0p-53;
    EXPECT_TRUE(bits_equal(m.target_pfd[t], 1e-6 * std::pow(1000.0, u))) << t;
  }
}

TEST(SweepSpec, ExperimentSpecResolvesManifest) {
  const std::string text =
      "[sweep]\nkind = experiment\nseed = 5\nshards = 32\n"
      "[universe u]\ngenerator = homogeneous\nfaults = 8\np = 0.01\nq = 0.02\n"
      "[experiment]\nuniverse = u\nsamples = 9000\nengine = exact\nwindow = 8\n";
  const mc::sweep_spec spec = parse_ok(text);
  const auto& m = std::get<mc::experiment_manifest>(spec.manifest);
  EXPECT_EQ(m.samples, 9000u);
  EXPECT_EQ(m.seed, 5u);
  EXPECT_EQ(m.shards, 32u);
  EXPECT_EQ(m.engine, mc::sampling_engine::exact);
  EXPECT_EQ(m.window, 8u);
  mc::experiment_config cfg;
  cfg.samples = 9000;
  cfg.seed = 5;
  cfg.shards = 32;
  cfg.engine = mc::sampling_engine::exact;
  const mc::experiment_manifest direct = mc::make_experiment_manifest(
      core::make_homogeneous_universe(8, 0.01, 0.02), cfg, 8);
  EXPECT_EQ(mc::experiment_manifest_fingerprint(m),
            mc::experiment_manifest_fingerprint(direct));
}

// ---------------------------------------------------------------------------
// Write -> parse round-trips through the fingerprint
// ---------------------------------------------------------------------------

TEST(SweepSpec, ScenarioRoundTripPreservesFingerprint) {
  const mc::sweep_spec spec = parse_ok(kScenarioSpec);
  const auto& m = std::get<mc::sweep_manifest>(spec.manifest);
  const std::string text = mc::write_sweep_spec(spec);
  const mc::sweep_spec again = parse_ok(text);
  const auto& m2 = std::get<mc::sweep_manifest>(again.manifest);
  EXPECT_EQ(mc::manifest_fingerprint(m), mc::manifest_fingerprint(m2));
  // And the writer is a fixed point: write(parse(write(s))) == write(s).
  EXPECT_EQ(mc::write_sweep_spec(again), text);
}

TEST(SweepSpec, NewAxesRoundTripPreservesFingerprint) {
  const std::string text =
      "[sweep]\nkind = scenario\nseed = 3\nrho_model = copula\n"
      "[universe u]\ngenerator = homogeneous\nfaults = 16\np = 0.05\nq = 0.01\n"
      "[axes]\nrho = -0.5 0 0.5\nomega = 1\naliasing = 1\n"
      "adjudication = 2of2 2of3 1of1\nbudget = 100\n";
  const mc::sweep_spec spec = parse_ok(text);
  const auto& m = std::get<mc::sweep_manifest>(spec.manifest);
  EXPECT_EQ(m.axes.rho_model, mc::correlation_model::copula);
  ASSERT_EQ(m.axes.adjudications.size(), 3u);
  EXPECT_EQ(m.axes.adjudications[1].versions, 3u);
  EXPECT_EQ(m.axes.adjudications[1].votes_to_defeat, 2u);
  EXPECT_EQ(m.cell_count, 9u);
  const mc::sweep_spec again = parse_ok(mc::write_sweep_spec(spec));
  EXPECT_EQ(mc::manifest_fingerprint(m),
            mc::manifest_fingerprint(std::get<mc::sweep_manifest>(again.manifest)));
}

TEST(SweepSpec, DemandRoundTripsBothRosterForms) {
  const std::string compact =
      "[sweep]\nkind = demand\nseed = 9\n"
      "[demand]\ndemands = 500\nwindow = 4\ntargets = 20\n";
  const mc::sweep_spec spec = parse_ok(compact);
  const auto& m = std::get<mc::demand_manifest>(spec.manifest);
  const mc::sweep_spec again = parse_ok(mc::write_sweep_spec(spec));
  EXPECT_EQ(mc::demand_manifest_fingerprint(m),
            mc::demand_manifest_fingerprint(std::get<mc::demand_manifest>(again.manifest)));

  const std::string explicit_form =
      "[sweep]\nkind = demand\nseed = 9\n"
      "[demand]\ndemands = 500\nwindow = 4\ntarget_pfd = 1e-05 0.0001 2e-3\n";
  const mc::sweep_spec spec2 = parse_ok(explicit_form);
  const auto& m2 = std::get<mc::demand_manifest>(spec2.manifest);
  ASSERT_EQ(m2.target_pfd.size(), 3u);
  const mc::sweep_spec again2 = parse_ok(mc::write_sweep_spec(spec2));
  EXPECT_EQ(
      mc::demand_manifest_fingerprint(m2),
      mc::demand_manifest_fingerprint(std::get<mc::demand_manifest>(again2.manifest)));
}

TEST(SweepSpec, SpecFromManifestIsLaunchable) {
  const mc::sweep_spec spec = parse_ok(kScenarioSpec);
  const auto& m = std::get<mc::sweep_manifest>(spec.manifest);
  // The describe path: manifest -> explicit-atom spec -> parse -> same
  // fingerprint, with no generator declarations to lean on.
  const mc::sweep_spec recovered = mc::spec_from_manifest(spec.manifest);
  const mc::sweep_spec again = parse_ok(mc::write_sweep_spec(recovered));
  EXPECT_EQ(mc::manifest_fingerprint(m),
            mc::manifest_fingerprint(std::get<mc::sweep_manifest>(again.manifest)));
}

TEST(SweepSpec, DescribeJsonCarriesIdentity) {
  const mc::sweep_spec spec = parse_ok(kScenarioSpec);
  const auto& m = std::get<mc::sweep_manifest>(spec.manifest);
  const std::string json = mc::describe_manifest_json(spec.manifest);
  EXPECT_NE(json.find("\"kind\": \"scenario_grid\""), std::string::npos);
  EXPECT_NE(json.find("\"rho_model\": \"mixture\""), std::string::npos);
  char fp[32];
  std::snprintf(fp, sizeof(fp), "%llu",
                static_cast<unsigned long long>(mc::manifest_fingerprint(m)));
  EXPECT_NE(json.find(fp), std::string::npos);
}

// ---------------------------------------------------------------------------
// Diagnostics: exact file:line: field positions, never throwing
// ---------------------------------------------------------------------------

TEST(SweepSpec, DiagnosticsCarryExactPositions) {
  const std::string text =
      "[sweep]\n"                               // 1
      "kind = scenario\n"                       // 2
      "seed = 99999999999999999999999\n"        // 3: overflow
      "seed = 5\n"                              // 4: duplicate
      "stress = abc\n"                          // 5: bad double
      "[unknownsec]\n"                          // 6: unknown section
      "[universe u\n"                           // 7: torn header
      "[universe ok]\n"                         // 8
      "generator = safety_grade\n"              // 9
      "faults = 4\n"                            // 10
      "mystery = 1\n";                          // 11: unknown key
  const auto errors = parse_errors(text);
  EXPECT_TRUE(has_error(errors, 3, "seed"));
  EXPECT_TRUE(has_error(errors, 4, "seed"));
  EXPECT_TRUE(has_error(errors, 5, "stress"));
  EXPECT_TRUE(has_error(errors, 6, "unknownsec"));
  EXPECT_TRUE(has_error(errors, 7, ""));
  EXPECT_TRUE(has_error(errors, 11, "mystery"));
  for (const mc::spec_error& e : errors) EXPECT_EQ(e.file, "test.spec");
  // render() is the file:line: field: message contract.
  mc::spec_error sample{"f.spec", 12, "rho", "boom"};
  EXPECT_EQ(sample.render(), "f.spec:12: rho: boom");
}

TEST(SweepSpec, InfeasibleValuesArePositionedNotThrown) {
  // Mixture rho out of range -> the [axes] line, via enumerate_cells.
  const auto errors = parse_errors(
      "[sweep]\nkind = scenario\n"
      "[universe u]\ngenerator = homogeneous\nfaults = 4\np = 0.1\nq = 0.1\n"
      "[axes]\nrho = 1.5\nbudget = 10\n");
  EXPECT_TRUE(has_error(errors, 8, "axes"));
}

TEST(SweepSpec, MissingSweepSectionIsSingleError) {
  const auto errors = parse_errors("x = 1\n");
  EXPECT_TRUE(has_error(errors, 1, "x"));  // key before any [section]
}

TEST(SweepSpec, KindSectionMismatchRejected) {
  const auto errors = parse_errors(
      "[sweep]\nkind = demand\n"
      "[demand]\ndemands = 10\nwindow = 2\ntargets = 3\n"
      "[axes]\nrho = 0\n");
  EXPECT_TRUE(has_error(errors, 7, "axes"));
}

// ---------------------------------------------------------------------------
// k-out-of-m and copula cells pinned against direct library calls
// ---------------------------------------------------------------------------

std::uint64_t cell_seed_replica(std::uint64_t grid_seed, std::size_t cell_index) {
  std::uint64_t state = grid_seed;
  const std::uint64_t mixed = stats::splitmix64_next(state);
  state = mixed ^ static_cast<std::uint64_t>(cell_index);
  return stats::splitmix64_next(state);
}

/// Brute-force k-out-of-m cell: draw `versions` masks per demand, count per
/// fault, ascending-index q accumulation (the same order as masked_q_sum /
/// the bit-sliced defeated set).
template <typename Sampler>
mc::experiment_accumulator brute_force_cell(const Sampler& sampler,
                                            const core::fault_universe& u,
                                            unsigned versions, unsigned votes,
                                            double omega, std::uint64_t samples,
                                            std::uint64_t seed) {
  const mc::shard_plan plan = mc::make_shard_plan(samples, 0);
  mc::experiment_accumulator acc;
  mc::run_shards(
      plan, seed, /*threads=*/1,
      [&](unsigned /*shard*/, std::uint64_t count, stats::rng& r) {
        mc::experiment_accumulator sa;
        std::vector<core::fault_mask> masks(versions, core::fault_mask(u.size()));
        for (std::uint64_t s = 0; s < count; ++s) {
          for (unsigned v = 0; v < versions; ++v) sampler.sample_mask(r, masks[v]);
          double t1 = 0.0;
          double shared = 0.0;
          bool defeated = false;
          for (std::size_t i = 0; i < u.size(); ++i) {
            unsigned hits = 0;
            for (unsigned v = 0; v < versions; ++v) hits += masks[v].test(i) ? 1 : 0;
            if (masks[0].test(i)) t1 += u.atoms()[i].q;
            if (hits >= votes) {
              shared += u.atoms()[i].q;
              defeated = true;
            }
          }
          sa.add(t1, omega * shared, masks[0].any(), defeated && omega > 0.0);
        }
        return sa;
      },
      [&acc](unsigned /*shard*/, mc::experiment_accumulator&& sa) { acc.merge(sa); });
  return acc;
}

TEST(SweepSpec, TwoOutOfThreeMixtureCellMatchesBruteForce) {
  const core::fault_universe u = core::make_safety_grade_universe(16, 0.0, 0.2, 0.7, 3);
  mc::scenario_axes axes;
  axes.universes.emplace_back("u", u);
  axes.correlations = {0.3};
  axes.overlaps = {0.8};
  axes.aliasing = {1};
  axes.adjudications = {core::architecture::two_out_of_three()};
  axes.budgets = {500};
  const mc::grid_result grid = mc::run_scenario_grid(axes, {.seed = 9});
  ASSERT_EQ(grid.cells.size(), 1u);
  const mc::scenario_cell_result& cell = grid.cells[0];
  EXPECT_EQ(cell.cell.versions, 3u);
  EXPECT_EQ(cell.cell.votes, 2u);

  const mc::common_cause_mixture sampler(u, 0.3, axes.stress);
  const mc::experiment_accumulator acc =
      brute_force_cell(sampler, u, 3, 2, 0.8, 500, cell_seed_replica(9, 0));
  EXPECT_TRUE(bits_equal(cell.mean_theta1, acc.theta1().mean()));
  EXPECT_TRUE(bits_equal(cell.mean_theta2, acc.theta2().mean()));
  EXPECT_EQ(cell.state.n2_positive, acc.state().n2_positive);
}

TEST(SweepSpec, CopulaPairCellMatchesBruteForce) {
  const core::fault_universe u = core::make_safety_grade_universe(24, 0.0, 0.1, 0.5, 8);
  mc::scenario_axes axes;
  axes.universes.emplace_back("u", u);
  axes.rho_model = mc::correlation_model::copula;
  axes.correlations = {-0.5};
  axes.overlaps = {1.0};
  axes.aliasing = {1};
  axes.budgets = {400};
  const mc::grid_result grid = mc::run_scenario_grid(axes, {.seed = 21});
  ASSERT_EQ(grid.cells.size(), 1u);
  const mc::scenario_cell_result& cell = grid.cells[0];

  const mc::gaussian_copula_sampler sampler(u, -0.5);
  const mc::experiment_accumulator acc =
      brute_force_cell(sampler, u, 2, 2, 1.0, 400, cell_seed_replica(21, 0));
  EXPECT_TRUE(bits_equal(cell.mean_theta1, acc.theta1().mean()));
  EXPECT_TRUE(bits_equal(cell.mean_theta2, acc.theta2().mean()));
}

TEST(SweepSpec, NegativeRhoForcesDiversity) {
  // Anti-correlated development should produce fewer coincident failures
  // than independent development of the same universe.
  const core::fault_universe u = core::make_many_small_faults_universe(
      64, 0.05, 0.2, 0.8, 0.2, 4);
  mc::scenario_axes axes;
  axes.universes.emplace_back("u", u);
  axes.rho_model = mc::correlation_model::copula;
  axes.correlations = {-0.8, 0.0};
  axes.overlaps = {1.0};
  axes.aliasing = {1};
  axes.budgets = {20'000};
  const mc::grid_result grid = mc::run_scenario_grid(axes, {.seed = 5});
  ASSERT_EQ(grid.cells.size(), 2u);
  EXPECT_LT(grid.cells[0].mean_theta2, grid.cells[1].mean_theta2);
  // Marginals are exact in both cells: theta1 agrees to Monte-Carlo noise.
  EXPECT_NEAR(grid.cells[0].mean_theta1, grid.cells[1].mean_theta1, 5e-3);
}

// ---------------------------------------------------------------------------
// Raster demand-profile universes pinned against direct library calls
// ---------------------------------------------------------------------------

TEST(SweepSpec, RasterUniverseMatchesDirectRegionCalls) {
  mc::raster_universe_params prm;
  prm.faults = 8;
  prm.p_lo = 0.01;
  prm.p_hi = 0.1;
  prm.q_total = 0.9;
  prm.seed = 42;
  prm.cols = 32;
  prm.rows = 32;
  const core::fault_universe u = mc::make_raster_universe(prm);
  ASSERT_EQ(u.size(), 8u);

  // Reconstruct the documented shape stream with direct demand/* calls.
  const demand::box domain = demand::box::unit(2);
  std::uint64_t state = 42;
  auto unit = [&state]() {
    return static_cast<double>(stats::splitmix64_next(state) >> 11) * 0x1.0p-53;
  };
  std::vector<double> p;
  std::vector<double> raw_q;
  for (std::size_t i = 0; i < 8; ++i) {
    const std::uint64_t kind = stats::splitmix64_next(state) % 4;
    demand::region_ptr shape;
    if (kind == 0) {
      const double cx = 0.1 + 0.8 * unit();
      const double cy = 0.1 + 0.8 * unit();
      const double hx = 0.02 + 0.18 * unit();
      const double hy = 0.02 + 0.18 * unit();
      shape = demand::make_box_region(
          demand::box({std::max(0.0, cx - hx), std::max(0.0, cy - hy)},
                      {std::min(1.0, cx + hx), std::min(1.0, cy + hy)}));
    } else if (kind == 1) {
      const double cx = 0.1 + 0.8 * unit();
      const double cy = 0.1 + 0.8 * unit();
      const double rx = 0.02 + 0.18 * unit();
      const double ry = 0.02 + 0.18 * unit();
      shape = demand::make_ellipsoid_region({cx, cy}, {rx, ry});
    } else if (kind == 2) {
      const std::size_t seeds = 2 + (stats::splitmix64_next(state) % 4);
      std::vector<demand::point> pts;
      for (std::size_t s = 0; s < seeds; ++s) {
        const double x = unit();
        const double y = unit();
        pts.push_back({x, y});
      }
      const double radius = 0.02 + 0.08 * unit();
      shape = demand::make_point_array_region(std::move(pts), radius);
    } else {
      const std::size_t axis = stats::splitmix64_next(state) % 2;
      const double period = 0.1 + 0.4 * unit();
      const double width = period * (0.2 + 0.6 * unit());
      const double phase = period * unit();
      shape = demand::make_stripe_region(2, axis, period, width, phase);
    }
    raw_q.push_back(
        demand::raster_region::rasterize(*shape, domain, 32, 32).uniform_measure());
    p.push_back(0.01 + (0.1 - 0.01) * unit());
  }
  double q_sum = 0.0;
  for (const double q : raw_q) q_sum += q;
  ASSERT_GT(q_sum, 0.0);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(bits_equal(u.atoms()[i].p, p[i])) << i;
    EXPECT_TRUE(bits_equal(u.atoms()[i].q, raw_q[i] * 0.9 / q_sum)) << i;
  }
}

TEST(SweepSpec, RasterGaussianProfileReweightsMeasures) {
  mc::raster_universe_params prm;
  prm.faults = 6;
  prm.p_lo = 0.01;
  prm.p_hi = 0.1;
  prm.q_total = 0.5;
  prm.seed = 7;
  prm.cols = 24;
  prm.rows = 24;
  const core::fault_universe uniform_u = mc::make_raster_universe(prm);
  prm.profile = "gaussian";
  prm.sigma = 0.2;
  const core::fault_universe gauss_u = mc::make_raster_universe(prm);
  // Same seeded shapes, same p stream; only the q weighting changes.
  double delta = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(bits_equal(uniform_u.atoms()[i].p, gauss_u.atoms()[i].p)) << i;
    delta += std::abs(uniform_u.atoms()[i].q - gauss_u.atoms()[i].q);
  }
  EXPECT_GT(delta, 0.0);
  // And a raster spec parses end to end.
  const std::string text =
      "[sweep]\nkind = scenario\nseed = 1\n"
      "[universe r]\ngenerator = raster\nfaults = 6\np_lo = 0.01\np_hi = 0.1\n"
      "q_total = 0.5\ngen_seed = 7\ncols = 24\nrows = 24\nprofile = gaussian\n"
      "sigma = 0.2\n"
      "[axes]\nrho = 0\nbudget = 10\n";
  const mc::sweep_spec spec = parse_ok(text);
  const auto& m = std::get<mc::sweep_manifest>(spec.manifest);
  ASSERT_EQ(m.axes.universes.size(), 1u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(
        bits_equal(m.axes.universes[0].second.atoms()[i].q, gauss_u.atoms()[i].q));
  }
}

// ---------------------------------------------------------------------------
// Manifest codec: append-only extension, default-compatible
// ---------------------------------------------------------------------------

mc::sweep_manifest small_manifest() {
  mc::scenario_axes axes;
  axes.universes.emplace_back("u", core::make_homogeneous_universe(8, 0.05, 0.01));
  axes.correlations = {0.0};
  axes.overlaps = {1.0};
  axes.aliasing = {1};
  axes.budgets = {100};
  mc::sweep_manifest m;
  m.axes = axes;
  m.seed = 4;
  m.cell_count = mc::enumerate_cells(axes).size();
  return m;
}

TEST(SweepSpec, DefaultAxesWriteNoExtensionBlock) {
  const mc::sweep_manifest base = small_manifest();
  mc::sweep_manifest ext = base;
  ext.axes.rho_model = mc::correlation_model::copula;
  // The extension block is appended ONLY for non-default axes: default
  // manifests stay byte-identical to every earlier release.
  EXPECT_GT(mc::encode_manifest(ext).size(), mc::encode_manifest(base).size());
  EXPECT_NE(mc::manifest_fingerprint(ext), mc::manifest_fingerprint(base));

  // Explicitly-spelled defaults are the same bytes as implicit defaults.
  mc::sweep_manifest spelled = base;
  spelled.axes.rho_model = mc::correlation_model::mixture;
  spelled.axes.adjudications = {core::architecture::one_out_of_two()};
  spelled.axes.cell_budgets.clear();
  EXPECT_EQ(mc::encode_manifest(spelled), mc::encode_manifest(base));
}

TEST(SweepSpec, ExtendedAxesRoundTripThroughCodec) {
  mc::sweep_manifest m = small_manifest();
  m.axes.rho_model = mc::correlation_model::copula;
  m.axes.correlations = {-0.25, 0.5};
  m.axes.adjudications = {core::architecture::one_out_of_two(),
                          core::architecture::two_out_of_three()};
  m.cell_count = mc::enumerate_cells(m.axes).size();
  const mc::sweep_manifest back = mc::decode_manifest(mc::encode_manifest(m));
  EXPECT_EQ(back.axes.rho_model, mc::correlation_model::copula);
  ASSERT_EQ(back.axes.adjudications.size(), 2u);
  EXPECT_EQ(back.axes.adjudications[1].versions, 3u);
  EXPECT_EQ(back.axes.adjudications[1].votes_to_defeat, 2u);
  EXPECT_EQ(mc::manifest_fingerprint(back), mc::manifest_fingerprint(m));
}

TEST(SweepSpec, CellBudgetOverrideResolvesPerCell) {
  mc::sweep_manifest m = small_manifest();
  m.axes.correlations = {0.0, 0.5};
  m.axes.cell_budgets = {200, 300};
  const auto cells = mc::enumerate_cells(m.axes);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].samples, 200u);
  EXPECT_EQ(cells[1].samples, 300u);
  m.cell_count = cells.size();
  const mc::sweep_manifest back = mc::decode_manifest(mc::encode_manifest(m));
  EXPECT_EQ(back.axes.cell_budgets, m.axes.cell_budgets);
  EXPECT_EQ(mc::manifest_fingerprint(back), mc::manifest_fingerprint(m));

  // Wrong-size override is rejected loudly.
  m.axes.cell_budgets = {200};
  EXPECT_THROW(mc::enumerate_cells(m.axes), std::invalid_argument);
}

TEST(SweepSpec, CellStateRoundTripsNonDefaultAdjudication) {
  mc::scenario_cell_result r;
  r.cell = {0, "u", 0.1, 0.9, 2, 3, 2, 1234};
  r.seed = 99;
  r.shards = 4;
  r.mean_theta1 = 1e-4;
  r.mean_theta2 = 2e-6;
  mc::cell_state c;
  c.fingerprint = 0xabcdef;
  c.cell_index = 7;
  c.result = r;
  const mc::cell_state back = mc::decode_cell_state(mc::encode_cell_state(c));
  EXPECT_EQ(back.result.cell.versions, 3u);
  EXPECT_EQ(back.result.cell.votes, 2u);
  EXPECT_EQ(back.result.cell.samples, 1234u);
  EXPECT_TRUE(bits_equal(back.result.mean_theta2, r.mean_theta2));
}

// ---------------------------------------------------------------------------
// Adaptive refinement: pure, positioned, deterministic
// ---------------------------------------------------------------------------

constexpr const char* kCsvHeader =
    "universe,rho,omega,aliasing,samples,seed,shards,mean_theta1,mean_theta2,"
    "prob_n1_positive,prob_n2_positive,risk_ratio,p_max_true,p_max_naive,"
    "versions,votes,sd_theta1,sd_theta2";

mc::sweep_manifest two_cell_manifest() {
  mc::sweep_manifest m = small_manifest();
  m.axes.correlations = {0.0, 0.5};
  m.cell_count = mc::enumerate_cells(m.axes).size();
  return m;
}

TEST(SweepSpec, RefinementRuleGrowsWideCellsAndFloorsConvergedOnes) {
  const mc::sweep_manifest m = two_cell_manifest();
  mc::refine_rule rule;  // defaults: target 0.05, growth cap 8, floor 1000
  const std::string csv =
      std::string(kCsvHeader) + "\n" +
      "u,0,1,1,100,1,1,0,0.0001,0,0,0,0,0,2,2,0,0.001\n" +   // wide CI -> cap
      "u,0.5,1,1,100,1,1,0,0.0002,0,0,0,0,0,2,2,0,0\n";      // sd 0 -> floor
  const mc::refined_budgets out = mc::compute_refined_budgets(m, rule, csv, "t.csv");
  ASSERT_TRUE(out.errors.empty()) << out.errors.front().render();
  ASSERT_EQ(out.budgets.size(), 2u);
  EXPECT_EQ(out.budgets[0], 1000u);  // capped at 8 x 100, floored to min 1000
  EXPECT_EQ(out.budgets[1], 1000u);  // converged -> min_budget
  // Identical inputs -> identical outputs, every time.
  const mc::refined_budgets again = mc::compute_refined_budgets(m, rule, csv, "t.csv");
  EXPECT_EQ(again.budgets, out.budgets);
}

TEST(SweepSpec, RefinementFormulaMatchesSpec) {
  mc::sweep_manifest m = two_cell_manifest();
  m.axes.budgets = {100'000};
  m.cell_count = mc::enumerate_cells(m.axes).size();
  mc::refine_rule rule;
  rule.max_growth = 1000.0;  // effectively uncapped for this check
  rule.round_to = 1;
  rule.min_budget = 1;
  const double sd = 0.001;
  const double mean = 0.0001;
  const std::string csv =
      std::string(kCsvHeader) + "\n" +
      "u,0,1,1,100000,1,1,0,0.0001,0,0,0,0,0,2,2,0,0.001\n" +
      "u,0.5,1,1,100000,1,1,0,0.0001,0,0,0,0,0,2,2,0,0.001\n";
  const mc::refined_budgets out = mc::compute_refined_budgets(m, rule, csv, "t.csv");
  ASSERT_TRUE(out.errors.empty()) << out.errors.front().render();
  const double n = 100'000.0;
  const double rel = (rule.z * sd / std::sqrt(n)) / mean;
  // Equal metrics -> zero gradient on the only multi-valued axis.
  const double raw = n * (rel / rule.target_rel_halfwidth) * (rel / rule.target_rel_halfwidth);
  const auto expected = static_cast<std::uint64_t>(std::ceil(raw));
  EXPECT_EQ(out.budgets[0], expected);
  EXPECT_EQ(out.budgets[1], expected);
}

TEST(SweepSpec, RefinementRejectsMismatchedTables) {
  const mc::sweep_manifest m = two_cell_manifest();
  const mc::refine_rule rule;
  // Row count disagrees with the grid.
  const std::string one_row =
      std::string(kCsvHeader) + "\nu,0,1,1,100,1,1,0,1,0,0,0,0,0,2,2,0,1\n";
  EXPECT_FALSE(mc::compute_refined_budgets(m, rule, one_row, "t.csv").errors.empty());
  // Samples column disagrees with the spec's budget (stale table).
  const std::string stale =
      std::string(kCsvHeader) + "\n" +
      "u,0,1,1,100,1,1,0,1,0,0,0,0,0,2,2,0,1\n" +
      "u,0.5,1,1,999,1,1,0,1,0,0,0,0,0,2,2,0,1\n";
  const mc::refined_budgets out = mc::compute_refined_budgets(m, rule, stale, "t.csv");
  ASSERT_FALSE(out.errors.empty());
  EXPECT_EQ(out.errors.front().line, 3u);
  EXPECT_EQ(out.errors.front().field, "samples");
  // A multi-valued budget axis cannot be refined (grid shape would change).
  mc::sweep_manifest multi = m;
  multi.axes.budgets = {100, 200};
  multi.cell_count = mc::enumerate_cells(multi.axes).size();
  EXPECT_FALSE(mc::compute_refined_budgets(multi, rule, one_row, "t.csv").errors.empty());
}

TEST(SweepSpec, RefinedSpecRunsWithExactBudgets) {
  // The full loop in-process: parse -> run -> csv -> refine -> reparse.
  const std::string round1 =
      "[sweep]\nkind = scenario\nseed = 11\n"
      "[universe u]\ngenerator = homogeneous\nfaults = 8\np = 0.1\nq = 0.05\n"
      "[axes]\nrho = 0 0.4\nomega = 1\naliasing = 1\nbudget = 200\n"
      "[refine]\nmin_budget = 300\nround_to = 100\nmax_growth = 4\n";
  const mc::sweep_spec spec = parse_ok(round1);
  EXPECT_TRUE(spec.has_refine);
  EXPECT_EQ(spec.refine.min_budget, 300u);
  const auto& m = std::get<mc::sweep_manifest>(spec.manifest);
  const mc::grid_result grid = mc::run_scenario_grid(m.axes, m.config());
  const mc::refined_budgets refined =
      mc::compute_refined_budgets(m, spec.refine, grid.to_csv(), "merged.csv");
  ASSERT_TRUE(refined.errors.empty()) << refined.errors.front().render();
  ASSERT_EQ(refined.budgets.size(), 2u);
  for (const std::uint64_t b : refined.budgets) {
    EXPECT_GE(b, 300u);
    EXPECT_LE(b, 800u);  // 4 x 200
    EXPECT_EQ(b % 100, 0u);
  }
  // Emit round 2, reparse, and check the budgets landed cell-for-cell.
  mc::sweep_spec round2 = spec;
  std::get<mc::sweep_manifest>(round2.manifest).axes.cell_budgets = refined.budgets;
  const mc::sweep_spec again = parse_ok(mc::write_sweep_spec(round2));
  const auto& m2 = std::get<mc::sweep_manifest>(again.manifest);
  const auto cells = mc::enumerate_cells(m2.axes);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].samples, refined.budgets[0]);
  EXPECT_EQ(cells[1].samples, refined.budgets[1]);
  EXPECT_TRUE(again.has_refine);  // the rule rides along for round 3
}

}  // namespace
