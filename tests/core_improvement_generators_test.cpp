// Process-improvement operators (§4.2) and the universe generators.

#include <gtest/gtest.h>

#include <cmath>

#include "core/generators.hpp"
#include "core/improvement.hpp"
#include "core/moments.hpp"
#include "core/no_common_fault.hpp"

namespace {

using namespace reldiv::core;

TEST(Improvement, SingleAndAllOperators) {
  fault_universe u({{0.4, 0.1}, {0.2, 0.2}});
  const auto single = improve_single(u, 0, 0.5);
  EXPECT_DOUBLE_EQ(single[0].p, 0.2);
  EXPECT_DOUBLE_EQ(single[1].p, 0.2);
  const auto all = improve_all(u, 0.25);
  EXPECT_DOUBLE_EQ(all[0].p, 0.1);
  EXPECT_DOUBLE_EQ(all[1].p, 0.05);
  EXPECT_THROW((void)improve_single(u, 5, 0.5), std::out_of_range);
  EXPECT_THROW((void)improve_single(u, 0, 1.5), std::invalid_argument);
  EXPECT_THROW((void)improve_all(u, -0.1), std::invalid_argument);
}

TEST(Improvement, ClassOperatorAndTransform) {
  fault_universe u({{0.4, 0.1}, {0.2, 0.2}, {0.6, 0.1}});
  const auto cls = improve_class(u, {0, 2}, 0.5);
  EXPECT_DOUBLE_EQ(cls[0].p, 0.2);
  EXPECT_DOUBLE_EQ(cls[1].p, 0.2);
  EXPECT_DOUBLE_EQ(cls[2].p, 0.3);
  const auto t = transform_p(u, [](double p, double, std::size_t) { return p * p; });
  EXPECT_DOUBLE_EQ(t[0].p, 0.16);
  EXPECT_THROW(
      (void)transform_p(u, [](double, double, std::size_t) { return 2.0; }),
      std::invalid_argument);
  const auto w = with_p(u, 1, 0.9);
  EXPECT_DOUBLE_EQ(w[1].p, 0.9);
}

TEST(Improvement, StepApplyAndScenario) {
  fault_universe u({{0.4, 0.1}, {0.2, 0.2}});
  improvement_step s1{improvement_step::kind::single, 0.5, 0, {}, "target fault 0"};
  improvement_step s2{improvement_step::kind::proportional, 0.5, 0, {}, "uniform"};
  const auto after = apply_scenario(u, {s1, s2});
  EXPECT_DOUBLE_EQ(after[0].p, 0.1);
  EXPECT_DOUBLE_EQ(after[1].p, 0.1);
}

TEST(Improvement, EvaluateStepDetectsTrendReversal) {
  // Appendix A setting: p2 = 0.5 fixed; fault 0 sits BELOW the reversal
  // point, so improving it improves reliability but REDUCES the diversity
  // gain (risk ratio goes up).
  const double p2 = 0.5;
  const double below_root = appendix_a_root(p2) * 0.5;
  fault_universe u({{below_root, 0.1}, {p2, 0.1}});
  improvement_step step{improvement_step::kind::single, 0.5, 0, {}, "v&v on fault 0"};
  const auto e = evaluate_step(u, step);
  EXPECT_TRUE(e.reliability_improved);
  EXPECT_FALSE(e.diversity_gain_improved);  // the counterintuitive §4.2.1 result
  // Whereas a proportional improvement always improves the gain (Appendix B).
  improvement_step uniform{improvement_step::kind::proportional, 0.5, 0, {}, "uniform"};
  const auto e2 = evaluate_step(u, uniform);
  EXPECT_TRUE(e2.reliability_improved);
  EXPECT_TRUE(e2.diversity_gain_improved);
}

TEST(Generators, ProduceValidUniversesReproducibly) {
  const auto a = make_random_universe(50, 0.8, 0.9, 123);
  const auto b = make_random_universe(50, 0.8, 0.9, 123);
  EXPECT_EQ(a, b);  // deterministic in the seed
  const auto c = make_random_universe(50, 0.8, 0.9, 124);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 50u);
  EXPECT_LE(a.p_max(), 0.8);
  EXPECT_NEAR(a.q_total(), 0.9, 1e-9);
}

TEST(Generators, SafetyGradeShape) {
  const auto u = make_safety_grade_universe(100, 0.0, 0.01, 0.5, 7);
  EXPECT_LE(u.p_max(), 0.01);
  EXPECT_NEAR(u.q_total(), 0.5, 1e-9);
  EXPECT_LT(u.expected_fault_count(), 1.0);  // "high chance of having no fault"
}

TEST(Generators, ManySmallFaultsShape) {
  const auto u = make_many_small_faults_universe(500, 0.05, 0.2, 0.8, 0.3, 9);
  EXPECT_EQ(u.size(), 500u);
  EXPECT_GE(u.expected_fault_count(), 500 * 0.05);
  // q roughly equal: max within (1 +- jitter)*avg bounds.
  const double avg_q = u.q_total() / 500.0;
  EXPECT_LT(u.q_max(), avg_q * 1.4 / 0.7);
}

TEST(Generators, DominantFaultShape) {
  const auto u = make_dominant_fault_universe(20, 0.3, 0.05, 0.6, 4);
  EXPECT_DOUBLE_EQ(u[0].p, 0.3);
  EXPECT_DOUBLE_EQ(u.p_max(), 0.3);
  EXPECT_GT(u[0].q, u[1].q);  // the dominant fault has the largest region
}

TEST(Generators, HomogeneousClosedForms) {
  const auto u = make_homogeneous_universe(10, 0.2, 0.05);
  EXPECT_NEAR(single_version_moments(u).mean, 10 * 0.2 * 0.05, 1e-15);
  EXPECT_NEAR(prob_no_fault(u), std::pow(0.8, 10), 1e-12);
  EXPECT_THROW((void)make_homogeneous_universe(10, 0.2, 0.2), std::invalid_argument);
  EXPECT_THROW((void)make_homogeneous_universe(0, 0.2, 0.05), std::invalid_argument);
}

TEST(Generators, KnightLevesonLikeUniverse) {
  const auto u = make_knight_leveson_like_universe(1);
  EXPECT_EQ(u.size(), 12u);
  EXPECT_LE(u.p_max(), 0.5);
  EXPECT_LE(u.q_total(), 1.0);
  // Expected number of faults per version is modest (a few).
  EXPECT_LT(u.expected_fault_count(), 3.0);
  EXPECT_GT(u.expected_fault_count(), 0.5);
}

TEST(Generators, Validation) {
  EXPECT_THROW((void)make_random_universe(0, 0.5, 0.5, 1), std::invalid_argument);
  EXPECT_THROW((void)make_random_universe(5, 1.5, 0.5, 1), std::invalid_argument);
  EXPECT_THROW((void)make_random_universe(5, 0.5, 1.5, 1), std::invalid_argument);
  EXPECT_THROW((void)make_many_small_faults_universe(5, 0.1, 0.2, 0.5, 1.5, 1),
               std::invalid_argument);
}

}  // namespace
