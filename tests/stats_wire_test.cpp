// stats::wire — the little-endian byte codec under every state file.
#include "stats/wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace stats = reldiv::stats;

TEST(WireTest, ScalarRoundTrip) {
  stats::wire_writer w;
  w.put_u8(0xab);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_f64(-0.125);
  w.put_bytes("hello");

  stats::wire_reader r(w.buffer());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.get_f64(), -0.125);
  EXPECT_EQ(r.get_bytes(), "hello");
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done());
}

TEST(WireTest, LittleEndianLayout) {
  stats::wire_writer w;
  w.put_u32(0x04030201u);
  const std::string& b = w.buffer();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(b[3]), 0x04);
}

TEST(WireTest, DoubleBitPatternsSurvive) {
  // Exact bit round-trip: signed zero, subnormal, infinities, NaN.
  const double values[] = {-0.0, std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           0.1, 1e-300, 1e300};
  stats::wire_writer w;
  for (const double v : values) w.put_f64(v);
  stats::wire_reader r(w.buffer());
  for (const double v : values) {
    const double got = r.get_f64();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got), std::bit_cast<std::uint64_t>(v));
  }
}

TEST(WireTest, TruncatedReadsThrow) {
  stats::wire_writer w;
  w.put_u64(7);
  for (std::size_t cut = 0; cut < 8; ++cut) {
    stats::wire_reader r(std::string_view(w.buffer()).substr(0, cut));
    EXPECT_THROW((void)r.get_u64(), stats::wire_error) << "cut=" << cut;
  }
}

TEST(WireTest, OversizedBytesLengthThrows) {
  stats::wire_writer w;
  w.put_u64(1'000'000);  // length prefix far beyond the buffer
  w.put_u8(0);
  stats::wire_reader r(w.buffer());
  EXPECT_THROW((void)r.get_bytes(), stats::wire_error);
}

TEST(WireTest, TrailingBytesDetected) {
  stats::wire_writer w;
  w.put_u32(1);
  w.put_u8(0);
  stats::wire_reader r(w.buffer());
  (void)r.get_u32();
  EXPECT_FALSE(r.done());
  EXPECT_THROW(r.expect_done(), stats::wire_error);
}

TEST(WireTest, Fnv1a64KnownVectors) {
  // Reference values of the canonical 64-bit FNV-1a.
  EXPECT_EQ(stats::fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(stats::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(stats::fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(WireTest, MomentsStateRoundTrip) {
  reldiv::stats::running_moments m;
  for (int i = 0; i < 1000; ++i) m.add(std::sin(i) * 1e-3);
  const auto s = m.state();

  stats::wire_writer w;
  stats::write_moments_state(w, s);
  stats::wire_reader r(w.buffer());
  const auto back = stats::read_moments_state(r);
  EXPECT_TRUE(r.done());

  EXPECT_EQ(back.count, s.count);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.m1), std::bit_cast<std::uint64_t>(s.m1));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.m2), std::bit_cast<std::uint64_t>(s.m2));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.m3), std::bit_cast<std::uint64_t>(s.m3));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.m4), std::bit_cast<std::uint64_t>(s.m4));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.min), std::bit_cast<std::uint64_t>(s.min));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.max), std::bit_cast<std::uint64_t>(s.max));

  // The resumed accumulator continues bit-exactly.
  auto resumed = reldiv::stats::running_moments::from_state(back);
  auto original = reldiv::stats::running_moments::from_state(s);
  resumed.add(0.5);
  original.add(0.5);
  EXPECT_EQ(resumed.mean(), original.mean());
  EXPECT_EQ(resumed.variance(), original.variance());
}
