// Descriptive-statistics substrate tests: Welford accumulator against direct
// two-pass computation, merge correctness, order statistics, ECDF, histogram.

#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "stats/random.hpp"

namespace {

using namespace reldiv::stats;

std::vector<double> test_sample(std::size_t n, std::uint64_t seed) {
  rng r(seed);
  std::vector<double> out(n);
  for (auto& x : out) x = r.uniform(-2.0, 5.0) + normal_deviate(r);
  return out;
}

TEST(RunningMoments, MatchesTwoPassComputation) {
  const auto xs = test_sample(5000, 11);
  running_moments m;
  for (const double x : xs) m.add(x);

  const double mean = std::accumulate(xs.begin(), xs.end(), 0.0) / xs.size();
  double var = 0.0;
  double skew = 0.0;
  double kurt = 0.0;
  for (const double x : xs) {
    var += (x - mean) * (x - mean);
    skew += std::pow(x - mean, 3);
    kurt += std::pow(x - mean, 4);
  }
  const double m2 = var / xs.size();
  var /= (xs.size() - 1);
  skew = (skew / xs.size()) / std::pow(m2, 1.5);
  kurt = (kurt / xs.size()) / (m2 * m2) - 3.0;

  EXPECT_NEAR(m.mean(), mean, 1e-10);
  EXPECT_NEAR(m.variance(), var, 1e-9);
  EXPECT_NEAR(m.skewness(), skew, 1e-8);
  EXPECT_NEAR(m.excess_kurtosis(), kurt, 1e-7);
  EXPECT_EQ(m.count(), xs.size());
}

TEST(RunningMoments, MergeEqualsConcatenation) {
  const auto xs = test_sample(3000, 21);
  const auto ys = test_sample(1700, 22);
  running_moments merged;
  running_moments a;
  running_moments b;
  for (const double x : xs) {
    merged.add(x);
    a.add(x);
  }
  for (const double y : ys) {
    merged.add(y);
    b.add(y);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), merged.count());
  EXPECT_NEAR(a.mean(), merged.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), merged.variance(), 1e-9);
  EXPECT_NEAR(a.skewness(), merged.skewness(), 1e-7);
  EXPECT_NEAR(a.excess_kurtosis(), merged.excess_kurtosis(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), merged.min());
  EXPECT_DOUBLE_EQ(a.max(), merged.max());
}

TEST(RunningMoments, MergeWithEmptySides) {
  running_moments empty;
  running_moments a;
  a.add(1.0);
  a.add(3.0);
  running_moments a_copy = a;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a_copy);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningMoments, DegenerateCounts) {
  running_moments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  m.add(4.0);
  EXPECT_DOUBLE_EQ(m.mean(), 4.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.standard_error(), 0.0);
}

TEST(Quantile, InterpolatesType7) {
  std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(Quantile, Validation) {
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile({1.0}, 1.5), std::invalid_argument);
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.9), 7.0);
}

TEST(Summarize, BasicFields) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(EmpiricalCdf, StepsAndQuantiles) {
  const empirical_cdf F({3.0, 1.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(F(0.5), 0.0);
  EXPECT_DOUBLE_EQ(F(1.0), 0.25);
  EXPECT_DOUBLE_EQ(F(2.0), 0.75);
  EXPECT_DOUBLE_EQ(F(2.5), 0.75);
  EXPECT_DOUBLE_EQ(F(3.0), 1.0);
  EXPECT_DOUBLE_EQ(F(99.0), 1.0);
  EXPECT_DOUBLE_EQ(F.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(F.quantile(1.0), 3.0);
}

TEST(Histogram, BinningAndEdges) {
  histogram h(0.0, 10.0, 10);
  h.add(-1.0);   // underflow
  h.add(0.0);    // first bin
  h.add(5.0);    // bin 5
  h.add(9.999);  // last bin
  h.add(10.0);   // inclusive top edge -> last bin
  h.add(11.0);   // overflow
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(Histogram, RenderProducesOneLinePerBin) {
  histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 100; ++i) h.add(0.1);
  const std::string art = h.render(20);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(histogram(0.0, 1.0, 0), std::invalid_argument);
  histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.bin_count(5), std::out_of_range);
}

}  // namespace
