// Parameter estimation and model validation from version samples.

#include "estimate/estimators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/generators.hpp"
#include "core/moments.hpp"
#include "core/no_common_fault.hpp"
#include "mc/correlated.hpp"
#include "mc/sampler.hpp"
#include "stats/random.hpp"

namespace {

using namespace reldiv;
using namespace reldiv::estimate;

TEST(FaultIncidence, BasicAccessors) {
  fault_incidence data(3, 4);
  data.set(0, 1, true);
  data.set(1, 1, true);
  data.set(1, 2, true);
  EXPECT_TRUE(data.contains(0, 1));
  EXPECT_FALSE(data.contains(0, 0));
  EXPECT_EQ(data.fault_count(1), 2u);
  EXPECT_EQ(data.fault_count(3), 0u);
  EXPECT_EQ(data.joint_count(1, 2), 1u);
  EXPECT_EQ(data.version_fault_count(1), 2u);
  EXPECT_THROW((void)data.contains(5, 0), std::out_of_range);
  EXPECT_THROW(fault_incidence(0, 4), std::invalid_argument);
}

TEST(FaultIncidence, FromMasks) {
  std::vector<core::fault_mask> vs(3, core::fault_mask(3));
  vs[0].set(0);
  vs[0].set(2);
  vs[1].set(2);
  const auto data = fault_incidence::from_masks(vs, 3);
  EXPECT_EQ(data.versions(), 3u);
  EXPECT_EQ(data.fault_count(2), 2u);
  EXPECT_EQ(data.fault_count(1), 0u);
  EXPECT_THROW((void)fault_incidence::from_masks({}, 3), std::invalid_argument);
  EXPECT_THROW((void)fault_incidence::from_masks(vs, 5), std::invalid_argument);
}

TEST(FaultIncidence, MaskBackedCountsMatchDenseReference) {
  // Equivalence pin for the bitmask migration: every count the estimators
  // read off the packed incidence matrix must equal the historical dense
  // (cell-by-cell) computation on the same sample.
  const auto u = core::make_random_universe(20, 0.5, 0.5, 77);
  stats::rng r(78);
  std::vector<core::fault_mask> sample(200);
  for (auto& v : sample) mc::sample_version_mask(u, r, v);
  const auto data = fault_incidence::from_masks(sample, u.size());

  std::vector<std::uint8_t> cells(sample.size() * u.size(), 0);
  for (std::size_t v = 0; v < sample.size(); ++v) {
    for (std::size_t f = 0; f < u.size(); ++f) {
      cells[v * u.size() + f] = sample[v].test(f) ? 1 : 0;
    }
  }
  for (std::size_t f = 0; f < u.size(); ++f) {
    std::size_t count = 0;
    for (std::size_t v = 0; v < sample.size(); ++v) count += cells[v * u.size() + f];
    EXPECT_EQ(data.fault_count(f), count) << "f=" << f;
  }
  for (std::size_t i = 0; i < u.size(); ++i) {
    for (std::size_t j = i + 1; j < u.size(); ++j) {
      std::size_t joint = 0;
      for (std::size_t v = 0; v < sample.size(); ++v) {
        joint += cells[v * u.size() + i] & cells[v * u.size() + j];
      }
      EXPECT_EQ(data.joint_count(i, j), joint) << i << "," << j;
    }
  }
  for (std::size_t v = 0; v < sample.size(); ++v) {
    std::size_t n = 0;
    for (std::size_t f = 0; f < u.size(); ++f) n += cells[v * u.size() + f];
    EXPECT_EQ(data.version_fault_count(v), n) << "v=" << v;
  }
}

TEST(EstimateP, RecoversTrueParameters) {
  const auto u = core::make_random_universe(10, 0.5, 0.5, 5);
  stats::rng r(6);
  std::vector<core::fault_mask> sample(5000);
  for (auto& v : sample) mc::sample_version_mask(u, r, v);
  const auto data = fault_incidence::from_masks(sample, u.size());
  const auto est = estimate_p(data, 0.99);
  int misses = 0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(est[i].p_hat, u[i].p, 0.03) << "i=" << i;
    if (!est[i].ci.contains(u[i].p)) ++misses;
  }
  EXPECT_LE(misses, 1);  // 99% intervals, 10 parameters
}

TEST(DiagnoseIndependence, AcceptsIndependentData) {
  const auto u = core::make_random_universe(8, 0.4, 0.5, 7);
  stats::rng r(8);
  std::vector<core::fault_mask> sample(3000);
  for (auto& v : sample) mc::sample_version_mask(u, r, v);
  const auto d = diagnose_independence(fault_incidence::from_masks(sample, u.size()));
  EXPECT_GT(d.pairs_tested, 0u);
  EXPECT_FALSE(d.independence_rejected);
  EXPECT_LT(d.max_abs_phi, 0.08);
}

TEST(DiagnoseIndependence, DetectsCommonCauseCorrelation) {
  // The §6.1 scenario: strongly correlated introduction must be flagged.
  const auto u = core::make_random_universe(8, 0.4, 0.5, 9);
  const mc::common_cause_mixture mix(u, 0.45, 2.0);
  stats::rng r(10);
  std::vector<core::fault_mask> sample(3000);
  for (auto& v : sample) mix.sample_mask(r, v);
  const auto d = diagnose_independence(fault_incidence::from_masks(sample, u.size()));
  EXPECT_TRUE(d.independence_rejected);
  EXPECT_GT(d.max_abs_phi, 0.05);
}

TEST(EstimatePfdMoments, CorrectsBinomialNoise) {
  // Versions with true PFDs from a known universe, scored on finite
  // campaigns: the raw sd overestimates sigma(Theta); the corrected sd
  // should land much closer.
  const auto u = core::make_random_universe(12, 0.5, 0.3, 11);
  const auto true_m = core::single_version_moments(u);
  stats::rng r(12);
  const std::uint64_t demands = 20000;
  std::vector<std::uint64_t> failures;
  for (int v = 0; v < 400; ++v) {
    const auto ver = mc::sample_version(u, r);
    const double pfd = mc::pfd_of(ver, u);
    std::uint64_t f = 0;
    for (std::uint64_t d = 0; d < demands; ++d) {
      if (r.bernoulli(pfd)) ++f;
    }
    failures.push_back(f);
  }
  const auto est = estimate_pfd_moments(failures, demands);
  EXPECT_TRUE(est.mean_ci.contains(true_m.mean));
  EXPECT_GE(est.stddev_raw, est.stddev_corrected);
  EXPECT_NEAR(est.stddev_corrected, true_m.stddev(), 0.15 * true_m.stddev());
}

TEST(EstimatePfdMoments, Validation) {
  EXPECT_THROW((void)estimate_pfd_moments({5}, 100), std::invalid_argument);
  EXPECT_THROW((void)estimate_pfd_moments({5, 6}, 0), std::invalid_argument);
  EXPECT_THROW((void)estimate_pfd_moments({200, 6}, 100), std::invalid_argument);
}

TEST(PredictPair, MatchesClosedFormsAtTrueParameters) {
  const auto u = core::make_random_universe(10, 0.4, 0.5, 13);
  std::vector<p_estimate> exact(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) exact[i].p_hat = u[i].p;
  const auto pred = predict_pair(exact, u.q_values());
  EXPECT_NEAR(pred.mean_pair_pfd, core::pair_moments(u).mean, 1e-14);
  EXPECT_NEAR(pred.prob_no_common_fault, core::prob_no_common_fault(u), 1e-12);
  EXPECT_NEAR(pred.risk_ratio, core::risk_ratio(u), 1e-12);
  EXPECT_THROW((void)predict_pair(exact, {0.1}), std::invalid_argument);
}

TEST(SplitSampleValidation, PredictionTracksHoldout) {
  // With enough versions, the training-half calibration must predict the
  // holdout pairs' mean PFD to within a factor ~2 (sampling noise of p̂²).
  const auto u = core::make_random_universe(12, 0.4, 0.5, 15);
  const auto rep = split_sample_validation(u, 400, 16);
  EXPECT_EQ(rep.training_versions, 200u);
  EXPECT_EQ(rep.holdout_pairs, 200u * 199u / 2u);
  EXPECT_GT(rep.predicted.mean_pair_pfd, 0.0);
  const double ratio = rep.observed_pair_mean / rep.predicted.mean_pair_pfd;
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
  EXPECT_THROW((void)split_sample_validation(u, 3, 1), std::invalid_argument);
}

TEST(SplitSampleValidation, BitIdenticalAcrossThreadCounts) {
  // The holdout scoring now fans out over the campaign worker pool; the
  // per-block merge order is fixed, so every field must be bit-identical
  // whatever the thread count.
  const auto u = core::make_random_universe(12, 0.4, 0.5, 15);
  validation_config cfg;
  cfg.versions = 120;
  cfg.seed = 16;
  cfg.demands = 50'000;
  cfg.threads = 1;
  const auto reference = split_sample_validation(u, cfg);
  for (const unsigned threads : {2u, 7u, 0u}) {
    cfg.threads = threads;
    const auto rep = split_sample_validation(u, cfg);
    EXPECT_EQ(rep.observed_pair_mean, reference.observed_pair_mean);
    EXPECT_EQ(rep.observed_no_common_fraction, reference.observed_no_common_fraction);
    EXPECT_EQ(rep.observed_pair_mean_hat, reference.observed_pair_mean_hat);
    EXPECT_EQ(rep.predicted.mean_pair_pfd, reference.predicted.mean_pair_pfd);
  }
}

TEST(SplitSampleValidation, EmpiricalScoringTracksExactScoring) {
  const auto u = core::make_random_universe(12, 0.4, 0.5, 15);
  validation_config cfg;
  cfg.versions = 200;
  cfg.seed = 17;
  cfg.demands = 200'000;
  const auto rep = split_sample_validation(u, cfg);
  EXPECT_EQ(rep.demands, cfg.demands);
  ASSERT_GT(rep.observed_pair_mean, 0.0);
  // Campaign noise on the mean over ~5000 pairs is tiny at 2e5 demands each.
  EXPECT_NEAR(rep.observed_pair_mean_hat, rep.observed_pair_mean,
              0.05 * rep.observed_pair_mean + 1e-6);
}

}  // namespace
