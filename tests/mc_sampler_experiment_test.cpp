// Monte-Carlo engine: sampler marginals, pair/tuple PFD algebra, and
// agreement of the multithreaded experiment runner with the closed forms of
// Sections 3 and 4.

#include <gtest/gtest.h>

#include <cmath>

#include "core/generators.hpp"
#include "core/moments.hpp"
#include "core/no_common_fault.hpp"
#include "mc/experiment.hpp"
#include "mc/sampler.hpp"

namespace {

using namespace reldiv;
using namespace reldiv::mc;

TEST(Sampler, MarginalPresenceFrequencies) {
  core::fault_universe u({{0.3, 0.1}, {0.05, 0.1}, {0.8, 0.1}});
  stats::rng r(1);
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int s = 0; s < n; ++s) {
    const version v = sample_version(u, r);
    for (const auto i : v.faults) ++counts[i];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.05, 0.005);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.8, 0.01);
}

TEST(Sampler, PfdAndCommonFaultAlgebra) {
  core::fault_universe u({{0.5, 0.1}, {0.5, 0.2}, {0.5, 0.3}});
  version a{{0, 2}};
  version b{{1, 2}};
  EXPECT_NEAR(pfd_of(a, u), 0.4, 1e-15);
  EXPECT_NEAR(pfd_of(b, u), 0.5, 1e-15);
  const auto common = common_faults(a, b);
  ASSERT_EQ(common.size(), 1u);
  EXPECT_EQ(common[0], 2u);
  EXPECT_NEAR(pair_pfd(a, b, u), 0.3, 1e-15);
  // Tuple of three: intersection empty -> PFD 0.
  version c{{0, 1}};
  EXPECT_DOUBLE_EQ(tuple_pfd({a, b, c}, u), 0.0);
  EXPECT_NEAR(tuple_pfd({a, a}, u), 0.4, 1e-15);
  EXPECT_THROW((void)tuple_pfd({}, u), std::invalid_argument);
}

TEST(Sampler, OutOfUniverseIndicesThrow) {
  core::fault_universe u({{0.5, 0.1}});
  version bad{{3}};
  EXPECT_THROW((void)pfd_of(bad, u), std::out_of_range);
  EXPECT_THROW((void)pair_pfd(bad, bad, u), std::out_of_range);
}

TEST(Sampler, EmpiricalPfdApproximatesExact) {
  core::fault_universe u({{1.0, 0.05}, {1.0, 0.02}});
  version v{{0, 1}};  // PFD = 0.07
  stats::rng r(3);
  const double hat = empirical_pfd(v, u, 200000, r);
  EXPECT_NEAR(hat, 0.07, 0.003);
  EXPECT_THROW((void)empirical_pfd(v, u, 0, r), std::invalid_argument);
}

TEST(Experiment, EstimatesMatchClosedFormsWithinCi) {
  const auto u = core::make_random_universe(20, 0.4, 0.8, 17);
  experiment_config cfg;
  cfg.samples = 200000;
  cfg.seed = 5;
  const auto res = run_experiment(u, cfg);

  const auto m1 = core::single_version_moments(u);
  const auto m2 = core::pair_moments(u);
  EXPECT_TRUE(res.mean_theta1().ci.contains(m1.mean))
      << res.mean_theta1().value << " vs " << m1.mean;
  EXPECT_TRUE(res.mean_theta2().ci.contains(m2.mean))
      << res.mean_theta2().value << " vs " << m2.mean;
  EXPECT_NEAR(res.stddev_theta1(), m1.stddev(), 0.02 * m1.stddev() + 1e-4);
  EXPECT_NEAR(res.stddev_theta2(), m2.stddev(), 0.03 * m2.stddev() + 1e-4);
  EXPECT_TRUE(res.prob_n1_positive().ci.contains(core::prob_some_fault(u)));
  EXPECT_TRUE(res.prob_n2_positive().ci.contains(core::prob_some_common_fault(u)));
  EXPECT_NEAR(res.risk_ratio(), core::risk_ratio(u), 0.02);
}

TEST(Experiment, SingleThreadMatchesClosedFormsToo) {
  const auto u = core::make_random_universe(10, 0.3, 0.5, 21);
  experiment_config cfg;
  cfg.samples = 50000;
  cfg.threads = 1;
  cfg.seed = 9;
  const auto res = run_experiment(u, cfg);
  EXPECT_TRUE(res.mean_theta1().ci.contains(core::single_version_moments(u).mean));
  EXPECT_EQ(res.samples, 50000u);
}

TEST(Experiment, DeterministicForFixedSeedAndThreads) {
  const auto u = core::make_random_universe(10, 0.3, 0.5, 22);
  experiment_config cfg;
  cfg.samples = 20000;
  cfg.threads = 4;
  cfg.seed = 77;
  const auto a = run_experiment(u, cfg);
  const auto b = run_experiment(u, cfg);
  EXPECT_DOUBLE_EQ(a.theta1.mean(), b.theta1.mean());
  EXPECT_EQ(a.n2_positive, b.n2_positive);
}

TEST(Experiment, KeepSamplesReturnsFullVectors) {
  const auto u = core::make_random_universe(8, 0.4, 0.5, 23);
  experiment_config cfg;
  cfg.samples = 5000;
  cfg.keep_samples = true;
  const auto res = run_experiment(u, cfg);
  ASSERT_TRUE(res.theta1_samples.has_value());
  ASSERT_TRUE(res.theta2_samples.has_value());
  EXPECT_EQ(res.theta1_samples->size(), 5000u);
  EXPECT_EQ(res.theta2_samples->size(), 5000u);
  // Sample mean must agree with the accumulator.
  double sum = 0.0;
  for (const double x : *res.theta1_samples) sum += x;
  EXPECT_NEAR(sum / 5000.0, res.theta1.mean(), 1e-12);
}

TEST(Experiment, Validation) {
  const auto u = core::make_random_universe(5, 0.4, 0.5, 2);
  experiment_config cfg;
  cfg.samples = 0;
  EXPECT_THROW((void)run_experiment(u, cfg), std::invalid_argument);
}

TEST(Experiment, ZeroPfdCountsConsistent) {
  // All q > 0, so PFD == 0 exactly when no fault (version) / no common
  // fault (pair).
  const auto u = core::make_random_universe(12, 0.5, 0.6, 31);
  experiment_config cfg;
  cfg.samples = 30000;
  const auto res = run_experiment(u, cfg);
  EXPECT_EQ(res.n1_zero_pfd, res.samples - res.n1_positive);
  EXPECT_EQ(res.n2_zero_pfd, res.samples - res.n2_positive);
}

}  // namespace
