// Exact PFD laws: enumeration vs the closed-form moments of eqs. (1)-(2),
// agreement between the three computation strategies, and the behaviour of
// the §5 normal approximation.

#include "core/pfd_distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/generators.hpp"
#include "core/no_common_fault.hpp"

namespace {

using namespace reldiv::core;

TEST(ExactDistribution, TwoFaultEnumerationByHand) {
  fault_universe u({{0.5, 0.2}, {0.1, 0.3}});
  const auto d = exact_pfd_distribution(u, 1);
  ASSERT_EQ(d.size(), 4u);  // {}, {1}, {2}, {1,2}
  EXPECT_NEAR(d.prob_zero(), 0.5 * 0.9, 1e-15);
  EXPECT_NEAR(d.cdf(0.2), 0.45 + 0.45, 1e-15);         // {} and {F1}
  EXPECT_NEAR(d.cdf(0.3), 0.45 + 0.45 + 0.05, 1e-15);  // + {F2}
  EXPECT_NEAR(d.cdf(0.5), 1.0, 1e-15);
  EXPECT_NEAR(d.max_value(), 0.5, 1e-15);
}

TEST(ExactDistribution, MomentsMatchClosedForms) {
  const auto u = make_random_universe(12, 0.7, 0.8, 42);
  for (const unsigned m : {1u, 2u, 3u}) {
    const auto d = exact_pfd_distribution(u, m);
    const auto mom = one_out_of_m_moments(u, m);
    EXPECT_NEAR(d.mean(), mom.mean, 1e-12) << "m=" << m;
    EXPECT_NEAR(d.variance(), mom.variance, 1e-12) << "m=" << m;
  }
}

TEST(ExactDistribution, ProbZeroMatchesSection4) {
  const auto u = make_random_universe(10, 0.5, 0.6, 7);
  const auto d1 = exact_pfd_distribution(u, 1);
  const auto d2 = exact_pfd_distribution(u, 2);
  // With all q > 0 (true for this generator), PFD = 0 iff no fault present.
  EXPECT_NEAR(d1.prob_zero(), prob_no_fault(u), 1e-12);
  EXPECT_NEAR(d2.prob_zero(), prob_no_common_fault(u), 1e-12);
}

TEST(ExactDistribution, RejectsLargeN) {
  const auto u = make_random_universe(30, 0.5, 0.5, 1);
  EXPECT_THROW((void)exact_pfd_distribution(u, 1), std::invalid_argument);
}

TEST(ExactDistribution, QuantileSemantics) {
  fault_universe u({{0.5, 0.2}});
  const auto d = exact_pfd_distribution(u, 1);
  EXPECT_DOUBLE_EQ(d.quantile(0.25), 0.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.75), 0.2);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 0.2);
  EXPECT_THROW((void)d.quantile(1.5), std::invalid_argument);
}

TEST(PrunedDistribution, AgreesWithEnumeration) {
  const auto u = make_random_universe(14, 0.4, 0.7, 99);
  const auto exact = exact_pfd_distribution(u, 1);
  const auto pruned = pruned_pfd_distribution(u, 1, 1e-14);
  EXPECT_LT(pruned.lost_mass(), 1e-9);
  EXPECT_NEAR(pruned.mean(), exact.mean(), 1e-9);
  EXPECT_NEAR(pruned.variance(), exact.variance(), 1e-9);
  for (const double alpha : {0.5, 0.9, 0.99}) {
    EXPECT_NEAR(pruned.quantile(alpha), exact.quantile(alpha), 1e-9) << alpha;
  }
}

TEST(PrunedDistribution, HandlesLargeSparseUniverses) {
  // 60 faults, tiny p: enumeration impossible (2^60 subsets), pruning easily
  // exact enough since subsets of >3 faults carry negligible mass.
  const auto u = make_safety_grade_universe(60, 0.0, 0.01, 0.9, 5);
  const auto d = pruned_pfd_distribution(u, 1, 1e-9);
  EXPECT_LT(d.lost_mass(), 1e-3);
  const auto mom = single_version_moments(u);
  // Pruned mass bounds every error: |mean error| <= lost_mass * max PFD.
  EXPECT_NEAR(d.mean(), mom.mean, d.lost_mass() * u.q_total() + 1e-12);
  EXPECT_NEAR(d.prob_zero(), prob_no_fault(u), d.lost_mass() + 1e-12);
}

TEST(PrunedDistribution, AtomExplosionFailsFastInsteadOfOom) {
  // A dense universe with a microscopic prune threshold must throw, not
  // exhaust memory.
  const auto u = make_many_small_faults_universe(400, 0.3, 0.5, 0.9, 0.2, 6);
  EXPECT_THROW((void)pruned_pfd_distribution(u, 1, 0.0), std::runtime_error);
}

TEST(PrunedDistribution, Validation) {
  const auto u = make_random_universe(5, 0.5, 0.5, 1);
  EXPECT_THROW((void)pruned_pfd_distribution(u, 1, 0.1), std::invalid_argument);
  EXPECT_THROW((void)pruned_pfd_distribution(u, 1, 1e-14, -1.0), std::invalid_argument);
}

TEST(GridDistribution, AgreesWithEnumerationOnMoments) {
  const auto u = make_many_small_faults_universe(18, 0.1, 0.4, 0.8, 0.2, 3);
  const auto exact = exact_pfd_distribution(u, 2);
  const auto grid = grid_pfd_distribution(u, 2, 8192);
  EXPECT_NEAR(grid.mean(), exact.mean(), 2e-4);
  EXPECT_NEAR(grid.stddev(), exact.stddev(), 2e-4);
  EXPECT_NEAR(grid.cdf(exact.quantile(0.9)), exact.cdf(exact.quantile(0.9)), 0.02);
}

TEST(GridDistribution, DegenerateAndValidation) {
  fault_universe empty;
  const auto d = grid_pfd_distribution(empty, 1);
  EXPECT_DOUBLE_EQ(d.prob_zero(), 1.0);
  const auto u = make_random_universe(5, 0.5, 0.5, 1);
  EXPECT_THROW((void)grid_pfd_distribution(u, 1, 1), std::invalid_argument);
}

TEST(NormalApproximation, MatchesMomentsAndQuantiles) {
  const auto u = make_many_small_faults_universe(150, 0.05, 0.25, 0.9, 0.3, 8);
  const auto approx = normal_approx(u, 1);
  const auto mom = single_version_moments(u);
  EXPECT_NEAR(approx.mu, mom.mean, 1e-15);
  EXPECT_NEAR(approx.sigma, mom.stddev(), 1e-15);
  EXPECT_NEAR(approx.quantile(0.99), approx.mu + 2.3263 * approx.sigma, 1e-4 * approx.sigma);
  EXPECT_NEAR(approx.bound(3.0), approx.mu + 3.0 * approx.sigma, 1e-18);
  EXPECT_NEAR(approx.cdf(approx.mu), 0.5, 1e-12);
}

TEST(NormalApproximation, DegenerateSigma) {
  const normal_approximation d{0.5, 0.0};
  EXPECT_DOUBLE_EQ(d.cdf(0.4), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.99), 0.5);
}

TEST(NormalApproximation, DistanceShrinksWithMoreFaults) {
  // The CLT at work: more comparable summands -> closer to normal.  This is
  // the paper's §5 rationale made quantitative.
  double prev = 1.0;
  for (const std::size_t n : {4u, 16u, 64u}) {
    const auto u = make_many_small_faults_universe(n, 0.3, 0.5, 0.9, 0.1, 11);
    const auto exact =
        n <= 24 ? exact_pfd_distribution(u, 1) : grid_pfd_distribution(u, 1, 4096);
    const double dist = normal_approximation_distance(exact, normal_approx(u, 1));
    EXPECT_LT(dist, prev) << "n=" << n;
    prev = dist;
  }
  EXPECT_LT(prev, 0.08);
}

TEST(PfdDistributionType, CoalescesAndValidates) {
  pfd_distribution d({{0.1, 0.25}, {0.1, 0.25}, {0.0, 0.5}});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.prob_zero(), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(0.1), 1.0);
  EXPECT_THROW(pfd_distribution({{0.0, 0.4}}), std::invalid_argument);        // sums to 0.4
  EXPECT_THROW(pfd_distribution({{0.0, 1.0}}, -0.1), std::invalid_argument);  // bad lost mass
}

}  // namespace
