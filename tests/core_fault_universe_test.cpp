// fault_universe value-type tests: validation, accessors, invariants.

#include "core/fault_universe.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace {

using reldiv::core::fault_atom;
using reldiv::core::fault_universe;

TEST(FaultUniverse, DefaultIsEmpty) {
  fault_universe u;
  EXPECT_TRUE(u.empty());
  EXPECT_EQ(u.size(), 0u);
  EXPECT_DOUBLE_EQ(u.p_max(), 0.0);
  EXPECT_DOUBLE_EQ(u.q_total(), 0.0);
  EXPECT_DOUBLE_EQ(u.expected_fault_count(), 0.0);
}

TEST(FaultUniverse, BasicAccessors) {
  fault_universe u({{0.1, 0.02}, {0.3, 0.01}, {0.05, 0.5}});
  EXPECT_EQ(u.size(), 3u);
  EXPECT_DOUBLE_EQ(u.p_max(), 0.3);
  EXPECT_DOUBLE_EQ(u.q_max(), 0.5);
  EXPECT_NEAR(u.q_total(), 0.53, 1e-15);
  EXPECT_NEAR(u.expected_fault_count(), 0.45, 1e-15);
  EXPECT_DOUBLE_EQ(u[1].p, 0.3);
  EXPECT_DOUBLE_EQ(u[1].q, 0.01);
}

TEST(FaultUniverse, ValidationRejectsBadParameters) {
  EXPECT_THROW(fault_universe({{-0.1, 0.1}}), std::invalid_argument);
  EXPECT_THROW(fault_universe({{1.1, 0.1}}), std::invalid_argument);
  EXPECT_THROW(fault_universe({{0.5, -0.1}}), std::invalid_argument);
  EXPECT_THROW(fault_universe({{0.5, 1.1}}), std::invalid_argument);
  EXPECT_THROW((void)fault_universe({{0.5, std::nan("")}}), std::invalid_argument);
}

TEST(FaultUniverse, DisjointnessConstraintOnQ) {
  // Σq > 1 violates the disjoint-region assumption (§6.2) by default...
  EXPECT_THROW(fault_universe({{0.5, 0.7}, {0.5, 0.7}}), std::invalid_argument);
  // ...but is allowed for deliberate pessimistic studies.
  EXPECT_NO_THROW(fault_universe({{0.5, 0.7}, {0.5, 0.7}}, true));
  // Σq == 1 exactly is fine.
  EXPECT_NO_THROW(fault_universe({{0.5, 0.5}, {0.5, 0.5}}));
}

TEST(FaultUniverse, FromArrays) {
  const double p[] = {0.1, 0.2};
  const double q[] = {0.3, 0.4};
  const auto u = fault_universe::from_arrays(p, q);
  EXPECT_EQ(u.size(), 2u);
  EXPECT_DOUBLE_EQ(u[0].p, 0.1);
  EXPECT_DOUBLE_EQ(u[1].q, 0.4);
  const double short_q[] = {0.3};
  EXPECT_THROW((void)fault_universe::from_arrays(p, short_q), std::invalid_argument);
}

TEST(FaultUniverse, AllPBelowThreshold) {
  fault_universe u({{0.1, 0.1}, {0.6, 0.1}});
  EXPECT_TRUE(u.all_p_below(reldiv::core::kGoldenThreshold));
  EXPECT_FALSE(u.all_p_below(0.5));
  fault_universe v({{0.7, 0.1}});
  EXPECT_FALSE(v.all_p_below(reldiv::core::kGoldenThreshold));
}

TEST(FaultUniverse, GoldenThresholdIsTheFixedPoint) {
  // p²(1−p²) = p(1−p) exactly at p = (√5−1)/2.
  const double g = reldiv::core::kGoldenThreshold;
  EXPECT_NEAR(g * g * (1.0 - g * g), g * (1.0 - g), 1e-15);
  // Strictly below for smaller p, strictly above for larger p.
  const double lo = g - 0.01;
  EXPECT_LT(lo * lo * (1.0 - lo * lo), lo * (1.0 - lo));
  const double hi = g + 0.01;
  EXPECT_GT(hi * hi * (1.0 - hi * hi), hi * (1.0 - hi));
}

TEST(FaultUniverse, EqualityAndIteration) {
  fault_universe a({{0.1, 0.2}, {0.3, 0.4}});
  fault_universe b({{0.1, 0.2}, {0.3, 0.4}});
  fault_universe c({{0.1, 0.2}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  double p_sum = 0.0;
  for (const auto& atom : a) p_sum += atom.p;
  EXPECT_NEAR(p_sum, 0.4, 1e-15);
}

TEST(FaultUniverse, DescribeMentionsKeyNumbers) {
  fault_universe u({{0.25, 0.1}});
  const auto text = u.describe();
  EXPECT_NE(text.find("n=1"), std::string::npos);
  EXPECT_NE(text.find("0.25"), std::string::npos);
}

TEST(FaultUniverse, CheckedAccessThrowsOutOfRange) {
  // operator[] is unchecked on the Monte-Carlo hot path (debug-asserted
  // only); the checked accessor is at().
  fault_universe u({{0.1, 0.1}});
  EXPECT_THROW((void)u.at(5), std::out_of_range);
  EXPECT_DOUBLE_EQ(u.at(0).p, 0.1);
  EXPECT_DOUBLE_EQ(u[0].p, 0.1);
}

}  // namespace
