// Demand-space geometry: region shapes (Fig. 2), profiles, hit-probability
// estimation and the §6.2 overlap machinery.

#include <gtest/gtest.h>

#include <cmath>

#include "demand/binding.hpp"
#include "demand/profile.hpp"
#include "demand/region.hpp"

namespace {

using namespace reldiv;
using namespace reldiv::demand;

TEST(Box, ContainsAndVolume) {
  const box b({0.0, 0.0}, {2.0, 0.5});
  EXPECT_TRUE(b.contains({1.0, 0.25}));
  EXPECT_TRUE(b.contains({0.0, 0.5}));  // closed edges
  EXPECT_FALSE(b.contains({2.1, 0.25}));
  EXPECT_NEAR(b.volume(), 1.0, 1e-15);
  EXPECT_EQ(box::unit(3).dims(), 3u);
  EXPECT_THROW(box({0.0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(box({0.0, 0.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)b.contains({0.5}), std::invalid_argument);
}

TEST(BoxRegion, Basics) {
  const auto r = make_box_region(box({0.2, 0.2}, {0.4, 0.4}));
  EXPECT_TRUE(r->contains({0.3, 0.3}));
  EXPECT_FALSE(r->contains({0.5, 0.3}));
  EXPECT_EQ(r->dims(), 2u);
  EXPECT_NE(r->describe().find("box"), std::string::npos);
}

TEST(EllipsoidRegion, ContainsAndValidation) {
  const auto r = make_ellipsoid_region({0.5, 0.5}, {0.2, 0.1});
  EXPECT_TRUE(r->contains({0.5, 0.5}));
  EXPECT_TRUE(r->contains({0.7, 0.5}));    // on the boundary
  EXPECT_FALSE(r->contains({0.71, 0.5}));
  EXPECT_FALSE(r->contains({0.5, 0.65}));
  EXPECT_THROW(ellipsoid_region({0.5}, {0.1, 0.2}), std::invalid_argument);
  EXPECT_THROW(ellipsoid_region({0.5}, {0.0}), std::invalid_argument);
}

TEST(PointArrayRegion, NonConnectedShape) {
  // The Fig. 2 commentary: "non-connected regions like arrays of separate
  // points".
  const auto r = make_point_array_region({{0.1, 0.1}, {0.9, 0.9}}, 0.05);
  EXPECT_TRUE(r->contains({0.1, 0.12}));
  EXPECT_TRUE(r->contains({0.9, 0.9}));
  EXPECT_FALSE(r->contains({0.5, 0.5}));  // between the islands
  EXPECT_EQ(std::dynamic_pointer_cast<const point_array_region>(r)->seed_count(), 2u);
  EXPECT_THROW(point_array_region({}, 0.1), std::invalid_argument);
  EXPECT_THROW(point_array_region({{0.1, 0.1}, {0.2}}, 0.1), std::invalid_argument);
}

TEST(StripeRegion, PeriodicBands) {
  const auto r = make_stripe_region(2, 0, 0.25, 0.05, 0.0);
  EXPECT_TRUE(r->contains({0.01, 0.5}));
  EXPECT_FALSE(r->contains({0.1, 0.5}));
  EXPECT_TRUE(r->contains({0.26, 0.5}));  // next band
  EXPECT_TRUE(r->contains({0.51, 0.9}));
  EXPECT_THROW(stripe_region(2, 5, 0.25, 0.05, 0.0), std::invalid_argument);
  EXPECT_THROW(stripe_region(2, 0, 0.25, 0.3, 0.0), std::invalid_argument);
}

TEST(UnionRegion, CombinesParts) {
  const auto u = make_union_region({make_box_region(box({0.0, 0.0}, {0.1, 0.1})),
                                    make_box_region(box({0.8, 0.8}, {0.9, 0.9}))});
  EXPECT_TRUE(u->contains({0.05, 0.05}));
  EXPECT_TRUE(u->contains({0.85, 0.85}));
  EXPECT_FALSE(u->contains({0.5, 0.5}));
  EXPECT_THROW(union_region({}), std::invalid_argument);
}

TEST(RenderAscii, MarksRegionsAndOverlap) {
  const std::vector<region_ptr> regions = {
      make_box_region(box({0.0, 0.0}, {0.5, 0.5})),
      make_box_region(box({0.4, 0.4}, {0.9, 0.9}))};
  const auto art = render_regions_ascii(regions, box::unit(2), 32, 12);
  EXPECT_NE(art.find('1'), std::string::npos);
  EXPECT_NE(art.find('2'), std::string::npos);
  EXPECT_NE(art.find('*'), std::string::npos);  // the overlap zone
  EXPECT_NE(art.find('.'), std::string::npos);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 12);
}

TEST(UniformProfile, SamplesInsideDomain) {
  const uniform_profile prof(box({1.0, -1.0}, {2.0, 1.0}));
  stats::rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const auto x = prof.sample(r);
    ASSERT_TRUE(prof.domain().contains(x));
  }
}

TEST(TruncatedNormalProfile, SamplesInsideDomainAndClusters) {
  const auto prof =
      make_truncated_normal_profile(box::unit(2), {0.5, 0.5}, {0.1, 0.1});
  stats::rng r(2);
  int near_centre = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto x = prof->sample(r);
    ASSERT_GE(x[0], 0.0);
    ASSERT_LE(x[0], 1.0);
    if (std::fabs(x[0] - 0.5) < 0.2 && std::fabs(x[1] - 0.5) < 0.2) ++near_centre;
  }
  EXPECT_GT(near_centre, 1500);  // ~(0.95)^2 of mass within 2 sd
  EXPECT_THROW(
      truncated_normal_profile(box::unit(2), {2.0, 0.5}, {0.1, 0.1}),
      std::invalid_argument);
}

TEST(MixtureProfile, RespectsWeights) {
  const auto left = make_uniform_profile(box({0.0, 0.0}, {0.1, 1.0}));
  const auto right = make_uniform_profile(box({0.9, 0.0}, {1.0, 1.0}));
  const auto mix = make_mixture_profile({left, right}, {0.8, 0.2});
  stats::rng r(3);
  int left_count = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (mix->sample(r)[0] < 0.5) ++left_count;
  }
  EXPECT_NEAR(left_count / static_cast<double>(n), 0.8, 0.02);
  EXPECT_THROW(mixture_profile({left}, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(mixture_profile({left, right}, {0.0, 0.0}), std::invalid_argument);
}

TEST(HitProbability, McMatchesExactForBoxUnderUniform) {
  const box_region reg(box({0.2, 0.3}, {0.5, 0.7}));
  const uniform_profile prof(box::unit(2));
  const double exact = exact_box_hit_probability(reg, prof);
  EXPECT_NEAR(exact, 0.3 * 0.4, 1e-15);
  const auto est = estimate_hit_probability(reg, prof, 200000, 4);
  EXPECT_TRUE(est.ci.contains(exact)) << est.q << " vs " << exact;
}

TEST(BindUniverse, EstimatesQAndOverlap) {
  const std::vector<region_fault> faults = {
      {make_box_region(box({0.0, 0.0}, {0.5, 0.5})), 0.2},
      {make_box_region(box({0.4, 0.4}, {0.9, 0.9})), 0.3},
      {make_box_region(box({0.95, 0.95}, {1.0, 1.0})), 0.1}};
  const uniform_profile prof(box::unit(2));
  const auto bound = bind_universe(faults, prof, 200000, 5);
  ASSERT_EQ(bound.universe.size(), 3u);
  EXPECT_NEAR(bound.universe[0].q, 0.25, 0.01);
  EXPECT_NEAR(bound.universe[1].q, 0.25, 0.01);
  EXPECT_NEAR(bound.universe[2].q, 0.0025, 0.001);
  EXPECT_DOUBLE_EQ(bound.universe[0].p, 0.2);
  // Regions 0 and 1 overlap on [0.4,0.5]² = 0.01 of the space.
  EXPECT_NEAR(bound.overlap[0][1], 0.01, 0.004);
  EXPECT_DOUBLE_EQ(bound.overlap[0][1], bound.overlap[1][0]);
  EXPECT_NEAR(bound.max_pairwise_overlap, 0.01, 0.004);
  // Regions 0 and 2 are disjoint.
  EXPECT_NEAR(bound.overlap[0][2], 0.0, 1e-6);
}

TEST(OverlapComparison, SumOfQIsPessimistic) {
  // §6.2: "assuming that failure regions do not overlap is a pessimistic
  // assumption".
  const std::vector<region_ptr> present = {
      make_box_region(box({0.1, 0.1}, {0.6, 0.6})),
      make_box_region(box({0.3, 0.3}, {0.8, 0.8}))};
  const uniform_profile prof(box::unit(2));
  const auto cmp = compare_overlap_pfd(present, prof, 200000, 6);
  EXPECT_GT(cmp.sum_of_q, cmp.union_measure);
  EXPECT_GE(cmp.pessimism(), 1.0);
  EXPECT_NEAR(cmp.sum_of_q, 0.5, 0.01);                   // 0.25 + 0.25
  EXPECT_NEAR(cmp.union_measure, 0.25 + 0.25 - 0.09, 0.01);  // minus the overlap
}

TEST(Binding, Validation) {
  const uniform_profile prof(box::unit(2));
  EXPECT_THROW((void)bind_universe({}, prof, 100, 1), std::invalid_argument);
  const std::vector<region_fault> bad = {{nullptr, 0.2}};
  EXPECT_THROW((void)bind_universe(bad, prof, 100, 1), std::invalid_argument);
  const std::vector<region_fault> bad_p = {
      {make_box_region(box::unit(2)), 1.5}};
  EXPECT_THROW((void)bind_universe(bad_p, prof, 100, 1), std::invalid_argument);
}

}  // namespace
