// Reliability-allocation inverse problems and the SIL mapping.

#include "core/allocation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "core/generators.hpp"
#include "stats/gof_tests.hpp"
#include "stats/poisson_binomial.hpp"
#include "stats/random.hpp"

namespace {

using namespace reldiv;
using namespace reldiv::core;

TEST(PmaxForGainFactor, InvertsTheForwardFactor) {
  for (const double pmax : {0.01, 0.1, 0.5, 0.9}) {
    const double f = sigma_ratio_factor(pmax);
    EXPECT_NEAR(pmax_for_gain_factor(f), pmax, 1e-12) << "pmax=" << pmax;
  }
  EXPECT_THROW((void)pmax_for_gain_factor(0.0), std::invalid_argument);
  EXPECT_THROW((void)pmax_for_gain_factor(1.5), std::invalid_argument);
}

TEST(RequiredPmax, PaperTableBackwards) {
  // The §5.1 table read backwards: to buy a 10x bound reduction via eq. (12)
  // the assessor must defend pmax <= ~0.01.
  const double pmax = required_pmax(1.0, 0.1);
  EXPECT_NEAR(sigma_ratio_factor(pmax), 0.1, 1e-12);
  EXPECT_NEAR(pmax, 0.00990, 5e-5);
  // A ~3x reduction needs pmax ~ 0.1.
  EXPECT_NEAR(required_pmax(1.0, 0.332), 0.1, 0.001);
  // No reduction needed: any pmax.
  EXPECT_DOUBLE_EQ(required_pmax(1e-4, 1e-3), 1.0);
  EXPECT_THROW((void)required_pmax(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW((void)required_pmax(1.0, 0.0), std::domain_error);
}

TEST(AllowedMu1, ForwardBackwardConsistency) {
  const double target = 1e-3;
  const double pmax = 0.05;
  const double k = 2.33;
  const double cv = 0.2;
  const double mu1 = allowed_mu1(target, pmax, k, cv);
  // Plugging back into eq. (11) with sigma1 = cv*mu1 must hit the target.
  EXPECT_NEAR(pair_bound_from_moments(mu1, cv * mu1, k, pmax), target, 1e-15);
  EXPECT_THROW((void)allowed_mu1(0.0, pmax, k, cv), std::invalid_argument);
  EXPECT_THROW((void)allowed_mu1(target, 0.0, k, cv), std::invalid_argument);
  EXPECT_THROW((void)allowed_mu1(target, pmax, -1.0, cv), std::invalid_argument);
}

TEST(SilBand, StandardBands) {
  EXPECT_EQ(sil_band(0.5), 0);
  EXPECT_EQ(sil_band(0.05), 1);
  EXPECT_EQ(sil_band(5e-3), 2);
  EXPECT_EQ(sil_band(5e-4), 3);
  EXPECT_EQ(sil_band(5e-5), 4);
  EXPECT_EQ(sil_band(1e-9), 4);  // capped
  EXPECT_EQ(sil_band(1e-2), 1);  // band lower edges are inclusive
  EXPECT_THROW((void)sil_band(-1.0), std::invalid_argument);
}

TEST(AllocateSil, DiversityBuysBands) {
  // A universe whose single version sits around SIL 1-2 but whose pair is
  // much better: the allocation must show the SIL step-up, and the
  // pmax-only guaranteed route must never claim more than the actual.
  const auto u = make_safety_grade_universe(30, 0.0, 0.05, 0.3, 77);
  const auto a = allocate_sil(u, 0.99);
  EXPECT_GE(a.pair_sil_actual, a.single_version_sil);
  EXPECT_GE(a.pair_sil_actual, a.pair_sil_guaranteed);
  EXPECT_LE(a.pair_bound_actual, a.pair_bound_guaranteed + 1e-15);
  EXPECT_EQ(sil_band(a.single_bound), a.single_version_sil);
}

TEST(PoissonBinomialQuantile, StepFunction) {
  stats::poisson_binomial pb({0.5, 0.5});
  EXPECT_EQ(pb.quantile(0.0), 0u);
  EXPECT_EQ(pb.quantile(0.25), 0u);
  EXPECT_EQ(pb.quantile(0.5), 1u);
  EXPECT_EQ(pb.quantile(0.75), 1u);
  EXPECT_EQ(pb.quantile(1.0), 2u);
  EXPECT_THROW((void)pb.quantile(1.5), std::invalid_argument);
}

TEST(KsTwoSample, SameDistributionAccepted) {
  stats::rng r(5);
  std::vector<double> a(800);
  std::vector<double> b(600);
  for (auto& x : a) x = stats::normal_deviate(r);
  for (auto& x : b) x = stats::normal_deviate(r);
  const auto res = stats::ks_two_sample(a, b);
  EXPECT_GT(res.p_value, 0.05);
}

TEST(KsTwoSample, ShiftedDistributionRejected) {
  stats::rng r(6);
  std::vector<double> a(800);
  std::vector<double> b(800);
  for (auto& x : a) x = stats::normal_deviate(r);
  for (auto& x : b) x = 0.5 + stats::normal_deviate(r);
  const auto res = stats::ks_two_sample(a, b);
  EXPECT_LT(res.p_value, 1e-6);
  EXPECT_TRUE(res.reject_at_05);
  EXPECT_THROW((void)stats::ks_two_sample({}, {1.0}), std::invalid_argument);
}

}  // namespace
