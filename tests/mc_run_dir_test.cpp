// mc::run_dir — the versioned on-disk state-file layer of the multi-process
// sweep driver: exact round-trips for all three state types, loud rejection
// of truncated / version-mismatched / corrupt files, atomic writes, and the
// manifest codec.
#include "mc/run_dir.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>

#include "core/generators.hpp"
#include "mc/scenario.hpp"
#include "stats/wire.hpp"

namespace mc = reldiv::mc;
namespace core = reldiv::core;
namespace fs = std::filesystem;

namespace {

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

mc::accumulator_state sample_accumulator_state(bool keep_samples) {
  mc::experiment_accumulator acc(keep_samples);
  acc.add(1e-4, 2e-6, true, false);
  acc.add(0.0, 0.0, false, false);
  acc.add(3e-3, 1e-3, true, true);
  return acc.state();
}

void expect_states_equal(const mc::accumulator_state& a, const mc::accumulator_state& b) {
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.theta1.count, b.theta1.count);
  EXPECT_TRUE(bits_equal(a.theta1.m1, b.theta1.m1));
  EXPECT_TRUE(bits_equal(a.theta1.m2, b.theta1.m2));
  EXPECT_TRUE(bits_equal(a.theta2.m3, b.theta2.m3));
  EXPECT_TRUE(bits_equal(a.theta2.m4, b.theta2.m4));
  EXPECT_TRUE(bits_equal(a.theta2.min, b.theta2.min));
  EXPECT_TRUE(bits_equal(a.theta2.max, b.theta2.max));
  EXPECT_EQ(a.n1_positive, b.n1_positive);
  EXPECT_EQ(a.n2_positive, b.n2_positive);
  EXPECT_EQ(a.n1_zero_pfd, b.n1_zero_pfd);
  EXPECT_EQ(a.n2_zero_pfd, b.n2_zero_pfd);
  EXPECT_EQ(a.keeping_samples, b.keeping_samples);
  EXPECT_EQ(a.theta1_samples, b.theta1_samples);
  EXPECT_EQ(a.theta2_samples, b.theta2_samples);
}

mc::scenario_axes small_axes() {
  mc::scenario_axes axes;
  axes.universes.emplace_back("tiny",
                              core::make_safety_grade_universe(16, 0.0, 0.05, 0.6, 3));
  axes.correlations = {0.0, 0.25};
  axes.overlaps = {1.0, 0.5};
  axes.aliasing = {1, 2};
  axes.budgets = {500};
  return axes;
}

/// Patch raw bytes of a state blob and restore the trailing checksum, so a
/// test can reach the header checks behind it.
std::string patch_and_rechecksum(std::string blob, std::size_t offset, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    blob[offset + static_cast<std::size_t>(i)] =
        static_cast<char>((value >> (8 * i)) & 0xff);
  }
  reldiv::stats::wire_writer w;
  w.put_u64(reldiv::stats::fnv1a64(std::string_view(blob).substr(0, blob.size() - 8)));
  blob.replace(blob.size() - 8, 8, w.buffer());
  return blob;
}

class RunDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-qualified so concurrent test processes can't clobber each other.
    dir_ = fs::temp_directory_path() /
           ("reldiv_run_dir_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(RunDirCodecTest, AccumulatorStateRoundTrip) {
  const auto s = sample_accumulator_state(/*keep_samples=*/false);
  const auto back = mc::decode_accumulator_state(mc::encode_accumulator_state(s));
  expect_states_equal(s, back);

  // The resumed accumulator equals the original exactly.
  auto a = mc::experiment_accumulator::from_state(s);
  auto b = mc::experiment_accumulator::from_state(back);
  a.add(1e-5, 1e-7, true, true);
  b.add(1e-5, 1e-7, true, true);
  EXPECT_EQ(a.theta1().mean(), b.theta1().mean());
  EXPECT_EQ(a.theta2().variance(), b.theta2().variance());
}

TEST(RunDirCodecTest, AccumulatorStateWithKeptSamplesRoundTrip) {
  const auto s = sample_accumulator_state(/*keep_samples=*/true);
  ASSERT_TRUE(s.keeping_samples);
  ASSERT_FALSE(s.theta1_samples.empty());
  expect_states_equal(s, mc::decode_accumulator_state(mc::encode_accumulator_state(s)));
}

TEST(RunDirCodecTest, DemandTallyRoundTrip) {
  mc::demand_tally t;
  t.demands = 1'000'000;
  t.failures = {0, 17, 3, 999'999, 42};
  const auto back = mc::decode_demand_tally(mc::encode_demand_tally(t));
  EXPECT_EQ(back.demands, t.demands);
  EXPECT_EQ(back.failures, t.failures);

  // A decoded tally is a first-class checkpoint: merging works as before.
  mc::demand_tally other;
  other.demands = t.demands;
  other.failures = {1, 1, 1, 1, 1};
  mc::demand_tally merged = back;
  merged.merge(other);
  EXPECT_EQ(merged.failures[3], 1'000'000u);
}

TEST(RunDirCodecTest, CellStateRoundTrip) {
  const mc::scenario_axes axes = small_axes();
  const auto cells = mc::enumerate_cells(axes);
  const mc::scenario_config cfg{.seed = 99, .threads = 1};
  mc::cell_state cell;
  cell.fingerprint = 0xfeedface;
  cell.cell_index = 3;
  cell.result = mc::run_scenario_cell(axes, cfg, cells[3], 3);

  const auto back = mc::decode_cell_state(mc::encode_cell_state(cell));
  EXPECT_EQ(back.fingerprint, cell.fingerprint);
  EXPECT_EQ(back.cell_index, cell.cell_index);
  EXPECT_EQ(back.result.cell.universe, cell.result.cell.universe);
  EXPECT_EQ(back.result.cell.universe_index, cell.result.cell.universe_index);
  EXPECT_TRUE(bits_equal(back.result.cell.rho, cell.result.cell.rho));
  EXPECT_TRUE(bits_equal(back.result.cell.omega, cell.result.cell.omega));
  EXPECT_EQ(back.result.cell.aliasing, cell.result.cell.aliasing);
  EXPECT_EQ(back.result.cell.samples, cell.result.cell.samples);
  EXPECT_EQ(back.result.seed, cell.result.seed);
  EXPECT_EQ(back.result.shards, cell.result.shards);
  expect_states_equal(back.result.state, cell.result.state);
  EXPECT_TRUE(bits_equal(back.result.mean_theta1, cell.result.mean_theta1));
  EXPECT_TRUE(bits_equal(back.result.mean_theta2, cell.result.mean_theta2));
  EXPECT_TRUE(bits_equal(back.result.prob_n1_positive, cell.result.prob_n1_positive));
  EXPECT_TRUE(bits_equal(back.result.prob_n2_positive, cell.result.prob_n2_positive));
  EXPECT_TRUE(bits_equal(back.result.risk_ratio, cell.result.risk_ratio));
  EXPECT_TRUE(bits_equal(back.result.p_max_true, cell.result.p_max_true));
  EXPECT_TRUE(bits_equal(back.result.p_max_naive, cell.result.p_max_naive));
}

TEST(RunDirCodecTest, CellIdentityPeekMatchesFullDecode) {
  const mc::scenario_axes axes = small_axes();
  const auto cells = mc::enumerate_cells(axes);
  mc::cell_state cell;
  cell.fingerprint = 0xabad1deaULL;
  cell.cell_index = 5;
  cell.result = mc::run_scenario_cell(axes, {.seed = 4, .threads = 1}, cells[5], 5);
  const std::string blob = mc::encode_cell_state(cell);

  // The peek sees the same identity the full decode does...
  const mc::cell_identity id = mc::peek_cell_identity(blob);
  EXPECT_EQ(id.fingerprint, cell.fingerprint);
  EXPECT_EQ(id.cell_index, cell.cell_index);

  // ...with the full container integrity checks: corruption anywhere in the
  // file (even deep in the payload the peek never parses) is rejected.
  std::string corrupt = blob;
  corrupt[corrupt.size() - 12] = static_cast<char>(corrupt[corrupt.size() - 12] ^ 0x01);
  EXPECT_THROW((void)mc::peek_cell_identity(corrupt), mc::run_dir_error);
  EXPECT_THROW((void)mc::peek_cell_identity(std::string_view(blob).substr(0, 30)),
               mc::run_dir_error);
}

TEST(RunDirCodecTest, ManifestRoundTrip) {
  mc::sweep_manifest m;
  m.axes = small_axes();
  m.seed = 424242;
  m.shards = 8;
  m.cell_count = mc::enumerate_cells(m.axes).size();

  const auto back = mc::decode_manifest(mc::encode_manifest(m));
  EXPECT_EQ(back.seed, m.seed);
  EXPECT_EQ(back.shards, m.shards);
  EXPECT_EQ(back.cell_count, m.cell_count);
  EXPECT_TRUE(bits_equal(back.axes.stress, m.axes.stress));
  ASSERT_EQ(back.axes.universes.size(), m.axes.universes.size());
  EXPECT_EQ(back.axes.universes[0].first, "tiny");
  // Universe equality is atom-wise — the SoA caches rebuild identically.
  EXPECT_TRUE(back.axes.universes[0].second == m.axes.universes[0].second);
  EXPECT_EQ(back.axes.correlations, m.axes.correlations);
  EXPECT_EQ(back.axes.overlaps, m.axes.overlaps);
  EXPECT_EQ(back.axes.aliasing, m.axes.aliasing);
  EXPECT_EQ(back.axes.budgets, m.axes.budgets);

  // Same identity -> same fingerprint; different seed -> different one.
  EXPECT_EQ(mc::manifest_fingerprint(back), mc::manifest_fingerprint(m));
  mc::sweep_manifest other = m;
  other.seed = 7;
  EXPECT_NE(mc::manifest_fingerprint(other), mc::manifest_fingerprint(m));
}

TEST(RunDirCodecTest, ManifestCellCountMismatchRejected) {
  mc::sweep_manifest m;
  m.axes = small_axes();
  m.seed = 1;
  m.cell_count = mc::enumerate_cells(m.axes).size() + 1;  // lie
  EXPECT_THROW((void)mc::decode_manifest(mc::encode_manifest(m)), mc::run_dir_error);
}

// ---------------------------------------------------------------------------
// Demand-window and experiment-window states (the PR 5 job kinds)
// ---------------------------------------------------------------------------

mc::demand_window_state sample_demand_window_state() {
  mc::demand_window_state s;
  s.fingerprint = 0xfeedface12345678ULL;
  s.window_index = 3;
  s.result.target_begin = 96;
  s.result.target_end = 101;
  s.result.demands = 50'000;
  s.result.failures = {7, 0, 12, 999, 1};
  return s;
}

mc::experiment_window_state sample_experiment_window_state(bool keep_samples) {
  mc::experiment_window_state s;
  s.fingerprint = 0xabcdef0122334455ULL;
  s.window_index = 2;
  s.result.shard_begin = 4;
  s.result.shard_end = 6;
  s.result.shard_states = {sample_accumulator_state(keep_samples),
                           sample_accumulator_state(keep_samples)};
  return s;
}

TEST(RunDirCodecTest, DemandWindowStateRoundTrip) {
  const auto s = sample_demand_window_state();
  const auto back = mc::decode_demand_window_state(mc::encode_demand_window_state(s));
  EXPECT_EQ(back.fingerprint, s.fingerprint);
  EXPECT_EQ(back.window_index, s.window_index);
  EXPECT_EQ(back.result.target_begin, s.result.target_begin);
  EXPECT_EQ(back.result.target_end, s.result.target_end);
  EXPECT_EQ(back.result.demands, s.result.demands);
  EXPECT_EQ(back.result.failures, s.result.failures);
}

TEST(RunDirCodecTest, ExperimentWindowStateRoundTrip) {
  for (const bool keep : {false, true}) {
    const auto s = sample_experiment_window_state(keep);
    const auto back =
        mc::decode_experiment_window_state(mc::encode_experiment_window_state(s));
    EXPECT_EQ(back.fingerprint, s.fingerprint);
    EXPECT_EQ(back.window_index, s.window_index);
    EXPECT_EQ(back.result.shard_begin, s.result.shard_begin);
    EXPECT_EQ(back.result.shard_end, s.result.shard_end);
    ASSERT_EQ(back.result.shard_states.size(), s.result.shard_states.size());
    for (std::size_t i = 0; i < s.result.shard_states.size(); ++i) {
      expect_states_equal(back.result.shard_states[i], s.result.shard_states[i]);
    }
  }
}

TEST(RunDirCodecTest, WindowIdentityPeeksMatchFullDecode) {
  const auto d = sample_demand_window_state();
  const auto did = mc::peek_cell_identity(mc::state_kind::demand_window,
                                          mc::encode_demand_window_state(d));
  EXPECT_EQ(did.fingerprint, d.fingerprint);
  EXPECT_EQ(did.cell_index, d.window_index);

  const auto e = sample_experiment_window_state(false);
  const auto eid = mc::peek_cell_identity(mc::state_kind::experiment_window,
                                          mc::encode_experiment_window_state(e));
  EXPECT_EQ(eid.fingerprint, e.fingerprint);
  EXPECT_EQ(eid.cell_index, e.window_index);

  // The peek still enforces the container kind.
  EXPECT_THROW((void)mc::peek_cell_identity(mc::state_kind::experiment_window,
                                            mc::encode_demand_window_state(d)),
               mc::run_dir_error);
}

TEST(RunDirCodecTest, PeekStateKindValidatesIntegrityFirst) {
  const std::string blob = mc::encode_demand_window_state(sample_demand_window_state());
  EXPECT_EQ(mc::peek_state_kind(blob), mc::state_kind::demand_window);

  std::string corrupt = blob;
  corrupt[corrupt.size() / 2] = static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x01);
  EXPECT_THROW((void)mc::peek_state_kind(corrupt), mc::run_dir_error);
  EXPECT_THROW((void)mc::peek_state_kind(std::string_view(blob).substr(0, 10)),
               mc::run_dir_error);
}

TEST(RunDirCodecTest, DemandWindowTruncationAndCorruptionRejected) {
  const std::string blob = mc::encode_demand_window_state(sample_demand_window_state());
  for (const std::size_t cut : {std::size_t{0}, std::size_t{12}, blob.size() / 2,
                                blob.size() - 9, blob.size() - 1}) {
    EXPECT_THROW(
        (void)mc::decode_demand_window_state(std::string_view(blob).substr(0, cut)),
        mc::run_dir_error)
        << "cut=" << cut;
  }
  std::string corrupt = blob;
  corrupt[corrupt.size() - 12] = static_cast<char>(corrupt[corrupt.size() - 12] ^ 0x08);
  EXPECT_THROW((void)mc::decode_demand_window_state(corrupt), mc::run_dir_error);
  // Wrong-kind container: an experiment window fed to the demand decoder.
  EXPECT_THROW((void)mc::decode_demand_window_state(mc::encode_experiment_window_state(
                   sample_experiment_window_state(false))),
               mc::run_dir_error);
}

TEST(RunDirCodecTest, ExperimentWindowTruncationAndCorruptionRejected) {
  const std::string blob =
      mc::encode_experiment_window_state(sample_experiment_window_state(false));
  for (const std::size_t cut : {std::size_t{0}, std::size_t{12}, blob.size() / 2,
                                blob.size() - 9, blob.size() - 1}) {
    EXPECT_THROW(
        (void)mc::decode_experiment_window_state(std::string_view(blob).substr(0, cut)),
        mc::run_dir_error)
        << "cut=" << cut;
  }
  std::string corrupt = blob;
  corrupt[40] = static_cast<char>(corrupt[40] ^ 0x10);
  EXPECT_THROW((void)mc::decode_experiment_window_state(corrupt), mc::run_dir_error);
  EXPECT_THROW((void)mc::decode_experiment_window_state(
                   mc::encode_demand_window_state(sample_demand_window_state())),
               mc::run_dir_error);
}

TEST(RunDirCodecTest, DemandWindowBoundsMismatchRejected) {
  // Bounds that disagree with the counts vector must not decode even though
  // the container checksum is valid (a would-be writer bug, not bit rot).
  auto s = sample_demand_window_state();
  s.result.target_end += 1;  // 6-target window, 5 counts
  EXPECT_THROW((void)mc::decode_demand_window_state(mc::encode_demand_window_state(s)),
               mc::run_dir_error);

  auto e = sample_experiment_window_state(false);
  e.result.shard_end += 1;  // 3-shard window, 2 states
  EXPECT_THROW(
      (void)mc::decode_experiment_window_state(mc::encode_experiment_window_state(e)),
      mc::run_dir_error);
}

// ---------------------------------------------------------------------------
// Demand and experiment manifests
// ---------------------------------------------------------------------------

mc::demand_manifest small_demand_manifest() {
  mc::demand_manifest m;
  m.target_pfd = {1e-4, 2e-4, 5e-5, 0.0, 1e-3, 7e-4, 2e-6};
  m.demands = 10'000;
  m.seed = 77;
  m.window = 3;
  return m;
}

mc::experiment_manifest small_experiment_manifest() {
  mc::experiment_config cfg;
  cfg.samples = 2'000;
  cfg.seed = 55;
  cfg.shards = 8;
  cfg.engine = mc::sampling_engine::exact;
  return mc::make_experiment_manifest(
      core::make_safety_grade_universe(12, 0.0, 0.05, 0.6, 3), cfg, /*window=*/2);
}

TEST(RunDirCodecTest, DemandManifestRoundTripAndFingerprint) {
  const mc::demand_manifest m = small_demand_manifest();
  const mc::demand_manifest back = mc::decode_demand_manifest(mc::encode_demand_manifest(m));
  EXPECT_EQ(back.demands, m.demands);
  EXPECT_EQ(back.seed, m.seed);
  EXPECT_EQ(back.window, m.window);
  ASSERT_EQ(back.target_pfd.size(), m.target_pfd.size());
  for (std::size_t i = 0; i < m.target_pfd.size(); ++i) {
    EXPECT_TRUE(bits_equal(back.target_pfd[i], m.target_pfd[i]));
  }
  EXPECT_EQ(mc::demand_manifest_fingerprint(back), mc::demand_manifest_fingerprint(m));

  // Any identity knob moves the fingerprint.
  mc::demand_manifest other = m;
  other.window += 1;
  EXPECT_NE(mc::demand_manifest_fingerprint(other), mc::demand_manifest_fingerprint(m));
  other = m;
  other.target_pfd[0] += 1e-9;
  EXPECT_NE(mc::demand_manifest_fingerprint(other), mc::demand_manifest_fingerprint(m));

  EXPECT_NE(mc::demand_manifest_json(m).find("\"demand_campaign\""), std::string::npos);
}

TEST(RunDirCodecTest, ExperimentManifestRoundTripAndFingerprint) {
  const mc::experiment_manifest m = small_experiment_manifest();
  const mc::experiment_manifest back =
      mc::decode_experiment_manifest(mc::encode_experiment_manifest(m));
  EXPECT_EQ(back.samples, m.samples);
  EXPECT_EQ(back.seed, m.seed);
  EXPECT_EQ(back.shards, m.shards);
  EXPECT_EQ(back.engine, m.engine);
  EXPECT_EQ(back.keep_samples, m.keep_samples);
  EXPECT_TRUE(bits_equal(back.ci_level, m.ci_level));
  EXPECT_EQ(back.window, m.window);
  ASSERT_EQ(back.universe.size(), m.universe.size());
  for (std::size_t i = 0; i < m.universe.size(); ++i) {
    EXPECT_TRUE(bits_equal(back.universe[i].p, m.universe[i].p));
    EXPECT_TRUE(bits_equal(back.universe[i].q, m.universe[i].q));
  }
  EXPECT_EQ(mc::experiment_manifest_fingerprint(back),
            mc::experiment_manifest_fingerprint(m));

  mc::experiment_manifest other = m;
  other.seed += 1;
  EXPECT_NE(mc::experiment_manifest_fingerprint(other),
            mc::experiment_manifest_fingerprint(m));

  EXPECT_NE(mc::experiment_manifest_json(m).find("\"experiment_shards\""),
            std::string::npos);
}

TEST(RunDirCodecTest, ManifestKindsNeverCrossDecode) {
  const std::string scenario = mc::encode_manifest([] {
    mc::sweep_manifest m;
    m.axes = small_axes();
    m.cell_count = mc::enumerate_cells(m.axes).size();
    return m;
  }());
  const std::string demand = mc::encode_demand_manifest(small_demand_manifest());
  const std::string experiment =
      mc::encode_experiment_manifest(small_experiment_manifest());

  EXPECT_EQ(mc::peek_state_kind(scenario), mc::state_kind::manifest);
  EXPECT_EQ(mc::peek_state_kind(demand), mc::state_kind::demand_manifest);
  EXPECT_EQ(mc::peek_state_kind(experiment), mc::state_kind::experiment_manifest);

  EXPECT_THROW((void)mc::decode_manifest(demand), mc::run_dir_error);
  EXPECT_THROW((void)mc::decode_demand_manifest(experiment), mc::run_dir_error);
  EXPECT_THROW((void)mc::decode_experiment_manifest(scenario), mc::run_dir_error);
}

TEST(RunDirCodecTest, InvalidManifestPayloadsRejected) {
  // A checksum-valid container whose payload fails validation must still be
  // rejected loudly (window = 0 can never enumerate cells).
  mc::demand_manifest d = small_demand_manifest();
  d.window = 0;
  EXPECT_THROW((void)mc::decode_demand_manifest(mc::encode_demand_manifest(d)),
               mc::run_dir_error);
}

// ---------------------------------------------------------------------------
// Rejection: truncation, version, kind, corruption
// ---------------------------------------------------------------------------

TEST(RunDirCodecTest, TruncatedFilesRejected) {
  const std::string blob = mc::encode_accumulator_state(sample_accumulator_state(false));
  // Every strict prefix must be rejected: header-short, payload-short, and
  // checksum-short files all read as "truncated", never as garbage data.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{7}, std::size_t{23},
                                blob.size() / 2, blob.size() - 9, blob.size() - 1}) {
    EXPECT_THROW((void)mc::decode_accumulator_state(std::string_view(blob).substr(0, cut)),
                 mc::run_dir_error)
        << "cut=" << cut;
  }
}

TEST(RunDirCodecTest, TrailingGarbageRejected) {
  std::string blob = mc::encode_accumulator_state(sample_accumulator_state(false));
  blob += "extra";
  EXPECT_THROW((void)mc::decode_accumulator_state(blob), mc::run_dir_error);
}

TEST(RunDirCodecTest, BadMagicRejected) {
  std::string blob = mc::encode_accumulator_state(sample_accumulator_state(false));
  blob[0] = 'X';
  EXPECT_THROW((void)mc::decode_accumulator_state(blob), mc::run_dir_error);
}

TEST(RunDirCodecTest, VersionMismatchRejected) {
  const std::string blob = mc::encode_accumulator_state(sample_accumulator_state(false));
  // Bump the version field (offset 8) and repair the checksum so the version
  // check itself — not the checksum — is what fires.
  const std::string bumped =
      patch_and_rechecksum(blob, 8, mc::kStateFormatVersion + 1);
  try {
    (void)mc::decode_accumulator_state(bumped);
    FAIL() << "version mismatch not detected";
  } catch (const mc::run_dir_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }
}

TEST(RunDirCodecTest, KindMismatchRejected) {
  mc::demand_tally t;
  t.demands = 10;
  t.failures = {1, 2};
  const std::string blob = mc::encode_demand_tally(t);
  try {
    (void)mc::decode_accumulator_state(blob);
    FAIL() << "kind mismatch not detected";
  } catch (const mc::run_dir_error& e) {
    EXPECT_NE(std::string(e.what()).find("kind"), std::string::npos) << e.what();
  }
}

TEST(RunDirCodecTest, CorruptPayloadRejected) {
  std::string blob = mc::encode_accumulator_state(sample_accumulator_state(false));
  blob[30] = static_cast<char>(blob[30] ^ 0x40);  // flip a payload bit
  try {
    (void)mc::decode_accumulator_state(blob);
    FAIL() << "corruption not detected";
  } catch (const mc::run_dir_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos) << e.what();
  }
}

TEST(RunDirCodecTest, CorruptChecksumRejected) {
  std::string blob = mc::encode_accumulator_state(sample_accumulator_state(false));
  blob.back() = static_cast<char>(blob.back() ^ 0x01);
  EXPECT_THROW((void)mc::decode_accumulator_state(blob), mc::run_dir_error);
}

// ---------------------------------------------------------------------------
// Filesystem layer
// ---------------------------------------------------------------------------

TEST_F(RunDirTest, AtomicWriteLeavesNoTemp) {
  const fs::path target = dir_ / "state.bin";
  mc::write_file_atomic(target, "payload-bytes");
  EXPECT_EQ(mc::read_file(target), "payload-bytes");
  // Overwrite goes through the same tmp+rename path.
  mc::write_file_atomic(target, "second");
  EXPECT_EQ(mc::read_file(target), "second");
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u) << "tmp sibling left behind";
}

TEST_F(RunDirTest, ReadMissingFileThrows) {
  EXPECT_THROW((void)mc::read_file(dir_ / "nope.state"), mc::run_dir_error);
}

TEST_F(RunDirTest, CellPathsAreStable) {
  EXPECT_EQ(mc::cell_state_path(dir_, 7).filename().string(), "cell_000007.state");
  EXPECT_EQ(mc::cell_claim_path(dir_, 123456).filename().string(), "cell_123456.claim");
  EXPECT_EQ(mc::manifest_path(dir_).filename().string(), "manifest.state");
}

TEST_F(RunDirTest, StateFileOnDiskRoundTrip) {
  const auto s = sample_accumulator_state(true);
  mc::write_file_atomic(dir_ / "acc.state", mc::encode_accumulator_state(s));
  expect_states_equal(s, mc::decode_accumulator_state(mc::read_file(dir_ / "acc.state")));

  // A file truncated on disk (killed writer without atomic rename) rejects.
  const std::string blob = mc::encode_accumulator_state(s);
  {
    std::ofstream f(dir_ / "short.state", std::ios::binary);
    f.write(blob.data(), static_cast<std::streamsize>(blob.size() / 2));
  }
  EXPECT_THROW((void)mc::decode_accumulator_state(mc::read_file(dir_ / "short.state")),
               mc::run_dir_error);
}

}  // namespace
