// Equations (1)-(3) of the paper: exact moments of Θ1 and Θ2, the 1-out-of-m
// generalization, and the EL/LM coincident-failure excess.  Includes
// parameterized property sweeps over randomized universes.

#include "core/moments.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/generators.hpp"

namespace {

using namespace reldiv::core;

TEST(Moments, HandComputedTwoFaultCase) {
  // p = (0.1, 0.3), q = (0.02, 0.05)
  fault_universe u({{0.1, 0.02}, {0.3, 0.05}});
  const auto m1 = single_version_moments(u);
  const auto m2 = pair_moments(u);
  EXPECT_NEAR(m1.mean, 0.1 * 0.02 + 0.3 * 0.05, 1e-15);                       // eq. (1)
  EXPECT_NEAR(m2.mean, 0.01 * 0.02 + 0.09 * 0.05, 1e-15);                     // eq. (1)
  EXPECT_NEAR(m1.variance, 0.1 * 0.9 * 0.02 * 0.02 + 0.3 * 0.7 * 0.05 * 0.05,
              1e-15);                                                          // eq. (2)
  EXPECT_NEAR(m2.variance,
              0.01 * (1.0 - 0.01) * 0.02 * 0.02 + 0.09 * (1.0 - 0.09) * 0.05 * 0.05,
              1e-15);                                                          // eq. (2)
}

TEST(Moments, EmptyUniverseIsPerfect) {
  fault_universe u;
  EXPECT_DOUBLE_EQ(single_version_moments(u).mean, 0.0);
  EXPECT_DOUBLE_EQ(pair_moments(u).variance, 0.0);
}

TEST(Moments, CertainFaultHasNoVariance) {
  fault_universe u({{1.0, 0.3}});
  const auto m1 = single_version_moments(u);
  const auto m2 = pair_moments(u);
  EXPECT_DOUBLE_EQ(m1.mean, 0.3);
  EXPECT_DOUBLE_EQ(m1.variance, 0.0);
  EXPECT_DOUBLE_EQ(m2.mean, 0.3);  // both versions always contain it
  EXPECT_DOUBLE_EQ(m2.variance, 0.0);
}

TEST(Moments, OneOutOfMReductions) {
  fault_universe u({{0.2, 0.1}, {0.05, 0.2}});
  const auto m1 = one_out_of_m_moments(u, 1);
  const auto m2 = one_out_of_m_moments(u, 2);
  const auto m3 = one_out_of_m_moments(u, 3);
  EXPECT_NEAR(m3.mean, 0.008 * 0.1 + 0.000125 * 0.2, 1e-15);
  // Adding channels can only reduce the mean PFD.
  EXPECT_LT(m3.mean, m2.mean);
  EXPECT_LT(m2.mean, m1.mean);
  EXPECT_THROW((void)one_out_of_m_moments(u, 0), std::invalid_argument);
}

TEST(Moments, StddevAndCv) {
  fault_universe u({{0.5, 0.4}});
  const auto m = single_version_moments(u);
  EXPECT_NEAR(m.stddev(), std::sqrt(0.25) * 0.4, 1e-15);
  EXPECT_NEAR(m.cv(), m.stddev() / m.mean, 1e-15);
  EXPECT_DOUBLE_EQ(pfd_moments{}.cv(), 0.0);
}

TEST(Moments, IndependenceShortfallHandCase) {
  fault_universe u({{0.1, 0.02}, {0.3, 0.05}});
  const double mu1 = single_version_moments(u).mean;
  const double mu2 = pair_moments(u).mean;
  EXPECT_NEAR(independence_shortfall(u), mu2 - mu1 * mu1, 1e-15);
  EXPECT_GT(independence_shortfall(u), 0.0);  // versions fail dependently
}

TEST(Moments, MeanGain) {
  fault_universe u({{0.1, 0.5}});
  // µ1 = 0.05, µ2 = 0.005: the gain is exactly 1/p = 10 for a single fault.
  EXPECT_NEAR(mean_gain(u), 10.0, 1e-12);
  fault_universe perfect({{0.0, 0.5}});
  EXPECT_DOUBLE_EQ(mean_gain(perfect), 1.0);
  fault_universe certain_fault({{1.0, 0.0}, {0.2, 0.5}});
  EXPECT_GT(mean_gain(certain_fault), 1.0);
}

// --- property sweeps --------------------------------------------------------

class MomentsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MomentsPropertyTest, PairNeverWorseThanSingleAndShortfallNonNegative) {
  const auto u = make_random_universe(40, 0.8, 0.9, GetParam());
  const auto m1 = single_version_moments(u);
  const auto m2 = pair_moments(u);
  // µ2 <= µ1 always (p² <= p).
  EXPECT_LE(m2.mean, m1.mean + 1e-15);
  // E[Θ2] >= (E[Θ1])²: the EL coincident-failure excess (Σq <= 1 here).
  EXPECT_GE(independence_shortfall(u), -1e-15);
}

TEST_P(MomentsPropertyTest, MomentsMatchDirectSummation) {
  const auto u = make_random_universe(25, 0.6, 0.8, GetParam() + 1000);
  double mu1 = 0.0;
  double var2 = 0.0;
  for (const auto& [p, q] : u) {
    mu1 += p * q;
    var2 += p * p * (1.0 - p * p) * q * q;
  }
  EXPECT_NEAR(single_version_moments(u).mean, mu1, 1e-15);
  EXPECT_NEAR(pair_moments(u).variance, var2, 1e-15);
}

TEST_P(MomentsPropertyTest, OneOutOfMMonotoneInM) {
  const auto u = make_random_universe(30, 0.9, 0.7, GetParam() + 2000);
  double prev = std::numeric_limits<double>::infinity();
  for (unsigned m = 1; m <= 5; ++m) {
    const double mean = one_out_of_m_moments(u, m).mean;
    EXPECT_LE(mean, prev + 1e-15) << "m=" << m;
    prev = mean;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MomentsPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
