// Development-process model: delivered-p synthesis, improvement levers and
// their exact correspondence to the paper's §4.2 operators.

#include "process/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/moments.hpp"
#include "core/no_common_fault.hpp"

namespace {

using namespace reldiv;
using namespace reldiv::process;

vnv_stage uniform_stage(std::string name, double d) {
  vnv_stage s;
  s.name = std::move(name);
  s.detection.fill(d);
  return s;
}

TEST(Pipeline, SurvivalProbabilityMultiplies) {
  development_process p({uniform_stage("review", 0.5), uniform_stage("test", 0.6)});
  for (const fault_class c : all_fault_classes()) {
    EXPECT_NEAR(p.survival_probability(c), 0.5 * 0.4, 1e-15);
  }
  potential_fault f{fault_class::logic, 0.3, 0.01};
  EXPECT_NEAR(p.delivered_p(f), 0.3 * 0.2, 1e-15);
}

TEST(Pipeline, PerClassDetectionDiffers) {
  vnv_stage s = uniform_stage("unit test", 0.2);
  s.set_detection(fault_class::boundary, 0.9);
  development_process p({s});
  EXPECT_NEAR(p.survival_probability(fault_class::boundary), 0.1, 1e-15);
  EXPECT_NEAR(p.survival_probability(fault_class::logic), 0.8, 1e-15);
  EXPECT_THROW(s.set_detection(fault_class::logic, 1.5), std::invalid_argument);
}

TEST(Pipeline, SynthesizeBuildsUniverse) {
  development_process p({uniform_stage("review", 0.5)});
  const std::vector<potential_fault> faults = {
      {fault_class::logic, 0.4, 0.1}, {fault_class::boundary, 0.2, 0.2}};
  const auto u = p.synthesize(faults);
  ASSERT_EQ(u.size(), 2u);
  EXPECT_NEAR(u[0].p, 0.2, 1e-15);
  EXPECT_NEAR(u[1].p, 0.1, 1e-15);
  EXPECT_DOUBLE_EQ(u[0].q, 0.1);
}

TEST(Pipeline, StrengthenStageIsTargetedImprovement) {
  development_process p({uniform_stage("review", 0.5), uniform_stage("test", 0.5)});
  const auto improved = p.strengthen_stage(0, fault_class::logic, 0.5);
  // Escape of the review stage for logic faults halves: 0.5 -> 0.25.
  EXPECT_NEAR(improved.survival_probability(fault_class::logic), 0.25 * 0.5, 1e-15);
  // Other classes untouched.
  EXPECT_NEAR(improved.survival_probability(fault_class::boundary), 0.25, 1e-15);
  EXPECT_THROW((void)p.strengthen_stage(9, fault_class::logic, 0.5), std::out_of_range);
  EXPECT_THROW((void)p.strengthen_stage(0, fault_class::logic, 2.0),
               std::invalid_argument);
}

TEST(Pipeline, ScreeningStageIsExactlyProportional) {
  // The paper's §4.2.2 "p_i = k b_i" scaling realized physically: a
  // class-blind screening stage multiplies EVERY delivered p by (1-d).
  development_process p({uniform_stage("review", 0.3)});
  const auto screened = p.add_screening_stage("extra screening", 0.25);
  const std::vector<potential_fault> faults = {
      {fault_class::logic, 0.4, 0.1}, {fault_class::omission, 0.1, 0.2}};
  const auto before = p.synthesize(faults);
  const auto after = screened.synthesize(faults);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(after[i].p, 0.75 * before[i].p, 1e-15) << "i=" << i;
  }
  // And therefore the Appendix B conclusion holds: the diversity gain from
  // eq. (10) improves (ratio decreases).
  EXPECT_LT(core::risk_ratio(after), core::risk_ratio(before));
}

TEST(Pipeline, StrengthenAllImprovesEveryClass) {
  development_process p({uniform_stage("review", 0.4), uniform_stage("test", 0.2)});
  const auto improved = p.strengthen_all(0.5);
  for (const fault_class c : all_fault_classes()) {
    EXPECT_LT(improved.survival_probability(c), p.survival_probability(c));
  }
}

TEST(Pipeline, FaultCatalogueIsValidAndReproducible) {
  const auto a = make_fault_catalogue(40, 5);
  const auto b = make_fault_catalogue(40, 5);
  ASSERT_EQ(a.size(), 40u);
  double q_sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cls, b[i].cls);
    EXPECT_DOUBLE_EQ(a[i].introduction_probability, b[i].introduction_probability);
    EXPECT_GE(a[i].introduction_probability, 0.0);
    EXPECT_LE(a[i].introduction_probability, 0.5);
    q_sum += a[i].q;
  }
  EXPECT_NEAR(q_sum, 0.5, 1e-9);
  EXPECT_THROW((void)make_fault_catalogue(0, 1), std::invalid_argument);
}

TEST(Pipeline, HigherProcessLevelsDeliverBetterSoftware) {
  const auto faults = make_fault_catalogue(60, 6);
  double prev_mu = 1.0;
  for (int level = 1; level <= 4; ++level) {
    const auto u = make_process_at_level(level).synthesize(faults);
    const double mu = core::single_version_moments(u).mean;
    EXPECT_LT(mu, prev_mu) << "level=" << level;
    prev_mu = mu;
  }
  EXPECT_THROW((void)make_process_at_level(0), std::invalid_argument);
  EXPECT_THROW((void)make_process_at_level(5), std::invalid_argument);
}

TEST(Pipeline, Validation) {
  vnv_stage bad;
  bad.detection.fill(2.0);
  EXPECT_THROW(development_process({bad}), std::invalid_argument);
  development_process p;
  EXPECT_THROW(p.add_stage(bad), std::invalid_argument);
  EXPECT_THROW((void)p.add_screening_stage("x", 1.5), std::invalid_argument);
  potential_fault f{fault_class::logic, 1.5, 0.1};
  EXPECT_THROW((void)p.delivered_p(f), std::invalid_argument);
}

TEST(Taxonomy, NamesAreDistinct) {
  std::set<std::string_view> names;
  for (const fault_class c : all_fault_classes()) names.insert(to_string(c));
  EXPECT_EQ(names.size(), kFaultClassCount);
}

}  // namespace
