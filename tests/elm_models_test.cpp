// EL/LM bridge: the coincident-failure excess, the forced-diversity
// possibility, and the spatial difficulty function.

#include "elm/models.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/generators.hpp"
#include "core/moments.hpp"

namespace {

using namespace reldiv;
using namespace reldiv::elm;

TEST(ElDecomposition, MatchesCoreMoments) {
  const auto u = core::make_random_universe(30, 0.6, 0.8, 12);
  const auto d = decompose_el(u);
  EXPECT_NEAR(d.mean_single, core::single_version_moments(u).mean, 1e-15);
  EXPECT_NEAR(d.mean_pair, core::pair_moments(u).mean, 1e-15);
  EXPECT_NEAR(d.difficulty_variance, core::independence_shortfall(u), 1e-15);
}

TEST(ElDecomposition, DependenceFactorAtLeastOne) {
  // EL headline: E[Θpair] >= (E[Θ1])² — versions fail dependently.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const auto u = core::make_random_universe(25, 0.7, 0.9, seed);
    const auto d = decompose_el(u);
    EXPECT_GE(d.dependence_factor(), 1.0 - 1e-12) << "seed=" << seed;
    EXPECT_GE(d.difficulty_variance, -1e-15);
  }
}

TEST(ElDecomposition, IndependenceOnlyWhenDifficultyIsFlat) {
  // If every fault has the same p and the qs sum to 1, θ(x) is constant,
  // difficulty variance vanishes and independence holds exactly.
  core::fault_universe flat({{0.3, 0.5}, {0.3, 0.5}});
  const auto d = decompose_el(flat);
  EXPECT_NEAR(d.difficulty_variance, 0.0, 1e-15);
  EXPECT_NEAR(d.dependence_factor(), 1.0, 1e-12);
}

TEST(PairLm, AgreesWithElForIdenticalMethodologies) {
  const auto u = core::make_random_universe(15, 0.5, 0.7, 33);
  const auto lm = pair_lm(u, u);
  const auto el = decompose_el(u);
  EXPECT_NEAR(lm.mean_pair, el.mean_pair, 1e-15);
  EXPECT_NEAR(lm.independent, el.independent_pair, 1e-15);
}

TEST(PairLm, ComplementaryMethodologiesBeatIndependence) {
  // The LM result: if methodology B finds easy what A finds hard, the
  // forced-diverse pair can do BETTER than the independence product.
  core::fault_universe a({{0.4, 0.25}, {0.01, 0.25}, {0.4, 0.25}, {0.01, 0.25}});
  const auto b = complementary_methodology(a, 0.41, 1.0);
  const auto lm = pair_lm(a, b);
  EXPECT_LT(lm.dependence_factor(), 1.0);
  EXPECT_LT(lm.mean_pair, lm.independent);
}

TEST(PairLm, Validation) {
  core::fault_universe a({{0.4, 0.25}, {0.2, 0.25}});
  core::fault_universe short_b({{0.4, 0.25}});
  EXPECT_THROW((void)pair_lm(a, short_b), std::invalid_argument);
  core::fault_universe wrong_q({{0.4, 0.30}, {0.2, 0.25}});
  EXPECT_THROW((void)pair_lm(a, wrong_q), std::invalid_argument);
}

TEST(ComplementaryMethodology, FlipsAndClamps) {
  core::fault_universe u({{0.4, 0.2}, {0.05, 0.2}});
  const auto c = complementary_methodology(u, 0.4, 1.0);
  EXPECT_NEAR(c[0].p, 0.0, 1e-15);
  EXPECT_NEAR(c[1].p, 0.35, 1e-15);
  EXPECT_DOUBLE_EQ(c[0].q, 0.2);
  EXPECT_THROW((void)complementary_methodology(u, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)complementary_methodology(u, 0.4, -1.0), std::invalid_argument);
}

TEST(DifficultyFunction, EqualsPInsideDisjointRegion) {
  using namespace reldiv::demand;
  std::vector<region_fault> faults = {
      {make_box_region(box({0.0, 0.0}, {0.3, 0.3})), 0.2},
      {make_box_region(box({0.6, 0.6}, {0.9, 0.9})), 0.5}};
  const difficulty_function theta(faults);
  EXPECT_NEAR(theta({0.1, 0.1}), 0.2, 1e-15);
  EXPECT_NEAR(theta({0.7, 0.7}), 0.5, 1e-15);
  EXPECT_DOUBLE_EQ(theta({0.45, 0.45}), 0.0);
}

TEST(DifficultyFunction, ComposesOverOverlaps) {
  using namespace reldiv::demand;
  std::vector<region_fault> faults = {
      {make_box_region(box({0.0, 0.0}, {0.5, 0.5})), 0.2},
      {make_box_region(box({0.2, 0.2}, {0.7, 0.7})), 0.5}};
  const difficulty_function theta(faults);
  // In the overlap, failure iff either fault present: 1 - 0.8*0.5.
  EXPECT_NEAR(theta({0.3, 0.3}), 1.0 - 0.8 * 0.5, 1e-15);
}

TEST(DifficultyFunction, MomentEstimatesMatchModel) {
  using namespace reldiv::demand;
  // Disjoint boxes under a uniform profile: E[θ] = Σ q p, E[θ²] = Σ q p².
  std::vector<region_fault> faults = {
      {make_box_region(box({0.0, 0.0}, {0.5, 0.4})), 0.3},   // q = 0.2
      {make_box_region(box({0.6, 0.5}, {1.0, 1.0})), 0.1}};  // q = 0.2
  const difficulty_function theta(faults);
  const uniform_profile prof(box::unit(2));
  const auto m = theta.estimate_moments(prof, 300000, 9);
  EXPECT_NEAR(m.mean, 0.2 * 0.3 + 0.2 * 0.1, 0.002);
  EXPECT_NEAR(m.mean_square, 0.2 * 0.09 + 0.2 * 0.01, 0.001);
  EXPECT_THROW((void)theta.estimate_moments(prof, 0, 1), std::invalid_argument);
}

TEST(DifficultyFunction, Validation) {
  using namespace reldiv::demand;
  EXPECT_THROW(difficulty_function{std::vector<region_fault>{}}, std::invalid_argument);
  std::vector<region_fault> null_region = {{nullptr, 0.2}};
  EXPECT_THROW(difficulty_function{null_region}, std::invalid_argument);
}

}  // namespace
