// Section 6 sensitivity machinery: correlated fault introduction (§6.1) and
// many-to-one fault/region aliasing (§6.3).

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/generators.hpp"
#include "core/moments.hpp"
#include "core/no_common_fault.hpp"
#include "mc/aliasing.hpp"
#include "mc/correlated.hpp"

namespace {

using namespace reldiv;
using namespace reldiv::mc;

core::fault_universe small_universe() {
  return core::fault_universe({{0.2, 0.1}, {0.3, 0.2}, {0.1, 0.05}});
}

TEST(CommonCauseMixture, PreservesMarginalsExactly) {
  const auto u = small_universe();
  common_cause_mixture mix(u, 0.3, 2.0);
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(mix.marginal(i), u[i].p, 1e-12) << "i=" << i;
  }
}

TEST(CommonCauseMixture, EmpiricalMarginalsMatch) {
  const auto u = small_universe();
  common_cause_mixture mix(u, 0.25, 2.5);
  stats::rng r(1);
  std::vector<int> counts(u.size(), 0);
  const int n = 100000;
  for (int s = 0; s < n; ++s) {
    for (const auto i : mix.sample(r).faults) ++counts[i];
  }
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), u[i].p, 0.01) << "i=" << i;
  }
}

TEST(CommonCauseMixture, InducesPositiveCorrelation) {
  const auto u = small_universe();
  common_cause_mixture mix(u, 0.3, 2.0);
  EXPECT_GT(mix.indicator_correlation(0, 1), 0.0);
  EXPECT_GT(mix.indicator_correlation(1, 2), 0.0);
  // rho = 0 degenerates to independence.
  common_cause_mixture indep(u, 0.0, 2.0);
  EXPECT_NEAR(indep.indicator_correlation(0, 1), 0.0, 1e-12);
}

TEST(CommonCauseMixture, MarginalIsPreservedExactlyAtTheFeasibilityBoundary) {
  // marginal() must return the preserved marginal itself, not recompute it
  // from the clamped relaxed probability: near the feasibility boundary the
  // relaxed p rounds to a hair below zero and is clamped away, and away from
  // it the deflate-then-recombine arithmetic rounds off the last ulp.
  // Saturated regime: stress*p > 1 clamps the stressed p to 1.
  const core::fault_universe saturated({{0.5, 0.1}, {0.35, 0.2}, {0.9, 0.05}});
  const common_cause_mixture sat(saturated, 0.3, 1e6);
  for (std::size_t i = 0; i < saturated.size(); ++i) {
    EXPECT_EQ(sat.marginal(i), saturated[i].p) << "i=" << i;
  }
  // Boundary regime: rho*stress == 1 up to rounding, so the relaxed p is a
  // rounding-error-sized number that the constructor clamps to [0, p].
  const core::fault_universe boundary({{0.1, 0.1}, {0.07, 0.2}, {0.013, 0.05}});
  const double rho = 0.3;
  const common_cause_mixture mix(boundary, rho, 1.0 / rho);
  for (std::size_t i = 0; i < boundary.size(); ++i) {
    EXPECT_EQ(mix.marginal(i), boundary[i].p) << "i=" << i;
  }
  // Generic (non-boundary) parameters must be exact too, not just 1e-12
  // close.
  const auto u = core::make_random_universe(40, 0.45, 0.8, 77);
  const common_cause_mixture generic(u, 0.37, 1.9);
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_EQ(generic.marginal(i), u[i].p) << "i=" << i;
  }
}

TEST(CommonCauseMixture, Validation) {
  const auto u = small_universe();
  EXPECT_THROW(common_cause_mixture(u, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(common_cause_mixture(u, 0.5, 0.5), std::invalid_argument);
  // Infeasible marginal preservation: rho close to 1 with huge stress.
  EXPECT_THROW(common_cause_mixture(u, 0.9, 10.0), std::invalid_argument);
}

TEST(CommonCauseMixture, CorrelationEffectsHaveTheFkgDirection) {
  // §6.1 quantified.  With marginals preserved and the two developments
  // still independent of each other:
  //  * E[Θ1] and E[Θ2] are UNCHANGED (they depend only on marginals);
  //  * positive association within a version clusters faults, so
  //    P(N1 > 0) and P(N2 > 0) both DECREASE relative to independence
  //    (FKG: E[Π(1−X_i)] >= Π E[1−X_i] under positive association).
  const auto u = core::make_random_universe(10, 0.3, 0.5, 3);
  common_cause_mixture mix(u, 0.4, 2.0);
  const auto corr = run_correlated(u, mix, 200000, 5);
  EXPECT_NEAR(corr.mean_theta1, core::single_version_moments(u).mean, 5e-4);
  EXPECT_NEAR(corr.mean_theta2, core::pair_moments(u).mean, 5e-4);
  EXPECT_LT(corr.prob_n1_positive, core::prob_some_fault(u) + 0.003);
  EXPECT_LT(corr.prob_n2_positive, core::prob_some_common_fault(u) + 0.003);
}

TEST(GaussianCopula, MarginalsPreserved) {
  const auto u = small_universe();
  gaussian_copula_sampler cop(u, 0.5);
  stats::rng r(7);
  std::vector<int> counts(u.size(), 0);
  const int n = 100000;
  for (int s = 0; s < n; ++s) {
    for (const auto i : cop.sample(r).faults) ++counts[i];
  }
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), u[i].p, 0.012) << "i=" << i;
  }
  EXPECT_THROW(gaussian_copula_sampler(u, 1.0), std::invalid_argument);
}

TEST(GaussianCopula, DegenerateProbabilities) {
  core::fault_universe u({{0.0, 0.1}, {1.0, 0.1}});
  gaussian_copula_sampler cop(u, 0.3);
  stats::rng r(9);
  for (int s = 0; s < 100; ++s) {
    const auto v = cop.sample(r);
    ASSERT_EQ(v.faults.size(), 1u);
    ASSERT_EQ(v.faults[0], 1u);
  }
}

TEST(MergeFaultGroups, PerfectlyCorrelatedLimit) {
  // §6.1: "two mistakes that can only occur together ... can be considered
  // as one mistake, with a failure region which is the union".
  core::fault_universe u({{0.2, 0.1}, {0.2, 0.15}, {0.05, 0.2}});
  const auto merged = merge_fault_groups(u, {{0, 1}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged[0].p, 0.2);            // group max
  EXPECT_NEAR(merged[0].q, 0.25, 1e-15);         // union of disjoint regions
  EXPECT_DOUBLE_EQ(merged[1].p, 0.05);           // untouched fault kept
  EXPECT_THROW((void)merge_fault_groups(u, {{0}, {0}}), std::invalid_argument);
  EXPECT_THROW((void)merge_fault_groups(u, {{7}}), std::out_of_range);
}

TEST(MergeFaultGroups, RejectsGroupWhoseRegionUnionExceedsProbabilityOne) {
  // q's are probabilities of disjoint regions; a merged super-fault whose
  // summed q passes 1 is not a probability and must be rejected up front
  // (with a message naming the group sum, not a generic universe error).
  core::fault_universe u({{0.2, 0.6}, {0.2, 0.6}, {0.05, 0.2}},
                         /*allow_q_overflow=*/true);
  try {
    (void)merge_fault_groups(u, {{0, 1}});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The merge itself must diagnose the group, not defer to a downstream
    // universe-construction error.
    EXPECT_NE(std::string(e.what()).find("merge_fault_groups"), std::string::npos)
        << e.what();
  }
  // A group summing to exactly 1 is still a valid probability.
  core::fault_universe ok({{0.2, 0.5}, {0.2, 0.5}}, /*allow_q_overflow=*/true);
  const auto merged = merge_fault_groups(ok, {{0, 1}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_DOUBLE_EQ(merged[0].q, 1.0);
}

TEST(Aliasing, SplitPreservesRegionPresence) {
  const auto u = small_universe();
  for (const std::size_t k : {1u, 2u, 5u}) {
    const auto model = split_into_mistakes(u, k);
    const auto eff = model.effective_universe();
    ASSERT_EQ(eff.size(), u.size());
    for (std::size_t i = 0; i < u.size(); ++i) {
      EXPECT_NEAR(eff[i].p, u[i].p, 1e-12) << "k=" << k << " i=" << i;
      EXPECT_DOUBLE_EQ(eff[i].q, u[i].q);
    }
  }
  EXPECT_THROW((void)split_into_mistakes(u, 0), std::invalid_argument);
}

TEST(Aliasing, NaiveAssessorUnderestimatesPmax) {
  // The §6.3 warning: per-mistake probabilities understate the region
  // presence probability, increasingly so with more aliased mistakes.
  const auto u = small_universe();
  double prev_naive = 1.0;
  for (const std::size_t k : {2u, 4u, 8u}) {
    const auto model = split_into_mistakes(u, k);
    EXPECT_NEAR(model.true_p_max(), u.p_max(), 1e-12);
    EXPECT_LT(model.naive_p_max(), model.true_p_max()) << "k=" << k;
    EXPECT_LT(model.naive_p_max(), prev_naive) << "k=" << k;
    prev_naive = model.naive_p_max();
  }
}

TEST(Aliasing, SampleMarginalsMatchEffectiveUniverse) {
  const auto u = small_universe();
  const auto model = split_into_mistakes(u, 3);
  stats::rng r(11);
  std::vector<int> counts(u.size(), 0);
  const int n = 100000;
  for (int s = 0; s < n; ++s) {
    for (const auto i : model.sample(r).faults) ++counts[i];
  }
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), u[i].p, 0.01) << "i=" << i;
  }
}

TEST(Aliasing, Validation) {
  EXPECT_THROW(aliased_model({aliased_region{{}, 0.1}}), std::invalid_argument);
  EXPECT_THROW(aliased_model({aliased_region{{1.5}, 0.1}}), std::invalid_argument);
  EXPECT_THROW(aliased_model({aliased_region{{0.5}, 1.5}}), std::invalid_argument);
}

}  // namespace
